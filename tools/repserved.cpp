// repserved — the live reputation service daemon.
//
// Boots the full serving stack: seeds a paper-shaped feedback workload
// (power-law feedback counts, honest ratings), runs the GossipTrust engine
// to convergence, publishes the converged scores into a sharded
// serve::ReputationStore, and serves LOOKUP/BATCH_LOOKUP/INGEST/STATS/
// METRICS/HEALTH over the epoll server. A fold loop then drains the ingest
// queue into the feedback ledger and re-aggregates every --refold feedbacks
// (warm-started from the previous vector), republishing the fresh scores
// under a new epoch — the paper's "reputation updating" path, live.
//
// Observability (PR 9): the JSONL EventLog opens at startup; every
// --metrics-interval seconds the fold loop appends a `serve_metrics`
// record (all serve_* counters + latency histogram buckets) and a
// `serve_health` record (published epoch, ingest backlog, staleness,
// convergence flags, mass gap). Handler frames slower than
// --slow-frame-us emit one `slow_frame` record each. The log's destructor
// writes the final `meta` record (records logged, lines dropped) on clean
// shutdown. `scripts/report.py --live` renders the whole stream.
//
//   repserved --port 7777 --n 512 --telemetry serve.jsonl
//
// Prints exactly one "repserved: listening on HOST:PORT ..." line to
// stdout once ready (scripts wait for it). SIGINT/SIGTERM shut down
// cleanly: the server stops, the final `serve` telemetry record (counters
// + latency histogram buckets) is flushed, and the exit code is 0.
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "serve/handler.hpp"
#include "serve/observe.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "trust/feedback.hpp"
#include "trust/generator.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

struct Options {
  std::string bind = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t n = 512;
  std::uint64_t seed = 42;
  std::size_t refold = 2000;
  std::size_t shards = 0;
  std::string telemetry;
  bool use_poll = false;
  double max_seconds = 0.0;      ///< 0 = run until signalled
  double metrics_interval = 1.0; ///< seconds between serve_metrics/_health records
  double slow_frame_us = 1000.0; ///< slow-frame threshold; <= 0 disables
};

[[noreturn]] void usage(const char* argv0, const char* msg) {
  std::fprintf(stderr, "repserved: %s\n", msg);
  std::fprintf(stderr,
               "usage: %s [--bind A] [--port P] [--n N] [--seed S]\n"
               "          [--refold K] [--shards S] [--telemetry PATH]\n"
               "          [--poll] [--max-seconds T] [--metrics-interval T]\n"
               "          [--slow-frame-us U]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int i) {
    if (i + 1 >= argc) usage(argv[0], "missing argument value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--bind") o.bind = need(i++);
    else if (a == "--port") o.port = static_cast<std::uint16_t>(std::atoi(need(i++)));
    else if (a == "--n") o.n = static_cast<std::size_t>(std::atoll(need(i++)));
    else if (a == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(need(i++)));
    else if (a == "--refold") o.refold = static_cast<std::size_t>(std::atoll(need(i++)));
    else if (a == "--shards") o.shards = static_cast<std::size_t>(std::atoll(need(i++)));
    else if (a == "--telemetry") o.telemetry = need(i++);
    else if (a == "--poll") o.use_poll = true;
    else if (a == "--max-seconds") o.max_seconds = std::atof(need(i++));
    else if (a == "--metrics-interval") o.metrics_interval = std::atof(need(i++));
    else if (a == "--slow-frame-us") o.slow_frame_us = std::atof(need(i++));
    else usage(argv[0], ("unknown flag: " + a).c_str());
  }
  if (o.n < 2) usage(argv[0], "--n must be >= 2");
  return o;
}

double mass_gap_of(const std::vector<double>& scores) {
  double sum = 0.0;
  for (double s : scores) sum += s;
  return std::fabs(sum - 1.0);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  auto uptime_now = [&t0] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  // --- seed the reputation state (paper Table 2-shaped workload) -----------
  gt::Rng rng(opt.seed);
  gt::trust::FeedbackLedger ledger(opt.n);
  const std::vector<double> qualities =
      gt::trust::draw_service_qualities(opt.n, opt.n / 10, rng);
  gt::trust::FeedbackGenConfig gen;
  gen.n = opt.n;
  gt::trust::generate_honest_feedback(ledger, qualities, gen, rng);

  gt::core::GossipTrustConfig ecfg;
  gt::core::GossipTrustEngine engine(opt.n, ecfg);
  gt::core::AggregationResult agg = engine.run(ledger.normalized_matrix(), rng);
  std::fprintf(stderr,
               "repserved: seeded n=%zu, engine converged=%d in %zu cycles\n",
               opt.n, agg.converged ? 1 : 0, agg.num_cycles());

  // --- serving stack --------------------------------------------------------
  gt::serve::StoreConfig scfg;
  scfg.shards = opt.shards;
  gt::serve::ReputationStore store(scfg);
  store.publish(agg.scores);

  // Observability plane: JSONL log (disabled when --telemetry is empty),
  // fold-loop health mailbox, slow-frame threshold. The log lives for the
  // whole process so its destructor's final `meta` record covers the run.
  gt::telemetry::EventLogConfig lcfg;
  lcfg.path = opt.telemetry;
  gt::telemetry::EventLog log(lcfg);
  log.set_context("tool", std::string("repserved"));
  log.set_context("n", static_cast<std::uint64_t>(opt.n));
  gt::serve::HealthState health;
  health.note_start();
  health.note_publish(/*folded_through=*/0, agg.converged,
                      agg.degraded_cycles() > 0, mass_gap_of(agg.scores),
                      0.0);

  gt::telemetry::MetricsRegistry registry(1);
  gt::serve::ServerConfig svcfg;
  svcfg.bind_address = opt.bind;
  svcfg.port = opt.port;
  svcfg.use_poll = opt.use_poll;
  svcfg.observability.log = &log;
  svcfg.observability.health = &health;
  svcfg.observability.slow_frame_seconds =
      opt.slow_frame_us > 0.0 ? opt.slow_frame_us * 1e-6 : 0.0;
  gt::serve::Server server(store, registry, svcfg);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "repserved: cannot start server: %s\n", error.c_str());
    return 1;
  }
  std::printf("repserved: listening on %s:%u (backend %s, shards %zu, n %zu)\n",
              opt.bind.c_str(), server.port(), server.backend(),
              store.num_shards(), opt.n);
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // --- fold loop: ingest -> ledger -> engine -> publish ---------------------
  std::vector<gt::serve::FeedbackUpdate> drained;
  std::size_t since_refold = 0;
  std::uint64_t refolds = 0;
  std::uint64_t folded = 0;  ///< feedback frames drained into the ledger
  std::vector<double> scores = agg.scores;
  double next_export = opt.metrics_interval;
  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (opt.max_seconds > 0.0 && uptime_now() >= opt.max_seconds) break;
    store.drain_feedback(drained);
    for (const auto& f : drained) {
      if (f.rater < opt.n && f.ratee < opt.n)
        ledger.record(static_cast<gt::trust::NodeId>(f.rater),
                      static_cast<gt::trust::NodeId>(f.ratee), f.value);
    }
    since_refold += drained.size();
    folded += drained.size();
    if (since_refold >= opt.refold) {
      since_refold = 0;
      // Every frame drained so far is in the ledger, so the scores this
      // fold publishes cover exactly `folded` frames.
      const std::uint64_t fold_covers = folded;
      const auto f0 = Clock::now();
      gt::core::AggregationResult next =
          engine.run(ledger.normalized_matrix(), rng, nullptr, scores);
      scores = next.scores;
      const std::uint64_t epoch = store.publish(scores);
      const double fold_seconds =
          std::chrono::duration<double>(Clock::now() - f0).count();
      health.note_publish(fold_covers, next.converged,
                          next.degraded_cycles() > 0, mass_gap_of(scores),
                          fold_seconds);
      ++refolds;
      std::fprintf(stderr,
                   "repserved: refold #%llu -> epoch %llu (%zu cycles)\n",
                   static_cast<unsigned long long>(refolds),
                   static_cast<unsigned long long>(epoch), next.num_cycles());
    }
    if (opt.metrics_interval > 0.0 && uptime_now() >= next_export) {
      next_export = uptime_now() + opt.metrics_interval;
      gt::serve::write_serve_metrics_record(log, registry, uptime_now());
      gt::serve::write_serve_health_record(
          log, gt::serve::collect_health(store, &health));
    }
  }

  server.stop();
  const double uptime = uptime_now();

  gt::serve::write_serve_record(log, registry, uptime);
  log.flush();

  const auto snap = registry.snapshot();
  const std::uint64_t* lookups = snap.counter("serve_lookups");
  const std::uint64_t* batch_keys = snap.counter("serve_batch_keys");
  const std::uint64_t* ingests = snap.counter("serve_ingests");
  const std::uint64_t* errors = snap.counter("serve_proto_errors");
  std::fprintf(stderr,
               "repserved: shutdown after %.1fs — lookups=%llu batch_keys=%llu "
               "ingests=%llu proto_errors=%llu refolds=%llu epoch=%llu\n",
               uptime, static_cast<unsigned long long>(lookups ? *lookups : 0),
               static_cast<unsigned long long>(batch_keys ? *batch_keys : 0),
               static_cast<unsigned long long>(ingests ? *ingests : 0),
               static_cast<unsigned long long>(errors ? *errors : 0),
               static_cast<unsigned long long>(refolds),
               static_cast<unsigned long long>(store.published_epoch()));
  return 0;
}
