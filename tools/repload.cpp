// repload — load generator for the live reputation service.
//
// Replays a simulator-shaped workload against a serve::Server: Zipf-skewed
// BATCH_LOOKUPs over the fig3-style score distribution (popular nodes are
// queried most) with a configurable INGEST mix, through pipelined
// connections, and reports aggregate throughput plus exact p50/p99/p999
// client-side latency.
//
// Modes:
//   client (default)  connect to --host/--port (a running repserved) and
//                     drive it for --duration seconds; exit 3 when zero
//                     lookups succeeded (the CI smoke assertion).
//   --inproc          no sockets: drive a ConnectionHandler directly over
//                     an in-process store — the pure serve-path cost.
//   --bench           self-contained perf cases for BENCH_7.json: starts
//                     its own store + TCP server, runs the inproc (plain
//                     and observed, alternating best-of-3 to measure the
//                     observability overhead fraction), TCP lookup, and
//                     TCP mixed cases, and prints one JSON document
//                     {"cases": {...}} on stdout
//                     (scripts/bench_record.py --serve folds + gates it).
//   --watch           poll METRICS/HEALTH against a running repserved
//                     every --watch-interval seconds and print a live
//                     scoreboard: per-opcode request rates and interval
//                     p50/p99/p999 (from histogram bucket deltas), plus
//                     epoch/staleness/backpressure health.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/powerlaw.hpp"
#include "common/rng.hpp"
#include "serve/handler.hpp"
#include "serve/loopback.hpp"
#include "serve/observe.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t n = 100000;       ///< id space of the workload
  double zipf_s = 0.8;          ///< lookup skew (rank 0 = most popular)
  std::size_t batch = 64;       ///< keys per BATCH_LOOKUP
  std::size_t pipeline = 8;     ///< outstanding frames per connection
  std::size_t connections = 1;  ///< one worker thread per connection
  double duration = 3.0;
  double ingest_fraction = 0.0;
  std::uint64_t seed = 1;
  int connect_retries = 50;     ///< x 100ms — lets CI start server lazily
  bool inproc = false;
  bool bench = false;
  double bench_seconds = 1.0;
  bool json = false;
  bool use_poll = false;        ///< --bench: force the poll backend
  bool watch = false;           ///< live METRICS/HEALTH scoreboard
  double watch_interval = 1.0;  ///< seconds between scoreboard polls
};

[[noreturn]] void usage(const char* argv0, const std::string& msg) {
  std::fprintf(stderr, "repload: %s\n", msg.c_str());
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port P] [--n N] [--zipf S] [--batch B]\n"
      "          [--pipeline D] [--connections C] [--duration SEC]\n"
      "          [--ingest-fraction F] [--seed S] [--json]\n"
      "          [--inproc | --bench [--bench-seconds SEC] [--poll]\n"
      "           | --watch [--watch-interval SEC]]\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int i) {
    if (i + 1 >= argc) usage(argv[0], "missing argument value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--host") o.host = need(i++);
    else if (a == "--port") o.port = static_cast<std::uint16_t>(std::atoi(need(i++)));
    else if (a == "--n") o.n = static_cast<std::size_t>(std::atoll(need(i++)));
    else if (a == "--zipf") o.zipf_s = std::atof(need(i++));
    else if (a == "--batch") o.batch = static_cast<std::size_t>(std::atoll(need(i++)));
    else if (a == "--pipeline") o.pipeline = static_cast<std::size_t>(std::atoll(need(i++)));
    else if (a == "--connections") o.connections = static_cast<std::size_t>(std::atoll(need(i++)));
    else if (a == "--duration") o.duration = std::atof(need(i++));
    else if (a == "--ingest-fraction") o.ingest_fraction = std::atof(need(i++));
    else if (a == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(need(i++)));
    else if (a == "--connect-retries") o.connect_retries = std::atoi(need(i++));
    else if (a == "--inproc") o.inproc = true;
    else if (a == "--bench") o.bench = true;
    else if (a == "--bench-seconds") o.bench_seconds = std::atof(need(i++));
    else if (a == "--json") o.json = true;
    else if (a == "--poll") o.use_poll = true;
    else if (a == "--watch") o.watch = true;
    else if (a == "--watch-interval") o.watch_interval = std::atof(need(i++));
    else usage(argv[0], "unknown flag: " + a);
  }
  if (o.batch == 0 || o.pipeline == 0 || o.connections == 0 || o.n == 0)
    usage(argv[0], "--batch/--pipeline/--connections/--n must be > 0");
  if (o.batch > gt::serve::kMaxBatch)
    usage(argv[0], "--batch exceeds protocol kMaxBatch (" +
                       std::to_string(gt::serve::kMaxBatch) + ")");
  if (o.bench && o.port != 0) usage(argv[0], "--bench runs its own server");
  if (o.watch && (o.bench || o.inproc))
    usage(argv[0], "--watch is a client mode (needs --port)");
  if (!o.bench && !o.inproc && o.port == 0)
    usage(argv[0], "client mode needs --port");
  if (o.watch && o.watch_interval <= 0.0)
    usage(argv[0], "--watch-interval must be > 0");
  return o;
}

struct WorkerStats {
  std::uint64_t frames = 0;       ///< responses received
  std::uint64_t lookup_keys = 0;  ///< keys answered via BATCH_LOOKUP
  std::uint64_t ingests = 0;
  std::uint64_t found = 0;        ///< keys answered with epoch != 0
  std::uint64_t errors = 0;
  double wall_seconds = 0.0;
  std::vector<double> latencies_us;  ///< per-frame round trip
};

/// Pre-draws Zipf-ranked node ids (rank == node id: the fig3 score
/// distribution ranks nodes by reputation, most reputable first).
std::vector<std::uint64_t> presample_ids(const Options& o, std::uint64_t seed,
                                         std::size_t count) {
  gt::Rng rng(seed);
  const gt::ZipfSampler zipf(o.n, o.zipf_s);
  std::vector<std::uint64_t> ids(count);
  for (auto& id : ids) id = zipf.sample(rng);
  return ids;
}

int connect_retry(const Options& o) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(o.port);
  if (::inet_pton(AF_INET, o.host.c_str(), &addr.sin_addr) != 1) return -1;
  for (int attempt = 0; attempt <= o.connect_retries; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      timeval tv{2, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return -1;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool read_exact(int fd, std::uint8_t* p, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Sends one empty-payload request and reads back exactly one frame,
/// checking the response opcode. Used by the --watch poller and the final
/// STATS round trip.
bool fetch_frame(int fd, gt::serve::Op req, gt::serve::Op resp,
                 std::vector<std::uint8_t>& payload) {
  std::uint8_t hdr[gt::serve::kHeaderSize];
  gt::serve::encode_header(hdr, req, 0);
  if (!write_all(fd, hdr, sizeof(hdr))) return false;
  if (!read_exact(fd, hdr, sizeof(hdr))) return false;
  gt::serve::FrameHeader h;
  if (!gt::serve::decode_header(hdr, &h)) return false;
  if (static_cast<gt::serve::Op>(h.opcode) != resp) return false;
  payload.resize(h.payload_len);
  return h.payload_len == 0 || read_exact(fd, payload.data(), h.payload_len);
}

/// Interval percentile from two cumulative snapshots of the same
/// histogram: subtract the bucket counts, keep the cumulative min/max as
/// the best available bounds.
gt::serve::MetricsHistogram hist_delta(const gt::serve::MetricsHistogram& cur,
                                       const gt::serve::MetricsHistogram& prev) {
  gt::serve::MetricsHistogram d = cur;
  if (prev.buckets.size() == cur.buckets.size()) {
    for (std::size_t i = 0; i < d.buckets.size(); ++i)
      d.buckets[i] -= prev.buckets[i];
    d.count -= prev.count;
    d.sum -= prev.sum;
  }
  return d;
}

/// Live scoreboard: polls METRICS + HEALTH every watch_interval and prints
/// per-opcode interval rates + p50/p99/p999 plus the health line.
int run_watch(const Options& o) {
  const int fd = connect_retry(o);
  if (fd < 0) {
    std::fprintf(stderr, "repload: --watch cannot connect to %s:%u\n",
                 o.host.c_str(), o.port);
    return 1;
  }
  using gt::serve::MetricsCounter;
  const auto t_start = Clock::now();
  gt::serve::MetricsPayload prev;
  bool have_prev = false;
  std::uint64_t polls = 0;
  std::vector<std::uint8_t> payload;
  while (o.duration <= 0.0 ||
         std::chrono::duration<double>(Clock::now() - t_start).count() <
             o.duration) {
    std::this_thread::sleep_for(
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(o.watch_interval)));
    gt::serve::MetricsPayload m;
    gt::serve::HealthPayload h;
    if (!fetch_frame(fd, gt::serve::Op::kMetrics, gt::serve::Op::kMetricsResp,
                     payload) ||
        !gt::serve::decode_metrics_resp(payload.data(), payload.size(), &m)) {
      std::fprintf(stderr, "repload: METRICS poll failed\n");
      break;
    }
    if (!fetch_frame(fd, gt::serve::Op::kHealth, gt::serve::Op::kHealthResp,
                     payload) ||
        !gt::serve::decode_health_resp(payload.data(), payload.size(), &h)) {
      std::fprintf(stderr, "repload: HEALTH poll failed\n");
      break;
    }
    const double t = std::chrono::duration<double>(Clock::now() - t_start).count();
    if (have_prev) {
      const double dt = o.watch_interval;
      auto rate = [&](MetricsCounter c) {
        return static_cast<double>(m.counter(c) - prev.counter(c)) / dt;
      };
      struct OpRow {
        const char* name;
        MetricsCounter reqs;
        std::size_t hist;
      };
      static constexpr OpRow kRows[] = {
          {"lookup", MetricsCounter::kLookups, 0},
          {"batch", MetricsCounter::kBatchLookups, 1},
          {"ingest", MetricsCounter::kIngests, 2},
      };
      for (const OpRow& row : kRows) {
        const double rps = rate(row.reqs);
        if (rps <= 0.0) continue;
        gt::serve::MetricsHistogram d =
            row.hist < m.hists.size() && row.hist < prev.hists.size()
                ? hist_delta(m.hists[row.hist], prev.hists[row.hist])
                : gt::serve::MetricsHistogram{};
        std::printf("[%7.1fs] %-6s %10.3e req/s", t, row.name, rps);
        if (row.hist == 1)
          std::printf("  %10.3e keys/s", rate(MetricsCounter::kBatchKeys));
        std::printf("  p50 %8.2fus  p99 %8.2fus  p999 %8.2fus\n",
                    d.percentile(50.0) * 1e6, d.percentile(99.0) * 1e6,
                    d.percentile(99.9) * 1e6);
      }
      std::printf(
          "[%7.1fs] health epoch %llu  backlog %llu  stale %llu frames / "
          "%.2fs  gap %.2e  conv %d degr %d  bp %llu/%llu  slow %llu  "
          "dropped %llu\n",
          t, static_cast<unsigned long long>(h.published_epoch),
          static_cast<unsigned long long>(h.ingest_backlog),
          static_cast<unsigned long long>(h.staleness_frames),
          h.staleness_seconds, h.mass_gap, h.converged() ? 1 : 0,
          h.degraded() ? 1 : 0,
          static_cast<unsigned long long>(m.counter(MetricsCounter::kBpPauses)),
          static_cast<unsigned long long>(m.counter(MetricsCounter::kBpResumes)),
          static_cast<unsigned long long>(m.counter(MetricsCounter::kSlowFrames)),
          static_cast<unsigned long long>(
              m.counter(MetricsCounter::kLogLinesDropped)));
      std::fflush(stdout);
    }
    prev = std::move(m);
    have_prev = true;
    ++polls;
  }
  ::close(fd);
  if (polls == 0) {
    std::fprintf(stderr, "repload: --watch got zero successful polls\n");
    return 1;
  }
  return 0;
}

/// One closed-loop pipelined TCP worker (one connection).
void run_tcp_worker(const Options& o, std::size_t tid, WorkerStats& st) {
  const int fd = connect_retry(o);
  if (fd < 0) {
    ++st.errors;
    return;
  }
  const std::vector<std::uint64_t> ids =
      presample_ids(o, o.seed + 7919 * (tid + 1), 1u << 16);
  gt::Rng mixrng(o.seed ^ (0x9e37u + tid));
  std::size_t id_cursor = 0;
  auto next_id = [&] {
    const std::uint64_t id = ids[id_cursor];
    id_cursor = (id_cursor + 1) & (ids.size() - 1);
    return id;
  };

  std::vector<std::uint64_t> batch_ids(o.batch);
  std::vector<std::uint8_t> tx;
  std::vector<Clock::time_point> send_times(o.pipeline);
  std::size_t ring_head = 0, ring_tail = 0, outstanding = 0;

  const auto t_start = Clock::now();
  const auto deadline = t_start + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(o.duration));
  bool dead = false;
  auto send_one = [&] {
    tx.clear();
    if (o.ingest_fraction > 0.0 &&
        mixrng.next_double() < o.ingest_fraction) {
      const std::uint64_t rater = mixrng.next_below(o.n);
      std::uint64_t ratee = mixrng.next_below(o.n);
      if (ratee == rater) ratee = (ratee + 1) % o.n;
      gt::serve::encode_ingest(tx, rater, ratee, 0.5 + 0.5 * mixrng.next_double());
    } else {
      for (auto& id : batch_ids) id = next_id();
      gt::serve::encode_batch_lookup(tx, batch_ids.data(), batch_ids.size());
    }
    send_times[ring_tail] = Clock::now();
    ring_tail = (ring_tail + 1) % o.pipeline;
    ++outstanding;
    if (!write_all(fd, tx.data(), tx.size())) {
      ++st.errors;
      dead = true;
    }
  };

  st.latencies_us.reserve(1u << 18);
  gt::serve::FrameParser parser;
  std::vector<std::uint8_t> rxbuf(64 * 1024);
  for (std::size_t i = 0; i < o.pipeline && !dead; ++i) send_one();
  while (outstanding > 0 && !dead) {
    const ssize_t n = ::read(fd, rxbuf.data(), rxbuf.size());
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ++st.errors;  // timeout, EOF, or error with frames still outstanding
      break;
    }
    if (!parser.feed(rxbuf.data(), static_cast<std::size_t>(n))) {
      ++st.errors;
      break;
    }
    gt::serve::FrameParser::Frame f;
    bool malformed = false;
    while (parser.next(&f)) {
      const auto t_now = Clock::now();
      st.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(t_now - send_times[ring_head])
              .count());
      ring_head = (ring_head + 1) % o.pipeline;
      --outstanding;
      ++st.frames;
      switch (static_cast<gt::serve::Op>(f.header.opcode)) {
        case gt::serve::Op::kBatchLookupResp: {
          std::uint32_t count = 0;
          const std::uint8_t* e = gt::serve::decode_batch_resp(
              f.payload, f.header.payload_len, &count);
          if (e == nullptr) {
            malformed = true;
            break;
          }
          st.lookup_keys += count;
          for (std::uint32_t k = 0; k < count; ++k)
            if (gt::serve::get_u64(e + 16 * k) != 0) ++st.found;
          break;
        }
        case gt::serve::Op::kIngestResp:
          ++st.ingests;
          break;
        default:
          malformed = true;
          break;
      }
      if (malformed) break;
      if (t_now < deadline && !dead) send_one();
    }
    if (malformed || parser.error()) {
      ++st.errors;
      break;
    }
  }
  st.wall_seconds = std::chrono::duration<double>(Clock::now() - t_start).count();
  ::close(fd);
}

/// No-socket worker: full protocol path against an in-process store. `obs`
/// (optional) threads the observability context through, matching what a
/// repserved deployment records per frame.
void run_inproc(const Options& o, gt::serve::ReputationStore& store,
                gt::serve::ServeMetrics& metrics, WorkerStats& st,
                const gt::serve::ServeObservability* obs = nullptr) {
  gt::serve::ConnectionHandler handler(store, metrics, /*lane=*/0, obs);
  const std::vector<std::uint64_t> ids = presample_ids(o, o.seed, 1u << 16);
  std::size_t id_cursor = 0;
  std::vector<std::uint64_t> batch_ids(o.batch);
  std::vector<std::uint8_t> tx, rx;
  st.latencies_us.reserve(1u << 18);
  const auto t_start = Clock::now();
  const auto deadline = t_start + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(o.duration));
  for (;;) {
    const auto t0 = Clock::now();
    if (t0 >= deadline) break;
    for (auto& id : batch_ids) {
      id = ids[id_cursor];
      id_cursor = (id_cursor + 1) & (ids.size() - 1);
    }
    tx.clear();
    rx.clear();
    gt::serve::encode_batch_lookup(tx, batch_ids.data(), batch_ids.size());
    if (!handler.on_bytes(tx.data(), tx.size(), rx)) {
      ++st.errors;
      break;
    }
    const auto t1 = Clock::now();
    st.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    ++st.frames;
    st.lookup_keys += o.batch;
  }
  st.wall_seconds = std::chrono::duration<double>(Clock::now() - t_start).count();
  // found-count via one verification batch (keeps the hot loop pure).
  gt::serve::LoopbackClient probe(store, metrics);
  for (const auto r : probe.batch_lookup(batch_ids))
    if (r.epoch != 0) ++st.found;
}

WorkerStats merge(std::vector<WorkerStats>& parts) {
  WorkerStats total;
  for (auto& p : parts) {
    total.frames += p.frames;
    total.lookup_keys += p.lookup_keys;
    total.ingests += p.ingests;
    total.found += p.found;
    total.errors += p.errors;
    total.wall_seconds = std::max(total.wall_seconds, p.wall_seconds);
    total.latencies_us.insert(total.latencies_us.end(), p.latencies_us.begin(),
                              p.latencies_us.end());
  }
  return total;
}

double percentile(std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double idx = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct CaseResult {
  std::string name;
  WorkerStats stats;
  double p50 = 0, p99 = 0, p999 = 0;
  double lookups_per_sec = 0, ops_per_sec = 0, ns_per_op = 0;
  double floor_lookups_per_sec = 0;  ///< acceptance floor recorded for gates
  double overhead_frac = -1.0;  ///< observed-vs-plain throughput cost (>= 0)
};

CaseResult summarize(const std::string& name, WorkerStats stats) {
  CaseResult r;
  r.name = name;
  std::sort(stats.latencies_us.begin(), stats.latencies_us.end());
  r.p50 = percentile(stats.latencies_us, 50.0);
  r.p99 = percentile(stats.latencies_us, 99.0);
  r.p999 = percentile(stats.latencies_us, 99.9);
  const double wall = stats.wall_seconds > 0 ? stats.wall_seconds : 1e-9;
  const double ops = static_cast<double>(stats.lookup_keys + stats.ingests);
  r.lookups_per_sec = static_cast<double>(stats.lookup_keys) / wall;
  r.ops_per_sec = ops / wall;
  r.ns_per_op = ops > 0 ? 1e9 * wall / ops : 0.0;
  r.stats = std::move(stats);
  return r;
}

void print_human(const CaseResult& r) {
  std::fprintf(stderr,
               "%-22s %12.3e lookups/s %10.1f ns/op  p50 %8.1f us  p99 %8.1f "
               "us  p999 %8.1f us  (%llu frames, %llu ingests, %llu found, "
               "%llu errors, %.2fs)\n",
               r.name.c_str(), r.lookups_per_sec, r.ns_per_op, r.p50, r.p99,
               r.p999, static_cast<unsigned long long>(r.stats.frames),
               static_cast<unsigned long long>(r.stats.ingests),
               static_cast<unsigned long long>(r.stats.found),
               static_cast<unsigned long long>(r.stats.errors),
               r.stats.wall_seconds);
}

void print_json(const std::vector<CaseResult>& cases) {
  std::printf("{\n  \"bench\": \"repload\",\n  \"cases\": {\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& r = cases[i];
    std::printf("    \"%s\": {\n", r.name.c_str());
    std::printf("      \"lookups_per_sec\": %.6e,\n", r.lookups_per_sec);
    std::printf("      \"ops_per_sec\": %.6e,\n", r.ops_per_sec);
    std::printf("      \"ns_per_op\": %.6f,\n", r.ns_per_op);
    std::printf("      \"p50_us\": %.3f,\n", r.p50);
    std::printf("      \"p99_us\": %.3f,\n", r.p99);
    std::printf("      \"p999_us\": %.3f,\n", r.p999);
    std::printf("      \"frames\": %llu,\n",
                static_cast<unsigned long long>(r.stats.frames));
    std::printf("      \"ingests\": %llu,\n",
                static_cast<unsigned long long>(r.stats.ingests));
    std::printf("      \"errors\": %llu,\n",
                static_cast<unsigned long long>(r.stats.errors));
    if (r.floor_lookups_per_sec > 0)
      std::printf("      \"floor_lookups_per_sec\": %.6e,\n",
                  r.floor_lookups_per_sec);
    if (r.overhead_frac >= 0)
      std::printf("      \"overhead_frac\": %.6f,\n", r.overhead_frac);
    std::printf("      \"wall_seconds\": %.3f\n    }%s\n", r.stats.wall_seconds,
                i + 1 < cases.size() ? "," : "");
  }
  std::printf("  }\n}\n");
}

/// fig3-shaped synthetic reputation: power-law scores, rank == id,
/// normalized to sum 1 like a converged global reputation vector.
std::vector<double> synthetic_scores(std::size_t n) {
  std::vector<double> scores(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.8);
    sum += scores[i];
  }
  for (auto& s : scores) s /= sum;
  return scores;
}

int run_bench(Options o) {
  std::vector<CaseResult> cases;

  // Cases 1+2: in-process serve path (parser + store lookup + encoder),
  // the mutex-free read path the >= 1M lookups/s acceptance floor gates —
  // run plain and with the full observability context (EventLog +
  // slow-frame threshold) in alternation, best of 3 each, so thermal /
  // scheduler drift hits both sides equally. The observed case reports
  // overhead_frac = 1 - best_observed / best_plain, gated <= 2% by
  // scripts/bench_record.py.
  {
    gt::serve::ReputationStore store;
    store.publish(synthetic_scores(o.n));
    gt::telemetry::MetricsRegistry registry(1);
    gt::serve::ServeMetrics metrics =
        gt::serve::ServeMetrics::register_on(registry);
    gt::telemetry::EventLogConfig lcfg;
    lcfg.path = "/dev/null";
    gt::telemetry::EventLog log(lcfg);
    gt::serve::HealthState health;
    health.note_start();
    gt::serve::ServeObservability obs;
    obs.log = &log;
    obs.health = &health;
    obs.slow_frame_seconds = 1e-3;
    Options io = o;
    io.duration = o.bench_seconds;
    CaseResult best_plain, best_obs;
    for (int round = 0; round < 3; ++round) {
      WorkerStats plain_st, obs_st;
      run_inproc(io, store, metrics, plain_st);
      run_inproc(io, store, metrics, obs_st, &obs);
      CaseResult p = summarize("serve_lookup_inproc", std::move(plain_st));
      CaseResult ob =
          summarize("serve_lookup_inproc_observed", std::move(obs_st));
      if (p.lookups_per_sec > best_plain.lookups_per_sec)
        best_plain = std::move(p);
      if (ob.lookups_per_sec > best_obs.lookups_per_sec)
        best_obs = std::move(ob);
    }
    best_plain.floor_lookups_per_sec = 1e6;
    best_obs.floor_lookups_per_sec = 1e6;
    best_obs.overhead_frac = std::max(
        0.0, 1.0 - best_obs.lookups_per_sec /
                       std::max(best_plain.lookups_per_sec, 1e-9));
    print_human(best_plain);
    print_human(best_obs);
    std::fprintf(stderr, "observability overhead: %.2f%%\n",
                 100.0 * best_obs.overhead_frac);
    cases.push_back(std::move(best_plain));
    cases.push_back(std::move(best_obs));
  }

  // Cases 2+3: the full TCP stack on a loopback socket.
  {
    gt::serve::ReputationStore store;
    store.publish(synthetic_scores(o.n));
    gt::telemetry::MetricsRegistry registry(1);
    gt::serve::ServerConfig scfg;
    scfg.use_poll = o.use_poll;
    gt::serve::Server server(store, registry, scfg);
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "repload: cannot start bench server: %s\n",
                   error.c_str());
      return 1;
    }
    Options to = o;
    to.port = server.port();
    to.duration = o.bench_seconds;
    for (const auto& [name, ingest_frac] :
         {std::pair<const char*, double>{"serve_lookup_tcp", 0.0},
          std::pair<const char*, double>{"serve_mixed_tcp", 0.10}}) {
      Options co = to;
      co.ingest_fraction = ingest_frac;
      std::vector<WorkerStats> parts(co.connections);
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < co.connections; ++t)
        threads.emplace_back(run_tcp_worker, std::cref(co), t,
                             std::ref(parts[t]));
      for (auto& th : threads) th.join();
      WorkerStats total = merge(parts);
      CaseResult r = summarize(name, std::move(total));
      print_human(r);
      cases.push_back(std::move(r));
    }
    server.stop();
  }

  print_json(cases);
  bool failed = false;
  for (const auto& r : cases)
    if (r.stats.errors != 0 || r.stats.frames == 0) failed = true;
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);
  if (o.bench) return run_bench(o);
  if (o.watch) return run_watch(o);

  if (o.inproc) {
    gt::serve::ReputationStore store;
    store.publish(synthetic_scores(o.n));
    gt::telemetry::MetricsRegistry registry(1);
    gt::serve::ServeMetrics metrics =
        gt::serve::ServeMetrics::register_on(registry);
    WorkerStats st;
    run_inproc(o, store, metrics, st);
    CaseResult r = summarize("serve_lookup_inproc", std::move(st));
    print_human(r);
    if (o.json) print_json({r});
    return r.stats.lookup_keys > 0 ? 0 : 3;
  }

  // Client mode against a live server.
  std::vector<WorkerStats> parts(o.connections);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < o.connections; ++t)
    threads.emplace_back(run_tcp_worker, std::cref(o), t, std::ref(parts[t]));
  for (auto& th : threads) th.join();
  WorkerStats total = merge(parts);
  CaseResult r = summarize("serve_client", std::move(total));
  print_human(r);

  // Final STATS round trip: surfaces the server-side view of the burst.
  if (const int fd = connect_retry(o); fd >= 0) {
    std::vector<std::uint8_t> tx;
    gt::serve::encode_stats(tx);
    if (write_all(fd, tx.data(), tx.size())) {
      std::uint8_t buf[gt::serve::kHeaderSize + gt::serve::kStatsPayloadSize];
      std::size_t got = 0;
      while (got < sizeof(buf)) {
        const ssize_t n = ::read(fd, buf + got, sizeof(buf) - got);
        if (n <= 0) break;
        got += static_cast<std::size_t>(n);
      }
      gt::serve::StatsPayload s;
      if (got == sizeof(buf) &&
          gt::serve::decode_stats_resp(buf + gt::serve::kHeaderSize,
                                       gt::serve::kStatsPayloadSize, &s)) {
        std::fprintf(stderr,
                     "server stats: batch_keys=%llu ingests=%llu "
                     "proto_errors=%llu epoch=%llu pending=%llu\n",
                     static_cast<unsigned long long>(s.batch_keys),
                     static_cast<unsigned long long>(s.ingests),
                     static_cast<unsigned long long>(s.protocol_errors),
                     static_cast<unsigned long long>(s.published_epoch),
                     static_cast<unsigned long long>(s.ingest_pending));
      }
    }
    ::close(fd);
  }
  if (o.json) print_json({r});
  if (r.stats.lookup_keys == 0) {
    std::fprintf(stderr, "repload: FAILED — zero successful lookups\n");
    return 3;
  }
  return r.stats.errors != 0 ? 1 : 0;
}
