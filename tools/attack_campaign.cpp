// attack_campaign: seeded attack x alpha matrix over the GossipTrust engine.
//
//   attack_campaign [--seed S] [--out campaign.jsonl] [--trace-dir DIR]
//                   [--n N] [--cycles C] [--threads K] [--alphas a,b,...]
//                   [--attacks name,name,...] [--quick] [--require-detect]
//
// For every (attack archetype, greedy factor alpha) cell the driver runs a
// full aggregation: a seeded honest population transacts each cycle, an
// AttackPlan replayed cycle-by-cycle through an AttackState perturbs the
// run (collusive slander rings, Sybil whitewashing, on-off oscillators,
// gossip-layer liars/withholders), and the engine aggregates under the
// attack. The honest counterfactual ledger (same partner/outcome stream,
// truthful ratings, no ledger wipes) run through fixed power iteration
// with the attacked run's power-node set gives the reference scores, so
// the reported ranking error is attack-induced error, not power-set
// mismatch. Per cell the tool reports Kendall tau, honest RMS error
// (Eq. 8 over never-adversarial peers), malicious reputation gain, the
// power-node capture rate, and whether the trace analyzer's manipulation
// detectors flagged the cell — all into JSONL (`attack_campaign` records,
// deterministic timestamps: same seed => byte-identical file) consumed by
// scripts/report.py --attacks. Exit codes: 0 ok, 2 usage/config error,
// 4 --require-detect mismatch (a seeded attack went undetected or the
// clean control raised a manipulation anomaly).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "attack/attack_plan.hpp"
#include "attack/attack_state.hpp"
#include "attack/detect.hpp"
#include "baseline/power_iteration.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/engine.hpp"
#include "telemetry/event_log.hpp"
#include "threat/models.hpp"
#include "trace/analyzer.hpp"
#include "trace/trace.hpp"
#include "trust/feedback.hpp"

namespace {

using gt::Rng;
using gt::mix64;

struct Options {
  std::uint64_t seed = 42;
  std::string out = "attack_campaign.jsonl";
  std::string trace_dir;
  std::size_t n = 192;
  std::size_t cycles = 24;
  std::size_t threads = 1;
  std::vector<double> alphas{0.0, 0.15};
  std::vector<std::string> attacks{"clean", "slander_ring", "sybil_whitewash",
                                   "on_off", "gossip_inflate"};
  bool require_detect = false;
};

struct CellResult {
  double kendall = 0.0;
  double rms = 0.0;
  double gain = 0.0;
  double capture = 0.0;
  std::size_t attackers = 0;
  std::size_t attack_events = 0;
  bool detected = false;
  std::string detected_types;  // comma-joined manipulation anomaly names
};

/// The manipulation signature each archetype is expected to leave
/// (empty = the control must stay clean).
const char* expected_signature(const std::string& attack) {
  if (attack == "slander_ring") return "feedback_ring";
  if (attack == "sybil_whitewash") return "rank_anomaly";
  if (attack == "on_off") return "rank_anomaly";
  if (attack == "gossip_inflate") return "mass_inflation";
  return "";
}

gt::attack::AttackPlan make_plan(const std::string& attack, std::size_t n,
                                 std::size_t cycles, std::uint64_t seed) {
  using gt::attack::AttackPlan;
  const double start = static_cast<double>(cycles) / 3.0;
  const double end = static_cast<double>(cycles);
  AttackPlan plan;
  if (attack == "clean") return plan;
  if (attack == "slander_ring") {
    gt::attack::RingSpec spec;
    spec.start = start;
    spec.end = end;
    spec.rings = 2;
    spec.ring_size = 6;
    return AttackPlan::random_rings(n, spec, seed);
  }
  if (attack == "sybil_whitewash") {
    Rng rng(mix64(seed, 0x5b11ULL));
    for (const auto node : rng.sample_without_replacement(n, 4))
      plan.sybil_whitewash(start, std::min(start + 6.0, end - 2.0), node);
    return plan;
  }
  if (attack == "on_off") {
    Rng rng(mix64(seed, 0x0501ULL));
    for (const auto node : rng.sample_without_replacement(n, 4))
      plan.oscillator(node, start, end, 6.0, 0.5);
    return plan;
  }
  if (attack == "gossip_inflate") {
    Rng rng(mix64(seed, 0x11a2ULL));
    const auto nodes = rng.sample_without_replacement(n, 4);
    for (std::size_t k = 0; k + 1 < nodes.size(); ++k)
      plan.liar(start, end, nodes[k], 2.5);
    plan.withhold(start, end, nodes.back());
    return plan;
  }
  throw std::invalid_argument("unknown attack archetype: " + attack);
}

/// One transaction both worlds observe: the attacked ledger gets the
/// manipulated rating, the honest counterfactual the truthful one.
void transact(gt::trust::FeedbackLedger& attacked,
              gt::trust::FeedbackLedger& honest,
              gt::trust::FeedbackLedger& burst,
              const gt::attack::AttackState& state,
              const std::vector<double>& quality, std::size_t rater,
              std::size_t ratee) {
  // Defection degrades the delivered service; that part is real, so the
  // truthful rating reflects it too.
  const double outcome =
      quality[ratee] * (state.defecting(ratee) ? 0.15 : 1.0);
  double rating = outcome;
  if (state.colluding(rater))
    rating = state.same_ring(rater, ratee) ? 1.0 : 0.0;
  attacked.record(rater, ratee, rating);
  honest.record(rater, ratee, outcome);
  // The burst ledger holds only this cycle's ratings: slander bias wants
  // fresh per-cycle evidence, not magnitudes confounded by aging.
  burst.record(rater, ratee, rating);
}

CellResult run_cell(const Options& opt, const std::string& attack,
                    double alpha, gt::telemetry::EventLog& events) {
  const std::size_t n = opt.n;
  const std::size_t cycles = opt.cycles;

  gt::attack::AttackPlan plan = make_plan(attack, n, cycles, opt.seed);
  const std::string problem = plan.validate(n);
  if (!problem.empty())
    throw std::invalid_argument("attack plan for " + attack +
                                " failed validation: " + problem);
  gt::attack::AttackState state(n);
  std::size_t next_event = 0;

  // Per-cell seeded streams: population, feedback, and the engine each get
  // an independent substream so archetypes differ only where they attack.
  Rng feed_rng(mix64(opt.seed, mix64(0xfeedULL, std::hash<std::string>{}(attack))));
  Rng engine_rng(mix64(opt.seed, 0xe291e ^ static_cast<std::uint64_t>(alpha * 1e6)));

  std::vector<double> quality(n);
  for (auto& q : quality) q = feed_rng.next_double(0.8, 1.0);

  // Fixed interaction graph, drawn once per cell: each peer re-rates the
  // same partners every cycle. A stationary clean matrix means stationary
  // clean scores — the manipulation detectors then see attack-induced
  // movement, not partner-sampling noise.
  std::vector<std::vector<std::size_t>> partners(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto j : feed_rng.sample_without_replacement(n, 5))
      if (j != i && partners[i].size() < 4) partners[i].push_back(j);
  }

  gt::trust::FeedbackLedger attacked(n), honest(n);
  std::vector<std::uint8_t> alive(n, 1);

  char trace_name[128];
  std::snprintf(trace_name, sizeof(trace_name), "attack_%s_a%g.trace.bin",
                attack.c_str(), alpha);
  const std::filesystem::path trace_path =
      (opt.trace_dir.empty() ? std::filesystem::temp_directory_path()
                             : std::filesystem::path(opt.trace_dir)) /
      trace_name;
  gt::trace::TraceConfig tcfg;
  tcfg.path = trace_path.string();
  tcfg.ring_capacity = std::size_t{1} << 18;
  gt::trace::TraceSink sink(tcfg);

  gt::core::GossipTrustConfig cfg;
  cfg.alpha = alpha;
  cfg.num_threads = opt.threads;
  // Note: the engine's own event log is deliberately NOT attached — its
  // per-cycle records carry wall-clock phase timings, and the campaign
  // JSONL must be byte-identical across same-seed runs.
  gt::core::GossipTrustEngine engine(n, cfg);
  engine.set_trace(&sink);

  std::vector<double> v = engine.initial_scores();
  std::vector<gt::core::NodeId> power;
  std::size_t applied = 0;

  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    // 1. Replay every attack event due at this cycle boundary.
    const auto& evs = plan.events();
    while (next_event < evs.size() &&
           evs[next_event].time <= static_cast<double>(cycle)) {
      const gt::attack::AttackEvent& e = evs[next_event];
      state.apply(e);
      if (e.kind == gt::attack::AttackKind::kSybilLeave) {
        alive[e.a] = 0;
      } else if (e.kind == gt::attack::AttackKind::kSybilRejoin) {
        alive[e.a] = 1;
        // The whitewash: the rejoining identity presents a clean history.
        // Only the attacked world forgets — the wipe IS the manipulation.
        if (e.rate != 0.0) attacked.forget_peer(e.a);
      }
      events.record("attack")
          .field("sim_time", static_cast<double>(cycle))
          .field("index", applied)
          .field("kind", gt::attack::to_string(e.kind))
          .field("node", e.a)
          .field("archetype", attack)
          .field("alpha", alpha);
      ++applied;
      ++next_event;
    }

    // 2. Feedback burst: every live peer re-rates its fixed partners;
    //    colluders additionally flood their ring mates (that extra burst
    //    is the ring's own signature). Both worlds age first —
    //    exponential decay keeps scores tracking *recent* behavior,
    //    which is exactly what an on-off oscillator tries to exploit.
    attacked.decay(0.5, 1e-6);
    honest.decay(0.5, 1e-6);
    gt::trust::FeedbackLedger burst(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i] || state.departed(i)) continue;
      for (const std::size_t j : partners[i]) {
        if (!alive[j] || state.departed(j)) continue;
        transact(attacked, honest, burst, state, quality, i, j);
      }
      if (state.colluding(i)) {
        for (std::size_t m = 0; m < n; ++m)
          if (m != i && state.same_ring(i, m) && alive[m])
            transact(attacked, honest, burst, state, quality, i, m);
      }
    }

    // 3. Mirror the slander-bias series into the trace (same series index
    //    as the engine's probe sweep for this cycle).
    const auto bias = gt::attack::slander_bias(burst, 2);
    gt::attack::emit_rating_bias(sink, cycle, static_cast<double>(cycle),
                                 bias);

    // 4. Aggregate one cycle under the attack.
    const gt::trust::SparseMatrix s = attacked.normalized_matrix();
    engine.set_gossip_adversary(
        state.any_liar() ? state.x_scale() : std::span<const double>{},
        state.any_withholder() ? state.withhold_mask()
                               : std::span<const std::uint8_t>{});
    engine.run_cycle(s, v, power, engine_rng, nullptr, nullptr, &alive);
  }

  // Ground truth: the honest counterfactual, anchored on the power nodes
  // the attacked system actually chose.
  const auto reference = gt::baseline::fixed_power_iteration(
      honest.normalized_matrix(), alpha, power);

  std::vector<gt::threat::PeerProfile> peers(n);
  for (std::size_t i = 0; i < n; ++i) {
    peers[i].service_quality = quality[i];
    if (state.ever_adversarial(i))
      peers[i].type = gt::threat::PeerType::kIndependentMalicious;
  }

  CellResult res;
  res.attackers = state.num_ever_adversarial();
  res.attack_events = applied;
  res.kendall = gt::kendall_tau(reference.scores, v);
  res.rms = gt::threat::honest_rms_error(peers, reference.scores, v);
  res.gain = gt::threat::malicious_reputation_gain(peers, reference.scores, v);
  std::size_t captured = 0;
  for (const auto p : power)
    if (state.ever_adversarial(p)) ++captured;
  res.capture = power.empty()
                    ? 0.0
                    : static_cast<double>(captured) /
                          static_cast<double>(power.size());

  // In-process manipulation detection on the cell's own trace.
  gt::trace::TraceFileHeader header{};
  header.record_count = sink.records().size();
  header.records_emitted = sink.records_emitted();
  header.node_count = static_cast<std::uint32_t>(n);
  gt::trace::AnalyzerConfig acfg;
  // Skip the convergence transient: scores still re-rank for a couple of
  // sweeps past the attack onset at cycles/3, and a clean alpha-mixed run
  // shows the same settling jumps there.
  acfg.rank_warmup = cycles / 3 + 2;
  const auto summary = gt::trace::analyze_trace(header, sink.records(), acfg);
  std::set<std::string> types;
  for (const auto& a : summary.anomalies) {
    if (a.type == gt::trace::Anomaly::Type::kMassInflation ||
        a.type == gt::trace::Anomaly::Type::kRankAnomaly ||
        a.type == gt::trace::Anomaly::Type::kFeedbackRing)
      types.insert(gt::trace::anomaly_type_name(a.type));
  }
  res.detected = !types.empty();
  for (const auto& t : types) {
    if (!res.detected_types.empty()) res.detected_types += ',';
    res.detected_types += t;
  }
  sink.finish();

  events.record("attack_campaign")
      .field("archetype", attack)
      .field("alpha", alpha)
      .field("n", static_cast<std::uint64_t>(n))
      .field("cycles", static_cast<std::uint64_t>(cycles))
      .field("attackers", static_cast<std::uint64_t>(res.attackers))
      .field("attack_events", static_cast<std::uint64_t>(res.attack_events))
      .field("kendall_tau", res.kendall)
      .field("honest_rms_error", res.rms)
      .field("malicious_gain", std::isfinite(res.gain) ? res.gain : -1.0)
      .field("capture_rate", res.capture)
      .field("detected", res.detected ? 1 : 0)
      .field("detected_types", res.detected_types)
      .field("trace", trace_path.string());
  return res;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed S] [--out FILE.jsonl] [--trace-dir DIR] "
               "[--n N] [--cycles C] [--threads K] [--alphas a,b] "
               "[--attacks name,name] [--quick] [--require-detect]\n",
               argv0);
  return 2;
}

std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur += *p;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (std::strcmp(arg, "--trace-dir") == 0 && i + 1 < argc) {
      opt.trace_dir = argv[++i];
    } else if (std::strcmp(arg, "--n") == 0 && i + 1 < argc) {
      opt.n = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--cycles") == 0 && i + 1 < argc) {
      opt.cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      opt.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--alphas") == 0 && i + 1 < argc) {
      opt.alphas.clear();
      for (const auto& tok : split_csv(argv[++i]))
        opt.alphas.push_back(std::strtod(tok.c_str(), nullptr));
    } else if (std::strcmp(arg, "--attacks") == 0 && i + 1 < argc) {
      opt.attacks = split_csv(argv[++i]);
    } else if (std::strcmp(arg, "--quick") == 0) {
      opt.n = 96;
      opt.cycles = 18;
    } else if (std::strcmp(arg, "--require-detect") == 0) {
      opt.require_detect = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.n < 16 || opt.cycles < 6 || opt.alphas.empty() ||
      opt.attacks.empty()) {
    std::fprintf(stderr, "attack_campaign: need n >= 16, cycles >= 6, and "
                         "non-empty --alphas/--attacks\n");
    return 2;
  }
  if (!opt.trace_dir.empty())
    std::filesystem::create_directories(opt.trace_dir);

  gt::telemetry::EventLogConfig lcfg;
  lcfg.path = opt.out;
  lcfg.deterministic_ts = true;  // same seed => byte-identical JSONL
  gt::telemetry::EventLog events(lcfg);
  events.set_context("tool", std::string("attack_campaign"));
  events.set_context("seed", opt.seed);

  bool detect_ok = true;
  std::printf("attack campaign: seed=%llu n=%zu cycles=%zu threads=%zu\n",
              static_cast<unsigned long long>(opt.seed), opt.n, opt.cycles,
              opt.threads);
  std::printf("%-16s %6s %8s %8s %8s %8s %8s  %s\n", "attack", "alpha",
              "tau", "rms", "gain", "capture", "detect", "signatures");
  for (const std::string& attack : opt.attacks) {
    for (const double alpha : opt.alphas) {
      CellResult r;
      try {
        r = run_cell(opt, attack, alpha, events);
      } catch (const std::exception& ex) {
        std::fprintf(stderr, "attack_campaign: cell (%s, %g) failed: %s\n",
                     attack.c_str(), alpha, ex.what());
        return 2;
      }
      std::printf("%-16s %6g %8.4f %8.4f %8.3f %8.2f %8s  %s\n",
                  attack.c_str(), alpha, r.kendall, r.rms, r.gain, r.capture,
                  r.detected ? "yes" : "no",
                  r.detected_types.empty() ? "-" : r.detected_types.c_str());
      const std::string want = expected_signature(attack);
      if (want.empty()) {
        if (r.detected) {
          std::fprintf(stderr,
                       "FAIL: clean control (%s, alpha=%g) raised "
                       "manipulation anomalies: %s\n",
                       attack.c_str(), alpha, r.detected_types.c_str());
          detect_ok = false;
        }
      } else if (r.detected_types.find(want) == std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: attack (%s, alpha=%g) left no %s signature "
                     "(found: %s)\n",
                     attack.c_str(), alpha, want.c_str(),
                     r.detected_types.empty() ? "none"
                                              : r.detected_types.c_str());
        detect_ok = false;
      }
    }
  }
  events.flush();
  std::printf("campaign jsonl -> %s\n", opt.out.c_str());
  if (opt.require_detect && !detect_ok) return 4;
  return 0;
}
