// trace_analyze: flight-recorder post-mortem for GTTRACE1 binary traces.
//
//   trace_analyze <trace.bin> [--perfetto out.json] [--expect-clean]
//                 [--expect-anomalies N] [--mass-tolerance T]
//                 [--storm-threshold K]
//
// Prints the analyzer summary (kind counts, retransmission chains grouped
// by trace id, partition windows, anomalies) and optionally exports Chrome
// trace-event JSON loadable at ui.perfetto.dev. Exit codes: 0 ok, 1 an
// --expect-* check failed, 2 file/usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "trace/analyzer.hpp"
#include "trace/perfetto.hpp"
#include "trace/trace.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.bin> [--perfetto out.json] [--expect-clean] "
               "[--expect-anomalies N] [--mass-tolerance T] "
               "[--storm-threshold K]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string perfetto_out;
  bool expect_clean = false;
  long expect_anomalies = -1;
  gt::trace::AnalyzerConfig config;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--perfetto") == 0 && i + 1 < argc) {
      perfetto_out = argv[++i];
    } else if (std::strcmp(arg, "--expect-clean") == 0) {
      expect_clean = true;
    } else if (std::strcmp(arg, "--expect-anomalies") == 0 && i + 1 < argc) {
      expect_anomalies = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--mass-tolerance") == 0 && i + 1 < argc) {
      config.mass_tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--storm-threshold") == 0 && i + 1 < argc) {
      config.storm_threshold =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);

  gt::trace::TraceFileHeader header;
  std::vector<gt::trace::TraceRecord> records;
  if (!gt::trace::read_trace_file(input, header, records)) return 2;

  const gt::trace::TraceSummary summary =
      gt::trace::analyze_trace(header, records, config);
  std::fputs(gt::trace::summary_text(summary).c_str(), stdout);

  if (!perfetto_out.empty()) {
    if (!gt::trace::write_perfetto_json(header, records, perfetto_out))
      return 2;
    std::printf("perfetto json -> %s\n", perfetto_out.c_str());
  }

  if (expect_clean && !summary.anomalies.empty()) {
    std::fprintf(stderr, "FAIL: expected a clean trace, found %zu anomalies\n",
                 summary.anomalies.size());
    return 1;
  }
  if (expect_anomalies >= 0 &&
      summary.anomalies.size() < static_cast<std::size_t>(expect_anomalies)) {
    std::fprintf(stderr, "FAIL: expected >= %ld anomalies, found %zu\n",
                 expect_anomalies, summary.anomalies.size());
    return 1;
  }
  return 0;
}
