// trace_analyze: flight-recorder post-mortem for GTTRACE1 binary traces.
//
//   trace_analyze <trace.bin> [--perfetto out.json] [--expect-clean]
//                 [--expect-anomalies N] [--expect-type NAME]
//                 [--mass-tolerance T] [--storm-threshold K]
//                 [--inflation-tolerance T] [--rank-jump X]
//                 [--rank-warmup N] [--bias-threshold X] [--min-ring N]
//
// Prints the analyzer summary (kind counts, retransmission chains grouped
// by trace id, partition windows, anomalies) and optionally exports Chrome
// trace-event JSON loadable at ui.perfetto.dev. --expect-type NAME (an
// anomaly_type_name string such as mass_inflation, rank_anomaly or
// feedback_ring; repeatable) requires at least one anomaly of that type —
// the CI attack matrix uses it to assert that seeded attacks leave their
// specific manipulation signature. Exit codes: 0 ok, 1 an --expect-* check
// failed, 2 file/usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "trace/analyzer.hpp"
#include "trace/perfetto.hpp"
#include "trace/trace.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.bin> [--perfetto out.json] [--expect-clean] "
               "[--expect-anomalies N] [--expect-type NAME] "
               "[--mass-tolerance T] [--storm-threshold K] "
               "[--inflation-tolerance T] [--rank-jump X] [--rank-warmup N] "
               "[--bias-threshold X] [--min-ring N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string perfetto_out;
  bool expect_clean = false;
  long expect_anomalies = -1;
  std::vector<std::string> expect_types;
  gt::trace::AnalyzerConfig config;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--perfetto") == 0 && i + 1 < argc) {
      perfetto_out = argv[++i];
    } else if (std::strcmp(arg, "--expect-clean") == 0) {
      expect_clean = true;
    } else if (std::strcmp(arg, "--expect-anomalies") == 0 && i + 1 < argc) {
      expect_anomalies = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--mass-tolerance") == 0 && i + 1 < argc) {
      config.mass_tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--storm-threshold") == 0 && i + 1 < argc) {
      config.storm_threshold =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--expect-type") == 0 && i + 1 < argc) {
      expect_types.emplace_back(argv[++i]);
    } else if (std::strcmp(arg, "--inflation-tolerance") == 0 && i + 1 < argc) {
      config.inflation_tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--rank-jump") == 0 && i + 1 < argc) {
      config.rank_jump = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--rank-warmup") == 0 && i + 1 < argc) {
      config.rank_warmup = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--rank-window") == 0 && i + 1 < argc) {
      config.rank_window = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--bias-threshold") == 0 && i + 1 < argc) {
      config.bias_threshold = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--min-ring") == 0 && i + 1 < argc) {
      config.min_ring =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);

  gt::trace::TraceFileHeader header;
  std::vector<gt::trace::TraceRecord> records;
  if (!gt::trace::read_trace_file(input, header, records)) return 2;

  const gt::trace::TraceSummary summary =
      gt::trace::analyze_trace(header, records, config);
  std::fputs(gt::trace::summary_text(summary).c_str(), stdout);

  if (!perfetto_out.empty()) {
    if (!gt::trace::write_perfetto_json(header, records, perfetto_out))
      return 2;
    std::printf("perfetto json -> %s\n", perfetto_out.c_str());
  }

  if (expect_clean && !summary.anomalies.empty()) {
    std::fprintf(stderr, "FAIL: expected a clean trace, found %zu anomalies\n",
                 summary.anomalies.size());
    return 1;
  }
  if (expect_anomalies >= 0 &&
      summary.anomalies.size() < static_cast<std::size_t>(expect_anomalies)) {
    std::fprintf(stderr, "FAIL: expected >= %ld anomalies, found %zu\n",
                 expect_anomalies, summary.anomalies.size());
    return 1;
  }
  for (const std::string& want : expect_types) {
    bool found = false;
    for (const auto& a : summary.anomalies)
      if (want == gt::trace::anomaly_type_name(a.type)) {
        found = true;
        break;
      }
    if (!found) {
      std::fprintf(stderr, "FAIL: expected an anomaly of type %s\n",
                   want.c_str());
      return 1;
    }
  }
  return 0;
}
