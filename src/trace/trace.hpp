// Causal tracing layer: deterministic span/trace ids for gossip cycles,
// phases, and individual network messages, recorded in sim-time into a
// ring-buffered binary flight-recorder sink.
//
// Design contract (the reason this file exists as its own subsystem):
//
//   * Observational. Emitting a record never schedules an event, never
//     draws randomness, and never touches protocol state, so gossip
//     results are bit-identical with tracing on or off, at any thread
//     count. All emissions happen from serial orchestration sections.
//   * Deterministic. Records carry *simulated* time only — never wall
//     clock — and every id comes from a monotonic counter advanced in
//     event-execution order. Two runs with the same seed therefore
//     produce byte-identical trace files.
//   * Causal. A span's parent_id links it to the span that caused it:
//     a retransmitted data copy parents to the previous hop, an ack
//     parents to the data hop it confirms, a gossip step parents to its
//     aggregation cycle — so a triplet's full hop chain (send -> drop ->
//     retransmit -> ack) is one tree under one trace id.
//   * Bounded. Records land in a fixed-capacity ring (overwrite-oldest);
//     the file header reports how many were emitted vs. retained, so an
//     overflowing recorder is loud, not silently truncated.
//
// The binary file (header + fixed 64-byte records) is read back by
// read_trace_file(); tools/trace_analyze renders it, checks invariants,
// and exports Chrome trace-event JSON loadable in Perfetto (perfetto.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/event_log.hpp"

namespace gt::trace {

/// Record kinds. Span kinds (kCycle, kGossipStep, kPhase) cover a time
/// interval [t_start, t_end); everything else is an instant (t_start ==
/// t_end). Values are part of the on-disk format — append only.
enum class SpanKind : std::uint32_t {
  kCycle = 1,        ///< one aggregation cycle (sync engine); value = change
  kGossipStep = 2,   ///< one synchronous gossip step; value = active triplets
  kPhase = 3,        ///< step sub-phase; flags = PhaseId, value = phase count
  kMsgSend = 4,      ///< data copy handed to the network; value = bytes
  kMsgDeliver = 5,   ///< data copy landed; value = bytes
  kMsgDrop = 6,      ///< data copy lost; flags = DropReason, value = bytes
  kAckSend = 7,      ///< ack handed to the network
  kAckDeliver = 8,   ///< ack landed
  kAckDrop = 9,      ///< ack lost; flags = DropReason
  kRetransmit = 10,  ///< retransmission decision; flags = attempt, value = rto
  kReclaim = 11,     ///< retries exhausted, mass reclaimed; value = triplets
  kSuspicion = 12,   ///< node suspects peer; value = failure streak
  kEpochRestart = 13,///< mass-repair epoch restart; value = new epoch
  kFault = 14,       ///< fault-injector marker; flags = fault::FaultKind
  kProbe = 15,       ///< flight-recorder sample; flags = ProbeField
  kAttack = 16,      ///< attack-injector marker; flags = attack::AttackKind
};

const char* kind_name(SpanKind kind) noexcept;

/// Step sub-phases (kPhase flags).
enum class PhaseId : std::uint32_t {
  kRoute = 0,
  kBucket = 1,
  kGather = 2,
  kBookkeeping = 3,
};

/// Flight-recorder probe fields (kProbe flags). One sample per node emits
/// five kProbe records, one per field, sharing trace_id (the sweep) and
/// `peer` (the sweep's series index). kRatingBias records are emitted
/// separately (probe_field) by the attack monitors, one per flagged rater.
enum class ProbeField : std::uint32_t {
  kWeight = 0,        ///< local/column weight mass
  kMassResidual = 1,  ///< weight mass minus its conserved expectation
  kDeltaV = 2,        ///< |estimate(t) - estimate(t-1)|
  kScore = 3,         ///< the component's reputation estimate (pre-alpha-mix)
  kXMassResidual = 4, ///< x mass minus its legitimate expectation
                      ///< (> 0 = counterfeit mass injected into the column)
  kRatingBias = 5,    ///< per-rater slander bias of a feedback burst
};

const char* probe_field_name(ProbeField field) noexcept;

/// Numeric drop reasons (kMsgDrop/kAckDrop flags), mirroring the static
/// reason strings net::Network reports.
enum DropReason : std::uint32_t {
  kDropUnknown = 0,
  kDropSenderDown = 1,
  kDropReceiverDown = 2,
  kDropLinkFailed = 3,
  kDropPartitioned = 4,
  kDropLoss = 5,
  kDropReceiverDownInFlight = 6,
  kDropPartitionedInFlight = 7,
  kDropCorrupted = 8,
};

std::uint32_t drop_reason_code(const char* reason) noexcept;
const char* drop_reason_name(std::uint32_t code) noexcept;

/// `node` value for records that belong to no node track (cycles, steps,
/// epoch restarts) and `peer` value for records with no counterpart.
inline constexpr std::uint32_t kGlobalNode = 0xffffffffu;
inline constexpr std::uint32_t kNoPeer = 0xffffffffu;

/// One fixed-size binary trace record. Times are simulated time (the
/// scheduler clock for async runs; cumulative gossip-step index for
/// synchronous runs) — never wall clock, by the determinism contract.
struct TraceRecord {
  double t_start = 0.0;
  double t_end = 0.0;
  std::uint64_t trace_id = 0;   ///< causal tree: cycle / message / sweep
  std::uint64_t span_id = 0;    ///< unique per record batch of a span
  std::uint64_t parent_id = 0;  ///< span that caused this one; 0 = root
  std::uint32_t kind = 0;       ///< SpanKind
  std::uint32_t flags = 0;      ///< kind-specific (reason/phase/field/attempt)
  std::uint32_t node = kGlobalNode;
  std::uint32_t peer = kNoPeer;
  double value = 0.0;           ///< kind-specific scalar
};
static_assert(sizeof(TraceRecord) == 64, "TraceRecord must be 64 bytes");

/// On-disk header. 48 bytes, written verbatim (no wall clock, no paths).
struct TraceFileHeader {
  char magic[8] = {'G', 'T', 'T', 'R', 'A', 'C', 'E', '1'};
  std::uint32_t version = 1;
  std::uint32_t record_size = sizeof(TraceRecord);
  std::uint64_t record_count = 0;      ///< records present in the file
  std::uint64_t records_emitted = 0;   ///< total emitted (>= record_count)
  std::uint64_t span_high_water = 0;   ///< last span id allocated
  std::uint32_t node_count = 0;        ///< max real node id + 1
  std::uint32_t reserved = 0;
};
static_assert(sizeof(TraceFileHeader) == 48, "TraceFileHeader must be 48 bytes");

/// Per-message causal context threaded through net::Network::send. A
/// default-constructed ctx (span_id == 0) means "untraced"; the network
/// then emits nothing for this message.
struct TraceCtx {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;    ///< this hop's span (caller-allocated)
  std::uint64_t parent_id = 0;  ///< previous hop / confirmed data hop
  std::uint32_t attempt = 0;    ///< 0 = first transmission
  bool ack = false;             ///< ack-class message (kAck* kinds)

  bool active() const noexcept { return span_id != 0; }
};

struct TraceConfig {
  std::string path;                      ///< output file; empty disables
  std::size_t ring_capacity = 1 << 20;   ///< records retained (64 MiB)
};

/// Ring-buffered binary trace sink. Single-writer: emissions must come
/// from serial orchestration sections (which is also what makes them
/// thread-count invariant). A default-constructed sink is disabled and
/// every call is a cheap no-op.
class TraceSink {
 public:
  TraceSink() = default;
  explicit TraceSink(TraceConfig config);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  bool enabled() const noexcept { return enabled_; }

  /// Monotonic id allocators (first id is 1; 0 means "none").
  std::uint64_t alloc_span() noexcept { return ++next_span_; }
  std::uint64_t alloc_trace() noexcept { return ++next_trace_; }

  /// Appends a record to the ring (overwrite-oldest when full). Also
  /// mirrors it as a `trace` JSONL record when an EventLog is attached
  /// (kProbe records are mirrored by probe() as `probe` records instead).
  void emit(const TraceRecord& rec);

  /// Flight-recorder sample: one node's (weight, mass residual, delta,
  /// score, x residual) tuple at time t. Emits five kProbe records sharing
  /// `sweep_trace` (one probe sweep = one trace id) with `series` as the
  /// sweep index, plus one consolidated `probe` JSONL record when
  /// mirroring. Non-finite values are mirrored as 0 (JSON has no NaN).
  void probe(std::uint64_t sweep_trace, std::uint64_t series, double t,
             std::uint32_t node, double weight, double mass_residual,
             double delta_v, double score, double x_residual);

  /// Emits a single kProbe record for one (node, field, value) sample —
  /// the attack monitors use it for kRatingBias series. Mirrored as a
  /// `probe_field` JSONL record (field name + value) when mirroring.
  void probe_field(std::uint64_t sweep_trace, std::uint64_t series, double t,
                   std::uint32_t node, ProbeField field, double value);

  /// Synthetic time cursor for synchronous traces (time axis = cumulative
  /// gossip steps): kernels resolve their base offset from it and bump it
  /// past their last step, so several runs share one monotone axis.
  double time_cursor() const noexcept { return time_cursor_; }
  void bump_time_cursor(double t) noexcept {
    if (t > time_cursor_) time_cursor_ = t;
  }

  /// Mirrors every emitted record into `events` (see emit()/probe()).
  void set_event_log(telemetry::EventLog* events) { events_ = events; }

  std::uint64_t records_emitted() const noexcept { return emitted_; }
  std::uint64_t records_dropped() const noexcept {
    return emitted_ - static_cast<std::uint64_t>(ring_.size());
  }

  /// Retained records in emission order (for in-process analysis/tests).
  std::vector<TraceRecord> records() const;

  /// Writes header + retained records to the configured path and disables
  /// the sink. Idempotent; the destructor calls it. Returns false on I/O
  /// failure (also reported on stderr).
  bool finish();

 private:
  bool enabled_ = false;
  TraceConfig config_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  ///< oldest record once the ring has wrapped
  std::uint64_t emitted_ = 0;
  std::uint64_t next_span_ = 0;
  std::uint64_t next_trace_ = 0;
  double time_cursor_ = 0.0;
  std::uint32_t max_node_ = 0;  ///< high-water real node id + 1
  bool finished_ = false;
  telemetry::EventLog* events_ = nullptr;
};

/// Reads a trace file back. Returns false (with a stderr diagnostic) on
/// open failure, bad magic/version, or a truncated record section.
bool read_trace_file(const std::string& path, TraceFileHeader& header,
                     std::vector<TraceRecord>& records);

}  // namespace gt::trace
