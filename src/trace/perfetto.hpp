// Chrome trace-event JSON export (loadable at ui.perfetto.dev).
//
// Maps the binary trace onto Perfetto's track model:
//   * pid 0 is the simulation; tid 0 is the global "engine" track and
//     tid i+1 is node i's track (thread_name metadata labels both);
//   * cycle/step/phase spans become `ph:"X"` complete slices;
//   * each message hop becomes a sender-track slice spanning send ->
//     deliver/drop, a receiver-track landing slice, and an `s`/`f` flow
//     arrow connecting them (the causal arrows you follow in the UI);
//   * drops, retransmits, reclaims, suspicions, epoch restarts and
//     fault-injector events become `ph:"i"` instant markers (faults are
//     global-scoped);
//   * flight-recorder probes aggregate into `ph:"C"` counter tracks
//     (mean/max across nodes per sweep, one track per probe field).
//
// Simulated time is scaled by 1e6 (one sim-time unit renders as one
// second); synchronous traces use the gossip-step index as their time
// axis, so one step renders as one second too.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace gt::trace {

/// Writes `records` as Chrome trace-event JSON. Returns false on I/O
/// failure (also reported on stderr).
bool write_perfetto_json(const TraceFileHeader& header,
                         const std::vector<TraceRecord>& records,
                         const std::string& path);

}  // namespace gt::trace
