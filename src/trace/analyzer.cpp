#include "trace/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <sstream>

namespace gt::trace {
namespace {

bool is_kind(const TraceRecord& r, SpanKind k) noexcept {
  return r.kind == static_cast<std::uint32_t>(k);
}

bool is_partition_drop(const TraceRecord& r) noexcept {
  if (!is_kind(r, SpanKind::kMsgDrop) && !is_kind(r, SpanKind::kAckDrop))
    return false;
  return r.flags == kDropPartitioned || r.flags == kDropPartitionedInFlight;
}

std::string fmt(const char* format, ...) __attribute__((format(printf, 1, 2)));
std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace

const char* anomaly_type_name(Anomaly::Type type) noexcept {
  switch (type) {
    case Anomaly::Type::kRingOverflow: return "ring_overflow";
    case Anomaly::Type::kMassLeak: return "mass_leak";
    case Anomaly::Type::kSuspectedPeer: return "suspected_peer";
    case Anomaly::Type::kRetransmitStorm: return "retransmit_storm";
    case Anomaly::Type::kPartition: return "partition";
    case Anomaly::Type::kConvergenceStall: return "convergence_stall";
    case Anomaly::Type::kMassInflation: return "mass_inflation";
    case Anomaly::Type::kRankAnomaly: return "rank_anomaly";
    case Anomaly::Type::kFeedbackRing: return "feedback_ring";
  }
  return "unknown";
}

TraceSummary analyze_trace(const TraceFileHeader& header,
                           const std::vector<TraceRecord>& records,
                           const AnalyzerConfig& config) {
  TraceSummary out;
  out.header = header;
  for (const auto& r : records) ++out.kind_counts[r.kind];

  // --- ring overflow -----------------------------------------------------
  if (header.records_emitted > header.record_count) {
    Anomaly a;
    a.type = Anomaly::Type::kRingOverflow;
    a.value = static_cast<double>(header.records_emitted - header.record_count);
    a.detail = fmt("%llu of %llu emitted records lost to ring overflow",
                   static_cast<unsigned long long>(header.records_emitted -
                                                   header.record_count),
                   static_cast<unsigned long long>(header.records_emitted));
    out.anomalies.push_back(std::move(a));
  }

  // --- retransmission chains (grouped by trace id) -----------------------
  std::map<std::uint64_t, RetransmitChain> chains;
  for (const auto& r : records) {
    if (is_kind(r, SpanKind::kRetransmit)) {
      auto& c = chains[r.trace_id];
      if (c.retransmits == 0) {
        c.trace_id = r.trace_id;
        c.node = r.node;
        c.peer = r.peer;
        c.t_first = r.t_start;
      }
      ++c.retransmits;
      c.t_last = r.t_start;
    }
  }
  for (const auto& r : records) {
    auto it = chains.find(r.trace_id);
    if (it == chains.end()) continue;
    if (is_kind(r, SpanKind::kAckDeliver)) it->second.acked = true;
    if (is_kind(r, SpanKind::kReclaim)) it->second.reclaimed = true;
  }
  out.chains.reserve(chains.size());
  for (auto& [id, c] : chains) out.chains.push_back(c);
  for (const auto& c : out.chains) {
    if (c.retransmits < config.storm_threshold) continue;
    Anomaly a;
    a.type = Anomaly::Type::kRetransmitStorm;
    a.trace_id = c.trace_id;
    a.node = c.node;
    a.peer = c.peer;
    a.t_start = c.t_first;
    a.t_end = c.t_last;
    a.value = c.retransmits;
    a.detail = fmt("trace %llu: %u retransmits %u->%u over [%.3f, %.3f]%s",
                   static_cast<unsigned long long>(c.trace_id), c.retransmits,
                   c.node, c.peer, c.t_first, c.t_last,
                   c.reclaimed ? ", reclaimed" : (c.acked ? ", acked" : ""));
    out.anomalies.push_back(std::move(a));
  }

  // --- partitions (fault markers + drops inside the window) --------------
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    if (!is_kind(r, SpanKind::kFault) || r.flags != 4 /*kPartitionStart*/)
      continue;
    PartitionWindow win;
    win.t_start = r.t_start;
    win.t_end = std::numeric_limits<double>::infinity();
    for (std::size_t j = i + 1; j < records.size(); ++j) {
      const auto& e = records[j];
      if (is_kind(e, SpanKind::kFault) && e.flags == 5 /*kPartitionEnd*/) {
        win.t_end = e.t_start;
        break;
      }
      if (is_partition_drop(e)) ++win.drops;
    }
    out.partitions.push_back(win);
    Anomaly a;
    a.type = Anomaly::Type::kPartition;
    a.t_start = win.t_start;
    a.t_end = win.t_end;
    a.value = static_cast<double>(win.drops);
    a.detail = fmt("partition window [%.3f, %.3f]: %llu partitioned drops",
                   win.t_start, win.t_end,
                   static_cast<unsigned long long>(win.drops));
    out.anomalies.push_back(std::move(a));
  }

  // --- suspected peers (one anomaly per (node, peer), max streak) --------
  std::map<std::pair<std::uint32_t, std::uint32_t>, Anomaly> suspicions;
  for (const auto& r : records) {
    if (!is_kind(r, SpanKind::kSuspicion)) continue;
    auto& a = suspicions[{r.node, r.peer}];
    if (a.detail.empty()) {
      a.type = Anomaly::Type::kSuspectedPeer;
      a.node = r.node;
      a.peer = r.peer;
      a.t_start = r.t_start;
    }
    a.t_end = r.t_start;
    if (r.value > a.value) a.value = r.value;
    a.detail = fmt("node %u suspects peer %u (failure streak %.0f) at t=%.3f",
                   r.node, r.peer, a.value, a.t_start);
  }
  for (auto& [key, a] : suspicions) out.anomalies.push_back(std::move(a));

  // --- probe-based detectors ---------------------------------------------
  // Sweeps in emission order: (trace id, series, t, per-field aggregates).
  struct Sweep {
    std::uint64_t trace_id = 0;
    std::uint64_t series = 0;
    double t = 0.0;
    double dv_sum = 0.0;
    std::size_t dv_count = 0;
    double mean_dv() const noexcept {
      return dv_count ? dv_sum / static_cast<double>(dv_count) : 0.0;
    }
  };
  std::vector<Sweep> sweeps;
  for (const auto& r : records) {
    if (!is_kind(r, SpanKind::kProbe)) continue;
    if (sweeps.empty() || sweeps.back().trace_id != r.trace_id) {
      Sweep s;
      s.trace_id = r.trace_id;
      s.series = r.peer;
      s.t = r.t_end;
      sweeps.push_back(s);
    }
    if (r.flags == static_cast<std::uint32_t>(ProbeField::kDeltaV)) {
      sweeps.back().dv_sum += std::abs(r.value);
      ++sweeps.back().dv_count;
    }
  }

  // Mass leak: check the final sweep's residual on every node it covers.
  if (!sweeps.empty()) {
    const std::uint64_t last = sweeps.back().trace_id;
    for (const auto& r : records) {
      if (!is_kind(r, SpanKind::kProbe) || r.trace_id != last) continue;
      if (r.flags != static_cast<std::uint32_t>(ProbeField::kMassResidual))
        continue;
      if (std::abs(r.value) <= config.mass_tolerance) continue;
      Anomaly a;
      a.type = Anomaly::Type::kMassLeak;
      a.trace_id = last;
      a.node = r.node;
      a.t_start = a.t_end = r.t_end;
      a.value = r.value;
      a.detail = fmt("node %u mass residual %.3e exceeds tolerance %.1e "
                     "in final sweep",
                     r.node, r.value, config.mass_tolerance);
      out.anomalies.push_back(std::move(a));
    }
  }

  // Convergence stall: within one probe series (series index increments by
  // one between consecutive sweeps of the same run; a reset to 0 starts a
  // new run), mean |dV| should decay geometrically. Flag growth beyond
  // growth_threshold, and — when an expected lambda2/lambda1 rate is given
  // — decay slower than sqrt of that rate.
  for (std::size_t i = 1; i < sweeps.size(); ++i) {
    const Sweep& prev = sweeps[i - 1];
    const Sweep& cur = sweeps[i];
    if (cur.series != prev.series + 1 || cur.series == 0) continue;
    const double m0 = prev.mean_dv();
    const double m1 = cur.mean_dv();
    if (m0 <= 1e-15 || m1 <= 1e-12) continue;
    const bool grew = m1 > config.growth_threshold * m0;
    const bool slow = config.expected_rate > 0.0 &&
                      m1 > std::sqrt(config.expected_rate) * m0;
    if (!grew && !slow) continue;
    Anomaly a;
    a.type = Anomaly::Type::kConvergenceStall;
    a.trace_id = cur.trace_id;
    a.t_start = prev.t;
    a.t_end = cur.t;
    a.value = m1 / m0;
    a.detail = fmt("mean |dV| %s %.2fx between sweeps %llu and %llu "
                   "(%.3e -> %.3e)",
                   grew ? "grew" : "decayed only", m1 / m0,
                   static_cast<unsigned long long>(prev.series),
                   static_cast<unsigned long long>(cur.series), m0, m1);
    out.anomalies.push_back(std::move(a));
  }

  // --- manipulation-signature detectors ----------------------------------
  // These read only honest probe series (kXMassResidual / kScore /
  // kRatingBias), never the kAttack markers, so a hit is evidence the
  // attack left a measurable footprint in the run itself.

  // Mass inflation: a gossip-layer liar mints x-mass every cycle, and the
  // synchronous kernel's per-cycle restart folds the counterfeit mass into
  // v at the cycle boundary — so the signature is the *maximum* positive
  // per-column excess over all sweeps, not the final sweep's.
  struct Inflation {
    double value = 0.0;
    double t = 0.0;
    std::uint64_t trace_id = 0;
  };
  std::map<std::uint32_t, Inflation> inflation;
  for (const auto& r : records) {
    if (!is_kind(r, SpanKind::kProbe)) continue;
    if (r.flags != static_cast<std::uint32_t>(ProbeField::kXMassResidual))
      continue;
    auto& worst = inflation[r.node];
    if (r.value > worst.value) {
      worst.value = r.value;
      worst.t = r.t_end;
      worst.trace_id = r.trace_id;
    }
  }
  for (const auto& [node, worst] : inflation) {
    if (worst.value <= config.inflation_tolerance) continue;
    Anomaly a;
    a.type = Anomaly::Type::kMassInflation;
    a.trace_id = worst.trace_id;
    a.node = node;
    a.t_start = a.t_end = worst.t;
    a.value = worst.value;
    a.detail = fmt("column %u carries %.3e counterfeit x-mass at t=%.3f "
                   "(tolerance %.1e)",
                   node, worst.value, worst.t, config.inflation_tolerance);
    out.anomalies.push_back(std::move(a));
  }

  // Rank anomaly: per-node score trajectories across sweeps of one series.
  // A relative move beyond rank_jump within rank_window sweeps after the
  // warmup is the signature of a whitewashing rejoin or an on-off
  // oscillator (whose erosion/recovery spans a few cycles, hence the
  // trailing window rather than a single consecutive pair). The
  // denominator is floored at 0.01/n so near-zero scores cannot
  // manufacture unbounded jump factors.
  struct ScoreSweep {
    std::uint64_t trace_id = 0;
    std::uint64_t series = 0;
    double t = 0.0;
    std::map<std::uint32_t, double> score;
  };
  std::vector<ScoreSweep> score_sweeps;
  for (const auto& r : records) {
    if (!is_kind(r, SpanKind::kProbe)) continue;
    if (r.flags != static_cast<std::uint32_t>(ProbeField::kScore)) continue;
    if (score_sweeps.empty() || score_sweeps.back().trace_id != r.trace_id) {
      ScoreSweep s;
      s.trace_id = r.trace_id;
      s.series = r.peer;
      s.t = r.t_end;
      score_sweeps.push_back(std::move(s));
    }
    score_sweeps.back().score[r.node] = r.value;
  }
  struct RankJump {
    double factor = 0.0;
    double from = 0.0;
    double to = 0.0;
    double t_start = 0.0;
    double t_end = 0.0;
    std::uint64_t trace_id = 0;
    std::uint64_t sweep = 0;
  };
  std::map<std::uint32_t, RankJump> rank_jumps;
  const double score_floor =
      0.01 / static_cast<double>(std::max<std::uint32_t>(header.node_count, 1));
  const std::uint64_t window = std::max<std::uint64_t>(config.rank_window, 1);
  for (std::size_t i = 1; i < score_sweeps.size(); ++i) {
    const ScoreSweep& cur = score_sweeps[i];
    if (cur.series < std::max<std::uint64_t>(config.rank_warmup, 1)) continue;
    for (std::size_t lag = 1; lag <= window && lag <= i; ++lag) {
      const ScoreSweep& prev = score_sweeps[i - lag];
      // Stay inside one contiguous series run (a reset to 0 starts a new
      // run; sweeps from another series don't chain).
      if (cur.series != prev.series + lag) break;
      for (const auto& [node, to] : cur.score) {
        const auto it = prev.score.find(node);
        if (it == prev.score.end()) continue;
        const double from = it->second;
        const double rel =
            std::abs(to - from) / std::max(std::abs(from), score_floor);
        if (rel <= config.rank_jump) continue;
        auto& worst = rank_jumps[node];
        if (rel > worst.factor)
          worst = RankJump{rel, from, to, prev.t, cur.t, cur.trace_id,
                           cur.series};
      }
    }
  }
  for (const auto& [node, j] : rank_jumps) {
    Anomaly a;
    a.type = Anomaly::Type::kRankAnomaly;
    a.trace_id = j.trace_id;
    a.node = node;
    a.t_start = j.t_start;
    a.t_end = j.t_end;
    a.value = j.factor;
    a.detail = fmt("node %u score jumped %.2fx (%.3e -> %.3e) into sweep %llu",
                   node, j.factor, j.from, j.to,
                   static_cast<unsigned long long>(j.sweep));
    out.anomalies.push_back(std::move(a));
  }

  // Feedback ring: a kRatingBias sweep where >= min_ring raters score the
  // top half of the population at bias >= bias_threshold. Consecutive
  // flagged sweeps merge into one anomaly window.
  struct BiasSweep {
    std::uint64_t trace_id = 0;
    std::uint64_t series = 0;
    double t = 0.0;
    std::size_t hostile = 0;
  };
  std::vector<BiasSweep> bias_sweeps;
  for (const auto& r : records) {
    if (!is_kind(r, SpanKind::kProbe)) continue;
    if (r.flags != static_cast<std::uint32_t>(ProbeField::kRatingBias))
      continue;
    if (bias_sweeps.empty() || bias_sweeps.back().trace_id != r.trace_id) {
      BiasSweep s;
      s.trace_id = r.trace_id;
      s.series = r.peer;
      s.t = r.t_end;
      bias_sweeps.push_back(s);
    }
    if (r.value >= config.bias_threshold) ++bias_sweeps.back().hostile;
  }
  bool ring_open = false;
  for (const BiasSweep& s : bias_sweeps) {
    const bool flagged = s.hostile >= config.min_ring;
    if (!flagged) {
      ring_open = false;
      continue;
    }
    if (ring_open) {
      Anomaly& a = out.anomalies.back();
      a.t_end = s.t;
      a.value = std::max(a.value, static_cast<double>(s.hostile));
      a.detail = fmt("feedback ring: up to %.0f raters with bias >= %.2f "
                     "over [%.3f, %.3f]",
                     a.value, config.bias_threshold, a.t_start, a.t_end);
      continue;
    }
    Anomaly a;
    a.type = Anomaly::Type::kFeedbackRing;
    a.trace_id = s.trace_id;
    a.t_start = a.t_end = s.t;
    a.value = static_cast<double>(s.hostile);
    a.detail = fmt("feedback ring: up to %.0f raters with bias >= %.2f "
                   "over [%.3f, %.3f]",
                   a.value, config.bias_threshold, a.t_start, a.t_end);
    out.anomalies.push_back(std::move(a));
    ring_open = true;
  }

  return out;
}

std::string summary_text(const TraceSummary& s) {
  std::ostringstream os;
  os << "trace: " << s.header.record_count << " records retained ("
     << s.header.records_emitted << " emitted), " << s.header.node_count
     << " nodes, span high-water " << s.header.span_high_water << "\n";
  os << "kinds:";
  for (const auto& [kind, count] : s.kind_counts)
    os << " " << kind_name(static_cast<SpanKind>(kind)) << "=" << count;
  os << "\n";
  if (!s.chains.empty()) {
    const auto longest = std::max_element(
        s.chains.begin(), s.chains.end(),
        [](const RetransmitChain& a, const RetransmitChain& b) {
          return a.retransmits < b.retransmits;
        });
    os << "retransmit chains: " << s.chains.size() << " (longest "
       << longest->retransmits << " retransmits, trace " << longest->trace_id
       << ", " << longest->node << "->" << longest->peer << ")\n";
  }
  for (const auto& w : s.partitions)
    os << "partition: [" << w.t_start << ", " << w.t_end << "] with "
       << w.drops << " partitioned drops\n";
  os << "anomalies: " << s.anomalies.size() << "\n";
  for (const auto& a : s.anomalies)
    os << "  [" << anomaly_type_name(a.type) << "] " << a.detail << "\n";
  if (s.anomalies.empty()) os << "clean\n";
  return os.str();
}

}  // namespace gt::trace
