// Post-run trace analyzer: reads the records produced by TraceSink and
// turns them into a summary plus a list of anomalies — the "why did this
// run degrade" half of the flight recorder.
//
// Detectors (all deterministic; each maps to an Anomaly::Type):
//   * ring overflow    — the sink emitted more records than it retained;
//   * mass leak        — the final probe sweep shows |mass residual| above
//                        tolerance on some node (conserved-mass invariant
//                        broken, independent of epsilon);
//   * suspected peer   — a node raised suspicion on a peer (stalled or
//                        crashed neighbour);
//   * retransmit storm — one message's causal chain needed >= threshold
//                        retransmissions (congestion/loss hot spot);
//   * partition        — a fault-injector partition window, annotated with
//                        the partitioned drops recorded inside it;
//   * convergence stall— consecutive probe sweeps whose mean |dV| grew by
//                        more than growth_threshold, where gossip theory
//                        predicts geometric decay at ~lambda2/lambda1 per
//                        cycle (the analyzer self-calibrates from the
//                        series itself; set expected_rate to also flag
//                        sweeps decaying slower than a known lambda2/lambda1).
//
// Manipulation-signature detectors (forensic: they read only honest probe
// series — kXMassResidual, kScore, kRatingBias — never the kAttack markers,
// so a detection is evidence the attack left a measurable footprint, not an
// echo of the injector's own log):
//   * mass inflation   — some column's x-mass exceeds what the trust matrix
//                        and current scores can account for by more than
//                        inflation_tolerance in any sweep (a gossip-layer
//                        liar minting counterfeit shares);
//   * rank anomaly     — after rank_warmup sweeps, a node's score moves by
//                        more than rank_jump (relative) within rank_window
//                        consecutive sweeps of one series (whitewashing
//                        rejoin, or an on-off oscillator whose erosion and
//                        recovery each span a few cycles);
//   * feedback ring    — one kRatingBias sweep shows >= min_ring raters
//                        whose slander bias (fraction of their condemnations
//                        aimed at consensus-reputable peers) is >= bias
//                        threshold (a collusive slander ring; consecutive
//                        flagged sweeps merge into one anomaly window).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace gt::trace {

struct AnalyzerConfig {
  double mass_tolerance = 1e-6;     ///< |residual| above this is a leak
  std::uint32_t storm_threshold = 3;///< retransmits per chain to call a storm
  double growth_threshold = 5.0;    ///< mean |dV| growth factor to call a stall
  double expected_rate = 0.0;       ///< optional lambda2/lambda1; 0 = off
  double inflation_tolerance = 1e-6;///< x-mass excess above this is minting
  double rank_jump = 0.6;           ///< relative score jump to call an anomaly
  std::uint64_t rank_warmup = 8;    ///< sweeps to skip before rank detection
  std::uint64_t rank_window = 3;    ///< trailing sweeps a jump may span
  double bias_threshold = 0.6;      ///< slander bias to count a rater hostile
  std::size_t min_ring = 3;         ///< hostile raters per sweep to call a ring
};

struct Anomaly {
  enum class Type : std::uint32_t {
    kRingOverflow = 0,
    kMassLeak = 1,
    kSuspectedPeer = 2,
    kRetransmitStorm = 3,
    kPartition = 4,
    kConvergenceStall = 5,
    kMassInflation = 6,
    kRankAnomaly = 7,
    kFeedbackRing = 8,
  };
  Type type = Type::kRingOverflow;
  std::uint64_t trace_id = 0;       ///< causal tree involved (0 = none)
  std::uint32_t node = kGlobalNode;
  std::uint32_t peer = kNoPeer;
  double t_start = 0.0;
  double t_end = 0.0;
  double value = 0.0;               ///< type-specific magnitude
  std::string detail;               ///< human-readable one-liner
};

const char* anomaly_type_name(Anomaly::Type type) noexcept;

/// One message's retransmission history, grouped by trace id.
struct RetransmitChain {
  std::uint64_t trace_id = 0;
  std::uint32_t node = kGlobalNode;  ///< sender
  std::uint32_t peer = kNoPeer;      ///< receiver
  std::uint32_t retransmits = 0;
  double t_first = 0.0;              ///< first retransmission decision
  double t_last = 0.0;               ///< last retransmission decision
  bool acked = false;                ///< an ack for this trace id landed
  bool reclaimed = false;            ///< retries exhausted, mass reclaimed
};

/// A fault-injector partition episode.
struct PartitionWindow {
  double t_start = 0.0;
  double t_end = 0.0;          ///< +inf if never healed before trace end
  std::uint64_t drops = 0;     ///< partitioned(-in-flight) drops inside it
};

struct TraceSummary {
  TraceFileHeader header;
  std::map<std::uint32_t, std::uint64_t> kind_counts;  ///< SpanKind -> count
  std::vector<RetransmitChain> chains;    ///< trace-id ascending
  std::vector<PartitionWindow> partitions;
  std::vector<Anomaly> anomalies;         ///< detection-pass order (stable)
};

/// Runs every detector over `records` (emission order, as returned by
/// read_trace_file / TraceSink::records).
TraceSummary analyze_trace(const TraceFileHeader& header,
                           const std::vector<TraceRecord>& records,
                           const AnalyzerConfig& config = {});

/// Deterministic multi-line report (ends with "clean" when no anomalies).
std::string summary_text(const TraceSummary& summary);

}  // namespace gt::trace
