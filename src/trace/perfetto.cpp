#include "trace/perfetto.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>

namespace gt::trace {
namespace {

constexpr double kTimeScale = 1e6;  ///< sim-time units -> microseconds

double finite(double v) noexcept { return std::isfinite(v) ? v : 0.0; }

/// tid 0 = global/engine track, tid i+1 = node i.
long tid_of(std::uint32_t node) noexcept {
  return node == kGlobalNode ? 0L : static_cast<long>(node) + 1L;
}

struct Writer {
  std::FILE* f = nullptr;
  bool first = true;

  void event(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    if (!first) std::fputs(",\n", f);
    first = false;
    va_list args;
    va_start(args, fmt);
    std::vfprintf(f, fmt, args);
    va_end(args);
  }
};

const char* phase_name(std::uint32_t id) noexcept {
  switch (static_cast<PhaseId>(id)) {
    case PhaseId::kRoute: return "route";
    case PhaseId::kBucket: return "bucket";
    case PhaseId::kGather: return "gather";
    case PhaseId::kBookkeeping: return "bookkeeping";
  }
  return "phase";
}

}  // namespace

bool write_perfetto_json(const TraceFileHeader& header,
                         const std::vector<TraceRecord>& records,
                         const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "perfetto: cannot open %s\n", path.c_str());
    return false;
  }
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  Writer w{f, true};

  // First pass: match each hop span to its outcome so the sender-track
  // slice can span send -> deliver/drop, and collect the tracks in use.
  struct Outcome {
    double t = 0.0;
    bool delivered = false;
  };
  std::unordered_map<std::uint64_t, Outcome> outcome;  // span -> landing
  std::set<long> tids{0};
  for (const auto& r : records) {
    tids.insert(tid_of(r.node));
    const auto kind = static_cast<SpanKind>(r.kind);
    if (kind == SpanKind::kMsgDeliver || kind == SpanKind::kAckDeliver)
      outcome[r.span_id] = {r.t_end, true};
    else if (kind == SpanKind::kMsgDrop || kind == SpanKind::kAckDrop)
      outcome[r.span_id] = {r.t_end, false};
    if (r.peer != kNoPeer) tids.insert(tid_of(r.peer));
  }

  w.event("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"gossiptrust sim (n=%u)\"}}",
          header.node_count);
  for (const long tid : tids) {
    if (tid == 0)
      w.event("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
              "\"args\":{\"name\":\"engine\"}}");
    else
      w.event("{\"ph\":\"M\",\"pid\":0,\"tid\":%ld,\"name\":\"thread_name\","
              "\"args\":{\"name\":\"node %ld\"}}",
              tid, tid - 1);
    w.event("{\"ph\":\"M\",\"pid\":0,\"tid\":%ld,\"name\":\"thread_sort_index\","
            "\"args\":{\"sort_index\":%ld}}",
            tid, tid);
  }

  // Probe sweeps aggregate into counters: (sweep trace id, field) ->
  // (t, mean, max) across nodes, emitted after the main pass.
  struct ProbeAgg {
    double t = 0.0, sum = 0.0, max = 0.0;
    std::size_t count = 0;
  };
  std::map<std::pair<std::uint64_t, std::uint32_t>, ProbeAgg> probes;

  for (const auto& r : records) {
    const auto kind = static_cast<SpanKind>(r.kind);
    const double ts = r.t_start * kTimeScale;
    const double dur = (r.t_end - r.t_start) * kTimeScale;
    const long tid = tid_of(r.node);
    switch (kind) {
      case SpanKind::kCycle:
        w.event("{\"ph\":\"X\",\"pid\":0,\"tid\":%ld,\"ts\":%.3f,"
                "\"dur\":%.3f,\"name\":\"cycle %u\",\"cat\":\"cycle\","
                "\"args\":{\"trace_id\":%llu,\"change\":%.9g}}",
                tid, ts, dur, r.flags,
                static_cast<unsigned long long>(r.trace_id), finite(r.value));
        break;
      case SpanKind::kGossipStep:
        w.event("{\"ph\":\"X\",\"pid\":0,\"tid\":%ld,\"ts\":%.3f,"
                "\"dur\":%.3f,\"name\":\"step %u\",\"cat\":\"step\","
                "\"args\":{\"trace_id\":%llu,\"active_triplets\":%.9g}}",
                tid, ts, dur, r.flags,
                static_cast<unsigned long long>(r.trace_id), finite(r.value));
        break;
      case SpanKind::kPhase:
        w.event("{\"ph\":\"X\",\"pid\":0,\"tid\":%ld,\"ts\":%.3f,"
                "\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"phase\","
                "\"args\":{\"count\":%.9g}}",
                tid, ts, dur, phase_name(r.flags), finite(r.value));
        break;
      case SpanKind::kMsgSend:
      case SpanKind::kAckSend: {
        const auto it = outcome.find(r.span_id);
        const double t_land = it != outcome.end() ? it->second.t : r.t_start;
        const char* cat = kind == SpanKind::kMsgSend ? "msg" : "ack";
        w.event("{\"ph\":\"X\",\"pid\":0,\"tid\":%ld,\"ts\":%.3f,"
                "\"dur\":%.3f,\"name\":\"%s #%llu\",\"cat\":\"%s\","
                "\"args\":{\"span\":%llu,\"parent\":%llu,\"to\":%ld,"
                "\"attempt\":%u,\"bytes\":%.9g}}",
                tid, ts, (t_land - r.t_start) * kTimeScale, cat,
                static_cast<unsigned long long>(r.trace_id), cat,
                static_cast<unsigned long long>(r.span_id),
                static_cast<unsigned long long>(r.parent_id), tid_of(r.peer) - 1,
                r.flags, finite(r.value));
        w.event("{\"ph\":\"s\",\"pid\":0,\"tid\":%ld,\"ts\":%.3f,"
                "\"id\":%llu,\"name\":\"hop\",\"cat\":\"flow\"}",
                tid, ts, static_cast<unsigned long long>(r.span_id));
        break;
      }
      case SpanKind::kMsgDeliver:
      case SpanKind::kAckDeliver:
        w.event("{\"ph\":\"X\",\"pid\":0,\"tid\":%ld,\"ts\":%.3f,"
                "\"dur\":1,\"name\":\"recv #%llu\",\"cat\":\"%s\","
                "\"args\":{\"span\":%llu,\"from\":%ld}}",
                tid, ts, static_cast<unsigned long long>(r.trace_id),
                kind == SpanKind::kMsgDeliver ? "msg" : "ack",
                static_cast<unsigned long long>(r.span_id), tid_of(r.peer) - 1);
        w.event("{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":%ld,"
                "\"ts\":%.3f,\"id\":%llu,\"name\":\"hop\",\"cat\":\"flow\"}",
                tid, ts, static_cast<unsigned long long>(r.span_id));
        break;
      case SpanKind::kMsgDrop:
      case SpanKind::kAckDrop:
        w.event("{\"ph\":\"i\",\"pid\":0,\"tid\":%ld,\"ts\":%.3f,\"s\":\"t\","
                "\"name\":\"drop:%s\",\"cat\":\"drop\","
                "\"args\":{\"trace_id\":%llu,\"span\":%llu}}",
                tid, ts, drop_reason_name(r.flags),
                static_cast<unsigned long long>(r.trace_id),
                static_cast<unsigned long long>(r.span_id));
        break;
      case SpanKind::kRetransmit:
      case SpanKind::kReclaim:
      case SpanKind::kSuspicion:
      case SpanKind::kEpochRestart:
        w.event("{\"ph\":\"i\",\"pid\":0,\"tid\":%ld,\"ts\":%.3f,\"s\":\"t\","
                "\"name\":\"%s\",\"cat\":\"protocol\","
                "\"args\":{\"trace_id\":%llu,\"flags\":%u,\"value\":%.9g}}",
                tid, ts, kind_name(kind),
                static_cast<unsigned long long>(r.trace_id), r.flags,
                finite(r.value));
        break;
      case SpanKind::kFault:
        w.event("{\"ph\":\"i\",\"pid\":0,\"tid\":%ld,\"ts\":%.3f,\"s\":\"g\","
                "\"name\":\"fault #%u\",\"cat\":\"fault\","
                "\"args\":{\"kind\":%u,\"value\":%.9g}}",
                tid, ts, r.flags, r.flags, finite(r.value));
        break;
      case SpanKind::kAttack:
        w.event("{\"ph\":\"i\",\"pid\":0,\"tid\":%ld,\"ts\":%.3f,\"s\":\"g\","
                "\"name\":\"attack #%u\",\"cat\":\"attack\","
                "\"args\":{\"kind\":%u,\"value\":%.9g}}",
                tid, ts, r.flags, r.flags, finite(r.value));
        break;
      case SpanKind::kProbe: {
        auto& agg = probes[{r.trace_id, r.flags}];
        const double v = finite(r.value);
        agg.t = r.t_end;
        agg.sum += v;
        if (agg.count == 0 || v > agg.max) agg.max = v;
        ++agg.count;
        break;
      }
    }
  }

  for (const auto& [key, agg] : probes) {
    const char* name = "probe.weight";
    if (key.second == static_cast<std::uint32_t>(ProbeField::kMassResidual))
      name = "probe.mass_residual";
    else if (key.second == static_cast<std::uint32_t>(ProbeField::kDeltaV))
      name = "probe.delta_v";
    else if (key.second == static_cast<std::uint32_t>(ProbeField::kScore))
      name = "probe.score";
    else if (key.second == static_cast<std::uint32_t>(ProbeField::kXMassResidual))
      name = "probe.x_residual";
    else if (key.second == static_cast<std::uint32_t>(ProbeField::kRatingBias))
      name = "probe.rating_bias";
    w.event("{\"ph\":\"C\",\"pid\":0,\"ts\":%.3f,\"name\":\"%s\","
            "\"args\":{\"mean\":%.9g,\"max\":%.9g}}",
            agg.t * kTimeScale, name,
            agg.count ? agg.sum / static_cast<double>(agg.count) : 0.0, agg.max);
  }

  std::fputs("\n]}\n", f);
  const bool ok = std::ferror(f) == 0;
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "perfetto: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace gt::trace
