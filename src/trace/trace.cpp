#include "trace/trace.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/logging.hpp"

namespace gt::trace {

const char* kind_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kCycle: return "cycle";
    case SpanKind::kGossipStep: return "gossip_step";
    case SpanKind::kPhase: return "phase";
    case SpanKind::kMsgSend: return "msg_send";
    case SpanKind::kMsgDeliver: return "msg_deliver";
    case SpanKind::kMsgDrop: return "msg_drop";
    case SpanKind::kAckSend: return "ack_send";
    case SpanKind::kAckDeliver: return "ack_deliver";
    case SpanKind::kAckDrop: return "ack_drop";
    case SpanKind::kRetransmit: return "retransmit";
    case SpanKind::kReclaim: return "reclaim";
    case SpanKind::kSuspicion: return "suspicion";
    case SpanKind::kEpochRestart: return "epoch_restart";
    case SpanKind::kFault: return "fault";
    case SpanKind::kProbe: return "probe";
    case SpanKind::kAttack: return "attack";
  }
  return "unknown";
}

const char* probe_field_name(ProbeField field) noexcept {
  switch (field) {
    case ProbeField::kWeight: return "weight";
    case ProbeField::kMassResidual: return "mass_residual";
    case ProbeField::kDeltaV: return "delta_v";
    case ProbeField::kScore: return "score";
    case ProbeField::kXMassResidual: return "x_residual";
    case ProbeField::kRatingBias: return "rating_bias";
  }
  return "unknown";
}

std::uint32_t drop_reason_code(const char* reason) noexcept {
  if (reason == nullptr) return kDropUnknown;
  if (std::strcmp(reason, "sender_down") == 0) return kDropSenderDown;
  if (std::strcmp(reason, "receiver_down") == 0) return kDropReceiverDown;
  if (std::strcmp(reason, "link_failed") == 0) return kDropLinkFailed;
  if (std::strcmp(reason, "partitioned") == 0) return kDropPartitioned;
  if (std::strcmp(reason, "loss") == 0) return kDropLoss;
  if (std::strcmp(reason, "receiver_down_in_flight") == 0)
    return kDropReceiverDownInFlight;
  if (std::strcmp(reason, "partitioned_in_flight") == 0)
    return kDropPartitionedInFlight;
  if (std::strcmp(reason, "corrupted") == 0) return kDropCorrupted;
  return kDropUnknown;
}

const char* drop_reason_name(std::uint32_t code) noexcept {
  switch (code) {
    case kDropSenderDown: return "sender_down";
    case kDropReceiverDown: return "receiver_down";
    case kDropLinkFailed: return "link_failed";
    case kDropPartitioned: return "partitioned";
    case kDropLoss: return "loss";
    case kDropReceiverDownInFlight: return "receiver_down_in_flight";
    case kDropPartitionedInFlight: return "partitioned_in_flight";
    case kDropCorrupted: return "corrupted";
    default: return "unknown";
  }
}

TraceSink::TraceSink(TraceConfig config) : config_(std::move(config)) {
  if (config_.path.empty()) return;
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  ring_.reserve(config_.ring_capacity < (1u << 16) ? config_.ring_capacity
                                                   : (1u << 16));
  enabled_ = true;
}

TraceSink::~TraceSink() { finish(); }

void TraceSink::emit(const TraceRecord& rec) {
  if (!enabled_) return;
  if (rec.node != kGlobalNode && rec.node >= max_node_) max_node_ = rec.node + 1;
  // kProbe reuses `peer` for the sweep series index, not a node id.
  if (rec.kind != static_cast<std::uint32_t>(SpanKind::kProbe) &&
      rec.peer != kNoPeer && rec.peer >= max_node_)
    max_node_ = rec.peer + 1;
  ++emitted_;
  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(rec);
  } else {
    // Flight-recorder semantics: keep the most recent window, loudly
    // accounted in the header (records_emitted > record_count).
    ring_[head_] = rec;
    head_ = (head_ + 1) % ring_.size();
  }
  if (events_ != nullptr &&
      rec.kind != static_cast<std::uint32_t>(SpanKind::kProbe)) {
    // Mirror as a JSONL `trace` record. sim_time is the record's *end*
    // time: emissions happen when a span completes, so within one trace
    // id the mirrored sim_time stream is non-decreasing (a property
    // scripts/report.py --check enforces).
    const auto kind = static_cast<SpanKind>(rec.kind);
    auto r = events_->record("trace");
    r.field("sim_time", rec.t_end)
        .field("dur", rec.t_end - rec.t_start)
        .field("kind", kind_name(kind))
        .field("trace_id", rec.trace_id)
        .field("span_id", rec.span_id)
        .field("parent_id", rec.parent_id)
        .field("node", rec.node)
        .field("peer", rec.peer)
        .field("flags", rec.flags)
        .field("value", rec.value);
    if (kind == SpanKind::kMsgDrop || kind == SpanKind::kAckDrop)
      r.field("reason", drop_reason_name(rec.flags));
  }
}

void TraceSink::probe(std::uint64_t sweep_trace, std::uint64_t series, double t,
                      std::uint32_t node, double weight, double mass_residual,
                      double delta_v, double score, double x_residual) {
  if (!enabled_) return;
  TraceRecord rec;
  rec.t_start = rec.t_end = t;
  rec.trace_id = sweep_trace;
  rec.parent_id = 0;
  rec.kind = static_cast<std::uint32_t>(SpanKind::kProbe);
  rec.node = node;
  rec.peer = static_cast<std::uint32_t>(series);

  rec.span_id = alloc_span();
  rec.flags = static_cast<std::uint32_t>(ProbeField::kWeight);
  rec.value = weight;
  emit(rec);
  rec.span_id = alloc_span();
  rec.flags = static_cast<std::uint32_t>(ProbeField::kMassResidual);
  rec.value = mass_residual;
  emit(rec);
  rec.span_id = alloc_span();
  rec.flags = static_cast<std::uint32_t>(ProbeField::kDeltaV);
  rec.value = delta_v;
  emit(rec);
  rec.span_id = alloc_span();
  rec.flags = static_cast<std::uint32_t>(ProbeField::kScore);
  rec.value = score;
  emit(rec);
  rec.span_id = alloc_span();
  rec.flags = static_cast<std::uint32_t>(ProbeField::kXMassResidual);
  rec.value = x_residual;
  emit(rec);

  if (events_ != nullptr) {
    // JSON has no NaN/Inf (JsonWriter would emit null); sanitize to 0.
    events_->record("probe")
        .field("sim_time", t)
        .field("trace_id", sweep_trace)
        .field("series", series)
        .field("node", node)
        .field("weight", weight)
        .field("mass_residual", mass_residual)
        .field("delta_v", delta_v)
        .field("score", std::isfinite(score) ? score : 0.0)
        .field("x_residual", std::isfinite(x_residual) ? x_residual : 0.0);
  }
}

void TraceSink::probe_field(std::uint64_t sweep_trace, std::uint64_t series,
                            double t, std::uint32_t node, ProbeField field,
                            double value) {
  if (!enabled_) return;
  TraceRecord rec;
  rec.t_start = rec.t_end = t;
  rec.trace_id = sweep_trace;
  rec.span_id = alloc_span();
  rec.parent_id = 0;
  rec.kind = static_cast<std::uint32_t>(SpanKind::kProbe);
  rec.flags = static_cast<std::uint32_t>(field);
  rec.node = node;
  rec.peer = static_cast<std::uint32_t>(series);
  rec.value = value;
  emit(rec);

  if (events_ != nullptr) {
    events_->record("probe_field")
        .field("sim_time", t)
        .field("trace_id", sweep_trace)
        .field("series", series)
        .field("node", node)
        .field("field", probe_field_name(field))
        .field("value", std::isfinite(value) ? value : 0.0);
  }
}

std::vector<TraceRecord> TraceSink::records() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  for (std::size_t k = 0; k < ring_.size(); ++k)
    out.push_back(ring_[(head_ + k) % ring_.size()]);
  return out;
}

bool TraceSink::finish() {
  if (finished_ || !enabled_) return true;
  finished_ = true;
  enabled_ = false;

  std::FILE* f = std::fopen(config_.path.c_str(), "wb");
  if (f == nullptr) {
    GT_WARN() << "TraceSink: cannot open " << config_.path;
    return false;
  }
  TraceFileHeader header;
  header.record_count = ring_.size();
  header.records_emitted = emitted_;
  header.span_high_water = next_span_;
  header.node_count = max_node_;
  bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1;
  // Oldest-first: [head_, end) then [0, head_).
  if (ok && head_ < ring_.size())
    ok = std::fwrite(ring_.data() + head_, sizeof(TraceRecord),
                     ring_.size() - head_, f) == ring_.size() - head_;
  if (ok && head_ > 0)
    ok = std::fwrite(ring_.data(), sizeof(TraceRecord), head_, f) == head_;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) GT_WARN() << "TraceSink: short write to " << config_.path;
  return ok;
}

bool read_trace_file(const std::string& path, TraceFileHeader& header,
                     std::vector<TraceRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s\n", path.c_str());
    return false;
  }
  bool ok = std::fread(&header, sizeof(header), 1, f) == 1;
  if (ok && (std::memcmp(header.magic, "GTTRACE1", 8) != 0 ||
             header.version != 1 || header.record_size != sizeof(TraceRecord))) {
    std::fprintf(stderr, "trace: %s is not a GTTRACE1 v1 file\n", path.c_str());
    ok = false;
  }
  if (ok) {
    records.resize(header.record_count);
    ok = std::fread(records.data(), sizeof(TraceRecord), records.size(), f) ==
         records.size();
    if (!ok)
      std::fprintf(stderr, "trace: %s truncated (%llu records expected)\n",
                   path.c_str(),
                   static_cast<unsigned long long>(header.record_count));
  }
  std::fclose(f);
  return ok;
}

}  // namespace gt::trace
