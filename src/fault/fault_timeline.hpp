// Time-indexed, side-effect-free view of a FaultPlan.
//
// The FaultInjector replays a plan by mutating the simulated Network as
// the clock reaches each fault — inherently sequential state. The sharded
// engine executes windows of events on several threads at once, so it
// cannot share mutable fault state; instead it asks this timeline pure
// questions — "was node v up at time t?", "was the (a, b) path blocked at
// time t?", "what was the loss rate at time t?" — whose answers depend
// only on (plan, query), never on replay order. Any shard on any thread
// gets the same answer for the same event, which is what keeps sharded
// execution bit-identical to the single-queue oracle under faults.
//
// Deterministically replayable kinds: node crash/recover, link fail/heal,
// partitions, and loss bursts (the loss *decision* is drawn from the
// sending node's private stream, not from the timeline). Duplication and
// corruption bursts draw delivery-side randomness from the Network's
// global stream and are rejected at construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fault/fault_plan.hpp"

namespace gt::fault {

class FaultTimeline {
 public:
  /// Empty timeline: everything is always up, nothing is ever lost.
  FaultTimeline() = default;

  /// Compiles `plan` (validated against n nodes) into interval form.
  /// Throws std::invalid_argument when the plan fails validation or
  /// contains kinds the sharded engine cannot replay deterministically
  /// (duplication / corruption bursts).
  FaultTimeline(const FaultPlan& plan, std::size_t n);

  bool empty() const noexcept {
    return node_down_.empty() && link_down_.empty() && partitions_.empty() &&
           loss_steps_.empty();
  }

  /// Node up/down state at time t (down on [crash, recover)).
  bool node_up(std::size_t v, double t) const noexcept {
    if (node_down_.empty()) return true;
    return !in_interval(node_down_, v, t);
  }

  /// True when traffic a -> b at time t is blocked by a failed link or an
  /// active partition (node up/down state is queried separately).
  bool path_blocked(std::size_t a, std::size_t b, double t) const noexcept;

  /// i.i.d. message-loss probability in force at time t.
  double loss_rate(double t) const noexcept;

  /// True when any query can ever return a non-default answer — callers
  /// skip per-event lookups entirely on an empty timeline.
  bool any() const noexcept { return !empty(); }

 private:
  struct Interval {
    double start;
    double end;  // half-open [start, end); end may be +inf
  };
  struct Partition {
    double start;
    double end;
    std::vector<int> groups;
  };

  static bool in_interval(
      const std::unordered_map<std::uint64_t, std::vector<Interval>>& map,
      std::uint64_t key, double t) noexcept;

  // Sorted, disjoint down-intervals keyed by node id / link key.
  std::unordered_map<std::uint64_t, std::vector<Interval>> node_down_;
  std::unordered_map<std::uint64_t, std::vector<Interval>> link_down_;
  std::vector<Partition> partitions_;          // sorted by start, disjoint
  std::vector<std::pair<double, double>> loss_steps_;  // (time, rate) steps
};

}  // namespace gt::fault
