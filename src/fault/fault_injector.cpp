#include "fault/fault_injector.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace gt::fault {

FaultInjector::FaultInjector(sim::Scheduler& scheduler, net::Network& network,
                             FaultPlan plan)
    : scheduler_(scheduler), network_(network), plan_(std::move(plan)) {
  const std::string problem = plan_.validate(network_.num_nodes());
  if (!problem.empty()) {
    std::fprintf(stderr, "fatal: FaultInjector: invalid plan: %s\n",
                 problem.c_str());
    std::abort();
  }
}

void FaultInjector::arm() {
  if (armed_) {
    std::fprintf(stderr, "fatal: FaultInjector::arm() called twice\n");
    std::abort();
  }
  armed_ = true;
  baseline_loss_ = network_.config().loss_probability;
  executed_.reserve(plan_.size());
  for (const Fault& f : plan_.faults()) {
    const double when = std::max(f.time, scheduler_.now());
    scheduler_.schedule_at(when, [this, &f] { execute(f); });
  }
}

void FaultInjector::execute(const Fault& f) {
  switch (f.kind) {
    case FaultKind::kNodeCrash:
      network_.set_node_up(f.a, false);
      break;
    case FaultKind::kNodeRecover:
      network_.set_node_up(f.a, true);
      break;
    case FaultKind::kLinkFail:
      network_.fail_link(f.a, f.b);
      break;
    case FaultKind::kLinkHeal:
      network_.heal_link(f.a, f.b);
      break;
    case FaultKind::kPartitionStart:
      network_.set_partition(f.groups);
      break;
    case FaultKind::kPartitionEnd:
      network_.clear_partition();
      break;
    case FaultKind::kLossBurstStart:
      network_.set_loss_probability(f.rate);
      break;
    case FaultKind::kLossBurstEnd:
      network_.set_loss_probability(baseline_loss_);
      break;
    case FaultKind::kDuplicationStart:
      network_.set_duplicate_probability(f.rate);
      break;
    case FaultKind::kDuplicationEnd:
      network_.set_duplicate_probability(0.0);
      break;
    case FaultKind::kCorruptionStart:
      network_.set_corrupt_probability(f.rate);
      break;
    case FaultKind::kCorruptionEnd:
      network_.set_corrupt_probability(0.0);
      break;
  }

  executed_.push_back(FaultRecord{executed_.size(), f});

  if (trace_ != nullptr) {
    const bool node_scoped =
        f.kind == FaultKind::kNodeCrash || f.kind == FaultKind::kNodeRecover ||
        f.kind == FaultKind::kLinkFail || f.kind == FaultKind::kLinkHeal;
    const bool link_scoped =
        f.kind == FaultKind::kLinkFail || f.kind == FaultKind::kLinkHeal;
    trace::TraceRecord rec;
    rec.t_start = rec.t_end = scheduler_.now();
    rec.span_id = trace_->alloc_span();
    rec.kind = static_cast<std::uint32_t>(trace::SpanKind::kFault);
    rec.flags = static_cast<std::uint32_t>(f.kind);
    if (node_scoped) rec.node = static_cast<std::uint32_t>(f.a);
    if (link_scoped) rec.peer = static_cast<std::uint32_t>(f.b);
    rec.value = f.rate;
    trace_->emit(rec);
  }

  if (events_ != nullptr) {
    auto rec = events_->record("fault");
    rec.field("sim_time", scheduler_.now())
        .field("index", executed_.back().index)
        .field("kind", to_string(f.kind));
    switch (f.kind) {
      case FaultKind::kNodeCrash:
      case FaultKind::kNodeRecover:
        rec.field("node", f.a);
        break;
      case FaultKind::kLinkFail:
      case FaultKind::kLinkHeal:
        rec.field("a", f.a).field("b", f.b);
        break;
      case FaultKind::kPartitionStart:
        rec.field("groups", f.groups.size());
        break;
      case FaultKind::kLossBurstStart:
      case FaultKind::kDuplicationStart:
      case FaultKind::kCorruptionStart:
        rec.field("rate", f.rate);
        break;
      default:
        break;
    }
  }

  // Hooks run after the network reflects the fault, so a crash hook that
  // inspects Network::is_node_up already sees the node down.
  if (f.kind == FaultKind::kNodeCrash) {
    for (const auto& hook : crash_hooks_) hook(f.a);
  } else if (f.kind == FaultKind::kNodeRecover) {
    for (const auto& hook : recover_hooks_) hook(f.a);
  }
}

std::string FaultInjector::log_text() const {
  std::string out;
  char buf[64];
  for (const FaultRecord& rec : executed_) {
    std::snprintf(buf, sizeof(buf), "#%zu ", rec.index);
    out += buf;
    out += format_fault(rec.fault);
  }
  return out;
}

}  // namespace gt::fault
