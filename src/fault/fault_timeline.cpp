#include "fault/fault_timeline.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace gt::fault {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t link_key(std::size_t a, std::size_t b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

}  // namespace

FaultTimeline::FaultTimeline(const FaultPlan& plan, std::size_t n) {
  const std::string err = plan.validate(n);
  if (!err.empty())
    throw std::invalid_argument("FaultTimeline: invalid plan: " + err);

  // Scan the (time-sorted) fault list, tracking open-ended intervals as
  // `end == +inf` until their closing event arrives.
  bool partition_open = false;

  for (const Fault& f : plan.faults()) {
    switch (f.kind) {
      case FaultKind::kNodeCrash: {
        auto& vec = node_down_[f.a];
        if (vec.empty() || vec.back().end < kInf)
          vec.push_back({f.time, kInf});
        break;
      }
      case FaultKind::kNodeRecover: {
        auto& vec = node_down_[f.a];
        if (!vec.empty() && vec.back().end == kInf) vec.back().end = f.time;
        break;
      }
      case FaultKind::kLinkFail: {
        auto& vec = link_down_[link_key(f.a, f.b)];
        if (vec.empty() || vec.back().end < kInf)
          vec.push_back({f.time, kInf});
        break;
      }
      case FaultKind::kLinkHeal: {
        auto& vec = link_down_[link_key(f.a, f.b)];
        if (!vec.empty() && vec.back().end == kInf) vec.back().end = f.time;
        break;
      }
      case FaultKind::kPartitionStart: {
        if (partition_open) partitions_.back().end = f.time;
        partitions_.push_back({f.time, kInf, f.groups});
        partition_open = true;
        break;
      }
      case FaultKind::kPartitionEnd: {
        if (partition_open) partitions_.back().end = f.time;
        partition_open = false;
        break;
      }
      case FaultKind::kLossBurstStart:
        loss_steps_.emplace_back(f.time, f.rate);
        break;
      case FaultKind::kLossBurstEnd:
        loss_steps_.emplace_back(f.time, 0.0);
        break;
      case FaultKind::kDuplicationStart:
      case FaultKind::kDuplicationEnd:
      case FaultKind::kCorruptionStart:
      case FaultKind::kCorruptionEnd:
        throw std::invalid_argument(
            std::string("FaultTimeline: ") + to_string(f.kind) +
            " draws delivery-side randomness from the network's global "
            "stream and cannot be replayed shard-deterministically");
    }
  }
}

bool FaultTimeline::in_interval(
    const std::unordered_map<std::uint64_t, std::vector<Interval>>& map,
    std::uint64_t key, double t) noexcept {
  const auto it = map.find(key);
  if (it == map.end()) return false;
  const auto& vec = it->second;
  // First interval with start > t; the candidate is its predecessor.
  auto pos = std::upper_bound(
      vec.begin(), vec.end(), t,
      [](double v, const Interval& iv) { return v < iv.start; });
  if (pos == vec.begin()) return false;
  --pos;
  return t < pos->end;
}

bool FaultTimeline::path_blocked(std::size_t a, std::size_t b,
                                 double t) const noexcept {
  if (!link_down_.empty() && in_interval(link_down_, link_key(a, b), t))
    return true;
  if (partitions_.empty()) return false;
  auto pos = std::upper_bound(
      partitions_.begin(), partitions_.end(), t,
      [](double v, const Partition& p) { return v < p.start; });
  if (pos == partitions_.begin()) return false;
  --pos;
  if (!(t < pos->end)) return false;
  return pos->groups[a] != pos->groups[b];
}

double FaultTimeline::loss_rate(double t) const noexcept {
  if (loss_steps_.empty()) return 0.0;
  auto pos = std::upper_bound(
      loss_steps_.begin(), loss_steps_.end(), t,
      [](double v, const std::pair<double, double>& s) { return v < s.first; });
  if (pos == loss_steps_.begin()) return 0.0;
  return std::prev(pos)->second;
}

}  // namespace gt::fault
