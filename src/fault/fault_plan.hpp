// Deterministic fault schedules for chaos experiments.
//
// The paper's robustness story ("does not require error recovery
// mechanisms") is only exercised here if failures are *reproducible*: a
// FaultPlan is a seeded, validated, sorted list of timed faults — node
// crash/recover, link fail/heal, network partitions, loss-rate bursts,
// message duplication and corruption bursts — that a FaultInjector replays
// against the simulated network. Identical plan + identical seed =>
// byte-identical fault logs and gossip results, which is what lets the
// chaos tests assert exact mass accounting instead of eyeballing graphs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"

namespace gt::fault {

using NodeId = net::NodeId;

/// Every way this harness knows how to hurt the network.
enum class FaultKind : std::uint8_t {
  kNodeCrash,        ///< node `a` goes down (resident protocol state is lost)
  kNodeRecover,      ///< node `a` comes back with blank state
  kLinkFail,         ///< link (a, b) drops all traffic
  kLinkHeal,         ///< link (a, b) restored
  kPartitionStart,   ///< nodes split into groups; cross-group traffic drops
  kPartitionEnd,     ///< partition healed
  kLossBurstStart,   ///< i.i.d. loss probability raised to `rate`
  kLossBurstEnd,     ///< loss probability restored to the pre-burst baseline
  kDuplicationStart, ///< messages delivered twice with probability `rate`
  kDuplicationEnd,
  kCorruptionStart,  ///< messages corrupted in transit with probability `rate`
  kCorruptionEnd,
};

const char* to_string(FaultKind kind) noexcept;

struct Fault;

/// Canonical one-line text form of a fault (newline-terminated): fixed
/// field order, %.17g numerics — deterministic byte-for-byte.
std::string format_fault(const Fault& f);

/// One scheduled fault. Which fields matter depends on `kind`:
/// node faults use `a`; link faults use `a` and `b`; bursts use `rate`;
/// kPartitionStart uses `groups` (one group id per node).
struct Fault {
  double time = 0.0;
  FaultKind kind = FaultKind::kNodeCrash;
  NodeId a = 0;
  NodeId b = 0;
  double rate = 0.0;
  std::vector<int> groups;
};

/// Parameters for FaultPlan::random_churn.
struct ChurnSpec {
  double start = 0.0;            ///< first possible fault time
  double end = 100.0;            ///< last possible fault time
  std::size_t crashes = 4;       ///< number of crash events
  double recover_fraction = 0.5; ///< fraction of crashed nodes that rejoin
  double min_downtime = 5.0;     ///< downtime before a rejoin
};

/// An ordered, validated fault schedule.
class FaultPlan {
 public:
  FaultPlan() = default;

  // -- Builder helpers (all return *this for chaining). Times are absolute
  //    simulated time; add_* with out-of-order times is fine, faults() is
  //    always returned sorted by (time, insertion order).
  FaultPlan& crash(double t, NodeId node);
  FaultPlan& recover(double t, NodeId node);
  FaultPlan& fail_link(double t, NodeId a, NodeId b);
  FaultPlan& heal_link(double t, NodeId a, NodeId b);
  /// Splits the network into the given groups over [t_start, t_end).
  FaultPlan& partition(double t_start, double t_end, std::vector<int> groups);
  /// Convenience: two contiguous halves [0, split) | [split, n).
  FaultPlan& bisect(double t_start, double t_end, std::size_t n, std::size_t split);
  FaultPlan& loss_burst(double t_start, double t_end, double rate);
  FaultPlan& duplication_burst(double t_start, double t_end, double rate);
  FaultPlan& corruption_burst(double t_start, double t_end, double rate);

  /// Crashes a deterministic pseudo-random `count`-node subset of [0, n)
  /// at time t (seeded; independent of any other RNG stream in the run).
  FaultPlan& crash_fraction(double t, std::size_t n, std::size_t count,
                            std::uint64_t seed);

  /// Seeded random churn: crash times uniform in [start, end), a
  /// recover_fraction of victims rejoin after >= min_downtime.
  static FaultPlan random_churn(std::size_t n, const ChurnSpec& spec,
                                std::uint64_t seed);

  /// Faults sorted by (time, insertion order).
  const std::vector<Fault>& faults() const;

  std::size_t size() const noexcept { return faults_.size(); }
  bool empty() const noexcept { return faults_.empty(); }

  /// Time of the last fault (0 when empty) — chaos harnesses use this to
  /// keep the protocol running past the final fault before declaring
  /// convergence.
  double end_time() const;

  /// Validates against an n-node network: times >= 0 and finite, node ids
  /// < n, partition maps exactly n entries, rates in [0, 1]. Returns an
  /// empty string when valid, else a description of the first problem.
  std::string validate(std::size_t n) const;

  /// Canonical text form, one fault per line — deterministic, so two plans
  /// (or two runs of one plan) can be compared byte-for-byte.
  std::string to_string() const;

 private:
  FaultPlan& push(Fault f);

  mutable std::vector<Fault> faults_;
  mutable bool sorted_ = true;
};

}  // namespace gt::fault
