#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gt::fault {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kNodeRecover: return "node_recover";
    case FaultKind::kLinkFail: return "link_fail";
    case FaultKind::kLinkHeal: return "link_heal";
    case FaultKind::kPartitionStart: return "partition_start";
    case FaultKind::kPartitionEnd: return "partition_end";
    case FaultKind::kLossBurstStart: return "loss_burst_start";
    case FaultKind::kLossBurstEnd: return "loss_burst_end";
    case FaultKind::kDuplicationStart: return "duplication_burst_start";
    case FaultKind::kDuplicationEnd: return "duplication_burst_end";
    case FaultKind::kCorruptionStart: return "corruption_burst_start";
    case FaultKind::kCorruptionEnd: return "corruption_burst_end";
  }
  return "unknown";
}

FaultPlan& FaultPlan::push(Fault f) {
  if (!faults_.empty() && f.time < faults_.back().time) sorted_ = false;
  faults_.push_back(std::move(f));
  return *this;
}

FaultPlan& FaultPlan::crash(double t, NodeId node) {
  return push({t, FaultKind::kNodeCrash, node, 0, 0.0, {}});
}

FaultPlan& FaultPlan::recover(double t, NodeId node) {
  return push({t, FaultKind::kNodeRecover, node, 0, 0.0, {}});
}

FaultPlan& FaultPlan::fail_link(double t, NodeId a, NodeId b) {
  return push({t, FaultKind::kLinkFail, a, b, 0.0, {}});
}

FaultPlan& FaultPlan::heal_link(double t, NodeId a, NodeId b) {
  return push({t, FaultKind::kLinkHeal, a, b, 0.0, {}});
}

FaultPlan& FaultPlan::partition(double t_start, double t_end,
                                std::vector<int> groups) {
  push({t_start, FaultKind::kPartitionStart, 0, 0, 0.0, std::move(groups)});
  return push({t_end, FaultKind::kPartitionEnd, 0, 0, 0.0, {}});
}

FaultPlan& FaultPlan::bisect(double t_start, double t_end, std::size_t n,
                             std::size_t split) {
  std::vector<int> groups(n, 0);
  for (std::size_t i = split; i < n; ++i) groups[i] = 1;
  return partition(t_start, t_end, std::move(groups));
}

FaultPlan& FaultPlan::loss_burst(double t_start, double t_end, double rate) {
  push({t_start, FaultKind::kLossBurstStart, 0, 0, rate, {}});
  return push({t_end, FaultKind::kLossBurstEnd, 0, 0, 0.0, {}});
}

FaultPlan& FaultPlan::duplication_burst(double t_start, double t_end, double rate) {
  push({t_start, FaultKind::kDuplicationStart, 0, 0, rate, {}});
  return push({t_end, FaultKind::kDuplicationEnd, 0, 0, 0.0, {}});
}

FaultPlan& FaultPlan::corruption_burst(double t_start, double t_end, double rate) {
  push({t_start, FaultKind::kCorruptionStart, 0, 0, rate, {}});
  return push({t_end, FaultKind::kCorruptionEnd, 0, 0, 0.0, {}});
}

FaultPlan& FaultPlan::crash_fraction(double t, std::size_t n, std::size_t count,
                                     std::uint64_t seed) {
  Rng rng(mix64(seed, 0xfa17ULL));
  auto victims = rng.sample_without_replacement(n, std::min(count, n));
  std::sort(victims.begin(), victims.end());  // canonical order in the plan
  for (const auto v : victims) crash(t, v);
  return *this;
}

FaultPlan FaultPlan::random_churn(std::size_t n, const ChurnSpec& spec,
                                  std::uint64_t seed) {
  FaultPlan plan;
  if (n == 0 || spec.crashes == 0) return plan;
  Rng rng(mix64(seed, 0xc512ULL));
  const std::size_t count = std::min(spec.crashes, n);
  auto victims = rng.sample_without_replacement(n, count);
  std::sort(victims.begin(), victims.end());
  const double span = std::max(0.0, spec.end - spec.start);
  for (const auto v : victims) {
    const double t_crash = spec.start + rng.next_double() * span;
    plan.crash(t_crash, v);
    if (rng.next_bool(spec.recover_fraction)) {
      const double latest = std::max(spec.end, t_crash + spec.min_downtime);
      const double t_back =
          t_crash + spec.min_downtime +
          rng.next_double() * std::max(0.0, latest - t_crash - spec.min_downtime);
      plan.recover(t_back, v);
    }
  }
  return plan;
}

const std::vector<Fault>& FaultPlan::faults() const {
  if (!sorted_) {
    std::stable_sort(faults_.begin(), faults_.end(),
                     [](const Fault& x, const Fault& y) { return x.time < y.time; });
    sorted_ = true;
  }
  return faults_;
}

double FaultPlan::end_time() const {
  const auto& fs = faults();
  return fs.empty() ? 0.0 : fs.back().time;
}

std::string FaultPlan::validate(std::size_t n) const {
  char buf[160];
  for (const Fault& f : faults()) {
    if (!(f.time >= 0.0) || !std::isfinite(f.time)) {
      std::snprintf(buf, sizeof(buf), "%s: bad time %g", fault::to_string(f.kind), f.time);
      return buf;
    }
    switch (f.kind) {
      case FaultKind::kNodeCrash:
      case FaultKind::kNodeRecover:
        if (f.a >= n) {
          std::snprintf(buf, sizeof(buf), "%s: node %zu out of range (n=%zu)",
                        fault::to_string(f.kind), f.a, n);
          return buf;
        }
        break;
      case FaultKind::kLinkFail:
      case FaultKind::kLinkHeal:
        if (f.a >= n || f.b >= n) {
          std::snprintf(buf, sizeof(buf), "%s: link (%zu, %zu) out of range (n=%zu)",
                        fault::to_string(f.kind), f.a, f.b, n);
          return buf;
        }
        break;
      case FaultKind::kPartitionStart:
        if (f.groups.size() != n) {
          std::snprintf(buf, sizeof(buf),
                        "partition_start: %zu group entries for n=%zu nodes",
                        f.groups.size(), n);
          return buf;
        }
        break;
      case FaultKind::kLossBurstStart:
      case FaultKind::kDuplicationStart:
      case FaultKind::kCorruptionStart:
        if (!(f.rate >= 0.0 && f.rate <= 1.0)) {
          std::snprintf(buf, sizeof(buf), "%s: rate %g outside [0, 1]",
                        fault::to_string(f.kind), f.rate);
          return buf;
        }
        break;
      default:
        break;
    }
  }
  return {};
}

std::string format_fault(const Fault& f) {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "t=%.17g %s", f.time, fault::to_string(f.kind));
  out += buf;
  switch (f.kind) {
    case FaultKind::kNodeCrash:
    case FaultKind::kNodeRecover:
      std::snprintf(buf, sizeof(buf), " node=%zu", f.a);
      out += buf;
      break;
    case FaultKind::kLinkFail:
    case FaultKind::kLinkHeal:
      std::snprintf(buf, sizeof(buf), " a=%zu b=%zu", f.a, f.b);
      out += buf;
      break;
    case FaultKind::kPartitionStart:
      out += " groups=[";
      for (std::size_t i = 0; i < f.groups.size(); ++i) {
        if (i != 0) out += ',';
        std::snprintf(buf, sizeof(buf), "%d", f.groups[i]);
        out += buf;
      }
      out += ']';
      break;
    case FaultKind::kLossBurstStart:
    case FaultKind::kDuplicationStart:
    case FaultKind::kCorruptionStart:
      std::snprintf(buf, sizeof(buf), " rate=%.17g", f.rate);
      out += buf;
      break;
    default:
      break;
  }
  out += '\n';
  return out;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const Fault& f : faults()) out += format_fault(f);
  return out;
}

}  // namespace gt::fault
