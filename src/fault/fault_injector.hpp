// Executes a FaultPlan against the simulated network, deterministically.
//
// The injector turns each scheduled fault into a sim::Scheduler event that
// mutates net::Network state (node up/down, link failures, partitions,
// loss/duplication/corruption rates) and then invokes any registered
// protocol hooks (e.g. AsyncGossip's crash-repair path). Every executed
// fault is appended to an in-memory log whose text serialization carries
// no wall-clock timestamps, so two runs of the same plan produce
// byte-identical logs — the determinism contract the chaos tests assert.
// When a telemetry EventLog is attached, each fault is additionally
// emitted as a `fault` JSONL record.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/event_log.hpp"
#include "trace/trace.hpp"

namespace gt::fault {

/// One fault as it actually fired: the plan entry plus the execution order.
struct FaultRecord {
  std::size_t index = 0;  ///< execution sequence number
  Fault fault;
};

class FaultInjector {
 public:
  using NodeHook = std::function<void(NodeId)>;

  /// The plan must validate against `network` (loud abort otherwise — a
  /// malformed chaos script is a test bug, not a runtime condition).
  FaultInjector(sim::Scheduler& scheduler, net::Network& network, FaultPlan plan);

  /// Protocol hooks, called after the network state change is applied.
  /// Register before arm().
  void on_crash(NodeHook hook) { crash_hooks_.push_back(std::move(hook)); }
  void on_recover(NodeHook hook) { recover_hooks_.push_back(std::move(hook)); }

  /// Optional JSONL sink: one `fault` record per executed fault.
  void set_event_log(telemetry::EventLog* events) { events_ = events; }

  /// Optional trace sink: one kFault instant marker per executed fault
  /// (flags = FaultKind, so the analyzer can pair partition start/end
  /// markers into windows). Null detaches.
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

  /// Schedules every fault in the plan (absolute times; faults already in
  /// the past fire at the scheduler's next step). Call exactly once.
  void arm();

  const FaultPlan& plan() const noexcept { return plan_; }
  std::size_t faults_executed() const noexcept { return executed_.size(); }
  std::size_t faults_pending() const noexcept {
    return plan_.size() - executed_.size();
  }
  const std::vector<FaultRecord>& executed() const noexcept { return executed_; }

  /// Deterministic text serialization of the executed faults, in execution
  /// order: identical seed + plan => byte-identical text across runs.
  std::string log_text() const;

 private:
  void execute(const Fault& f);

  sim::Scheduler& scheduler_;
  net::Network& network_;
  FaultPlan plan_;
  bool armed_ = false;
  double baseline_loss_ = 0.0;  ///< loss probability to restore after a burst
  std::vector<NodeHook> crash_hooks_;
  std::vector<NodeHook> recover_hooks_;
  std::vector<FaultRecord> executed_;
  telemetry::EventLog* events_ = nullptr;
  trace::TraceSink* trace_ = nullptr;
};

}  // namespace gt::fault
