// Graph measurements used to validate generated overlays (degree
// distribution shape, connectivity, diameter) and by the ablation benches.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "graph/topology.hpp"

namespace gt::graph {

/// Histogram of node degrees: result[d] = number of nodes with degree d.
std::vector<std::size_t> degree_histogram(const Graph& g);

/// Mean degree (2m/n).
double mean_degree(const Graph& g);

/// Number of connected components (isolated nodes count as components).
std::size_t count_components(const Graph& g);

/// True when the graph is a single connected component.
bool is_connected(const Graph& g);

/// BFS distances from a source; unreachable nodes get SIZE_MAX.
std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source);

/// Diameter estimate: max eccentricity over `samples` random BFS sources.
/// Exact when samples >= n.
std::size_t estimate_diameter(const Graph& g, std::size_t samples, Rng& rng);

/// Fits the tail exponent of the degree distribution via the discrete MLE
/// (Clauset-style with x_min), returning the estimated power-law exponent.
/// Useful to check the Barabási–Albert generator yields gamma near 3.
double degree_powerlaw_exponent(const Graph& g, std::size_t x_min = 4);

/// Global clustering coefficient (transitivity): 3*triangles / open triads.
double clustering_coefficient(const Graph& g);

}  // namespace gt::graph
