#include "graph/csr.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace gt::graph {

CsrView::CsrView(const Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n >= std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("CsrView: more than 2^32 - 1 nodes");

  offsets_.resize(n + 1);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    offsets_[v] = total;
    total += g.degree(v);
  }
  offsets_[n] = total;
  if (total != 2 * g.num_edges())
    throw std::invalid_argument(
        "CsrView: Graph edge accounting is corrupt: num_edges()=" +
        std::to_string(g.num_edges()) + " but adjacency lists hold " +
        std::to_string(total) + " endpoints");

  targets_.resize(total);
  for (std::size_t v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    std::uint64_t at = offsets_[v];
    NodeId prev = 0;
    bool first = true;
    for (const NodeId u : nbrs) {
      if (u >= n)
        throw std::invalid_argument("CsrView: neighbor id out of range");
      if (u == v)
        throw std::invalid_argument("CsrView: self-loop in adjacency list");
      if (!first && u <= prev)
        throw std::invalid_argument(
            "CsrView: neighbor list not strictly sorted at node " +
            std::to_string(v));
      prev = u;
      first = false;
      targets_[at++] = static_cast<std::uint32_t>(u);
    }
  }
}

bool CsrView::has_edge(std::uint32_t a, std::uint32_t b) const noexcept {
  if (a >= num_nodes() || b >= num_nodes()) return false;
  const auto row = neighbors(a);
  return std::binary_search(row.begin(), row.end(), b);
}

}  // namespace gt::graph
