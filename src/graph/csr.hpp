// Compact read-only CSR (compressed sparse row) adjacency view.
//
// The adjacency-list Graph is the mutable build/churn representation:
// one heap vector per node, cheap edge insertion and removal. At
// million-node scale that layout costs ~56 bytes of vector header +
// allocator slack per node and scatters neighbors across the heap. The
// gossip hot loop only ever *reads* adjacency, so the sharded engine runs
// on this frozen view instead: one offsets array (n + 1 entries) and one
// targets array (2m entries of 32-bit ids) — ~8 bytes per node plus 4
// bytes per directed edge, contiguous, and shareable across shards
// without synchronization.
//
// Rebuild path: after churn mutates the Graph (add_edge / remove_edge /
// isolate), construct a fresh CsrView from it. The constructor revalidates
// the Graph's edge accounting (num_edges() must reconcile with the
// adjacency lists, lists must be strictly sorted) so a corrupted
// incremental count can never silently become a corrupted view.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/topology.hpp"

namespace gt::graph {

class CsrView {
 public:
  CsrView() = default;

  /// Freezes `g` into CSR form. Throws std::invalid_argument when the
  /// graph breaks its own invariants: num_edges() inconsistent with the
  /// adjacency lists, an unsorted or duplicated neighbor list, an
  /// out-of-range target, or more than 2^32 - 1 nodes.
  explicit CsrView(const Graph& g);

  std::size_t num_nodes() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_edges() const noexcept { return targets_.size() / 2; }

  std::span<const std::uint32_t> neighbors(std::uint32_t v) const noexcept {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }
  std::size_t degree(std::uint32_t v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }
  bool has_edge(std::uint32_t a, std::uint32_t b) const noexcept;

  /// Bytes held by the view (offsets + targets payload).
  std::size_t storage_bytes() const noexcept {
    return offsets_.size() * sizeof(std::uint64_t) +
           targets_.size() * sizeof(std::uint32_t);
  }

 private:
  std::vector<std::uint64_t> offsets_;  // size n + 1
  std::vector<std::uint32_t> targets_;  // size 2m, sorted within each row
};

}  // namespace gt::graph
