// Overlay topology generation.
//
// The paper evaluates on "a Gnutella-like flat unstructured network". Real
// Gnutella snapshots have a heavy-tailed degree distribution, so the default
// generator is Barabási–Albert preferential attachment; Erdős–Rényi and
// Watts–Strogatz-style ring+shortcut generators are provided for ablations,
// plus a two-tier super-peer variant. All generators return connected simple
// undirected graphs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace gt::graph {

using NodeId = std::size_t;

/// Simple undirected graph stored as adjacency lists. Nodes are dense ids
/// 0..n-1. Edges are kept sorted per node for O(log d) membership tests.
class Graph {
 public:
  explicit Graph(std::size_t n = 0) : adj_(n) {}

  std::size_t num_nodes() const noexcept { return adj_.size(); }
  std::size_t num_edges() const noexcept { return num_edges_; }

  /// Adds an undirected edge; ignores self-loops and duplicates.
  /// Returns true when the edge was inserted.
  bool add_edge(NodeId a, NodeId b);

  /// Removes an undirected edge if present.
  bool remove_edge(NodeId a, NodeId b);

  bool has_edge(NodeId a, NodeId b) const;

  std::span<const NodeId> neighbors(NodeId v) const {
    return {adj_[v].data(), adj_[v].size()};
  }

  std::size_t degree(NodeId v) const { return adj_[v].size(); }

  /// Appends a new isolated node, returning its id.
  NodeId add_node();

  /// Detaches a node from all its neighbors (id remains valid but isolated).
  void isolate(NodeId v);

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t num_edges_ = 0;
};

/// Erdős–Rényi G(n, m): exactly m distinct random edges, then patched to be
/// connected by linking any stranded component to the giant one.
Graph make_erdos_renyi(std::size_t n, std::size_t m, Rng& rng);

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `attach` existing nodes with probability
/// proportional to degree. Produces the power-law degree distribution of
/// measured Gnutella overlays.
Graph make_barabasi_albert(std::size_t n, std::size_t attach, Rng& rng);

/// Gnutella-like flat overlay used as the paper's default topology: a
/// Barabási–Albert graph with attach=3 (mean degree ~6, matching measured
/// Gnutella) plus a random matching to reduce the diameter.
Graph make_gnutella_like(std::size_t n, Rng& rng);

/// Two-tier super-peer overlay: `n_super` hubs form a dense random graph,
/// every leaf attaches to `leaf_degree` random hubs.
Graph make_super_peer(std::size_t n, std::size_t n_super, std::size_t leaf_degree,
                      Rng& rng);

/// Ring of n nodes plus `shortcuts` random chords (small-world ablation).
Graph make_ring_with_shortcuts(std::size_t n, std::size_t shortcuts, Rng& rng);

/// Connects stranded components of g by adding one edge from each smaller
/// component to the largest. Returns edges added.
std::size_t make_connected(Graph& g, Rng& rng);

}  // namespace gt::graph
