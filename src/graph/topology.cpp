#include "graph/topology.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gt::graph {

namespace {

/// Inserts v into sorted vector if absent; returns true on insert.
bool sorted_insert(std::vector<NodeId>& vec, NodeId v) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it != vec.end() && *it == v) return false;
  vec.insert(it, v);
  return true;
}

bool sorted_erase(std::vector<NodeId>& vec, NodeId v) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it == vec.end() || *it != v) return false;
  vec.erase(it);
  return true;
}

/// Union-find over node ids.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n), rank_(n, 0) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<unsigned> rank_;
};

}  // namespace

bool Graph::add_edge(NodeId a, NodeId b) {
  if (a == b) return false;
  assert(a < adj_.size() && b < adj_.size());
  if (!sorted_insert(adj_[a], b)) return false;
  sorted_insert(adj_[b], a);
  ++num_edges_;
  return true;
}

bool Graph::remove_edge(NodeId a, NodeId b) {
  if (a == b) return false;
  assert(a < adj_.size() && b < adj_.size());
  if (!sorted_erase(adj_[a], b)) return false;
  sorted_erase(adj_[b], a);
  --num_edges_;
  return true;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  if (a >= adj_.size() || b >= adj_.size()) return false;
  const auto& v = adj_[a];
  return std::binary_search(v.begin(), v.end(), b);
}

NodeId Graph::add_node() {
  adj_.emplace_back();
  return adj_.size() - 1;
}

void Graph::isolate(NodeId v) {
  assert(v < adj_.size());
  // Edge accounting must drop by exactly degree(v): decrement only when the
  // reverse entry really existed, so a broken symmetry invariant surfaces
  // as an assert (and at worst an undercount) instead of silently
  // corrupting num_edges_ — the CSR rebuild path revalidates this count.
  for (const NodeId u : adj_[v]) {
    const bool erased = sorted_erase(adj_[u], v);
    assert(erased && "Graph::isolate: asymmetric adjacency");
    if (erased) --num_edges_;
  }
  adj_[v].clear();
}

Graph make_erdos_renyi(std::size_t n, std::size_t m, Rng& rng) {
  if (n < 2) throw std::invalid_argument("make_erdos_renyi: need n >= 2");
  Graph g(n);
  const std::size_t max_edges = n * (n - 1) / 2;
  m = std::min(m, max_edges);
  std::size_t attempts = 0;
  const std::size_t attempt_cap = m * 50 + 1000;
  while (g.num_edges() < m && attempts < attempt_cap) {
    const NodeId a = rng.next_below(n);
    const NodeId b = rng.next_below(n);
    g.add_edge(a, b);
    ++attempts;
  }
  make_connected(g, rng);
  return g;
}

Graph make_barabasi_albert(std::size_t n, std::size_t attach, Rng& rng) {
  if (attach == 0) throw std::invalid_argument("make_barabasi_albert: attach must be > 0");
  const std::size_t seed_size = std::max<std::size_t>(attach + 1, 3);
  if (n < seed_size) throw std::invalid_argument("make_barabasi_albert: n too small");
  Graph g(n);
  // Endpoint list: each edge contributes both endpoints, so sampling a
  // uniform element is exactly degree-proportional sampling.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * n * attach);
  for (NodeId a = 0; a < seed_size; ++a) {
    for (NodeId b = a + 1; b < seed_size; ++b) {
      g.add_edge(a, b);
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  }
  for (NodeId v = seed_size; v < n; ++v) {
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < attach && guard < 50 * attach + 100) {
      const NodeId target = endpoints[rng.next_below(endpoints.size())];
      if (g.add_edge(v, target)) {
        endpoints.push_back(v);
        endpoints.push_back(target);
        ++added;
      }
      ++guard;
    }
  }
  return g;
}

Graph make_gnutella_like(std::size_t n, Rng& rng) {
  Graph g = make_barabasi_albert(n, 3, rng);
  // Random matching: one extra chord per ~4 nodes shortens the diameter the
  // way Gnutella's dynamic connection churn does in practice.
  const std::size_t chords = n / 4;
  for (std::size_t i = 0; i < chords; ++i) {
    const NodeId a = rng.next_below(n);
    const NodeId b = rng.next_below(n);
    g.add_edge(a, b);
  }
  return g;
}

Graph make_super_peer(std::size_t n, std::size_t n_super, std::size_t leaf_degree,
                      Rng& rng) {
  if (n_super == 0 || n_super > n)
    throw std::invalid_argument("make_super_peer: invalid hub count");
  Graph g(n);
  // Hubs 0..n_super-1 form a random graph with mean degree ~ min(8, n_super-1).
  const std::size_t hub_edges = n_super * std::min<std::size_t>(8, n_super - 1) / 2;
  std::size_t guard = 0;
  std::size_t placed = 0;
  while (placed < hub_edges && guard < hub_edges * 50 + 100) {
    const NodeId a = rng.next_below(n_super);
    const NodeId b = rng.next_below(n_super);
    if (g.add_edge(a, b)) ++placed;
    ++guard;
  }
  for (NodeId leaf = n_super; leaf < n; ++leaf) {
    const std::size_t want = std::min(leaf_degree, n_super);
    const auto hubs = rng.sample_without_replacement(n_super, want);
    for (const auto h : hubs) g.add_edge(leaf, h);
  }
  make_connected(g, rng);
  return g;
}

Graph make_ring_with_shortcuts(std::size_t n, std::size_t shortcuts, Rng& rng) {
  if (n < 3) throw std::invalid_argument("make_ring_with_shortcuts: need n >= 3");
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  for (std::size_t i = 0; i < shortcuts; ++i) {
    const NodeId a = rng.next_below(n);
    const NodeId b = rng.next_below(n);
    g.add_edge(a, b);
  }
  return g;
}

std::size_t make_connected(Graph& g, Rng& rng) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return 0;
  DisjointSet ds(n);
  for (NodeId v = 0; v < n; ++v)
    for (const NodeId u : g.neighbors(v))
      if (u > v) ds.unite(v, u);

  // Group by root; attach every non-largest component to the largest.
  std::vector<std::vector<NodeId>> components(n);
  for (NodeId v = 0; v < n; ++v) components[ds.find(v)].push_back(v);
  std::size_t largest = 0;
  for (std::size_t r = 0; r < n; ++r)
    if (components[r].size() > components[largest].size()) largest = r;

  std::size_t added = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (r == largest || components[r].empty()) continue;
    const auto& comp = components[r];
    const auto& big = components[largest];
    const NodeId from = comp[rng.next_below(comp.size())];
    const NodeId to = big[rng.next_below(big.size())];
    if (g.add_edge(from, to)) ++added;
  }
  return added;
}

}  // namespace gt::graph
