#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>

namespace gt::graph {

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) max_deg = std::max(max_deg, g.degree(v));
  std::vector<std::size_t> hist(max_deg + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++hist[g.degree(v)];
  return hist;
}

double mean_degree(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) / static_cast<double>(g.num_nodes());
}

std::size_t count_components(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<bool> seen(n, false);
  std::size_t components = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (seen[start]) continue;
    ++components;
    stack.push_back(start);
    seen[start] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId u : g.neighbors(v)) {
        if (!seen[u]) {
          seen[u] = true;
          stack.push_back(u);
        }
      }
    }
  }
  return components;
}

bool is_connected(const Graph& g) {
  return g.num_nodes() <= 1 || count_components(g) == 1;
}

std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source) {
  constexpr auto kUnreachable = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(g.num_nodes(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (const NodeId u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        frontier.push(u);
      }
    }
  }
  return dist;
}

std::size_t estimate_diameter(const Graph& g, std::size_t samples, Rng& rng) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return 0;
  std::size_t best = 0;
  const bool exhaustive = samples >= n;
  const std::size_t count = exhaustive ? n : samples;
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId src = exhaustive ? i : rng.next_below(n);
    const auto dist = bfs_distances(g, src);
    for (const auto d : dist)
      if (d != std::numeric_limits<std::size_t>::max()) best = std::max(best, d);
  }
  return best;
}

double degree_powerlaw_exponent(const Graph& g, std::size_t x_min) {
  // Discrete MLE approximation: gamma ~= 1 + n_tail / sum(ln(d_i/(x_min-0.5))).
  double log_sum = 0.0;
  std::size_t n_tail = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t d = g.degree(v);
    if (d >= x_min) {
      log_sum += std::log(static_cast<double>(d) / (static_cast<double>(x_min) - 0.5));
      ++n_tail;
    }
  }
  if (n_tail == 0 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n_tail) / log_sum;
}

double clustering_coefficient(const Graph& g) {
  std::uint64_t triangles3 = 0;  // 3 * number of triangles
  std::uint64_t triads = 0;      // open + closed triads
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    const std::size_t d = nbrs.size();
    if (d >= 2) triads += static_cast<std::uint64_t>(d) * (d - 1) / 2;
    for (std::size_t i = 0; i < d; ++i)
      for (std::size_t j = i + 1; j < d; ++j)
        if (g.has_edge(nbrs[i], nbrs[j])) ++triangles3;
  }
  if (triads == 0) return 0.0;
  return static_cast<double>(triangles3) / static_cast<double>(triads);
}

}  // namespace gt::graph
