// The GossipTrust engine: the paper's primary contribution (Algorithm 2).
//
// Drives aggregation cycles t = 0, 1, ... until the global reputation
// vector converges:
//   * each cycle computes V(t+1) = S^T V(t) by vector push-sum gossip
//     (gossip steps run until every node is epsilon-stable);
//   * the greedy-factor/power-node mix is applied at the cycle boundary;
//   * cycles stop when the mean relative change of V drops below delta.
//
// The engine exposes both the full run() loop and a single-cycle API so
// callers (the churn ablation, the file-sharing workload) can mutate the
// trust matrix or the overlay between cycles exactly like a live network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/power_nodes.hpp"
#include "gossip/vector_gossip.hpp"
#include "graph/topology.hpp"
#include "telemetry/event_log.hpp"
#include "trace/trace.hpp"
#include "trust/matrix.hpp"

namespace gt::core {

/// All tunables; defaults are the paper's Table 2.
struct GossipTrustConfig {
  double delta = 1e-3;             ///< global aggregation threshold
  double epsilon = 1e-4;           ///< gossip error threshold
  double alpha = 0.15;             ///< greedy factor
  double power_node_fraction = 0.01;  ///< q as a fraction of n ("up to 1%")
  std::size_t max_cycles = 100;    ///< safety cap on aggregation cycles
  std::size_t stable_rounds = 2;   ///< consecutive stable gossip steps
  std::size_t max_gossip_steps = 10000;
  double loss_probability = 0.0;   ///< message loss injected into gossip
  bool neighbors_only = false;     ///< restrict gossip targets to overlay neighbors
  bool keep_final_views = false;   ///< retain per-node views of the last cycle
  std::size_t num_threads = 1;     ///< gossip kernel lanes (0 = hardware concurrency)
  simd::SimdLevel simd_level = simd::SimdLevel::kAuto;
                                   ///< gossip kernel ISA (GT_SIMD env wins;
                                   ///< bit-identical at every level)
  /// Graceful degradation: when a cycle's gossip fails to reach epsilon-
  /// stability within max_gossip_steps, fall back to the previous cycle's
  /// reputation vector and flag the cycle `degraded` instead of silently
  /// returning the biased partial aggregate. Disable to get the legacy
  /// use-whatever-gossip-produced behavior.
  bool fallback_on_nonconverged = true;
};

/// Per-cycle telemetry: a snapshot view over the gossip kernel's metrics
/// registry (counters/gauges/histogram sums merged across worker lanes at
/// the cycle boundary) plus engine-level cycle outcomes.
struct CycleStats {
  std::size_t gossip_steps = 0;
  bool gossip_converged = false;
  bool degraded = false;  ///< non-converged gossip; previous V retained
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t triplets_sent = 0;
  std::uint64_t active_triplets = 0;          ///< live (x,w) components at cycle end
  std::uint64_t zero_components_skipped = 0;  ///< structural zeros never gossiped
  double send_phase_seconds = 0.0;            ///< route/bucket/gather wall time
  double bookkeeping_phase_seconds = 0.0;     ///< convergence-tracking wall time
  double readout_seconds = 0.0;               ///< consensus read-out wall time
  double change_from_previous = 0.0;  ///< mean relative error vs previous V
};

/// Final outcome of a full aggregation run.
struct AggregationResult {
  std::vector<double> scores;      ///< converged global reputation vector
  std::vector<NodeId> power_nodes; ///< selected after the last cycle
  std::vector<CycleStats> cycles;
  bool converged = false;

  std::size_t num_cycles() const noexcept { return cycles.size(); }
  std::size_t degraded_cycles() const noexcept;
  std::size_t total_gossip_steps() const noexcept;
  std::uint64_t total_messages() const noexcept;
  std::uint64_t total_triplets() const noexcept;
  double mean_gossip_steps_per_cycle() const noexcept;

  /// Per-node final views (row i = node i's reputation vector); only
  /// populated when config.keep_final_views was set.
  std::vector<std::vector<double>> final_views;
};

/// GossipTrust reputation aggregation engine.
class GossipTrustEngine {
 public:
  GossipTrustEngine(std::size_t n, GossipTrustConfig config);

  std::size_t num_nodes() const noexcept { return n_; }
  const GossipTrustConfig& config() const noexcept { return config_; }

  /// Uniform initial vector v_i(0) = 1/n.
  std::vector<double> initial_scores() const;

  /// Runs one aggregation cycle: gossips S^T v, normalizes, applies the
  /// power-node mix (using power nodes selected from the *previous* cycle's
  /// scores, per "power nodes are dynamically chosen after each reputation
  /// aggregation"), and reselects power nodes from the new scores.
  /// `overlay` is only consulted when config.neighbors_only is set.
  /// `alive` (optional, size n, nonzero = live) restricts the cycle to the
  /// current membership: departed peers neither report, gossip, nor hold
  /// scores (their entry in v becomes 0) — the peer-dynamics support the
  /// churn ablation drives between cycles.
  CycleStats run_cycle(const trust::SparseMatrix& s, std::vector<double>& v,
                       std::vector<NodeId>& power, Rng& rng,
                       const graph::Graph* overlay = nullptr,
                       std::vector<std::vector<double>>* views_out = nullptr,
                       const std::vector<std::uint8_t>* alive = nullptr);

  /// Full loop: cycles until mean relative change < delta (or max_cycles).
  AggregationResult run(const trust::SparseMatrix& s, Rng& rng,
                        const graph::Graph* overlay = nullptr,
                        std::optional<std::vector<double>> warm_start = std::nullopt);

  /// Attaches a JSONL sink: every run_cycle emits one `cycle` record (steps,
  /// message/triplet counters, per-phase seconds, change_from_previous) and,
  /// when step_sample_every > 0, the gossip kernel additionally emits one
  /// `gossip_step` record every step_sample_every-th step. Null detaches.
  void set_event_log(telemetry::EventLog* events, std::size_t step_sample_every = 0);

  /// Attaches a causal-trace sink: every run_cycle emits one kCycle span
  /// (on the sink's synchronous time axis) whose gossip steps parent into
  /// it, plus one flight-recorder probe sweep at the cycle boundary —
  /// per live component, the column weight mass, its deviation from the
  /// conserved value 1, and |V_j(t+1) - V_j(t)|. Observational only: the
  /// aggregation is bit-identical with tracing on or off. Null detaches.
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

  /// Installs gossip-layer adversary vectors forwarded to every subsequent
  /// cycle's kernel (see VectorGossip::set_adversary): x_scale[i] scales
  /// node i's own-component x share on the wire, withhold[i] suppresses
  /// everything but its own component. Empty spans clear the respective
  /// behavior; RNG-free, so clearing restores bit-identical runs.
  void set_gossip_adversary(std::span<const double> x_scale,
                            std::span<const std::uint8_t> withhold);

 private:
  std::size_t n_;
  GossipTrustConfig config_;
  std::unique_ptr<ThreadPool> pool_;  // shared by every cycle's gossip kernel
  telemetry::EventLog* events_ = nullptr;
  std::size_t step_sample_every_ = 0;
  std::uint64_t cycles_emitted_ = 0;  // cycle index stamped onto records
  trace::TraceSink* trace_ = nullptr;
  std::uint64_t trace_cycle_seq_ = 0;  // probe-sweep series index
  std::vector<double> adv_scale_;            // gossip-layer liars (empty = none)
  std::vector<std::uint8_t> adv_withhold_;   // share withholders (empty = none)
};

}  // namespace gt::core
