// ReputationManager: the long-running service facade (paper Fig. 1a).
//
// Figure 1(a) of the paper shows GossipTrust on a node as three modules:
// gossip-based reputation aggregation (initial computation + reputation
// *updating*), power-node selection, and reputation storage. This class is
// that architecture as an embeddable component: it accumulates transaction
// feedback, re-aggregates on a configurable cadence (warm-starting each
// round from the previous converged vector — the paper's "Reputation
// Updating" path), reselects power nodes after every aggregation, and
// optionally publishes the Bloom-compressed score store for bandwidth-
// constrained queries.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "bloom/score_store.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/qos_qof.hpp"
#include "trust/feedback.hpp"

namespace gt::core {

struct ReputationManagerConfig {
  GossipTrustConfig engine;              ///< aggregation parameters (Table 2)
  std::size_t reaggregate_every = 1000;  ///< feedbacks between auto refreshes
  bool warm_start = true;                ///< reuse last vector as V(0)
  bool publish_bloom = false;            ///< maintain the compressed store
  bloom::ScoreStoreConfig bloom;         ///< geometry of the published store
  bool qof_weighting = false;            ///< damp raters by feedback quality
  double ledger_decay = 1.0;             ///< per-refresh aging factor (1 = off)
};

/// Node-local reputation service: feedback in, global scores out.
class ReputationManager {
 public:
  ReputationManager(std::size_t n, ReputationManagerConfig config,
                    std::uint64_t seed);

  std::size_t num_peers() const noexcept { return n_; }

  /// Records one rating; triggers an automatic refresh every
  /// `reaggregate_every` recorded transactions.
  void record_transaction(trust::NodeId rater, trust::NodeId ratee, double rating);

  /// Forces a re-aggregation from the current ledger.
  const AggregationResult& refresh();

  /// Current global score of a peer (uniform prior before first refresh).
  double score(trust::NodeId peer) const;
  const std::vector<double>& scores() const noexcept { return scores_; }

  /// The k most reputable peers.
  std::vector<NodeId> top(std::size_t k) const;

  /// Power nodes selected by the last aggregation (empty before it).
  const std::vector<NodeId>& power_nodes() const noexcept { return power_nodes_; }

  /// Rater feedback-quality scores (only populated with qof_weighting).
  const std::vector<double>& qof_scores() const noexcept { return qof_; }

  /// Compressed score lookup through the published Bloom store; falls back
  /// to the exact score when publishing is disabled.
  double compressed_score(trust::NodeId peer) const;
  const bloom::BloomScoreStore* published_store() const { return store_.get(); }

  std::size_t refresh_count() const noexcept { return refreshes_; }
  std::size_t transactions_recorded() const noexcept { return transactions_; }
  const trust::FeedbackLedger& ledger() const noexcept { return ledger_; }

  /// Result of the most recent aggregation (nullopt before the first).
  const std::optional<AggregationResult>& last_aggregation() const noexcept {
    return last_;
  }

 private:
  std::size_t n_;
  ReputationManagerConfig config_;
  GossipTrustEngine engine_;
  trust::FeedbackLedger ledger_;
  Rng rng_;
  std::vector<double> scores_;
  std::vector<double> qof_;
  std::vector<NodeId> power_nodes_;
  std::unique_ptr<bloom::BloomScoreStore> store_;
  std::optional<AggregationResult> last_;
  std::size_t transactions_ = 0;
  std::size_t refreshes_ = 0;
};

}  // namespace gt::core
