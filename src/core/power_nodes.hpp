// Power-node selection and greedy-factor mixing.
//
// GossipTrust inherits PowerTrust's power nodes: after every aggregation
// cycle the q highest-reputation peers (at most 1% of n by default) are
// designated power nodes, and the next iterate is damped toward them with
// greedy factor alpha:
//
//   V <- (1 - alpha) * S^T V  +  alpha * P,    P uniform over power nodes.
//
// This is the PageRank-style teleport that (a) makes the chain irreducible
// and (b) anchors reputation mass on peers already proven trustworthy,
// which is what blunts malicious raters in Fig. 4.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gt::core {

using NodeId = std::size_t;

/// Selects the top-k reputation holders as power nodes (k >= 1 whenever
/// fraction > 0 and n > 0; ties break toward the smaller id for
/// determinism).
std::vector<NodeId> select_power_nodes(std::span<const double> scores, double fraction);

/// In-place greedy mixing: v <- (1-alpha)*v + alpha*P with P uniform over
/// `power`. No-op when alpha == 0 or power is empty. `v` should be
/// L1-normalized on entry; the result stays normalized.
void apply_power_node_mix(std::vector<double>& v, std::span<const NodeId> power,
                          double alpha);

}  // namespace gt::core
