#include "core/engine.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/stats.hpp"

namespace gt::core {

std::size_t AggregationResult::degraded_cycles() const noexcept {
  std::size_t s = 0;
  for (const auto& c : cycles) s += c.degraded ? 1 : 0;
  return s;
}

std::size_t AggregationResult::total_gossip_steps() const noexcept {
  std::size_t s = 0;
  for (const auto& c : cycles) s += c.gossip_steps;
  return s;
}

std::uint64_t AggregationResult::total_messages() const noexcept {
  std::uint64_t s = 0;
  for (const auto& c : cycles) s += c.messages_sent;
  return s;
}

std::uint64_t AggregationResult::total_triplets() const noexcept {
  std::uint64_t s = 0;
  for (const auto& c : cycles) s += c.triplets_sent;
  return s;
}

double AggregationResult::mean_gossip_steps_per_cycle() const noexcept {
  if (cycles.empty()) return 0.0;
  return static_cast<double>(total_gossip_steps()) /
         static_cast<double>(cycles.size());
}

GossipTrustEngine::GossipTrustEngine(std::size_t n, GossipTrustConfig config)
    : n_(n), config_(config) {
  if (n_ == 0) throw std::invalid_argument("GossipTrustEngine: n must be positive");
  if (config_.delta <= 0.0 || config_.epsilon <= 0.0)
    throw std::invalid_argument("GossipTrustEngine: thresholds must be positive");
  if (config_.alpha < 0.0 || config_.alpha > 1.0)
    throw std::invalid_argument("GossipTrustEngine: alpha must be in [0, 1]");
  if (config_.num_threads != 1)
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
}

std::vector<double> GossipTrustEngine::initial_scores() const {
  return std::vector<double>(n_, 1.0 / static_cast<double>(n_));
}

void GossipTrustEngine::set_event_log(telemetry::EventLog* events,
                                      std::size_t step_sample_every) {
  events_ = events;
  step_sample_every_ = step_sample_every;
}

void GossipTrustEngine::set_gossip_adversary(
    std::span<const double> x_scale, std::span<const std::uint8_t> withhold) {
  if (!x_scale.empty() && x_scale.size() != n_)
    throw std::invalid_argument(
        "GossipTrustEngine::set_gossip_adversary: x_scale size");
  if (!withhold.empty() && withhold.size() != n_)
    throw std::invalid_argument(
        "GossipTrustEngine::set_gossip_adversary: withhold size");
  for (const double c : x_scale)
    if (!(std::isfinite(c) && c > 0.0))
      throw std::invalid_argument(
          "GossipTrustEngine::set_gossip_adversary: x_scale values must be "
          "finite and > 0");
  adv_scale_.assign(x_scale.begin(), x_scale.end());
  adv_withhold_.assign(withhold.begin(), withhold.end());
}

CycleStats GossipTrustEngine::run_cycle(const trust::SparseMatrix& s,
                                        std::vector<double>& v,
                                        std::vector<NodeId>& power, Rng& rng,
                                        const graph::Graph* overlay,
                                        std::vector<std::vector<double>>* views_out,
                                        const std::vector<std::uint8_t>* alive) {
  if (s.size() != n_ || v.size() != n_)
    throw std::invalid_argument("GossipTrustEngine::run_cycle: size mismatch");

  gossip::PushSumConfig ps;
  ps.epsilon = config_.epsilon;
  ps.stable_rounds = config_.stable_rounds;
  ps.max_steps = config_.max_gossip_steps;
  ps.loss_probability = config_.loss_probability;
  ps.neighbors_only = config_.neighbors_only;
  ps.num_threads = config_.num_threads;
  ps.simd_level = config_.simd_level;

  gossip::VectorGossip gossip(n_, ps, pool_.get());
  if (alive != nullptr) gossip.set_participants(*alive);
  if (!adv_scale_.empty() || !adv_withhold_.empty())
    gossip.set_adversary(adv_scale_, adv_withhold_);
  // Step sampling is the kernel's job; the engine emits the richer `cycle`
  // record below, so the kernel sink is only attached when sampling is on.
  if (events_ != nullptr && step_sample_every_ > 0)
    gossip.set_event_log(events_, step_sample_every_);
  std::uint64_t cycle_trace = 0, cycle_span = 0;
  double cycle_base = 0.0;
  if (trace_ != nullptr) {
    cycle_trace = trace_->alloc_trace();
    cycle_span = trace_->alloc_span();
    cycle_base = trace_->time_cursor();
    gossip.set_trace(trace_, cycle_base, cycle_trace, cycle_span);
  }
  gossip.initialize(s, v);
  const auto gres = gossip.run(rng, overlay);

  // Consensus read-out: the system-wide agreed value for component j is the
  // (near-identical) per-node ratio; we average defined per-node estimates,
  // which keeps residual gossip error in the result the way a real
  // deployment would experience it. The kernel walks only active components,
  // so departed peers (and anything nobody heard about) read out as 0.
  const auto readout_begin = std::chrono::steady_clock::now();
  std::vector<double> next = gossip.consensus_means();
  const double readout_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    readout_begin)
          .count();
  normalize_l1(next);

  // Pre-mix consensus, snapshotted for the probe sweep below: the rank
  // detectors must see what the *network* computed — the alpha re-anchoring
  // legitimately jumps a node's score whenever the power-node selection
  // churns, and that engine-side step must not read as manipulation.
  std::vector<double> premix;
  if (trace_ != nullptr) premix = next;

  auto is_alive = [alive](NodeId v_id) {
    return alive == nullptr || (*alive)[v_id] != 0;
  };

  // Graceful degradation: a cycle whose gossip never reached epsilon-
  // stability holds a *biased* partial aggregate (mass still traveling or
  // lost), and silently adopting it would corrupt every later cycle. Keep
  // the previous cycle's vector instead and flag the cycle degraded;
  // `next` is still computed above so change_from_previous reports how far
  // off the abandoned aggregate was.
  const bool degraded = !gres.converged && config_.fallback_on_nonconverged;

  // Greedy-factor damping toward the power nodes selected after the
  // previous cycle — skipping anchors that have since departed, so no
  // reputation mass teleports onto dead peers.
  if (!degraded) {
    if (alive == nullptr) {
      apply_power_node_mix(next, power, config_.alpha);
    } else {
      std::vector<NodeId> live_power;
      live_power.reserve(power.size());
      for (const NodeId p : power)
        if (is_alive(p)) live_power.push_back(p);
      apply_power_node_mix(next, live_power, config_.alpha);
    }
  }

  // CycleStats is a snapshot view over the kernel's metrics registry: the
  // counters/gauges/timer histograms the phases filled (per worker lane,
  // merged here at the cycle boundary) are the single source of truth.
  const telemetry::MetricsSnapshot snap = gossip.metrics().snapshot();
  CycleStats stats;
  stats.gossip_steps = gres.steps;
  stats.gossip_converged = gres.converged;
  stats.degraded = degraded;
  stats.messages_sent = *snap.counter("gossip.messages_sent");
  stats.messages_lost = *snap.counter("gossip.messages_lost");
  stats.triplets_sent = *snap.counter("gossip.triplets_sent");
  stats.active_triplets =
      static_cast<std::uint64_t>(*snap.gauge("gossip.active_triplets"));
  stats.zero_components_skipped = *snap.counter("gossip.zero_components_skipped");
  stats.send_phase_seconds = snap.histogram("gossip.send_phase_seconds")->sum;
  stats.bookkeeping_phase_seconds =
      snap.histogram("gossip.bookkeeping_phase_seconds")->sum;
  stats.readout_seconds = readout_seconds;
  stats.change_from_previous = mean_relative_error(next, v);

  if (trace_ != nullptr) {
    // The cycle span closes over the steps the kernel just traced; the
    // flight-recorder sweep samples every live column at the boundary.
    const double cycle_end = trace_->time_cursor();
    trace::TraceRecord rec;
    rec.t_start = cycle_base;
    rec.t_end = cycle_end;
    rec.trace_id = cycle_trace;
    rec.span_id = cycle_span;
    rec.kind = static_cast<std::uint32_t>(trace::SpanKind::kCycle);
    rec.flags = static_cast<std::uint32_t>(trace_cycle_seq_);
    rec.value = stats.change_from_previous;
    trace_->emit(rec);
    const std::uint64_t sweep = trace_->alloc_trace();
    // Legitimate per-column x mass this cycle: what Algorithm 2 seeded,
    // column sums of S^T restricted to live rows (dangling raters spread
    // uniformly, matching VectorGossip::initialize). Sync gossip conserves
    // it exactly, so measured minus expected isolates adversary-minted
    // mass — computed only when traced (pure reads, no RNG).
    std::vector<double> expected_x(n_, 0.0);
    const double uniform = 1.0 / static_cast<double>(n_);
    for (NodeId i = 0; i < n_; ++i) {
      if (!is_alive(i)) continue;
      const auto entries = s.row(i);
      if (entries.empty()) {
        const double share = v[i] * uniform;
        for (NodeId j = 0; j < n_; ++j) expected_x[j] += share;
      } else {
        for (const auto& e : entries) expected_x[e.col] += e.value * v[i];
      }
    }
    for (NodeId j = 0; j < n_; ++j) {
      if (!is_alive(j)) continue;
      const double weight = gossip.column_w_mass(j);
      const double score = degraded ? v[j] : premix[j];
      trace_->probe(sweep, trace_cycle_seq_, cycle_end,
                    static_cast<std::uint32_t>(j), weight, weight - 1.0,
                    std::abs(next[j] - v[j]), score,
                    gossip.column_x_mass(j) - expected_x[j]);
    }
    ++trace_cycle_seq_;
  }

  if (events_ != nullptr) {
    events_->record("cycle")
        .field("cycle", cycles_emitted_++)
        .field("n", n_)
        .field("simd", simd::level_name(gossip.simd_level()))
        .field("gossip_steps", stats.gossip_steps)
        .field("gossip_converged", stats.gossip_converged)
        .field("degraded", stats.degraded ? 1 : 0)
        .field("messages_sent", stats.messages_sent)
        .field("messages_dropped", stats.messages_lost)
        .field("triplets_sent", stats.triplets_sent)
        .field("active_triplets", stats.active_triplets)
        .field("zero_components_skipped", stats.zero_components_skipped)
        .field("send_phase_seconds", stats.send_phase_seconds)
        .field("bookkeeping_phase_seconds", stats.bookkeeping_phase_seconds)
        .field("readout_seconds", stats.readout_seconds)
        .field("change_from_previous", stats.change_from_previous);
  }

  if (views_out != nullptr) {
    views_out->clear();
    views_out->reserve(n_);
    for (NodeId i = 0; i < n_; ++i) views_out->push_back(gossip.node_view(i));
  }

  if (!degraded) {
    v = std::move(next);
    power = select_power_nodes(v, config_.power_node_fraction);
  }
  return stats;
}

AggregationResult GossipTrustEngine::run(const trust::SparseMatrix& s, Rng& rng,
                                         const graph::Graph* overlay,
                                         std::optional<std::vector<double>> warm_start) {
  AggregationResult result;
  std::vector<double> v = warm_start ? std::move(*warm_start) : initial_scores();
  if (v.size() != n_)
    throw std::invalid_argument("GossipTrustEngine::run: warm start size mismatch");
  std::vector<NodeId> power;  // none before the first aggregation completes
  trace_cycle_seq_ = 0;  // each run() is its own probe series

  for (std::size_t t = 0; t < config_.max_cycles; ++t) {
    const bool last_views = config_.keep_final_views;
    std::vector<std::vector<double>> views;
    CycleStats stats =
        run_cycle(s, v, power, rng, overlay, last_views ? &views : nullptr);
    result.cycles.push_back(stats);
    if (last_views) result.final_views = std::move(views);
    // A degraded cycle retained the previous vector; its (near-zero)
    // change must not masquerade as global convergence.
    if (!stats.degraded && stats.change_from_previous < config_.delta) {
      result.converged = true;
      break;
    }
  }

  result.scores = std::move(v);
  result.power_nodes = std::move(power);
  return result;
}

}  // namespace gt::core
