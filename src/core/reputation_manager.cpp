#include "core/reputation_manager.hpp"

#include <stdexcept>

#include "common/stats.hpp"

namespace gt::core {

ReputationManager::ReputationManager(std::size_t n, ReputationManagerConfig config,
                                     std::uint64_t seed)
    : n_(n),
      config_(config),
      engine_(n, config.engine),
      ledger_(n),
      rng_(seed),
      scores_(n, n ? 1.0 / static_cast<double>(n) : 0.0) {
  if (n_ == 0) throw std::invalid_argument("ReputationManager: n must be positive");
  if (config_.reaggregate_every == 0)
    throw std::invalid_argument("ReputationManager: refresh period must be positive");
  if (config_.ledger_decay <= 0.0 || config_.ledger_decay > 1.0)
    throw std::invalid_argument("ReputationManager: decay must be in (0, 1]");
}

void ReputationManager::record_transaction(trust::NodeId rater, trust::NodeId ratee,
                                           double rating) {
  ledger_.record(rater, ratee, rating);
  ++transactions_;
  if (transactions_ % config_.reaggregate_every == 0) refresh();
}

const AggregationResult& ReputationManager::refresh() {
  // Age the accumulated history first so this epoch's fresh feedback
  // carries full weight relative to older epochs'.
  if (config_.ledger_decay < 1.0) ledger_.decay(config_.ledger_decay);
  const auto s = ledger_.normalized_matrix();

  if (config_.qof_weighting) {
    // Robust mode: exact QoF-damped aggregation (section 7 extension),
    // then report it through the same result shape.
    const auto robust = qof_weighted_aggregation(
        ledger_, config_.engine.alpha, config_.engine.power_node_fraction);
    qof_ = robust.qof;
    AggregationResult result;
    result.scores = robust.qos;
    result.converged = robust.converged;
    result.power_nodes =
        select_power_nodes(result.scores, config_.engine.power_node_fraction);
    last_ = std::move(result);
  } else {
    std::optional<std::vector<double>> warm;
    if (config_.warm_start && refreshes_ > 0) warm = scores_;
    last_ = engine_.run(s, rng_, nullptr, std::move(warm));
  }

  scores_ = last_->scores;
  power_nodes_ = last_->power_nodes;
  ++refreshes_;

  if (config_.publish_bloom) {
    store_ = std::make_unique<bloom::BloomScoreStore>(
        std::span<const double>(scores_.data(), scores_.size()), config_.bloom);
  }
  return *last_;
}

double ReputationManager::score(trust::NodeId peer) const {
  if (peer >= n_) throw std::out_of_range("ReputationManager::score");
  return scores_[peer];
}

std::vector<NodeId> ReputationManager::top(std::size_t k) const {
  return top_k_indices(std::span<const double>(scores_.data(), scores_.size()), k);
}

double ReputationManager::compressed_score(trust::NodeId peer) const {
  if (peer >= n_) throw std::out_of_range("ReputationManager::compressed_score");
  if (store_ != nullptr) return store_->lookup(static_cast<std::uint64_t>(peer));
  return scores_[peer];
}

}  // namespace gt::core
