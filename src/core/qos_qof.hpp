// QoS/QoF dual-score extension (paper section 7, "further research").
//
// The paper suggests keeping two reputation scores per peer: one for
// quality-of-service (the standard global reputation V) and one for
// quality-of-feedback (how truthful the peer's *ratings* are), and
// integrating them. We implement the suggestion:
//
//   * QoF_i: rank concordance between the raw ratings peer i issued and
//     the network consensus. For every pair of peers (a, b) that i rated
//     differently, the pair is concordant when sign(r_ia - r_ib) matches
//     sign(v_a - v_b); QoF_i is the concordant fraction in [0, 1].
//     Zero-valued ratings count ("rated bad" != "never met"), so a
//     colluder who rates its gang 1 and everyone else 0 claims
//     gang > honest on every cross pair — exactly the pairs the consensus
//     refutes — and scores near 0, while honest raters score near 1.
//   * combine_scores: geometric blend QoS^theta * QoF^(1-theta).
//   * qof_weighted_aggregation: robust re-aggregation where each rater's
//     voting weight is damped by its QoF, alternated with QoF refreshes —
//     dishonest raters progressively lose influence.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/power_nodes.hpp"
#include "trust/feedback.hpp"
#include "trust/matrix.hpp"

namespace gt::core {

/// Per-rater feedback quality in [0, 1]; peers whose ratings contain no
/// comparable pair (fewer than two distinctly-valued ratings) get the
/// neutral value 0.5. Raters with more than `max_rated` ratings are
/// evaluated on their `max_rated` lowest-id ratees (deterministic cap that
/// bounds the O(m^2) pair scan).
std::vector<double> compute_qof(const trust::FeedbackLedger& ledger,
                                std::span<const double> global_scores,
                                std::size_t max_rated = 128);

/// Geometric blend of the two scores; theta = 1 reduces to pure QoS.
std::vector<double> combine_scores(std::span<const double> qos,
                                   std::span<const double> qof, double theta);

/// Outcome of the robust dual-score aggregation.
struct QofAggregationResult {
  std::vector<double> qos;  ///< robust global reputation (QoF-damped)
  std::vector<double> qof;  ///< final feedback-quality scores
  std::size_t iterations = 0;
  bool converged = false;
};

/// Exact (non-gossip) robust aggregation:
///   V(t+1) proportional-to S^T (V(t) * QoF) with the alpha/power-node mix,
/// refreshing QoF from the current V every `qof_refresh_every` iterations.
/// This realizes the paper's proposed QoS/QoF integration; the gossip
/// engine can consume the resulting QoF as row damping unchanged.
QofAggregationResult qof_weighted_aggregation(const trust::FeedbackLedger& ledger,
                                              double alpha, double power_fraction,
                                              double delta = 1e-6,
                                              std::size_t max_iterations = 500,
                                              std::size_t qof_refresh_every = 5);

}  // namespace gt::core
