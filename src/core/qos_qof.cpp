#include "core/qos_qof.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace gt::core {

std::vector<double> compute_qof(const trust::FeedbackLedger& ledger,
                                std::span<const double> global_scores,
                                std::size_t max_rated) {
  const std::size_t n = ledger.num_peers();
  if (global_scores.size() != n)
    throw std::invalid_argument("compute_qof: size mismatch");
  if (max_rated < 2) throw std::invalid_argument("compute_qof: max_rated < 2");

  std::vector<double> qof(n, 0.5);
  for (trust::NodeId i = 0; i < n; ++i) {
    auto ratings = ledger.ratings_of(i);
    if (ratings.size() > max_rated) ratings.resize(max_rated);  // sorted by ratee
    std::size_t concordant2 = 0;  // counted in halves so consensus ties = 1
    std::size_t comparable = 0;
    for (std::size_t a = 0; a < ratings.size(); ++a) {
      for (std::size_t b = a + 1; b < ratings.size(); ++b) {
        const double dr = ratings[a].value - ratings[b].value;
        if (dr == 0.0) continue;  // the rater expressed no preference
        ++comparable;
        const double dv =
            global_scores[ratings[a].ratee] - global_scores[ratings[b].ratee];
        if (dv == 0.0) {
          concordant2 += 1;  // consensus indifferent: half credit
        } else if ((dr > 0.0) == (dv > 0.0)) {
          concordant2 += 2;
        }
      }
    }
    if (comparable > 0)
      qof[i] = static_cast<double>(concordant2) /
               (2.0 * static_cast<double>(comparable));
  }
  return qof;
}

std::vector<double> combine_scores(std::span<const double> qos,
                                   std::span<const double> qof, double theta) {
  if (qos.size() != qof.size())
    throw std::invalid_argument("combine_scores: size mismatch");
  if (theta < 0.0 || theta > 1.0)
    throw std::invalid_argument("combine_scores: theta must be in [0, 1]");
  std::vector<double> out(qos.size());
  for (std::size_t i = 0; i < qos.size(); ++i)
    out[i] = std::pow(std::max(qos[i], 0.0), theta) *
             std::pow(std::max(qof[i], 0.0), 1.0 - theta);
  return out;
}

QofAggregationResult qof_weighted_aggregation(const trust::FeedbackLedger& ledger,
                                              double alpha, double power_fraction,
                                              double delta,
                                              std::size_t max_iterations,
                                              std::size_t qof_refresh_every) {
  const std::size_t n = ledger.num_peers();
  if (n == 0) throw std::invalid_argument("qof_weighted_aggregation: empty ledger");
  if (qof_refresh_every == 0)
    throw std::invalid_argument("qof_weighted_aggregation: refresh period must be > 0");
  const trust::SparseMatrix s = ledger.normalized_matrix();

  QofAggregationResult result;
  result.qos.assign(n, 1.0 / static_cast<double>(n));
  result.qof.assign(n, 1.0);  // start trusting every rater fully
  std::vector<NodeId> power;

  std::vector<double> damped(n);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    // Damp each rater's voting weight by its feedback quality, then take
    // one exact transpose-product step.
    for (std::size_t i = 0; i < n; ++i) damped[i] = result.qos[i] * result.qof[i];
    std::vector<double> next = s.transpose_multiply(damped);
    normalize_l1(next);
    apply_power_node_mix(next, power, alpha);
    power = select_power_nodes(next, power_fraction);

    const double change = mean_relative_error(next, result.qos);
    result.qos = std::move(next);
    ++result.iterations;

    if ((it + 1) % qof_refresh_every == 0) {
      result.qof = compute_qof(ledger, result.qos);
      continue;  // QoF changed the operator: do not test convergence yet
    }
    if (change < delta) {
      result.converged = true;
      break;
    }
  }
  result.qof = compute_qof(ledger, result.qos);
  return result;
}

}  // namespace gt::core
