#include "core/power_nodes.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace gt::core {

std::vector<NodeId> select_power_nodes(std::span<const double> scores,
                                       double fraction) {
  if (fraction <= 0.0 || scores.empty()) return {};
  const auto n = scores.size();
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(fraction * static_cast<double>(n))));
  return top_k_indices(scores, std::min(k, n));
}

void apply_power_node_mix(std::vector<double>& v, std::span<const NodeId> power,
                          double alpha) {
  if (alpha == 0.0 || power.empty()) return;
  if (alpha < 0.0 || alpha > 1.0)
    throw std::invalid_argument("apply_power_node_mix: alpha must be in [0, 1]");
  const double keep = 1.0 - alpha;
  for (auto& x : v) x *= keep;
  const double share = alpha / static_cast<double>(power.size());
  for (const NodeId p : power) {
    if (p >= v.size()) throw std::out_of_range("apply_power_node_mix: bad power node id");
    v[p] += share;
  }
}

}  // namespace gt::core
