#include "overlay/flood.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace gt::overlay {

FloodResult flood(const OverlayManager& overlay, NodeId source, std::size_t ttl) {
  FloodResult result;
  if (!overlay.is_alive(source)) return result;

  const auto& g = overlay.topology();
  std::vector<bool> seen(g.num_nodes(), false);
  std::queue<std::pair<NodeId, std::size_t>> frontier;  // (node, depth)
  seen[source] = true;
  frontier.emplace(source, 0);
  result.reached.push_back(source);

  while (!frontier.empty()) {
    const auto [v, depth] = frontier.front();
    frontier.pop();
    if (depth >= ttl) continue;
    for (const NodeId u : g.neighbors(v)) {
      if (!overlay.is_alive(u)) continue;
      ++result.messages;  // every transmission counts, duplicates included
      if (seen[u]) continue;
      seen[u] = true;
      result.reached.push_back(u);
      result.max_depth = std::max(result.max_depth, depth + 1);
      frontier.emplace(u, depth + 1);
    }
  }
  return result;
}

std::vector<NodeId> flood_query(const OverlayManager& overlay, NodeId source,
                                std::size_t ttl,
                                const std::function<bool(NodeId)>& pred,
                                FloodResult* stats) {
  FloodResult result = flood(overlay, source, ttl);
  std::vector<NodeId> responders;
  for (const NodeId v : result.reached)
    if (pred(v)) responders.push_back(v);
  if (stats != nullptr) *stats = std::move(result);
  return responders;
}

}  // namespace gt::overlay
