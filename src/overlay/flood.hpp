// TTL-scoped flooding, the Gnutella query primitive.
//
// Section 6.4: "After a query for a file is issued and flooded over the
// entire P2P network, a list of nodes having this file is generated".
// flood() performs breadth-first propagation from the source over alive
// nodes up to a TTL, counting every edge transmission — the quantity the
// overhead comparisons care about.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "overlay/overlay.hpp"

namespace gt::overlay {

struct FloodResult {
  std::vector<NodeId> reached;   ///< alive nodes visited (including source)
  std::size_t messages = 0;      ///< query transmissions (edge traversals)
  std::size_t max_depth = 0;     ///< deepest hop level reached
};

/// Floods from `source` with the given TTL (number of hops; Gnutella's
/// default is 7). Dead nodes neither receive nor forward. A node forwards
/// to all neighbors except the one it heard the query from; duplicate
/// deliveries are counted as messages but not re-forwarded, matching
/// Gnutella semantics.
FloodResult flood(const OverlayManager& overlay, NodeId source, std::size_t ttl);

/// Flood + responder filter: returns the reached nodes satisfying `pred`
/// (e.g. "has a replica of file f").
std::vector<NodeId> flood_query(const OverlayManager& overlay, NodeId source,
                                std::size_t ttl,
                                const std::function<bool(NodeId)>& pred,
                                FloodResult* stats = nullptr);

}  // namespace gt::overlay
