// Unstructured overlay membership with peer dynamics.
//
// "Adaptive to peer dynamics: peer joins and leaves an open P2P network
// dynamically" is one of the paper's six design goals. The OverlayManager
// wraps a topology with alive/dead state: leaving isolates a node, joining
// re-attaches it to random alive peers (the Gnutella bootstrap behaviour),
// and churn_step applies per-node leave/rejoin probabilities between
// aggregation cycles — exactly how the ABL-CHURN bench exercises the
// engine.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "graph/topology.hpp"

namespace gt::overlay {

using NodeId = graph::NodeId;

class OverlayManager {
 public:
  /// Takes ownership of an initial topology; all nodes start alive.
  explicit OverlayManager(graph::Graph g);

  const graph::Graph& topology() const noexcept { return graph_; }
  std::size_t num_nodes() const noexcept { return graph_.num_nodes(); }

  bool is_alive(NodeId v) const { return alive_[v]; }
  std::size_t alive_count() const noexcept { return alive_count_; }
  std::vector<NodeId> alive_nodes() const;

  /// Node departs: loses all overlay links. No-op if already gone.
  void leave(NodeId v);

  /// Node (re)joins, bootstrapping `degree` links to random alive peers
  /// (models a perfect bootstrap/host-cache service). No-op if already
  /// alive.
  void join(NodeId v, std::size_t degree, Rng& rng);

  /// Realistic Gnutella-style join: the newcomer knows one live
  /// `introducer` and discovers further neighbors by random walks from it
  /// (the ping/pong crawl), attaching to up to `degree` distinct
  /// discovered peers. Falls back to the introducer alone when walks find
  /// nobody else. No-op if already alive; throws if the introducer is not
  /// alive.
  void join_via_walk(NodeId v, std::size_t degree, NodeId introducer,
                     std::size_t walk_length, Rng& rng);

  struct ChurnStats {
    std::size_t left = 0;
    std::size_t joined = 0;
  };

  /// One churn epoch: each alive node leaves with probability p_leave,
  /// each departed node rejoins with probability p_join (with
  /// `join_degree` bootstrap links). Applied atomically from a snapshot of
  /// the current alive set. Afterwards every surviving node re-dials up to
  /// `join_degree` connections if departures dropped it below that — the
  /// connection maintenance every Gnutella client performs, which keeps
  /// the live overlay gossip-able.
  ChurnStats churn_step(double p_leave, double p_join, std::size_t join_degree,
                        Rng& rng);

  /// Re-dials random alive peers for every alive node whose degree fell
  /// below `min_degree`. Returns the number of edges added.
  std::size_t ensure_min_degree(std::size_t min_degree, Rng& rng);

 private:
  graph::Graph graph_;
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
};

}  // namespace gt::overlay
