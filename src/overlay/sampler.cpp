#include "overlay/sampler.hpp"

#include <vector>

namespace gt::overlay {

NodeId UniformSampler::sample(NodeId from, Rng& rng) const {
  const auto alive = overlay_->alive_nodes();
  if (alive.size() <= 1) return from;
  NodeId pick;
  do {
    pick = alive[rng.next_below(alive.size())];
  } while (pick == from);
  return pick;
}

NodeId RandomWalkSampler::sample(NodeId from, Rng& rng) const {
  const auto& g = overlay_->topology();
  NodeId current = from;
  for (std::size_t step = 0; step < walk_length_; ++step) {
    const auto nbrs = g.neighbors(current);
    // Collect alive neighbors (overlay links always point at alive peers,
    // but a defensive filter keeps the walk valid mid-churn).
    std::vector<NodeId> candidates;
    candidates.reserve(nbrs.size());
    for (const NodeId u : nbrs)
      if (overlay_->is_alive(u)) candidates.push_back(u);
    if (candidates.empty()) break;
    const NodeId proposal = candidates[rng.next_below(candidates.size())];
    // Metropolis–Hastings degree correction toward a uniform target.
    const double accept =
        static_cast<double>(g.degree(current)) / static_cast<double>(g.degree(proposal));
    if (accept >= 1.0 || rng.next_bool(accept)) current = proposal;
  }
  return current;
}

}  // namespace gt::overlay
