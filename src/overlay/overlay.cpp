#include "overlay/overlay.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace gt::overlay {

OverlayManager::OverlayManager(graph::Graph g)
    : graph_(std::move(g)),
      alive_(graph_.num_nodes(), true),
      alive_count_(graph_.num_nodes()) {}

std::vector<NodeId> OverlayManager::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(alive_count_);
  for (NodeId v = 0; v < alive_.size(); ++v)
    if (alive_[v]) out.push_back(v);
  return out;
}

void OverlayManager::leave(NodeId v) {
  if (!alive_[v]) return;
  graph_.isolate(v);
  alive_[v] = false;
  --alive_count_;
}

void OverlayManager::join(NodeId v, std::size_t degree, Rng& rng) {
  if (alive_[v]) return;
  alive_[v] = true;
  ++alive_count_;
  const auto candidates = alive_nodes();
  // Bootstrap: attach to `degree` distinct random alive peers (excluding v).
  std::vector<NodeId> pool;
  pool.reserve(candidates.size());
  for (const NodeId c : candidates)
    if (c != v) pool.push_back(c);
  const std::size_t want = std::min(degree, pool.size());
  const auto picks = rng.sample_without_replacement(pool.size(), want);
  for (const auto idx : picks) graph_.add_edge(v, pool[idx]);
}

void OverlayManager::join_via_walk(NodeId v, std::size_t degree, NodeId introducer,
                                   std::size_t walk_length, Rng& rng) {
  if (alive_[v]) return;
  if (!alive_[introducer])
    throw std::invalid_argument("join_via_walk: introducer is not alive");
  alive_[v] = true;
  ++alive_count_;
  graph_.add_edge(v, introducer);

  // Ping/pong crawl: random walks from the introducer discover candidate
  // neighbors; each walk endpoint becomes a connection attempt.
  std::size_t attempts = 0;
  const std::size_t attempt_cap = 10 * degree + 20;
  while (graph_.degree(v) < degree && attempts < attempt_cap) {
    ++attempts;
    NodeId current = introducer;
    for (std::size_t hop = 0; hop < walk_length; ++hop) {
      const auto nbrs = graph_.neighbors(current);
      std::vector<NodeId> live;
      live.reserve(nbrs.size());
      for (const NodeId u : nbrs)
        if (alive_[u] && u != v) live.push_back(u);
      if (live.empty()) break;
      current = live[rng.next_below(live.size())];
    }
    if (current != v) graph_.add_edge(v, current);
  }
}

OverlayManager::ChurnStats OverlayManager::churn_step(double p_leave, double p_join,
                                                      std::size_t join_degree,
                                                      Rng& rng) {
  ChurnStats stats;
  // Snapshot so a node that leaves this epoch cannot also rejoin in it.
  const std::vector<bool> snapshot = alive_;
  for (NodeId v = 0; v < snapshot.size(); ++v) {
    if (snapshot[v]) {
      if (rng.next_bool(p_leave)) {
        leave(v);
        ++stats.left;
      }
    } else {
      if (rng.next_bool(p_join)) {
        join(v, join_degree, rng);
        ++stats.joined;
      }
    }
  }
  ensure_min_degree(join_degree, rng);
  return stats;
}

std::size_t OverlayManager::ensure_min_degree(std::size_t min_degree, Rng& rng) {
  if (alive_count_ <= 1) return 0;
  const auto alive = alive_nodes();
  std::size_t added = 0;
  for (const NodeId v : alive) {
    std::size_t guard = 0;
    while (graph_.degree(v) < std::min(min_degree, alive.size() - 1) &&
           guard < 20 * min_degree + 50) {
      const NodeId peer = alive[rng.next_below(alive.size())];
      ++guard;
      if (peer == v) continue;
      if (graph_.add_edge(v, peer)) ++added;
    }
  }
  return added;
}

}  // namespace gt::overlay
