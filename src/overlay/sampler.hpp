// Peer sampling for gossip targets.
//
// Algorithm 1 line 11 says "choose a random node q" — uniform sampling
// over the whole network, which unstructured deployments approximate with
// random walks (a walk of ~O(log n) steps over a well-connected overlay
// mixes to near-uniform; hubs are corrected by a Metropolis–Hastings
// acceptance step). Both samplers are provided so the ablations can show
// gossip convergence is insensitive to the sampling substrate.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "overlay/overlay.hpp"

namespace gt::overlay {

/// Uniform sampling over alive peers (models a perfect membership service).
class UniformSampler {
 public:
  explicit UniformSampler(const OverlayManager& overlay) : overlay_(&overlay) {}

  /// A uniformly random alive peer different from `from`; returns `from`
  /// itself when it is the only alive node.
  NodeId sample(NodeId from, Rng& rng) const;

 private:
  const OverlayManager* overlay_;
};

/// Metropolis–Hastings random walk sampler: from the current node, propose
/// a uniform neighbor and accept with min(1, deg(cur)/deg(next)); the walk's
/// stationary distribution is uniform over the connected alive component.
class RandomWalkSampler {
 public:
  RandomWalkSampler(const OverlayManager& overlay, std::size_t walk_length)
      : overlay_(&overlay), walk_length_(walk_length) {}

  NodeId sample(NodeId from, Rng& rng) const;

  std::size_t walk_length() const noexcept { return walk_length_; }

 private:
  const OverlayManager* overlay_;
  std::size_t walk_length_;
};

}  // namespace gt::overlay
