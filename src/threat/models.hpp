// Threat models (paper sections 6.1 and 6.3).
//
// Two malicious settings are studied:
//   * independent: malicious peers cheat in transactions AND lie in
//     feedback — "they rate the peers who provide good service very low
//     and rate those who provide bad service very high";
//   * collusive: groups of malicious peers "rate the peers in their
//     collusion group very high and rate outsiders very low", boosting
//     their own global scores (the classic eigenvector spider trap).
//
// A population assigns each peer a type, a service quality (malicious
// peers also provide corrupted service) and, in the collusive setting, a
// collusion group. The rating/partner functions plug into
// trust::generate_feedback, and an honest-counterfactual generator
// produces the ground-truth ledger used as the reference in Eq. (8).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "trust/generator.hpp"

namespace gt::threat {

enum class PeerType { kHonest, kIndependentMalicious, kCollusive };

struct PeerProfile {
  PeerType type = PeerType::kHonest;
  int collusion_group = -1;      ///< group id, -1 for non-colluders
  double service_quality = 1.0;  ///< probability of serving authentically
};

struct ThreatConfig {
  std::size_t n = 1000;
  double malicious_fraction = 0.0;       ///< gamma, in [0, 1]
  bool collusive = false;                ///< independent vs collusive setting
  std::size_t collusion_group_size = 5;  ///< peers per collusion group
  double collusion_partner_bias = 0.5;   ///< prob. a colluder transacts in-group
};

/// Builds the population: malicious peers are a random subset of size
/// round(gamma * n); honest service quality ~ U[0.8, 1.0], malicious
/// ~ U[0.0, 0.2]; colluders are partitioned into consecutive groups of the
/// configured size.
std::vector<PeerProfile> make_population(const ThreatConfig& cfg, Rng& rng);

/// Indices of malicious peers in a population.
std::vector<std::size_t> malicious_indices(const std::vector<PeerProfile>& peers);

/// Per-peer service-quality vector.
std::vector<double> service_qualities(const std::vector<PeerProfile>& peers);

/// Rating behaviour for the population: honest peers report the outcome;
/// independent malicious invert it; colluders rate in-group 1 and
/// out-group 0 regardless of outcome.
trust::RatingFunction threat_rating(const std::vector<PeerProfile>& peers);

/// Partner selection: colluders pick an in-group partner with probability
/// `collusion_partner_bias`, otherwise (and for everyone else) uniform.
trust::PartnerSelector threat_partner_selector(const std::vector<PeerProfile>& peers,
                                               const ThreatConfig& cfg);

/// Fills `ledger` with the attacked feedback workload (power-law counts,
/// threat partner selection, threat ratings).
void generate_threat_feedback(trust::FeedbackLedger& ledger,
                              const std::vector<PeerProfile>& peers,
                              const ThreatConfig& cfg,
                              const trust::FeedbackGenConfig& gen, Rng rng);

/// The honest counterfactual: the SAME transaction stream (same rng state,
/// same partner logic, same outcomes) but every peer rates truthfully.
/// Aggregating this ledger yields the "calculated" reference scores v_i of
/// Eq. (8).
void generate_honest_counterfactual(trust::FeedbackLedger& ledger,
                                    const std::vector<PeerProfile>& peers,
                                    const ThreatConfig& cfg,
                                    const trust::FeedbackGenConfig& gen, Rng rng);

/// Eq. (8) RMS relative error restricted to honest peers' components.
/// Malicious peers' own reference scores are near zero, so including them
/// turns the metric into a ratio of two noise terms; the honest-restricted
/// RMS is the stable "aggregation error" the Fig. 4 benches report.
double honest_rms_error(const std::vector<PeerProfile>& peers,
                        std::span<const double> reference,
                        std::span<const double> estimate);

/// Attack-success metric reported alongside: total attacked reputation of
/// malicious peers divided by their total reference reputation (1 = the
/// attack gained nothing; >> 1 = reputations successfully inflated).
double malicious_reputation_gain(const std::vector<PeerProfile>& peers,
                                 std::span<const double> reference,
                                 std::span<const double> estimate);

}  // namespace gt::threat
