#include "threat/models.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "common/powerlaw.hpp"

namespace gt::threat {

std::vector<PeerProfile> make_population(const ThreatConfig& cfg, Rng& rng) {
  // Negated-range form so NaN (which compares false both ways) is rejected
  // instead of silently rounding to zero malicious peers.
  if (!(cfg.malicious_fraction >= 0.0 && cfg.malicious_fraction <= 1.0))
    throw std::invalid_argument("make_population: malicious_fraction out of range");
  std::vector<PeerProfile> peers(cfg.n);
  for (auto& p : peers) p.service_quality = rng.next_double(0.8, 1.0);

  const auto n_bad = static_cast<std::size_t>(
      std::llround(cfg.malicious_fraction * static_cast<double>(cfg.n)));
  const auto bad = rng.sample_without_replacement(cfg.n, n_bad);

  if (cfg.collusive) {
    const std::size_t group_size = std::max<std::size_t>(1, cfg.collusion_group_size);
    for (std::size_t k = 0; k < bad.size(); ++k) {
      PeerProfile& p = peers[bad[k]];
      p.type = PeerType::kCollusive;
      p.collusion_group = static_cast<int>(k / group_size);
      p.service_quality = rng.next_double(0.0, 0.2);
    }
  } else {
    for (const auto idx : bad) {
      PeerProfile& p = peers[idx];
      p.type = PeerType::kIndependentMalicious;
      p.service_quality = rng.next_double(0.0, 0.2);
    }
  }
  return peers;
}

std::vector<std::size_t> malicious_indices(const std::vector<PeerProfile>& peers) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < peers.size(); ++i)
    if (peers[i].type != PeerType::kHonest) out.push_back(i);
  return out;
}

std::vector<double> service_qualities(const std::vector<PeerProfile>& peers) {
  std::vector<double> q(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) q[i] = peers[i].service_quality;
  return q;
}

trust::RatingFunction threat_rating(const std::vector<PeerProfile>& peers) {
  return [&peers](trust::NodeId rater, trust::NodeId ratee, double outcome) {
    const PeerProfile& r = peers[rater];
    switch (r.type) {
      case PeerType::kHonest:
        return outcome;
      case PeerType::kIndependentMalicious:
        // Dishonest inversion: good service rated very low, bad very high.
        return 1.0 - outcome;
      case PeerType::kCollusive: {
        const PeerProfile& e = peers[ratee];
        const bool in_group = e.type == PeerType::kCollusive &&
                              e.collusion_group == r.collusion_group;
        return in_group ? 1.0 : 0.0;
      }
    }
    return outcome;
  };
}

trust::PartnerSelector threat_partner_selector(const std::vector<PeerProfile>& peers,
                                               const ThreatConfig& cfg) {
  // Precompute group membership lists so in-group sampling is O(1).
  auto groups = std::make_shared<std::unordered_map<int, std::vector<trust::NodeId>>>();
  for (std::size_t i = 0; i < peers.size(); ++i)
    if (peers[i].type == PeerType::kCollusive)
      (*groups)[peers[i].collusion_group].push_back(i);

  const auto n = peers.size();
  const double bias = cfg.collusion_partner_bias;
  auto uniform = trust::uniform_partner_selector(n);
  return [&peers, groups, bias, uniform](trust::NodeId rater, Rng& rng) {
    const PeerProfile& r = peers[rater];
    if (r.type == PeerType::kCollusive && rng.next_bool(bias)) {
      const auto& mates = groups->at(r.collusion_group);
      if (mates.size() > 1) {
        trust::NodeId pick;
        do {
          pick = mates[rng.next_below(mates.size())];
        } while (pick == rater);
        return pick;
      }
    }
    return uniform(rater, rng);
  };
}

namespace {

void generate_common(trust::FeedbackLedger& ledger,
                     const std::vector<PeerProfile>& peers, const ThreatConfig& cfg,
                     const trust::FeedbackGenConfig& gen, Rng rng,
                     const trust::RatingFunction& rating) {
  if (peers.size() != gen.n || ledger.num_peers() != gen.n)
    throw std::invalid_argument("threat feedback: population/ledger size mismatch");
  const auto counts = power_law_feedback_counts(gen.n, gen.d_max, gen.d_avg, rng);
  const auto quality = service_qualities(peers);
  trust::generate_feedback(ledger, counts, quality,
                           threat_partner_selector(peers, cfg), rating, rng);
}

}  // namespace

void generate_threat_feedback(trust::FeedbackLedger& ledger,
                              const std::vector<PeerProfile>& peers,
                              const ThreatConfig& cfg,
                              const trust::FeedbackGenConfig& gen, Rng rng) {
  generate_common(ledger, peers, cfg, gen, rng, threat_rating(peers));
}

double honest_rms_error(const std::vector<PeerProfile>& peers,
                        std::span<const double> reference,
                        std::span<const double> estimate) {
  if (peers.size() != reference.size() || peers.size() != estimate.size())
    throw std::invalid_argument("honest_rms_error: size mismatch");
  std::vector<double> ref_h, est_h;
  ref_h.reserve(peers.size());
  est_h.reserve(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (peers[i].type == PeerType::kHonest) {
      ref_h.push_back(reference[i]);
      est_h.push_back(estimate[i]);
    }
  }
  // gamma = 1 leaves nobody whose reputation the metric is defined over;
  // "no honest peers were wronged" is the only defensible answer.
  if (ref_h.empty()) return 0.0;
  // Skip honest peers whose reference reputation is negligible (< 1% of
  // the uniform share): they have essentially no reputation to protect,
  // and dividing by their near-zero reference turns Eq. (8) into a ratio
  // of noise terms that can dominate the whole metric.
  const double floor = 0.01 / static_cast<double>(peers.size());
  return rms_relative_error(ref_h, est_h, floor);
}

double malicious_reputation_gain(const std::vector<PeerProfile>& peers,
                                 std::span<const double> reference,
                                 std::span<const double> estimate) {
  if (peers.size() != reference.size() || peers.size() != estimate.size())
    throw std::invalid_argument("malicious_reputation_gain: size mismatch");
  double ref_mass = 0.0, est_mass = 0.0;
  std::size_t n_bad = 0;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (peers[i].type != PeerType::kHonest) {
      ++n_bad;
      ref_mass += reference[i];
      est_mass += estimate[i];
    }
  }
  // Edge cases get well-defined answers instead of a silent 0.0 that reads
  // as "attack fully suppressed": an all-honest population gained nothing
  // (1.0), and mass conjured against a zero reference is an unbounded gain
  // (+inf) — the caller should treat that as "whitewash defeated the
  // reference", not divide-by-zero garbage.
  if (n_bad == 0) return 1.0;
  if (ref_mass <= 0.0)
    return est_mass > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
  return est_mass / ref_mass;
}

void generate_honest_counterfactual(trust::FeedbackLedger& ledger,
                                    const std::vector<PeerProfile>& peers,
                                    const ThreatConfig& cfg,
                                    const trust::FeedbackGenConfig& gen, Rng rng) {
  // Same rng value => identical partner and outcome streams; only the
  // rating rule differs, so the pair of ledgers isolates dishonest-feedback
  // effects exactly.
  generate_common(ledger, peers, cfg, gen, rng, trust::honest_rating());
}

}  // namespace gt::threat
