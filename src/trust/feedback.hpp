// Feedback ledger: the raw local trust scores r_ij of Eq. (1).
//
// After every simulated transaction the client peer rates the server peer in
// [0, 1]; ratings accumulate into r_ij. The ledger converts to the raw trust
// matrix R and (via SparseMatrix::row_normalized) to the stochastic S used by
// aggregation.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "trust/matrix.hpp"

namespace gt::trust {

/// One recorded rating event.
struct Feedback {
  NodeId rater;
  NodeId ratee;
  double value;  ///< rating in [0, 1]
};

/// Accumulating store of local trust scores r_ij = sum of ratings i -> j.
class FeedbackLedger {
 public:
  explicit FeedbackLedger(std::size_t n) : n_(n), outbound_(n) {}

  std::size_t num_peers() const noexcept { return n_; }

  /// Number of distinct (rater, ratee) pairs with at least one rating.
  std::size_t num_feedbacks() const noexcept { return count_; }

  /// Records one rating; clamps value into [0, 1]. Self-ratings ignored —
  /// s_ii must stay 0 or a peer could vote for itself.
  void record(NodeId rater, NodeId ratee, double value);

  /// Raw accumulated score r_ij (0 when never rated).
  double raw_score(NodeId rater, NodeId ratee) const;

  /// Number of distinct peers node i has rated.
  std::size_t out_degree(NodeId rater) const { return outbound_[rater].size(); }

  /// All ratings issued by a peer, sorted by ratee id. Includes pairs whose
  /// accumulated value is 0 (an explicit "rated bad" differs from "never
  /// interacted" — the QoS/QoF extension needs that distinction).
  std::vector<Feedback> ratings_of(NodeId rater) const;

  /// Raw trust matrix R.
  SparseMatrix raw_matrix() const;

  /// Normalized trust matrix S (Eq. 1).
  SparseMatrix normalized_matrix() const;

  /// Drops all feedback issued by or about `peer` (used when a peer leaves
  /// under churn and its transactions age out).
  void forget_peer(NodeId peer);

  /// Directly sets the accumulated score r_ij (no clamping of the total —
  /// accumulated values legitimately exceed 1). Used by deserialization;
  /// prefer record() for live ratings. Self-pairs rejected like record().
  void set_raw(NodeId rater, NodeId ratee, double value);

  /// Exponential aging: multiplies every accumulated score by `factor`
  /// in (0, 1]; entries decayed below `floor` are dropped entirely.
  /// Called once per reputation-update epoch, this makes fresh behaviour
  /// dominate stale history — the standard forgetting scheme reputation
  /// systems need so a peer cannot coast on (or be doomed by) old ratings.
  void decay(double factor, double floor = 1e-6);

 private:
  std::size_t n_;
  std::size_t count_ = 0;
  std::vector<std::unordered_map<NodeId, double>> outbound_;
};

}  // namespace gt::trust
