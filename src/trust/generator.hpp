// Feedback workload generation.
//
// Section 6.1: "The number of feedbacks every node issued is power law
// distributed. Initially the maximum feedback amount d_max is 200 and the
// average feedback amount d_avg is 20." This module turns that statement
// into a populated FeedbackLedger. Rating behaviour (honest vs the threat
// models of section 6.3) is injected through callables so the threat module
// can reuse the same transaction machinery.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "trust/feedback.hpp"

namespace gt::trust {

/// Workload shape parameters (paper Table 2 defaults).
struct FeedbackGenConfig {
  std::size_t n = 1000;
  std::size_t d_max = 200;
  double d_avg = 20.0;
};

/// Chooses a transaction partner for `rater`; must return a valid peer id
/// different from `rater`.
using PartnerSelector = std::function<NodeId(NodeId rater, Rng& rng)>;

/// Produces the rating `rater` issues about `ratee` for a transaction whose
/// true service quality was `outcome` in [0, 1].
using RatingFunction = std::function<double(NodeId rater, NodeId ratee, double outcome)>;

/// Uniform-random partner selection over all other peers.
PartnerSelector uniform_partner_selector(std::size_t n);

/// Truthful rating: reports the observed outcome unchanged.
RatingFunction honest_rating();

/// Core driver: for each peer i, runs counts[i] transactions; the provider
/// serves with quality drawn as Bernoulli(service_quality[provider]) and the
/// rater records rating_fn(i, provider, outcome) in the ledger.
void generate_feedback(FeedbackLedger& ledger, const std::vector<std::size_t>& counts,
                       const std::vector<double>& service_quality,
                       const PartnerSelector& partner, const RatingFunction& rating_fn,
                       Rng& rng);

/// Convenience: power-law feedback counts + uniform partners + honest
/// ratings against the given per-peer service quality.
void generate_honest_feedback(FeedbackLedger& ledger,
                              const std::vector<double>& service_quality,
                              const FeedbackGenConfig& cfg, Rng& rng);

/// Draws per-peer service qualities: honest peers ~ U[0.8, 1.0], the
/// first `n_malicious` peers ~ U[0.0, 0.2] (malicious peers provide
/// corrupted service, paper section 6.3).
std::vector<double> draw_service_qualities(std::size_t n, std::size_t n_malicious,
                                           Rng& rng);

}  // namespace gt::trust
