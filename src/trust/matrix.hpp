// Sparse trust matrix.
//
// The normalized trust matrix S = (s_ij) of Eq. (1) has one row per rater;
// with power-law feedback (mean ~20 feedbacks per peer at n = 1000) rows are
// sparse, so we store compressed rows. The aggregation iterate of Eq. (2),
// V(t+1) = S^T V(t), is provided both as an exact product (ground truth /
// verification) and consumed entry-wise by the gossip layer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gt::trust {

using NodeId = std::size_t;

/// One stored entry of a sparse row.
struct Entry {
  NodeId col;
  double value;
};

/// Row-major sparse matrix with CSR-like storage. Immutable after build;
/// construct via Builder.
class SparseMatrix {
 public:
  class Builder {
   public:
    explicit Builder(std::size_t n) : n_(n), rows_(n) {}

    /// Accumulates `value` into (row, col): duplicate coordinates add up.
    void add(NodeId row, NodeId col, double value);

    /// Finalizes into a SparseMatrix (sorts columns, merges duplicates).
    SparseMatrix build() &&;

   private:
    std::size_t n_;
    std::vector<std::vector<Entry>> rows_;
  };

  std::size_t size() const noexcept { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  std::size_t nonzeros() const noexcept { return entries_.size(); }

  std::span<const Entry> row(NodeId r) const {
    return {entries_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
  }

  double row_sum(NodeId r) const;

  /// Value at (r, c); O(log row-size).
  double at(NodeId r, NodeId c) const;

  /// Returns a copy with every non-empty row scaled to sum to 1 (Eq. 1).
  /// Empty rows (peers that issued no feedback) are left empty; the
  /// aggregation layer treats them as uniform via the dangling mass rule.
  SparseMatrix row_normalized() const;

  /// True when every non-empty row sums to 1 within tol.
  bool is_row_stochastic(double tol = 1e-9) const;

  /// Exact transpose product: out_j = sum_i v_i * S_ij, plus uniform
  /// redistribution of "dangling" mass from empty rows — the same rule the
  /// distributed algorithms use, so exact and gossiped results match.
  std::vector<double> transpose_multiply(std::span<const double> v) const;

  /// Indices of rows with no entries (peers with no outbound feedback).
  std::vector<NodeId> empty_rows() const;

  /// Dense copy (tests and tiny examples only).
  std::vector<std::vector<double>> to_dense() const;

 private:
  friend class Builder;
  SparseMatrix() = default;

  std::vector<std::size_t> row_ptr_;
  std::vector<Entry> entries_;
};

}  // namespace gt::trust
