#include "trust/generator.hpp"

#include <stdexcept>

#include "common/powerlaw.hpp"

namespace gt::trust {

PartnerSelector uniform_partner_selector(std::size_t n) {
  if (n < 2) throw std::invalid_argument("uniform_partner_selector: need n >= 2");
  return [n](NodeId rater, Rng& rng) {
    NodeId other = rng.next_below(n - 1);
    if (other >= rater) ++other;  // skip self without rejection sampling
    return other;
  };
}

RatingFunction honest_rating() {
  return [](NodeId, NodeId, double outcome) { return outcome; };
}

void generate_feedback(FeedbackLedger& ledger, const std::vector<std::size_t>& counts,
                       const std::vector<double>& service_quality,
                       const PartnerSelector& partner, const RatingFunction& rating_fn,
                       Rng& rng) {
  const std::size_t n = ledger.num_peers();
  if (counts.size() != n || service_quality.size() != n)
    throw std::invalid_argument("generate_feedback: size mismatch");
  for (NodeId i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < counts[i]; ++c) {
      const NodeId provider = partner(i, rng);
      // Transaction outcome: the provider delivers good service with
      // probability equal to its intrinsic quality.
      const double outcome = rng.next_bool(service_quality[provider]) ? 1.0 : 0.0;
      ledger.record(i, provider, rating_fn(i, provider, outcome));
    }
  }
}

void generate_honest_feedback(FeedbackLedger& ledger,
                              const std::vector<double>& service_quality,
                              const FeedbackGenConfig& cfg, Rng& rng) {
  const auto counts = power_law_feedback_counts(cfg.n, cfg.d_max, cfg.d_avg, rng);
  generate_feedback(ledger, counts, service_quality, uniform_partner_selector(cfg.n),
                    honest_rating(), rng);
}

std::vector<double> draw_service_qualities(std::size_t n, std::size_t n_malicious,
                                           Rng& rng) {
  if (n_malicious > n)
    throw std::invalid_argument("draw_service_qualities: too many malicious peers");
  std::vector<double> quality(n);
  for (std::size_t i = 0; i < n; ++i) {
    quality[i] = i < n_malicious ? rng.next_double(0.0, 0.2)
                                 : rng.next_double(0.8, 1.0);
  }
  return quality;
}

}  // namespace gt::trust
