// Persistence for reputation state.
//
// A long-running GossipTrust node checkpoints its feedback ledger and its
// last converged reputation vector so a restart (or a peer re-joining
// after churn) does not start from the uniform prior. The format is a
// line-oriented text format with a versioned magic header and explicit
// counts, so partial/corrupted files are rejected rather than
// half-loaded:
//
//   gossiptrust-ledger v1
//   n <peers> entries <count>
//   <rater> <ratee> <score>        (one per line, %.17g round-trippable)
//
//   gossiptrust-scores v1
//   n <peers>
//   <score>                        (one per line)
#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "trust/feedback.hpp"

namespace gt::trust {

/// Writes the ledger (all accumulated r_ij) to a stream.
void save_ledger(const FeedbackLedger& ledger, std::ostream& os);

/// Parses a ledger; returns std::nullopt on any format violation
/// (bad magic, wrong counts, out-of-range ids, malformed numbers).
std::optional<FeedbackLedger> load_ledger(std::istream& is);

/// Writes a score vector to a stream.
void save_scores(const std::vector<double>& scores, std::ostream& os);

/// Parses a score vector; std::nullopt on any format violation.
std::optional<std::vector<double>> load_scores(std::istream& is);

/// Convenience file wrappers; return false / nullopt when the file cannot
/// be opened or parsed.
bool save_ledger_file(const FeedbackLedger& ledger, const std::string& path);
std::optional<FeedbackLedger> load_ledger_file(const std::string& path);
bool save_scores_file(const std::vector<double>& scores, const std::string& path);
std::optional<std::vector<double>> load_scores_file(const std::string& path);

}  // namespace gt::trust
