#include "trust/feedback.hpp"

#include <algorithm>
#include <stdexcept>

namespace gt::trust {

void FeedbackLedger::record(NodeId rater, NodeId ratee, double value) {
  if (rater >= n_ || ratee >= n_)
    throw std::out_of_range("FeedbackLedger::record: peer id out of range");
  if (rater == ratee) return;
  value = std::clamp(value, 0.0, 1.0);
  auto [it, inserted] = outbound_[rater].try_emplace(ratee, 0.0);
  it->second += value;
  if (inserted) ++count_;
}

std::vector<Feedback> FeedbackLedger::ratings_of(NodeId rater) const {
  if (rater >= n_) throw std::out_of_range("FeedbackLedger::ratings_of");
  std::vector<Feedback> out;
  out.reserve(outbound_[rater].size());
  for (const auto& [ratee, value] : outbound_[rater])
    out.push_back(Feedback{rater, ratee, value});
  std::sort(out.begin(), out.end(),
            [](const Feedback& a, const Feedback& b) { return a.ratee < b.ratee; });
  return out;
}

double FeedbackLedger::raw_score(NodeId rater, NodeId ratee) const {
  const auto& row = outbound_[rater];
  const auto it = row.find(ratee);
  return it == row.end() ? 0.0 : it->second;
}

SparseMatrix FeedbackLedger::raw_matrix() const {
  SparseMatrix::Builder b(n_);
  for (NodeId i = 0; i < n_; ++i)
    for (const auto& [j, r] : outbound_[i])
      if (r > 0.0) b.add(i, j, r);
  return std::move(b).build();
}

SparseMatrix FeedbackLedger::normalized_matrix() const {
  return raw_matrix().row_normalized();
}

void FeedbackLedger::set_raw(NodeId rater, NodeId ratee, double value) {
  if (rater >= n_ || ratee >= n_)
    throw std::out_of_range("FeedbackLedger::set_raw: peer id out of range");
  if (rater == ratee) return;
  if (value < 0.0) throw std::invalid_argument("FeedbackLedger::set_raw: negative");
  auto [it, inserted] = outbound_[rater].try_emplace(ratee, value);
  if (!inserted) {
    it->second = value;
  } else {
    ++count_;
  }
}

void FeedbackLedger::decay(double factor, double floor) {
  if (factor <= 0.0 || factor > 1.0)
    throw std::invalid_argument("FeedbackLedger::decay: factor must be in (0, 1]");
  if (factor == 1.0) return;
  for (NodeId i = 0; i < n_; ++i) {
    auto& row = outbound_[i];
    for (auto it = row.begin(); it != row.end();) {
      it->second *= factor;
      if (it->second < floor) {
        it = row.erase(it);
        --count_;
      } else {
        ++it;
      }
    }
  }
}

void FeedbackLedger::forget_peer(NodeId peer) {
  if (peer >= n_) throw std::out_of_range("FeedbackLedger::forget_peer");
  count_ -= outbound_[peer].size();
  outbound_[peer].clear();
  for (NodeId i = 0; i < n_; ++i) {
    if (i == peer) continue;
    count_ -= outbound_[i].erase(peer);
  }
}

}  // namespace gt::trust
