#include "trust/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gt::trust {

void SparseMatrix::Builder::add(NodeId row, NodeId col, double value) {
  if (row >= n_ || col >= n_)
    throw std::out_of_range("SparseMatrix::Builder::add: index out of range");
  rows_[row].push_back(Entry{col, value});
}

SparseMatrix SparseMatrix::Builder::build() && {
  SparseMatrix m;
  m.row_ptr_.resize(n_ + 1, 0);
  std::size_t total = 0;
  for (auto& row : rows_) {
    std::sort(row.begin(), row.end(),
              [](const Entry& a, const Entry& b) { return a.col < b.col; });
    // Merge duplicate columns by accumulation.
    std::size_t w = 0;
    for (std::size_t r = 0; r < row.size(); ++r) {
      if (w > 0 && row[w - 1].col == row[r].col) {
        row[w - 1].value += row[r].value;
      } else {
        row[w++] = row[r];
      }
    }
    row.resize(w);
    total += w;
  }
  m.entries_.reserve(total);
  for (std::size_t r = 0; r < n_; ++r) {
    m.row_ptr_[r] = m.entries_.size();
    m.entries_.insert(m.entries_.end(), rows_[r].begin(), rows_[r].end());
  }
  m.row_ptr_[n_] = m.entries_.size();
  return m;
}

double SparseMatrix::row_sum(NodeId r) const {
  double s = 0.0;
  for (const auto& e : row(r)) s += e.value;
  return s;
}

double SparseMatrix::at(NodeId r, NodeId c) const {
  const auto entries = row(r);
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), c,
      [](const Entry& e, NodeId col) { return e.col < col; });
  if (it != entries.end() && it->col == c) return it->value;
  return 0.0;
}

SparseMatrix SparseMatrix::row_normalized() const {
  const std::size_t n = size();
  Builder b(n);
  for (NodeId r = 0; r < n; ++r) {
    const double s = row_sum(r);
    if (s <= 0.0) continue;
    for (const auto& e : row(r)) b.add(r, e.col, e.value / s);
  }
  return std::move(b).build();
}

bool SparseMatrix::is_row_stochastic(double tol) const {
  for (NodeId r = 0; r < size(); ++r) {
    if (row(r).empty()) continue;
    if (std::abs(row_sum(r) - 1.0) > tol) return false;
  }
  return true;
}

std::vector<double> SparseMatrix::transpose_multiply(std::span<const double> v) const {
  const std::size_t n = size();
  if (v.size() != n)
    throw std::invalid_argument("transpose_multiply: vector size mismatch");
  std::vector<double> out(n, 0.0);
  double dangling_mass = 0.0;
  for (NodeId r = 0; r < n; ++r) {
    const auto entries = row(r);
    if (entries.empty()) {
      dangling_mass += v[r];
      continue;
    }
    const double vr = v[r];
    if (vr == 0.0) continue;
    for (const auto& e : entries) out[e.col] += vr * e.value;
  }
  if (dangling_mass > 0.0 && n > 0) {
    const double share = dangling_mass / static_cast<double>(n);
    for (auto& x : out) x += share;
  }
  return out;
}

std::vector<NodeId> SparseMatrix::empty_rows() const {
  std::vector<NodeId> out;
  for (NodeId r = 0; r < size(); ++r)
    if (row(r).empty()) out.push_back(r);
  return out;
}

std::vector<std::vector<double>> SparseMatrix::to_dense() const {
  const std::size_t n = size();
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  for (NodeId r = 0; r < n; ++r)
    for (const auto& e : row(r)) dense[r][e.col] = e.value;
  return dense;
}

}  // namespace gt::trust
