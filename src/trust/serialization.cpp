#include "trust/serialization.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

namespace gt::trust {

namespace {
constexpr const char* kLedgerMagic = "gossiptrust-ledger";
constexpr const char* kScoresMagic = "gossiptrust-scores";
constexpr const char* kVersion = "v1";
}  // namespace

void save_ledger(const FeedbackLedger& ledger, std::ostream& os) {
  const std::size_t n = ledger.num_peers();
  os << kLedgerMagic << ' ' << kVersion << '\n';
  os << "n " << n << " entries " << ledger.num_feedbacks() << '\n';
  os << std::setprecision(17);
  for (NodeId i = 0; i < n; ++i) {
    for (const auto& fb : ledger.ratings_of(i))
      os << fb.rater << ' ' << fb.ratee << ' ' << fb.value << '\n';
  }
}

std::optional<FeedbackLedger> load_ledger(std::istream& is) {
  std::string magic, version, key_n, key_entries;
  std::size_t n = 0, entries = 0;
  if (!(is >> magic >> version) || magic != kLedgerMagic || version != kVersion)
    return std::nullopt;
  if (!(is >> key_n >> n >> key_entries >> entries) || key_n != "n" ||
      key_entries != "entries")
    return std::nullopt;

  FeedbackLedger ledger(n);
  for (std::size_t k = 0; k < entries; ++k) {
    std::size_t rater = 0, ratee = 0;
    double value = 0.0;
    if (!(is >> rater >> ratee >> value)) return std::nullopt;
    if (rater >= n || ratee >= n || rater == ratee || value < 0.0 ||
        !std::isfinite(value))
      return std::nullopt;
    ledger.set_raw(rater, ratee, value);
  }
  if (ledger.num_feedbacks() != entries) return std::nullopt;  // duplicates
  return ledger;
}

void save_scores(const std::vector<double>& scores, std::ostream& os) {
  os << kScoresMagic << ' ' << kVersion << '\n';
  os << "n " << scores.size() << '\n';
  os << std::setprecision(17);
  for (const double s : scores) os << s << '\n';
}

std::optional<std::vector<double>> load_scores(std::istream& is) {
  std::string magic, version, key_n;
  std::size_t n = 0;
  if (!(is >> magic >> version) || magic != kScoresMagic || version != kVersion)
    return std::nullopt;
  if (!(is >> key_n >> n) || key_n != "n") return std::nullopt;
  std::vector<double> scores(n);
  for (auto& s : scores) {
    if (!(is >> s) || !std::isfinite(s)) return std::nullopt;
  }
  return scores;
}

bool save_ledger_file(const FeedbackLedger& ledger, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  save_ledger(ledger, os);
  return static_cast<bool>(os);
}

std::optional<FeedbackLedger> load_ledger_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return load_ledger(is);
}

bool save_scores_file(const std::vector<double>& scores, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  save_scores(scores, os);
  return static_cast<bool>(os);
}

std::optional<std::vector<double>> load_scores_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return load_scores(is);
}

}  // namespace gt::trust
