#include "dht/chord.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/rng.hpp"

namespace gt::dht {

Key hash_key(std::uint64_t value) { return mix64(value ^ 0x517cc1b727220a95ULL); }

ChordRing::ChordRing(std::size_t n, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("ChordRing: n must be positive");
  ring_position_.resize(n);
  Rng rng(seed);
  // Draw distinct positions (collisions on a 64-bit ring are ~impossible,
  // but regenerate defensively anyway).
  for (NodeId v = 0; v < n; ++v) ring_position_[v] = rng.next_u64();
  std::sort(ring_position_.begin(), ring_position_.end());
  const bool has_dup =
      std::adjacent_find(ring_position_.begin(), ring_position_.end()) !=
      ring_position_.end();
  if (has_dup) {
    for (NodeId v = 0; v < n; ++v)
      ring_position_[v] = mix64(seed ^ (0x9e3779b97f4a7c15ULL * (v + 1)));
  } else {
    // Shuffle so NodeId ordering is independent of ring ordering.
    rng.shuffle(ring_position_);
  }

  sorted_order_.resize(n);
  for (NodeId v = 0; v < n; ++v) sorted_order_[v] = v;
  std::sort(sorted_order_.begin(), sorted_order_.end(), [&](NodeId a, NodeId b) {
    return ring_position_[a] < ring_position_[b];
  });
  sorted_positions_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    sorted_positions_[i] = ring_position_[sorted_order_[i]];

  // Finger tables: finger i of node v owns position(v) + 2^i.
  fingers_.assign(n, std::vector<NodeId>(kFingerBits));
  for (NodeId v = 0; v < n; ++v) {
    const Key base = ring_position_[v];
    for (std::size_t i = 0; i < kFingerBits; ++i) {
      const Key target = base + (i < 64 ? (Key{1} << i) : 0);  // wraps mod 2^64
      fingers_[v][i] = successor(target);
    }
  }
}

NodeId ChordRing::successor(Key key) const {
  const auto it =
      std::lower_bound(sorted_positions_.begin(), sorted_positions_.end(), key);
  const std::size_t idx =
      it == sorted_positions_.end() ? 0 : static_cast<std::size_t>(
                                              it - sorted_positions_.begin());
  return sorted_order_[idx];
}

bool ChordRing::in_interval(Key x, Key a, Key b) noexcept {
  // Clockwise half-open interval (a, b] on the ring.
  if (a < b) return x > a && x <= b;
  if (a > b) return x > a || x <= b;
  return true;  // a == b: the interval is the whole ring
}

NodeId ChordRing::finger(NodeId node, std::size_t i) const {
  assert(node < fingers_.size() && i < kFingerBits);
  return fingers_[node][i];
}

LookupResult ChordRing::lookup(NodeId start, Key key) const {
  const NodeId owner = successor(key);
  NodeId current = start;
  std::size_t hops = 0;
  const std::size_t hop_cap = 2 * kFingerBits + num_nodes();

  while (current != owner && hops < hop_cap) {
    // Greedy Chord routing: take the farthest finger that does not
    // overshoot the key, i.e. whose position lies in (current, key].
    const Key cur_pos = ring_position_[current];
    NodeId next = current;
    for (std::size_t i = kFingerBits; i-- > 0;) {
      const NodeId cand = fingers_[current][i];
      if (cand == current) continue;
      if (in_interval(ring_position_[cand], cur_pos, key)) {
        next = cand;
        break;
      }
    }
    if (next == current) {
      // No finger strictly progresses: the immediate successor owns the key.
      next = fingers_[current][0];
    }
    current = next;
    ++hops;
  }
  return LookupResult{current, hops};
}

}  // namespace gt::dht
