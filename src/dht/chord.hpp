// Chord-like DHT substrate.
//
// The paper's related work (EigenTrust, PowerTrust, PeerTrust) relies on a
// DHT for reputation storage/routing, and section 7 argues GossipTrust
// "can perform even better in a structured P2P system". This module gives
// both uses a substrate: a consistent-hash ring with finger tables and
// iterative greedy lookup, with hop counting so baselines can report
// routing cost. It is a simulation-grade Chord: no stabilization protocol
// churn races, but correct successor/finger geometry and O(log n) lookups.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"

namespace gt::dht {

using NodeId = std::size_t;   ///< dense simulation id (0..n-1)
using Key = std::uint64_t;    ///< position on the 2^64 identifier ring

/// Hashes an application-level integer id onto the ring.
Key hash_key(std::uint64_t value);

/// One lookup's outcome.
struct LookupResult {
  NodeId owner;       ///< node responsible for the key (successor)
  std::size_t hops;   ///< routing hops taken from the start node
};

/// Consistent-hash ring with per-node finger tables.
class ChordRing {
 public:
  /// Places n nodes on the ring at hashed positions (deterministic given
  /// the seed) and builds finger tables.
  ChordRing(std::size_t n, std::uint64_t seed);

  std::size_t num_nodes() const noexcept { return ring_position_.size(); }

  /// Ring position of a node.
  Key position(NodeId node) const { return ring_position_[node]; }

  /// Node responsible for `key`: the first node clockwise from the key
  /// (successor semantics). O(log n) binary search — used as ground truth.
  NodeId successor(Key key) const;

  /// Iterative greedy finger routing from `start` toward the owner of
  /// `key`, counting hops. Matches successor() on the owner.
  LookupResult lookup(NodeId start, Key key) const;

  /// The i-th finger of a node (owner of position + 2^i).
  NodeId finger(NodeId node, std::size_t i) const;

  static constexpr std::size_t kFingerBits = 64;

 private:
  std::vector<Key> ring_position_;            // by NodeId
  std::vector<std::size_t> sorted_order_;     // node ids sorted by position
  std::vector<Key> sorted_positions_;         // positions in sorted order
  std::vector<std::vector<NodeId>> fingers_;  // [node][bit]

  /// True when `x` lies in the half-open clockwise interval (a, b].
  static bool in_interval(Key x, Key a, Key b) noexcept;
};

}  // namespace gt::dht
