// Bloom filters for reputation storage.
//
// The paper lists "efficient reputation storage with Bloom filters" among
// GossipTrust's innovations: instead of n explicit <node_id, score> pairs,
// a node keeps a handful of Bloom filters, one per score bucket, and
// membership tests recover a peer's (quantized) score. This header
// provides the standard and counting filters; score_store.hpp builds the
// bucketed reputation store on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gt::bloom {

/// Classic Bloom filter over 64-bit keys with double hashing
/// (h_i = h1 + i * h2), the Kirsch–Mitzenmacher construction.
class BloomFilter {
 public:
  /// `bits` is rounded up to a multiple of 64. Throws std::invalid_argument
  /// when `hashes` is 0 — a zero-probe filter would contain everything.
  BloomFilter(std::size_t bits, std::size_t hashes);

  /// Sizes a filter for `expected_items` at `target_fpr`, choosing optimal
  /// m = -n ln p / (ln 2)^2 and k = (m/n) ln 2.
  static BloomFilter with_capacity(std::size_t expected_items, double target_fpr);

  void insert(std::uint64_t key);
  bool contains(std::uint64_t key) const;
  void clear();

  std::size_t bit_count() const noexcept { return bits_; }
  std::size_t hash_count() const noexcept { return hashes_; }
  std::size_t storage_bytes() const noexcept { return words_.size() * 8; }

  /// Number of set bits.
  std::size_t popcount() const noexcept;

  /// Predicted false-positive rate from the current fill ratio:
  /// (set_bits / m)^k.
  double estimated_fpr() const noexcept;

  /// Bitwise union with a compatible filter (same geometry).
  void merge(const BloomFilter& other);

 private:
  std::size_t bits_;
  std::size_t hashes_;
  std::vector<std::uint64_t> words_;

  std::pair<std::uint64_t, std::uint64_t> base_hashes(std::uint64_t key) const;
};

/// Counting Bloom filter with 8-bit saturating counters; supports remove,
/// which plain filters cannot (needed when reputation scores move between
/// buckets across aggregation rounds).
class CountingBloomFilter {
 public:
  CountingBloomFilter(std::size_t counters, std::size_t hashes);

  void insert(std::uint64_t key);
  /// Decrements the key's counters (no-op on zero counters to stay safe
  /// against removing a never-inserted key).
  void remove(std::uint64_t key);
  bool contains(std::uint64_t key) const;
  void clear();

  std::size_t counter_count() const noexcept { return counters_.size(); }
  std::size_t storage_bytes() const noexcept { return counters_.size(); }

 private:
  std::size_t hashes_;
  std::vector<std::uint8_t> counters_;

  std::pair<std::uint64_t, std::uint64_t> base_hashes(std::uint64_t key) const;
};

}  // namespace gt::bloom
