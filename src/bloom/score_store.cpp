#include "bloom/score_store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gt::bloom {

BloomScoreStore::BloomScoreStore(std::span<const double> scores,
                                 const ScoreStoreConfig& config) {
  if (scores.empty()) throw std::invalid_argument("BloomScoreStore: empty scores");
  const std::size_t levels = std::max<std::size_t>(config.num_buckets, 1);
  const std::size_t n = scores.size();

  // Log-spaced bucket edges between the smallest positive and the largest
  // score: converged reputation vectors are heavy-tailed, so log spacing
  // keeps relative quantization error roughly constant across magnitudes.
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const double s : scores) {
    if (s > 0.0) lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  if (!std::isfinite(lo) || hi <= 0.0) {
    // All-zero vector: the synthetic range only shapes (unused) bucket
    // geometry — every peer lands in the exact-zero filter below and reads
    // back 0, not a synthetic representative.
    lo = 1e-12;
    hi = 1.0;
  }
  lo = std::max(lo, hi * 1e-9);  // cap dynamic range to keep buckets useful

  boundaries_.resize(levels > 1 ? levels - 1 : 0);
  representatives_.resize(levels);
  const double ratio = hi / lo;
  auto edge = [&](std::size_t k) {
    return lo * std::pow(ratio, static_cast<double>(k) / static_cast<double>(levels));
  };
  for (std::size_t k = 0; k + 1 < levels; ++k) boundaries_[k] = edge(k + 1);
  for (std::size_t k = 0; k < levels; ++k)
    representatives_[k] = std::sqrt(edge(k) * edge(k + 1));

  // Count populations: exact zeros go to a dedicated zero filter (a score
  // of 0 means "fully distrusted" and must never read back as a nonzero
  // bucket representative), positive scores quantize into the log buckets.
  std::vector<std::size_t> population(levels, 0);
  std::size_t zero_population = 0;
  for (const double s : scores) {
    if (s > 0.0)
      ++population[bucket_of(s)];
    else
      ++zero_population;
  }

  const double total_bits =
      std::max(64.0 * static_cast<double>(levels),
               config.bits_per_peer * static_cast<double>(n));
  const auto size_filter = [&](std::size_t items) {
    const double share =
        n ? static_cast<double>(items) / static_cast<double>(n) : 0.0;
    const auto bits = static_cast<std::size_t>(
        std::max(64.0, std::floor(total_bits * share)));
    std::size_t hashes = config.hashes;
    if (hashes == 0) {
      // Optimal probe count is bits/items * ln2, but a near-empty bucket
      // sitting on the 64-bit floor derives an absurd count (64 * ln2 ~ 44
      // probes for one item). Past k = 8 the false-positive gain is
      // negligible (2^-8 per fully random probe) while every insert and
      // lookup pays k memory touches, so clamp there.
      const double items_f = std::max<double>(1.0, static_cast<double>(items));
      hashes = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::llround(static_cast<double>(bits) / items_f * std::log(2.0))));
      hashes = std::min<std::size_t>(hashes, 8);
    }
    return BloomFilter(bits, hashes);
  };

  filters_.reserve(levels);
  for (std::size_t k = 0; k < levels; ++k)
    filters_.push_back(size_filter(population[k]));
  if (zero_population > 0) zero_filter_.emplace(size_filter(zero_population));

  for (std::size_t id = 0; id < n; ++id) {
    const double s = scores[id];
    if (s > 0.0)
      filters_[bucket_of(s)].insert(static_cast<std::uint64_t>(id));
    else
      zero_filter_->insert(static_cast<std::uint64_t>(id));
  }
}

std::size_t BloomScoreStore::bucket_of(double score) const {
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), score);
  return static_cast<std::size_t>(it - boundaries_.begin());
}

double BloomScoreStore::lookup(std::uint64_t peer) const {
  // Probe lowest-first: a false positive can then only *under*-report a
  // score, so Bloom noise can never inflate a malicious peer's reputation.
  // The zero filter is the lowest rung — an exact-zero score reads back as
  // exactly 0, never as the bottom bucket's geometric-mean representative.
  if (zero_filter_ && zero_filter_->contains(peer)) return 0.0;
  for (std::size_t k = 0; k < filters_.size(); ++k) {
    if (filters_[k].contains(peer)) return representatives_[k];
  }
  // Missing from every filter: report the most conservative value.
  return 0.0;
}

std::vector<double> BloomScoreStore::approximate_scores(std::size_t n) const {
  std::vector<double> out(n);
  for (std::size_t id = 0; id < n; ++id)
    out[id] = lookup(static_cast<std::uint64_t>(id));
  return out;
}

std::size_t BloomScoreStore::storage_bytes() const {
  std::size_t bytes = zero_filter_ ? zero_filter_->storage_bytes() : 0;
  for (const auto& f : filters_) bytes += f.storage_bytes();
  return bytes;
}

}  // namespace gt::bloom
