#include "bloom/wire_codec.hpp"

#include <cmath>

namespace gt::bloom {

namespace {

constexpr int kExponentBias = 49;   // stored field = binary exponent + 49
constexpr int kMantissaBits = 10;   // implicit leading 1 + 10 bits
constexpr std::uint16_t kMantissaMax = (1u << kMantissaBits) - 1;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool get_varint(std::span<const std::uint8_t> bytes, std::size_t& pos,
                std::uint64_t& v) {
  v = 0;
  int shift = 0;
  while (pos < bytes.size() && shift < 64) {
    const std::uint8_t b = bytes[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return true;
    shift += 7;
  }
  return false;
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t size = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++size;
  }
  return size;
}

}  // namespace

std::uint16_t quantize16(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return 0;
  int k = 0;
  const double f = std::frexp(value, &k);  // value = f * 2^k, f in [0.5, 1)
  // Normalize to (1 + m/2^10) * 2^(k-1).
  int exponent = k - 1;
  auto mantissa = static_cast<int>(std::lround((2.0 * f - 1.0) *
                                               static_cast<double>(1 << kMantissaBits)));
  if (mantissa > static_cast<int>(kMantissaMax)) {
    mantissa = 0;
    ++exponent;
  }
  int field = exponent + kExponentBias;
  if (field < 1) return 0;  // underflow: below ~1.7e-15
  if (field > 63) {         // overflow: saturate at the top cell (~1.6e4)
    field = 63;
    mantissa = kMantissaMax;
  }
  return static_cast<std::uint16_t>((field << kMantissaBits) |
                                    static_cast<std::uint16_t>(mantissa));
}

double dequantize16(std::uint16_t q) {
  if (q == 0) return 0.0;
  const int field = q >> kMantissaBits;
  const int mantissa = q & kMantissaMax;
  const double frac =
      1.0 + static_cast<double>(mantissa) / static_cast<double>(1 << kMantissaBits);
  return std::ldexp(frac, field - kExponentBias);
}

std::vector<std::uint8_t> encode_wire(std::span<const WireTriplet> triplets) {
  std::vector<std::uint8_t> out;
  out.reserve(2 + triplets.size() * 7);
  put_varint(out, triplets.size());
  for (const auto& t : triplets) {
    put_varint(out, t.id);
    const std::uint16_t qx = quantize16(t.x);
    const std::uint16_t qw = quantize16(t.w);
    out.push_back(static_cast<std::uint8_t>(qx & 0xff));
    out.push_back(static_cast<std::uint8_t>(qx >> 8));
    out.push_back(static_cast<std::uint8_t>(qw & 0xff));
    out.push_back(static_cast<std::uint8_t>(qw >> 8));
  }
  return out;
}

std::optional<std::vector<WireTriplet>> decode_wire(
    std::span<const std::uint8_t> bytes) {
  std::size_t pos = 0;
  std::uint64_t count = 0;
  if (!get_varint(bytes, pos, count)) return std::nullopt;
  if (count > bytes.size()) return std::nullopt;  // cheap sanity bound
  std::vector<WireTriplet> out;
  out.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    WireTriplet t;
    if (!get_varint(bytes, pos, t.id)) return std::nullopt;
    if (pos + 4 > bytes.size()) return std::nullopt;
    const auto qx = static_cast<std::uint16_t>(bytes[pos] | (bytes[pos + 1] << 8));
    const auto qw = static_cast<std::uint16_t>(bytes[pos + 2] | (bytes[pos + 3] << 8));
    pos += 4;
    t.x = dequantize16(qx);
    t.w = dequantize16(qw);
    out.push_back(t);
  }
  if (pos != bytes.size()) return std::nullopt;  // trailing garbage
  return out;
}

std::size_t wire_size(std::span<const WireTriplet> triplets) {
  std::size_t size = varint_size(triplets.size());
  for (const auto& t : triplets) size += varint_size(t.id) + 4;
  return size;
}

}  // namespace gt::bloom
