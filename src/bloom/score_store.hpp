// Bloom-filter reputation storage (paper section 7: "efficient reputation
// storage with Bloom filters").
//
// A node's global reputation vector is n <node_id, score> pairs (~12-16
// bytes each). The Bloom store quantizes scores into L buckets (log-spaced,
// because converged reputation vectors are power-law distributed) and keeps
// one Bloom filter per bucket containing the ids of the peers in it.
// Looking a peer up probes the L filters; the recovered score is the
// bucket representative. Storage drops from O(n log n) bits to
// (bits_per_peer * n) with a tunable accuracy tradeoff, which the
// ABL-BLOOM bench quantifies (bits/peer vs false positives vs ranking
// fidelity).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bloom/bloom_filter.hpp"

namespace gt::bloom {

struct ScoreStoreConfig {
  std::size_t num_buckets = 8;     ///< L score levels
  double bits_per_peer = 8.0;      ///< total filter bits budget / n
  std::size_t hashes = 0;          ///< 0 = derive optimal from the budget
};

/// Immutable bucketed store built from a full score vector.
class BloomScoreStore {
 public:
  BloomScoreStore(std::span<const double> scores, const ScoreStoreConfig& config);

  /// Approximate score of a peer: the representative (geometric mean of the
  /// bucket bounds) of the lowest bucket whose filter reports membership.
  /// Peers whose stored score was exactly 0 read back exactly 0 (dedicated
  /// zero filter, probed first); peers missing from every filter also
  /// return 0, the most conservative answer.
  double lookup(std::uint64_t peer) const;

  /// Recovers the whole approximate vector for peers 0..n-1.
  std::vector<double> approximate_scores(std::size_t n) const;

  std::size_t num_buckets() const noexcept { return filters_.size(); }
  std::size_t storage_bytes() const;

  /// Bucket index a score quantizes to.
  std::size_t bucket_of(double score) const;

  /// Representative score of a bucket.
  double representative(std::size_t bucket) const { return representatives_[bucket]; }

  /// The bucket's filter — geometry introspection for tests and ablations.
  const BloomFilter& filter(std::size_t bucket) const { return filters_[bucket]; }

 private:
  std::vector<BloomFilter> filters_;
  /// Ids whose score is exactly 0 — kept out of the log buckets so full
  /// distrust can never inflate into a nonzero representative.
  std::optional<BloomFilter> zero_filter_;
  std::vector<double> boundaries_;       // ascending upper bounds, size L-1
  std::vector<double> representatives_;  // size L
};

}  // namespace gt::bloom
