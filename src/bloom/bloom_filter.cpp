#include "bloom/bloom_filter.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace gt::bloom {

namespace {
constexpr std::uint64_t kSeed1 = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kSeed2 = 0xc2b2ae3d27d4eb4fULL;
}  // namespace

BloomFilter::BloomFilter(std::size_t bits, std::size_t hashes)
    : bits_((std::max<std::size_t>(bits, 64) + 63) / 64 * 64),
      hashes_(hashes),
      words_(bits_ / 64, 0) {
  if (hashes == 0)
    throw std::invalid_argument(
        "BloomFilter: hashes must be >= 1 — a zero-probe filter reports "
        "every key as present");
}

BloomFilter BloomFilter::with_capacity(std::size_t expected_items, double target_fpr) {
  if (expected_items == 0) expected_items = 1;
  target_fpr = std::clamp(target_fpr, 1e-9, 0.5);
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(expected_items) * std::log(target_fpr) /
                   (ln2 * ln2);
  const double k = m / static_cast<double>(expected_items) * ln2;
  return BloomFilter(static_cast<std::size_t>(std::ceil(m)),
                     std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(k))));
}

std::pair<std::uint64_t, std::uint64_t> BloomFilter::base_hashes(
    std::uint64_t key) const {
  const std::uint64_t h1 = mix64(key ^ kSeed1);
  std::uint64_t h2 = mix64(key ^ kSeed2);
  h2 |= 1;  // force odd so the double-hash stride cycles all positions
  return {h1, h2};
}

void BloomFilter::insert(std::uint64_t key) {
  const auto [h1, h2] = base_hashes(key);
  for (std::size_t i = 0; i < hashes_; ++i) {
    const std::uint64_t pos = (h1 + i * h2) % bits_;
    words_[pos / 64] |= (std::uint64_t{1} << (pos % 64));
  }
}

bool BloomFilter::contains(std::uint64_t key) const {
  const auto [h1, h2] = base_hashes(key);
  for (std::size_t i = 0; i < hashes_; ++i) {
    const std::uint64_t pos = (h1 + i * h2) % bits_;
    if (!(words_[pos / 64] & (std::uint64_t{1} << (pos % 64)))) return false;
  }
  return true;
}

void BloomFilter::clear() { std::fill(words_.begin(), words_.end(), 0); }

std::size_t BloomFilter::popcount() const noexcept {
  std::size_t c = 0;
  for (const auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

double BloomFilter::estimated_fpr() const noexcept {
  const double fill = static_cast<double>(popcount()) / static_cast<double>(bits_);
  return std::pow(fill, static_cast<double>(hashes_));
}

void BloomFilter::merge(const BloomFilter& other) {
  if (other.bits_ != bits_ || other.hashes_ != hashes_)
    throw std::invalid_argument("BloomFilter::merge: incompatible geometry");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

CountingBloomFilter::CountingBloomFilter(std::size_t counters, std::size_t hashes)
    : hashes_(std::max<std::size_t>(hashes, 1)),
      counters_(std::max<std::size_t>(counters, 1), 0) {}

std::pair<std::uint64_t, std::uint64_t> CountingBloomFilter::base_hashes(
    std::uint64_t key) const {
  const std::uint64_t h1 = mix64(key ^ kSeed1);
  std::uint64_t h2 = mix64(key ^ kSeed2);
  h2 |= 1;
  return {h1, h2};
}

void CountingBloomFilter::insert(std::uint64_t key) {
  const auto [h1, h2] = base_hashes(key);
  for (std::size_t i = 0; i < hashes_; ++i) {
    auto& c = counters_[(h1 + i * h2) % counters_.size()];
    if (c < 255) ++c;  // saturate rather than overflow
  }
}

void CountingBloomFilter::remove(std::uint64_t key) {
  const auto [h1, h2] = base_hashes(key);
  // First verify membership so removing an absent key cannot corrupt
  // other keys' counters.
  if (!contains(key)) return;
  for (std::size_t i = 0; i < hashes_; ++i) {
    auto& c = counters_[(h1 + i * h2) % counters_.size()];
    if (c > 0 && c < 255) --c;  // saturated counters are stuck (standard CBF caveat)
  }
}

bool CountingBloomFilter::contains(std::uint64_t key) const {
  const auto [h1, h2] = base_hashes(key);
  for (std::size_t i = 0; i < hashes_; ++i) {
    if (counters_[(h1 + i * h2) % counters_.size()] == 0) return false;
  }
  return true;
}

void CountingBloomFilter::clear() {
  std::fill(counters_.begin(), counters_.end(), 0);
}

}  // namespace gt::bloom
