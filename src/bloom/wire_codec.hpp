// Compact wire encoding for gossip reputation vectors.
//
// A raw gossip message is up to n <x, id, w> triplets at 24 bytes each
// (section 5's internal representation). Reputation shares span many
// orders of magnitude but only need a few significant bits — gossip noise
// dwarfs fine mantissa detail — so the wire codec packs each triplet as
//
//   id     : varint (small ids dominate in practice)
//   x, w   : 16-bit minifloat (1 sign-free magnitude: 5-bit exponent
//            offset + 11-bit mantissa) — relative error <= ~0.05%
//
// for ~6-7 bytes/triplet instead of 24. Encoding is lossy but calibrated:
// x and w are quantized with the SAME scheme, so their ratio (the only
// thing push-sum consumes) keeps its relative accuracy. This complements
// the Bloom score store (storage at rest) on the transmission path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace gt::bloom {

/// One decoded share, mirroring gossip::Triplet but defined here to keep
/// the codec independent of the gossip layer.
struct WireTriplet {
  double x = 0.0;
  std::uint64_t id = 0;
  double w = 0.0;
};

/// Quantizes a non-negative double to the 16-bit wire minifloat.
/// Values below ~1e-15 encode to 0; values above ~1e4 saturate.
std::uint16_t quantize16(double value);

/// Inverse of quantize16 (midpoint of the quantization cell).
double dequantize16(std::uint16_t q);

/// Encodes triplets into the packed wire format.
std::vector<std::uint8_t> encode_wire(std::span<const WireTriplet> triplets);

/// Decodes a packed message; std::nullopt on malformed input.
std::optional<std::vector<WireTriplet>> decode_wire(
    std::span<const std::uint8_t> bytes);

/// Wire size of one message without materializing it.
std::size_t wire_size(std::span<const WireTriplet> triplets);

}  // namespace gt::bloom
