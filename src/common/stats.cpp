#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace gt {

void RunningStats::add_to_sum(double x) noexcept {
  // Neumaier variant of Kahan summation: also correct when the addend is
  // larger in magnitude than the running sum.
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    comp_ += (sum_ - t) + x;
  } else {
    comp_ += (x - t) + sum_;
  }
  sum_ = t;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  add_to_sum(x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
  add_to_sum(other.sum_);
  add_to_sum(other.comp_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double rms_relative_error(std::span<const double> reference,
                          std::span<const double> estimate, double floor) {
  if (reference.size() != estimate.size())
    throw std::invalid_argument("rms_relative_error: size mismatch");
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (std::abs(reference[i]) < floor) continue;
    const double rel = (reference[i] - estimate[i]) / reference[i];
    acc += rel * rel;
    ++counted;
  }
  return counted ? std::sqrt(acc / static_cast<double>(counted)) : 0.0;
}

double l1_distance(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("l1_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

double l2_distance(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("l2_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double linf_distance(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("linf_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc = std::max(acc, std::abs(a[i] - b[i]));
  return acc;
}

double mean_relative_error(std::span<const double> reference,
                           std::span<const double> estimate, double floor) {
  if (reference.size() != estimate.size())
    throw std::invalid_argument("mean_relative_error: size mismatch");
  if (reference.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    // Components negligible on BOTH sides count as converged-to-zero:
    // otherwise a score decaying geometrically toward 0 contributes a
    // near-constant |delta|/floor term and stalls convergence detection
    // long after the component stopped mattering.
    if (std::abs(reference[i]) < floor && std::abs(estimate[i]) < floor) continue;
    const double denom = std::max(std::abs(reference[i]), floor);
    acc += std::abs(reference[i] - estimate[i]) / denom;
  }
  return acc / static_cast<double>(reference.size());
}

void normalize_l1(std::vector<double>& v) {
  const double s = std::accumulate(v.begin(), v.end(), 0.0);
  if (s <= 0.0) return;
  for (auto& x : v) x /= s;
}

double sum(std::span<const double> v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

std::vector<std::size_t> top_k_indices(std::span<const double> v, std::size_t k) {
  std::vector<std::size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  k = std::min(k, idx.size());
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return v[a] > v[b]; });
  idx.resize(k);
  return idx;
}

double kendall_tau(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("kendall_tau: size mismatch");
  const std::size_t n = a.size();
  if (n < 2) return 1.0;
  long long concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double prod = da * db;
      if (prod > 0)
        ++concordant;
      else if (prod < 0)
        ++discordant;
      // ties contribute to neither (tau-a convention on the denominator)
    }
  }
  const double pairs = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  return static_cast<double>(concordant - discordant) / pairs;
}

double percentile(std::vector<double> data, double pct) {
  if (data.empty()) throw std::invalid_argument("percentile: empty data");
  pct = std::clamp(pct, 0.0, 100.0);
  std::sort(data.begin(), data.end());
  const double pos = pct / 100.0 * static_cast<double>(data.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, data.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data[lo] + frac * (data[hi] - data[lo]);
}

std::string format_sci(double v, int precision) {
  char buf[64];
  const double av = std::abs(v);
  if (v != 0.0 && (av < 1e-2 || av >= 1e5)) {
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  }
  return buf;
}

std::string format_exp(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

}  // namespace gt
