#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gt {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t mix64(std::uint64_t x) noexcept {
  SplitMix64 sm(x);
  return sm.next();
}

std::uint64_t mix64(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Two SplitMix64 rounds with the stream id folded in between; consecutive
  // stream ids land in unrelated parts of the sequence.
  SplitMix64 outer(seed);
  SplitMix64 inner(outer.next() ^ (stream + 0x9e3779b97f4a7c15ULL));
  return inner.next();
}

void Rng::reseed(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  has_cached_gaussian_ = false;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) {
    // A zero bound is always a caller bug (e.g. sampling a target from an
    // empty candidate set); returning anything would silently index out of
    // bounds downstream, so fail loudly in every build type, not just when
    // asserts are compiled in.
    std::fprintf(stderr, "fatal: Rng::next_below(0) — bound must be positive\n");
    std::abort();
  }
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_between(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::next_exponential(double lambda) noexcept {
  assert(lambda > 0.0);
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm keeps memory proportional to k for large n.
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 2 >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    shuffle(all);
    all.resize(k);
    return all;
  }
  std::vector<bool> chosen(n, false);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = static_cast<std::size_t>(next_below(j + 1));
    if (chosen[t]) t = j;
    chosen[t] = true;
    out.push_back(t);
  }
  return out;
}

Rng Rng::fork() noexcept {
  return Rng(next_u64() ^ 0xa0761d6478bd642fULL);
}

}  // namespace gt
