#include "common/config.hpp"

#include <cstdlib>
#include <string>

namespace gt {

namespace {

const char* get_env(const char* name) { return std::getenv(name); }

}  // namespace

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = get_env(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<std::size_t>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = get_env(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = get_env(name);
  return (v && *v) ? std::string(v) : fallback;
}

bool quick_mode() { return env_size("GT_QUICK", 0) != 0; }

std::size_t runs_per_point() {
  const std::size_t fallback = quick_mode() ? 3 : 10;
  return env_size("GT_SEEDS", fallback);
}

std::uint64_t base_seed() {
  return static_cast<std::uint64_t>(env_size("GT_SEED", 42));
}

}  // namespace gt
