// Heavy-tailed samplers used throughout the paper's workloads:
//   * feedback counts per peer follow a power law with max d_max = 200 and
//     average d_avg = 20 (paper section 6.1);
//   * file replica counts follow a power law with popularity rate phi = 1.2
//     (section 6.4);
//   * query popularity follows a two-segment Zipf: phi = 0.63 for ranks
//     1..250 and phi = 1.24 below (section 6.4, modelled on Gnutella);
//   * files per peer follow the Saroiu measurement study, which we model as
//     a clamped lognormal.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace gt {

/// Discrete bounded Pareto sampler on {1, ..., x_max} with density
/// proportional to x^-exponent. Uses inverse-CDF of the continuous bounded
/// Pareto then floors, which preserves the tail index.
class BoundedParetoSampler {
 public:
  BoundedParetoSampler(double exponent, std::size_t x_max);

  std::size_t sample(Rng& rng) const;

  double exponent() const noexcept { return exponent_; }
  std::size_t x_max() const noexcept { return x_max_; }

  /// Expected value of the continuous bounded Pareto on [1, x_max].
  double mean() const noexcept;

 private:
  double exponent_;
  std::size_t x_max_;
};

/// Finds the power-law exponent such that a bounded Pareto on [1, x_max]
/// has the requested mean (bisection). Used to hit d_avg = 20 with
/// d_max = 200 exactly as the paper's setup demands.
double solve_pareto_exponent_for_mean(double target_mean, std::size_t x_max);

/// Draws one feedback-count per peer so that counts are power-law
/// distributed with maximum x_max and (approximately) average avg.
std::vector<std::size_t> power_law_feedback_counts(std::size_t n, std::size_t x_max,
                                                   double avg, Rng& rng);

/// Zipf sampler over ranks {0, ..., n-1} with P(rank r) proportional to
/// (r+1)^-s. Precomputes the CDF; sampling is a binary search.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;

  /// Probability mass of a given rank.
  double pmf(std::size_t rank) const;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Two-segment Zipf used by the paper for query popularity: exponent
/// s_head for ranks < split, s_tail for the rest, continuous at the split.
class TwoSegmentZipfSampler {
 public:
  TwoSegmentZipfSampler(std::size_t n, std::size_t split, double s_head, double s_tail);

  std::size_t sample(Rng& rng) const;
  double pmf(std::size_t rank) const;
  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  std::vector<double> pmf_;
};

/// Saroiu-style files-per-peer sampler: lognormal clamped to [min, max].
/// Parameters default to a median of ~100 files with a heavy upper tail,
/// matching the measured Gnutella sharing distribution the paper cites.
class SaroiuFileCountSampler {
 public:
  SaroiuFileCountSampler(double log_mean = 4.6, double log_sigma = 1.5,
                         std::size_t min_files = 1, std::size_t max_files = 5000);

  std::size_t sample(Rng& rng) const;

 private:
  double log_mean_;
  double log_sigma_;
  std::size_t min_files_;
  std::size_t max_files_;
};

}  // namespace gt
