// Deterministic pseudo-random number generation for all simulations.
//
// Every experiment in this repository derives its randomness from a single
// 64-bit seed so that every figure and table is exactly re-runnable. We use
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is the
// recommended seeding procedure and gives independent streams from
// consecutive seeds.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace gt {

/// SplitMix64: tiny, fast generator used to expand a single seed into the
/// larger state of xoshiro256**. Also usable standalone for hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit mix of a value; useful for deriving per-entity seeds.
std::uint64_t mix64(std::uint64_t x) noexcept;

/// Stateless 64-bit mix of (seed, stream): derives the seed of stream i
/// from a base seed, e.g. one independent RNG stream per simulated node.
std::uint64_t mix64(std::uint64_t seed, std::uint64_t stream) noexcept;

/// xoshiro256**: the project-wide PRNG. Satisfies the C++ named requirement
/// UniformRandomBitGenerator so it composes with <random> distributions,
/// though we provide our own bounded/real helpers for speed and portability
/// of results across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). Debiased via Lemire's method.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) noexcept;

  /// Standard normal via Box–Muller (cached second value).
  double next_gaussian() noexcept;

  /// Exponential with rate lambda (> 0).
  double next_exponential(double lambda) noexcept;

  /// Fisher–Yates shuffle of an index container.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Fork an independent stream (e.g. one per simulated node).
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace gt
