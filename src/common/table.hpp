// Minimal console table / CSV emitter used by the benchmark harnesses so
// every reproduced figure and table prints the same row layout the paper
// reports.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace gt {

/// Column-aligned text table with an optional title. Cells are strings;
/// numeric convenience overloads format via format_sci().
class Table {
 public:
  explicit Table(std::string title = {});

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the table with aligned columns.
  void print(std::ostream& os) const;

  /// Renders as CSV (header + rows), suitable for plotting scripts.
  void write_csv(std::ostream& os) const;

  const std::string& title() const noexcept { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Builds a cell from a double using format_sci.
std::string cell(double v, int precision = 3);
std::string cell(std::size_t v);
std::string cell(long long v);

}  // namespace gt
