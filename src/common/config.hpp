// Experiment configuration: the paper's Table 2 defaults plus environment
// overrides used by the benchmark harnesses (GT_QUICK for smoke-sized runs,
// GT_SEEDS / GT_SEED for reproducibility control).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gt {

/// Paper Table 2: parameters and default values.
struct PaperDefaults {
  std::size_t n = 1000;          ///< number of peers
  double alpha = 0.15;           ///< greedy factor toward power nodes
  std::size_t d_max = 200;       ///< maximum feedback amount
  std::size_t d_avg = 20;        ///< average feedback amount
  double malicious_pct = 0.0;    ///< percentage of malicious peers (gamma)
  double power_node_frac = 0.01; ///< q: up to 1% of nodes are power nodes
  double delta = 1e-3;           ///< global aggregation threshold
  double epsilon = 1e-4;         ///< gossip error threshold
};

/// Reads an environment variable as size_t, returning fallback when unset
/// or unparsable.
std::size_t env_size(const char* name, std::size_t fallback);

/// Reads an environment variable as double.
double env_double(const char* name, double fallback);

/// Reads an environment variable as string.
std::string env_string(const char* name, const std::string& fallback);

/// True when GT_QUICK is set to a non-zero value: benches shrink sweeps and
/// seed counts so CI finishes fast.
bool quick_mode();

/// Number of independent simulation runs per data point. Paper uses >= 10;
/// we default to 10 (3 in quick mode) and honor GT_SEEDS.
std::size_t runs_per_point();

/// Base seed for an experiment; honors GT_SEED, defaults to 42.
std::uint64_t base_seed();

}  // namespace gt
