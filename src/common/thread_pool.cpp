#include "common/thread_pool.hpp"

namespace gt {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw ? hw : 1;
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t t = 0; t + 1 < num_threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::claim_and_run(const ChunkFn* fn, std::size_t begin,
                                      std::size_t end, std::size_t num_chunks) {
  std::size_t completed = 0;
  for (;;) {
    const std::size_t k = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (k >= num_chunks) break;
    const auto [lo, hi] = chunk_range(begin, end, num_chunks, k);
    (*fn)(lo, hi, k);
    ++completed;
  }
  return completed;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const ChunkFn* fn;
    std::size_t begin, end, chunks;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      begin = begin_;
      end = end_;
      chunks = num_chunks_;
      // Registering in_flight_ under the lock that published the job means
      // neither parallel_for's completion wait nor the next publication can
      // proceed while this worker still claims chunks from the old job; a
      // worker that wakes after the job finished finds the claim counter
      // exhausted and touches nothing.
      ++in_flight_;
    }
    const std::size_t completed = claim_and_run(fn, begin, end, chunks);
    {
      std::lock_guard<std::mutex> lk(mu_);
      done_chunks_ += completed;
      --in_flight_;
      if (in_flight_ == 0 && done_chunks_ >= num_chunks_) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t num_chunks, const ChunkFn& fn) {
  if (end <= begin || num_chunks == 0) return;
  if (num_chunks > end - begin) num_chunks = end - begin;
  if (workers_.empty() || num_chunks == 1) {
    run_serial(begin, end, num_chunks, fn);
    return;
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    // Wait out stragglers from a previous generation before re-arming the
    // claim counter; see the in_flight_ note in worker_loop.
    cv_done_.wait(lk, [&] { return in_flight_ == 0; });
    fn_ = &fn;
    begin_ = begin;
    end_ = end;
    num_chunks_ = num_chunks;
    done_chunks_ = 0;
    next_chunk_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  cv_work_.notify_all();
  const std::size_t mine = claim_and_run(&fn, begin, end, num_chunks);
  std::unique_lock<std::mutex> lk(mu_);
  done_chunks_ += mine;
  cv_done_.wait(lk, [&] { return done_chunks_ == num_chunks_ && in_flight_ == 0; });
}

}  // namespace gt
