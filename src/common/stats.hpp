// Statistics helpers shared by the experiments: running moments, vector
// error metrics (including the paper's Eq. 8 RMS relative error), and
// simple percentile summaries.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace gt {

/// Welford-style running mean/variance accumulator. The total is tracked
/// as an explicit Neumaier(Kahan)-compensated sum, so sum() is exact (not
/// mean() * n reconstructed from the rounded mean) even for large-n
/// accumulations like telemetry histogram merges.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_ + comp_; }

 private:
  void add_to_sum(double x) noexcept;

  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;   ///< running compensated sum
  double comp_ = 0.0;  ///< Neumaier compensation term
};

/// RMS relative error as defined in the paper's Eq. (8):
///   E = sqrt( (1/n) * sum_i ((v_i - u_i) / v_i)^2 )
/// where v is the reference (calculated) vector and u the estimate
/// (gossiped). Components with |v_i| < floor are skipped to keep the metric
/// finite on zero-reputation nodes; `n` counts only the included terms.
double rms_relative_error(std::span<const double> reference,
                          std::span<const double> estimate,
                          double floor = 1e-12);

/// L1 distance between two equal-length vectors.
double l1_distance(std::span<const double> a, std::span<const double> b);

/// L2 (Euclidean) distance.
double l2_distance(std::span<const double> a, std::span<const double> b);

/// Max-norm distance.
double linf_distance(std::span<const double> a, std::span<const double> b);

/// Mean of |a_i - b_i| / max(|a_i|, floor): the paper's "average relative
/// error" used for the aggregation-cycle stopping rule.
double mean_relative_error(std::span<const double> reference,
                           std::span<const double> estimate,
                           double floor = 1e-12);

/// Normalizes v in place so its components sum to 1 (no-op on zero vectors).
void normalize_l1(std::vector<double>& v);

/// Sum of elements.
double sum(std::span<const double> v);

/// Returns the indices of the k largest elements of v, descending by value
/// (stable: ties break toward smaller index).
std::vector<std::size_t> top_k_indices(std::span<const double> v, std::size_t k);

/// Kendall tau-a rank correlation between two score vectors (O(n^2); used in
/// tests/ablations on modest n to compare ranking fidelity).
double kendall_tau(std::span<const double> a, std::span<const double> b);

/// Percentile (0..100) of a copy of the data using linear interpolation.
double percentile(std::vector<double> data, double pct);

/// Formats a double in fixed/scientific hybrid suitable for table cells.
std::string format_sci(double v, int precision = 3);

/// Always-scientific formatting (threshold labels like 1e-04).
std::string format_exp(double v, int precision = 0);

}  // namespace gt
