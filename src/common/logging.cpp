#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gt {
namespace {

LogLevel parse_level_name(const char* v) {
  if (std::strcmp(v, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(v, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(v, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(v, "error") == 0) return LogLevel::kError;
  return LogLevel::kOff;
}

LogLevel parse_level_env() {
  // GT_LOG_LEVEL is the level filter (takes precedence, so telemetry-enabled
  // bench runs can raise the threshold above GT_LOG's debug spew); GT_LOG is
  // the legacy switch. Default stays off.
  if (const char* v = std::getenv("GT_LOG_LEVEL"); v && *v)
    return parse_level_name(v);
  if (const char* v = std::getenv("GT_LOG"); v && *v)
    return parse_level_name(v);
  return LogLevel::kOff;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(parse_level_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace gt
