// Reusable fixed-size thread pool with a deterministic parallel_for.
//
// The pool exists for the gossip hot path: phases that are embarrassingly
// parallel across nodes (route selection, inbox gather, convergence
// bookkeeping) are expressed as a chunked loop over an index range. The
// partition of [begin, end) into chunks is a pure function of (range,
// num_chunks) — never of thread count, scheduling order, or timing — so a
// caller that needs bit-identical floating-point results across thread
// counts only has to pick a fixed chunk grid and merge per-chunk partials
// in chunk order. Which worker executes which chunk is decided dynamically
// (atomic claim counter), which affects nothing observable.
//
// The calling thread participates as a worker, so ThreadPool(1) spawns no
// threads and parallel_for degenerates to an inline serial loop over the
// same chunk grid.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace gt {

class ThreadPool {
 public:
  /// fn(chunk_begin, chunk_end, chunk_index) — must not throw.
  using ChunkFn = std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// num_threads = total execution lanes including the caller; 0 = one lane
  /// per hardware thread.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution lanes (spawned workers + the calling thread).
  std::size_t num_threads() const noexcept { return workers_.size() + 1; }

  /// Splits [begin, end) into num_chunks contiguous, statically-determined
  /// chunks and runs fn over each, blocking until all complete. Chunks are
  /// executed by the pool's workers and the calling thread; a chunk runs on
  /// exactly one thread. Not reentrant: fn must not call parallel_for on
  /// the same pool.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t num_chunks,
                    const ChunkFn& fn);

  /// The static partition: chunk k of [begin, end) split num_chunks ways.
  /// Balanced to within one element; depends only on its arguments.
  static std::pair<std::size_t, std::size_t> chunk_range(std::size_t begin,
                                                         std::size_t end,
                                                         std::size_t num_chunks,
                                                         std::size_t k) noexcept {
    const std::size_t total = end - begin;
    const std::size_t base = total / num_chunks;
    const std::size_t rem = total % num_chunks;
    const std::size_t lo = begin + k * base + std::min(k, rem);
    return {lo, lo + base + (k < rem ? 1 : 0)};
  }

  /// Serial reference loop over the identical chunk grid (for callers that
  /// have no pool but want the same chunk-indexed structure).
  static void run_serial(std::size_t begin, std::size_t end,
                         std::size_t num_chunks, const ChunkFn& fn) {
    for (std::size_t k = 0; k < num_chunks; ++k) {
      const auto [lo, hi] = chunk_range(begin, end, num_chunks, k);
      fn(lo, hi, k);
    }
  }

 private:
  void worker_loop();
  std::size_t claim_and_run(const ChunkFn* fn, std::size_t begin,
                            std::size_t end, std::size_t num_chunks);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  // Current job; published under mu_, consumed after cv_work_ wakeup.
  const ChunkFn* fn_ = nullptr;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
  std::size_t num_chunks_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t done_chunks_ = 0;  // chunks fully executed this generation
  std::size_t in_flight_ = 0;    // workers currently inside the claim loop
  bool stop_ = false;

  std::atomic<std::size_t> next_chunk_{0};
};

}  // namespace gt
