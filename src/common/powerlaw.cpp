#include "common/powerlaw.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gt {

BoundedParetoSampler::BoundedParetoSampler(double exponent, std::size_t x_max)
    : exponent_(exponent), x_max_(x_max) {
  if (x_max_ < 1) throw std::invalid_argument("BoundedParetoSampler: x_max must be >= 1");
  if (exponent_ <= 0.0)
    throw std::invalid_argument("BoundedParetoSampler: exponent must be positive");
}

std::size_t BoundedParetoSampler::sample(Rng& rng) const {
  if (x_max_ == 1) return 1;
  const double h = static_cast<double>(x_max_) + 1.0;  // continuous support [1, h)
  const double u = rng.next_double();
  double x = 0.0;
  if (std::abs(exponent_ - 1.0) < 1e-12) {
    x = std::exp(u * std::log(h));
  } else {
    const double a = 1.0 - exponent_;
    const double ha = std::pow(h, a);
    x = std::pow(u * (ha - 1.0) + 1.0, 1.0 / a);
  }
  auto v = static_cast<std::size_t>(x);
  return std::clamp<std::size_t>(v, 1, x_max_);
}

double BoundedParetoSampler::mean() const noexcept {
  const double h = static_cast<double>(x_max_) + 1.0;
  if (std::abs(exponent_ - 1.0) < 1e-12) {
    return (h - 1.0) / std::log(h);
  }
  if (std::abs(exponent_ - 2.0) < 1e-12) {
    return std::log(h) / (1.0 - 1.0 / h);
  }
  const double a1 = 1.0 - exponent_;  // normalizer exponent
  const double a2 = 2.0 - exponent_;  // first-moment exponent
  const double num = (std::pow(h, a2) - 1.0) / a2;
  const double den = (std::pow(h, a1) - 1.0) / a1;
  return num / den;
}

double solve_pareto_exponent_for_mean(double target_mean, std::size_t x_max) {
  if (target_mean <= 1.0 || target_mean >= static_cast<double>(x_max))
    throw std::invalid_argument("solve_pareto_exponent_for_mean: mean out of range");
  // Mean decreases monotonically in the exponent; bisect on [0.05, 10].
  double lo = 0.05, hi = 10.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double m = BoundedParetoSampler(mid, x_max).mean();
    if (m > target_mean) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<std::size_t> power_law_feedback_counts(std::size_t n, std::size_t x_max,
                                                   double avg, Rng& rng) {
  const double exponent = solve_pareto_exponent_for_mean(avg, x_max);
  BoundedParetoSampler sampler(exponent, x_max);
  std::vector<std::size_t> counts(n);
  for (auto& c : counts) c = sampler.sample(rng);
  // Guarantee the maximum is actually reached so the most active peer issues
  // d_max feedbacks, as the paper's "maximum feedback amount" setting implies.
  if (n > 0) {
    auto it = std::max_element(counts.begin(), counts.end());
    *it = x_max;
  }
  return counts;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -s);
    cdf_[r] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  assert(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

TwoSegmentZipfSampler::TwoSegmentZipfSampler(std::size_t n, std::size_t split,
                                             double s_head, double s_tail) {
  if (n == 0) throw std::invalid_argument("TwoSegmentZipfSampler: n must be positive");
  split = std::min(split, n);
  pmf_.resize(n);
  for (std::size_t r = 0; r < split; ++r)
    pmf_[r] = std::pow(static_cast<double>(r + 1), -s_head);
  if (split < n) {
    // Scale the tail so the two segments join continuously at the split rank.
    double scale = 1.0;
    if (split > 0) {
      const double head_at_split = std::pow(static_cast<double>(split), -s_head);
      const double tail_at_split = std::pow(static_cast<double>(split), -s_tail);
      scale = head_at_split / tail_at_split;
    }
    for (std::size_t r = split; r < n; ++r)
      pmf_[r] = scale * std::pow(static_cast<double>(r + 1), -s_tail);
  }
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += pmf_[r];
    cdf_[r] = acc;
  }
  for (std::size_t r = 0; r < n; ++r) {
    pmf_[r] /= acc;
    cdf_[r] /= acc;
  }
}

std::size_t TwoSegmentZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double TwoSegmentZipfSampler::pmf(std::size_t rank) const {
  assert(rank < pmf_.size());
  return pmf_[rank];
}

SaroiuFileCountSampler::SaroiuFileCountSampler(double log_mean, double log_sigma,
                                               std::size_t min_files,
                                               std::size_t max_files)
    : log_mean_(log_mean),
      log_sigma_(log_sigma),
      min_files_(min_files),
      max_files_(max_files) {
  if (min_files_ > max_files_)
    throw std::invalid_argument("SaroiuFileCountSampler: min > max");
}

std::size_t SaroiuFileCountSampler::sample(Rng& rng) const {
  const double z = rng.next_gaussian();
  const double x = std::exp(log_mean_ + log_sigma_ * z);
  const auto v = static_cast<std::size_t>(std::llround(x));
  return std::clamp(v, min_files_, max_files_);
}

}  // namespace gt
