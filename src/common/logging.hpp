// Leveled logger for simulations. Off by default so benchmark output stays
// clean; enable with GT_LOG_LEVEL=debug|info|warn|error|off (takes
// precedence), the legacy GT_LOG equivalent, or programmatically.
#pragma once

#include <sstream>
#include <string>

namespace gt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; initialized from GT_LOG on first use.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one line to stderr if `level` passes the global threshold.
void log_line(LogLevel level, const std::string& msg);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, ss_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace detail

#define GT_LOG(level_enum)                                  \
  if (::gt::log_level() > (level_enum)) {                   \
  } else                                                    \
    ::gt::detail::LogStream(level_enum)

#define GT_DEBUG() GT_LOG(::gt::LogLevel::kDebug)
#define GT_INFO() GT_LOG(::gt::LogLevel::kInfo)
#define GT_WARN() GT_LOG(::gt::LogLevel::kWarn)
#define GT_ERROR() GT_LOG(::gt::LogLevel::kError)

}  // namespace gt
