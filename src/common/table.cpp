#include "common/table.hpp"

#include <algorithm>
#include <ostream>

#include "common/stats.hpp"

namespace gt {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::size_t total = widths.empty() ? 0 : widths.size() * 3 + 1;
  for (auto w : widths) total += w;

  if (!title_.empty()) {
    os << title_ << '\n';
    os << std::string(std::max<std::size_t>(total, title_.size()), '=') << '\n';
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << "| " << s << std::string(widths[c] - std::min(widths[c], s.size()), ' ') << ' ';
    }
    os << "|\n";
  };
  if (!header_.empty()) {
    emit(header_);
    for (std::size_t c = 0; c < widths.size(); ++c)
      os << "|" << std::string(widths[c] + 2, '-');
    os << "|\n";
  }
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string cell(double v, int precision) { return format_sci(v, precision); }

std::string cell(std::size_t v) { return std::to_string(v); }

std::string cell(long long v) { return std::to_string(v); }

}  // namespace gt
