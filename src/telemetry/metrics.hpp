// Metrics registry: named counters, gauges, and fixed-log-bucket
// histograms with lock-free per-thread lanes.
//
// The pattern follows production packet-processing engines (Suricata's
// per-thread counter arrays synced into a global table): every metric is
// registered once up front and receives a small integer handle; hot paths
// update a per-lane slot with relaxed atomics (each lane is written by one
// worker, so increments never contend); snapshot() merges the lanes in
// fixed lane order. Because every update is an integer (or a lane-local
// double that never feeds back into simulation state), attaching telemetry
// cannot perturb deterministic kernels — the parallel gossip kernel stays
// bit-identical with metrics on or off.
//
// Registration is setup-phase only: register all metrics before handing
// lanes to worker threads (registering grows the lane arrays, which must
// not race with updates). Updates and snapshots are then safe concurrently.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gt::telemetry {

/// Typed metric handles (indices into the registry's per-kind tables).
struct Counter {
  std::size_t id = static_cast<std::size_t>(-1);
  bool valid() const noexcept { return id != static_cast<std::size_t>(-1); }
};
struct Gauge {
  std::size_t id = static_cast<std::size_t>(-1);
  bool valid() const noexcept { return id != static_cast<std::size_t>(-1); }
};
struct Histogram {
  std::size_t id = static_cast<std::size_t>(-1);
  bool valid() const noexcept { return id != static_cast<std::size_t>(-1); }
};

/// Fixed-log-bucket histogram layout: bucket k covers
///   [min * growth^k, min * growth^(k+1))
/// plus one underflow bucket (< min) and one overflow bucket (>= top).
struct HistogramOptions {
  double min = 1e-9;        ///< lower bound of the first regular bucket
  double growth = 2.0;      ///< geometric bucket width factor (> 1)
  std::size_t buckets = 64; ///< regular bucket count (excludes under/overflow)
};

/// Merged view of one histogram at snapshot time.
struct HistogramSnapshot {
  HistogramOptions options;
  std::vector<std::uint64_t> counts;  ///< buckets + 2: [underflow, b0..bk, overflow]
  std::uint64_t count = 0;            ///< total observations
  double sum = 0.0;                   ///< exact sum of observed values
  double min = 0.0;                   ///< smallest observation (0 when empty)
  double max = 0.0;                   ///< largest observation (0 when empty)

  double mean() const noexcept {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
  /// Lower edge of regular bucket k (k in [0, options.buckets)).
  double bucket_lower(std::size_t k) const noexcept;
  /// Bucket-resolution quantile estimate (upper edge of the bucket holding
  /// the pct-th observation); exact min/max at pct 0/100.
  double percentile(double pct) const noexcept;
};

/// Everything the registry knew at one instant, in registration order.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Name lookups (linear scan: snapshots are small and cold).
  const std::uint64_t* counter(const std::string& name) const noexcept;
  const double* gauge(const std::string& name) const noexcept;
  const HistogramSnapshot* histogram(const std::string& name) const noexcept;
};

/// Registry of named metrics with `lanes` independent update lanes.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t lanes = 1);

  std::size_t num_lanes() const noexcept { return lanes_.size(); }

  /// Registration (setup phase; not thread-safe against updates). Names
  /// are expected unique; registering a duplicate returns the existing id.
  Counter counter(std::string name);
  Gauge gauge(std::string name);
  Histogram histogram(std::string name, HistogramOptions options = {});

  /// Hot-path updates. `lane` must be < num_lanes(); each lane should be
  /// written by at most one thread at a time for contention-free counting.
  void add(Counter c, std::uint64_t delta = 1, std::size_t lane = 0) noexcept;
  void set(Gauge g, double value) noexcept;
  void observe(Histogram h, double value, std::size_t lane = 0) noexcept;

  /// Merged value of one counter across lanes.
  std::uint64_t counter_value(Counter c) const noexcept;
  double gauge_value(Gauge g) const noexcept;

  /// Merged view of one histogram across lanes (fixed lane order, same
  /// merge as snapshot() but without materializing every metric) — the
  /// serve METRICS opcode snapshots its three latency histograms per
  /// request through this. Invalid handles return an empty snapshot.
  HistogramSnapshot histogram_snapshot(Histogram h) const;

  /// Full merged view (lane order fixed, so output is deterministic).
  MetricsSnapshot snapshot() const;

  /// Zeroes every lane and gauge; registrations are kept.
  void reset() noexcept;

 private:
  // Copyable relaxed-atomic cell so lane tables can live in std::vector
  // (growth happens only during registration).
  template <typename T>
  struct Cell {
    std::atomic<T> v{};
    Cell() = default;
    Cell(const Cell& o) : v(o.v.load(std::memory_order_relaxed)) {}
    Cell& operator=(const Cell& o) {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };

  struct HistLane {
    std::vector<Cell<std::uint64_t>> counts;  // buckets + 2
    Cell<double> sum;
    Cell<double> min;  // valid only when any_ nonzero
    Cell<double> max;
    Cell<std::uint64_t> any;
  };

  struct Lane {
    std::vector<Cell<std::uint64_t>> counters;
    std::vector<HistLane> hists;
  };

  std::size_t bucket_index(const HistogramOptions& o, double value) const noexcept;

  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::vector<HistogramOptions> hist_options_;
  std::vector<Cell<double>> gauges_;
  std::vector<Lane> lanes_;
};

}  // namespace gt::telemetry
