#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace gt::telemetry {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

std::size_t find_name(const std::vector<std::string>& names,
                      const std::string& name) {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return i;
  return static_cast<std::size_t>(-1);
}

}  // namespace

double HistogramSnapshot::bucket_lower(std::size_t k) const noexcept {
  return options.min * std::pow(options.growth, static_cast<double>(k));
}

double HistogramSnapshot::percentile(double pct) const noexcept {
  if (count == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  if (pct <= 0.0) return min;
  if (pct >= 100.0) return max;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(pct / 100.0 * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen >= rank) {
      if (b == 0) return options.min;  // underflow bucket: values < min
      if (b == counts.size() - 1) return max;
      return bucket_lower(b);  // upper edge of regular bucket b-1
    }
  }
  return max;
}

const std::uint64_t* MetricsSnapshot::counter(const std::string& name) const noexcept {
  for (const auto& [n, v] : counters)
    if (n == name) return &v;
  return nullptr;
}

const double* MetricsSnapshot::gauge(const std::string& name) const noexcept {
  for (const auto& [n, v] : gauges)
    if (n == name) return &v;
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const noexcept {
  for (const auto& [n, v] : histograms)
    if (n == name) return &v;
  return nullptr;
}

MetricsRegistry::MetricsRegistry(std::size_t lanes)
    : lanes_(std::max<std::size_t>(lanes, 1)) {}

Counter MetricsRegistry::counter(std::string name) {
  if (const auto i = find_name(counter_names_, name);
      i != static_cast<std::size_t>(-1))
    return Counter{i};
  counter_names_.push_back(std::move(name));
  for (auto& lane : lanes_) lane.counters.emplace_back();
  return Counter{counter_names_.size() - 1};
}

Gauge MetricsRegistry::gauge(std::string name) {
  if (const auto i = find_name(gauge_names_, name);
      i != static_cast<std::size_t>(-1))
    return Gauge{i};
  gauge_names_.push_back(std::move(name));
  gauges_.emplace_back();
  return Gauge{gauge_names_.size() - 1};
}

Histogram MetricsRegistry::histogram(std::string name, HistogramOptions options) {
  if (const auto i = find_name(hist_names_, name);
      i != static_cast<std::size_t>(-1))
    return Histogram{i};
  if (options.growth <= 1.0) options.growth = 2.0;
  if (options.min <= 0.0) options.min = 1e-9;
  if (options.buckets == 0) options.buckets = 1;
  hist_names_.push_back(std::move(name));
  hist_options_.push_back(options);
  for (auto& lane : lanes_) {
    HistLane h;
    h.counts.resize(options.buckets + 2);
    lane.hists.push_back(std::move(h));
  }
  return Histogram{hist_names_.size() - 1};
}

void MetricsRegistry::add(Counter c, std::uint64_t delta, std::size_t lane) noexcept {
  if (!c.valid() || lane >= lanes_.size()) return;
  auto& cell = lanes_[lane].counters[c.id].v;
  cell.store(cell.load(kRelaxed) + delta, kRelaxed);  // single-writer lane
}

void MetricsRegistry::set(Gauge g, double value) noexcept {
  if (!g.valid()) return;
  gauges_[g.id].v.store(value, kRelaxed);
}

std::size_t MetricsRegistry::bucket_index(const HistogramOptions& o,
                                          double value) const noexcept {
  if (!(value >= o.min)) return 0;  // underflow (also NaN)
  const auto k = static_cast<std::size_t>(
      std::floor(std::log(value / o.min) / std::log(o.growth)));
  if (k >= o.buckets) return o.buckets + 1;  // overflow
  return k + 1;
}

void MetricsRegistry::observe(Histogram h, double value, std::size_t lane) noexcept {
  if (!h.valid() || lane >= lanes_.size()) return;
  HistLane& hl = lanes_[lane].hists[h.id];
  const std::size_t b = bucket_index(hist_options_[h.id], value);
  auto& cnt = hl.counts[b].v;
  cnt.store(cnt.load(kRelaxed) + 1, kRelaxed);
  hl.sum.v.store(hl.sum.v.load(kRelaxed) + value, kRelaxed);
  if (hl.any.v.load(kRelaxed) == 0) {
    hl.min.v.store(value, kRelaxed);
    hl.max.v.store(value, kRelaxed);
    hl.any.v.store(1, kRelaxed);
  } else {
    if (value < hl.min.v.load(kRelaxed)) hl.min.v.store(value, kRelaxed);
    if (value > hl.max.v.load(kRelaxed)) hl.max.v.store(value, kRelaxed);
  }
}

std::uint64_t MetricsRegistry::counter_value(Counter c) const noexcept {
  if (!c.valid()) return 0;
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane.counters[c.id].v.load(kRelaxed);
  return total;
}

double MetricsRegistry::gauge_value(Gauge g) const noexcept {
  return g.valid() ? gauges_[g.id].v.load(kRelaxed) : 0.0;
}

HistogramSnapshot MetricsRegistry::histogram_snapshot(Histogram h) const {
  HistogramSnapshot hs;
  if (!h.valid() || h.id >= hist_names_.size()) return hs;
  hs.options = hist_options_[h.id];
  hs.counts.assign(hs.options.buckets + 2, 0);
  bool any = false;
  for (const auto& lane : lanes_) {  // fixed lane order: deterministic merge
    const HistLane& hl = lane.hists[h.id];
    for (std::size_t b = 0; b < hs.counts.size(); ++b) {
      const std::uint64_t c = hl.counts[b].v.load(kRelaxed);
      hs.counts[b] += c;
      hs.count += c;
    }
    hs.sum += hl.sum.v.load(kRelaxed);
    if (hl.any.v.load(kRelaxed) != 0) {
      const double lo = hl.min.v.load(kRelaxed);
      const double hi = hl.max.v.load(kRelaxed);
      if (!any) {
        hs.min = lo;
        hs.max = hi;
        any = true;
      } else {
        hs.min = std::min(hs.min, lo);
        hs.max = std::max(hs.max, hi);
      }
    }
  }
  return hs;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i)
    snap.counters.emplace_back(counter_names_[i], counter_value(Counter{i}));
  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i)
    snap.gauges.emplace_back(gauge_names_[i], gauges_[i].v.load(kRelaxed));
  snap.histograms.reserve(hist_names_.size());
  for (std::size_t i = 0; i < hist_names_.size(); ++i)
    snap.histograms.emplace_back(hist_names_[i], histogram_snapshot(Histogram{i}));
  return snap;
}

void MetricsRegistry::reset() noexcept {
  for (auto& lane : lanes_) {
    for (auto& c : lane.counters) c.v.store(0, kRelaxed);
    for (auto& h : lane.hists) {
      for (auto& c : h.counts) c.v.store(0, kRelaxed);
      h.sum.v.store(0.0, kRelaxed);
      h.min.v.store(0.0, kRelaxed);
      h.max.v.store(0.0, kRelaxed);
      h.any.v.store(0, kRelaxed);
    }
  }
  for (auto& g : gauges_) g.v.store(0.0, kRelaxed);
}

}  // namespace gt::telemetry
