// ScopedTimer: phase timing on a monotonic clock.
//
// Measures the lifetime of a scope on std::chrono::steady_clock and, on
// destruction (or an early stop()), records the elapsed seconds into any
// combination of (a) a histogram in a MetricsRegistry and (b) a plain
// double accumulator. Timings are observational only: they are recorded
// into telemetry lanes and never feed back into simulation state, so timed
// kernels remain bit-identical with telemetry on or off.
#pragma once

#include <chrono>
#include <cstddef>

#include "telemetry/metrics.hpp"

namespace gt::telemetry {

class ScopedTimer {
 public:
  using Clock = std::chrono::steady_clock;

  ScopedTimer(MetricsRegistry& registry, Histogram hist, std::size_t lane = 0,
              double* accumulate_into = nullptr) noexcept
      : registry_(&registry),
        hist_(hist),
        lane_(lane),
        accum_(accumulate_into),
        start_(Clock::now()) {}

  explicit ScopedTimer(double* accumulate_into) noexcept
      : accum_(accumulate_into), start_(Clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Records now and disarms; subsequent stops are no-ops.
  void stop() noexcept {
    if (stopped_) return;
    stopped_ = true;
    const double dt = elapsed_seconds();
    if (registry_ != nullptr) registry_->observe(hist_, dt, lane_);
    if (accum_ != nullptr) *accum_ += dt;
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  Histogram hist_{};
  std::size_t lane_ = 0;
  double* accum_ = nullptr;
  Clock::time_point start_;
  bool stopped_ = false;
};

}  // namespace gt::telemetry
