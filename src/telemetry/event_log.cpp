#include "telemetry/event_log.hpp"

#include <chrono>
#include <cstdio>

#include "common/logging.hpp"

namespace gt::telemetry {

namespace {

double wall_clock_seconds() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

std::string render_json_number(double v) {
  JsonWriter w;
  w.field("v", v);
  const std::string& s = w.finish();
  // {"v":<number>} -> <number>
  return s.substr(5, s.size() - 6);
}

}  // namespace

EventLog::EventLog(EventLogConfig config) : config_(std::move(config)) {
  if (config_.path.empty()) return;
  ring_.reserve(config_.ring_capacity);
  file_ = std::fopen(config_.path.c_str(), config_.append ? "ab" : "wb");
  if (file_ == nullptr) {
    GT_WARN() << "EventLog: cannot open " << config_.path << "; telemetry disabled";
    return;
  }
  enabled_ = true;
}

EventLog::~EventLog() {
  if (enabled_) {
    // Drain the retained window first: in flight-recorder mode a full ring
    // overwrites its oldest slot, and the accounting record must not evict
    // a data line.
    flush();
    // Final accounting record: how much was logged and how much the ring
    // overwrote, so a truncated flight-recorder log is detectable from the
    // file alone.
    std::uint64_t logged, dropped;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      logged = seq_;
      dropped = lines_dropped_;
    }
    record("meta")
        .field("records_logged", logged)
        .field("lines_dropped", dropped);
  }
  flush();
  if (file_ != nullptr) std::fclose(file_);
}

EventLog::Record EventLog::record(std::string_view event_type) {
  if (!enabled_) return Record(nullptr);
  Record r(this);
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seq = seq_++;
  }
  r.writer_.field("ts", config_.deterministic_ts ? 0.0 : wall_clock_seconds());
  r.writer_.field("seq", seq);
  r.writer_.field("event", event_type);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& c : context_) r.writer_.field_raw(c.key, c.json_value);
  }
  return r;
}

EventLog::Record& EventLog::Record::metrics(const MetricsSnapshot& snap) {
  if (log_ == nullptr) return *this;
  for (const auto& [name, v] : snap.counters) writer_.field(name, v);
  for (const auto& [name, v] : snap.gauges) writer_.field(name, v);
  for (const auto& [name, h] : snap.histograms) {
    writer_.begin_object(name);
    writer_.field("count", h.count);
    writer_.field("sum", h.sum);
    writer_.field("mean", h.mean());
    writer_.field("min", h.min);
    writer_.field("max", h.max);
    writer_.end();
  }
  return *this;
}

EventLog::Record& EventLog::Record::histogram_detail(std::string_view key,
                                                     const HistogramSnapshot& h) {
  if (log_ == nullptr) return *this;
  writer_.begin_object(key);
  writer_.field("count", h.count);
  writer_.field("sum", h.sum);
  writer_.field("mean", h.mean());
  writer_.field("min", h.min);
  writer_.field("max", h.max);
  writer_.field("bucket_min", h.options.min);
  writer_.field("growth", h.options.growth);
  writer_.begin_array("buckets");
  for (const std::uint64_t c : h.counts) writer_.element(c);
  writer_.end();  // buckets
  writer_.end();  // key
  return *this;
}

void EventLog::set_context(std::string key, std::string value) {
  JsonWriter w;
  w.field("v", value);
  const std::string& s = w.finish();
  std::lock_guard<std::mutex> lock(mutex_);
  context_.push_back({std::move(key), s.substr(5, s.size() - 6)});
}

void EventLog::set_context(std::string key, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  context_.push_back({std::move(key), render_json_number(value)});
}

void EventLog::set_context(std::string key, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  context_.push_back({std::move(key), std::to_string(value)});
}

void EventLog::push(const std::string& line) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.drop_oldest_on_overflow &&
      ring_.size() >= config_.ring_capacity && !ring_.empty()) {
    ring_[start_] = line;
    start_ = (start_ + 1) % ring_.size();
    ++lines_dropped_;
    return;
  }
  ring_.push_back(line);
  if (!config_.drop_oldest_on_overflow &&
      ring_.size() >= config_.ring_capacity)
    flush_locked();
}

void EventLog::flush() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
}

void EventLog::flush_locked() {
  // Oldest-first: [start_, end) then [0, start_) once the ring has wrapped.
  for (std::size_t k = 0; k < ring_.size(); ++k) {
    const std::string& line = ring_[(start_ + k) % ring_.size()];
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
  }
  ring_.clear();
  start_ = 0;
  std::fflush(file_);
}

}  // namespace gt::telemetry
