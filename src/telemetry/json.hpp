// Dependency-free single-line JSON writer for the telemetry sinks.
//
// Builds one flat or nested JSON value by appending fields; handles string
// escaping, integer/double formatting (round-trip precision, non-finite
// values emitted as null per RFC 8259), and comma placement. It is a
// writer, not a DOM: output is streamed into one std::string.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace gt::telemetry {

class JsonWriter {
 public:
  JsonWriter() { begin_object(); }

  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, bool value);
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
             !std::is_same_v<T, std::uint64_t> && !std::is_same_v<T, std::int64_t>)
  JsonWriter& field(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>)
      return field(key, static_cast<std::int64_t>(value));
    else
      return field(key, static_cast<std::uint64_t>(value));
  }

  /// Appends `raw_json` verbatim as the value of `key` (caller guarantees
  /// it is valid JSON — used for pre-rendered context fields).
  JsonWriter& field_raw(std::string_view key, std::string_view raw_json);

  /// Nested containers: begin_* opens under `key`, end() closes the
  /// innermost open container. Inside an array use element()/object
  /// begin with empty key.
  JsonWriter& begin_object(std::string_view key);
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& element(double value);
  JsonWriter& element(std::uint64_t value);
  JsonWriter& end();

  /// Closes the root object (idempotent) and returns the finished line.
  const std::string& finish();

  /// The buffer so far (without closing braces).
  const std::string& raw() const noexcept { return out_; }

 private:
  void begin_object();
  void comma();
  void key(std::string_view k);
  void append_escaped(std::string_view s);
  void append_double(double v);

  std::string out_;
  std::vector<char> stack_;  // '{' or '['
  bool need_comma_ = false;
  bool finished_ = false;
};

}  // namespace gt::telemetry
