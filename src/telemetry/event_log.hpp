// EventLog: an eve-JSON-style JSONL sink (one JSON object per line),
// modeled on Suricata's eve log. Records are built with a fluent RAII
// builder, buffered in a fixed-capacity ring, and flushed to the
// configured file when the ring fills, on flush(), and at destruction.
//
// Schema conventions (documented in DESIGN.md):
//   * every record carries "ts" (wall-clock seconds since the epoch,
//     fractional), "seq" (monotonic per-log sequence number) and
//     "event" (record type, e.g. "cycle", "gossip_step", "net_drop");
//   * context fields set via set_context() (bench name, n, thread count)
//     are stamped onto every subsequent record;
//   * durations are in seconds, sizes in bytes, counts unitless.
//
// A default-constructed (or empty-path) EventLog is disabled: record()
// builders become no-ops, so call sites need no branching.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace gt::telemetry {

struct EventLogConfig {
  std::string path;                  ///< output file; empty disables the log
  std::size_t ring_capacity = 4096;  ///< buffered lines before an auto-flush
  bool append = false;               ///< append instead of truncating
  /// Flight-recorder mode: when the ring fills, overwrite the oldest
  /// buffered line instead of flushing to the file (lines only reach disk
  /// via flush()/destruction). Every overwritten line is counted in
  /// lines_dropped() and reported by the final `meta` record — overflow is
  /// loud, never silent.
  bool drop_oldest_on_overflow = false;
  /// Replayable mode: stamp "ts" as 0.0 on every record instead of the
  /// wall clock, so two runs with the same seed produce byte-identical
  /// logs (the attack campaign's replayability contract diffs whole files;
  /// "seq" still orders records within a log).
  bool deterministic_ts = false;
};

class EventLog {
 public:
  EventLog() = default;  ///< disabled sink
  explicit EventLog(EventLogConfig config);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  bool enabled() const noexcept { return enabled_; }

  /// RAII record builder: fields accumulate, the finished line is pushed
  /// into the ring when the Record goes out of scope.
  class Record {
   public:
    Record(Record&& o) noexcept
        : log_(std::exchange(o.log_, nullptr)), writer_(std::move(o.writer_)) {}
    Record(const Record&) = delete;
    Record& operator=(const Record&) = delete;
    ~Record() {
      if (log_ != nullptr) log_->push(writer_.finish());
    }

    template <typename T>
    Record& field(std::string_view key, T value) {
      if (log_ != nullptr) writer_.field(key, value);
      return *this;
    }

    /// Inlines a metrics snapshot: counters/gauges as numeric fields,
    /// histograms as {count, sum, mean, min, max} objects.
    Record& metrics(const MetricsSnapshot& snap);

    /// Writes one histogram *with its bucket counts* as a nested object:
    /// {count, sum, mean, min, max, bucket_min, growth, buckets: [u64...]}
    /// where buckets[0] is the underflow bucket and buckets.back() the
    /// overflow bucket. Lets offline tools (scripts/report.py --serve)
    /// recover percentiles from the log alone.
    Record& histogram_detail(std::string_view key, const HistogramSnapshot& h);

   private:
    friend class EventLog;
    explicit Record(EventLog* log) : log_(log) {}

    EventLog* log_;  // null = disabled no-op record
    JsonWriter writer_;
  };

  /// Starts a record of the given type; stamps ts/seq/event and the
  /// context fields. Thread-safe (ring push is mutex-guarded).
  Record record(std::string_view event_type);

  /// Adds a field stamped onto every subsequent record.
  void set_context(std::string key, std::string value);
  void set_context(std::string key, double value);
  void set_context(std::string key, std::uint64_t value);

  /// Drains the ring to the file (no-op when disabled).
  void flush();

  std::uint64_t records_logged() const noexcept { return seq_; }
  std::size_t buffered() const noexcept { return ring_.size(); }

  /// Lines lost to ring overflow (only nonzero with
  /// drop_oldest_on_overflow). Also reported by the final `meta` record
  /// the destructor emits.
  std::uint64_t lines_dropped() const noexcept { return lines_dropped_; }

 private:
  void push(const std::string& line);
  void flush_locked();

  struct ContextField {
    std::string key;
    std::string json_value;  // pre-rendered (string quoted, numbers raw)
  };

  bool enabled_ = false;
  EventLogConfig config_;
  std::FILE* file_ = nullptr;
  std::vector<std::string> ring_;
  std::size_t start_ = 0;  ///< oldest line once the ring has wrapped
  std::uint64_t lines_dropped_ = 0;
  std::vector<ContextField> context_;
  std::uint64_t seq_ = 0;
  std::mutex mutex_;
};

}  // namespace gt::telemetry
