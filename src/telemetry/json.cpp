#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>

namespace gt::telemetry {

void JsonWriter::begin_object() {
  out_.push_back('{');
  stack_.push_back('{');
  need_comma_ = false;
}

void JsonWriter::comma() {
  if (need_comma_) out_.push_back(',');
  need_comma_ = true;
}

void JsonWriter::key(std::string_view k) {
  comma();
  out_.push_back('"');
  append_escaped(k);
  out_ += "\":";
}

void JsonWriter::append_escaped(std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
}

void JsonWriter::append_double(double v) {
  if (!std::isfinite(v)) {
    out_ += "null";  // RFC 8259 has no NaN/Inf literals
    return;
  }
  char buf[40];
  // Shortest representation that round-trips: try %.15g then widen.
  for (const int prec : {15, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  out_ += buf;
}

JsonWriter& JsonWriter::field(std::string_view k, std::string_view value) {
  key(k);
  out_.push_back('"');
  append_escaped(value);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, double value) {
  key(k);
  append_double(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::uint64_t value) {
  key(k);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::int64_t value) {
  key(k);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, bool value) {
  key(k);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::field_raw(std::string_view k, std::string_view raw_json) {
  key(k);
  out_ += raw_json;
  return *this;
}

JsonWriter& JsonWriter::begin_object(std::string_view k) {
  key(k);
  out_.push_back('{');
  stack_.push_back('{');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view k) {
  key(k);
  out_.push_back('[');
  stack_.push_back('[');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::element(double value) {
  comma();
  append_double(value);
  return *this;
}

JsonWriter& JsonWriter::element(std::uint64_t value) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::end() {
  if (stack_.size() > 1) {  // never close the root object here
    out_.push_back(stack_.back() == '[' ? ']' : '}');
    stack_.pop_back();
    need_comma_ = true;
  }
  return *this;
}

const std::string& JsonWriter::finish() {
  if (!finished_) {
    while (stack_.size() > 1) end();
    out_.push_back('}');
    stack_.clear();
    finished_ = true;
  }
  return out_;
}

}  // namespace gt::telemetry
