#include "crypto/identity_auth.hpp"

#include <cstring>

#include "common/rng.hpp"

namespace gt::crypto {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const auto b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

PrivateKey IdentityAuthority::extract(Identity id) const {
  // Keyed derivation: mix(master || identity) twice for both halves.
  const std::uint64_t k = mix64(master_secret_ ^ mix64(id));
  return PrivateKey{id, k};
}

Signature IdentityAuthority::sign(const PrivateKey& key,
                                  std::span<const std::uint8_t> payload) const {
  const std::uint64_t inner = fnv1a(payload, key.secret);
  Signature sig;
  sig.hi = mix64(inner ^ key.secret);
  sig.lo = mix64(inner ^ mix64(key.secret) ^ key.identity);
  return sig;
}

Signature IdentityAuthority::sign(const PrivateKey& key,
                                  std::string_view payload) const {
  return sign(key, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(payload.data()),
                       payload.size()));
}

bool IdentityAuthority::verify(Identity sender, std::span<const std::uint8_t> payload,
                               const Signature& sig) const {
  const PrivateKey key = extract(sender);
  return sign(key, payload) == sig;
}

bool IdentityAuthority::verify(Identity sender, std::string_view payload,
                               const Signature& sig) const {
  const PrivateKey key = extract(sender);
  return sign(key, payload) == sig;
}

SignedMessage seal(const IdentityAuthority& authority, const PrivateKey& key,
                   std::span<const std::uint8_t> payload) {
  SignedMessage msg;
  msg.sender = key.identity;
  msg.payload.assign(payload.begin(), payload.end());
  msg.signature = authority.sign(key, payload);
  return msg;
}

bool open(const IdentityAuthority& authority, const SignedMessage& msg) {
  return authority.verify(msg.sender,
                          std::span<const std::uint8_t>(msg.payload.data(),
                                                        msg.payload.size()),
                          msg.signature);
}

std::vector<std::uint8_t> encode_triplet(double x, std::uint64_t id, double w) {
  std::vector<std::uint8_t> out(24);
  std::memcpy(out.data(), &x, 8);
  std::memcpy(out.data() + 8, &id, 8);
  std::memcpy(out.data() + 16, &w, 8);
  return out;
}

}  // namespace gt::crypto
