// Identity-based message authentication (simulated IBC).
//
// The paper names "secure communication with identity-based cryptography"
// as one of GossipTrust's three innovations: gossip payloads are signed so
// a malicious relay cannot forge or tamper with another peer's triplets.
// Real IBC (e.g. Boneh–Franklin) needs pairing arithmetic; what the
// *protocol* needs from it is: (1) a trusted key-generation authority
// derives a peer's signing key from its identity alone, (2) any peer can
// verify a signature knowing only the sender's identity and public system
// parameters. We simulate exactly that contract with keyed hashing: the
// PKG holds a master secret, extraction is a keyed hash of the identity,
// and signatures are MACs. The simulation preserves every code path —
// key issuance, signing on send, verification and rejection on receive —
// while substituting the number theory (see DESIGN.md, substitutions).
// NOT cryptographically secure; simulation-grade only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace gt::crypto {

using Identity = std::uint64_t;

/// 128-bit MAC tag.
struct Signature {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  friend bool operator==(const Signature&, const Signature&) = default;
};

/// Per-identity signing key issued by the authority.
struct PrivateKey {
  Identity identity = 0;
  std::uint64_t secret = 0;
};

/// FNV-1a 64-bit hash over bytes (building block for the MAC).
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// The Private Key Generator (PKG) of the identity-based scheme.
class IdentityAuthority {
 public:
  explicit IdentityAuthority(std::uint64_t master_secret)
      : master_secret_(master_secret) {}

  /// Key extraction: deterministic derivation from identity + master secret.
  PrivateKey extract(Identity id) const;

  /// Signs a payload with a private key.
  Signature sign(const PrivateKey& key, std::span<const std::uint8_t> payload) const;
  Signature sign(const PrivateKey& key, std::string_view payload) const;

  /// Verifies that `sig` was produced by the holder of `sender`'s key.
  /// In real IBC verification uses public parameters only; the simulation
  /// re-derives the key inside the authority-backed verifier, preserving
  /// the caller-visible contract (verify needs only the claimed identity).
  bool verify(Identity sender, std::span<const std::uint8_t> payload,
              const Signature& sig) const;
  bool verify(Identity sender, std::string_view payload, const Signature& sig) const;

 private:
  std::uint64_t master_secret_;
};

/// A signed gossip envelope: payload bytes + sender + tag. Helper used by
/// the secure-gossip tests and the tamper-rejection property tests.
struct SignedMessage {
  Identity sender = 0;
  std::vector<std::uint8_t> payload;
  Signature signature;
};

/// Builds a signed envelope.
SignedMessage seal(const IdentityAuthority& authority, const PrivateKey& key,
                   std::span<const std::uint8_t> payload);

/// Checks an envelope end-to-end.
bool open(const IdentityAuthority& authority, const SignedMessage& msg);

/// Serializes a (x, id, w) gossip triplet into bytes for signing.
std::vector<std::uint8_t> encode_triplet(double x, std::uint64_t id, double w);

}  // namespace gt::crypto
