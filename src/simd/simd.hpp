// Portable fixed-width SIMD plumbing: level selection, runtime CPU
// dispatch, and 64-byte-aligned storage for the SoA gossip state.
//
// Levels form a tiny closed set — scalar (always available, the
// bit-identity oracle), AVX2 and AVX-512 (x86-64), NEON (aarch64) —
// selected once per engine construction by resolve_level():
//
//   1. The GT_SIMD environment variable, when set, wins unconditionally
//      (values: off | scalar | auto | avx2 | avx512 | neon; anything else
//      throws).
//      It is the operational kill-switch the CI scalar-fallback leg uses.
//   2. Otherwise the configured SimdLevel (threaded through PushSumConfig /
//      ShardedGossipConfig / GossipTrustConfig) applies.
//   3. kAuto resolves to the best level this CPU supports; a concrete
//      level the CPU does *not* support degrades to kScalar rather than
//      faulting on an illegal instruction.
//
// Every kernel behind this dispatch is elementwise or follows a pinned
// lane decomposition (see kernels.hpp), so the resolved level never
// changes results — only speed. That is asserted, not assumed: the
// BitIdentityGate goldens and the scalar-vs-SIMD EXPECT_EQ sweeps run the
// same inputs at every supported level.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string_view>
#include <vector>

namespace gt::simd {

/// Kernel instruction-set level. kAuto is a request, never a resolved
/// level; detect_level() prefers the widest level the CPU supports.
enum class SimdLevel : std::uint8_t {
  kAuto = 0,    ///< resolve to the best supported level at runtime
  kScalar = 1,  ///< portable scalar loops — the bit-identity oracle
  kAvx2 = 2,    ///< 4 x f64 AVX2 lanes (x86-64)
  kNeon = 3,    ///< 2 x f64 NEON lanes, paired to 4 logical (aarch64)
  kAvx512 = 4,  ///< 8 x f64 AVX-512 lanes for the streaming mul/add
                ///< kernels; predicate/reduction kernels reuse the AVX2
                ///< forms (elementwise, so still bit-exact)
};

/// Stable lowercase name ("auto", "scalar", "avx2", "avx512", "neon") for
/// telemetry and bench records.
const char* level_name(SimdLevel level) noexcept;

/// Parses a GT_SIMD-style token: off | scalar | auto | avx2 | avx512 |
/// neon ("off" is an alias for scalar). Throws std::invalid_argument on
/// anything else — a typo in the kill-switch must be loud, not a silent
/// fallback to the fast path.
SimdLevel parse_level(std::string_view token);

/// True when this CPU can execute kernels of `level` (kScalar always;
/// kAuto is always satisfiable).
bool level_supported(SimdLevel level) noexcept;

/// Best supported concrete level on this CPU.
SimdLevel detect_level() noexcept;

/// Resolution used by every engine at construction: GT_SIMD env override
/// first, then `configured`, kAuto -> detect_level(), unsupported concrete
/// levels degrade to kScalar. Always returns a concrete supported level.
SimdLevel resolve_level(SimdLevel configured);

/// Logical lane count of the fixed-width layer: every reduction kernel
/// decomposes into exactly 4 lanes regardless of the physical register
/// width (AVX2 = one register, NEON = two), which is what keeps
/// reduction orders identical across levels.
inline constexpr std::size_t kLanes = 4;

/// Alignment of the SoA state arrays: one cache line, a multiple of every
/// vector width in play.
inline constexpr std::size_t kAlignment = 64;

/// Tail padding granularity in doubles: arrays are sized to a multiple of
/// 8 slots (one full AVX-512 register, two AVX2 registers) so a vector
/// kernel never reads past the allocation. Padding slots hold benign
/// values and are excluded from all logical loops.
inline constexpr std::size_t kPadSlots = 8;

/// Smallest multiple of kPadSlots >= n.
constexpr std::size_t padded_size(std::size_t n) noexcept {
  return (n + kPadSlots - 1) / kPadSlots * kPadSlots;
}

/// Aborts with a message when `ptr` is not `alignment`-aligned. The SoA
/// arrays assert this at construction: a quiet misalignment would only
/// show up as a crash deep inside an aligned load.
void assert_aligned(const void* ptr, std::size_t alignment, const char* what);

/// Minimal C++17 aligned allocator: std::vector<double, AlignedAllocator>
/// data() is always 64-byte aligned. Uses the aligned operator new, so it
/// composes with allocation-counting test harnesses that replace it.
template <typename T, std::size_t Align = kAlignment>
class AlignedAllocator {
 public:
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Align});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// 64-byte-aligned vector for the SoA state arrays.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace gt::simd
