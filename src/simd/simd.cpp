#include "simd/simd.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace gt::simd {

const char* level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAuto:
      return "auto";
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdLevel parse_level(std::string_view token) {
  if (token == "off" || token == "scalar") return SimdLevel::kScalar;
  if (token == "auto") return SimdLevel::kAuto;
  if (token == "avx2") return SimdLevel::kAvx2;
  if (token == "avx512") return SimdLevel::kAvx512;
  if (token == "neon") return SimdLevel::kNeon;
  throw std::invalid_argument(
      "GT_SIMD / SimdLevel: unknown value '" + std::string(token) +
      "' (expected off|scalar|auto|avx2|avx512|neon)");
}

bool level_supported(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAuto:
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if defined(__x86_64__) || defined(_M_X64)
      // The avx512 table mixes 512-bit streaming kernels with the AVX2
      // predicate/reduction kernels, so both feature bits must be present
      // (every shipping AVX-512 part has AVX2, but check, don't assume).
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdLevel::kNeon:
#if defined(__aarch64__)
      return true;  // AdvSIMD is architecturally mandatory on aarch64
#else
      return false;
#endif
  }
  return false;
}

SimdLevel detect_level() noexcept {
#if defined(__aarch64__)
  return SimdLevel::kNeon;
#else
  if (level_supported(SimdLevel::kAvx512)) return SimdLevel::kAvx512;
  if (level_supported(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
#endif
}

SimdLevel resolve_level(SimdLevel configured) {
  SimdLevel wanted = configured;
  if (const char* env = std::getenv("GT_SIMD"); env != nullptr && *env != '\0')
    wanted = parse_level(env);
  if (wanted == SimdLevel::kAuto) return detect_level();
  return level_supported(wanted) ? wanted : SimdLevel::kScalar;
}

void assert_aligned(const void* ptr, std::size_t alignment, const char* what) {
  if ((reinterpret_cast<std::uintptr_t>(ptr) & (alignment - 1)) != 0) {
    std::fprintf(stderr,
                 "gt::simd alignment violation: %s = %p is not %zu-byte "
                 "aligned\n",
                 what, ptr, alignment);
    std::abort();
  }
}

}  // namespace gt::simd
