// Vectorized kernels for the hot gossip loops, dispatched by SimdLevel.
//
// Determinism contract: every kernel either
//   (a) is *elementwise* — each output element is a pure function of the
//       same-index input elements, computed with the exact IEEE-754
//       operations of the scalar loop (no FMA contraction, no
//       reassociation), so lane width cannot change a single bit; or
//   (b) follows a *pinned lane decomposition* — `sum` splits the range
//       into kLanes strided partial sums (lane l accumulates elements
//       i == l mod 4 over the aligned prefix, combined as
//       (l0 + l1) + (l2 + l3), then the scalar tail folds in order), and
//       the scalar fallback replicates that exact order.
//
// In consequence scalar, AVX2, AVX-512, and NEON results are bit-identical — the
// BitIdentityGate goldens recorded on the scalar path stay valid at every
// level, and scalar remains the always-on oracle. The kernels.cpp TU is
// compiled with -ffp-contract=off -fno-tree-vectorize so the scalar
// reference really is sequential scalar code even at -O3.
//
// NaN semantics are part of the contract: the residual kernels replicate
// the exact branch predicates of the loops they replace (documented per
// kernel), because an undefined weight or a first-step NaN prev-ratio is
// a *normal* state in push-sum, not an error.
//
// Pointer rules: all pointers may be unaligned (kernels use unaligned
// loads; the SoA arrays are 64-byte aligned anyway for the fast path) and
// `dst == src` aliasing is allowed for the elementwise kernels; partially
// overlapping ranges are not.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/simd.hpp"

namespace gt::simd {

/// One resolved kernel set. Obtained once per engine via kernels(); the
/// function pointers are immutable after process start.
struct Kernels {
  SimdLevel level;

  /// x[i] *= 0.5 — the push-half sweep.
  void (*halve)(double* x, std::size_t n);

  /// dst[i] = scale * src[i] — the keep-half assignment (also used with
  /// dst == src as an in-place scale).
  void (*scale_assign)(double* dst, const double* src, double scale,
                       std::size_t n);

  /// dst[i] += scale * src[i], computed as mul-then-add (never fused) —
  /// the received-half accumulation.
  void (*accumulate_scaled)(double* dst, const double* src, double scale,
                            std::size_t n);

  /// dst[i] += src[i] — payload application / chunk-accumulator merge.
  void (*add)(double* dst, const double* src, std::size_t n);

  /// VectorGossip bookkeeping sweep. For each i:
  ///   if (w[i] <= floor)  prev[i] = NaN, row unstable;
  ///   else ratio = x[i]/w[i]; unstable when isnan(prev[i]) or
  ///        |ratio - prev[i]| > eps; prev[i] = ratio.
  /// Returns true when every element was stable. (NaN w counts as
  /// defined — !(NaN <= floor) — exactly like the scalar branch.)
  bool (*residual_nan)(const double* x, const double* w, double* prev,
                       double floor, double eps, std::size_t n);

  /// ShardedGossip stability sweep. For each i:
  ///   if (!(w[i] > floor))  row unstable, prev[i] untouched;
  ///   else est = x[i]/w[i]; unstable when !(|est - prev[i]| <= eps)
  ///        (NaN-safe: a NaN prev is unstable); prev[i] = est.
  /// Returns true when every element was stable.
  bool (*residual_keep)(const double* x, const double* w, double* prev,
                        double floor, double eps, std::size_t n);

  /// consensus_means read-out: for each i with w[i] > floor,
  /// acc[i] += x[i]/w[i] and ++cnt[i]; undefined slots untouched.
  void (*ratio_accumulate)(double* acc, std::uint32_t* cnt, const double* x,
                           const double* w, double floor, std::size_t n);

  /// Payload accounting: number of i with h*x[i] != 0.0 || h*w[i] != 0.0
  /// (NaN compares unequal to zero, matching the scalar `!=`).
  std::uint64_t (*count_nonzero_pair)(const double* x, const double* w,
                                      double h, std::size_t n);

  /// Pinned-order reduction (contract (b) above): kLanes strided partial
  /// sums over the aligned prefix, merged (l0+l1)+(l2+l3), scalar tail.
  /// NOT a drop-in for a sequential left fold — callers adopt the lane
  /// order explicitly (new call sites only; pinned by golden tests).
  double (*sum)(const double* v, std::size_t n);
};

/// Kernel set for a level. kAuto resolves via resolve_level(); a concrete
/// unsupported level degrades to the scalar set (mirroring
/// resolve_level), so the returned set is always executable on this CPU.
const Kernels& kernels(SimdLevel level);

}  // namespace gt::simd
