// Kernel implementations: scalar oracle + AVX2 + AVX-512 + NEON.
//
// This TU is compiled with -ffp-contract=off -fno-tree-vectorize
// -fno-tree-slp-vectorize (see src/simd/CMakeLists.txt): the scalar
// loops below are the bit-identity *reference*, so the compiler must not
// quietly fuse them into FMAs or re-vectorize them behind our back — and
// the vector paths must stay exactly the explicit intrinsics written
// here (mul then add, never fused).
//
// Shared scalar helpers implement every loop body once; the vector
// variants call them for unaligned tails, so a tail element goes through
// literally the same compiled code as the scalar kernel.

#include "simd/kernels.hpp"

#include <cmath>
#include <limits>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define GT_SIMD_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define GT_SIMD_NEON 1
#endif

namespace gt::simd {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------
// Scalar kernels (the oracle). Element semantics live here once; vector
// paths reuse these loops for their tails.
// ---------------------------------------------------------------------------

void halve_scalar(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= 0.5;
}

void scale_assign_scalar(double* dst, const double* src, double scale,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = scale * src[i];
}

void accumulate_scaled_scalar(double* dst, const double* src, double scale,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += scale * src[i];
}

void add_scalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

/// One element of the VectorGossip bookkeeping sweep; returns "element
/// was stable".
inline bool residual_nan_one(double x, double w, double* prev, double floor,
                             double eps) {
  if (w <= floor) {
    *prev = kNaN;
    return false;
  }
  const double ratio = x / w;
  const bool unstable = std::isnan(*prev) || std::abs(ratio - *prev) > eps;
  *prev = ratio;
  return !unstable;
}

bool residual_nan_scalar(const double* x, const double* w, double* prev,
                         double floor, double eps, std::size_t n) {
  bool stable = true;
  for (std::size_t i = 0; i < n; ++i)
    stable &= residual_nan_one(x[i], w[i], prev + i, floor, eps);
  return stable;
}

/// One element of the ShardedGossip stability sweep.
inline bool residual_keep_one(double x, double w, double* prev, double floor,
                              double eps) {
  if (!(w > floor)) return false;  // prev untouched
  const double est = x / w;
  const bool unstable = !(std::abs(est - *prev) <= eps);  // NaN-safe
  *prev = est;
  return !unstable;
}

bool residual_keep_scalar(const double* x, const double* w, double* prev,
                          double floor, double eps, std::size_t n) {
  bool stable = true;
  for (std::size_t i = 0; i < n; ++i)
    stable &= residual_keep_one(x[i], w[i], prev + i, floor, eps);
  return stable;
}

inline void ratio_accumulate_one(double* acc, std::uint32_t* cnt, double x,
                                 double w, double floor) {
  if (w > floor) {
    *acc += x / w;
    ++*cnt;
  }
}

void ratio_accumulate_scalar(double* acc, std::uint32_t* cnt, const double* x,
                             const double* w, double floor, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    ratio_accumulate_one(acc + i, cnt + i, x[i], w[i], floor);
}

inline std::uint64_t nonzero_pair_one(double x, double w, double h) {
  return (h * x != 0.0 || h * w != 0.0) ? 1u : 0u;
}

std::uint64_t count_nonzero_pair_scalar(const double* x, const double* w,
                                        double h, std::size_t n) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += nonzero_pair_one(x[i], w[i], h);
  return count;
}

/// Pinned 4-lane strided reduction — the scalar *definition* of the lane
/// order every vector variant must reproduce: lane l sums elements
/// i == l (mod 4) over the aligned prefix, lanes merge (l0+l1)+(l2+l3),
/// the remainder folds left-to-right on top.
double sum_scalar(const double* v, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    l0 += v[i];
    l1 += v[i + 1];
    l2 += v[i + 2];
    l3 += v[i + 3];
  }
  double s = (l0 + l1) + (l2 + l3);
  for (std::size_t i = n4; i < n; ++i) s += v[i];
  return s;
}

const Kernels kScalarKernels = {
    SimdLevel::kScalar,     halve_scalar,
    scale_assign_scalar,    accumulate_scaled_scalar,
    add_scalar,             residual_nan_scalar,
    residual_keep_scalar,   ratio_accumulate_scalar,
    count_nonzero_pair_scalar, sum_scalar,
};

// ---------------------------------------------------------------------------
// AVX2 kernels: 4 x f64 per register, unrolled x2 on the streaming sweeps.
// All arithmetic uses explicit mul/add intrinsics (no FMA) so results are
// bit-identical to the contraction-free scalar loops above.
// ---------------------------------------------------------------------------
#ifdef GT_SIMD_X86

#define GT_AVX2 __attribute__((target("avx2")))

GT_AVX2 void halve_avx2(double* x, std::size_t n) {
  const __m256d half = _mm256_set1_pd(0.5);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), half));
    _mm256_storeu_pd(x + i + 4,
                     _mm256_mul_pd(_mm256_loadu_pd(x + i + 4), half));
  }
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), half));
  halve_scalar(x + i, n - i);
}

GT_AVX2 void scale_assign_avx2(double* dst, const double* src, double scale,
                               std::size_t n) {
  const __m256d s = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(_mm256_loadu_pd(src + i), s));
    _mm256_storeu_pd(dst + i + 4,
                     _mm256_mul_pd(_mm256_loadu_pd(src + i + 4), s));
  }
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(_mm256_loadu_pd(src + i), s));
  scale_assign_scalar(dst + i, src + i, scale, n - i);
}

GT_AVX2 void accumulate_scaled_avx2(double* dst, const double* src,
                                    double scale, std::size_t n) {
  const __m256d s = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d p0 = _mm256_mul_pd(_mm256_loadu_pd(src + i), s);
    const __m256d p1 = _mm256_mul_pd(_mm256_loadu_pd(src + i + 4), s);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i), p0));
    _mm256_storeu_pd(dst + i + 4,
                     _mm256_add_pd(_mm256_loadu_pd(dst + i + 4), p1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d p = _mm256_mul_pd(_mm256_loadu_pd(src + i), s);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i), p));
  }
  accumulate_scaled_scalar(dst + i, src + i, scale, n - i);
}

GT_AVX2 void add_avx2(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
    _mm256_storeu_pd(dst + i + 4, _mm256_add_pd(_mm256_loadu_pd(dst + i + 4),
                                                _mm256_loadu_pd(src + i + 4)));
  }
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  add_scalar(dst + i, src + i, n - i);
}

GT_AVX2 bool residual_nan_avx2(const double* x, const double* w, double* prev,
                               double floor, double eps, std::size_t n) {
  const __m256d floorv = _mm256_set1_pd(floor);
  const __m256d epsv = _mm256_set1_pd(eps);
  const __m256d nanv = _mm256_set1_pd(kNaN);
  const __m256d absmask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  __m256d unstable_acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d wv = _mm256_loadu_pd(w + i);
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d pv = _mm256_loadu_pd(prev + i);
    // defined := !(w <= floor)  (true for NaN w, like the scalar branch)
    const __m256d defined = _mm256_cmp_pd(wv, floorv, _CMP_NLE_UQ);
    const __m256d ratio = _mm256_div_pd(xv, wv);
    // per-lane instability for defined lanes:
    //   isnan(prev) || |ratio - prev| > eps   (GT_OQ: NaN diff -> false)
    const __m256d prev_nan = _mm256_cmp_pd(pv, pv, _CMP_UNORD_Q);
    const __m256d diff = _mm256_and_pd(_mm256_sub_pd(ratio, pv), absmask);
    const __m256d moved = _mm256_cmp_pd(diff, epsv, _CMP_GT_OQ);
    const __m256d unstable_def = _mm256_or_pd(prev_nan, moved);
    const __m256d unstable =
        _mm256_or_pd(_mm256_andnot_pd(defined, ones),
                     _mm256_and_pd(defined, unstable_def));
    unstable_acc = _mm256_or_pd(unstable_acc, unstable);
    _mm256_storeu_pd(prev + i, _mm256_blendv_pd(nanv, ratio, defined));
  }
  bool stable = _mm256_movemask_pd(unstable_acc) == 0;
  for (; i < n; ++i)
    stable &= residual_nan_one(x[i], w[i], prev + i, floor, eps);
  return stable;
}

GT_AVX2 bool residual_keep_avx2(const double* x, const double* w, double* prev,
                                double floor, double eps, std::size_t n) {
  const __m256d floorv = _mm256_set1_pd(floor);
  const __m256d epsv = _mm256_set1_pd(eps);
  const __m256d absmask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  __m256d unstable_acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d wv = _mm256_loadu_pd(w + i);
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d pv = _mm256_loadu_pd(prev + i);
    // defined := w > floor  (GT_OQ: NaN w -> undefined, like `!(w > floor)`)
    const __m256d defined = _mm256_cmp_pd(wv, floorv, _CMP_GT_OQ);
    const __m256d est = _mm256_div_pd(xv, wv);
    // unstable for defined lanes := !(|est - prev| <= eps), NaN-safe
    const __m256d diff = _mm256_and_pd(_mm256_sub_pd(est, pv), absmask);
    const __m256d unstable_def = _mm256_cmp_pd(diff, epsv, _CMP_NLE_UQ);
    const __m256d unstable =
        _mm256_or_pd(_mm256_andnot_pd(defined, ones),
                     _mm256_and_pd(defined, unstable_def));
    unstable_acc = _mm256_or_pd(unstable_acc, unstable);
    // prev untouched on undefined lanes
    _mm256_storeu_pd(prev + i, _mm256_blendv_pd(pv, est, defined));
  }
  bool stable = _mm256_movemask_pd(unstable_acc) == 0;
  for (; i < n; ++i)
    stable &= residual_keep_one(x[i], w[i], prev + i, floor, eps);
  return stable;
}

GT_AVX2 void ratio_accumulate_avx2(double* acc, std::uint32_t* cnt,
                                   const double* x, const double* w,
                                   double floor, std::size_t n) {
  const __m256d floorv = _mm256_set1_pd(floor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d wv = _mm256_loadu_pd(w + i);
    const __m256d defined = _mm256_cmp_pd(wv, floorv, _CMP_GT_OQ);
    const int m = _mm256_movemask_pd(defined);
    if (m == 0) continue;
    const __m256d ratio = _mm256_div_pd(_mm256_loadu_pd(x + i), wv);
    const __m256d av = _mm256_loadu_pd(acc + i);
    // Blend the *sum*, not a zeroed addend: adding +0.0 would flip a
    // stored -0.0 accumulator to +0.0 and break bit-identity.
    _mm256_storeu_pd(
        acc + i, _mm256_blendv_pd(av, _mm256_add_pd(av, ratio), defined));
    cnt[i] += m & 1;
    cnt[i + 1] += (m >> 1) & 1;
    cnt[i + 2] += (m >> 2) & 1;
    cnt[i + 3] += (m >> 3) & 1;
  }
  ratio_accumulate_scalar(acc + i, cnt + i, x + i, w + i, floor, n - i);
}

GT_AVX2 std::uint64_t count_nonzero_pair_avx2(const double* x, const double* w,
                                              double h, std::size_t n) {
  const __m256d hv = _mm256_set1_pd(h);
  const __m256d zero = _mm256_setzero_pd();
  std::uint64_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // NEQ_UQ: NaN != 0.0 -> true, matching the scalar `!=`.
    const __m256d nzx = _mm256_cmp_pd(
        _mm256_mul_pd(hv, _mm256_loadu_pd(x + i)), zero, _CMP_NEQ_UQ);
    const __m256d nzw = _mm256_cmp_pd(
        _mm256_mul_pd(hv, _mm256_loadu_pd(w + i)), zero, _CMP_NEQ_UQ);
    count += static_cast<unsigned>(
        __builtin_popcount(_mm256_movemask_pd(_mm256_or_pd(nzx, nzw))));
  }
  return count + count_nonzero_pair_scalar(x + i, w + i, h, n - i);
}

GT_AVX2 double sum_avx2(const double* v, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4)
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + i));
  // Merge in the pinned order (l0 + l1) + (l2 + l3).
  const __m128d lo = _mm256_castpd256_pd128(acc);       // l0, l1
  const __m128d hi = _mm256_extractf128_pd(acc, 1);     // l2, l3
  const __m128d s01 = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));
  const __m128d s23 = _mm_add_sd(hi, _mm_unpackhi_pd(hi, hi));
  double s = _mm_cvtsd_f64(_mm_add_sd(s01, s23));
  for (std::size_t i = n4; i < n; ++i) s += v[i];
  return s;
}

const Kernels kAvx2Kernels = {
    SimdLevel::kAvx2,       halve_avx2,
    scale_assign_avx2,      accumulate_scaled_avx2,
    add_avx2,               residual_nan_avx2,
    residual_keep_avx2,     ratio_accumulate_avx2,
    count_nonzero_pair_avx2, sum_avx2,
};

// ---------------------------------------------------------------------------
// AVX-512 kernels: 8 x f64 per register on the four streaming mul/add
// sweeps — the store-bound hot loops where 512-bit width is pure win. The
// predicate, ratio, and reduction kernels reuse the AVX2 forms above:
// they are elementwise (or pinned-lane-order) so mixing widths inside one
// dispatch table cannot change a single bit, and their scalar-divide /
// movemask structure gains nothing from wider registers.
// ---------------------------------------------------------------------------

#define GT_AVX512 __attribute__((target("avx512f")))

GT_AVX512 void halve_avx512(double* x, std::size_t n) {
  const __m512d half = _mm512_set1_pd(0.5);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(_mm512_loadu_pd(x + i), half));
    _mm512_storeu_pd(x + i + 8,
                     _mm512_mul_pd(_mm512_loadu_pd(x + i + 8), half));
  }
  for (; i + 8 <= n; i += 8)
    _mm512_storeu_pd(x + i, _mm512_mul_pd(_mm512_loadu_pd(x + i), half));
  halve_scalar(x + i, n - i);
}

GT_AVX512 void scale_assign_avx512(double* dst, const double* src,
                                   double scale, std::size_t n) {
  const __m512d s = _mm512_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_pd(dst + i, _mm512_mul_pd(_mm512_loadu_pd(src + i), s));
    _mm512_storeu_pd(dst + i + 8,
                     _mm512_mul_pd(_mm512_loadu_pd(src + i + 8), s));
  }
  for (; i + 8 <= n; i += 8)
    _mm512_storeu_pd(dst + i, _mm512_mul_pd(_mm512_loadu_pd(src + i), s));
  scale_assign_scalar(dst + i, src + i, scale, n - i);
}

GT_AVX512 void accumulate_scaled_avx512(double* dst, const double* src,
                                        double scale, std::size_t n) {
  const __m512d s = _mm512_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Explicit mul then add — _mm512_fmadd_pd would fuse and break
    // bit-identity with the contraction-free scalar oracle.
    const __m512d p0 = _mm512_mul_pd(_mm512_loadu_pd(src + i), s);
    const __m512d p1 = _mm512_mul_pd(_mm512_loadu_pd(src + i + 8), s);
    _mm512_storeu_pd(dst + i, _mm512_add_pd(_mm512_loadu_pd(dst + i), p0));
    _mm512_storeu_pd(dst + i + 8,
                     _mm512_add_pd(_mm512_loadu_pd(dst + i + 8), p1));
  }
  for (; i + 8 <= n; i += 8) {
    const __m512d p = _mm512_mul_pd(_mm512_loadu_pd(src + i), s);
    _mm512_storeu_pd(dst + i, _mm512_add_pd(_mm512_loadu_pd(dst + i), p));
  }
  accumulate_scaled_scalar(dst + i, src + i, scale, n - i);
}

GT_AVX512 void add_avx512(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_pd(dst + i, _mm512_add_pd(_mm512_loadu_pd(dst + i),
                                            _mm512_loadu_pd(src + i)));
    _mm512_storeu_pd(dst + i + 8,
                     _mm512_add_pd(_mm512_loadu_pd(dst + i + 8),
                                   _mm512_loadu_pd(src + i + 8)));
  }
  for (; i + 8 <= n; i += 8)
    _mm512_storeu_pd(dst + i, _mm512_add_pd(_mm512_loadu_pd(dst + i),
                                            _mm512_loadu_pd(src + i)));
  add_scalar(dst + i, src + i, n - i);
}

const Kernels kAvx512Kernels = {
    SimdLevel::kAvx512,     halve_avx512,
    scale_assign_avx512,    accumulate_scaled_avx512,
    add_avx512,             residual_nan_avx2,
    residual_keep_avx2,     ratio_accumulate_avx2,
    count_nonzero_pair_avx2, sum_avx2,
};

#endif  // GT_SIMD_X86

// ---------------------------------------------------------------------------
// NEON kernels: 2 x f64 registers, paired to the same 4 logical lanes.
// aarch64 mandates AdvSIMD, so no runtime gate beyond the architecture.
// ---------------------------------------------------------------------------
#ifdef GT_SIMD_NEON

void halve_neon(double* x, std::size_t n) {
  const float64x2_t half = vdupq_n_f64(0.5);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f64(x + i, vmulq_f64(vld1q_f64(x + i), half));
    vst1q_f64(x + i + 2, vmulq_f64(vld1q_f64(x + i + 2), half));
  }
  halve_scalar(x + i, n - i);
}

void scale_assign_neon(double* dst, const double* src, double scale,
                       std::size_t n) {
  const float64x2_t s = vdupq_n_f64(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f64(dst + i, vmulq_f64(vld1q_f64(src + i), s));
    vst1q_f64(dst + i + 2, vmulq_f64(vld1q_f64(src + i + 2), s));
  }
  scale_assign_scalar(dst + i, src + i, scale, n - i);
}

void accumulate_scaled_neon(double* dst, const double* src, double scale,
                            std::size_t n) {
  const float64x2_t s = vdupq_n_f64(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Explicit mul then add — vfmaq would fuse and break bit-identity.
    const float64x2_t p0 = vmulq_f64(vld1q_f64(src + i), s);
    const float64x2_t p1 = vmulq_f64(vld1q_f64(src + i + 2), s);
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), p0));
    vst1q_f64(dst + i + 2, vaddq_f64(vld1q_f64(dst + i + 2), p1));
  }
  accumulate_scaled_scalar(dst + i, src + i, scale, n - i);
}

void add_neon(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), vld1q_f64(src + i)));
    vst1q_f64(dst + i + 2,
              vaddq_f64(vld1q_f64(dst + i + 2), vld1q_f64(src + i + 2)));
  }
  add_scalar(dst + i, src + i, n - i);
}

inline uint64x2_t not_u64(uint64x2_t v) {
  return veorq_u64(v, vdupq_n_u64(~0ULL));
}

bool residual_nan_neon(const double* x, const double* w, double* prev,
                       double floor, double eps, std::size_t n) {
  const float64x2_t floorv = vdupq_n_f64(floor);
  const float64x2_t epsv = vdupq_n_f64(eps);
  const float64x2_t nanv = vdupq_n_f64(kNaN);
  uint64x2_t unstable_acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t wv = vld1q_f64(w + i);
    const float64x2_t xv = vld1q_f64(x + i);
    const float64x2_t pv = vld1q_f64(prev + i);
    // defined := !(w <= floor); vcleq is false on NaN, so NOT gives true.
    const uint64x2_t defined = not_u64(vcleq_f64(wv, floorv));
    const float64x2_t ratio = vdivq_f64(xv, wv);
    // isnan(prev) == !(prev == prev)
    const uint64x2_t prev_nan = not_u64(vceqq_f64(pv, pv));
    const float64x2_t diff = vabsq_f64(vsubq_f64(ratio, pv));
    const uint64x2_t moved = vcgtq_f64(diff, epsv);  // NaN -> false
    const uint64x2_t unstable_def = vorrq_u64(prev_nan, moved);
    const uint64x2_t unstable =
        vorrq_u64(vbicq_u64(vdupq_n_u64(~0ULL), defined),
                  vandq_u64(defined, unstable_def));
    unstable_acc = vorrq_u64(unstable_acc, unstable);
    vst1q_f64(prev + i, vbslq_f64(defined, ratio, nanv));
  }
  bool stable = (vgetq_lane_u64(unstable_acc, 0) |
                 vgetq_lane_u64(unstable_acc, 1)) == 0;
  for (; i < n; ++i)
    stable &= residual_nan_one(x[i], w[i], prev + i, floor, eps);
  return stable;
}

bool residual_keep_neon(const double* x, const double* w, double* prev,
                        double floor, double eps, std::size_t n) {
  const float64x2_t floorv = vdupq_n_f64(floor);
  const float64x2_t epsv = vdupq_n_f64(eps);
  uint64x2_t unstable_acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t wv = vld1q_f64(w + i);
    const float64x2_t xv = vld1q_f64(x + i);
    const float64x2_t pv = vld1q_f64(prev + i);
    const uint64x2_t defined = vcgtq_f64(wv, floorv);  // NaN -> undefined
    const float64x2_t est = vdivq_f64(xv, wv);
    const float64x2_t diff = vabsq_f64(vsubq_f64(est, pv));
    // !(|est - prev| <= eps), true on NaN
    const uint64x2_t unstable_def = not_u64(vcleq_f64(diff, epsv));
    const uint64x2_t unstable =
        vorrq_u64(vbicq_u64(vdupq_n_u64(~0ULL), defined),
                  vandq_u64(defined, unstable_def));
    unstable_acc = vorrq_u64(unstable_acc, unstable);
    vst1q_f64(prev + i, vbslq_f64(defined, est, pv));
  }
  bool stable = (vgetq_lane_u64(unstable_acc, 0) |
                 vgetq_lane_u64(unstable_acc, 1)) == 0;
  for (; i < n; ++i)
    stable &= residual_keep_one(x[i], w[i], prev + i, floor, eps);
  return stable;
}

void ratio_accumulate_neon(double* acc, std::uint32_t* cnt, const double* x,
                           const double* w, double floor, std::size_t n) {
  const float64x2_t floorv = vdupq_n_f64(floor);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t wv = vld1q_f64(w + i);
    const uint64x2_t defined = vcgtq_f64(wv, floorv);
    const std::uint64_t m0 = vgetq_lane_u64(defined, 0);
    const std::uint64_t m1 = vgetq_lane_u64(defined, 1);
    if ((m0 | m1) == 0) continue;
    const float64x2_t ratio = vdivq_f64(vld1q_f64(x + i), wv);
    const float64x2_t av = vld1q_f64(acc + i);
    vst1q_f64(acc + i, vbslq_f64(defined, vaddq_f64(av, ratio), av));
    cnt[i] += m0 & 1;
    cnt[i + 1] += m1 & 1;
  }
  ratio_accumulate_scalar(acc + i, cnt + i, x + i, w + i, floor, n - i);
}

std::uint64_t count_nonzero_pair_neon(const double* x, const double* w,
                                      double h, std::size_t n) {
  const float64x2_t hv = vdupq_n_f64(h);
  const float64x2_t zero = vdupq_n_f64(0.0);
  std::uint64_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // (h*v != 0) == !(h*v == 0); vceqq is false on NaN, NOT gives true.
    const uint64x2_t nzx = not_u64(vceqq_f64(vmulq_f64(hv, vld1q_f64(x + i)), zero));
    const uint64x2_t nzw = not_u64(vceqq_f64(vmulq_f64(hv, vld1q_f64(w + i)), zero));
    const uint64x2_t nz = vorrq_u64(nzx, nzw);
    count += (vgetq_lane_u64(nz, 0) & 1) + (vgetq_lane_u64(nz, 1) & 1);
  }
  return count + count_nonzero_pair_scalar(x + i, w + i, h, n - i);
}

double sum_neon(const double* v, std::size_t n) {
  // Two 2-wide registers emulate the pinned 4-lane decomposition: acc01
  // holds lanes 0/1, acc23 lanes 2/3.
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    acc01 = vaddq_f64(acc01, vld1q_f64(v + i));
    acc23 = vaddq_f64(acc23, vld1q_f64(v + i + 2));
  }
  // vpaddd within a register is a single add: exactly (l0+l1), (l2+l3).
  double s = vaddvq_f64(acc01) + vaddvq_f64(acc23);
  for (std::size_t i = n4; i < n; ++i) s += v[i];
  return s;
}

const Kernels kNeonKernels = {
    SimdLevel::kNeon,       halve_neon,
    scale_assign_neon,      accumulate_scaled_neon,
    add_neon,               residual_nan_neon,
    residual_keep_neon,     ratio_accumulate_neon,
    count_nonzero_pair_neon, sum_neon,
};

#endif  // GT_SIMD_NEON

}  // namespace

const Kernels& kernels(SimdLevel level) {
  if (level == SimdLevel::kAuto) level = resolve_level(SimdLevel::kAuto);
  switch (level) {
#ifdef GT_SIMD_X86
    case SimdLevel::kAvx2:
      if (level_supported(SimdLevel::kAvx2)) return kAvx2Kernels;
      break;
    case SimdLevel::kAvx512:
      if (level_supported(SimdLevel::kAvx512)) return kAvx512Kernels;
      break;
#endif
#ifdef GT_SIMD_NEON
    case SimdLevel::kNeon:
      return kNeonKernels;
#endif
    default:
      break;
  }
  return kScalarKernels;
}

}  // namespace gt::simd
