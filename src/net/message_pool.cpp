#include "net/message_pool.hpp"

#include <cstdio>
#include <cstdlib>

namespace gt::net {

MessagePool::Slot& MessagePool::checked(MsgHandle h, const char* fn) {
  if (h.gen == 0 || h.slot >= slots_.size() || slots_[h.slot].gen != h.gen) {
    std::fprintf(stderr,
                 "MessagePool::%s: stale or invalid handle (slot %u gen %u)\n",
                 fn, h.slot, h.gen);
    std::abort();
  }
  return slots_[h.slot];
}

const MessagePool::Slot& MessagePool::checked(MsgHandle h,
                                              const char* fn) const {
  return const_cast<MessagePool*>(this)->checked(h, fn);
}

MsgHandle MessagePool::acquire(std::size_t bytes) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  if (s.buf.size() < bytes) s.buf.resize(bytes);  // capacity persists after
  s.len = bytes;
  ++s.gen;
  if (s.gen == 0) ++s.gen;  // 0 marks an invalid handle; skip it on wrap
  s.refs = 1;
  ++live_;
  ++total_acquires_;
  return MsgHandle{slot, s.gen};
}

std::span<std::byte> MessagePool::payload(MsgHandle h) {
  Slot& s = checked(h, "payload");
  return {s.buf.data(), s.len};
}

std::span<const std::byte> MessagePool::payload(MsgHandle h) const {
  const Slot& s = checked(h, "payload");
  return {s.buf.data(), s.len};
}

void MessagePool::add_ref(MsgHandle h) { ++checked(h, "add_ref").refs; }

bool MessagePool::release(MsgHandle h) {
  Slot& s = checked(h, "release");
  if (--s.refs > 0) return false;
  ++s.gen;  // retire: every outstanding handle to this occupancy goes stale
  if (s.gen == 0) ++s.gen;
  free_.push_back(h.slot);
  --live_;
  return true;
}

}  // namespace gt::net
