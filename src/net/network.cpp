#include "net/network.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace gt::net {

namespace {

/// Heap box carrying the legacy closure pair through the pooled core. One
/// allocation per send() call (the pooled path itself makes none); freed by
/// the release hook when the message's pool slot retires.
struct LegacyClosures {
  Network::Handler deliver;
  Network::DropHandler drop;
};

void legacy_deliver(void* ctx, std::span<const std::byte>, NodeId, NodeId) {
  auto* c = static_cast<LegacyClosures*>(ctx);
  if (c->deliver) c->deliver();
}

void legacy_drop(void* ctx, std::span<const std::byte>, NodeId, NodeId,
                 const char* reason) {
  auto* c = static_cast<LegacyClosures*>(ctx);
  if (c->drop) c->drop(reason);
}

void legacy_release(void* ctx) { delete static_cast<LegacyClosures*>(ctx); }

}  // namespace

Network::Network(sim::Scheduler& scheduler, std::size_t num_nodes,
                 NetworkConfig config, Rng rng)
    : scheduler_(scheduler),
      config_(config),
      rng_(rng),
      node_up_(num_nodes, true) {}

std::uint64_t Network::link_key(NodeId a, NodeId b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

void Network::check_node(NodeId node, const char* fn) const {
  // Out-of-range node ids are always caller bugs; a release-mode-silent
  // assert would index out of bounds downstream, so fail loudly in every
  // build type (same convention as Rng::next_below(0)).
  if (node >= node_up_.size()) {
    std::fprintf(stderr, "fatal: net::Network::%s: node %zu out of range (n=%zu)\n",
                 fn, node, node_up_.size());
    std::abort();
  }
}

bool Network::is_node_up(NodeId node) const {
  check_node(node, "is_node_up");
  return node_up_[node];
}

void Network::attach_telemetry(telemetry::MetricsRegistry* registry,
                               telemetry::EventLog* events) {
  metrics_ = registry;
  events_ = events;
  if (metrics_ != nullptr) {
    m_sent_ = metrics_->counter("net.messages_sent");
    m_delivered_ = metrics_->counter("net.messages_delivered");
    m_dropped_ = metrics_->counter("net.messages_dropped");
    m_items_sent_ = metrics_->counter("net.items_sent");
    m_items_delivered_ = metrics_->counter("net.items_delivered");
    m_items_dropped_ = metrics_->counter("net.items_dropped");
    m_bytes_sent_ = metrics_->counter("net.bytes_sent");
    m_bytes_delivered_ = metrics_->counter("net.bytes_delivered");
    m_bytes_dropped_ = metrics_->counter("net.bytes_dropped");
  }
}

void Network::count_drop(NodeId from, NodeId to, std::size_t size_bytes,
                         std::uint32_t items, const char* reason) {
  ++stats_.messages_dropped;
  stats_.items_dropped += items;
  stats_.bytes_dropped += size_bytes;
  if (metrics_ != nullptr) {
    metrics_->add(m_dropped_);
    metrics_->add(m_items_dropped_, items);
    metrics_->add(m_bytes_dropped_, size_bytes);
  }
  if (events_ != nullptr) {
    events_->record("net_drop")
        .field("sim_time", scheduler_.now())
        .field("from", from)
        .field("to", to)
        .field("bytes", size_bytes)
        .field("reason", reason);
  }
}

bool Network::cross_partition(NodeId a, NodeId b) const {
  return !partition_.empty() && partition_[a] != partition_[b];
}

void Network::trace_event(const trace::TraceCtx& tctx, trace::SpanKind kind,
                          NodeId node, NodeId peer, std::uint32_t flags,
                          double value) {
  trace::TraceRecord rec;
  rec.t_start = rec.t_end = scheduler_.now();
  rec.trace_id = tctx.trace_id;
  rec.span_id = tctx.span_id;
  rec.parent_id = tctx.parent_id;
  rec.kind = static_cast<std::uint32_t>(kind);
  rec.flags = flags;
  rec.node = static_cast<std::uint32_t>(node);
  rec.peer = static_cast<std::uint32_t>(peer);
  rec.value = value;
  trace_->emit(rec);
}

void Network::finish(MsgHandle h, const PooledSend& sink) {
  if (pool_.release(h) && sink.on_release != nullptr) sink.on_release(sink.ctx);
}

void Network::deliver_primary(MsgHandle h) {
  // Copy the metadata: handlers may send (growing the slab and relocating
  // meta_), so a reference must not be held across them.
  const InFlightMeta m = meta_[h.slot];
  // The receiver may have gone down (or a partition opened) while the
  // message was in flight, and corrupted payloads fail their checksum on
  // arrival: the payload bytes never land, so they are accounted as
  // dropped and the sender's drop hook (if any) is told why.
  const char* drop_reason = nullptr;
  if (!node_up_[m.to]) {
    drop_reason = "receiver_down_in_flight";
  } else if (cross_partition(m.from, m.to)) {
    drop_reason = "partitioned_in_flight";
  } else if (m.corrupt_primary) {
    drop_reason = "corrupted";
    ++stats_.messages_corrupted;
  }
  if (drop_reason != nullptr) {
    count_drop(m.from, m.to, m.size_bytes, m.items, drop_reason);
    if (trace_ != nullptr && m.tctx.active())
      trace_event(m.tctx,
                  m.tctx.ack ? trace::SpanKind::kAckDrop
                             : trace::SpanKind::kMsgDrop,
                  m.from, m.to, trace::drop_reason_code(drop_reason),
                  static_cast<double>(m.size_bytes));
    if (m.sink.on_drop != nullptr)
      m.sink.on_drop(m.sink.ctx, pool_.payload(h), m.from, m.to, drop_reason);
  } else {
    ++stats_.messages_delivered;
    stats_.items_delivered += m.items;
    stats_.bytes_delivered += m.size_bytes;
    if (metrics_ != nullptr) {
      metrics_->add(m_delivered_);
      metrics_->add(m_items_delivered_, m.items);
      metrics_->add(m_bytes_delivered_, m.size_bytes);
    }
    if (trace_ != nullptr && m.tctx.active())
      trace_event(m.tctx,
                  m.tctx.ack ? trace::SpanKind::kAckDeliver
                             : trace::SpanKind::kMsgDeliver,
                  m.to, m.from, m.tctx.attempt,
                  static_cast<double>(m.size_bytes));
    if (m.sink.on_deliver != nullptr)
      m.sink.on_deliver(m.sink.ctx, pool_.payload(h), m.from, m.to);
  }
  finish(h, m.sink);
}

void Network::deliver_duplicate(MsgHandle h) {
  const InFlightMeta m = meta_[h.slot];
  // The duplicate is best-effort bonus traffic: its losses are silent and
  // never touch the primary sent/delivered/dropped invariant.
  if (node_up_[m.to] && !cross_partition(m.from, m.to) && !m.corrupt_dup) {
    ++stats_.duplicates_delivered;
    if (m.sink.on_deliver != nullptr)
      m.sink.on_deliver(m.sink.ctx, pool_.payload(h), m.from, m.to);
  }
  finish(h, m.sink);
}

bool Network::send_pooled(NodeId from, NodeId to, std::size_t size_bytes,
                          std::uint32_t items, MsgHandle h,
                          const PooledSend& sink, const trace::TraceCtx& tctx) {
  check_node(from, "send");
  check_node(to, "send");
  const bool traced = trace_ != nullptr && tctx.active();
  if (traced)
    trace_event(tctx,
                tctx.ack ? trace::SpanKind::kAckSend : trace::SpanKind::kMsgSend,
                from, to, tctx.attempt, static_cast<double>(size_bytes));
  ++stats_.messages_sent;
  stats_.items_sent += items;
  stats_.bytes_sent += size_bytes;
  if (metrics_ != nullptr) {
    metrics_->add(m_sent_);
    metrics_->add(m_items_sent_, items);
    metrics_->add(m_bytes_sent_, size_bytes);
  }

  const char* reason = nullptr;
  if (!node_up_[from]) {
    reason = "sender_down";
  } else if (!node_up_[to]) {
    reason = "receiver_down";
  } else if (link_failed(from, to)) {
    reason = "link_failed";
  } else if (cross_partition(from, to)) {
    reason = "partitioned";
  } else if (rng_.next_bool(config_.loss_probability)) {
    reason = "loss";
  }
  if (reason != nullptr) {
    count_drop(from, to, size_bytes, items, reason);
    if (traced)
      trace_event(tctx,
                  tctx.ack ? trace::SpanKind::kAckDrop : trace::SpanKind::kMsgDrop,
                  from, to, trace::drop_reason_code(reason),
                  static_cast<double>(size_bytes));
    finish(h, sink);
    return false;
  }

  // RNG draw order is part of the determinism contract: corruption
  // (primary), duplication, primary jitter, then — only when a duplicate
  // was drawn — duplicate corruption and duplicate jitter. Disabled knobs
  // (probability 0) consume no randomness, so runs without faults keep
  // the exact streams of earlier revisions.
  const bool corrupt_primary = rng_.next_bool(config_.corrupt_probability);
  const bool duplicate = rng_.next_bool(config_.duplicate_probability);
  double delay = config_.base_latency;
  if (config_.jitter > 0.0) delay += rng_.next_double(0.0, config_.jitter);

  if (meta_.size() < pool_.slab_size()) meta_.resize(pool_.slab_size());
  InFlightMeta& m = meta_[h.slot];
  m.sink = sink;
  m.tctx = tctx;
  m.from = from;
  m.to = to;
  m.size_bytes = size_bytes;
  m.items = items;
  m.corrupt_primary = corrupt_primary;
  m.corrupt_dup = false;

  if (duplicate) {
    ++stats_.messages_duplicated;
    m.corrupt_dup = rng_.next_bool(config_.corrupt_probability);
    double dup_delay = config_.base_latency;
    if (config_.jitter > 0.0) dup_delay += rng_.next_double(0.0, config_.jitter);
    pool_.add_ref(h);  // the copy shares the payload slot
    // Scheduled before the primary so that at equal delivery times the
    // copy's lower sequence number runs first (legacy event order).
    scheduler_.schedule_after(dup_delay, [this, h] { deliver_duplicate(h); });
  }

  scheduler_.schedule_after(delay, [this, h] { deliver_primary(h); });
  return true;
}

bool Network::send(NodeId from, NodeId to, std::size_t size_bytes,
                   Handler on_deliver, DropHandler on_drop,
                   const trace::TraceCtx& tctx) {
  auto* box = new LegacyClosures{std::move(on_deliver), std::move(on_drop)};
  PooledSend sink;
  sink.on_deliver = &legacy_deliver;
  sink.on_drop = &legacy_drop;
  sink.on_release = &legacy_release;
  sink.ctx = box;
  return send_pooled(from, to, size_bytes, 1, pool_.acquire(0), sink, tctx);
}

void Network::set_node_up(NodeId node, bool up) {
  check_node(node, "set_node_up");
  if (events_ != nullptr && node_up_[node] != up) {
    events_->record("net_outage")
        .field("sim_time", scheduler_.now())
        .field("kind", up ? "node_up" : "node_down")
        .field("node", node);
  }
  node_up_[node] = up;
}

void Network::fail_link(NodeId a, NodeId b) {
  check_node(a, "fail_link");
  check_node(b, "fail_link");
  if (events_ != nullptr && !link_failed(a, b)) {
    events_->record("net_outage")
        .field("sim_time", scheduler_.now())
        .field("kind", "link_failed")
        .field("a", a)
        .field("b", b);
  }
  failed_links_.insert(link_key(a, b));
}

void Network::heal_link(NodeId a, NodeId b) {
  check_node(a, "heal_link");
  check_node(b, "heal_link");
  if (events_ != nullptr && link_failed(a, b)) {
    events_->record("net_outage")
        .field("sim_time", scheduler_.now())
        .field("kind", "link_healed")
        .field("a", a)
        .field("b", b);
  }
  failed_links_.erase(link_key(a, b));
}

bool Network::link_failed(NodeId a, NodeId b) const {
  check_node(a, "link_failed");
  check_node(b, "link_failed");
  return failed_links_.count(link_key(a, b)) != 0;
}

void Network::set_partition(const std::vector<int>& group_of_node) {
  if (group_of_node.size() != node_up_.size()) {
    std::fprintf(stderr,
                 "fatal: net::Network::set_partition: %zu group entries for "
                 "%zu nodes\n",
                 group_of_node.size(), node_up_.size());
    std::abort();
  }
  if (events_ != nullptr) {
    events_->record("net_outage")
        .field("sim_time", scheduler_.now())
        .field("kind", "partition_start")
        .field("nodes", group_of_node.size());
  }
  partition_ = group_of_node;
}

void Network::clear_partition() {
  if (events_ != nullptr && !partition_.empty()) {
    events_->record("net_outage")
        .field("sim_time", scheduler_.now())
        .field("kind", "partition_end");
  }
  partition_.clear();
}

}  // namespace gt::net
