#include "net/network.hpp"

#include <cassert>
#include <utility>

namespace gt::net {

Network::Network(sim::Scheduler& scheduler, std::size_t num_nodes,
                 NetworkConfig config, Rng rng)
    : scheduler_(scheduler),
      config_(config),
      rng_(rng),
      node_up_(num_nodes, true) {}

std::uint64_t Network::link_key(NodeId a, NodeId b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

void Network::attach_telemetry(telemetry::MetricsRegistry* registry,
                               telemetry::EventLog* events) {
  metrics_ = registry;
  events_ = events;
  if (metrics_ != nullptr) {
    m_sent_ = metrics_->counter("net.messages_sent");
    m_delivered_ = metrics_->counter("net.messages_delivered");
    m_dropped_ = metrics_->counter("net.messages_dropped");
    m_bytes_sent_ = metrics_->counter("net.bytes_sent");
    m_bytes_delivered_ = metrics_->counter("net.bytes_delivered");
    m_bytes_dropped_ = metrics_->counter("net.bytes_dropped");
  }
}

void Network::count_drop(NodeId from, NodeId to, std::size_t size_bytes,
                         const char* reason) {
  ++stats_.messages_dropped;
  stats_.bytes_dropped += size_bytes;
  if (metrics_ != nullptr) {
    metrics_->add(m_dropped_);
    metrics_->add(m_bytes_dropped_, size_bytes);
  }
  if (events_ != nullptr) {
    events_->record("net_drop")
        .field("sim_time", scheduler_.now())
        .field("from", from)
        .field("to", to)
        .field("bytes", size_bytes)
        .field("reason", reason);
  }
}

bool Network::send(NodeId from, NodeId to, std::size_t size_bytes,
                   Handler on_deliver) {
  assert(from < node_up_.size() && to < node_up_.size());
  ++stats_.messages_sent;
  stats_.bytes_sent += size_bytes;
  if (metrics_ != nullptr) {
    metrics_->add(m_sent_);
    metrics_->add(m_bytes_sent_, size_bytes);
  }

  const char* reason = nullptr;
  if (!node_up_[from]) {
    reason = "sender_down";
  } else if (!node_up_[to]) {
    reason = "receiver_down";
  } else if (link_failed(from, to)) {
    reason = "link_failed";
  } else if (rng_.next_bool(config_.loss_probability)) {
    reason = "loss";
  }
  if (reason != nullptr) {
    count_drop(from, to, size_bytes, reason);
    return false;
  }

  double delay = config_.base_latency;
  if (config_.jitter > 0.0) delay += rng_.next_double(0.0, config_.jitter);

  scheduler_.schedule_after(
      delay, [this, from, to, size_bytes,
              handler = std::move(on_deliver)]() mutable {
        // The receiver may have gone down while the message was in flight:
        // its payload bytes never land, so they are accounted as dropped.
        if (!node_up_[to]) {
          count_drop(from, to, size_bytes, "receiver_down_in_flight");
          return;
        }
        ++stats_.messages_delivered;
        stats_.bytes_delivered += size_bytes;
        if (metrics_ != nullptr) {
          metrics_->add(m_delivered_);
          metrics_->add(m_bytes_delivered_, size_bytes);
        }
        handler();
      });
  return true;
}

void Network::set_node_up(NodeId node, bool up) {
  assert(node < node_up_.size());
  if (events_ != nullptr && node_up_[node] != up) {
    events_->record("net_outage")
        .field("sim_time", scheduler_.now())
        .field("kind", up ? "node_up" : "node_down")
        .field("node", node);
  }
  node_up_[node] = up;
}

void Network::fail_link(NodeId a, NodeId b) {
  if (events_ != nullptr && !link_failed(a, b)) {
    events_->record("net_outage")
        .field("sim_time", scheduler_.now())
        .field("kind", "link_failed")
        .field("a", a)
        .field("b", b);
  }
  failed_links_.insert(link_key(a, b));
}

void Network::heal_link(NodeId a, NodeId b) {
  if (events_ != nullptr && link_failed(a, b)) {
    events_->record("net_outage")
        .field("sim_time", scheduler_.now())
        .field("kind", "link_healed")
        .field("a", a)
        .field("b", b);
  }
  failed_links_.erase(link_key(a, b));
}

bool Network::link_failed(NodeId a, NodeId b) const {
  return failed_links_.count(link_key(a, b)) != 0;
}

}  // namespace gt::net
