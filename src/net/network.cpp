#include "net/network.hpp"

#include <cassert>
#include <utility>

namespace gt::net {

Network::Network(sim::Scheduler& scheduler, std::size_t num_nodes,
                 NetworkConfig config, Rng rng)
    : scheduler_(scheduler),
      config_(config),
      rng_(rng),
      node_up_(num_nodes, true) {}

std::uint64_t Network::link_key(NodeId a, NodeId b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

bool Network::send(NodeId from, NodeId to, std::size_t size_bytes,
                   Handler on_deliver) {
  assert(from < node_up_.size() && to < node_up_.size());
  ++stats_.messages_sent;
  stats_.bytes_sent += size_bytes;

  const bool dropped = !node_up_[from] || !node_up_[to] ||
                       link_failed(from, to) ||
                       rng_.next_bool(config_.loss_probability);
  if (dropped) {
    ++stats_.messages_dropped;
    return false;
  }

  double delay = config_.base_latency;
  if (config_.jitter > 0.0) delay += rng_.next_double(0.0, config_.jitter);

  scheduler_.schedule_after(
      delay, [this, to, size_bytes, handler = std::move(on_deliver)]() mutable {
        // The receiver may have gone down while the message was in flight.
        if (!node_up_[to]) {
          ++stats_.messages_dropped;
          return;
        }
        ++stats_.messages_delivered;
        stats_.bytes_delivered += size_bytes;
        handler();
      });
  return true;
}

void Network::set_node_up(NodeId node, bool up) {
  assert(node < node_up_.size());
  node_up_[node] = up;
}

void Network::fail_link(NodeId a, NodeId b) { failed_links_.insert(link_key(a, b)); }

void Network::heal_link(NodeId a, NodeId b) { failed_links_.erase(link_key(a, b)); }

bool Network::link_failed(NodeId a, NodeId b) const {
  return failed_links_.count(link_key(a, b)) != 0;
}

}  // namespace gt::net
