// Slab-recycled payload buffers for in-flight network messages.
//
// Every message the simulated network carries used to own a freshly
// heap-allocated closure (and the gossip layer a shared_ptr'd payload
// vector on top); at fig3 scale that is millions of allocator round-trips
// per run. MessagePool replaces per-message ownership with recycled slots:
// a slot is a byte buffer whose capacity survives release, a generation
// counter that makes stale handles loudly detectable, and a reference
// count so a duplicated in-transit copy can share its primary's payload.
// Once the pool reaches its high-water slot count and per-slot capacity,
// acquire/release never allocates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gt::net {

/// Handle to a pooled message slot. The generation is checked on every
/// access, so holding a handle past its release is a loud abort, not a
/// silent read of some later message's bytes. A default-constructed handle
/// (gen 0) is never valid.
struct MsgHandle {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;

  bool valid() const noexcept { return gen != 0; }
};

/// Freelist-recycled pool of reference-counted byte buffers.
class MessagePool {
 public:
  /// Takes a slot holding `bytes` writable bytes (contents unspecified)
  /// with reference count 1. Never zero-fills recycled capacity.
  MsgHandle acquire(std::size_t bytes);

  /// The slot's payload bytes. Aborts on a stale or invalid handle.
  std::span<std::byte> payload(MsgHandle h);
  std::span<const std::byte> payload(MsgHandle h) const;

  /// Adds one reference (a duplicated in-transit copy shares the payload).
  void add_ref(MsgHandle h);

  /// Drops one reference; returns true when this was the last one and the
  /// slot was retired to the freelist (its generation bumps, so every
  /// outstanding handle to it becomes stale).
  bool release(MsgHandle h);

  /// Live (acquired, unreleased) slot count.
  std::size_t live() const noexcept { return live_; }
  /// Total slots ever created (high-water mark of concurrent messages).
  std::size_t slab_size() const noexcept { return slots_.size(); }
  /// Lifetime acquire count (freelist hits = acquires - slab_size).
  std::uint64_t total_acquires() const noexcept { return total_acquires_; }

 private:
  struct Slot {
    std::vector<std::byte> buf;  ///< capacity persists across recycling
    std::size_t len = 0;         ///< current payload length <= buf.size()
    std::uint32_t gen = 0;       ///< parity with live handles; bumped on retire
    std::uint32_t refs = 0;
  };

  Slot& checked(MsgHandle h, const char* fn);
  const Slot& checked(MsgHandle h, const char* fn) const;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::uint64_t total_acquires_ = 0;
};

}  // namespace gt::net
