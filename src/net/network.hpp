// Simulated message-passing network.
//
// Gossip messages in GossipTrust travel over an unreliable network: the
// paper claims the protocol "does not require error recovery mechanisms"
// and "tolerates link failures", so the network model supports per-message
// loss, per-link outages, node up/down state, and latency. Delivery is
// type-erased: senders pass a closure that the network invokes at delivery
// time, which keeps this layer independent of payload schemas while still
// accounting message and byte counts for the overhead experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace gt::net {

using NodeId = std::size_t;

/// Aggregate traffic counters, one per Network instance. Invariant (once
/// all in-flight messages have been drained by the scheduler):
///   messages_sent == messages_delivered + messages_dropped
///   bytes_sent    == bytes_delivered + bytes_dropped + in-flight bytes
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;   ///< lost to link failure / dead node
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t bytes_dropped = 0;      ///< payload of dropped messages
                                        ///< (send-time and delivery-time)

  double delivery_ratio() const noexcept {
    return messages_sent ? static_cast<double>(messages_delivered) /
                               static_cast<double>(messages_sent)
                         : 1.0;
  }

  void reset() { *this = TrafficStats{}; }
};

/// Network configuration knobs.
struct NetworkConfig {
  double loss_probability = 0.0;   ///< i.i.d. per-message drop probability
  double base_latency = 1.0;       ///< fixed propagation delay (sim time units)
  double jitter = 0.0;             ///< uniform extra delay in [0, jitter)
};

/// Simulated network: connects node closures through the event scheduler.
class Network {
 public:
  using Handler = std::function<void()>;

  Network(sim::Scheduler& scheduler, std::size_t num_nodes, NetworkConfig config,
          Rng rng);

  std::size_t num_nodes() const noexcept { return node_up_.size(); }

  /// Sends a message of `size_bytes` from `from` to `to`; `on_deliver` runs
  /// at delivery time unless the message is dropped. Returns true when the
  /// message was enqueued for delivery (false = dropped at send time).
  bool send(NodeId from, NodeId to, std::size_t size_bytes, Handler on_deliver);

  /// Marks a node down: messages to/from it are dropped.
  void set_node_up(NodeId node, bool up);
  bool is_node_up(NodeId node) const { return node_up_[node]; }

  /// Fails or heals a specific (unordered) link.
  void fail_link(NodeId a, NodeId b);
  void heal_link(NodeId a, NodeId b);
  bool link_failed(NodeId a, NodeId b) const;
  std::size_t failed_link_count() const noexcept { return failed_links_.size(); }

  const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(); }

  const NetworkConfig& config() const noexcept { return config_; }
  void set_loss_probability(double p) { config_.loss_probability = p; }

  /// Mirrors traffic counters into `registry` (lane 0; the simulated
  /// network is single-threaded) and emits one `net_drop` record per
  /// dropped message plus `net_outage` records on node/link state changes
  /// into `events`. Either pointer may be null; call before traffic flows.
  void attach_telemetry(telemetry::MetricsRegistry* registry,
                        telemetry::EventLog* events);

 private:
  static std::uint64_t link_key(NodeId a, NodeId b) noexcept;
  void count_drop(NodeId from, NodeId to, std::size_t size_bytes,
                  const char* reason);

  sim::Scheduler& scheduler_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<bool> node_up_;
  std::unordered_set<std::uint64_t> failed_links_;
  TrafficStats stats_;

  telemetry::EventLog* events_ = nullptr;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Counter m_sent_, m_delivered_, m_dropped_;
  telemetry::Counter m_bytes_sent_, m_bytes_delivered_, m_bytes_dropped_;
};

}  // namespace gt::net
