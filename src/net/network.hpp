// Simulated message-passing network.
//
// Gossip messages in GossipTrust travel over an unreliable network: the
// paper claims the protocol "does not require error recovery mechanisms"
// and "tolerates link failures", so the network model supports per-message
// loss, per-link outages, node up/down state, latency, network partitions,
// and duplication/corruption in transit (the knobs the fault-injection
// subsystem drives).
//
// Two send paths share one delivery core:
//   * send_pooled() — the fast path. The payload lives in a slab-recycled
//     MessagePool buffer and the sender provides plain function pointers
//     (deliver / drop / release) plus one context pointer, so an in-flight
//     message costs zero heap allocations in steady state and its scheduler
//     event captures just {network, handle, flag}.
//   * send() — the legacy closure API, kept as a thin wrapper: the two
//     std::functions ride in a single heap box that the pool's release hook
//     frees when the message retires. Semantics are unchanged.
// Both account message and byte counts for the overhead experiments, plus
// logical item counts so a batched wire message (one event, k triplets)
// still reports its k items to TrafficStats and telemetry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "net/message_pool.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "trace/trace.hpp"

namespace gt::net {

using NodeId = std::size_t;

/// Aggregate traffic counters, one per Network instance. Invariant (once
/// all in-flight messages have been drained by the scheduler):
///   messages_sent == messages_delivered + messages_dropped
///   items_sent    == items_delivered + items_dropped
///   bytes_sent    == bytes_delivered + bytes_dropped + in-flight bytes
/// messages_* count wire messages (a batch is one message); items_* count
/// the logical units the sender declared (e.g. gossip triplets in a batch),
/// so the two series reconcile batching against per-item accounting.
/// Duplicate copies are accounted separately (messages_duplicated /
/// duplicates_delivered) and never perturb the primary invariant.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;   ///< lost to link failure / dead node
  std::uint64_t messages_corrupted = 0; ///< subset of dropped: checksum fail
  std::uint64_t messages_duplicated = 0;   ///< extra copies created in transit
  std::uint64_t duplicates_delivered = 0;  ///< extra copies that landed
  std::uint64_t items_sent = 0;        ///< logical units across all messages
  std::uint64_t items_delivered = 0;
  std::uint64_t items_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t bytes_dropped = 0;      ///< payload of dropped messages
                                        ///< (send-time and delivery-time)

  double delivery_ratio() const noexcept {
    return messages_sent ? static_cast<double>(messages_delivered) /
                               static_cast<double>(messages_sent)
                         : 1.0;
  }

  void reset() { *this = TrafficStats{}; }
};

/// Network configuration knobs.
struct NetworkConfig {
  double loss_probability = 0.0;      ///< i.i.d. per-message drop probability
  double base_latency = 1.0;          ///< fixed propagation delay (sim time units)
  double jitter = 0.0;                ///< uniform extra delay in [0, jitter)
  double duplicate_probability = 0.0; ///< per-message chance of a second copy
  double corrupt_probability = 0.0;   ///< per-copy chance of in-transit corruption
};

/// Simulated network: connects node closures through the event scheduler.
class Network {
 public:
  using Handler = std::function<void()>;
  /// Delivery-time drop notification; `reason` is a static string
  /// ("receiver_down_in_flight", "partitioned_in_flight", "corrupted").
  using DropHandler = std::function<void(const char* reason)>;

  /// Pooled-path callbacks: plain function pointers sharing one context
  /// pointer, so registering them allocates nothing. The payload span is
  /// valid only for the duration of the call.
  using DeliverFn = void (*)(void* ctx, std::span<const std::byte> payload,
                             NodeId from, NodeId to);
  using DropFn = void (*)(void* ctx, std::span<const std::byte> payload,
                          NodeId from, NodeId to, const char* reason);
  using ReleaseFn = void (*)(void* ctx);

  /// Sink for one pooled message. `on_deliver` runs at delivery (possibly
  /// twice when a duplicate copy lands); `on_drop` runs instead for an
  /// in-flight loss (send-time drops are reported only by send_pooled()
  /// returning false, mirroring the closure API); `on_release` runs exactly
  /// once when the message's pool slot retires — after the last deliver or
  /// drop — and is the hook for freeing `ctx`.
  struct PooledSend {
    DeliverFn on_deliver = nullptr;
    DropFn on_drop = nullptr;
    ReleaseFn on_release = nullptr;
    void* ctx = nullptr;
  };

  Network(sim::Scheduler& scheduler, std::size_t num_nodes, NetworkConfig config,
          Rng rng);

  std::size_t num_nodes() const noexcept { return node_up_.size(); }

  /// Takes a recycled payload buffer of `bytes` writable bytes. Fill it via
  /// payload(), then pass the handle to send_pooled(), which assumes
  /// ownership (including on send-time drop).
  MsgHandle acquire_payload(std::size_t bytes) { return pool_.acquire(bytes); }
  std::span<std::byte> payload(MsgHandle h) { return pool_.payload(h); }

  /// Sends the pooled message `h` (accounted as `size_bytes` wire bytes and
  /// `items` logical units) from `from` to `to`. Returns true when the
  /// message was enqueued for delivery; false means it was dropped at send
  /// time — the payload is still readable until this call returns, but the
  /// handle is consumed either way. RNG draw order, scheduling order
  /// (duplicate copy before primary), latency model, counters, and tracing
  /// are identical to the closure path.
  bool send_pooled(NodeId from, NodeId to, std::size_t size_bytes,
                   std::uint32_t items, MsgHandle h, const PooledSend& sink,
                   const trace::TraceCtx& tctx = {});

  /// Sends a message of `size_bytes` from `from` to `to`; `on_deliver` runs
  /// at delivery time unless the message is dropped. Returns true when the
  /// message was enqueued for delivery (false = dropped at send time; the
  /// send-time drop is NOT reported through `on_drop`). `on_drop`, when
  /// non-null, runs instead of `on_deliver` if the enqueued message is lost
  /// in flight. A duplicated copy may additionally run `on_deliver` a
  /// second time; duplicate-copy losses are silent. When a trace sink is
  /// attached and `tctx.active()`, the hop's send and its outcome
  /// (deliver/drop) are recorded under the caller's span — purely
  /// observational, no scheduling or RNG impact.
  bool send(NodeId from, NodeId to, std::size_t size_bytes, Handler on_deliver,
            DropHandler on_drop = nullptr, const trace::TraceCtx& tctx = {});

  /// Marks a node down: messages to/from it are dropped.
  void set_node_up(NodeId node, bool up);
  bool is_node_up(NodeId node) const;

  /// Fails or heals a specific (unordered) link.
  void fail_link(NodeId a, NodeId b);
  void heal_link(NodeId a, NodeId b);
  bool link_failed(NodeId a, NodeId b) const;
  std::size_t failed_link_count() const noexcept { return failed_links_.size(); }

  /// Splits the network: `group_of_node[i]` is node i's partition group;
  /// traffic between different groups is dropped ("partitioned" at send
  /// time, "partitioned_in_flight" at delivery time). Must have exactly
  /// num_nodes() entries. clear_partition() heals the split.
  void set_partition(const std::vector<int>& group_of_node);
  void clear_partition();
  bool partitioned() const noexcept { return !partition_.empty(); }
  /// True when a and b are currently in different partition groups.
  bool cross_partition(NodeId a, NodeId b) const;

  const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// The payload pool (exposed for allocation-behaviour assertions: slab
  /// high-water mark, live count, freelist reuse).
  const MessagePool& pool() const noexcept { return pool_; }

  const NetworkConfig& config() const noexcept { return config_; }
  void set_loss_probability(double p) { config_.loss_probability = p; }
  void set_duplicate_probability(double p) { config_.duplicate_probability = p; }
  void set_corrupt_probability(double p) { config_.corrupt_probability = p; }

  /// Mirrors traffic counters into `registry` (lane 0; the simulated
  /// network is single-threaded) and emits one `net_drop` record per
  /// dropped message plus `net_outage` records on node/link/partition
  /// state changes into `events`. Either pointer may be null; call before
  /// traffic flows.
  void attach_telemetry(telemetry::MetricsRegistry* registry,
                        telemetry::EventLog* events);

  /// Records per-message hop spans into `sink` for sends that carry an
  /// active TraceCtx. Null detaches. Observational only.
  void attach_trace(trace::TraceSink* sink) { trace_ = sink; }

 private:
  /// Per-in-flight-message bookkeeping, parallel to the pool slab (indexed
  /// by slot). Valid while the slot is live; scheduler events carry only
  /// the generation-checked handle.
  struct InFlightMeta {
    PooledSend sink;
    trace::TraceCtx tctx;
    NodeId from = 0;
    NodeId to = 0;
    std::size_t size_bytes = 0;
    std::uint32_t items = 0;
    bool corrupt_primary = false;
    bool corrupt_dup = false;
  };

  static std::uint64_t link_key(NodeId a, NodeId b) noexcept;
  void check_node(NodeId node, const char* fn) const;
  void count_drop(NodeId from, NodeId to, std::size_t size_bytes,
                  std::uint32_t items, const char* reason);
  void trace_event(const trace::TraceCtx& tctx, trace::SpanKind kind,
                   NodeId node, NodeId peer, std::uint32_t flags, double value);
  void deliver_primary(MsgHandle h);
  void deliver_duplicate(MsgHandle h);
  /// Drops one pool reference; on retirement fires the sink's release hook.
  void finish(MsgHandle h, const PooledSend& sink);

  sim::Scheduler& scheduler_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<bool> node_up_;
  std::unordered_set<std::uint64_t> failed_links_;
  std::vector<int> partition_;  ///< empty = no partition
  TrafficStats stats_;
  MessagePool pool_;
  std::vector<InFlightMeta> meta_;  ///< slot-indexed, grown with the slab

  telemetry::EventLog* events_ = nullptr;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  trace::TraceSink* trace_ = nullptr;
  telemetry::Counter m_sent_, m_delivered_, m_dropped_;
  telemetry::Counter m_items_sent_, m_items_delivered_, m_items_dropped_;
  telemetry::Counter m_bytes_sent_, m_bytes_delivered_, m_bytes_dropped_;
};

}  // namespace gt::net
