// Simulated message-passing network.
//
// Gossip messages in GossipTrust travel over an unreliable network: the
// paper claims the protocol "does not require error recovery mechanisms"
// and "tolerates link failures", so the network model supports per-message
// loss, per-link outages, node up/down state, latency, network partitions,
// and duplication/corruption in transit (the knobs the fault-injection
// subsystem drives). Delivery is type-erased: senders pass a closure that
// the network invokes at delivery time, which keeps this layer independent
// of payload schemas while still accounting message and byte counts for
// the overhead experiments. An optional per-message drop closure tells the
// sender about delivery-time losses (in-flight receiver death, partition,
// corruption) that a bare `send(...) == false` cannot report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "trace/trace.hpp"

namespace gt::net {

using NodeId = std::size_t;

/// Aggregate traffic counters, one per Network instance. Invariant (once
/// all in-flight messages have been drained by the scheduler):
///   messages_sent == messages_delivered + messages_dropped
///   bytes_sent    == bytes_delivered + bytes_dropped + in-flight bytes
/// Duplicate copies are accounted separately (messages_duplicated /
/// duplicates_delivered) and never perturb the primary invariant.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;   ///< lost to link failure / dead node
  std::uint64_t messages_corrupted = 0; ///< subset of dropped: checksum fail
  std::uint64_t messages_duplicated = 0;   ///< extra copies created in transit
  std::uint64_t duplicates_delivered = 0;  ///< extra copies that landed
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t bytes_dropped = 0;      ///< payload of dropped messages
                                        ///< (send-time and delivery-time)

  double delivery_ratio() const noexcept {
    return messages_sent ? static_cast<double>(messages_delivered) /
                               static_cast<double>(messages_sent)
                         : 1.0;
  }

  void reset() { *this = TrafficStats{}; }
};

/// Network configuration knobs.
struct NetworkConfig {
  double loss_probability = 0.0;      ///< i.i.d. per-message drop probability
  double base_latency = 1.0;          ///< fixed propagation delay (sim time units)
  double jitter = 0.0;                ///< uniform extra delay in [0, jitter)
  double duplicate_probability = 0.0; ///< per-message chance of a second copy
  double corrupt_probability = 0.0;   ///< per-copy chance of in-transit corruption
};

/// Simulated network: connects node closures through the event scheduler.
class Network {
 public:
  using Handler = std::function<void()>;
  /// Delivery-time drop notification; `reason` is a static string
  /// ("receiver_down_in_flight", "partitioned_in_flight", "corrupted").
  using DropHandler = std::function<void(const char* reason)>;

  Network(sim::Scheduler& scheduler, std::size_t num_nodes, NetworkConfig config,
          Rng rng);

  std::size_t num_nodes() const noexcept { return node_up_.size(); }

  /// Sends a message of `size_bytes` from `from` to `to`; `on_deliver` runs
  /// at delivery time unless the message is dropped. Returns true when the
  /// message was enqueued for delivery (false = dropped at send time; the
  /// send-time drop is NOT reported through `on_drop`). `on_drop`, when
  /// non-null, runs instead of `on_deliver` if the enqueued message is lost
  /// in flight. A duplicated copy may additionally run `on_deliver` a
  /// second time; duplicate-copy losses are silent. When a trace sink is
  /// attached and `tctx.active()`, the hop's send and its outcome
  /// (deliver/drop) are recorded under the caller's span — purely
  /// observational, no scheduling or RNG impact.
  bool send(NodeId from, NodeId to, std::size_t size_bytes, Handler on_deliver,
            DropHandler on_drop = nullptr, const trace::TraceCtx& tctx = {});

  /// Marks a node down: messages to/from it are dropped.
  void set_node_up(NodeId node, bool up);
  bool is_node_up(NodeId node) const;

  /// Fails or heals a specific (unordered) link.
  void fail_link(NodeId a, NodeId b);
  void heal_link(NodeId a, NodeId b);
  bool link_failed(NodeId a, NodeId b) const;
  std::size_t failed_link_count() const noexcept { return failed_links_.size(); }

  /// Splits the network: `group_of_node[i]` is node i's partition group;
  /// traffic between different groups is dropped ("partitioned" at send
  /// time, "partitioned_in_flight" at delivery time). Must have exactly
  /// num_nodes() entries. clear_partition() heals the split.
  void set_partition(const std::vector<int>& group_of_node);
  void clear_partition();
  bool partitioned() const noexcept { return !partition_.empty(); }
  /// True when a and b are currently in different partition groups.
  bool cross_partition(NodeId a, NodeId b) const;

  const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(); }

  const NetworkConfig& config() const noexcept { return config_; }
  void set_loss_probability(double p) { config_.loss_probability = p; }
  void set_duplicate_probability(double p) { config_.duplicate_probability = p; }
  void set_corrupt_probability(double p) { config_.corrupt_probability = p; }

  /// Mirrors traffic counters into `registry` (lane 0; the simulated
  /// network is single-threaded) and emits one `net_drop` record per
  /// dropped message plus `net_outage` records on node/link/partition
  /// state changes into `events`. Either pointer may be null; call before
  /// traffic flows.
  void attach_telemetry(telemetry::MetricsRegistry* registry,
                        telemetry::EventLog* events);

  /// Records per-message hop spans into `sink` for sends that carry an
  /// active TraceCtx. Null detaches. Observational only.
  void attach_trace(trace::TraceSink* sink) { trace_ = sink; }

 private:
  static std::uint64_t link_key(NodeId a, NodeId b) noexcept;
  void check_node(NodeId node, const char* fn) const;
  void count_drop(NodeId from, NodeId to, std::size_t size_bytes,
                  const char* reason);
  void trace_event(const trace::TraceCtx& tctx, trace::SpanKind kind,
                   NodeId node, NodeId peer, std::uint32_t flags, double value);

  sim::Scheduler& scheduler_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<bool> node_up_;
  std::unordered_set<std::uint64_t> failed_links_;
  std::vector<int> partition_;  ///< empty = no partition
  TrafficStats stats_;

  telemetry::EventLog* events_ = nullptr;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  trace::TraceSink* trace_ = nullptr;
  telemetry::Counter m_sent_, m_delivered_, m_dropped_;
  telemetry::Counter m_bytes_sent_, m_bytes_delivered_, m_bytes_dropped_;
};

}  // namespace gt::net
