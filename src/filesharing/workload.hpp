// Query workload (paper section 6.4).
//
// "We rank the queries according to their popularity. We use a power law
// distribution with phi = 0.63 for queries ranked 1 to 250 and phi = 1.24
// for lower-ranking queries" — the measured Gnutella query popularity
// shape (flat head, steep tail). Query rank r maps to file id r, since
// files are indexed by popularity rank.
#pragma once

#include <cstddef>

#include "common/powerlaw.hpp"
#include "common/rng.hpp"
#include "filesharing/catalog.hpp"

namespace gt::filesharing {

struct WorkloadConfig {
  std::size_t num_files = 100000;
  std::size_t head_ranks = 250;   ///< ranks covered by the flat head segment
  double head_phi = 0.63;
  double tail_phi = 1.24;
};

class QueryWorkload {
 public:
  explicit QueryWorkload(const WorkloadConfig& config)
      : sampler_(config.num_files, config.head_ranks, config.head_phi,
                 config.tail_phi) {}

  /// Draws the file targeted by the next query.
  FileId sample(Rng& rng) const { return static_cast<FileId>(sampler_.sample(rng)); }

  /// Probability a query targets the file of the given rank.
  double pmf(std::size_t rank) const { return sampler_.pmf(rank); }

 private:
  TwoSegmentZipfSampler sampler_;
};

}  // namespace gt::filesharing
