#include "filesharing/catalog.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/powerlaw.hpp"

namespace gt::filesharing {

FileCatalog::FileCatalog(const CatalogConfig& config, Rng& rng) {
  if (config.num_peers == 0 || config.num_files == 0)
    throw std::invalid_argument("FileCatalog: peers and files must be positive");

  owners_.resize(config.num_files);
  peer_files_.resize(config.num_peers);

  // Saroiu-style sharing capacities -> replica placement weights.
  SaroiuFileCountSampler capacity_sampler;
  std::vector<double> cumulative(config.num_peers);
  double acc = 0.0;
  for (PeerId p = 0; p < config.num_peers; ++p) {
    acc += static_cast<double>(capacity_sampler.sample(rng));
    cumulative[p] = acc;
  }

  auto weighted_peer = [&](Rng& r) {
    const double u = r.next_double(0.0, acc);
    const auto it = std::upper_bound(cumulative.begin(), cumulative.end(), u);
    return static_cast<PeerId>(std::min<std::size_t>(
        static_cast<std::size_t>(it - cumulative.begin()), config.num_peers - 1));
  };

  // Replica counts: more popular files (smaller rank) get more copies, so
  // we sort sampled counts descending and assign by rank.
  BoundedParetoSampler copies_sampler(config.copies_phi,
                                      std::min(config.max_copies, config.num_peers));
  std::vector<std::size_t> copies(config.num_files);
  for (auto& c : copies) c = copies_sampler.sample(rng);
  std::sort(copies.begin(), copies.end(), std::greater<>());

  for (FileId f = 0; f < config.num_files; ++f) {
    auto& file_owners = owners_[f];
    std::size_t placed = 0;
    std::size_t guard = 0;
    while (placed < copies[f] && guard < copies[f] * 20 + 50) {
      const PeerId p = weighted_peer(rng);
      ++guard;
      if (peer_files_[p].insert(f).second) {
        file_owners.push_back(p);
        ++placed;
        ++total_replicas_;
      }
    }
  }
}

}  // namespace gt::filesharing
