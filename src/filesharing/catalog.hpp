// File catalog for the P2P file-sharing workload (paper section 6.4).
//
// "There are over 100,000 files simulated in these experiments. The number
// of copies of each file is determined by a Power-law distribution with a
// popularity rate phi = 1.2. Each peer is assigned with a number of files
// based on the Saroiu distribution."
//
// Files are identified by their popularity rank (file 0 = most popular).
// Replica counts follow a bounded Pareto(phi); replicas are placed on
// peers drawn with probability proportional to each peer's Saroiu-sampled
// sharing capacity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"

namespace gt::filesharing {

using FileId = std::uint32_t;
using PeerId = std::size_t;

struct CatalogConfig {
  std::size_t num_peers = 1000;
  std::size_t num_files = 100000;
  double copies_phi = 1.2;         ///< popularity rate of the replica power law
  std::size_t max_copies = 100;    ///< bound on replicas of one file
};

class FileCatalog {
 public:
  FileCatalog(const CatalogConfig& config, Rng& rng);

  std::size_t num_files() const noexcept { return owners_.size(); }
  std::size_t num_peers() const noexcept { return peer_files_.size(); }

  /// All peers holding a replica of `file` (unordered).
  const std::vector<PeerId>& owners(FileId file) const { return owners_[file]; }

  bool has_file(PeerId peer, FileId file) const {
    return peer_files_[peer].count(file) != 0;
  }

  std::size_t files_on_peer(PeerId peer) const { return peer_files_[peer].size(); }

  /// Total replicas across all files.
  std::size_t total_replicas() const noexcept { return total_replicas_; }

 private:
  std::vector<std::vector<PeerId>> owners_;             // by FileId
  std::vector<std::unordered_set<FileId>> peer_files_;  // by PeerId
  std::size_t total_replicas_ = 0;
};

}  // namespace gt::filesharing
