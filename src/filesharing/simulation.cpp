#include "filesharing/simulation.hpp"

#include <algorithm>
#include <stdexcept>

#include "overlay/flood.hpp"

namespace gt::filesharing {

SharingSimulation::SharingSimulation(const SimulationConfig& config,
                                     const FileCatalog& catalog,
                                     const QueryWorkload& workload,
                                     overlay::OverlayManager& overlay,
                                     const std::vector<threat::PeerProfile>& peers,
                                     ScoreProvider score_provider)
    : config_(config),
      catalog_(&catalog),
      workload_(&workload),
      overlay_(&overlay),
      peers_(&peers),
      score_provider_(std::move(score_provider)),
      ledger_(peers.size()),
      rating_(threat::threat_rating(peers)),
      scores_(peers.size(), 1.0 / static_cast<double>(peers.size())) {
  if (catalog.num_peers() != peers.size() || overlay.num_nodes() != peers.size())
    throw std::invalid_argument("SharingSimulation: component size mismatch");
  if (config_.queries_per_refresh == 0)
    throw std::invalid_argument("SharingSimulation: refresh period must be positive");
}

void SharingSimulation::refresh_scores(Rng& rng) {
  if (!score_provider_) return;
  const auto s = ledger_.normalized_matrix();
  scores_ = score_provider_(s, rng);
  if (scores_.size() != peers_->size())
    throw std::runtime_error("SharingSimulation: score provider size mismatch");
}

SimulationStats SharingSimulation::run(Rng& rng) {
  SimulationStats stats;
  std::size_t window_queries = 0;
  std::size_t window_authentic = 0;

  for (std::size_t q = 0; q < config_.total_queries; ++q) {
    // 1. A random alive peer issues the next query.
    const auto alive = overlay_->alive_nodes();
    if (alive.empty()) break;
    const PeerId requester = alive[rng.next_below(alive.size())];
    const FileId file = workload_->sample(rng);
    ++stats.queries;
    ++window_queries;

    // 2. Flood the query; responders are reached peers holding the file.
    overlay::FloodResult flood_stats;
    auto responders = overlay::flood_query(
        *overlay_, requester, config_.flood_ttl,
        [&](overlay::NodeId v) {
          return v != requester && catalog_->has_file(v, static_cast<FileId>(file));
        },
        &flood_stats);
    stats.flood_messages += flood_stats.messages;

    if (responders.empty()) {
      ++stats.misses;
    } else {
      ++stats.hits;
      // 3. Provider selection: reputation-ranked or random.
      PeerId provider = responders.front();
      if (config_.policy == SelectionPolicy::kHighestReputation) {
        double best = -1.0;
        for (const PeerId r : responders) {
          if (scores_[r] > best) {
            best = scores_[r];
            provider = r;
          }
        }
      } else {
        provider = responders[rng.next_below(responders.size())];
      }

      // 4. Download outcome: authentic with the provider's intrinsic
      // service quality (inversely related to maliciousness).
      const bool authentic = rng.next_bool((*peers_)[provider].service_quality);
      if (authentic) {
        ++stats.authentic;
        ++window_authentic;
      } else {
        ++stats.inauthentic;
      }

      // 5. The requester rates the provider through its own rating policy.
      const double outcome = authentic ? 1.0 : 0.0;
      ledger_.record(requester, provider, rating_(requester, provider, outcome));
    }

    // 6. Periodic global reputation refresh.
    if ((q + 1) % config_.queries_per_refresh == 0) {
      refresh_scores(rng);
      ++stats.refreshes;
      stats.success_per_window.push_back(
          window_queries ? static_cast<double>(window_authentic) /
                               static_cast<double>(window_queries)
                         : 0.0);
      window_queries = 0;
      window_authentic = 0;
    }
  }
  if (window_queries > 0) {
    stats.success_per_window.push_back(static_cast<double>(window_authentic) /
                                       static_cast<double>(window_queries));
  }
  return stats;
}

}  // namespace gt::filesharing
