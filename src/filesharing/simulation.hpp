// The P2P file-sharing benchmark application (paper section 6.4, Fig. 5).
//
// Per query step: a random alive peer issues a query for a file drawn from
// the Gnutella-shaped popularity workload; the query floods the overlay; a
// provider is selected from the responders — highest global reputation
// under GossipTrust, uniformly random under NoTrust; the provider serves
// an authentic file with probability equal to its intrinsic service
// quality (malicious peers mostly serve corrupted files — "this rate is
// modeled inversely proportional to node's global reputation"); the
// requester rates the provider according to its own (possibly malicious)
// rating policy. "The system updates global reputation scores at all
// sites after 1,000 queries" — the refresh hook re-aggregates from the
// accumulated ledger through any score provider (gossip engine, exact
// baseline, or NoTrust's uniform scores).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "filesharing/catalog.hpp"
#include "filesharing/workload.hpp"
#include "overlay/overlay.hpp"
#include "threat/models.hpp"
#include "trust/feedback.hpp"

namespace gt::filesharing {

/// Provider-selection policies under test.
enum class SelectionPolicy {
  kHighestReputation,  ///< GossipTrust: pick the top-scored responder
  kRandom,             ///< NoTrust: pick any responder uniformly
};

/// Computes fresh global scores from the current feedback matrix.
using ScoreProvider =
    std::function<std::vector<double>(const trust::SparseMatrix&, Rng&)>;

struct SimulationConfig {
  std::size_t queries_per_refresh = 1000;  ///< paper: update after 1,000 queries
  std::size_t total_queries = 10000;
  std::size_t flood_ttl = 7;               ///< Gnutella default TTL
  SelectionPolicy policy = SelectionPolicy::kHighestReputation;
};

struct SimulationStats {
  std::size_t queries = 0;
  std::size_t hits = 0;          ///< queries with at least one responder
  std::size_t authentic = 0;     ///< successful (authentic) downloads
  std::size_t inauthentic = 0;   ///< corrupted downloads
  std::size_t misses = 0;        ///< no responder found
  std::size_t refreshes = 0;     ///< reputation refresh rounds executed
  std::uint64_t flood_messages = 0;
  std::vector<double> success_per_window;  ///< success rate per refresh window

  /// Paper's query success rate: authentic downloads / queries issued.
  double success_rate() const {
    return queries ? static_cast<double>(authentic) / static_cast<double>(queries)
                   : 0.0;
  }
};

/// Drives the file-sharing workload against a reputation system.
class SharingSimulation {
 public:
  SharingSimulation(const SimulationConfig& config, const FileCatalog& catalog,
                    const QueryWorkload& workload, overlay::OverlayManager& overlay,
                    const std::vector<threat::PeerProfile>& peers,
                    ScoreProvider score_provider);

  /// Runs config.total_queries query steps; returns accumulated stats.
  SimulationStats run(Rng& rng);

  /// Current global scores (uniform until the first refresh).
  const std::vector<double>& scores() const noexcept { return scores_; }

  const trust::FeedbackLedger& ledger() const noexcept { return ledger_; }

 private:
  void refresh_scores(Rng& rng);

  SimulationConfig config_;
  const FileCatalog* catalog_;
  const QueryWorkload* workload_;
  overlay::OverlayManager* overlay_;
  const std::vector<threat::PeerProfile>* peers_;
  ScoreProvider score_provider_;
  trust::FeedbackLedger ledger_;
  trust::RatingFunction rating_;
  std::vector<double> scores_;
};

}  // namespace gt::filesharing
