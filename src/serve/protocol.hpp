// serve wire protocol: a compact length-prefixed binary format.
//
// Every frame is an 8-byte little-endian header followed by a payload:
//
//   offset 0  u32  payload_len   bytes after the header (<= kMaxPayload)
//   offset 4  u8   opcode
//   offset 5  u8   version       must be kProtocolVersion (1)
//   offset 6  u16  reserved      must be 0
//
// Request payloads:
//   LOOKUP        (0x01)  u64 node_id
//   BATCH_LOOKUP  (0x02)  u32 count; u32 pad(0); count x u64 node_id
//   INGEST        (0x03)  u64 rater; u64 ratee; f64 value
//   STATS         (0x04)  (empty)
//
// Response opcode = request opcode | 0x80:
//   LOOKUP_R      (0x81)  u64 epoch; f64 score          (epoch 0 = miss)
//   BATCH_R       (0x82)  u32 count; u32 pad; count x {u64 epoch; f64 score}
//   INGEST_R      (0x83)  u64 total_ingested
//   STATS_R       (0x84)  8 x u64 (see StatsPayload)
//
// Malformed input — bad version, nonzero reserved bits, unknown opcode,
// oversized or inconsistent lengths — is a protocol error: the peer closes
// the connection loudly (counted + logged), it never guesses. All multi-
// byte values are little-endian; encode/decode goes through memcpy so the
// parser is free of alignment/aliasing UB and never reads past the buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace gt::serve {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 8;
inline constexpr std::size_t kMaxPayload = 1u << 20;  ///< 1 MiB
/// Batch key cap. The *response* carries 16 bytes per key ({epoch, score})
/// against the request's 8, so it is the binding constraint: a larger count
/// would make the server emit a header that exceeds kMaxPayload and that a
/// compliant client must reject as malformed.
inline constexpr std::size_t kMaxBatch = (kMaxPayload - 8) / 16;
static_assert(8 + 8 * kMaxBatch <= kMaxPayload,
              "max batch request must fit in kMaxPayload");
static_assert(8 + 16 * kMaxBatch <= kMaxPayload,
              "max batch response must fit in kMaxPayload");

enum class Op : std::uint8_t {
  kLookup = 0x01,
  kBatchLookup = 0x02,
  kIngest = 0x03,
  kStats = 0x04,
  kLookupResp = 0x81,
  kBatchLookupResp = 0x82,
  kIngestResp = 0x83,
  kStatsResp = 0x84,
};

struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t opcode = 0;
  std::uint8_t version = kProtocolVersion;
  std::uint16_t reserved = 0;
};

/// Fixed order of the STATS_R counters (8 x u64 on the wire).
struct StatsPayload {
  std::uint64_t lookups = 0;
  std::uint64_t batch_lookups = 0;
  std::uint64_t batch_keys = 0;
  std::uint64_t ingests = 0;
  std::uint64_t stats_requests = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t published_epoch = 0;
  std::uint64_t ingest_pending = 0;
};
inline constexpr std::size_t kStatsPayloadSize = 8 * sizeof(std::uint64_t);

// --- primitive little-endian codecs (memcpy: no alignment/aliasing UB) ------

inline void put_u16(std::uint8_t* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
inline void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
inline void put_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
inline void put_f64(std::uint8_t* p, double v) { std::memcpy(p, &v, 8); }
inline std::uint16_t get_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
inline double get_f64(const std::uint8_t* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Writes a frame header into `p` (which must hold kHeaderSize bytes).
void encode_header(std::uint8_t* p, Op op, std::uint32_t payload_len);

/// Parses a header. Returns false (protocol error) on bad version, nonzero
/// reserved bits, or payload_len > kMaxPayload.
bool decode_header(const std::uint8_t* p, FrameHeader* out);

// --- request encoders (append to `out`; used by clients and tests) ----------

void encode_lookup(std::vector<std::uint8_t>& out, std::uint64_t node);
void encode_batch_lookup(std::vector<std::uint8_t>& out,
                         const std::uint64_t* nodes, std::size_t count);
void encode_ingest(std::vector<std::uint8_t>& out, std::uint64_t rater,
                   std::uint64_t ratee, double value);
void encode_stats(std::vector<std::uint8_t>& out);

// --- response encoders (used by the server) ---------------------------------

void encode_lookup_resp(std::vector<std::uint8_t>& out, std::uint64_t epoch,
                        double score);
/// Begins a batch response; returns the offset where entries start. Append
/// `count` entries with append_batch_entry, in order.
std::size_t encode_batch_resp_header(std::vector<std::uint8_t>& out,
                                     std::uint32_t count);
void append_batch_entry(std::vector<std::uint8_t>& out, std::uint64_t epoch,
                        double score);
void encode_ingest_resp(std::vector<std::uint8_t>& out,
                        std::uint64_t total_ingested);
void encode_stats_resp(std::vector<std::uint8_t>& out, const StatsPayload& s);

// --- response decoders (client side; return false on malformed) -------------

struct LookupResp {
  std::uint64_t epoch = 0;
  double score = 0.0;
};
bool decode_lookup_resp(const std::uint8_t* payload, std::size_t len,
                        LookupResp* out);
/// Batch payload: writes entry count to *count and returns a pointer to the
/// first 16-byte {epoch, score} entry, or nullptr on malformed.
const std::uint8_t* decode_batch_resp(const std::uint8_t* payload,
                                      std::size_t len, std::uint32_t* count);
bool decode_ingest_resp(const std::uint8_t* payload, std::size_t len,
                        std::uint64_t* total);
bool decode_stats_resp(const std::uint8_t* payload, std::size_t len,
                       StatsPayload* out);

/// Incremental frame splitter: feed bytes, pull complete frames. Holds one
/// partial frame at most; the accumulation buffer is reused, so steady-state
/// parsing does not allocate.
class FrameParser {
 public:
  /// One complete frame, pointing into the parser's buffer (or the caller's
  /// input when a frame arrived whole). Valid until the next feed() call.
  struct Frame {
    FrameHeader header;
    const std::uint8_t* payload = nullptr;
  };

  /// Appends input bytes. Returns false on a malformed header (protocol
  /// error: the connection must be closed). Complete frames are delivered
  /// through next().
  bool feed(const std::uint8_t* data, std::size_t len);

  /// Pops the next complete frame; returns false when more bytes are
  /// needed — or on a malformed header, distinguishable via error().
  bool next(Frame* out);

  /// True once a malformed header was seen; the parser is then dead and
  /// the connection must be closed.
  bool error() const noexcept { return error_; }

  /// Bytes currently buffered (diagnostics).
  std::size_t buffered() const noexcept { return buf_.size() - consumed_; }

 private:
  bool header_ok(const std::uint8_t* p);

  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  ///< bytes of buf_ already delivered
  bool error_ = false;
};

}  // namespace gt::serve
