// serve wire protocol: a compact length-prefixed binary format.
//
// Every frame is an 8-byte little-endian header followed by a payload:
//
//   offset 0  u32  payload_len   bytes after the header (<= kMaxPayload)
//   offset 4  u8   opcode
//   offset 5  u8   version       must be kProtocolVersion (1)
//   offset 6  u16  reserved      must be 0
//
// Request payloads:
//   LOOKUP        (0x01)  u64 node_id
//   BATCH_LOOKUP  (0x02)  u32 count; u32 pad(0); count x u64 node_id
//   INGEST        (0x03)  u64 rater; u64 ratee; f64 value
//   STATS         (0x04)  (empty)
//   METRICS       (0x05)  (empty)
//   HEALTH        (0x06)  (empty)
//
// Response opcode = request opcode | 0x80:
//   LOOKUP_R      (0x81)  u64 epoch; f64 score          (epoch 0 = miss)
//   BATCH_R       (0x82)  u32 count; u32 pad; count x {u64 epoch; f64 score}
//   INGEST_R      (0x83)  u64 total_ingested
//   STATS_R       (0x84)  12 x u64 (see StatsPayload)
//   METRICS_R     (0x85)  versioned self-describing snapshot (MetricsPayload):
//                         u32 version; u32 counter_count; u32 hist_count;
//                         u32 reserved(0); counter_count x u64 counters in the
//                         fixed metrics_counter_name() order; then hist_count
//                         histogram blocks in the metrics_histogram_name()
//                         order, each: f64 bucket_min; f64 growth; u64 count;
//                         f64 sum; f64 min; f64 max; u32 n_buckets;
//                         u32 reserved(0); n_buckets x u64 bucket counts
//                         (buckets[0] = underflow, buckets back = overflow).
//   HEALTH_R      (0x86)  fold-loop introspection (HealthPayload):
//                         u32 version; u32 flags; u64 published_epoch;
//                         u64 ingest_backlog; u64 ingest_enqueued;
//                         u64 staleness_frames; f64 staleness_seconds;
//                         u64 refolds; f64 mass_gap; f64 last_fold_seconds;
//                         f64 uptime_seconds
//
// METRICS and HEALTH carry their own version word (kMetricsVersion /
// kHealthVersion) independent of the frame-level kProtocolVersion, so the
// snapshot layout can evolve without a flag-day protocol bump: counts are
// explicit on the wire and a decoder accepts snapshots with *more* counters
// or histograms than it knows names for (trailing entries are preserved but
// unnamed).
//
// Malformed input — bad version, nonzero reserved bits, unknown opcode,
// oversized or inconsistent lengths — is a protocol error: the peer closes
// the connection loudly (counted + logged), it never guesses. All multi-
// byte values are little-endian; encode/decode goes through memcpy so the
// parser is free of alignment/aliasing UB and never reads past the buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace gt::serve {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 8;
inline constexpr std::size_t kMaxPayload = 1u << 20;  ///< 1 MiB
/// Batch key cap. The *response* carries 16 bytes per key ({epoch, score})
/// against the request's 8, so it is the binding constraint: a larger count
/// would make the server emit a header that exceeds kMaxPayload and that a
/// compliant client must reject as malformed.
inline constexpr std::size_t kMaxBatch = (kMaxPayload - 8) / 16;
static_assert(8 + 8 * kMaxBatch <= kMaxPayload,
              "max batch request must fit in kMaxPayload");
static_assert(8 + 16 * kMaxBatch <= kMaxPayload,
              "max batch response must fit in kMaxPayload");

enum class Op : std::uint8_t {
  kLookup = 0x01,
  kBatchLookup = 0x02,
  kIngest = 0x03,
  kStats = 0x04,
  kMetrics = 0x05,
  kHealth = 0x06,
  kLookupResp = 0x81,
  kBatchLookupResp = 0x82,
  kIngestResp = 0x83,
  kStatsResp = 0x84,
  kMetricsResp = 0x85,
  kHealthResp = 0x86,
};

struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t opcode = 0;
  std::uint8_t version = kProtocolVersion;
  std::uint16_t reserved = 0;
};

/// Fixed order of the STATS_R counters (12 x u64 on the wire). Fields 0-7
/// predate the observability plane and keep their original offsets; fields
/// 8-11 (backpressure + store reclamation) were appended in PR 9 — a client
/// reading only the first 64 bytes still decodes the original eight.
struct StatsPayload {
  std::uint64_t lookups = 0;
  std::uint64_t batch_lookups = 0;
  std::uint64_t batch_keys = 0;
  std::uint64_t ingests = 0;
  std::uint64_t stats_requests = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t published_epoch = 0;
  std::uint64_t ingest_pending = 0;
  std::uint64_t bp_pauses = 0;            ///< reads paused (tx over high water)
  std::uint64_t bp_resumes = 0;           ///< reads resumed (tx under low water)
  std::uint64_t snapshots_reclaimed = 0;  ///< retired store snapshots freed
  std::uint64_t limbo_size = 0;           ///< retired snapshots awaiting readers
};
inline constexpr std::size_t kStatsPayloadFields = 12;
inline constexpr std::size_t kStatsPayloadSize =
    kStatsPayloadFields * sizeof(std::uint64_t);

// --- METRICS (0x05) snapshot ------------------------------------------------

inline constexpr std::uint32_t kMetricsVersion = 1;

/// Fixed counter order of a version-1 METRICS snapshot. The wire carries the
/// values only; names live here so every consumer (handler, repload --watch,
/// tests, report.py docs) agrees on the indexing.
enum class MetricsCounter : std::size_t {
  kLookups = 0,
  kBatchLookups,
  kBatchKeys,
  kIngests,
  kStatsRequests,
  kMetricsRequests,
  kHealthRequests,
  kProtoErrors,
  kFrames,
  kBytesIn,
  kBytesOut,
  kLookupBytes,   ///< request frame bytes, LOOKUP only
  kBatchBytes,    ///< request frame bytes, BATCH_LOOKUP only
  kIngestBytes,   ///< request frame bytes, INGEST only
  kConnsOpened,
  kConnsClosed,
  kBpPauses,
  kBpResumes,
  kSlowFrames,
  kPublishedEpoch,
  kIngestPending,
  kIngestEnqueued,
  kSnapshotsLive,
  kSnapshotsReclaimed,
  kLimboSize,
  kLogLinesDropped,
  kLogRecords,
  kCount,  // sentinel
};
inline constexpr std::size_t kMetricsCounterCount =
    static_cast<std::size_t>(MetricsCounter::kCount);

/// Canonical name of a version-1 METRICS counter (nullptr past the end).
const char* metrics_counter_name(std::size_t index);

/// Fixed histogram order of a version-1 METRICS snapshot.
inline constexpr std::size_t kMetricsHistogramCount = 3;

/// Canonical name of a version-1 METRICS histogram (nullptr past the end):
/// 0 = lookup_seconds, 1 = batch_seconds, 2 = ingest_seconds.
const char* metrics_histogram_name(std::size_t index);

/// One latency histogram inside a METRICS snapshot. `buckets[0]` is the
/// underflow bin, `buckets.back()` the overflow bin; interior bucket i
/// covers [bucket_min * growth^(i-1), bucket_min * growth^i).
struct MetricsHistogram {
  double bucket_min = 0.0;
  double growth = 0.0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;

  /// Upper-edge percentile estimate from the log buckets (same math as
  /// scripts/report.py); exact max at the overflow bin, NaN when empty.
  double percentile(double pct) const noexcept;
};

/// Decoded METRICS_R snapshot. Encoding is exact: decode(encode(p)) == p
/// and re-encoding a decoded payload reproduces the input bytes, which the
/// byte-stability tests pin.
struct MetricsPayload {
  std::uint32_t version = kMetricsVersion;
  std::vector<std::uint64_t> counters;   ///< metrics_counter_name() order
  std::vector<MetricsHistogram> hists;   ///< metrics_histogram_name() order

  std::uint64_t counter(MetricsCounter c) const noexcept {
    const std::size_t i = static_cast<std::size_t>(c);
    return i < counters.size() ? counters[i] : 0;
  }
};

// --- HEALTH (0x06) fold-loop introspection ----------------------------------

inline constexpr std::uint32_t kHealthVersion = 1;

/// HealthPayload.flags bits.
inline constexpr std::uint32_t kHealthFlagConverged = 1u << 0;
inline constexpr std::uint32_t kHealthFlagDegraded = 1u << 1;
/// Set when a fold loop (tools/repserved) is actually feeding the health
/// state; a bare serve::Server answers HEALTH with this bit clear and only
/// the store-derived fields populated.
inline constexpr std::uint32_t kHealthFlagFoldLoop = 1u << 2;

struct HealthPayload {
  std::uint32_t version = kHealthVersion;
  std::uint32_t flags = 0;
  std::uint64_t published_epoch = 0;
  std::uint64_t ingest_backlog = 0;    ///< feedbacks queued, not yet drained
  std::uint64_t ingest_enqueued = 0;   ///< total feedbacks ever accepted
  std::uint64_t staleness_frames = 0;  ///< ingested but not yet republished
  double staleness_seconds = 0.0;      ///< wall time since the lag started
  std::uint64_t refolds = 0;           ///< re-aggregation count
  double mass_gap = 0.0;               ///< |sum(published scores) - 1|
  double last_fold_seconds = 0.0;      ///< wall cost of the last re-aggregation
  double uptime_seconds = 0.0;

  bool converged() const noexcept { return (flags & kHealthFlagConverged) != 0; }
  bool degraded() const noexcept { return (flags & kHealthFlagDegraded) != 0; }
  bool fold_loop() const noexcept { return (flags & kHealthFlagFoldLoop) != 0; }
};
inline constexpr std::size_t kHealthPayloadSize = 4 + 4 + 8 * 4 + 8 + 8 + 8 + 8 + 8;

// --- primitive little-endian codecs (memcpy: no alignment/aliasing UB) ------

inline void put_u16(std::uint8_t* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
inline void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
inline void put_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
inline void put_f64(std::uint8_t* p, double v) { std::memcpy(p, &v, 8); }
inline std::uint16_t get_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
inline double get_f64(const std::uint8_t* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Writes a frame header into `p` (which must hold kHeaderSize bytes).
void encode_header(std::uint8_t* p, Op op, std::uint32_t payload_len);

/// Parses a header. Returns false (protocol error) on bad version, nonzero
/// reserved bits, or payload_len > kMaxPayload.
bool decode_header(const std::uint8_t* p, FrameHeader* out);

// --- request encoders (append to `out`; used by clients and tests) ----------

void encode_lookup(std::vector<std::uint8_t>& out, std::uint64_t node);
void encode_batch_lookup(std::vector<std::uint8_t>& out,
                         const std::uint64_t* nodes, std::size_t count);
void encode_ingest(std::vector<std::uint8_t>& out, std::uint64_t rater,
                   std::uint64_t ratee, double value);
void encode_stats(std::vector<std::uint8_t>& out);
void encode_metrics(std::vector<std::uint8_t>& out);
void encode_health(std::vector<std::uint8_t>& out);

// --- response encoders (used by the server) ---------------------------------

void encode_lookup_resp(std::vector<std::uint8_t>& out, std::uint64_t epoch,
                        double score);
/// Begins a batch response; returns the offset where entries start. Append
/// `count` entries with append_batch_entry, in order.
std::size_t encode_batch_resp_header(std::vector<std::uint8_t>& out,
                                     std::uint32_t count);
void append_batch_entry(std::vector<std::uint8_t>& out, std::uint64_t epoch,
                        double score);
void encode_ingest_resp(std::vector<std::uint8_t>& out,
                        std::uint64_t total_ingested);
void encode_stats_resp(std::vector<std::uint8_t>& out, const StatsPayload& s);
void encode_metrics_resp(std::vector<std::uint8_t>& out,
                         const MetricsPayload& m);
void encode_health_resp(std::vector<std::uint8_t>& out, const HealthPayload& h);

// --- response decoders (client side; return false on malformed) -------------

struct LookupResp {
  std::uint64_t epoch = 0;
  double score = 0.0;
};
bool decode_lookup_resp(const std::uint8_t* payload, std::size_t len,
                        LookupResp* out);
/// Batch payload: writes entry count to *count and returns a pointer to the
/// first 16-byte {epoch, score} entry, or nullptr on malformed.
const std::uint8_t* decode_batch_resp(const std::uint8_t* payload,
                                      std::size_t len, std::uint32_t* count);
bool decode_ingest_resp(const std::uint8_t* payload, std::size_t len,
                        std::uint64_t* total);
bool decode_stats_resp(const std::uint8_t* payload, std::size_t len,
                       StatsPayload* out);
/// Strict structural decode: every length word must be consistent with
/// `len`, truncated or trailing bytes are malformed. Tolerates counter /
/// histogram counts beyond the version-1 named set (forward compatibility)
/// but enforces the version word.
bool decode_metrics_resp(const std::uint8_t* payload, std::size_t len,
                         MetricsPayload* out);
bool decode_health_resp(const std::uint8_t* payload, std::size_t len,
                        HealthPayload* out);

/// Incremental frame splitter: feed bytes, pull complete frames. Holds one
/// partial frame at most; the accumulation buffer is reused, so steady-state
/// parsing does not allocate.
class FrameParser {
 public:
  /// One complete frame, pointing into the parser's buffer (or the caller's
  /// input when a frame arrived whole). Valid until the next feed() call.
  struct Frame {
    FrameHeader header;
    const std::uint8_t* payload = nullptr;
  };

  /// Appends input bytes. Returns false on a malformed header (protocol
  /// error: the connection must be closed). Complete frames are delivered
  /// through next().
  bool feed(const std::uint8_t* data, std::size_t len);

  /// Pops the next complete frame; returns false when more bytes are
  /// needed — or on a malformed header, distinguishable via error().
  bool next(Frame* out);

  /// True once a malformed header was seen; the parser is then dead and
  /// the connection must be closed.
  bool error() const noexcept { return error_; }

  /// Bytes currently buffered (diagnostics).
  std::size_t buffered() const noexcept { return buf_.size() - consumed_; }

 private:
  bool header_ok(const std::uint8_t* p);

  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  ///< bytes of buf_ already delivered
  bool error_ = false;
};

}  // namespace gt::serve
