#include "serve/loopback.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace gt::serve {

namespace {
[[noreturn]] void die(const char* msg) {
  std::fprintf(stderr, "serve::LoopbackClient: %s\n", msg);
  std::abort();
}
}  // namespace

LoopbackClient::LoopbackClient(ReputationStore& store, ServeMetrics& metrics,
                               std::size_t lane, std::size_t chunk,
                               const ServeObservability* obs)
    : handler_(store, metrics, lane, obs), chunk_(chunk) {}

bool LoopbackClient::send_raw(const std::uint8_t* data, std::size_t len) {
  if (closed_) return false;
  if (chunk_ == 0) {
    if (!handler_.on_bytes(data, len, rx_)) closed_ = true;
  } else {
    for (std::size_t off = 0; off < len && !closed_; off += chunk_) {
      const std::size_t n = std::min(chunk_, len - off);
      if (!handler_.on_bytes(data + off, n, rx_)) closed_ = true;
    }
    if (len == 0 && !handler_.on_bytes(data, 0, rx_)) closed_ = true;
  }
  return !closed_;
}

void LoopbackClient::clear_received() {
  rx_.clear();
  resp_parser_ = FrameParser();
}

FrameParser::Frame LoopbackClient::round_trip() {
  if (closed_) die("request on a closed connection");
  const std::size_t rx_before = rx_.size();
  if (!send_raw(tx_.data(), tx_.size())) die("server closed on a valid request");
  tx_.clear();
  if (!resp_parser_.feed(rx_.data() + rx_before, rx_.size() - rx_before))
    die("malformed response header");
  FrameParser::Frame frame;
  if (!resp_parser_.next(&frame)) die("incomplete response frame");
  return frame;
}

LookupResp LoopbackClient::lookup(std::uint64_t node) {
  encode_lookup(tx_, node);
  const FrameParser::Frame f = round_trip();
  LookupResp r;
  if (static_cast<Op>(f.header.opcode) != Op::kLookupResp ||
      !decode_lookup_resp(f.payload, f.header.payload_len, &r))
    die("bad LOOKUP response");
  return r;
}

std::vector<LookupResp> LoopbackClient::batch_lookup(
    const std::vector<std::uint64_t>& ids) {
  encode_batch_lookup(tx_, ids.data(), ids.size());
  const FrameParser::Frame f = round_trip();
  std::uint32_t count = 0;
  const std::uint8_t* entries = nullptr;
  if (static_cast<Op>(f.header.opcode) != Op::kBatchLookupResp ||
      (entries = decode_batch_resp(f.payload, f.header.payload_len, &count)) ==
          nullptr ||
      count != ids.size())
    die("bad BATCH_LOOKUP response");
  std::vector<LookupResp> out(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out[i].epoch = get_u64(entries + 16 * i);
    out[i].score = get_f64(entries + 16 * i + 8);
  }
  return out;
}

std::uint64_t LoopbackClient::ingest(std::uint64_t rater, std::uint64_t ratee,
                                     double value) {
  encode_ingest(tx_, rater, ratee, value);
  const FrameParser::Frame f = round_trip();
  std::uint64_t total = 0;
  if (static_cast<Op>(f.header.opcode) != Op::kIngestResp ||
      !decode_ingest_resp(f.payload, f.header.payload_len, &total))
    die("bad INGEST response");
  return total;
}

StatsPayload LoopbackClient::stats() {
  encode_stats(tx_);
  const FrameParser::Frame f = round_trip();
  StatsPayload s;
  if (static_cast<Op>(f.header.opcode) != Op::kStatsResp ||
      !decode_stats_resp(f.payload, f.header.payload_len, &s))
    die("bad STATS response");
  return s;
}

MetricsPayload LoopbackClient::metrics() {
  encode_metrics(tx_);
  const FrameParser::Frame f = round_trip();
  MetricsPayload m;
  if (static_cast<Op>(f.header.opcode) != Op::kMetricsResp ||
      !decode_metrics_resp(f.payload, f.header.payload_len, &m))
    die("bad METRICS response");
  return m;
}

HealthPayload LoopbackClient::health() {
  encode_health(tx_);
  const FrameParser::Frame f = round_trip();
  HealthPayload h;
  if (static_cast<Op>(f.header.opcode) != Op::kHealthResp ||
      !decode_health_resp(f.payload, f.header.payload_len, &h))
    die("bad HEALTH response");
  return h;
}

}  // namespace gt::serve
