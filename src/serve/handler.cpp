#include "serve/handler.hpp"

#include <chrono>

namespace gt::serve {

ServeMetrics ServeMetrics::register_on(telemetry::MetricsRegistry& registry) {
  // Latency buckets: 10 ns lower edge, 25% geometric growth, 96 buckets
  // (~10 ns .. ~20 s) — fine enough that a log-bucket p99/p999 readback is
  // within one bucket (25%) of the true quantile.
  const telemetry::HistogramOptions lat{1e-8, 1.25, 96};
  ServeMetrics m;
  m.registry = &registry;
  m.lookups = registry.counter("serve_lookups");
  m.batch_lookups = registry.counter("serve_batch_lookups");
  m.batch_keys = registry.counter("serve_batch_keys");
  m.ingests = registry.counter("serve_ingests");
  m.stats_requests = registry.counter("serve_stats");
  m.metrics_requests = registry.counter("serve_metrics_requests");
  m.health_requests = registry.counter("serve_health_requests");
  m.proto_errors = registry.counter("serve_proto_errors");
  m.frames = registry.counter("serve_frames");
  m.bytes_in = registry.counter("serve_bytes_in");
  m.bytes_out = registry.counter("serve_bytes_out");
  m.lookup_bytes = registry.counter("serve_lookup_bytes");
  m.batch_bytes = registry.counter("serve_batch_bytes");
  m.ingest_bytes = registry.counter("serve_ingest_bytes");
  m.conns_opened = registry.counter("serve_conns_opened");
  m.conns_closed = registry.counter("serve_conns_closed");
  m.bp_pauses = registry.counter("serve_bp_pauses");
  m.bp_resumes = registry.counter("serve_bp_resumes");
  m.slow_frames = registry.counter("serve_slow_frames");
  m.lookup_seconds = registry.histogram("serve_lookup_seconds", lat);
  m.batch_seconds = registry.histogram("serve_batch_seconds", lat);
  m.ingest_seconds = registry.histogram("serve_ingest_seconds", lat);
  return m;
}

void write_serve_record(telemetry::EventLog& log,
                        const telemetry::MetricsRegistry& registry,
                        double uptime_seconds, const char* event) {
  if (!log.enabled()) return;
  const telemetry::MetricsSnapshot snap = registry.snapshot();
  auto rec = log.record(event);
  rec.field("uptime_seconds", uptime_seconds);
  for (const auto& [name, v] : snap.counters) {
    if (name.rfind("serve_", 0) == 0) rec.field(name, v);
  }
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("serve_", 0) == 0) rec.histogram_detail(name, h);
  }
}

ConnectionHandler::ConnectionHandler(ReputationStore& store,
                                     ServeMetrics& metrics, std::size_t lane,
                                     const ServeObservability* obs,
                                     std::uint64_t conn_id)
    : store_(store), m_(metrics), lane_(lane), obs_(obs), conn_id_(conn_id) {
  m_.registry->add(m_.conns_opened, 1, lane_);
}

bool ConnectionHandler::protocol_error() {
  m_.registry->add(m_.proto_errors, 1, lane_);
  m_.registry->add(m_.conns_closed, 1, lane_);
  dead_ = true;
  return false;
}

bool ConnectionHandler::on_bytes(const std::uint8_t* data, std::size_t len,
                                 std::vector<std::uint8_t>& out) {
  if (dead_) return false;
  m_.registry->add(m_.bytes_in, len, lane_);
  if (!parser_.feed(data, len)) return protocol_error();
  FrameParser::Frame frame;
  const std::size_t out_before = out.size();
  // One epoch pin covers every frame completed by this read.
  const ReputationStore::ReadGuard guard = store_.reader();
  while (parser_.next(&frame)) {
    const auto t0 = std::chrono::steady_clock::now();
    if (!handle_frame(frame, guard, out)) return protocol_error();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    record_frame(frame, dt);
    ++frames_;
    m_.registry->add(m_.frames, 1, lane_);
  }
  if (parser_.error()) return protocol_error();
  m_.registry->add(m_.bytes_out, out.size() - out_before, lane_);
  return true;
}

bool ConnectionHandler::handle_frame(const FrameParser::Frame& frame,
                                     const ReputationStore::ReadGuard& guard,
                                     std::vector<std::uint8_t>& out) {
  const std::uint8_t* p = frame.payload;
  const std::size_t len = frame.header.payload_len;
  switch (static_cast<Op>(frame.header.opcode)) {
    case Op::kLookup: {
      if (len != 8) return false;
      const LookupResult r = store_.lookup(guard, get_u64(p));
      encode_lookup_resp(out, r.epoch, r.score);
      m_.registry->add(m_.lookups, 1, lane_);
      return true;
    }
    case Op::kBatchLookup: {
      if (len < 8) return false;
      const std::uint32_t count = get_u32(p);
      if (get_u32(p + 4) != 0) return false;
      if (count > kMaxBatch) return false;
      if (len != 8 + 8 * static_cast<std::size_t>(count)) return false;
      encode_batch_resp_header(out, count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const LookupResult r = store_.lookup(guard, get_u64(p + 8 + 8 * i));
        append_batch_entry(out, r.epoch, r.score);
      }
      m_.registry->add(m_.batch_lookups, 1, lane_);
      m_.registry->add(m_.batch_keys, count, lane_);
      return true;
    }
    case Op::kIngest: {
      if (len != 24) return false;
      FeedbackUpdate f;
      f.rater = get_u64(p);
      f.ratee = get_u64(p + 8);
      f.value = get_f64(p + 16);
      store_.enqueue_feedback(f);
      encode_ingest_resp(out, store_.feedback_enqueued());
      m_.registry->add(m_.ingests, 1, lane_);
      return true;
    }
    case Op::kStats: {
      if (len != 0) return false;
      StatsPayload s;
      s.lookups = m_.registry->counter_value(m_.lookups);
      s.batch_lookups = m_.registry->counter_value(m_.batch_lookups);
      s.batch_keys = m_.registry->counter_value(m_.batch_keys);
      s.ingests = m_.registry->counter_value(m_.ingests);
      s.stats_requests = m_.registry->counter_value(m_.stats_requests) + 1;
      s.protocol_errors = m_.registry->counter_value(m_.proto_errors);
      s.published_epoch = store_.published_epoch();
      s.ingest_pending = store_.feedback_pending();
      s.bp_pauses = m_.registry->counter_value(m_.bp_pauses);
      s.bp_resumes = m_.registry->counter_value(m_.bp_resumes);
      s.snapshots_reclaimed = store_.snapshots_reclaimed();
      s.limbo_size = store_.limbo_size();
      encode_stats_resp(out, s);
      m_.registry->add(m_.stats_requests, 1, lane_);
      return true;
    }
    case Op::kMetrics: {
      if (len != 0) return false;
      // Self-inclusive like STATS: count the request before collecting so
      // the snapshot reflects it.
      m_.registry->add(m_.metrics_requests, 1, lane_);
      encode_metrics_resp(out, collect_metrics(m_, store_, obs_));
      return true;
    }
    case Op::kHealth: {
      if (len != 0) return false;
      m_.registry->add(m_.health_requests, 1, lane_);
      encode_health_resp(
          out, collect_health(store_, obs_ != nullptr ? obs_->health : nullptr));
      return true;
    }
    default:
      return false;  // unknown opcode (including response opcodes)
  }
}

void ConnectionHandler::record_frame(const FrameParser::Frame& frame,
                                     double seconds) {
  const auto bytes =
      static_cast<std::uint64_t>(kHeaderSize + frame.header.payload_len);
  switch (static_cast<Op>(frame.header.opcode)) {
    case Op::kLookup:
      m_.registry->observe(m_.lookup_seconds, seconds, lane_);
      m_.registry->add(m_.lookup_bytes, bytes, lane_);
      break;
    case Op::kBatchLookup:
      m_.registry->observe(m_.batch_seconds, seconds, lane_);
      m_.registry->add(m_.batch_bytes, bytes, lane_);
      break;
    case Op::kIngest:
      m_.registry->observe(m_.ingest_seconds, seconds, lane_);
      m_.registry->add(m_.ingest_bytes, bytes, lane_);
      break;
    default:
      break;  // introspection opcodes are not latency-tracked
  }
  if (obs_ != nullptr && obs_->slow_frame_seconds > 0.0 &&
      seconds >= obs_->slow_frame_seconds) {
    m_.registry->add(m_.slow_frames, 1, lane_);
    if (obs_->log != nullptr && obs_->log->enabled()) {
      auto rec = obs_->log->record("slow_frame");
      rec.field("opcode", static_cast<std::uint64_t>(frame.header.opcode));
      rec.field("bytes", bytes);
      rec.field("conn", conn_id_);
      rec.field("seconds", seconds);
    }
  }
}

}  // namespace gt::serve
