#include "serve/observe.hpp"

#include <chrono>

#include "serve/handler.hpp"
#include "serve/store.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace gt::serve {

std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

MetricsHistogram to_wire(const telemetry::HistogramSnapshot& hs) {
  MetricsHistogram h;
  h.bucket_min = hs.options.min;
  h.growth = hs.options.growth;
  h.count = hs.count;
  h.sum = hs.sum;
  h.min = hs.min;
  h.max = hs.max;
  h.buckets = hs.counts;
  return h;
}

}  // namespace

MetricsPayload collect_metrics(const ServeMetrics& m,
                               const ReputationStore& store,
                               const ServeObservability* obs) {
  const telemetry::MetricsRegistry& reg = *m.registry;
  MetricsPayload p;
  p.counters.assign(kMetricsCounterCount, 0);
  auto set = [&p](MetricsCounter c, std::uint64_t v) {
    p.counters[static_cast<std::size_t>(c)] = v;
  };
  set(MetricsCounter::kLookups, reg.counter_value(m.lookups));
  set(MetricsCounter::kBatchLookups, reg.counter_value(m.batch_lookups));
  set(MetricsCounter::kBatchKeys, reg.counter_value(m.batch_keys));
  set(MetricsCounter::kIngests, reg.counter_value(m.ingests));
  set(MetricsCounter::kStatsRequests, reg.counter_value(m.stats_requests));
  set(MetricsCounter::kMetricsRequests, reg.counter_value(m.metrics_requests));
  set(MetricsCounter::kHealthRequests, reg.counter_value(m.health_requests));
  set(MetricsCounter::kProtoErrors, reg.counter_value(m.proto_errors));
  set(MetricsCounter::kFrames, reg.counter_value(m.frames));
  set(MetricsCounter::kBytesIn, reg.counter_value(m.bytes_in));
  set(MetricsCounter::kBytesOut, reg.counter_value(m.bytes_out));
  set(MetricsCounter::kLookupBytes, reg.counter_value(m.lookup_bytes));
  set(MetricsCounter::kBatchBytes, reg.counter_value(m.batch_bytes));
  set(MetricsCounter::kIngestBytes, reg.counter_value(m.ingest_bytes));
  set(MetricsCounter::kConnsOpened, reg.counter_value(m.conns_opened));
  set(MetricsCounter::kConnsClosed, reg.counter_value(m.conns_closed));
  set(MetricsCounter::kBpPauses, reg.counter_value(m.bp_pauses));
  set(MetricsCounter::kBpResumes, reg.counter_value(m.bp_resumes));
  set(MetricsCounter::kSlowFrames, reg.counter_value(m.slow_frames));
  set(MetricsCounter::kPublishedEpoch, store.published_epoch());
  set(MetricsCounter::kIngestPending, store.feedback_pending());
  set(MetricsCounter::kIngestEnqueued, store.feedback_enqueued());
  set(MetricsCounter::kSnapshotsLive, store.snapshots_live());
  set(MetricsCounter::kSnapshotsReclaimed, store.snapshots_reclaimed());
  set(MetricsCounter::kLimboSize, store.limbo_size());
  if (obs != nullptr && obs->log != nullptr) {
    set(MetricsCounter::kLogLinesDropped, obs->log->lines_dropped());
    set(MetricsCounter::kLogRecords, obs->log->records_logged());
  }
  p.hists.reserve(kMetricsHistogramCount);
  p.hists.push_back(to_wire(reg.histogram_snapshot(m.lookup_seconds)));
  p.hists.push_back(to_wire(reg.histogram_snapshot(m.batch_seconds)));
  p.hists.push_back(to_wire(reg.histogram_snapshot(m.ingest_seconds)));
  return p;
}

HealthPayload collect_health(const ReputationStore& store,
                             const HealthState* health) {
  HealthPayload h;
  h.published_epoch = store.published_epoch();
  h.ingest_backlog = store.feedback_pending();
  h.ingest_enqueued = store.feedback_enqueued();
  if (health == nullptr) {
    // No fold loop: the only staleness the store itself can attest to is
    // the undrained ingest queue.
    h.staleness_frames = h.ingest_backlog;
    return h;
  }
  h.flags = health->flags();
  const std::uint64_t folded = health->folded_through();
  h.staleness_frames =
      h.ingest_enqueued > folded ? h.ingest_enqueued - folded : 0;
  const std::uint64_t now = monotonic_ns();
  const std::uint64_t last_pub = health->last_publish_ns();
  const std::uint64_t since = health->start_ns() != 0 ? health->start_ns() : now;
  if (h.staleness_frames > 0) {
    // Lag clock starts at the last publish (or process start before the
    // first publish ever lands).
    const std::uint64_t base = last_pub != 0 ? last_pub : since;
    h.staleness_seconds =
        now > base ? static_cast<double>(now - base) * 1e-9 : 0.0;
  }
  h.refolds = health->refolds();
  h.mass_gap = health->mass_gap();
  h.last_fold_seconds = health->last_fold_seconds();
  h.uptime_seconds =
      now > since ? static_cast<double>(now - since) * 1e-9 : 0.0;
  return h;
}

void write_serve_metrics_record(telemetry::EventLog& log,
                                const telemetry::MetricsRegistry& registry,
                                double uptime_seconds) {
  write_serve_record(log, registry, uptime_seconds, "serve_metrics");
}

void write_serve_health_record(telemetry::EventLog& log,
                               const HealthPayload& h) {
  if (!log.enabled()) return;
  auto rec = log.record("serve_health");
  rec.field("fold_loop", static_cast<std::uint64_t>(h.fold_loop() ? 1 : 0));
  rec.field("converged", static_cast<std::uint64_t>(h.converged() ? 1 : 0));
  rec.field("degraded", static_cast<std::uint64_t>(h.degraded() ? 1 : 0));
  rec.field("published_epoch", h.published_epoch);
  rec.field("ingest_backlog", h.ingest_backlog);
  rec.field("ingest_enqueued", h.ingest_enqueued);
  rec.field("staleness_frames", h.staleness_frames);
  rec.field("staleness_seconds", h.staleness_seconds);
  rec.field("refolds", h.refolds);
  rec.field("mass_gap", h.mass_gap);
  rec.field("last_fold_seconds", h.last_fold_seconds);
  rec.field("uptime_seconds", h.uptime_seconds);
}

}  // namespace gt::serve
