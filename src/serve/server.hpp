// serve::Server — the live reputation service's socket front end.
//
// A non-blocking TCP server on one event-loop thread. On Linux the loop is
// epoll-based (level-triggered); everywhere else — or when forced via
// ServerConfig::use_poll — it falls back to poll(2) with identical
// semantics. Each accepted connection owns a ConnectionHandler (fixed-size
// frame parsing, no per-request allocation once buffers are warm) and a tx
// buffer flushed opportunistically after handling and completed via
// EPOLLOUT/POLLOUT when the socket back-pressures. Connections whose unsent
// tx backlog crosses ServerConfig::tx_high_watermark stop being read until
// it drains below tx_low_watermark, so a client that pipelines requests
// without consuming responses cannot grow server memory without bound.
//
// Protocol errors close the connection immediately (the handler already
// counted them); EOF closes it quietly. stop() wakes the loop through a
// self-pipe, closes every connection, and joins the thread — safe to call
// multiple times and from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "serve/handler.hpp"
#include "serve/store.hpp"
#include "telemetry/metrics.hpp"

namespace gt::serve {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see Server::port() after start
  int backlog = 128;
  std::size_t max_connections = 256;  ///< accepts beyond this are refused
  std::size_t read_chunk = 64 * 1024; ///< per-read buffer size
  /// Per-connection response backpressure: once the unsent tx backlog
  /// exceeds the high watermark the server stops reading that connection
  /// (bounding memory against clients that pipeline requests but never
  /// read responses) and resumes below the low watermark.
  std::size_t tx_high_watermark = 4u << 20;
  std::size_t tx_low_watermark = 256 * 1024;
  bool use_poll = false;  ///< force the poll(2) backend even on Linux
  bool tcp_nodelay = true;
  /// Metrics lane used by this loop thread's handlers and lifecycle
  /// counters; a future multi-loop server gives each loop its own lane.
  std::size_t metrics_lane = 0;
  /// Observability context threaded into every connection handler (slow
  /// frame log + fold-loop health; see observe.hpp). Copied at Server
  /// construction; the pointed-at log/health must outlive the server.
  ServeObservability observability{};
};

class Server {
 public:
  Server(ReputationStore& store, telemetry::MetricsRegistry& registry,
         ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the loop thread. Returns false (with a
  /// description in *error when given) on any socket failure.
  bool start(std::string* error = nullptr);

  /// Wakes the loop, closes every fd, joins. Idempotent.
  void stop();

  bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  /// Actual bound port (resolves port 0 after start()).
  std::uint16_t port() const noexcept { return port_; }

  /// "epoll" or "poll" — which backend the loop uses.
  const char* backend() const noexcept;

  std::uint64_t connections_accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  ServeMetrics& metrics() noexcept { return metrics_; }

 private:
  struct Connection;
  struct Impl;

  void run_loop();

  ReputationStore& store_;
  telemetry::MetricsRegistry& registry_;
  ServeMetrics metrics_;
  ServerConfig config_;

  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
};

}  // namespace gt::serve
