// LoopbackClient: the in-process transport variant of the serve stack.
//
// Drives a ConnectionHandler directly — same frames, same parser, same
// store reads as the socket server, but with byte vectors instead of a TCP
// connection, so protocol behaviour is fully deterministic under ctest and
// needs no ports, no event loop, and no timing assumptions. An optional
// chunk size re-feeds the encoded request bytes to the handler in slices,
// exercising resumable frame parsing exactly as a fragmented TCP stream
// would.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/handler.hpp"
#include "serve/protocol.hpp"
#include "serve/store.hpp"

namespace gt::serve {

class LoopbackClient {
 public:
  /// chunk == 0 feeds each request in one piece; chunk > 0 feeds the bytes
  /// in slices of that size. `obs` (optional) threads the observability
  /// context through to the handler, exactly as the socket server does.
  LoopbackClient(ReputationStore& store, ServeMetrics& metrics,
                 std::size_t lane = 0, std::size_t chunk = 0,
                 const ServeObservability* obs = nullptr);

  /// True once the server side closed the connection (protocol error).
  bool closed() const noexcept { return closed_; }

  // Typed request/response round trips. Aborts loudly when called on a
  // closed connection or when the response cannot be decoded (a handler
  // bug, not an input condition).
  LookupResp lookup(std::uint64_t node);
  std::vector<LookupResp> batch_lookup(const std::vector<std::uint64_t>& ids);
  std::uint64_t ingest(std::uint64_t rater, std::uint64_t ratee, double value);
  StatsPayload stats();
  MetricsPayload metrics();
  HealthPayload health();

  /// Raw access for malformed-input tests: feeds arbitrary bytes, returns
  /// false when the handler closed the connection. Responses accumulate in
  /// received().
  bool send_raw(const std::uint8_t* data, std::size_t len);
  const std::vector<std::uint8_t>& received() const noexcept { return rx_; }
  void clear_received();

 private:
  /// Sends `tx_` through the handler (honoring chunking) and parses
  /// exactly one response frame from the accumulated response bytes.
  FrameParser::Frame round_trip();

  ConnectionHandler handler_;
  std::size_t chunk_;
  bool closed_ = false;
  std::vector<std::uint8_t> tx_;
  std::vector<std::uint8_t> rx_;
  FrameParser resp_parser_;
};

}  // namespace gt::serve
