#include "serve/protocol.hpp"

#include <bit>

namespace gt::serve {

// The codecs memcpy native integers; the wire format is defined as
// little-endian, so refuse to build on a big-endian target rather than
// silently emitting an incompatible byte order.
static_assert(std::endian::native == std::endian::little,
              "serve wire protocol assumes a little-endian host");

void encode_header(std::uint8_t* p, Op op, std::uint32_t payload_len) {
  put_u32(p, payload_len);
  p[4] = static_cast<std::uint8_t>(op);
  p[5] = kProtocolVersion;
  put_u16(p + 6, 0);
}

bool decode_header(const std::uint8_t* p, FrameHeader* out) {
  out->payload_len = get_u32(p);
  out->opcode = p[4];
  out->version = p[5];
  out->reserved = get_u16(p + 6);
  return out->version == kProtocolVersion && out->reserved == 0 &&
         out->payload_len <= kMaxPayload;
}

namespace {
std::uint8_t* grow(std::vector<std::uint8_t>& out, std::size_t n) {
  const std::size_t off = out.size();
  out.resize(off + n);
  return out.data() + off;
}
}  // namespace

void encode_lookup(std::vector<std::uint8_t>& out, std::uint64_t node) {
  std::uint8_t* p = grow(out, kHeaderSize + 8);
  encode_header(p, Op::kLookup, 8);
  put_u64(p + kHeaderSize, node);
}

void encode_batch_lookup(std::vector<std::uint8_t>& out,
                         const std::uint64_t* nodes, std::size_t count) {
  const std::size_t payload = 8 + 8 * count;
  std::uint8_t* p = grow(out, kHeaderSize + payload);
  encode_header(p, Op::kBatchLookup, static_cast<std::uint32_t>(payload));
  put_u32(p + kHeaderSize, static_cast<std::uint32_t>(count));
  put_u32(p + kHeaderSize + 4, 0);
  for (std::size_t i = 0; i < count; ++i)
    put_u64(p + kHeaderSize + 8 + 8 * i, nodes[i]);
}

void encode_ingest(std::vector<std::uint8_t>& out, std::uint64_t rater,
                   std::uint64_t ratee, double value) {
  std::uint8_t* p = grow(out, kHeaderSize + 24);
  encode_header(p, Op::kIngest, 24);
  put_u64(p + kHeaderSize, rater);
  put_u64(p + kHeaderSize + 8, ratee);
  put_f64(p + kHeaderSize + 16, value);
}

void encode_stats(std::vector<std::uint8_t>& out) {
  std::uint8_t* p = grow(out, kHeaderSize);
  encode_header(p, Op::kStats, 0);
}

void encode_lookup_resp(std::vector<std::uint8_t>& out, std::uint64_t epoch,
                        double score) {
  std::uint8_t* p = grow(out, kHeaderSize + 16);
  encode_header(p, Op::kLookupResp, 16);
  put_u64(p + kHeaderSize, epoch);
  put_f64(p + kHeaderSize + 8, score);
}

std::size_t encode_batch_resp_header(std::vector<std::uint8_t>& out,
                                     std::uint32_t count) {
  const std::size_t payload = 8 + 16 * static_cast<std::size_t>(count);
  std::uint8_t* p = grow(out, kHeaderSize + 8);
  encode_header(p, Op::kBatchLookupResp, static_cast<std::uint32_t>(payload));
  put_u32(p + kHeaderSize, count);
  put_u32(p + kHeaderSize + 4, 0);
  return out.size();
}

void append_batch_entry(std::vector<std::uint8_t>& out, std::uint64_t epoch,
                        double score) {
  std::uint8_t* p = grow(out, 16);
  put_u64(p, epoch);
  put_f64(p + 8, score);
}

void encode_ingest_resp(std::vector<std::uint8_t>& out,
                        std::uint64_t total_ingested) {
  std::uint8_t* p = grow(out, kHeaderSize + 8);
  encode_header(p, Op::kIngestResp, 8);
  put_u64(p + kHeaderSize, total_ingested);
}

void encode_stats_resp(std::vector<std::uint8_t>& out, const StatsPayload& s) {
  std::uint8_t* p = grow(out, kHeaderSize + kStatsPayloadSize);
  encode_header(p, Op::kStatsResp,
                static_cast<std::uint32_t>(kStatsPayloadSize));
  const std::uint64_t fields[8] = {
      s.lookups,        s.batch_lookups,   s.batch_keys,      s.ingests,
      s.stats_requests, s.protocol_errors, s.published_epoch, s.ingest_pending};
  for (std::size_t i = 0; i < 8; ++i) put_u64(p + kHeaderSize + 8 * i, fields[i]);
}

bool decode_lookup_resp(const std::uint8_t* payload, std::size_t len,
                        LookupResp* out) {
  if (len != 16) return false;
  out->epoch = get_u64(payload);
  out->score = get_f64(payload + 8);
  return true;
}

const std::uint8_t* decode_batch_resp(const std::uint8_t* payload,
                                      std::size_t len, std::uint32_t* count) {
  if (len < 8) return nullptr;
  *count = get_u32(payload);
  if (get_u32(payload + 4) != 0) return nullptr;
  if (len != 8 + 16 * static_cast<std::size_t>(*count)) return nullptr;
  return payload + 8;
}

bool decode_ingest_resp(const std::uint8_t* payload, std::size_t len,
                        std::uint64_t* total) {
  if (len != 8) return false;
  *total = get_u64(payload);
  return true;
}

bool decode_stats_resp(const std::uint8_t* payload, std::size_t len,
                       StatsPayload* out) {
  if (len != kStatsPayloadSize) return false;
  std::uint64_t fields[8];
  for (std::size_t i = 0; i < 8; ++i) fields[i] = get_u64(payload + 8 * i);
  out->lookups = fields[0];
  out->batch_lookups = fields[1];
  out->batch_keys = fields[2];
  out->ingests = fields[3];
  out->stats_requests = fields[4];
  out->protocol_errors = fields[5];
  out->published_epoch = fields[6];
  out->ingest_pending = fields[7];
  return true;
}

// --- FrameParser ------------------------------------------------------------

bool FrameParser::feed(const std::uint8_t* data, std::size_t len) {
  if (error_) return false;
  // Compact: drop already-delivered bytes before appending so the buffer
  // stays bounded by one partial frame plus the new input.
  if (consumed_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
  // Validate eagerly: a malformed header is reportable as soon as its 8
  // bytes are in, independent of the (claimed, possibly absurd) payload.
  if (buf_.size() - consumed_ >= kHeaderSize && !header_ok(buf_.data() + consumed_)) {
    error_ = true;
    return false;
  }
  return true;
}

bool FrameParser::header_ok(const std::uint8_t* p) {
  FrameHeader h;
  return decode_header(p, &h);
}

bool FrameParser::next(Frame* out) {
  if (error_) return false;
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < kHeaderSize) return false;
  FrameHeader h;
  if (!decode_header(buf_.data() + consumed_, &h)) {
    error_ = true;
    return false;
  }
  if (avail < kHeaderSize + h.payload_len) return false;
  out->header = h;
  out->payload = buf_.data() + consumed_ + kHeaderSize;
  consumed_ += kHeaderSize + h.payload_len;
  return true;
}

}  // namespace gt::serve
