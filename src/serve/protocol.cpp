#include "serve/protocol.hpp"

#include <bit>
#include <limits>

namespace gt::serve {

// The codecs memcpy native integers; the wire format is defined as
// little-endian, so refuse to build on a big-endian target rather than
// silently emitting an incompatible byte order.
static_assert(std::endian::native == std::endian::little,
              "serve wire protocol assumes a little-endian host");

void encode_header(std::uint8_t* p, Op op, std::uint32_t payload_len) {
  put_u32(p, payload_len);
  p[4] = static_cast<std::uint8_t>(op);
  p[5] = kProtocolVersion;
  put_u16(p + 6, 0);
}

bool decode_header(const std::uint8_t* p, FrameHeader* out) {
  out->payload_len = get_u32(p);
  out->opcode = p[4];
  out->version = p[5];
  out->reserved = get_u16(p + 6);
  return out->version == kProtocolVersion && out->reserved == 0 &&
         out->payload_len <= kMaxPayload;
}

namespace {
std::uint8_t* grow(std::vector<std::uint8_t>& out, std::size_t n) {
  const std::size_t off = out.size();
  out.resize(off + n);
  return out.data() + off;
}
}  // namespace

void encode_lookup(std::vector<std::uint8_t>& out, std::uint64_t node) {
  std::uint8_t* p = grow(out, kHeaderSize + 8);
  encode_header(p, Op::kLookup, 8);
  put_u64(p + kHeaderSize, node);
}

void encode_batch_lookup(std::vector<std::uint8_t>& out,
                         const std::uint64_t* nodes, std::size_t count) {
  const std::size_t payload = 8 + 8 * count;
  std::uint8_t* p = grow(out, kHeaderSize + payload);
  encode_header(p, Op::kBatchLookup, static_cast<std::uint32_t>(payload));
  put_u32(p + kHeaderSize, static_cast<std::uint32_t>(count));
  put_u32(p + kHeaderSize + 4, 0);
  for (std::size_t i = 0; i < count; ++i)
    put_u64(p + kHeaderSize + 8 + 8 * i, nodes[i]);
}

void encode_ingest(std::vector<std::uint8_t>& out, std::uint64_t rater,
                   std::uint64_t ratee, double value) {
  std::uint8_t* p = grow(out, kHeaderSize + 24);
  encode_header(p, Op::kIngest, 24);
  put_u64(p + kHeaderSize, rater);
  put_u64(p + kHeaderSize + 8, ratee);
  put_f64(p + kHeaderSize + 16, value);
}

void encode_stats(std::vector<std::uint8_t>& out) {
  std::uint8_t* p = grow(out, kHeaderSize);
  encode_header(p, Op::kStats, 0);
}

void encode_metrics(std::vector<std::uint8_t>& out) {
  std::uint8_t* p = grow(out, kHeaderSize);
  encode_header(p, Op::kMetrics, 0);
}

void encode_health(std::vector<std::uint8_t>& out) {
  std::uint8_t* p = grow(out, kHeaderSize);
  encode_header(p, Op::kHealth, 0);
}

void encode_lookup_resp(std::vector<std::uint8_t>& out, std::uint64_t epoch,
                        double score) {
  std::uint8_t* p = grow(out, kHeaderSize + 16);
  encode_header(p, Op::kLookupResp, 16);
  put_u64(p + kHeaderSize, epoch);
  put_f64(p + kHeaderSize + 8, score);
}

std::size_t encode_batch_resp_header(std::vector<std::uint8_t>& out,
                                     std::uint32_t count) {
  const std::size_t payload = 8 + 16 * static_cast<std::size_t>(count);
  std::uint8_t* p = grow(out, kHeaderSize + 8);
  encode_header(p, Op::kBatchLookupResp, static_cast<std::uint32_t>(payload));
  put_u32(p + kHeaderSize, count);
  put_u32(p + kHeaderSize + 4, 0);
  return out.size();
}

void append_batch_entry(std::vector<std::uint8_t>& out, std::uint64_t epoch,
                        double score) {
  std::uint8_t* p = grow(out, 16);
  put_u64(p, epoch);
  put_f64(p + 8, score);
}

void encode_ingest_resp(std::vector<std::uint8_t>& out,
                        std::uint64_t total_ingested) {
  std::uint8_t* p = grow(out, kHeaderSize + 8);
  encode_header(p, Op::kIngestResp, 8);
  put_u64(p + kHeaderSize, total_ingested);
}

void encode_stats_resp(std::vector<std::uint8_t>& out, const StatsPayload& s) {
  std::uint8_t* p = grow(out, kHeaderSize + kStatsPayloadSize);
  encode_header(p, Op::kStatsResp,
                static_cast<std::uint32_t>(kStatsPayloadSize));
  const std::uint64_t fields[kStatsPayloadFields] = {
      s.lookups,        s.batch_lookups,   s.batch_keys,
      s.ingests,        s.stats_requests,  s.protocol_errors,
      s.published_epoch, s.ingest_pending, s.bp_pauses,
      s.bp_resumes,     s.snapshots_reclaimed, s.limbo_size};
  for (std::size_t i = 0; i < kStatsPayloadFields; ++i)
    put_u64(p + kHeaderSize + 8 * i, fields[i]);
}

namespace {
// Payload byte size of one encoded MetricsHistogram block.
std::size_t hist_wire_size(const MetricsHistogram& h) {
  return 8 * 6 + 8 + 8 * h.buckets.size();  // 5 f64 + u64 count, 2 u32, buckets
}
}  // namespace

void encode_metrics_resp(std::vector<std::uint8_t>& out,
                         const MetricsPayload& m) {
  std::size_t payload = 16 + 8 * m.counters.size();
  for (const MetricsHistogram& h : m.hists) payload += hist_wire_size(h);
  std::uint8_t* p = grow(out, kHeaderSize + payload);
  encode_header(p, Op::kMetricsResp, static_cast<std::uint32_t>(payload));
  p += kHeaderSize;
  put_u32(p, m.version);
  put_u32(p + 4, static_cast<std::uint32_t>(m.counters.size()));
  put_u32(p + 8, static_cast<std::uint32_t>(m.hists.size()));
  put_u32(p + 12, 0);
  p += 16;
  for (const std::uint64_t v : m.counters) {
    put_u64(p, v);
    p += 8;
  }
  for (const MetricsHistogram& h : m.hists) {
    put_f64(p, h.bucket_min);
    put_f64(p + 8, h.growth);
    put_u64(p + 16, h.count);
    put_f64(p + 24, h.sum);
    put_f64(p + 32, h.min);
    put_f64(p + 40, h.max);
    put_u32(p + 48, static_cast<std::uint32_t>(h.buckets.size()));
    put_u32(p + 52, 0);
    p += 56;
    for (const std::uint64_t b : h.buckets) {
      put_u64(p, b);
      p += 8;
    }
  }
}

void encode_health_resp(std::vector<std::uint8_t>& out, const HealthPayload& h) {
  std::uint8_t* p = grow(out, kHeaderSize + kHealthPayloadSize);
  encode_header(p, Op::kHealthResp,
                static_cast<std::uint32_t>(kHealthPayloadSize));
  p += kHeaderSize;
  put_u32(p, h.version);
  put_u32(p + 4, h.flags);
  put_u64(p + 8, h.published_epoch);
  put_u64(p + 16, h.ingest_backlog);
  put_u64(p + 24, h.ingest_enqueued);
  put_u64(p + 32, h.staleness_frames);
  put_f64(p + 40, h.staleness_seconds);
  put_u64(p + 48, h.refolds);
  put_f64(p + 56, h.mass_gap);
  put_f64(p + 64, h.last_fold_seconds);
  put_f64(p + 72, h.uptime_seconds);
}

bool decode_lookup_resp(const std::uint8_t* payload, std::size_t len,
                        LookupResp* out) {
  if (len != 16) return false;
  out->epoch = get_u64(payload);
  out->score = get_f64(payload + 8);
  return true;
}

const std::uint8_t* decode_batch_resp(const std::uint8_t* payload,
                                      std::size_t len, std::uint32_t* count) {
  if (len < 8) return nullptr;
  *count = get_u32(payload);
  if (get_u32(payload + 4) != 0) return nullptr;
  if (len != 8 + 16 * static_cast<std::size_t>(*count)) return nullptr;
  return payload + 8;
}

bool decode_ingest_resp(const std::uint8_t* payload, std::size_t len,
                        std::uint64_t* total) {
  if (len != 8) return false;
  *total = get_u64(payload);
  return true;
}

bool decode_stats_resp(const std::uint8_t* payload, std::size_t len,
                       StatsPayload* out) {
  if (len != kStatsPayloadSize) return false;
  std::uint64_t fields[kStatsPayloadFields];
  for (std::size_t i = 0; i < kStatsPayloadFields; ++i)
    fields[i] = get_u64(payload + 8 * i);
  out->lookups = fields[0];
  out->batch_lookups = fields[1];
  out->batch_keys = fields[2];
  out->ingests = fields[3];
  out->stats_requests = fields[4];
  out->protocol_errors = fields[5];
  out->published_epoch = fields[6];
  out->ingest_pending = fields[7];
  out->bp_pauses = fields[8];
  out->bp_resumes = fields[9];
  out->snapshots_reclaimed = fields[10];
  out->limbo_size = fields[11];
  return true;
}

// --- METRICS / HEALTH -------------------------------------------------------

namespace {
constexpr const char* kMetricsCounterNames[kMetricsCounterCount] = {
    "lookups",        "batch_lookups",  "batch_keys",
    "ingests",        "stats_requests", "metrics_requests",
    "health_requests", "proto_errors",  "frames",
    "bytes_in",       "bytes_out",      "lookup_bytes",
    "batch_bytes",    "ingest_bytes",   "conns_opened",
    "conns_closed",   "bp_pauses",      "bp_resumes",
    "slow_frames",    "published_epoch", "ingest_pending",
    "ingest_enqueued", "snapshots_live", "snapshots_reclaimed",
    "limbo_size",     "log_lines_dropped", "log_records",
};
constexpr const char* kMetricsHistogramNames[kMetricsHistogramCount] = {
    "lookup_seconds",
    "batch_seconds",
    "ingest_seconds",
};
}  // namespace

const char* metrics_counter_name(std::size_t index) {
  return index < kMetricsCounterCount ? kMetricsCounterNames[index] : nullptr;
}

const char* metrics_histogram_name(std::size_t index) {
  return index < kMetricsHistogramCount ? kMetricsHistogramNames[index]
                                        : nullptr;
}

double MetricsHistogram::percentile(double pct) const noexcept {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  const double rank = pct / 100.0 * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (static_cast<double>(cum) >= rank && buckets[i] > 0) {
      if (i == 0) return bucket_min;
      if (i + 1 == buckets.size()) return max;
      double edge = bucket_min;
      for (std::size_t k = 1; k <= i; ++k) edge *= growth;
      return edge;
    }
  }
  return max;
}

bool decode_metrics_resp(const std::uint8_t* payload, std::size_t len,
                         MetricsPayload* out) {
  if (len < 16) return false;
  out->version = get_u32(payload);
  if (out->version != kMetricsVersion) return false;
  const std::uint32_t n_counters = get_u32(payload + 4);
  const std::uint32_t n_hists = get_u32(payload + 8);
  if (get_u32(payload + 12) != 0) return false;
  std::size_t off = 16;
  if (len - off < 8 * static_cast<std::size_t>(n_counters)) return false;
  out->counters.assign(n_counters, 0);
  for (std::uint32_t i = 0; i < n_counters; ++i, off += 8)
    out->counters[i] = get_u64(payload + off);
  out->hists.assign(n_hists, MetricsHistogram{});
  for (std::uint32_t i = 0; i < n_hists; ++i) {
    if (len - off < 56) return false;
    MetricsHistogram& h = out->hists[i];
    h.bucket_min = get_f64(payload + off);
    h.growth = get_f64(payload + off + 8);
    h.count = get_u64(payload + off + 16);
    h.sum = get_f64(payload + off + 24);
    h.min = get_f64(payload + off + 32);
    h.max = get_f64(payload + off + 40);
    const std::uint32_t n_buckets = get_u32(payload + off + 48);
    if (get_u32(payload + off + 52) != 0) return false;
    off += 56;
    if (len - off < 8 * static_cast<std::size_t>(n_buckets)) return false;
    h.buckets.assign(n_buckets, 0);
    for (std::uint32_t b = 0; b < n_buckets; ++b, off += 8)
      h.buckets[b] = get_u64(payload + off);
  }
  return off == len;  // trailing bytes are malformed
}

bool decode_health_resp(const std::uint8_t* payload, std::size_t len,
                        HealthPayload* out) {
  if (len != kHealthPayloadSize) return false;
  out->version = get_u32(payload);
  if (out->version != kHealthVersion) return false;
  out->flags = get_u32(payload + 4);
  out->published_epoch = get_u64(payload + 8);
  out->ingest_backlog = get_u64(payload + 16);
  out->ingest_enqueued = get_u64(payload + 24);
  out->staleness_frames = get_u64(payload + 32);
  out->staleness_seconds = get_f64(payload + 40);
  out->refolds = get_u64(payload + 48);
  out->mass_gap = get_f64(payload + 56);
  out->last_fold_seconds = get_f64(payload + 64);
  out->uptime_seconds = get_f64(payload + 72);
  return true;
}

// --- FrameParser ------------------------------------------------------------

bool FrameParser::feed(const std::uint8_t* data, std::size_t len) {
  if (error_) return false;
  // Compact: drop already-delivered bytes before appending so the buffer
  // stays bounded by one partial frame plus the new input.
  if (consumed_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
  // Validate eagerly: a malformed header is reportable as soon as its 8
  // bytes are in, independent of the (claimed, possibly absurd) payload.
  if (buf_.size() - consumed_ >= kHeaderSize && !header_ok(buf_.data() + consumed_)) {
    error_ = true;
    return false;
  }
  return true;
}

bool FrameParser::header_ok(const std::uint8_t* p) {
  FrameHeader h;
  return decode_header(p, &h);
}

bool FrameParser::next(Frame* out) {
  if (error_) return false;
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < kHeaderSize) return false;
  FrameHeader h;
  if (!decode_header(buf_.data() + consumed_, &h)) {
    error_ = true;
    return false;
  }
  if (avail < kHeaderSize + h.payload_len) return false;
  out->header = h;
  out->payload = buf_.data() + consumed_ + kHeaderSize;
  consumed_ += kHeaderSize + h.payload_len;
  return true;
}

}  // namespace gt::serve
