#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <vector>

#if defined(__linux__)
#include <sys/epoll.h>
#define GT_SERVE_HAVE_EPOLL 1
#else
#define GT_SERVE_HAVE_EPOLL 0
#endif

namespace gt::serve {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Minimal readiness abstraction so the epoll and poll loops share every
// line of connection logic. Not a hot path: one wait() per loop iteration.
struct Poller {
  struct Event {
    int fd;
    bool readable;
    bool writable;
    bool error;
  };
  virtual ~Poller() = default;
  virtual bool add(int fd) = 0;  ///< registers read-only interest
  virtual void modify(int fd, bool want_read, bool want_write) = 0;
  virtual void remove(int fd) = 0;
  virtual int wait(std::vector<Event>& out, int timeout_ms) = 0;
};

#if GT_SERVE_HAVE_EPOLL
struct EpollPoller final : Poller {
  int ep = -1;
  std::vector<epoll_event> buf;

  EpollPoller() : ep(::epoll_create1(EPOLL_CLOEXEC)), buf(64) {}
  ~EpollPoller() override {
    if (ep >= 0) ::close(ep);
  }
  bool ok() const { return ep >= 0; }

  static std::uint32_t mask(bool want_read, bool want_write) {
    return (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  }
  bool add(int fd) override {
    epoll_event ev{};
    ev.events = mask(true, false);
    ev.data.fd = fd;
    return ::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev) == 0;
  }
  void modify(int fd, bool want_read, bool want_write) override {
    epoll_event ev{};
    ev.events = mask(want_read, want_write);
    ev.data.fd = fd;
    ::epoll_ctl(ep, EPOLL_CTL_MOD, fd, &ev);
  }
  void remove(int fd) override { ::epoll_ctl(ep, EPOLL_CTL_DEL, fd, nullptr); }
  int wait(std::vector<Event>& out, int timeout_ms) override {
    const int n = ::epoll_wait(ep, buf.data(), static_cast<int>(buf.size()),
                               timeout_ms);
    out.clear();
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = buf[static_cast<std::size_t>(i)];
      out.push_back({ev.data.fd, (ev.events & (EPOLLIN | EPOLLHUP)) != 0,
                     (ev.events & EPOLLOUT) != 0,
                     (ev.events & EPOLLERR) != 0});
    }
    if (n == static_cast<int>(buf.size())) buf.resize(buf.size() * 2);
    return n;
  }
};
#endif

struct PollPoller final : Poller {
  std::vector<pollfd> fds;
  std::unordered_map<int, std::size_t> index;

  static short mask(bool want_read, bool want_write) {
    return static_cast<short>((want_read ? POLLIN : 0) |
                              (want_write ? POLLOUT : 0));
  }
  bool add(int fd) override {
    index[fd] = fds.size();
    fds.push_back({fd, mask(true, false), 0});
    return true;
  }
  void modify(int fd, bool want_read, bool want_write) override {
    auto it = index.find(fd);
    if (it != index.end()) fds[it->second].events = mask(want_read, want_write);
  }
  void remove(int fd) override {
    auto it = index.find(fd);
    if (it == index.end()) return;
    const std::size_t i = it->second;
    index.erase(it);
    if (i + 1 != fds.size()) {
      fds[i] = fds.back();
      index[fds[i].fd] = i;
    }
    fds.pop_back();
  }
  int wait(std::vector<Event>& out, int timeout_ms) override {
    const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                         timeout_ms);
    out.clear();
    if (n <= 0) return n;
    for (const pollfd& p : fds) {
      if (p.revents == 0) continue;
      out.push_back({p.fd, (p.revents & (POLLIN | POLLHUP)) != 0,
                     (p.revents & POLLOUT) != 0,
                     (p.revents & (POLLERR | POLLNVAL)) != 0});
    }
    return n;
  }
};

}  // namespace

struct Server::Connection {
  int fd = -1;
  ConnectionHandler handler;
  std::vector<std::uint8_t> tx;
  std::size_t tx_off = 0;
  bool want_read = true;
  bool want_write = false;
  bool paused = false;  ///< reads suspended: tx backlog over the high water

  Connection(int fd_, ReputationStore& store, ServeMetrics& metrics,
             std::size_t lane, const ServeObservability* obs,
             std::uint64_t conn_id)
      : fd(fd_), handler(store, metrics, lane, obs, conn_id) {}
};

Server::Server(ReputationStore& store, telemetry::MetricsRegistry& registry,
               ServerConfig config)
    : store_(store),
      registry_(registry),
      metrics_(ServeMetrics::register_on(registry)),
      config_(std::move(config)) {}

Server::~Server() { stop(); }

const char* Server::backend() const noexcept {
#if GT_SERVE_HAVE_EPOLL
  return config_.use_poll ? "poll" : "epoll";
#else
  return "poll";
#endif
}

bool Server::start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) *error = errno_string(what);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_rd_ >= 0) ::close(wake_rd_);
    if (wake_wr_ >= 0) ::close(wake_wr_);
    listen_fd_ = wake_rd_ = wake_wr_ = -1;
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "already running";
    return false;
  }
  stop_requested_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (!set_nonblocking(listen_fd_)) return fail("fcntl(listen)");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1)
    return fail("inet_pton");
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return fail("bind");
  if (::listen(listen_fd_, config_.backlog) != 0) return fail("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return fail("getsockname");
  port_ = ntohs(addr.sin_port);

  int pipefd[2];
  if (::pipe(pipefd) != 0) return fail("pipe");
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run_loop(); });
  return true;
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  if (wake_wr_ >= 0) {
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_wr_, &b, 1);
  }
  if (thread_.joinable()) thread_.join();
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  wake_rd_ = wake_wr_ = -1;
  running_.store(false, std::memory_order_release);
}

void Server::run_loop() {
  std::unique_ptr<Poller> poller;
#if GT_SERVE_HAVE_EPOLL
  if (!config_.use_poll) {
    auto ep = std::make_unique<EpollPoller>();
    if (ep->ok()) poller = std::move(ep);
  }
#endif
  if (poller == nullptr) poller = std::make_unique<PollPoller>();

  poller->add(listen_fd_);
  poller->add(wake_rd_);

  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  std::vector<std::uint8_t> read_buf(config_.read_chunk);
  std::vector<Poller::Event> events;
  const std::size_t lane = config_.metrics_lane;

  // handler_error: the handler already counted the close; normal closes
  // (EOF, write failure, shutdown) are counted here.
  auto close_conn = [&](int fd, bool handler_error) {
    poller->remove(fd);
    ::close(fd);
    conns.erase(fd);
    active_.store(conns.size(), std::memory_order_relaxed);
    if (!handler_error) registry_.add(metrics_.conns_closed, 1, lane);
  };

  // Returns false when the connection died on a write error. Leaves poller
  // interest to update_interest (call it after every flush on a live conn).
  auto flush_tx = [&](Connection& c) -> bool {
    while (c.tx_off < c.tx.size()) {
      const ssize_t n = ::write(c.fd, c.tx.data() + c.tx_off,
                                c.tx.size() - c.tx_off);
      if (n > 0) {
        c.tx_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer gone mid-write
    }
    c.tx.clear();
    c.tx_off = 0;
    return true;
  };

  // Backpressure: a client that pipelines requests without reading the
  // responses must not grow tx without bound. Past the high watermark stop
  // reading (drop read interest) so the request flow stalls; resume once
  // the backlog drains below the low watermark. Write interest simply
  // tracks whether anything is pending.
  auto update_interest = [&](Connection& c) {
    const std::size_t pending = c.tx.size() - c.tx_off;
    if (pending > config_.tx_high_watermark) {
      if (!c.paused) registry_.add(metrics_.bp_pauses, 1, lane);
      c.paused = true;
    } else if (pending <= config_.tx_low_watermark) {
      if (c.paused) registry_.add(metrics_.bp_resumes, 1, lane);
      c.paused = false;
    }
    const bool want_read = !c.paused;
    const bool want_write = pending > 0;
    if (want_read != c.want_read || want_write != c.want_write) {
      c.want_read = want_read;
      c.want_write = want_write;
      poller->modify(c.fd, want_read, want_write);
    }
  };

  auto accept_all = [&] {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        return;  // transient accept failure; the loop will retry
      }
      if (conns.size() >= config_.max_connections || !set_nonblocking(fd)) {
        ::close(fd);
        continue;
      }
      if (config_.tcp_nodelay) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      const std::uint64_t conn_id =
          accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
      conns.emplace(fd, std::make_unique<Connection>(
                            fd, store_, metrics_, lane,
                            &config_.observability, conn_id));
      poller->add(fd);
      active_.store(conns.size(), std::memory_order_relaxed);
    }
  };

  while (!stop_requested_.load(std::memory_order_acquire)) {
    poller->wait(events, -1);
    for (const Poller::Event& ev : events) {
      if (ev.fd == wake_rd_) {
        char drain[64];
        while (::read(wake_rd_, drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (ev.fd == listen_fd_) {
        accept_all();
        continue;
      }
      auto it = conns.find(ev.fd);
      if (it == conns.end()) continue;
      Connection& c = *it->second;
      if (ev.error) {
        close_conn(ev.fd, false);
        continue;
      }
      if (ev.writable) {
        if (!flush_tx(c)) {
          close_conn(ev.fd, false);
          continue;
        }
        update_interest(c);  // may resume reads after draining
      }
      if (!ev.readable || c.paused) continue;
      bool closed = false;
      for (;;) {
        const ssize_t n = ::read(c.fd, read_buf.data(), read_buf.size());
        if (n > 0) {
          if (!c.handler.on_bytes(read_buf.data(),
                                  static_cast<std::size_t>(n), c.tx)) {
            close_conn(ev.fd, true);  // protocol error: loud close
            closed = true;
            break;
          }
          // Stop consuming input once the response backlog crosses the
          // high watermark — a 64 KiB read of pipelined batch requests can
          // expand to many MiB of responses. The post-loop update_interest
          // pauses the connection; level-triggered polling re-raises
          // readability for the unread socket data once reads resume.
          if (c.tx.size() - c.tx_off > config_.tx_high_watermark) break;
          if (static_cast<std::size_t>(n) < read_buf.size()) break;
          continue;
        }
        if (n == 0) {  // EOF
          close_conn(ev.fd, false);
          closed = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        close_conn(ev.fd, false);
        closed = true;
        break;
      }
      if (closed) continue;
      if (!flush_tx(c)) {
        close_conn(ev.fd, false);
        continue;
      }
      update_interest(c);
    }
  }

  for (auto& [fd, conn] : conns) {
    ::close(fd);
    registry_.add(metrics_.conns_closed, 1, lane);
  }
  conns.clear();
  active_.store(0, std::memory_order_relaxed);
  poller->remove(listen_fd_);
  ::close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace gt::serve
