// Serve observability plane: the shared context that turns the hot-path
// metric lanes into something an operator can read at runtime.
//
// Three pieces live here:
//   * HealthState — a lock-free mailbox the repserved fold loop writes
//     after every republish (folded-through frame count, convergence
//     flags, mass-ledger gap, fold cost) and the METRICS/HEALTH opcodes
//     read from any server loop thread. All fields are relaxed atomics:
//     health is advisory telemetry, never a synchronization edge.
//   * ServeObservability — the per-process bundle handed to every
//     ConnectionHandler: the JSONL EventLog (slow-frame records), the
//     slow-frame threshold, and the HealthState. All pointers optional;
//     a default bundle (or none at all) keeps the hot path on the plain
//     counter/histogram lanes only.
//   * collect_metrics / collect_health — assemble the wire payloads for
//     the METRICS (0x05) and HEALTH (0x06) opcodes from the metric lanes,
//     the store's epoch/reclamation counters, and the health mailbox.
//
// Staleness semantics: the fold loop records `folded_through` = the
// store's feedback_enqueued() value captured *before* the re-aggregation
// that produced the currently published epoch. HEALTH then reports
//   staleness_frames  = feedback_enqueued() - folded_through
//   staleness_seconds = now - last_publish   (0 when fully folded)
// i.e. how many accepted feedback frames the published scores do not yet
// reflect, and for how long. Without a fold loop (bare Server, bench
// paths) HEALTH still answers with store-derived fields and the
// kHealthFlagFoldLoop bit clear.
#pragma once

#include <atomic>
#include <cstdint>

#include "serve/protocol.hpp"

namespace gt::telemetry {
class EventLog;
class MetricsRegistry;
}  // namespace gt::telemetry

namespace gt::serve {

class ReputationStore;
struct ServeMetrics;

/// Monotonic nanoseconds (steady clock) — the time base for staleness and
/// uptime arithmetic in the health plane.
std::uint64_t monotonic_ns() noexcept;

/// Fold-loop → serve-loop mailbox. Single conceptual writer (the fold
/// loop); any number of readers (server loops answering HEALTH, the
/// periodic exporter). Relaxed atomics throughout: a torn *set* of fields
/// across publishes is acceptable, torn individual fields are not.
class HealthState {
 public:
  /// Stamps the process start time (uptime epoch) and marks the fold loop
  /// live. Call once before serving.
  void note_start() noexcept {
    start_ns_.store(monotonic_ns(), std::memory_order_relaxed);
    flags_.fetch_or(kHealthFlagFoldLoop, std::memory_order_relaxed);
  }

  /// Records one republish: `folded_through` is the feedback_enqueued()
  /// value captured before the re-aggregation ran, so every frame at or
  /// below it is reflected in the now-published scores.
  void note_publish(std::uint64_t folded_through, bool converged,
                    bool degraded, double mass_gap,
                    double fold_seconds) noexcept {
    folded_through_.store(folded_through, std::memory_order_relaxed);
    refolds_.fetch_add(1, std::memory_order_relaxed);
    mass_gap_.store(mass_gap, std::memory_order_relaxed);
    last_fold_seconds_.store(fold_seconds, std::memory_order_relaxed);
    std::uint32_t f = flags_.load(std::memory_order_relaxed) & kHealthFlagFoldLoop;
    if (converged) f |= kHealthFlagConverged;
    if (degraded) f |= kHealthFlagDegraded;
    flags_.store(f, std::memory_order_relaxed);
    last_publish_ns_.store(monotonic_ns(), std::memory_order_relaxed);
  }

  std::uint64_t start_ns() const noexcept {
    return start_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t last_publish_ns() const noexcept {
    return last_publish_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t folded_through() const noexcept {
    return folded_through_.load(std::memory_order_relaxed);
  }
  std::uint64_t refolds() const noexcept {
    return refolds_.load(std::memory_order_relaxed);
  }
  std::uint32_t flags() const noexcept {
    return flags_.load(std::memory_order_relaxed);
  }
  double mass_gap() const noexcept {
    return mass_gap_.load(std::memory_order_relaxed);
  }
  double last_fold_seconds() const noexcept {
    return last_fold_seconds_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> start_ns_{0};
  std::atomic<std::uint64_t> last_publish_ns_{0};
  std::atomic<std::uint64_t> folded_through_{0};
  std::atomic<std::uint64_t> refolds_{0};
  std::atomic<std::uint32_t> flags_{0};
  std::atomic<double> mass_gap_{0.0};
  std::atomic<double> last_fold_seconds_{0.0};
};

/// Optional observability context threaded into ConnectionHandler (and
/// through ServerConfig into every connection). Everything is optional:
/// null log disables slow-frame records, slow_frame_seconds <= 0 disables
/// the slow-frame check entirely, null health leaves HEALTH store-only.
struct ServeObservability {
  telemetry::EventLog* log = nullptr;   ///< slow_frame JSONL sink
  double slow_frame_seconds = 0.0;      ///< handler-time threshold; <=0 = off
  const HealthState* health = nullptr;  ///< fold-loop mailbox for HEALTH
};

/// Assembles the METRICS (0x05) response payload: every MetricsCounter in
/// wire order from the metric lanes + store + (optional) EventLog, and the
/// three serve latency histograms merged across lanes.
MetricsPayload collect_metrics(const ServeMetrics& m,
                               const ReputationStore& store,
                               const ServeObservability* obs);

/// Assembles the HEALTH (0x06) response payload from the store and the
/// (optional) fold-loop mailbox.
HealthPayload collect_health(const ReputationStore& store,
                             const HealthState* health);

/// Appends one `serve_metrics` JSONL record (same shape as the final
/// `serve` record: every serve_* counter flat + bucket-level histograms) —
/// the periodic exporter's heartbeat, rendered by report.py --live.
void write_serve_metrics_record(telemetry::EventLog& log,
                                const telemetry::MetricsRegistry& registry,
                                double uptime_seconds);

/// Appends one `serve_health` JSONL record mirroring a HealthPayload.
void write_serve_health_record(telemetry::EventLog& log,
                               const HealthPayload& h);

}  // namespace gt::serve
