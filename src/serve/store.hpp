// serve::ReputationStore — the live serving half of the reputation system:
// a sharded concurrent score store with read-mostly lock-free lookups.
//
// Inspired by Suricata's IPReputationCtx (a radix tree guarded by per-tree
// locks), but redesigned for millions of lookups/s: instead of locking a
// tree on every query, the store is split into a power-of-two number of
// shards (default: sized from std::thread::hardware_concurrency) and each
// shard publishes an *immutable* open-addressing snapshot behind one atomic
// pointer. Readers never take a mutex:
//
//   1. pin: a registered reader slot stores the current global epoch
//      (seq_cst) and re-validates the global epoch afterwards — if the
//      epoch moved, re-pin. The validation closes the classic EBR race:
//      once the validating load returns epoch E, the pin store is ordered
//      before any writer's advance to E+1 in the seq_cst total order, so
//      a writer scanning reader slots after advancing must see the pin.
//   2. load the shard's snapshot pointer (acquire) and read from the
//      immutable table — (epoch, score) pairs are consistent by
//      construction because both come from one snapshot.
//   3. unpin: store 0 (release) into the slot.
//
// Writers (serialized by a mutex — the write path may lock; only reads are
// lock-free) build fresh snapshots, swap them in with a release store, move
// the old ones onto a limbo list tagged with the pre-advance epoch, advance
// the global epoch, and free every limbo entry whose tag is below the
// minimum pinned epoch. No reader can still hold a snapshot retired before
// its pin, so reclamation is safe without reference counts on the hot path.
//
// The ingest side is deliberately boring: feedback updates are appended to
// a mutex-guarded pending buffer and drained in batches by whoever owns the
// aggregation loop (tools/repserved folds them through a ReputationManager
// and republishes). Serving is observational with respect to the engine —
// folding scores into the store never feeds back into aggregation state.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace gt::serve {

struct StoreConfig {
  /// Shard count; 0 derives a power of two from hardware_concurrency().
  /// Non-zero values are rounded up to the next power of two.
  std::size_t shards = 0;
  /// Fixed number of registered reader slots (epoch-reclamation pins).
  /// Acquiring more concurrent readers than this aborts loudly.
  std::size_t max_readers = 64;
};

/// One feedback update queued for the aggregation loop.
struct FeedbackUpdate {
  std::uint64_t rater = 0;
  std::uint64_t ratee = 0;
  double value = 0.0;
};

/// Result of a lookup. `epoch` is the publish version of the snapshot the
/// score was read from; epoch == 0 means the key was not present (published
/// epochs start at 1), in which case score is 0.
struct LookupResult {
  std::uint64_t epoch = 0;
  double score = 0.0;
  bool found() const noexcept { return epoch != 0; }
};

class ReputationStore {
 public:
  explicit ReputationStore(StoreConfig config = {});
  ~ReputationStore();

  ReputationStore(const ReputationStore&) = delete;
  ReputationStore& operator=(const ReputationStore&) = delete;

  std::size_t num_shards() const noexcept { return shards_.size(); }
  std::size_t max_readers() const noexcept { return slots_.size(); }

  /// Version of the most recent publish (0 before the first).
  std::uint64_t published_epoch() const noexcept {
    return published_epoch_.load(std::memory_order_acquire);
  }

  // --- read path -----------------------------------------------------------

  /// RAII epoch pin. One guard may serve any number of lookups; re-acquire
  /// periodically (e.g. per request batch) so reclamation can advance.
  /// Guards are cheap but not free (two seq_cst operations) — amortize.
  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& o) noexcept
        : store_(o.store_), slot_(o.slot_) { o.store_ = nullptr; }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ReadGuard& operator=(ReadGuard&&) = delete;
    ~ReadGuard() { release(); }

    /// Re-pins at the current epoch (drop + re-acquire in place).
    void refresh();
    void release();

   private:
    friend class ReputationStore;
    ReadGuard(ReputationStore* store, std::size_t slot)
        : store_(store), slot_(slot) {}
    ReputationStore* store_;
    std::size_t slot_;
  };

  /// Acquires a reader slot and pins the current epoch. Aborts loudly when
  /// all max_readers slots are taken (a sizing bug, not a runtime race).
  ReadGuard reader();

  /// Mutex-free lookup under a pinned guard.
  LookupResult lookup(const ReadGuard& guard, std::uint64_t node) const;

  // --- write path (serialized internally; may lock) ------------------------

  /// Publishes dense scores: node ids 0..scores.size()-1. Every shard gets
  /// a fresh snapshot stamped with the new epoch; returns that epoch.
  std::uint64_t publish(const std::vector<double>& scores);

  /// Publishes sparse (id, score) pairs on top of the currently published
  /// state (read-modify-write of the previous snapshots). Returns the new
  /// epoch; an empty batch publishes nothing and returns the current one.
  std::uint64_t publish_delta(
      const std::vector<std::pair<std::uint64_t, double>>& updates);

  // --- ingest queue ---------------------------------------------------------

  /// Appends one feedback update to the pending batch (mutex-guarded; the
  /// ingest path is a write path and may lock).
  void enqueue_feedback(const FeedbackUpdate& f);

  /// Swap-drains every pending update into `out` (cleared first); returns
  /// the number drained.
  std::size_t drain_feedback(std::vector<FeedbackUpdate>& out);

  std::uint64_t feedback_enqueued() const noexcept {
    return feedback_enqueued_.load(std::memory_order_relaxed);
  }
  std::size_t feedback_pending() const;

  // --- reclamation accounting (tests + STATS) -------------------------------

  /// Snapshots currently reachable (published) — num_shards() once anything
  /// has been published, else 0.
  std::size_t snapshots_live() const;
  /// Retired snapshots already reclaimed.
  std::uint64_t snapshots_reclaimed() const noexcept {
    return snapshots_reclaimed_.load(std::memory_order_relaxed);
  }
  /// Retired snapshots still waiting on a pinned reader.
  std::size_t limbo_size() const;

 private:
  struct Snapshot;
  struct Shard;

  static std::size_t round_pow2(std::size_t v);
  std::uint64_t pin_slot(std::size_t slot) noexcept;

  /// Builds a snapshot for one shard from (id, score) pairs. Caller owns.
  static Snapshot* build_snapshot(std::uint64_t epoch,
                                  const std::vector<std::uint64_t>& ids,
                                  const std::vector<double>& scores);

  /// Swaps per-shard snapshots in, retires the old ones, publishes `epoch`,
  /// advances the global epoch, reclaims. Caller holds write_mutex_. `fresh`
  /// has one entry per shard (nullptr = keep the current snapshot for that
  /// shard); when every entry is null nothing is published and the current
  /// epoch is returned unchanged.
  std::uint64_t publish_locked(std::vector<Snapshot*>& fresh,
                               std::uint64_t epoch);
  void reclaim_locked();

  std::vector<std::unique_ptr<Shard>> shards_;

  // Reader slots: 0 = quiescent, otherwise the pinned epoch. Cacheline-
  // padded so independent readers never false-share.
  struct alignas(64) ReaderSlot {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<bool> taken{false};
  };
  std::vector<ReaderSlot> slots_;

  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<std::uint64_t> published_epoch_{0};

  mutable std::mutex write_mutex_;
  struct LimboEntry {
    Snapshot* snap;
    std::uint64_t tag;  ///< global epoch at retire time
  };
  std::vector<LimboEntry> limbo_;
  std::atomic<std::uint64_t> snapshots_reclaimed_{0};

  mutable std::mutex ingest_mutex_;
  std::vector<FeedbackUpdate> pending_;
  std::atomic<std::uint64_t> feedback_enqueued_{0};
};

}  // namespace gt::serve
