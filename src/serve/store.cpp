#include "serve/store.hpp"

#include <cstdio>
#include <cstdlib>
#include <thread>

namespace gt::serve {

namespace {

[[noreturn]] void die(const char* msg) {
  std::fprintf(stderr, "serve::ReputationStore: %s\n", msg);
  std::abort();
}

constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

}  // namespace

// Immutable open-addressing table (linear probing, power-of-two capacity).
// Built once by a writer, then only ever read until reclaimed.
struct ReputationStore::Snapshot {
  std::uint64_t epoch = 0;
  std::size_t mask = 0;  ///< capacity - 1
  std::size_t size = 0;  ///< live keys
  std::vector<std::uint64_t> keys;
  std::vector<double> scores;

  static std::uint64_t hash(std::uint64_t k) noexcept {
    // splitmix64 finalizer: full-avalanche, so linear probing stays short
    // even on dense sequential node ids.
    k += 0x9e3779b97f4a7c15ULL;
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return k ^ (k >> 31);
  }

  bool find(std::uint64_t key, double* out) const noexcept {
    if (size == 0) return false;
    std::size_t i = static_cast<std::size_t>(hash(key)) & mask;
    for (;;) {
      const std::uint64_t k = keys[i];
      if (k == key) {
        *out = scores[i];
        return true;
      }
      if (k == kEmptyKey) return false;
      i = (i + 1) & mask;
    }
  }

  void insert(std::uint64_t key, double score) {
    std::size_t i = static_cast<std::size_t>(hash(key)) & mask;
    for (;;) {
      if (keys[i] == key) {
        scores[i] = score;
        return;
      }
      if (keys[i] == kEmptyKey) {
        keys[i] = key;
        scores[i] = score;
        ++size;
        return;
      }
      i = (i + 1) & mask;
    }
  }
};

struct ReputationStore::Shard {
  std::atomic<Snapshot*> current{nullptr};
};

std::size_t ReputationStore::round_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

ReputationStore::ReputationStore(StoreConfig config) {
  std::size_t shards = config.shards;
  if (shards == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    shards = hw == 0 ? 1 : hw;
  }
  shards = round_pow2(shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  if (config.max_readers == 0) die("max_readers must be > 0");
  slots_ = std::vector<ReaderSlot>(config.max_readers);
}

ReputationStore::~ReputationStore() {
  // No readers may be alive here; free everything still reachable.
  for (auto& s : shards_) {
    delete s->current.load(std::memory_order_relaxed);
    s->current.store(nullptr, std::memory_order_relaxed);
  }
  for (auto& e : limbo_) delete e.snap;
  limbo_.clear();
}

// --- read path --------------------------------------------------------------

std::uint64_t ReputationStore::pin_slot(std::size_t slot) noexcept {
  // Pin-and-validate loop (see header). Both the pin store and the
  // validating load are seq_cst so the writer's slot scan after an epoch
  // advance is guaranteed to observe the pin.
  for (;;) {
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    slots_[slot].epoch.store(e, std::memory_order_seq_cst);
    if (global_epoch_.load(std::memory_order_seq_cst) == e) return e;
  }
}

ReputationStore::ReadGuard ReputationStore::reader() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    bool expected = false;
    if (slots_[i].taken.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
      pin_slot(i);
      return ReadGuard(this, i);
    }
  }
  die("reader slots exhausted (raise StoreConfig::max_readers)");
}

void ReputationStore::ReadGuard::refresh() {
  if (store_ == nullptr) return;
  store_->pin_slot(slot_);
}

void ReputationStore::ReadGuard::release() {
  if (store_ == nullptr) return;
  store_->slots_[slot_].epoch.store(0, std::memory_order_release);
  store_->slots_[slot_].taken.store(false, std::memory_order_release);
  store_ = nullptr;
}

LookupResult ReputationStore::lookup(const ReadGuard& guard,
                                     std::uint64_t node) const {
  if (guard.store_ != this) die("lookup with a foreign/released ReadGuard");
  const Shard& shard =
      *shards_[static_cast<std::size_t>(node) & (shards_.size() - 1)];
  const Snapshot* snap = shard.current.load(std::memory_order_acquire);
  LookupResult r;
  if (snap == nullptr) return r;
  double score = 0.0;
  if (snap->find(node, &score)) {
    r.epoch = snap->epoch;
    r.score = score;
  }
  return r;
}

// --- write path -------------------------------------------------------------

ReputationStore::Snapshot* ReputationStore::build_snapshot(
    std::uint64_t epoch, const std::vector<std::uint64_t>& ids,
    const std::vector<double>& scores) {
  auto* snap = new Snapshot;
  snap->epoch = epoch;
  // Load factor <= 0.5: capacity = next pow2 >= 2 * size (min 8 slots).
  std::size_t cap = 8;
  while (cap < ids.size() * 2) cap <<= 1;
  snap->mask = cap - 1;
  snap->keys.assign(cap, kEmptyKey);
  snap->scores.assign(cap, 0.0);
  for (std::size_t i = 0; i < ids.size(); ++i)
    snap->insert(ids[i], scores[i]);
  return snap;
}

std::uint64_t ReputationStore::publish(const std::vector<double>& scores) {
  const std::size_t nshards = shards_.size();
  std::vector<std::vector<std::uint64_t>> ids(nshards);
  std::vector<std::vector<double>> vals(nshards);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const std::size_t s = i & (nshards - 1);
    ids[s].push_back(static_cast<std::uint64_t>(i));
    vals[s].push_back(scores[i]);
  }
  std::lock_guard<std::mutex> lock(write_mutex_);
  const std::uint64_t epoch = published_epoch_.load(std::memory_order_relaxed) + 1;
  std::vector<Snapshot*> fresh(nshards, nullptr);
  for (std::size_t s = 0; s < nshards; ++s)
    fresh[s] = build_snapshot(epoch, ids[s], vals[s]);
  return publish_locked(fresh, epoch);
}

std::uint64_t ReputationStore::publish_delta(
    const std::vector<std::pair<std::uint64_t, double>>& updates) {
  const std::size_t nshards = shards_.size();
  std::lock_guard<std::mutex> lock(write_mutex_);
  const std::uint64_t epoch = published_epoch_.load(std::memory_order_relaxed) + 1;
  // Group updates per shard; untouched shards keep their snapshot (their
  // epoch stays older, which is fine: epochs identify publishes, and a
  // mixed-epoch batch read is still per-key consistent).
  std::vector<std::vector<std::uint64_t>> ids(nshards);
  std::vector<std::vector<double>> vals(nshards);
  for (const auto& [id, score] : updates) {
    const std::size_t s = static_cast<std::size_t>(id) & (nshards - 1);
    ids[s].push_back(id);
    vals[s].push_back(score);
  }
  std::vector<Snapshot*> fresh(nshards, nullptr);
  for (std::size_t s = 0; s < nshards; ++s) {
    if (ids[s].empty()) continue;
    // Rebuild from the old snapshot's live entries plus the updates. The
    // updates go into the same arrays, *after* the old entries, before the
    // snapshot is built: capacity is sized from the combined count (an upper
    // bound on distinct keys, so load factor stays <= 0.5 even when every
    // update is a new key), and insert() overwrites on key match so the
    // later update values win over the old entries.
    const Snapshot* old = shards_[s]->current.load(std::memory_order_relaxed);
    std::vector<std::uint64_t> all_ids;
    std::vector<double> all_vals;
    const std::size_t old_size = old != nullptr ? old->size : 0;
    all_ids.reserve(old_size + ids[s].size());
    all_vals.reserve(old_size + ids[s].size());
    if (old != nullptr) {
      for (std::size_t i = 0; i <= old->mask; ++i) {
        if (old->keys[i] != kEmptyKey) {
          all_ids.push_back(old->keys[i]);
          all_vals.push_back(old->scores[i]);
        }
      }
    }
    all_ids.insert(all_ids.end(), ids[s].begin(), ids[s].end());
    all_vals.insert(all_vals.end(), vals[s].begin(), vals[s].end());
    fresh[s] = build_snapshot(epoch, all_ids, all_vals);
  }
  return publish_locked(fresh, epoch);
}

std::uint64_t ReputationStore::publish_locked(std::vector<Snapshot*>& fresh,
                                              std::uint64_t epoch) {
  // An all-null batch (e.g. publish_delta with no updates) publishes
  // nothing: leave the epoch where it is instead of regressing it.
  bool any = false;
  for (const Snapshot* f : fresh)
    if (f != nullptr) {
      any = true;
      break;
    }
  if (!any) return published_epoch_.load(std::memory_order_relaxed);
  const std::uint64_t retire_tag = global_epoch_.load(std::memory_order_relaxed);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (fresh[s] == nullptr) continue;
    Snapshot* old =
        shards_[s]->current.exchange(fresh[s], std::memory_order_acq_rel);
    if (old != nullptr) limbo_.push_back({old, retire_tag});
  }
  published_epoch_.store(epoch, std::memory_order_release);
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  reclaim_locked();
  return epoch;
}

void ReputationStore::reclaim_locked() {
  // A limbo snapshot tagged T was reachable only while global epoch <= T;
  // any reader that can still touch it holds a pin <= T. Free entries whose
  // tag is strictly below every active pin (and below the current epoch,
  // which it always is after the advance).
  std::uint64_t min_pin = global_epoch_.load(std::memory_order_seq_cst);
  for (const auto& slot : slots_) {
    const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min_pin) min_pin = e;
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < limbo_.size(); ++i) {
    if (limbo_[i].tag < min_pin) {
      delete limbo_[i].snap;
      snapshots_reclaimed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      limbo_[kept++] = limbo_[i];
    }
  }
  limbo_.resize(kept);
}

// --- ingest queue -----------------------------------------------------------

void ReputationStore::enqueue_feedback(const FeedbackUpdate& f) {
  {
    std::lock_guard<std::mutex> lock(ingest_mutex_);
    pending_.push_back(f);
  }
  feedback_enqueued_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ReputationStore::drain_feedback(std::vector<FeedbackUpdate>& out) {
  out.clear();
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  out.swap(pending_);
  return out.size();
}

std::size_t ReputationStore::feedback_pending() const {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  return pending_.size();
}

// --- accounting -------------------------------------------------------------

std::size_t ReputationStore::snapshots_live() const {
  std::size_t live = 0;
  for (const auto& s : shards_)
    if (s->current.load(std::memory_order_acquire) != nullptr) ++live;
  return live;
}

std::size_t ReputationStore::limbo_size() const {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return limbo_.size();
}

}  // namespace gt::serve
