// ConnectionHandler: the per-connection protocol state machine, factored
// out of the socket loop so the exact same request handling runs under
// three transports:
//   * serve::Server      — epoll/poll sockets (production path),
//   * LoopbackConnection — in-process byte shuttle (deterministic tests),
//   * tools/repload      — driven directly for the no-socket micro bench.
//
// The handler owns a FrameParser and turns complete frames into response
// bytes appended to the caller's tx buffer. Lookups run under one epoch
// pin per on_bytes() call (acquired on entry, released on exit), so a
// burst of pipelined requests costs two seq_cst operations total, not two
// per request. Any malformed frame is terminal: on_bytes() returns false,
// the metrics error counter ticks, and the caller must close the
// connection — the parser never resynchronizes on garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/observe.hpp"
#include "serve/protocol.hpp"
#include "serve/store.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace gt::serve {

/// Handles to every serve metric, registered once per registry. Counter
/// names are the `serve_*` family summarized by scripts/report.py --serve.
struct ServeMetrics {
  telemetry::MetricsRegistry* registry = nullptr;
  telemetry::Counter lookups;        ///< serve_lookups (single LOOKUP frames)
  telemetry::Counter batch_lookups;  ///< serve_batch_lookups (BATCH frames)
  telemetry::Counter batch_keys;     ///< serve_batch_keys (keys inside them)
  telemetry::Counter ingests;        ///< serve_ingests
  telemetry::Counter stats_requests; ///< serve_stats
  telemetry::Counter metrics_requests; ///< serve_metrics_requests (METRICS)
  telemetry::Counter health_requests;  ///< serve_health_requests (HEALTH)
  telemetry::Counter proto_errors;   ///< serve_proto_errors
  telemetry::Counter frames;         ///< serve_frames (all accepted frames)
  telemetry::Counter bytes_in;       ///< serve_bytes_in
  telemetry::Counter bytes_out;      ///< serve_bytes_out
  telemetry::Counter lookup_bytes;   ///< serve_lookup_bytes (LOOKUP rx frames)
  telemetry::Counter batch_bytes;    ///< serve_batch_bytes (BATCH rx frames)
  telemetry::Counter ingest_bytes;   ///< serve_ingest_bytes (INGEST rx frames)
  telemetry::Counter conns_opened;   ///< serve_conns_opened
  telemetry::Counter conns_closed;   ///< serve_conns_closed
  telemetry::Counter bp_pauses;      ///< serve_bp_pauses (reads suspended)
  telemetry::Counter bp_resumes;     ///< serve_bp_resumes (reads resumed)
  telemetry::Counter slow_frames;    ///< serve_slow_frames (over threshold)
  telemetry::Histogram lookup_seconds;  ///< serve_lookup_seconds
  telemetry::Histogram batch_seconds;   ///< serve_batch_seconds
  telemetry::Histogram ingest_seconds;  ///< serve_ingest_seconds

  /// Registers (or re-resolves) the serve metric family on `registry`.
  static ServeMetrics register_on(telemetry::MetricsRegistry& registry);
};

/// Writes a serve telemetry record: every serve_* counter as a flat field
/// plus bucket-level latency histograms, so report.py --serve/--live can
/// compute ops/s and p50/p99/p999 from the JSONL alone. The final record
/// uses the default "serve" event; the periodic exporter emits the same
/// shape as "serve_metrics" (see observe.hpp).
void write_serve_record(telemetry::EventLog& log,
                        const telemetry::MetricsRegistry& registry,
                        double uptime_seconds, const char* event = "serve");

class ConnectionHandler {
 public:
  /// `lane` selects the metrics lane; each server loop thread uses its own.
  /// `obs` (optional, must outlive the handler) enables slow-frame records
  /// and feeds METRICS/HEALTH the EventLog + fold-loop state; `conn_id`
  /// tags this connection's slow_frame records.
  ConnectionHandler(ReputationStore& store, ServeMetrics& metrics,
                    std::size_t lane = 0,
                    const ServeObservability* obs = nullptr,
                    std::uint64_t conn_id = 0);

  /// Feeds received bytes; complete frames are handled immediately and
  /// their responses appended to `out`. Returns false on a protocol error
  /// (malformed frame): the connection must be closed, no further bytes
  /// accepted. `out` is never cleared — the caller owns tx buffering.
  bool on_bytes(const std::uint8_t* data, std::size_t len,
                std::vector<std::uint8_t>& out);

  std::uint64_t frames_handled() const noexcept { return frames_; }

 private:
  bool handle_frame(const FrameParser::Frame& frame,
                    const ReputationStore::ReadGuard& guard,
                    std::vector<std::uint8_t>& out);
  /// Post-frame accounting: per-opcode latency histogram + request-byte
  /// counter, and the slow-frame check (counter + JSONL record).
  void record_frame(const FrameParser::Frame& frame, double seconds);
  bool protocol_error();

  ReputationStore& store_;
  ServeMetrics& m_;
  std::size_t lane_;
  const ServeObservability* obs_;
  std::uint64_t conn_id_;
  FrameParser parser_;
  std::uint64_t frames_ = 0;
  bool dead_ = false;
};

}  // namespace gt::serve
