#include "attack/attack_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace gt::attack {

const char* to_string(AttackKind kind) noexcept {
  switch (kind) {
    case AttackKind::kRingStart: return "ring_start";
    case AttackKind::kRingEnd: return "ring_end";
    case AttackKind::kSybilLeave: return "sybil_leave";
    case AttackKind::kSybilRejoin: return "sybil_rejoin";
    case AttackKind::kDefectStart: return "defect_start";
    case AttackKind::kDefectEnd: return "defect_end";
    case AttackKind::kLiarStart: return "liar_start";
    case AttackKind::kLiarEnd: return "liar_end";
    case AttackKind::kWithholdStart: return "withhold_start";
    case AttackKind::kWithholdEnd: return "withhold_end";
  }
  return "unknown";
}

AttackPlan& AttackPlan::push(AttackEvent e) {
  if (!events_.empty() && e.time < events_.back().time) sorted_ = false;
  events_.push_back(std::move(e));
  return *this;
}

AttackPlan& AttackPlan::ring(double t_start, double t_end,
                             std::vector<NodeId> members) {
  if (members.empty())
    throw std::invalid_argument("AttackPlan::ring: empty member set");
  if (!(t_end > t_start))
    throw std::invalid_argument("AttackPlan::ring: window end <= start");
  const NodeId id = next_ring_++;
  push({t_start, AttackKind::kRingStart, id, 0.0, std::move(members)});
  return push({t_end, AttackKind::kRingEnd, id, 0.0, {}});
}

AttackPlan& AttackPlan::sybil_whitewash(double t_leave, double t_rejoin,
                                        NodeId node, bool whitewash) {
  if (!(t_rejoin > t_leave))
    throw std::invalid_argument("AttackPlan::sybil_whitewash: rejoin <= leave");
  push({t_leave, AttackKind::kSybilLeave, node, 0.0, {}});
  return push(
      {t_rejoin, AttackKind::kSybilRejoin, node, whitewash ? 1.0 : 0.0, {}});
}

AttackPlan& AttackPlan::oscillator(NodeId node, double t_start, double t_end,
                                   double period, double duty) {
  if (!(period > 0.0) || !std::isfinite(period))
    throw std::invalid_argument("AttackPlan::oscillator: period must be > 0");
  if (!(duty > 0.0 && duty <= 1.0))
    throw std::invalid_argument("AttackPlan::oscillator: duty outside (0, 1]");
  if (!(t_end > t_start))
    throw std::invalid_argument("AttackPlan::oscillator: window end <= start");
  for (double t = t_start; t < t_end; t += period) {
    push({t, AttackKind::kDefectStart, node, 0.0, {}});
    push({std::min(t + duty * period, t_end), AttackKind::kDefectEnd, node,
          0.0, {}});
  }
  return *this;
}

AttackPlan& AttackPlan::liar(double t_start, double t_end, NodeId node,
                             double factor) {
  if (!(std::isfinite(factor) && factor > 0.0))
    throw std::invalid_argument(
        "AttackPlan::liar: factor must be finite and > 0");
  if (!(t_end > t_start))
    throw std::invalid_argument("AttackPlan::liar: window end <= start");
  push({t_start, AttackKind::kLiarStart, node, factor, {}});
  return push({t_end, AttackKind::kLiarEnd, node, 0.0, {}});
}

AttackPlan& AttackPlan::withhold(double t_start, double t_end, NodeId node) {
  if (!(t_end > t_start))
    throw std::invalid_argument("AttackPlan::withhold: window end <= start");
  push({t_start, AttackKind::kWithholdStart, node, 0.0, {}});
  return push({t_end, AttackKind::kWithholdEnd, node, 0.0, {}});
}

AttackPlan AttackPlan::random_rings(std::size_t n, const RingSpec& spec,
                                    std::uint64_t seed) {
  AttackPlan plan;
  if (n == 0 || spec.rings == 0 || spec.ring_size == 0) return plan;
  Rng rng(mix64(seed, 0xa77aULL));
  const std::size_t want = std::min(spec.rings * spec.ring_size, n);
  auto pool = rng.sample_without_replacement(n, want);
  // Disjoint by construction; canonical member order inside each ring.
  for (std::size_t r = 0; r * spec.ring_size < pool.size(); ++r) {
    const std::size_t b = r * spec.ring_size;
    const std::size_t e = std::min(b + spec.ring_size, pool.size());
    if (e - b < 2) break;  // a one-node "ring" colludes with nobody
    std::vector<NodeId> members(pool.begin() + b, pool.begin() + e);
    std::sort(members.begin(), members.end());
    plan.ring(spec.start, spec.end, std::move(members));
  }
  return plan;
}

const std::vector<AttackEvent>& AttackPlan::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const AttackEvent& x, const AttackEvent& y) {
                       return x.time < y.time;
                     });
    sorted_ = true;
  }
  return events_;
}

double AttackPlan::end_time() const {
  const auto& es = events();
  return es.empty() ? 0.0 : es.back().time;
}

std::string AttackPlan::validate(std::size_t n) const {
  char buf[160];
  // Open-window state, keyed by node (and ring id for rings).
  std::unordered_map<NodeId, std::vector<NodeId>> open_rings;  // id -> members
  std::unordered_map<NodeId, NodeId> ringed;  // node -> open ring id
  std::unordered_set<NodeId> defecting, lying, withholding, departed;
  for (const AttackEvent& e : events()) {
    if (!(e.time >= 0.0) || !std::isfinite(e.time)) {
      std::snprintf(buf, sizeof(buf), "%s: bad time %g", attack::to_string(e.kind),
                    e.time);
      return buf;
    }
    if (e.kind != AttackKind::kRingStart && e.kind != AttackKind::kRingEnd &&
        e.a >= n) {
      std::snprintf(buf, sizeof(buf), "%s: node %zu out of range (n=%zu)",
                    attack::to_string(e.kind), e.a, n);
      return buf;
    }
    auto window = [&](std::unordered_set<NodeId>& open, bool is_start,
                      const char* what) -> const char* {
      if (is_start) {
        if (!open.insert(e.a).second) {
          std::snprintf(buf, sizeof(buf),
                        "%s: node %zu already %s (overlapping windows)",
                        attack::to_string(e.kind), e.a, what);
          return buf;
        }
      } else if (open.erase(e.a) == 0) {
        std::snprintf(buf, sizeof(buf), "%s: node %zu was not %s",
                      attack::to_string(e.kind), e.a, what);
        return buf;
      }
      return nullptr;
    };
    const char* problem = nullptr;
    switch (e.kind) {
      case AttackKind::kRingStart: {
        if (e.members.size() < 2) {
          std::snprintf(buf, sizeof(buf),
                        "ring_start: ring %zu has %zu members (need >= 2)",
                        e.a, e.members.size());
          return buf;
        }
        if (open_rings.count(e.a) != 0) {
          std::snprintf(buf, sizeof(buf), "ring_start: ring %zu started twice",
                        e.a);
          return buf;
        }
        std::unordered_set<NodeId> seen;
        for (const NodeId m : e.members) {
          if (m >= n) {
            std::snprintf(buf, sizeof(buf),
                          "ring_start: ring %zu member %zu out of range (n=%zu)",
                          e.a, m, n);
            return buf;
          }
          if (!seen.insert(m).second) {
            std::snprintf(buf, sizeof(buf),
                          "ring_start: ring %zu lists member %zu twice", e.a, m);
            return buf;
          }
          const auto it = ringed.find(m);
          if (it != ringed.end()) {
            std::snprintf(buf, sizeof(buf),
                          "ring_start: node %zu already colludes in ring %zu "
                          "(overlapping membership)",
                          m, it->second);
            return buf;
          }
        }
        for (const NodeId m : e.members) ringed[m] = e.a;
        open_rings[e.a] = e.members;
        break;
      }
      case AttackKind::kRingEnd: {
        const auto it = open_rings.find(e.a);
        if (it == open_rings.end()) {
          std::snprintf(buf, sizeof(buf), "ring_end: ring %zu is not open",
                        e.a);
          return buf;
        }
        for (const NodeId m : it->second) ringed.erase(m);
        open_rings.erase(it);
        break;
      }
      case AttackKind::kSybilLeave:
        problem = window(departed, /*is_start=*/true, "departed");
        break;
      case AttackKind::kSybilRejoin:
        problem = window(departed, /*is_start=*/false, "departed");
        break;
      case AttackKind::kDefectStart:
        problem = window(defecting, true, "defecting");
        break;
      case AttackKind::kDefectEnd:
        problem = window(defecting, false, "defecting");
        break;
      case AttackKind::kLiarStart:
        if (!(std::isfinite(e.rate) && e.rate > 0.0)) {
          std::snprintf(buf, sizeof(buf),
                        "liar_start: node %zu factor %g must be finite and > 0",
                        e.a, e.rate);
          return buf;
        }
        problem = window(lying, true, "lying");
        break;
      case AttackKind::kLiarEnd:
        problem = window(lying, false, "lying");
        break;
      case AttackKind::kWithholdStart:
        problem = window(withholding, true, "withholding");
        break;
      case AttackKind::kWithholdEnd:
        problem = window(withholding, false, "withholding");
        break;
    }
    if (problem != nullptr) return problem;
  }
  return {};
}

std::string format_attack(const AttackEvent& e) {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "t=%.17g %s", e.time, attack::to_string(e.kind));
  out += buf;
  switch (e.kind) {
    case AttackKind::kRingStart:
      std::snprintf(buf, sizeof(buf), " ring=%zu members=[", e.a);
      out += buf;
      for (std::size_t i = 0; i < e.members.size(); ++i) {
        if (i != 0) out += ',';
        std::snprintf(buf, sizeof(buf), "%zu", e.members[i]);
        out += buf;
      }
      out += ']';
      break;
    case AttackKind::kRingEnd:
      std::snprintf(buf, sizeof(buf), " ring=%zu", e.a);
      out += buf;
      break;
    case AttackKind::kSybilRejoin:
      std::snprintf(buf, sizeof(buf), " node=%zu whitewash=%d", e.a,
                    e.rate != 0.0 ? 1 : 0);
      out += buf;
      break;
    case AttackKind::kLiarStart:
      std::snprintf(buf, sizeof(buf), " node=%zu factor=%.17g", e.a, e.rate);
      out += buf;
      break;
    default:
      std::snprintf(buf, sizeof(buf), " node=%zu", e.a);
      out += buf;
      break;
  }
  out += '\n';
  return out;
}

std::string AttackPlan::to_string() const {
  std::string out;
  for (const AttackEvent& e : events()) out += format_attack(e);
  return out;
}

}  // namespace gt::attack
