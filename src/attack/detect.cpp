#include "attack/detect.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gt::attack {

std::vector<double> slander_bias(const trust::FeedbackLedger& ledger,
                                 std::size_t min_ratings) {
  const std::size_t n = ledger.num_peers();
  std::vector<double> out(n, std::numeric_limits<double>::quiet_NaN());
  if (n == 0) return out;

  // Burst consensus per ratee: mean clamped rating across all raters.
  std::vector<double> sum(n, 0.0);
  std::vector<std::uint32_t> cnt(n, 0);
  for (trust::NodeId i = 0; i < n; ++i) {
    for (const trust::Feedback& f : ledger.ratings_of(i)) {
      sum[f.ratee] += std::clamp(f.value, 0.0, 1.0);
      ++cnt[f.ratee];
    }
  }
  std::vector<bool> reputable(n, false);
  for (trust::NodeId j = 0; j < n; ++j)
    reputable[j] = cnt[j] > 0 && sum[j] / cnt[j] >= 0.5;

  const std::size_t need = std::max<std::size_t>(min_ratings, 1);
  for (trust::NodeId i = 0; i < n; ++i) {
    std::size_t condemnations = 0;
    std::size_t slanders = 0;
    for (const trust::Feedback& f : ledger.ratings_of(i)) {
      if (std::clamp(f.value, 0.0, 1.0) > 0.2) continue;
      ++condemnations;
      if (reputable[f.ratee]) ++slanders;
    }
    if (condemnations >= need)
      out[i] =
          static_cast<double>(slanders) / static_cast<double>(condemnations);
  }
  return out;
}

std::uint64_t emit_rating_bias(trace::TraceSink& sink, std::uint64_t series,
                               double t, std::span<const double> bias) {
  if (!sink.enabled()) return 0;
  const std::uint64_t sweep = sink.alloc_trace();
  for (std::size_t i = 0; i < bias.size(); ++i) {
    if (!std::isfinite(bias[i])) continue;
    sink.probe_field(sweep, series, t, static_cast<std::uint32_t>(i),
                     trace::ProbeField::kRatingBias, bias[i]);
  }
  return sweep;
}

}  // namespace gt::attack
