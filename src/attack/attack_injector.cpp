#include "attack/attack_injector.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace gt::attack {

AttackInjector::AttackInjector(sim::Scheduler& scheduler, net::Network& network,
                               AttackPlan plan)
    : scheduler_(scheduler),
      network_(network),
      plan_(std::move(plan)),
      state_(network.num_nodes()) {
  const std::string problem = plan_.validate(network_.num_nodes());
  if (!problem.empty())
    throw std::invalid_argument("AttackInjector: invalid plan: " + problem);
}

void AttackInjector::arm() {
  if (armed_) {
    std::fprintf(stderr, "fatal: AttackInjector::arm() called twice\n");
    std::abort();
  }
  armed_ = true;
  executed_.reserve(plan_.size());
  for (const AttackEvent& e : plan_.events()) {
    const double when = std::max(e.time, scheduler_.now());
    scheduler_.schedule_at(when, [this, &e] { execute(e); });
  }
}

void AttackInjector::execute(const AttackEvent& e) {
  state_.apply(e);
  // Sybil churn is the one behavior with membership side effects; the
  // network must reflect them before the hooks run (an on_leave hook that
  // checks Network::is_node_up already sees the node down, matching
  // FaultInjector's crash-hook ordering).
  if (e.kind == AttackKind::kSybilLeave) {
    network_.set_node_up(e.a, false);
  } else if (e.kind == AttackKind::kSybilRejoin) {
    network_.set_node_up(e.a, true);
  }

  executed_.push_back(AttackRecord{executed_.size(), e});

  if (trace_ != nullptr) {
    trace::TraceRecord rec;
    rec.t_start = rec.t_end = scheduler_.now();
    rec.span_id = trace_->alloc_span();
    rec.kind = static_cast<std::uint32_t>(trace::SpanKind::kAttack);
    rec.flags = static_cast<std::uint32_t>(e.kind);
    if (e.kind != AttackKind::kRingStart && e.kind != AttackKind::kRingEnd)
      rec.node = static_cast<std::uint32_t>(e.a);
    rec.value = e.kind == AttackKind::kRingStart
                    ? static_cast<double>(e.members.size())
                    : e.rate;
    trace_->emit(rec);
  }

  if (events_ != nullptr) {
    auto rec = events_->record("attack");
    rec.field("sim_time", scheduler_.now())
        .field("index", executed_.back().index)
        .field("kind", to_string(e.kind));
    switch (e.kind) {
      case AttackKind::kRingStart:
        rec.field("ring", e.a).field("members", e.members.size());
        break;
      case AttackKind::kRingEnd:
        rec.field("ring", e.a);
        break;
      case AttackKind::kSybilRejoin:
        rec.field("node", e.a).field("whitewash", e.rate != 0.0 ? 1 : 0);
        break;
      case AttackKind::kLiarStart:
        rec.field("node", e.a).field("factor", e.rate);
        break;
      default:
        rec.field("node", e.a);
        break;
    }
  }

  if (e.kind == AttackKind::kSybilLeave) {
    for (const auto& hook : leave_hooks_) hook(e.a);
  } else if (e.kind == AttackKind::kSybilRejoin) {
    for (const auto& hook : rejoin_hooks_) hook(e.a);
    if (e.rate != 0.0)
      for (const auto& hook : whitewash_hooks_) hook(e.a);
  }
}

std::string AttackInjector::log_text() const {
  std::string out;
  char buf[64];
  for (const AttackRecord& rec : executed_) {
    std::snprintf(buf, sizeof(buf), "#%zu ", rec.index);
    out += buf;
    out += format_attack(rec.event);
  }
  return out;
}

}  // namespace gt::attack
