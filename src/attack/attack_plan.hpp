// Deterministic behavioral-adversary schedules.
//
// FaultPlan scripts *infrastructure* failures; an AttackPlan scripts
// *behavioral* adversaries over the same timeline: collusive
// slander/self-promotion rings (coordinated false feedback), Sybil
// leave-rejoin whitewashing (departing with a bad history, returning with
// a clean ledger), on-off oscillators (honest-then-defect duty cycles),
// and gossip-layer liars/withholders (corrupt or suppressed push-sum
// shares). A plan is a seeded, validated, time-sorted event list; an
// AttackInjector replays it through the scheduler (async runs) and the
// campaign driver replays it cycle-by-cycle (sync engine runs). Identical
// plan + identical seed => byte-identical attack logs and campaign JSONL.
// Attacks compose freely with FaultPlans — both are just timed events.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"

namespace gt::attack {

using NodeId = net::NodeId;

/// Every adversarial behavior this harness can script. Start/End pairs
/// bound a behavior window; unclosed windows run to the end of the run.
enum class AttackKind : std::uint8_t {
  kRingStart,     ///< collusive ring `a` forms over `members`
  kRingEnd,       ///< ring `a` disbands
  kSybilLeave,    ///< node `a` departs (its resident state is lost)
  kSybilRejoin,   ///< node `a` rejoins; rate != 0 => whitewashed ledger
  kDefectStart,   ///< oscillator `a` starts defecting in transactions
  kDefectEnd,     ///< oscillator `a` behaves honestly again
  kLiarStart,     ///< node `a` scales its own-component x share by `rate`
  kLiarEnd,       ///< node `a` stops lying on the gossip layer
  kWithholdStart, ///< node `a` suppresses all but its own component
  kWithholdEnd,   ///< node `a` relays shares honestly again
};

const char* to_string(AttackKind kind) noexcept;

/// One scheduled attack event. Which fields matter depends on `kind`:
/// ring events use `a` as the ring id (kRingStart also `members`); node
/// events use `a` as the node; kLiarStart uses `rate` as the share scale
/// factor; kSybilRejoin uses `rate` != 0 to mean "whitewash the ledger".
struct AttackEvent {
  double time = 0.0;
  AttackKind kind = AttackKind::kDefectStart;
  NodeId a = 0;
  double rate = 0.0;
  std::vector<NodeId> members;
};

/// Canonical one-line text form (newline-terminated): fixed field order,
/// %.17g numerics — deterministic byte-for-byte.
std::string format_attack(const AttackEvent& e);

/// Parameters for AttackPlan::random_rings.
struct RingSpec {
  double start = 0.0;        ///< ring formation time
  double end = 100.0;        ///< ring disband time
  std::size_t rings = 2;     ///< number of collusive rings
  std::size_t ring_size = 4; ///< members per ring
};

/// An ordered, validated behavioral-attack schedule. Builders throw
/// std::invalid_argument on locally malformed input (empty ring, bad
/// window, non-positive factor); cross-event problems (overlapping ring
/// membership, double starts, out-of-range ids) are reported by
/// validate(), which AttackInjector and the campaign driver turn into
/// exceptions with the offending event spelled out.
class AttackPlan {
 public:
  AttackPlan() = default;

  // -- Builder helpers (all return *this for chaining). Times are
  //    absolute; out-of-order insertion is fine, events() always sorts by
  //    (time, insertion order).

  /// Collusive ring over [t_start, t_end): members rate each other 1.0
  /// and slander every outsider 0.0 while the ring is up. Returns the
  /// ring id assigned to this ring (dense, starting at 0).
  AttackPlan& ring(double t_start, double t_end, std::vector<NodeId> members);

  /// Sybil whitewash: `node` departs at t_leave and rejoins at t_rejoin
  /// with (by default) a wiped feedback history — the join-churn-rejoin
  /// identity-reset attack.
  AttackPlan& sybil_whitewash(double t_leave, double t_rejoin, NodeId node,
                              bool whitewash = true);

  /// On-off oscillator: `node` defects for the first `duty` fraction of
  /// every `period` starting at t_start, until t_end.
  AttackPlan& oscillator(NodeId node, double t_start, double t_end,
                         double period, double duty);

  /// Gossip-layer liar: over [t_start, t_end), `node` multiplies its
  /// own-component x share by `factor` on the wire (> 1 self-promotes).
  AttackPlan& liar(double t_start, double t_end, NodeId node, double factor);

  /// Share withholder: over [t_start, t_end), `node` pushes only its own
  /// component and suppresses everything else it holds.
  AttackPlan& withhold(double t_start, double t_end, NodeId node);

  /// Seeded random collusive rings: disjoint pseudo-random member sets
  /// drawn from [0, n) (independent of every other RNG stream in a run).
  static AttackPlan random_rings(std::size_t n, const RingSpec& spec,
                                 std::uint64_t seed);

  /// Events sorted by (time, insertion order).
  const std::vector<AttackEvent>& events() const;

  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  std::size_t num_rings() const noexcept { return next_ring_; }

  /// Time of the last event (0 when empty).
  double end_time() const;

  /// Validates against an n-node population: times finite and >= 0, node
  /// ids < n, ring members in range and duplicate-free, liar factors
  /// finite and > 0, start/end windows correctly paired per node and
  /// behavior, no node in two time-overlapping rings, and no
  /// leave-while-departed / rejoin-while-present Sybil sequences. Returns
  /// an empty string when valid, else a description of the first problem.
  std::string validate(std::size_t n) const;

  /// Canonical text form, one event per line — deterministic, so two
  /// plans (or two runs of one plan) compare byte-for-byte.
  std::string to_string() const;

 private:
  AttackPlan& push(AttackEvent e);

  mutable std::vector<AttackEvent> events_;
  mutable bool sorted_ = true;
  std::size_t next_ring_ = 0;
};

}  // namespace gt::attack
