// Manipulation-signature inputs for the trace analyzer.
//
// The analyzer's attack detectors run on three probe series: per-column
// x-mass residuals (counterfeit mass), per-node score trajectories (rank
// jumps), and per-rater slander bias (feedback rings). The first two are
// emitted by the kernels/engine; this module computes the third from a
// feedback ledger and mirrors it into the trace as kRatingBias probe
// records, one sweep per feedback burst.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.hpp"
#include "trust/feedback.hpp"

namespace gt::attack {

/// Per-rater slander bias: of the rater's condemnations (ratings with
/// value <= 0.2), the fraction aimed at ratees the burst's own consensus
/// holds reputable (mean clamped rating across all raters >= 0.5). An
/// honest rater's low ratings track genuinely bad service, so its
/// condemnations land on consensus-low peers (bias 0); a slander ring
/// condemns only reputable outsiders (bias ~1) — and because only
/// condemnations enter the ratio, the ring's in-group praise cannot
/// dilute the signal. Raters with fewer than `min_ratings` condemnations
/// return NaN (no accusations to audit). Pass the *per-burst* ledger,
/// not an accumulated one: aging/accumulation confound the value scale.
std::vector<double> slander_bias(const trust::FeedbackLedger& ledger,
                                 std::size_t min_ratings = 2);

/// Emits one kRatingBias kProbe record per rater with a defined (finite)
/// bias, all sharing one freshly allocated sweep trace id, with `series`
/// as the burst index (the campaign uses the cycle number) at time t.
/// Returns the sweep trace id (0 when the sink is disabled).
std::uint64_t emit_rating_bias(trace::TraceSink& sink, std::uint64_t series,
                               double t, std::span<const double> bias);

}  // namespace gt::attack
