// Live behavioral state of an AttackPlan at some instant.
//
// AttackState folds sorted AttackEvents into per-node behavior flags and
// answers the two questions the rest of the stack asks:
//   * the gossip kernels (via gossip::ShareAdversary): does node i lie
//     about or withhold its shares right now?
//   * the feedback/transaction layer: is node i defecting, colluding
//     (and with whom), or departed right now?
// Both the scheduler-driven AttackInjector (async runs) and the
// cycle-indexed campaign driver (sync engine runs) advance one of these;
// the fold is pure state bookkeeping — no RNG, no side effects — so the
// same event sequence always lands in the same state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "attack/attack_plan.hpp"
#include "gossip/adversary.hpp"

namespace gt::attack {

class AttackState final : public gossip::ShareAdversary {
 public:
  explicit AttackState(std::size_t n);

  std::size_t num_nodes() const noexcept { return n_; }

  /// Folds one event into the state. Events must arrive in plan order
  /// (the injector and campaign driver both walk the sorted list); the
  /// caller handles side effects beyond behavior flags (network
  /// membership, ledger wipes) by inspecting the event kind itself.
  void apply(const AttackEvent& e);

  // -- gossip::ShareAdversary -------------------------------------------
  double share_scale(std::uint32_t node) const override {
    return scale_[node];
  }
  bool withholds(std::uint32_t node) const override {
    return withhold_[node] != 0;
  }

  /// Dense views for the synchronous kernel / engine (size n). The
  /// `any_*` flags let callers pass empty spans when nothing is active,
  /// keeping unattacked cycles on the exact honest code path.
  std::span<const double> x_scale() const noexcept { return scale_; }
  std::span<const std::uint8_t> withhold_mask() const noexcept {
    return withhold_;
  }
  bool any_liar() const noexcept { return liars_ > 0; }
  bool any_withholder() const noexcept { return withholders_ > 0; }

  // -- Behavioral queries for feedback/transaction generation -----------
  bool defecting(NodeId i) const { return defect_[i] != 0; }
  bool departed(NodeId i) const { return departed_[i] != 0; }
  /// Ring id node i currently colludes in, -1 for none.
  int ring_of(NodeId i) const { return ring_[i]; }
  bool colluding(NodeId i) const { return ring_[i] >= 0; }
  /// Two nodes collude together right now.
  bool same_ring(NodeId i, NodeId j) const {
    return ring_[i] >= 0 && ring_[i] == ring_[j];
  }

  /// Node i exhibits any adversarial behavior right now.
  bool adversarial(NodeId i) const {
    return ring_[i] >= 0 || defect_[i] != 0 || withhold_[i] != 0 ||
           departed_[i] != 0 || scale_[i] != 1.0;
  }
  /// Node i has exhibited adversarial behavior at any point so far —
  /// the attacker set the campaign's capture-rate metric scores against.
  bool ever_adversarial(NodeId i) const { return ever_[i] != 0; }
  std::size_t num_ever_adversarial() const;

 private:
  std::size_t n_;
  std::vector<double> scale_;         // own-share x multiplier, 1.0 honest
  std::vector<std::uint8_t> withhold_;
  std::vector<std::uint8_t> defect_;
  std::vector<std::uint8_t> departed_;
  std::vector<int> ring_;             // open ring id, -1 none
  std::vector<std::uint8_t> ever_;
  std::vector<std::vector<NodeId>> ring_members_;  // by ring id, while open
  std::size_t liars_ = 0;
  std::size_t withholders_ = 0;
};

}  // namespace gt::attack
