// Replays an AttackPlan through the scheduler, deterministically.
//
// The injector turns each scheduled attack event into a sim::Scheduler
// event that folds the behavior change into an AttackState (which the
// gossip layer consults as its ShareAdversary) and applies the membership
// side effects of Sybil churn (net::Network node up/down, protocol and
// ledger hooks). Every executed event is appended to an in-memory log
// whose text serialization carries no wall-clock timestamps, so two runs
// of one plan produce byte-identical logs. With a trace sink attached,
// each event emits one kAttack instant marker (flags = AttackKind);
// with an EventLog, one `attack` JSONL record. Composes freely with a
// FaultInjector on the same scheduler — both are just timed events.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "attack/attack_plan.hpp"
#include "attack/attack_state.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/event_log.hpp"
#include "trace/trace.hpp"

namespace gt::attack {

/// One attack event as it actually fired: plan entry + execution order.
struct AttackRecord {
  std::size_t index = 0;  ///< execution sequence number
  AttackEvent event;
};

class AttackInjector {
 public:
  using NodeHook = std::function<void(NodeId)>;

  /// The plan must validate against `network`; a malformed plan throws
  /// std::invalid_argument naming the offending event (unlike
  /// FaultInjector's abort: attack scripts arrive from campaign configs,
  /// not just hand-written tests, so they get a catchable error).
  AttackInjector(sim::Scheduler& scheduler, net::Network& network,
                 AttackPlan plan);

  /// Live behavior flags — hand this to AsyncGossip::set_adversary and
  /// the feedback layer. Valid for the injector's lifetime.
  const AttackState& state() const noexcept { return state_; }
  AttackState& state() noexcept { return state_; }

  /// Membership hooks, called after the network state change is applied.
  /// Register before arm(). on_whitewash fires on rejoins that wipe the
  /// ledger (after on_rejoin).
  void on_leave(NodeHook hook) { leave_hooks_.push_back(std::move(hook)); }
  void on_rejoin(NodeHook hook) { rejoin_hooks_.push_back(std::move(hook)); }
  void on_whitewash(NodeHook hook) {
    whitewash_hooks_.push_back(std::move(hook));
  }

  /// Optional JSONL sink: one `attack` record per executed event.
  void set_event_log(telemetry::EventLog* events) { events_ = events; }

  /// Optional trace sink: one kAttack instant marker per executed event
  /// (flags = AttackKind, node = the affected node, value = rate).
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

  /// Schedules every event in the plan (absolute times; events already in
  /// the past fire at the scheduler's next step). Call exactly once.
  void arm();

  const AttackPlan& plan() const noexcept { return plan_; }
  std::size_t attacks_executed() const noexcept { return executed_.size(); }
  std::size_t attacks_pending() const noexcept {
    return plan_.size() - executed_.size();
  }
  const std::vector<AttackRecord>& executed() const noexcept {
    return executed_;
  }

  /// Deterministic text serialization of the executed events, in
  /// execution order: identical plan => byte-identical text across runs.
  std::string log_text() const;

 private:
  void execute(const AttackEvent& e);

  sim::Scheduler& scheduler_;
  net::Network& network_;
  AttackPlan plan_;
  AttackState state_;
  bool armed_ = false;
  std::vector<NodeHook> leave_hooks_;
  std::vector<NodeHook> rejoin_hooks_;
  std::vector<NodeHook> whitewash_hooks_;
  std::vector<AttackRecord> executed_;
  telemetry::EventLog* events_ = nullptr;
  trace::TraceSink* trace_ = nullptr;
};

}  // namespace gt::attack
