#include "attack/attack_state.hpp"

namespace gt::attack {

AttackState::AttackState(std::size_t n)
    : n_(n),
      scale_(n, 1.0),
      withhold_(n, 0),
      defect_(n, 0),
      departed_(n, 0),
      ring_(n, -1),
      ever_(n, 0) {}

void AttackState::apply(const AttackEvent& e) {
  switch (e.kind) {
    case AttackKind::kRingStart: {
      if (ring_members_.size() <= e.a) ring_members_.resize(e.a + 1);
      ring_members_[e.a] = e.members;
      for (const NodeId m : e.members) {
        ring_[m] = static_cast<int>(e.a);
        ever_[m] = 1;
      }
      break;
    }
    case AttackKind::kRingEnd:
      if (e.a < ring_members_.size()) {
        for (const NodeId m : ring_members_[e.a]) ring_[m] = -1;
        ring_members_[e.a].clear();
      }
      break;
    case AttackKind::kSybilLeave:
      departed_[e.a] = 1;
      ever_[e.a] = 1;
      break;
    case AttackKind::kSybilRejoin:
      departed_[e.a] = 0;
      break;
    case AttackKind::kDefectStart:
      defect_[e.a] = 1;
      ever_[e.a] = 1;
      break;
    case AttackKind::kDefectEnd:
      defect_[e.a] = 0;
      break;
    case AttackKind::kLiarStart:
      // A factor of exactly 1.0 is honest; don't count (or later leak) it.
      if (scale_[e.a] == 1.0 && e.rate != 1.0) ++liars_;
      scale_[e.a] = e.rate;
      if (e.rate != 1.0) ever_[e.a] = 1;
      break;
    case AttackKind::kLiarEnd:
      if (scale_[e.a] != 1.0) --liars_;
      scale_[e.a] = 1.0;
      break;
    case AttackKind::kWithholdStart:
      if (withhold_[e.a] == 0) ++withholders_;
      withhold_[e.a] = 1;
      ever_[e.a] = 1;
      break;
    case AttackKind::kWithholdEnd:
      if (withhold_[e.a] != 0) --withholders_;
      withhold_[e.a] = 0;
      break;
  }
}

std::size_t AttackState::num_ever_adversarial() const {
  std::size_t count = 0;
  for (const auto f : ever_) count += f != 0;
  return count;
}

}  // namespace gt::attack
