// Small-buffer-only callable for the discrete-event hot path.
//
// std::function<void()> type-erases through the heap whenever the capture
// exceeds the implementation's tiny SBO window (16 bytes on libstdc++), so
// every scheduled gossip event used to cost an allocator round-trip before
// any simulation work happened. InlineCallback is the allocation-free
// replacement: a fixed 48-byte inline buffer, a three-entry manual vtable
// (invoke / relocate / destroy), and a *compile-time* rejection of captures
// that do not fit — an oversized lambda is a loud static_assert naming the
// limit, never a silent heap fallback. Move-only, like the events it
// carries.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace gt::sim {

/// Capture budget for scheduled events: six pointer-sized slots. Big enough
/// for every event closure in the simulator (the largest, AsyncGossip's
/// timer-arming lambda, captures this + node + rng ref + overlay + a
/// shared_ptr = exactly 48 bytes); small enough that a heap of events stays
/// cache-resident.
inline constexpr std::size_t kInlineCallbackCapacity = 48;

/// Move-only `void()` callable with inline-only storage.
class InlineCallback {
 public:
  InlineCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors
                           // std::function's converting constructor
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineCallbackCapacity,
                  "InlineCallback: callable capture exceeds the 48-byte "
                  "inline budget — shrink the capture (pack indices, move "
                  "shared state behind one pointer) instead of growing the "
                  "event; scheduled events must stay allocation-free");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "InlineCallback: over-aligned callable");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InlineCallback: callable must be nothrow-movable (the "
                  "event pool relocates callbacks when slabs grow)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::ops;
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  ///< move-construct dst, destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  struct OpsFor {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void move_from(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCallbackCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace gt::sim
