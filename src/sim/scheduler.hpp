// Discrete-event simulation engine.
//
// The paper evaluates GossipTrust with "our own discrete event driven
// simulator"; this is ours. Time is a double (arbitrary units — the gossip
// experiments use one unit per gossip step, the file-sharing workload uses
// one unit per query). Events are closures ordered by (time, sequence), so
// ties execute in scheduling order and runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "telemetry/metrics.hpp"

namespace gt::sim {

using SimTime = double;
using EventId = std::uint64_t;

/// Deterministic discrete-event scheduler.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `when` (must be >= now). Returns an id
  /// that can be passed to cancel().
  EventId schedule_at(SimTime when, Callback cb);

  /// Schedules `cb` after a relative delay.
  EventId schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedules a periodic callback firing every `period` starting at
  /// now + period; the callback receives nothing and reschedules itself
  /// until cancel() is called on the returned id.
  EventId schedule_periodic(SimTime period, Callback cb);

  /// Cancels a pending event. Safe on already-fired or unknown ids
  /// (returns false in those cases).
  bool cancel(EventId id);

  /// Runs events until the queue empties or `horizon` is passed.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime horizon = std::numeric_limits<SimTime>::infinity());

  /// Executes exactly one event if available; returns whether one ran.
  bool step();

  /// Number of events waiting (including cancelled tombstones not yet popped).
  std::size_t pending() const noexcept { return queue_.size() - cancelled_pending_; }

  /// Total events executed since construction or the last reset().
  std::size_t executed() const noexcept { return executed_; }

  /// Drops all pending events, resets the clock to zero, and zeroes the
  /// executed-event counter: a reset scheduler is indistinguishable from a
  /// freshly constructed one.
  void reset();

  /// Mirrors event counters (`sim.events_scheduled` / `sim.events_executed`
  /// / `sim.events_cancelled`) into `registry` (lane 0); null detaches.
  void attach_telemetry(telemetry::MetricsRegistry* registry);

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    bool operator>(const Entry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  struct Pending {
    Callback cb;
    bool cancelled = false;
    bool periodic = false;
    SimTime period = 0.0;
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<Pending> events_;          // indexed by EventId
  std::vector<EventId> free_ids_;        // recycled slots
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t cancelled_pending_ = 0;

  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Counter m_scheduled_, m_executed_, m_cancelled_;

  EventId alloc_event(Callback cb);
};

}  // namespace gt::sim
