// Discrete-event simulation engine.
//
// The paper evaluates GossipTrust with "our own discrete event driven
// simulator"; this is ours. Time is a double (arbitrary units — the gossip
// experiments use one unit per gossip step, the file-sharing workload uses
// one unit per query). Events are closures ordered by (time, sequence), so
// ties execute in scheduling order and runs are fully deterministic.
//
// The event core is allocation-free in steady state:
//   * callbacks are InlineCallback (48-byte inline storage, compile-time
//     rejection of oversized captures) instead of std::function, so no
//     closure ever touches the heap;
//   * event slots live in a slab (std::vector) recycled through a freelist,
//     and the ready queue is a 4-ary heap over a flat vector — both reach a
//     high-water capacity and then stop allocating;
//   * event ids carry a per-slot generation counter, so an id from a
//     completed event can never cancel the event that later reused its slot
//     (stale cancels are counted and reported instead of misfiring).
// The heap pops the strict minimum by (time, seq) exactly like the
// std::priority_queue it replaced, so event order — and therefore RNG
// consumption and simulation results — is bit-identical to the legacy
// implementation.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/inline_callback.hpp"
#include "telemetry/metrics.hpp"

namespace gt::sim {

using SimTime = double;

/// Opaque event id: low 32 bits index the slot slab, high 32 bits carry the
/// slot's generation at allocation time. 0 is never a valid id (generations
/// start at 1), so a default-initialized id is always a safe no-op cancel.
using EventId = std::uint64_t;

/// Deterministic discrete-event scheduler.
class Scheduler {
 public:
  using Callback = InlineCallback;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `when` (must be >= now). Returns an id
  /// that can be passed to cancel().
  EventId schedule_at(SimTime when, Callback cb);

  /// Schedules `cb` after a relative delay.
  EventId schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedules a periodic callback firing every `period` starting at
  /// now + period; the callback receives nothing and reschedules itself
  /// until cancel() is called on the returned id.
  EventId schedule_periodic(SimTime period, Callback cb);

  /// Cancels a pending event. Safe on already-fired or unknown ids
  /// (returns false in those cases). A stale id — one whose slot was
  /// recycled by a later event — is guaranteed not to cancel the newer
  /// event: the generation mismatch makes it a no-op, counted in
  /// stale_cancels() and the `sim.stale_cancels` telemetry counter.
  bool cancel(EventId id);

  /// Runs events until the queue empties or `horizon` is passed.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime horizon = std::numeric_limits<SimTime>::infinity());

  /// Runs every event strictly before `horizon` (events at exactly
  /// `horizon` stay queued) and returns the number executed. The clock is
  /// left at the last executed event, so the caller may keep scheduling at
  /// any time >= that. This is the conservative-window primitive of the
  /// sharded engine: a shard executes its window [W, W + lookahead) with
  /// run_before(W + lookahead), and every message generated inside the
  /// window arrives at or after the boundary, never inside it.
  std::size_t run_before(SimTime horizon);

  /// Executes exactly one event if available; returns whether one ran.
  bool step();

  /// Number of events waiting (excluding cancelled tombstones not yet popped).
  std::size_t pending() const noexcept { return heap_.size() - cancelled_pending_; }

  /// Total events executed since construction or the last reset().
  std::size_t executed() const noexcept { return executed_; }

  /// Cancels that named an already-completed (and possibly recycled) event:
  /// each was refused rather than misdirected at the slot's new occupant.
  std::size_t stale_cancels() const noexcept { return stale_cancels_; }

  /// Drops all pending events, resets the clock to zero, and zeroes the
  /// executed-event counter: a reset scheduler behaves like a freshly
  /// constructed one, except that slot generations keep climbing — an
  /// EventId minted before reset() can never cancel a post-reset event
  /// that reuses its slot (it is refused as stale instead). Slab/heap
  /// capacity is retained as a warm cache.
  void reset();

  /// Mirrors event counters (`sim.events_scheduled` / `sim.events_executed`
  /// / `sim.events_cancelled` / `sim.stale_cancels`) into `registry`
  /// (lane 0); null detaches.
  void attach_telemetry(telemetry::MetricsRegistry* registry);

 private:
  /// One slab slot. `gen` counts how many events have occupied the slot;
  /// ids minted from it embed the generation, and only a matching pair is
  /// live. Slots are recycled through `free_slots_`.
  struct Event {
    Callback cb;
    std::uint32_t gen = 0;
    bool live = false;
    bool cancelled = false;
    bool periodic = false;
    SimTime period = 0.0;
  };

  /// Ready-queue entry: 24 bytes, three per cache line. The heap key is
  /// (when, seq); seq is unique, so the pop order is a total order.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t pad = 0;
  };

  static bool entry_less(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void heap_push(HeapEntry e);
  HeapEntry heap_pop();
  /// Pops cancelled tombstones off the heap top so heap_[0] (when present)
  /// is the earliest *live* event — the entry horizon checks must look at.
  void prune_cancelled_top();

  std::uint32_t alloc_slot(Callback cb);
  EventId make_id(std::uint32_t slot) const noexcept {
    return (static_cast<EventId>(events_[slot].gen) << 32) | slot;
  }
  void release_slot(std::uint32_t slot);

  std::vector<HeapEntry> heap_;          // 4-ary min-heap by (when, seq)
  std::vector<Event> events_;            // slot slab
  std::vector<std::uint32_t> free_slots_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t cancelled_pending_ = 0;
  std::size_t stale_cancels_ = 0;

  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Counter m_scheduled_, m_executed_, m_cancelled_, m_stale_;
};

}  // namespace gt::sim
