#include "sim/scheduler.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace gt::sim {

EventId Scheduler::alloc_event(Callback cb) {
  EventId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    events_[id] = Pending{std::move(cb), false, false, 0.0};
  } else {
    id = events_.size();
    events_.push_back(Pending{std::move(cb), false, false, 0.0});
  }
  return id;
}

void Scheduler::attach_telemetry(telemetry::MetricsRegistry* registry) {
  metrics_ = registry;
  if (metrics_ != nullptr) {
    m_scheduled_ = metrics_->counter("sim.events_scheduled");
    m_executed_ = metrics_->counter("sim.events_executed");
    m_cancelled_ = metrics_->counter("sim.events_cancelled");
  }
}

EventId Scheduler::schedule_at(SimTime when, Callback cb) {
  if (when < now_) throw std::invalid_argument("Scheduler: cannot schedule in the past");
  const EventId id = alloc_event(std::move(cb));
  queue_.push(Entry{when, seq_++, id});
  if (metrics_ != nullptr) metrics_->add(m_scheduled_);
  return id;
}

EventId Scheduler::schedule_periodic(SimTime period, Callback cb) {
  if (period <= 0.0) throw std::invalid_argument("Scheduler: period must be positive");
  const EventId id = alloc_event(std::move(cb));
  events_[id].periodic = true;
  events_[id].period = period;
  queue_.push(Entry{now_ + period, seq_++, id});
  if (metrics_ != nullptr) metrics_->add(m_scheduled_);
  return id;
}

bool Scheduler::cancel(EventId id) {
  if (id >= events_.size()) return false;
  Pending& p = events_[id];
  if (p.cancelled || !p.cb) return false;
  p.cancelled = true;
  ++cancelled_pending_;
  if (metrics_ != nullptr) metrics_->add(m_cancelled_);
  return true;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    queue_.pop();
    Pending& p = events_[top.id];
    if (p.cancelled) {
      --cancelled_pending_;
      p = Pending{};
      free_ids_.push_back(top.id);
      continue;
    }
    assert(top.when >= now_);
    now_ = top.when;
    ++executed_;
    if (metrics_ != nullptr) metrics_->add(m_executed_);
    if (p.periodic) {
      // Re-arm before invoking so the callback may cancel itself.
      queue_.push(Entry{now_ + p.period, seq_++, top.id});
      p.cb();
    } else {
      Callback cb = std::move(p.cb);
      p = Pending{};
      free_ids_.push_back(top.id);
      cb();
    }
    return true;
  }
  return false;
}

std::size_t Scheduler::run_until(SimTime horizon) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.when > horizon) break;
    if (step()) ++count;
  }
  // Advance the clock to the horizon when it is finite so repeated calls
  // with increasing horizons behave like wall-clock progression.
  if (horizon != std::numeric_limits<SimTime>::infinity() && now_ < horizon) {
    now_ = horizon;
  }
  return count;
}

void Scheduler::reset() {
  queue_ = {};
  events_.clear();
  free_ids_.clear();
  now_ = 0.0;
  seq_ = 0;
  executed_ = 0;  // a reused scheduler must not report pre-reset executions
  cancelled_pending_ = 0;
}

}  // namespace gt::sim
