#include "sim/scheduler.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace gt::sim {

// 4-ary heap layout over the flat vector: children of i are 4i+1 .. 4i+4.
// Shallower than a binary heap (log4 vs log2 levels), so a push/pop touches
// fewer cache lines; the wider sibling scan is four comparisons against
// entries that share at most two cache lines.

void Scheduler::heap_push(HeapEntry e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!entry_less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Scheduler::HeapEntry Scheduler::heap_pop() {
  assert(!heap_.empty());
  const HeapEntry top = heap_[0];
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    std::size_t i = 0;
    const std::size_t size = heap_.size();
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= size) break;
      std::size_t best = first_child;
      const std::size_t end = std::min(first_child + 4, size);
      for (std::size_t c = first_child + 1; c < end; ++c)
        if (entry_less(heap_[c], heap_[best])) best = c;
      if (!entry_less(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

std::uint32_t Scheduler::alloc_slot(Callback cb) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(events_.size());
    events_.emplace_back();
  }
  Event& e = events_[slot];
  e.cb = std::move(cb);
  ++e.gen;  // first occupancy gets gen 1, so id 0 is never valid
  if (e.gen == 0) ++e.gen;  // skip 0 on wraparound
  e.live = true;
  e.cancelled = false;
  e.periodic = false;
  e.period = 0.0;
  return slot;
}

void Scheduler::release_slot(std::uint32_t slot) {
  Event& e = events_[slot];
  e.cb.reset();
  e.live = false;
  e.cancelled = false;
  e.periodic = false;
  free_slots_.push_back(slot);
}

void Scheduler::attach_telemetry(telemetry::MetricsRegistry* registry) {
  metrics_ = registry;
  if (metrics_ != nullptr) {
    m_scheduled_ = metrics_->counter("sim.events_scheduled");
    m_executed_ = metrics_->counter("sim.events_executed");
    m_cancelled_ = metrics_->counter("sim.events_cancelled");
    m_stale_ = metrics_->counter("sim.stale_cancels");
  }
}

EventId Scheduler::schedule_at(SimTime when, Callback cb) {
  if (when < now_) throw std::invalid_argument("Scheduler: cannot schedule in the past");
  const std::uint32_t slot = alloc_slot(std::move(cb));
  heap_push(HeapEntry{when, seq_++, slot, 0});
  if (metrics_ != nullptr) metrics_->add(m_scheduled_);
  return make_id(slot);
}

EventId Scheduler::schedule_periodic(SimTime period, Callback cb) {
  if (period <= 0.0) throw std::invalid_argument("Scheduler: period must be positive");
  const std::uint32_t slot = alloc_slot(std::move(cb));
  events_[slot].periodic = true;
  events_[slot].period = period;
  heap_push(HeapEntry{now_ + period, seq_++, slot, 0});
  if (metrics_ != nullptr) metrics_->add(m_scheduled_);
  return make_id(slot);
}

bool Scheduler::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (gen == 0 || slot >= events_.size()) return false;
  Event& e = events_[slot];
  if (e.gen != gen) {
    // The event this id named has completed and its slot may have been
    // recycled: refuse loudly (counter + telemetry) instead of silently
    // cancelling the slot's current occupant.
    ++stale_cancels_;
    if (metrics_ != nullptr) metrics_->add(m_stale_);
    return false;
  }
  if (!e.live || e.cancelled) return false;
  e.cancelled = true;
  ++cancelled_pending_;
  if (metrics_ != nullptr) metrics_->add(m_cancelled_);
  return true;
}

void Scheduler::prune_cancelled_top() {
  while (!heap_.empty() && events_[heap_[0].slot].cancelled) {
    const HeapEntry top = heap_pop();
    --cancelled_pending_;
    release_slot(top.slot);
  }
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_pop();
    const std::uint32_t slot = top.slot;
    Event& e = events_[slot];
    if (e.cancelled) {
      --cancelled_pending_;
      release_slot(slot);
      continue;
    }
    assert(top.when >= now_);
    now_ = top.when;
    ++executed_;
    if (metrics_ != nullptr) metrics_->add(m_executed_);
    if (e.periodic) {
      // Re-arm before invoking so the callback may cancel itself. The
      // callback runs from a local (the slab may grow — and relocate — if
      // the callback schedules events) and is moved back afterwards unless
      // the callback cancelled its own id.
      heap_push(HeapEntry{now_ + e.period, seq_++, slot, 0});
      const std::uint32_t gen = e.gen;
      Callback cb = std::move(e.cb);
      cb();
      // Re-index: the slab may have reallocated (the callback scheduled
      // events) or been reset; move the callback back only when the slot
      // still holds this very occupancy and it was not cancelled.
      if (slot < events_.size()) {
        Event& after = events_[slot];
        if (after.live && after.gen == gen && !after.cancelled)
          after.cb = std::move(cb);
      }
    } else {
      Callback cb = std::move(e.cb);
      release_slot(slot);
      cb();
    }
    return true;
  }
  return false;
}

std::size_t Scheduler::run_until(SimTime horizon) {
  std::size_t count = 0;
  for (;;) {
    // Peel cancelled tombstones first: the horizon comparison must look at
    // the earliest *live* event, or a cancelled entry inside the horizon
    // could let step() execute a live event beyond it.
    prune_cancelled_top();
    if (heap_.empty() || heap_[0].when > horizon) break;
    if (step()) ++count;
  }
  // Advance the clock to the horizon when it is finite so repeated calls
  // with increasing horizons behave like wall-clock progression.
  if (horizon != std::numeric_limits<SimTime>::infinity() && now_ < horizon) {
    now_ = horizon;
  }
  return count;
}

std::size_t Scheduler::run_before(SimTime horizon) {
  std::size_t count = 0;
  for (;;) {
    prune_cancelled_top();
    if (heap_.empty() || !(heap_[0].when < horizon)) break;
    if (step()) ++count;
  }
  return count;
}

void Scheduler::reset() {
  heap_.clear();
  // Release slots instead of destroying them: the slab keeps each slot's
  // generation counter, so EventIds minted before the reset stay stale and
  // can never cancel a post-reset event that happens to reuse their slot.
  free_slots_.clear();
  free_slots_.reserve(events_.size());
  for (std::size_t i = events_.size(); i-- > 0;) {
    Event& e = events_[i];
    e.cb.reset();
    e.live = false;
    e.cancelled = false;
    e.periodic = false;
    free_slots_.push_back(static_cast<std::uint32_t>(i));
  }
  now_ = 0.0;
  seq_ = 0;
  executed_ = 0;  // a reused scheduler must not report pre-reset executions
  cancelled_pending_ = 0;
  stale_cancels_ = 0;
}

}  // namespace gt::sim
