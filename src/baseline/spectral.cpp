#include "baseline/spectral.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace gt::baseline {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

void scale(std::vector<double>& a, double k) {
  for (auto& x : a) x *= k;
}

void axpy(std::vector<double>& y, double k, const std::vector<double>& x) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += k * x[i];
}

}  // namespace

std::size_t SpectralEstimate::predicted_cycles(double delta) const {
  const double b = ratio();
  if (delta <= 0.0 || delta >= 1.0)
    throw std::invalid_argument("predicted_cycles: delta must be in (0, 1)");
  if (b <= 0.0) return 1;
  if (b >= 1.0) return static_cast<std::size_t>(-1);  // no contraction: unbounded
  return static_cast<std::size_t>(std::ceil(std::log(delta) / std::log(b)));
}

SpectralEstimate estimate_spectral_gap(const trust::SparseMatrix& s,
                                       std::size_t iterations) {
  const std::size_t n = s.size();
  if (n == 0) throw std::invalid_argument("estimate_spectral_gap: empty matrix");
  if (n == 1) return SpectralEstimate{1.0, 0.0};

  // Orthogonal iteration with a 2-dimensional subspace: v tracks the
  // dominant eigenvector, u the second after deflation against v.
  std::vector<double> v(n), u(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.0 / static_cast<double>(n);
    // Deterministic start with a sign alternation, orthogonal-ish to v.
    u[i] = (i % 2 == 0) ? 1.0 : -1.0;
  }

  SpectralEstimate est;
  for (std::size_t it = 0; it < iterations; ++it) {
    auto nv = s.transpose_multiply(v);
    auto nu = s.transpose_multiply(u);

    const double nv_norm = norm2(nv);
    if (nv_norm <= 0.0) break;
    est.lambda1 = nv_norm / std::max(norm2(v), 1e-300);
    scale(nv, 1.0 / nv_norm);

    // Deflate u against the current dominant direction, then normalize.
    axpy(nu, -dot(nu, nv), nv);
    const double nu_norm = norm2(nu);
    if (nu_norm <= 1e-300) {
      est.lambda2 = 0.0;
      v = std::move(nv);
      break;
    }
    est.lambda2 = nu_norm / std::max(norm2(u), 1e-300);
    scale(nu, 1.0 / nu_norm);

    v = std::move(nv);
    u = std::move(nu);
  }

  // lambda estimates from the last Rayleigh-style growth factors; for the
  // normalized ratios recompute growth on one more clean application.
  {
    const auto sv = s.transpose_multiply(v);
    est.lambda1 = norm2(sv);  // ||v|| == 1
    auto su = s.transpose_multiply(u);
    axpy(su, -dot(su, v), v);
    est.lambda2 = norm2(su);  // ||u|| == 1, deflated
  }
  return est;
}

}  // namespace gt::baseline
