#include "baseline/local_only.hpp"

#include <stdexcept>

namespace gt::baseline {

std::vector<double> notrust_scores(std::size_t n) {
  if (n == 0) return {};
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

namespace {

/// Observer's normalized rating vector (Eq. 1 applied to one row).
std::vector<double> normalized_row(const trust::FeedbackLedger& ledger,
                                   std::size_t observer) {
  const std::size_t n = ledger.num_peers();
  std::vector<double> row(n, 0.0);
  double total = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    row[j] = ledger.raw_score(observer, j);
    total += row[j];
  }
  if (total > 0.0)
    for (auto& x : row) x /= total;
  return row;
}

}  // namespace

std::vector<double> local_scores(const trust::FeedbackLedger& ledger,
                                 std::size_t observer) {
  if (observer >= ledger.num_peers())
    throw std::out_of_range("local_scores: observer out of range");
  return normalized_row(ledger, observer);
}

std::vector<double> neighborhood_scores(const trust::FeedbackLedger& ledger,
                                        const graph::Graph& overlay,
                                        std::size_t observer) {
  const std::size_t n = ledger.num_peers();
  if (overlay.num_nodes() != n)
    throw std::invalid_argument("neighborhood_scores: overlay size mismatch");
  if (observer >= n) throw std::out_of_range("neighborhood_scores: observer");

  std::vector<double> acc = normalized_row(ledger, observer);
  std::size_t opinions = 1;
  for (const auto nbr : overlay.neighbors(observer)) {
    const auto row = normalized_row(ledger, nbr);
    for (std::size_t j = 0; j < n; ++j) acc[j] += row[j];
    ++opinions;
  }
  for (auto& x : acc) x /= static_cast<double>(opinions);
  return acc;
}

}  // namespace gt::baseline
