// Spectral estimation for the convergence-bound theory.
//
// The paper (section 4.1, citing PowerTrust) bounds the number of
// aggregation cycles by d <= ceil(log_b delta) with b = lambda2/lambda1,
// the eigenvalue ratio of the trust matrix: the iteration error contracts
// by factor b per cycle. This module estimates |lambda1| and |lambda2| of
// S^T by orthogonal (subspace) iteration so tests and benches can check
// the measured cycle counts against the predicted bound.
#pragma once

#include <cstddef>

#include "trust/matrix.hpp"

namespace gt::baseline {

struct SpectralEstimate {
  double lambda1 = 0.0;  ///< dominant eigenvalue magnitude (1 for stochastic S)
  double lambda2 = 0.0;  ///< magnitude of the second eigenvalue
  double ratio() const { return lambda1 > 0.0 ? lambda2 / lambda1 : 0.0; }

  /// The paper's cycle bound d <= ceil(log_b delta): error delta is
  /// reached once ratio()^d <= delta.
  std::size_t predicted_cycles(double delta) const;
};

/// Two-vector orthogonal iteration on S^T (with the same uniform dangling
/// redistribution the aggregation uses). Deterministic: starts from fixed
/// orthogonal vectors.
SpectralEstimate estimate_spectral_gap(const trust::SparseMatrix& s,
                                       std::size_t iterations = 300);

}  // namespace gt::baseline
