#include "baseline/power_iteration.hpp"

#include <stdexcept>
#include <utility>

#include "common/stats.hpp"

namespace gt::baseline {

std::vector<double> exact_cycle(const trust::SparseMatrix& s,
                                const std::vector<double>& v,
                                const std::vector<core::NodeId>& power, double alpha) {
  std::vector<double> next = s.transpose_multiply(v);
  normalize_l1(next);
  core::apply_power_node_mix(next, power, alpha);
  return next;
}

PowerIterationResult power_iteration(const trust::SparseMatrix& s, double alpha,
                                     double power_node_fraction, double tol,
                                     std::size_t max_iterations) {
  const std::size_t n = s.size();
  if (n == 0) throw std::invalid_argument("power_iteration: empty matrix");

  PowerIterationResult result;
  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  std::vector<core::NodeId> power;

  for (std::size_t it = 0; it < max_iterations; ++it) {
    std::vector<double> next = exact_cycle(s, v, power, alpha);
    power = core::select_power_nodes(next, power_node_fraction);
    const double change = mean_relative_error(next, v);
    v = std::move(next);
    ++result.iterations;
    if (change < tol) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(v);
  result.power_nodes = std::move(power);
  return result;
}

PowerIterationResult plain_power_iteration(const trust::SparseMatrix& s, double tol,
                                           std::size_t max_iterations) {
  return power_iteration(s, /*alpha=*/0.0, /*power_node_fraction=*/0.0, tol,
                         max_iterations);
}

PowerIterationResult fixed_power_iteration(const trust::SparseMatrix& s, double alpha,
                                           std::vector<core::NodeId> power,
                                           double tol, std::size_t max_iterations) {
  const std::size_t n = s.size();
  if (n == 0) throw std::invalid_argument("fixed_power_iteration: empty matrix");

  PowerIterationResult result;
  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < max_iterations; ++it) {
    std::vector<double> next = exact_cycle(s, v, power, alpha);
    const double change = mean_relative_error(next, v);
    v = std::move(next);
    ++result.iterations;
    if (change < tol) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(v);
  result.power_nodes = std::move(power);
  return result;
}

}  // namespace gt::baseline
