// EigenTrust baseline (Kamvar et al., WWW'03), including its DHT cost model.
//
// EigenTrust computes the same principal eigenvector but damps toward a
// fixed *pre-trusted* set P (chosen a priori, not re-selected per cycle
// like GossipTrust's power nodes):
//
//   V(t+1) = (1 - a) S^T V(t) + a p,   p uniform over the pre-trusted set.
//
// In the DHT deployment each peer's score is maintained by score managers
// located via DHT lookups; we model the message cost of one aggregation
// round as one lookup per nonzero trust-matrix entry (each rater sends its
// local score share to the ratee's score manager), using the Chord
// substrate for hop counts. GossipTrust's corresponding per-step cost is
// one message per node — the comparison bench contrasts the two.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dht/chord.hpp"
#include "trust/matrix.hpp"

namespace gt::baseline {

struct EigenTrustResult {
  std::vector<double> scores;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Exact EigenTrust fixed point with a fixed pre-trusted set.
EigenTrustResult eigentrust(const trust::SparseMatrix& s,
                            const std::vector<std::size_t>& pretrusted, double a = 0.15,
                            double tol = 1e-12, std::size_t max_iterations = 10000);

/// DHT message-cost model for `rounds` aggregation rounds: every nonzero
/// entry (i, j) of S costs one Chord lookup from node i toward
/// hash(score-manager of j) per round. Returns total routing messages
/// (sum of hops).
std::uint64_t eigentrust_dht_messages(const trust::SparseMatrix& s,
                                      const dht::ChordRing& ring, std::size_t rounds);

}  // namespace gt::baseline
