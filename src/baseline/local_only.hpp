// Limited-information baselines.
//
// * NoTrust (Fig. 5's comparator): source selection ignores reputation —
//   a uniformly random provider is chosen. Represented here as a scoring
//   function returning a constant vector so the file-sharing selector code
//   path is identical for every system under test.
// * Local-only scoring (Marti & Garcia-Molina [12]): a peer trusts only
//   its own experience, optionally blended with its overlay neighbors'
//   experience — no global aggregation. Used in ablations to show why
//   global aggregation is worth its gossip cost.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/topology.hpp"
#include "trust/feedback.hpp"

namespace gt::baseline {

/// NoTrust: every peer equally scored (uniform vector).
std::vector<double> notrust_scores(std::size_t n);

/// Node `observer`'s purely local view: its own normalized ratings of each
/// peer; peers it never rated get 0.
std::vector<double> local_scores(const trust::FeedbackLedger& ledger,
                                 std::size_t observer);

/// Local + neighbor blend: observer's own normalized ratings averaged with
/// each overlay neighbor's normalized ratings (equal weight per opinion).
/// This is the "incorporating neighbors' ratings" variant of [12].
std::vector<double> neighborhood_scores(const trust::FeedbackLedger& ledger,
                                        const graph::Graph& overlay,
                                        std::size_t observer);

}  // namespace gt::baseline
