// PowerTrust baseline (Zhou & Hwang, IEEE TPDS 2007) — the authors' own
// DHT-based predecessor, from which GossipTrust inherits power nodes and
// the greedy factor. Reproduced here as an exact comparator:
//
//   * look-ahead random walk (LRW): each peer augments its trust row with
//     its ratees' rows, W = row-normalize(S + S^2). Looking one hop ahead
//     thickens the chain's connectivity and shrinks lambda2/lambda1, which
//     is PowerTrust's claimed convergence accelerator;
//   * power nodes + greedy factor: v = (1 - alpha) W^T v + alpha P with P
//     uniform over the top-m nodes, reselected per round (identical
//     machinery to core/power_nodes, shared here).
//
// The bench table contrasts PowerTrust's iteration count (it should need
// fewer rounds thanks to LRW) and its ranking agreement with GossipTrust.
#pragma once

#include <cstddef>
#include <vector>

#include "baseline/power_iteration.hpp"
#include "trust/matrix.hpp"

namespace gt::baseline {

/// Sparse look-ahead matrix W = row-normalize(S + S * S). Row i mixes the
/// peer's own opinions with the opinions of everyone it trusts, weighted
/// by that trust.
trust::SparseMatrix look_ahead_matrix(const trust::SparseMatrix& s);

/// Full PowerTrust aggregation: power iteration of the LRW matrix with
/// per-round power-node reselection and greedy-factor damping.
PowerIterationResult powertrust(const trust::SparseMatrix& s, double alpha = 0.15,
                                double power_node_fraction = 0.01,
                                double tol = 1e-12,
                                std::size_t max_iterations = 10000);

}  // namespace gt::baseline
