#include "baseline/powertrust.hpp"

#include <unordered_map>

namespace gt::baseline {

trust::SparseMatrix look_ahead_matrix(const trust::SparseMatrix& s) {
  const std::size_t n = s.size();
  trust::SparseMatrix::Builder b(n);
  std::unordered_map<trust::NodeId, double> row;
  for (trust::NodeId i = 0; i < n; ++i) {
    row.clear();
    // Own opinions: S.
    for (const auto& e : s.row(i)) row[e.col] += e.value;
    // One-hop look-ahead: (S^2)_ij = sum_k s_ik * s_kj — the opinions of
    // everyone peer i trusts, weighted by that trust.
    for (const auto& e : s.row(i)) {
      for (const auto& f : s.row(e.col)) row[f.col] += e.value * f.value;
    }
    row.erase(i);  // no self-trust, same invariant as Eq. (1)
    for (const auto& [col, value] : row) {
      if (value > 0.0) b.add(i, col, value);
    }
  }
  return std::move(b).build().row_normalized();
}

PowerIterationResult powertrust(const trust::SparseMatrix& s, double alpha,
                                double power_node_fraction, double tol,
                                std::size_t max_iterations) {
  const auto w = look_ahead_matrix(s);
  return power_iteration(w, alpha, power_node_fraction, tol, max_iterations);
}

}  // namespace gt::baseline
