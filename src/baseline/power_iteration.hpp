// Centralized exact aggregation: the ground truth every error metric in the
// paper's evaluation is measured against ("calculated" scores in Eq. 8).
//
// Runs dense-vector power iteration V <- S^T V with exactly the same
// normalization and power-node/greedy-factor mixing as the gossip engine,
// so the only difference between this and GossipTrust output is gossip
// error — which is precisely what Table 3 and Fig. 4 quantify.
#pragma once

#include <cstddef>
#include <vector>

#include "core/power_nodes.hpp"
#include "trust/matrix.hpp"

namespace gt::baseline {

struct PowerIterationResult {
  std::vector<double> scores;
  std::vector<core::NodeId> power_nodes;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Exact fixed point of the GossipTrust update (tol on mean relative change).
PowerIterationResult power_iteration(const trust::SparseMatrix& s, double alpha,
                                     double power_node_fraction, double tol = 1e-12,
                                     std::size_t max_iterations = 10000);

/// Plain principal-eigenvector power iteration (alpha = 0): Eq. (2) alone.
PowerIterationResult plain_power_iteration(const trust::SparseMatrix& s,
                                           double tol = 1e-12,
                                           std::size_t max_iterations = 10000);

/// One exact aggregation cycle (used by tests to check gossip against the
/// exact product): out = normalize(S^T v) then the alpha mix over `power`.
std::vector<double> exact_cycle(const trust::SparseMatrix& s,
                                const std::vector<double>& v,
                                const std::vector<core::NodeId>& power, double alpha);

/// Power iteration with a FIXED power-node set (no per-cycle reselection).
/// Used to build the honest reference in the attack experiments: the
/// reference is evaluated with the same anchors the attacked system chose,
/// so Eq. (8) measures attack-induced error rather than power-set
/// mismatch between two self-consistent runs.
PowerIterationResult fixed_power_iteration(const trust::SparseMatrix& s, double alpha,
                                           std::vector<core::NodeId> power,
                                           double tol = 1e-12,
                                           std::size_t max_iterations = 10000);

}  // namespace gt::baseline
