#include "baseline/eigentrust.hpp"

#include <stdexcept>
#include <utility>

#include "common/stats.hpp"

namespace gt::baseline {

EigenTrustResult eigentrust(const trust::SparseMatrix& s,
                            const std::vector<std::size_t>& pretrusted, double a,
                            double tol, std::size_t max_iterations) {
  const std::size_t n = s.size();
  if (n == 0) throw std::invalid_argument("eigentrust: empty matrix");
  if (a < 0.0 || a > 1.0) throw std::invalid_argument("eigentrust: a must be in [0,1]");
  if (pretrusted.empty() && a > 0.0)
    throw std::invalid_argument("eigentrust: pre-trusted set required when a > 0");

  std::vector<double> p(n, 0.0);
  if (!pretrusted.empty()) {
    const double share = 1.0 / static_cast<double>(pretrusted.size());
    for (const auto i : pretrusted) {
      if (i >= n) throw std::out_of_range("eigentrust: pre-trusted id out of range");
      p[i] = share;
    }
  }

  EigenTrustResult result;
  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < max_iterations; ++it) {
    std::vector<double> next = s.transpose_multiply(v);
    normalize_l1(next);
    if (a > 0.0) {
      for (std::size_t i = 0; i < n; ++i) next[i] = (1.0 - a) * next[i] + a * p[i];
    }
    const double change = mean_relative_error(next, v);
    v = std::move(next);
    ++result.iterations;
    if (change < tol) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(v);
  return result;
}

std::uint64_t eigentrust_dht_messages(const trust::SparseMatrix& s,
                                      const dht::ChordRing& ring, std::size_t rounds) {
  const std::size_t n = s.size();
  if (ring.num_nodes() != n)
    throw std::invalid_argument("eigentrust_dht_messages: ring size mismatch");
  std::uint64_t hops_per_round = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& e : s.row(i)) {
      const auto key = dht::hash_key(static_cast<std::uint64_t>(e.col));
      hops_per_round += ring.lookup(i, key).hops;
    }
  }
  return hops_per_round * rounds;
}

}  // namespace gt::baseline
