// Scalar push-sum gossip (Algorithm 1 of the paper; Kempe et al., FOCS'03).
//
// Computes one weighted sum across n nodes: node i starts with the pair
// (x_i(0), w_i(0)); every step each node halves its pair, keeps one half
// and pushes the other to a uniformly random node; received halves are
// summed (Eqs. 3-4). The ratio beta_i = x_i / w_i converges on every node
// to  sum_i x_i(0) / sum_i w_i(0)  in O(log n) steps. A node declares
// itself converged when its ratio moved by at most epsilon for
// `stable_rounds` consecutive steps (Algorithm 1 line 14, hardened against
// the step-1 false positive the paper's Table 1 "infinity" entries hint at).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/topology.hpp"
#include "simd/simd.hpp"
#include "telemetry/metrics.hpp"

namespace gt::gossip {

using NodeId = std::size_t;

/// Weights at or below this are treated as zero: the node has not yet
/// received any consensus-factor mass for the component and its ratio is
/// undefined (the paper's Table 1 shows this as an "infinity" entry).
inline constexpr double kWeightFloor = 1e-300;

/// Convergence/termination knobs shared by scalar and vector gossip.
struct PushSumConfig {
  double epsilon = 1e-4;            ///< gossip error threshold (paper's eps)
  std::size_t stable_rounds = 2;    ///< consecutive stable steps required
  std::size_t max_steps = 100000;   ///< hard safety cap
  double loss_probability = 0.0;    ///< i.i.d. message loss (failure injection)
  bool neighbors_only = false;      ///< push to overlay neighbors instead of any node
  std::size_t num_threads = 1;      ///< vector-gossip kernel lanes (0 = hardware)
  bool batch_wire = true;           ///< async: coalesce a push's active triplets
                                    ///< into one wire message per destination
                                    ///< (false = one message per triplet; same
                                    ///< math, different traffic accounting)
  simd::SimdLevel simd_level = simd::SimdLevel::kAuto;
                                    ///< kernel ISA for the dense sweeps;
                                    ///< resolved via simd::resolve_level at
                                    ///< construction (GT_SIMD env wins).
                                    ///< Never changes results — all kernels
                                    ///< are bit-identical to scalar.
};

/// Outcome of a push-sum run.
struct PushSumResult {
  std::size_t steps = 0;
  bool converged = false;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_lost = 0;
};

/// Synchronous-round scalar push-sum over n nodes.
class ScalarPushSum {
 public:
  /// x0/w0: per-node initial pairs; sizes must match and be non-empty.
  ScalarPushSum(std::vector<double> x0, std::vector<double> w0, PushSumConfig config);

  /// Runs rounds until every node is stable (or max_steps). An optional
  /// overlay restricts push targets to graph neighbors when
  /// config.neighbors_only is set.
  PushSumResult run(Rng& rng, const graph::Graph* overlay = nullptr);

  /// Executes exactly one synchronous gossip round.
  void step(Rng& rng, const graph::Graph* overlay, PushSumResult& result);

  std::size_t num_nodes() const noexcept { return x_.size(); }

  /// Node-local estimate x_i / w_i; NaN while w_i == 0.
  double estimate(NodeId i) const;

  /// Total x mass currently in the system (conserved without loss).
  double total_x() const;
  /// Total w mass (conserved without loss).
  double total_w() const;

  /// Largest |estimate(i) - estimate(j)| over nodes with defined estimates.
  double max_disagreement() const;

  /// Mirrors message counters (`pushsum.messages_sent` / `.messages_lost`)
  /// and a per-step timer histogram (`pushsum.step_seconds`) into
  /// `registry` (lane 0; the scalar kernel is serial). Null detaches.
  /// Purely observational: gossip results are identical either way.
  void attach_telemetry(telemetry::MetricsRegistry* registry);

 private:
  PushSumConfig config_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Counter m_sent_, m_lost_;
  telemetry::Histogram m_step_seconds_;
  std::vector<double> x_;
  std::vector<double> w_;
  std::vector<double> prev_ratio_;
  std::vector<std::size_t> stable_count_;
  std::vector<double> inbox_x_;
  std::vector<double> inbox_w_;
};

}  // namespace gt::gossip
