// Vector push-sum gossip: Algorithm 2's inner loop.
//
// Every node i carries one (x, w) pair *per component j* — the triplet
// <x_j, j, w_j> of the paper — and all n weighted sums
//   v_j(t+1) = sum_i v_i(t) * s_ij
// are gossiped concurrently. Per gossip step each node halves its whole
// reputation vector, keeps one half, and pushes the other to one random
// node, so a step costs one message of O(active components) triplets.
//
// Storage is two dense row-major n x n matrices (X[i][j], W[i][j]) for O(1)
// component access, but the kernel never sweeps dense rows blindly: each
// node keeps the list of its *active* components (seeded from its
// SparseMatrix row plus the consensus-factor diagonal, grown by set union
// on receive), and all per-step work — halving, payload accounting,
// convergence bookkeeping, the consensus read-out — walks only those lists
// until a row actually densifies (after which it flips to a contiguous
// dense fast path with no index indirection).
//
// The step itself is organised as three node-partitioned parallel phases
// over a gt::ThreadPool:
//   A (route):   each node draws its push target and loss coin from its own
//                RNG stream (seeded mix64(base, i)) and counts its payload;
//   B (bucket):  a serial O(n) counting sort turns target choices into
//                per-receiver sender lists, ascending by sender id;
//   C (gather):  each receiver owns its output row exclusively and folds
//                keep-half + received halves in ascending-sender order.
// Because every floating-point accumulation order is fixed by node ids and
// never by scheduling, results are bit-identical for any thread count,
// including the serial num_threads == 1 path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "gossip/pushsum.hpp"
#include "simd/kernels.hpp"
#include "graph/topology.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "trace/trace.hpp"
#include "trust/matrix.hpp"

namespace gt::gossip {

/// Outcome of one vector-gossip convergence (one aggregation cycle's worth
/// of gossip steps).
struct VectorGossipResult {
  std::size_t steps = 0;
  bool converged = false;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t triplets_sent = 0;  ///< payload volume: nonzero entries pushed
  std::uint64_t active_triplets = 0;          ///< live (x,w) components after the last step
  std::uint64_t zero_components_skipped = 0;  ///< structurally-zero sends skipped, summed over steps
  double send_phase_seconds = 0.0;         ///< route + bucket + gather wall time
  double bookkeeping_phase_seconds = 0.0;  ///< convergence-tracking wall time
};

/// Synchronous-round vector push-sum over n nodes and n components.
class VectorGossip {
 public:
  /// `pool` (optional, non-owning) supplies the worker lanes; when null and
  /// config.num_threads != 1 the kernel owns a private pool. num_threads == 1
  /// (the default) runs fully inline on the calling thread.
  VectorGossip(std::size_t n, PushSumConfig config, ThreadPool* pool = nullptr);

  /// Restricts the protocol to a subset of live peers (peer dynamics /
  /// churn support). Dead peers do not inject mass at initialize, do not
  /// send or receive, and neither they nor the components they own are
  /// consulted for convergence (a departed peer's reputation has no
  /// consensus-factor holder, so its gossiped score is undefined — the
  /// engine reads it out as 0). Call before initialize(); an empty vector
  /// restores full participation.
  void set_participants(std::vector<std::uint8_t> alive);

  /// Initializes component j on node i per Algorithm 2 lines 5-10:
  ///   x_i^{(j)} = s_ij * v_i,   w_i^{(j)} = [i == j].
  /// Rows of S with no feedback ("dangling" raters) act as uniform rows
  /// 1/n, matching SparseMatrix::transpose_multiply's dangling rule. Also
  /// seeds the per-node active-component lists from the sparse rows.
  void initialize(const trust::SparseMatrix& s, std::span<const double> v);

  /// Runs gossip steps until every node's full vector is epsilon-stable for
  /// `stable_rounds` consecutive steps (or max_steps). An overlay restricts
  /// targets to neighbors when config.neighbors_only is set.
  VectorGossipResult run(Rng& rng, const graph::Graph* overlay = nullptr);

  /// One synchronous gossip step. The first step after initialize() draws
  /// one u64 from `rng` as the base of the per-node RNG streams
  /// (mix64(base, i)); afterwards `rng` is never consulted, which is what
  /// makes the step thread-count invariant.
  void step(Rng& rng, const graph::Graph* overlay, VectorGossipResult& result);

  std::size_t num_nodes() const noexcept { return n_; }

  /// Node i's current estimate of component j (NaN while w == 0).
  double estimate(NodeId i, NodeId j) const;

  /// Consensus read-out: node i's full vector of beta_j = x_j / w_j, with
  /// undefined components reported as 0 (a node that never heard about j
  /// has no evidence about j).
  std::vector<double> node_view(NodeId i) const;

  /// System-wide consensus read-out: component j's mean of the defined
  /// per-node estimates (0 when nobody holds evidence about j — including
  /// every component owned by a departed peer). Walks only active
  /// components and runs across the pool on a fixed chunk grid, so the
  /// result is bit-identical for any thread count.
  std::vector<double> consensus_means() const;

  /// Mass-conservation invariants (property tests): column sums of X and W.
  double column_x_mass(NodeId j) const;
  double column_w_mass(NodeId j) const;

  /// Max over components of the disagreement between two nodes' views.
  double max_view_disagreement(NodeId a, NodeId b) const;

  const PushSumConfig& config() const noexcept { return config_; }

  /// Resolved kernel ISA for this instance (config.simd_level after
  /// GT_SIMD / CPU-capability resolution): kScalar, kAvx2, or kNeon.
  /// Informational only — every level computes bit-identical results.
  simd::SimdLevel simd_level() const noexcept { return simd_level_; }

  /// Active (potentially nonzero) component count on node i: n for a
  /// densified row, the active-list length otherwise.
  std::size_t active_components(NodeId i) const {
    return dense_[i] ? n_ : active_[i].size();
  }

  /// The kernel's metrics registry: the per-phase counters and timers
  /// behind VectorGossipResult (counters `gossip.messages_sent`,
  /// `gossip.messages_lost`, `gossip.triplets_sent`,
  /// `gossip.zero_components_skipped`; gauge `gossip.active_triplets`;
  /// histograms `gossip.send_phase_seconds`,
  /// `gossip.bookkeeping_phase_seconds` observed once per step). Worker
  /// lanes are merged on read, so a snapshot is always consistent between
  /// steps. All telemetry is observational: results are bit-identical
  /// whether or not anything reads it.
  const telemetry::MetricsRegistry& metrics() const noexcept { return *metrics_; }

  /// Attaches a JSONL sink: run() emits one `gossip_run` record per
  /// convergence run and, when sample_every > 0, one `gossip_step` record
  /// every sample_every-th step. Null detaches.
  void set_event_log(telemetry::EventLog* events, std::size_t sample_every = 0);

  /// Attaches a causal-trace sink: run() emits one kGossipStep span per
  /// step plus four kPhase sub-spans carrying that step's deterministic
  /// counter deltas. The synchronous time axis is the cumulative step
  /// index: `base_time` < 0 resolves the base from the sink's time cursor
  /// (bumped past the last step when run() returns), so consecutive runs
  /// sharing one sink land on one monotone axis. When the engine drives
  /// this kernel it passes the enclosing cycle's trace id and span so steps
  /// parent into the cycle tree; standalone runs (trace_id == 0) allocate
  /// their own trace id per run(). Observational only (no wall-clock values
  /// land in the trace). Null detaches.
  void set_trace(trace::TraceSink* sink, double base_time = -1.0,
                 std::uint64_t trace_id = 0, std::uint64_t parent_span = 0);

  /// Installs per-node gossip-layer adversaries for subsequent steps.
  /// `x_scale[i]` multiplies node i's *own-component* x share as received
  /// by its push target (1.0 = honest; > 1 self-promotes by minting x
  /// mass, (0,1) self-slanders); `withhold[i]` != 0 makes node i suppress
  /// every component but its own from pushes (the withheld halves stay
  /// resident, so honest mass is conserved). Each span must be empty (no
  /// adversary of that kind) or size n with finite positive scales, else
  /// std::invalid_argument. Deterministic and RNG-free: routing, loss
  /// coins, and all per-node RNG streams are untouched, so a run with
  /// both spans empty (or all-honest values) is bit-identical to an
  /// unattacked run at any thread count.
  void set_adversary(std::span<const double> x_scale,
                     std::span<const std::uint8_t> withhold);

 private:
  bool is_alive(NodeId v) const { return alive_.empty() || alive_[v] != 0; }
  bool adv_withholds(NodeId v) const {
    return !adv_withhold_.empty() && adv_withhold_[v] != 0;
  }
  std::size_t lanes() const noexcept { return pool_ ? pool_->num_threads() : 1; }
  void for_chunks(std::size_t count, std::size_t num_chunks,
                  const ThreadPool::ChunkFn& fn) const;
  void seed_streams(std::uint64_t base);
  void route_phase(const graph::Graph* overlay);
  void bucket_phase();
  void gather_phase();
  void bookkeeping_phase(VectorGossipResult& result);

  std::size_t n_ = 0;
  PushSumConfig config_;
  ThreadPool* pool_ = nullptr;  // may be null: serial
  std::unique_ptr<ThreadPool> owned_pool_;

  std::vector<std::uint8_t> alive_;     // empty = everyone participates
  std::vector<NodeId> alive_list_;      // cached ids of live peers
  std::vector<double> adv_scale_;       // empty = no liars (see set_adversary)
  std::vector<std::uint8_t> adv_withhold_;  // empty = no withholders

  // Dense state: n*n row-major, 64-byte aligned with tails padded to
  // simd::padded_size so the vector kernels can run unmasked full rows.
  // Padding slots are benign (0 / NaN) and outside every logical loop.
  simd::aligned_vector<double> x_;
  simd::aligned_vector<double> w_;
  simd::aligned_vector<double> inbox_x_;  // accumulation buffers (next state)
  simd::aligned_vector<double> inbox_w_;
  simd::aligned_vector<double> prev_ratio_;  // last defined beta per (i, j)

  simd::SimdLevel simd_level_ = simd::SimdLevel::kScalar;  // resolved
  const simd::Kernels* kn_ = nullptr;  // kernel set for simd_level_
  std::vector<std::size_t> stable_count_;  // per node

  // Sparsity bookkeeping: per-node active component lists, double-buffered
  // across a step (phase C reads senders' current lists while writing its
  // own next list). dense_[i] set => the list is implicit [0, n).
  std::vector<std::vector<NodeId>> active_, next_active_;
  std::vector<std::uint8_t> dense_, next_dense_;

  // Per-node deterministic RNG streams (seeded lazily from the caller Rng).
  std::vector<Rng> node_rng_;
  bool streams_seeded_ = false;

  // Step scratch: phase A decisions and the phase B receiver buckets (CSR).
  static constexpr NodeId kNoTarget = static_cast<NodeId>(-1);
  std::vector<NodeId> target_;          // kNoTarget = keep everything local
  std::vector<std::uint8_t> delivered_;
  std::vector<double> keep_;            // self-kept fraction (0.5 or 1.0)
  std::vector<std::size_t> in_off_;     // n + 1 offsets into in_senders_
  std::vector<NodeId> in_senders_;      // delivered senders, ascending per receiver

  // Per-chunk union markers for the sparse gather (stamp-versioned so they
  // never need clearing between receivers).
  struct UnionScratch {
    std::vector<std::uint64_t> mark;
    std::uint64_t stamp = 0;
  };
  mutable std::vector<UnionScratch> scratch_;

  // Telemetry: per-lane counter partials live in the registry (each worker
  // lane adds its chunk totals into its own lane; reads merge lanes in
  // fixed order). CounterTotals snapshots the merged values so step() can
  // report per-step deltas in the caller's result struct.
  struct CounterTotals {
    std::uint64_t sent = 0, lost = 0, triplets = 0, skipped = 0;
  };
  CounterTotals counter_totals() const noexcept;

  std::unique_ptr<telemetry::MetricsRegistry> metrics_;
  telemetry::Counter c_sent_, c_lost_, c_triplets_, c_skipped_;
  telemetry::Gauge g_active_;
  telemetry::Histogram h_send_, h_book_;
  telemetry::EventLog* events_ = nullptr;
  std::size_t step_sample_every_ = 0;

  trace::TraceSink* trace_ = nullptr;
  double trace_base_time_ = -1.0;     // < 0: resolve from the sink's cursor
  std::uint64_t trace_trace_id_ = 0;  // 0: allocate per run()
  std::uint64_t trace_parent_span_ = 0;

  double* row_x(NodeId i) { return x_.data() + i * n_; }
  double* row_w(NodeId i) { return w_.data() + i * n_; }
  const double* row_x(NodeId i) const { return x_.data() + i * n_; }
  const double* row_w(NodeId i) const { return w_.data() + i * n_; }
};

}  // namespace gt::gossip
