// Vector push-sum gossip: Algorithm 2's inner loop.
//
// Every node i carries one (x, w) pair *per component j* — the triplet
// <x_j, j, w_j> of the paper — and all n weighted sums
//   v_j(t+1) = sum_i v_i(t) * s_ij
// are gossiped concurrently. Per gossip step each node halves its whole
// reputation vector, keeps one half, and pushes the other to one random
// node, so a step costs one message of O(active components) triplets.
//
// Storage is two dense row-major n x n matrices (X[i][j], W[i][j]); with
// power-law feedback the early rows are sparse but densify after O(log n)
// steps, and dense rows keep the per-step scatter cache-friendly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "gossip/pushsum.hpp"
#include "graph/topology.hpp"
#include "trust/matrix.hpp"

namespace gt::gossip {

/// Outcome of one vector-gossip convergence (one aggregation cycle's worth
/// of gossip steps).
struct VectorGossipResult {
  std::size_t steps = 0;
  bool converged = false;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t triplets_sent = 0;  ///< payload volume: nonzero entries pushed
};

/// Synchronous-round vector push-sum over n nodes and n components.
class VectorGossip {
 public:
  VectorGossip(std::size_t n, PushSumConfig config);

  /// Restricts the protocol to a subset of live peers (peer dynamics /
  /// churn support). Dead peers do not inject mass at initialize, do not
  /// send or receive, and neither they nor the components they own are
  /// consulted for convergence (a departed peer's reputation has no
  /// consensus-factor holder, so its gossiped score is undefined — the
  /// engine reads it out as 0). Call before initialize(); an empty vector
  /// restores full participation.
  void set_participants(std::vector<std::uint8_t> alive);

  /// Initializes component j on node i per Algorithm 2 lines 5-10:
  ///   x_i^{(j)} = s_ij * v_i,   w_i^{(j)} = [i == j].
  /// Rows of S with no feedback ("dangling" raters) act as uniform rows
  /// 1/n, matching SparseMatrix::transpose_multiply's dangling rule.
  void initialize(const trust::SparseMatrix& s, std::span<const double> v);

  /// Runs gossip steps until every node's full vector is epsilon-stable for
  /// `stable_rounds` consecutive steps (or max_steps). An overlay restricts
  /// targets to neighbors when config.neighbors_only is set.
  VectorGossipResult run(Rng& rng, const graph::Graph* overlay = nullptr);

  /// One synchronous gossip step.
  void step(Rng& rng, const graph::Graph* overlay, VectorGossipResult& result);

  std::size_t num_nodes() const noexcept { return n_; }

  /// Node i's current estimate of component j (NaN while w == 0).
  double estimate(NodeId i, NodeId j) const;

  /// Consensus read-out: node i's full vector of beta_j = x_j / w_j, with
  /// undefined components reported as 0 (a node that never heard about j
  /// has no evidence about j).
  std::vector<double> node_view(NodeId i) const;

  /// Mass-conservation invariants (property tests): column sums of X and W.
  double column_x_mass(NodeId j) const;
  double column_w_mass(NodeId j) const;

  /// Max over components of the disagreement between two nodes' views.
  double max_view_disagreement(NodeId a, NodeId b) const;

  const PushSumConfig& config() const noexcept { return config_; }

 private:
  bool is_alive(NodeId v) const { return alive_.empty() || alive_[v] != 0; }

  std::size_t n_ = 0;
  PushSumConfig config_;
  std::vector<std::uint8_t> alive_;     // empty = everyone participates
  std::vector<NodeId> alive_list_;      // cached ids of live peers
  std::vector<double> x_;        // n*n row-major
  std::vector<double> w_;        // n*n row-major
  std::vector<double> inbox_x_;  // accumulation buffers for the next state
  std::vector<double> inbox_w_;
  std::vector<double> prev_ratio_;       // last defined beta per (i, j)
  std::vector<std::size_t> stable_count_;  // per node

  double* row_x(NodeId i) { return x_.data() + i * n_; }
  double* row_w(NodeId i) { return w_.data() + i * n_; }
  const double* row_x(NodeId i) const { return x_.data() + i * n_; }
  const double* row_w(NodeId i) const { return w_.data() + i * n_; }
};

}  // namespace gt::gossip
