#include "gossip/sharded_gossip.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "gossip/pushsum.hpp"

namespace gt::gossip {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
/// Stream tag for the one-off de-phasing offset draw (never a push index).
constexpr std::uint64_t kOffsetTag = 0xa5a5a5a5a5a5a5a5ULL;

double u01(SplitMix64& g) noexcept {
  return static_cast<double>(g.next() >> 11) * 0x1.0p-53;
}

/// Lemire bounded sampling over a stateless stream (mirrors
/// Rng::next_below so target choice is debiased the same way).
std::uint64_t bounded(SplitMix64& g, std::uint64_t bound) noexcept {
  std::uint64_t x = g.next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = g.next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

struct ShardCounters {
  std::uint64_t pushes = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t sends = 0;
  std::uint64_t pushes_skipped_down = 0;
  std::uint64_t drops_loss = 0;
  std::uint64_t drops_blocked = 0;
  std::uint64_t drops_blocked_in_flight = 0;
  std::uint64_t drops_receiver_down = 0;
  std::uint64_t triplets_unmatched = 0;
};

}  // namespace

/// One shard: its own event queue, its in-flight message slab (SoA, K
/// triplets per slot), one outbox row toward every shard, and shard-local
/// counters/ledgers so the hot path never touches shared mutable state.
struct ShardedGossip::Shard {
  sim::Scheduler sched;

  // In-flight slab. Slot s owns msg_comp/x/w[s*K .. s*K+K).
  std::vector<std::uint32_t> msg_from, msg_to;
  std::vector<std::uint8_t> msg_live;
  std::vector<std::uint32_t> msg_comp;
  std::vector<double> msg_x, msg_w;
  std::vector<std::uint32_t> free_msgs;

  /// Cross-shard handoff buffer (this shard -> shard d). Written only by
  /// the owning shard during the execute pass, read and cleared only by
  /// shard d during the next drain pass — the window barrier between the
  /// two passes is the only synchronization needed.
  struct Outbox {
    std::vector<double> time;
    std::vector<std::uint32_t> from, to;
    std::vector<std::uint32_t> comp;  // K entries per message
    std::vector<double> x, w;         // K entries per message
    std::size_t size() const noexcept { return time.size(); }
    void clear() noexcept {
      time.clear();
      from.clear();
      to.clear();
      comp.clear();
      x.clear();
      w.clear();
    }
  };
  std::vector<Outbox> out;

  ShardCounters ctr;
  std::size_t stable_nodes = 0;
  std::vector<double> destroyed_x, destroyed_w;  // per component id
};

double ShardedMassSummary::max_gap() const {
  double gap = 0.0;
  for (std::size_t c = 0; c < initial_x.size(); ++c) {
    gap = std::max(gap, std::abs(resident_x[c] + in_flight_x[c] +
                                 destroyed_x[c] - initial_x[c]));
    gap = std::max(gap, std::abs(resident_w[c] + in_flight_w[c] +
                                 destroyed_w[c] - initial_w[c]));
  }
  return gap;
}

ShardedGossip::ShardedGossip(const graph::CsrView& csr,
                             ShardedGossipConfig config)
    : csr_(csr), cfg_(config), n_(csr.num_nodes()), k_(config.components) {
  if (k_ == 0) throw std::invalid_argument("ShardedGossip: components == 0");
  if (!(cfg_.period > 0.0))
    throw std::invalid_argument("ShardedGossip: period must be positive");
  if (!(cfg_.base_latency > 0.0))
    throw std::invalid_argument(
        "ShardedGossip: base_latency must be positive — it is the "
        "conservative lookahead bound");
  simd_level_ = simd::resolve_level(cfg_.simd_level);
  kn_ = &simd::kernels(simd_level_);
  threads_ = cfg_.threads != 0
                 ? cfg_.threads
                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  shards_count_ = cfg_.shards != 0 ? cfg_.shards : threads_;
  shards_.reserve(shards_count_);
  for (std::size_t s = 0; s < shards_count_; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->out.resize(shards_count_);
  }
}

ShardedGossip::~ShardedGossip() = default;

std::size_t ShardedGossip::shard_of(std::size_t node) const noexcept {
  const std::size_t s = shards_count_;
  const std::size_t base = n_ / s;
  const std::size_t rem = n_ % s;
  const std::size_t big = base + 1;
  if (node < rem * big) return node / big;
  return rem + (node - rem * big) / std::max<std::size_t>(base, 1);
}

void ShardedGossip::initialize(std::span<const std::uint32_t> comp,
                               std::span<const double> x0,
                               std::span<const double> w0) {
  const std::size_t slots = n_ * k_;
  if (comp.size() != slots || x0.size() != slots || w0.size() != slots)
    throw std::invalid_argument("ShardedGossip::initialize: span sizes must "
                                "all be n * components");
  std::uint32_t max_comp = 0;
  for (const std::uint32_t c : comp) {
    if (c >= (1u << 31))
      throw std::invalid_argument("ShardedGossip: component id >= 2^31");
    max_comp = std::max(max_comp, c);
  }
  comp_.assign(comp.begin(), comp.end());
  x_.assign(x0.begin(), x0.end());
  w_.assign(w0.begin(), w0.end());
  prev_ratio_.assign(slots, kNaN);
  stable_count_.assign(n_, 0);
  push_count_.assign(n_, 0);
  // Pad the SoA tails to the kernel granularity (benign values, outside
  // every logical slot index) and assert the aligned allocator delivered.
  const std::size_t padded = simd::padded_size(slots);
  comp_.resize(padded, 0);
  x_.resize(padded, 0.0);
  w_.resize(padded, 0.0);
  prev_ratio_.resize(padded, kNaN);
  simd::assert_aligned(comp_.data(), simd::kAlignment, "ShardedGossip::comp_");
  simd::assert_aligned(x_.data(), simd::kAlignment, "ShardedGossip::x_");
  simd::assert_aligned(w_.data(), simd::kAlignment, "ShardedGossip::w_");
  simd::assert_aligned(prev_ratio_.data(), simd::kAlignment,
                       "ShardedGossip::prev_ratio_");

  const std::size_t num_comp = slots != 0 ? max_comp + 1u : 0;
  initial_x_.assign(num_comp, 0.0);
  initial_w_.assign(num_comp, 0.0);
  for (std::size_t s = 0; s < slots; ++s) {
    initial_x_[comp_[s]] += x_[s];
    initial_w_[comp_[s]] += w_[s];
  }
  truth_.assign(num_comp, kNaN);
  for (std::size_t c = 0; c < num_comp; ++c)
    if (initial_w_[c] > 0.0) truth_[c] = initial_x_[c] / initial_w_[c];
  for (auto& sh : shards_) {
    sh->destroyed_x.assign(num_comp, 0.0);
    sh->destroyed_w.assign(num_comp, 0.0);
  }
  initialized_ = true;
}

void ShardedGossip::initialize_fig3(std::uint64_t workload_seed) {
  std::vector<std::uint32_t> comp(n_ * k_);
  std::vector<double> x0(n_ * k_), w0(n_ * k_, 1.0);
  for (std::size_t i = 0; i < n_; ++i) {
    SplitMix64 g(mix64(workload_seed, i));
    for (std::size_t c = 0; c < k_; ++c) {
      comp[i * k_ + c] = static_cast<std::uint32_t>(c);
      // Local trust share in (0, 1]: heavy-ish tail via squaring so the
      // aggregate has the skew of real reputation mass.
      const double u = u01(g);
      x0[i * k_ + c] = std::max(u * u, 1e-9);
    }
  }
  initialize(comp, x0, w0);
}

void ShardedGossip::set_fault_plan(const fault::FaultPlan& plan) {
  if (ran_)
    throw std::logic_error("ShardedGossip: set_fault_plan after run()");
  timeline_ = fault::FaultTimeline(plan, n_);
}

std::uint32_t ShardedGossip::alloc_msg(Shard& sh) {
  if (!sh.free_msgs.empty()) {
    const std::uint32_t slot = sh.free_msgs.back();
    sh.free_msgs.pop_back();
    sh.msg_live[slot] = 1;
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(sh.msg_from.size());
  sh.msg_from.push_back(0);
  sh.msg_to.push_back(0);
  sh.msg_live.push_back(1);
  sh.msg_comp.resize(sh.msg_comp.size() + k_);
  sh.msg_x.resize(sh.msg_x.size() + k_);
  sh.msg_w.resize(sh.msg_w.size() + k_);
  return slot;
}

void ShardedGossip::free_msg(Shard& sh, std::uint32_t slot) {
  sh.msg_live[slot] = 0;
  sh.free_msgs.push_back(slot);
}

void ShardedGossip::schedule_initial_pushes() {
  for (std::size_t i = 0; i < n_; ++i) {
    SplitMix64 g(mix64(mix64(cfg_.seed, i), kOffsetTag));
    const double offset = cfg_.period * u01(g);
    const auto node = static_cast<std::uint32_t>(i);
    shards_[shard_of(i)]->sched.schedule_at(
        offset, [this, node] { push_event(node, *shards_[shard_of(node)]); });
  }
}

void ShardedGossip::push_event(std::uint32_t node, Shard& sh) {
  const double t = sh.sched.now();
  ++sh.ctr.pushes;
  sh.sched.schedule_at(t + cfg_.period, [this, node] {
    push_event(node, *shards_[shard_of(node)]);
  });
  const std::uint64_t k = push_count_[node]++;

  if (timeline_.any() && !timeline_.node_up(node, t)) {
    ++sh.ctr.pushes_skipped_down;
    return;
  }

  const auto nbrs = csr_.neighbors(node);
  if (!nbrs.empty()) {
    // Every draw of this push comes from its private stateless stream, so
    // no other event — on any shard, in any interleaving — can perturb it.
    SplitMix64 g(mix64(mix64(cfg_.seed, node), k));
    const std::uint32_t to = nbrs[bounded(g, nbrs.size())];
    double latency = cfg_.base_latency;
    if (cfg_.jitter > 0.0) latency += cfg_.jitter * u01(g);
    bool lost = false;
    if (timeline_.any()) {
      const double rate = timeline_.loss_rate(t);
      if (rate > 0.0 && u01(g) < rate) lost = true;
    }

    // Halve the resident state; the other halves are the wire shares.
    const std::size_t base = static_cast<std::size_t>(node) * k_;
    kn_->halve(x_.data() + base, k_);
    kn_->halve(w_.data() + base, k_);
    ++sh.ctr.sends;

    if (timeline_.any() && timeline_.path_blocked(node, to, t)) {
      ++sh.ctr.drops_blocked;
      destroy_payload(sh, comp_.data() + base, x_.data() + base,
                      w_.data() + base);
    } else if (lost) {
      ++sh.ctr.drops_loss;
      destroy_payload(sh, comp_.data() + base, x_.data() + base,
                      w_.data() + base);
    } else {
      const double arrival = t + latency;
      const std::size_t dst = shard_of(to);
      if (dst == shard_of(node)) {
        Shard& own = sh;
        const std::uint32_t slot = alloc_msg(own);
        own.msg_from[slot] = node;
        own.msg_to[slot] = to;
        std::copy_n(comp_.data() + base, k_, own.msg_comp.data() + slot * k_);
        std::copy_n(x_.data() + base, k_, own.msg_x.data() + slot * k_);
        std::copy_n(w_.data() + base, k_, own.msg_w.data() + slot * k_);
        const auto s32 = static_cast<std::uint32_t>(dst);
        own.sched.schedule_at(
            arrival, [this, s32, slot] { deliver_event(s32, slot); });
      } else {
        auto& ob = sh.out[dst];
        ob.time.push_back(arrival);
        ob.from.push_back(node);
        ob.to.push_back(to);
        ob.comp.insert(ob.comp.end(), comp_.begin() + base,
                       comp_.begin() + base + k_);
        ob.x.insert(ob.x.end(), x_.begin() + base, x_.begin() + base + k_);
        ob.w.insert(ob.w.end(), w_.begin() + base, w_.begin() + base + k_);
      }
    }
  }
  update_stability(node, sh);
}

void ShardedGossip::deliver_event(std::uint32_t shard, std::uint32_t slot) {
  Shard& sh = *shards_[shard];
  ++sh.ctr.deliveries;
  const std::uint32_t to = sh.msg_to[slot];
  const std::uint32_t from = sh.msg_from[slot];
  const double t = sh.sched.now();
  const std::uint32_t* comp = sh.msg_comp.data() + std::size_t{slot} * k_;
  const double* px = sh.msg_x.data() + std::size_t{slot} * k_;
  const double* pw = sh.msg_w.data() + std::size_t{slot} * k_;
  if (timeline_.any() && !timeline_.node_up(to, t)) {
    ++sh.ctr.drops_receiver_down;
    destroy_payload(sh, comp, px, pw);
  } else if (timeline_.any() && timeline_.path_blocked(from, to, t)) {
    ++sh.ctr.drops_blocked_in_flight;
    destroy_payload(sh, comp, px, pw);
  } else {
    apply_payload(sh, to, comp, px, pw);
  }
  free_msg(sh, slot);
}

void ShardedGossip::apply_payload(Shard& sh, std::uint32_t to,
                                  const std::uint32_t* comp, const double* x,
                                  const double* w) {
  const std::size_t base = static_cast<std::size_t>(to) * k_;
  // Fast path: homogeneous layouts (the fig3 workload) keep component c in
  // slot c on every node — the whole payload applies as two elementwise
  // vector adds when the id blocks match byte-for-byte.
  if (std::memcmp(comp, comp_.data() + base, k_ * sizeof(std::uint32_t)) ==
      0) {
    kn_->add(x_.data() + base, x, k_);
    kn_->add(w_.data() + base, w, k_);
    return;
  }
  for (std::size_t c = 0; c < k_; ++c) {
    const std::uint32_t id = comp[c];
    // Heterogeneous fallback: slot-aligned probe first, K-wide scan after.
    std::size_t slot = k_;
    if (c < k_ && comp_[base + c] == id) {
      slot = c;
    } else {
      for (std::size_t j = 0; j < k_; ++j)
        if (comp_[base + j] == id) {
          slot = j;
          break;
        }
    }
    if (slot == k_) {
      ++sh.ctr.triplets_unmatched;
      sh.destroyed_x[id] += x[c];
      sh.destroyed_w[id] += w[c];
      continue;
    }
    x_[base + slot] += x[c];
    w_[base + slot] += w[c];
  }
}

void ShardedGossip::destroy_payload(Shard& sh, const std::uint32_t* comp,
                                    const double* x, const double* w) {
  for (std::size_t c = 0; c < k_; ++c) {
    sh.destroyed_x[comp[c]] += x[c];
    sh.destroyed_w[comp[c]] += w[c];
  }
}

void ShardedGossip::update_stability(std::uint32_t node, Shard& sh) {
  const std::size_t base = static_cast<std::size_t>(node) * k_;
  // Vectorized K-wide sweep; simd::Kernels::residual_keep documents the
  // exact per-element branch semantics this replaced (undefined weights
  // leave prev untouched, NaN-safe epsilon compare).
  const bool stable =
      kn_->residual_keep(x_.data() + base, w_.data() + base,
                         prev_ratio_.data() + base, kWeightFloor,
                         cfg_.epsilon, k_);
  const bool was = stable_count_[node] >= cfg_.stable_rounds;
  if (stable) {
    if (stable_count_[node] < std::numeric_limits<std::uint16_t>::max())
      ++stable_count_[node];
  } else {
    stable_count_[node] = 0;
  }
  const bool now = stable_count_[node] >= cfg_.stable_rounds;
  if (now && !was) ++sh.stable_nodes;
  if (was && !now) --sh.stable_nodes;
}

void ShardedGossip::drain_inboxes(std::uint32_t shard) {
  Shard& sh = *shards_[shard];
  for (std::size_t src = 0; src < shards_count_; ++src) {
    auto& ob = shards_[src]->out[shard];
    const std::size_t count = ob.size();
    for (std::size_t m = 0; m < count; ++m) {
      const std::uint32_t slot = alloc_msg(sh);
      sh.msg_from[slot] = ob.from[m];
      sh.msg_to[slot] = ob.to[m];
      std::copy_n(ob.comp.data() + m * k_, k_, sh.msg_comp.data() + slot * k_);
      std::copy_n(ob.x.data() + m * k_, k_, sh.msg_x.data() + slot * k_);
      std::copy_n(ob.w.data() + m * k_, k_, sh.msg_w.data() + slot * k_);
      sh.sched.schedule_at(ob.time[m], [this, shard, slot] {
        deliver_event(shard, slot);
      });
    }
    ob.clear();
  }
}

void ShardedGossip::sample_error(double now) {
  double sum = 0.0;
  std::size_t defined = 0;
  const std::size_t slots = n_ * k_;
  for (std::size_t s = 0; s < slots; ++s) {
    if (!(w_[s] > kWeightFloor)) continue;
    sum += std::abs(x_[s] / w_[s] - truth_[comp_[s]]);
    ++defined;
  }
  // (Guarded against an all-undefined scan; the curve then records 0.)
  error_curve_scratch_.emplace_back(now,
                                    defined != 0 ? sum / static_cast<double>(defined) : 0.0);
}

ShardedGossipResult ShardedGossip::run() {
  if (!initialized_)
    throw std::logic_error("ShardedGossip::run before initialize");
  if (ran_) throw std::logic_error("ShardedGossip: one run per instance");
  ran_ = true;

  ShardedGossipResult res;
  if (n_ == 0) return res;

  schedule_initial_pushes();
  ThreadPool pool(threads_);
  const double lookahead = cfg_.base_latency;
  const std::size_t s_count = shards_count_;
  double window_start = 0.0;

  for (;;) {
    const double window_end = window_start + lookahead;
    if (s_count > 1) {
      // Drain pass: every shard adopts the messages other shards routed to
      // it last window. Reader-only on foreign outboxes; the barrier below
      // separates it from the writers of the execute pass.
      pool.parallel_for(0, s_count, s_count,
                        [this](std::size_t lo, std::size_t hi, std::size_t) {
                          for (std::size_t s = lo; s < hi; ++s)
                            drain_inboxes(static_cast<std::uint32_t>(s));
                        });
    }
    pool.parallel_for(0, s_count, s_count,
                      [this, window_end](std::size_t lo, std::size_t hi,
                                         std::size_t) {
                        for (std::size_t s = lo; s < hi; ++s)
                          shards_[s]->sched.run_before(window_end);
                      });
    ++res.windows;
    window_start = window_end;

    if (cfg_.sample_every != 0 && res.windows % cfg_.sample_every == 0)
      sample_error(window_start);

    std::size_t stable = 0;
    for (const auto& sh : shards_) stable += sh->stable_nodes;
    if (stable == n_) {
      res.converged = true;
      break;
    }
    if (window_start >= cfg_.horizon) break;
  }

  res.sim_time = window_start;
  for (const auto& sh : shards_) {
    res.events += sh->sched.executed();
    res.pushes += sh->ctr.pushes;
    res.deliveries += sh->ctr.deliveries;
    res.sends += sh->ctr.sends;
    res.pushes_skipped_down += sh->ctr.pushes_skipped_down;
    res.drops_loss += sh->ctr.drops_loss;
    res.drops_blocked += sh->ctr.drops_blocked;
    res.drops_blocked_in_flight += sh->ctr.drops_blocked_in_flight;
    res.drops_receiver_down += sh->ctr.drops_receiver_down;
    res.triplets_unmatched += sh->ctr.triplets_unmatched;
  }
  res.triplets_sent = res.sends * k_;
  res.wire_bytes = res.triplets_sent * 24;
  res.error_curve = std::move(error_curve_scratch_);
  return res;
}

double ShardedGossip::estimate(std::size_t i, std::size_t c) const {
  const double w = w_[i * k_ + c];
  if (!(w > kWeightFloor)) return kNaN;
  return x_[i * k_ + c] / w;
}

double ShardedGossip::truth(std::uint32_t component) const {
  return component < truth_.size() ? truth_[component] : kNaN;
}

ShardedMassSummary ShardedGossip::mass_summary() const {
  ShardedMassSummary ms;
  const std::size_t num_comp = initial_x_.size();
  ms.initial_x = initial_x_;
  ms.initial_w = initial_w_;
  ms.resident_x.assign(num_comp, 0.0);
  ms.resident_w.assign(num_comp, 0.0);
  ms.in_flight_x.assign(num_comp, 0.0);
  ms.in_flight_w.assign(num_comp, 0.0);
  ms.destroyed_x.assign(num_comp, 0.0);
  ms.destroyed_w.assign(num_comp, 0.0);
  const std::size_t slots = n_ * k_;
  for (std::size_t s = 0; s < slots; ++s) {
    ms.resident_x[comp_[s]] += x_[s];
    ms.resident_w[comp_[s]] += w_[s];
  }
  for (const auto& sh : shards_) {
    for (std::size_t m = 0; m < sh->msg_live.size(); ++m) {
      if (sh->msg_live[m] == 0) continue;
      for (std::size_t c = 0; c < k_; ++c) {
        ms.in_flight_x[sh->msg_comp[m * k_ + c]] += sh->msg_x[m * k_ + c];
        ms.in_flight_w[sh->msg_comp[m * k_ + c]] += sh->msg_w[m * k_ + c];
      }
    }
    for (const auto& ob : sh->out) {
      for (std::size_t e = 0; e < ob.comp.size(); ++e) {
        ms.in_flight_x[ob.comp[e]] += ob.x[e];
        ms.in_flight_w[ob.comp[e]] += ob.w[e];
      }
    }
    for (std::size_t c = 0; c < num_comp; ++c) {
      ms.destroyed_x[c] += sh->destroyed_x[c];
      ms.destroyed_w[c] += sh->destroyed_w[c];
    }
  }
  return ms;
}

std::size_t ShardedGossip::state_bytes() const noexcept {
  return comp_.size() * sizeof(std::uint32_t) + x_.size() * sizeof(double) +
         w_.size() * sizeof(double) + prev_ratio_.size() * sizeof(double) +
         stable_count_.size() * sizeof(std::uint16_t) +
         push_count_.size() * sizeof(std::uint32_t);
}

}  // namespace gt::gossip
