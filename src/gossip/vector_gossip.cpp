#include "gossip/vector_gossip.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "telemetry/scoped_timer.hpp"

namespace gt::gossip {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

VectorGossip::VectorGossip(std::size_t n, PushSumConfig config, ThreadPool* pool)
    : n_(n),
      config_(config),
      pool_(pool),
      x_(simd::padded_size(n * n), 0.0),
      w_(simd::padded_size(n * n), 0.0),
      inbox_x_(simd::padded_size(n * n), 0.0),
      inbox_w_(simd::padded_size(n * n), 0.0),
      prev_ratio_(simd::padded_size(n * n), kNaN),
      stable_count_(n, 0),
      active_(n),
      next_active_(n),
      dense_(n, 0),
      next_dense_(n, 0),
      target_(n, kNoTarget),
      delivered_(n, 0),
      keep_(n, 1.0),
      in_off_(n + 1, 0),
      in_senders_(n, 0) {
  if (n == 0) throw std::invalid_argument("VectorGossip: n must be positive");
  simd_level_ = simd::resolve_level(config_.simd_level);
  kn_ = &simd::kernels(simd_level_);
  simd::assert_aligned(x_.data(), simd::kAlignment, "VectorGossip::x_");
  simd::assert_aligned(w_.data(), simd::kAlignment, "VectorGossip::w_");
  simd::assert_aligned(inbox_x_.data(), simd::kAlignment,
                       "VectorGossip::inbox_x_");
  simd::assert_aligned(inbox_w_.data(), simd::kAlignment,
                       "VectorGossip::inbox_w_");
  if (pool_ == nullptr && config_.num_threads != 1) {
    owned_pool_ = std::make_unique<ThreadPool>(config_.num_threads);
    pool_ = owned_pool_.get();
  }
  scratch_.resize(lanes());
  for (auto& sc : scratch_) sc.mark.assign(n_, 0);

  // One registry lane per worker lane; phase timings land in log-bucket
  // histograms spanning ~30ns .. ~30s.
  metrics_ = std::make_unique<telemetry::MetricsRegistry>(lanes());
  c_sent_ = metrics_->counter("gossip.messages_sent");
  c_lost_ = metrics_->counter("gossip.messages_lost");
  c_triplets_ = metrics_->counter("gossip.triplets_sent");
  c_skipped_ = metrics_->counter("gossip.zero_components_skipped");
  g_active_ = metrics_->gauge("gossip.active_triplets");
  telemetry::HistogramOptions phase_buckets{3e-8, 2.0, 30};
  h_send_ = metrics_->histogram("gossip.send_phase_seconds", phase_buckets);
  h_book_ = metrics_->histogram("gossip.bookkeeping_phase_seconds", phase_buckets);
}

void VectorGossip::set_event_log(telemetry::EventLog* events,
                                 std::size_t sample_every) {
  events_ = events;
  step_sample_every_ = sample_every;
}

void VectorGossip::set_trace(trace::TraceSink* sink, double base_time,
                             std::uint64_t trace_id,
                             std::uint64_t parent_span) {
  trace_ = sink;
  trace_base_time_ = base_time;
  trace_trace_id_ = trace_id;
  trace_parent_span_ = parent_span;
}

VectorGossip::CounterTotals VectorGossip::counter_totals() const noexcept {
  return CounterTotals{metrics_->counter_value(c_sent_),
                       metrics_->counter_value(c_lost_),
                       metrics_->counter_value(c_triplets_),
                       metrics_->counter_value(c_skipped_)};
}

void VectorGossip::for_chunks(std::size_t count, std::size_t num_chunks,
                              const ThreadPool::ChunkFn& fn) const {
  if (count == 0 || num_chunks == 0) return;
  if (num_chunks > count) num_chunks = count;
  if (pool_ != nullptr && pool_->num_threads() > 1 && num_chunks > 1) {
    pool_->parallel_for(0, count, num_chunks, fn);
  } else {
    ThreadPool::run_serial(0, count, num_chunks, fn);
  }
}

void VectorGossip::set_participants(std::vector<std::uint8_t> alive) {
  if (!alive.empty() && alive.size() != n_)
    throw std::invalid_argument("VectorGossip::set_participants: size mismatch");
  alive_ = std::move(alive);
  alive_list_.clear();
  if (!alive_.empty()) {
    for (NodeId v = 0; v < n_; ++v)
      if (alive_[v]) alive_list_.push_back(v);
    if (alive_list_.empty())
      throw std::invalid_argument("VectorGossip::set_participants: nobody alive");
  }
}

void VectorGossip::set_adversary(std::span<const double> x_scale,
                                 std::span<const std::uint8_t> withhold) {
  if (!x_scale.empty() && x_scale.size() != n_)
    throw std::invalid_argument("VectorGossip::set_adversary: x_scale size");
  if (!withhold.empty() && withhold.size() != n_)
    throw std::invalid_argument("VectorGossip::set_adversary: withhold size");
  for (const double c : x_scale)
    if (!(std::isfinite(c) && c > 0.0))
      throw std::invalid_argument(
          "VectorGossip::set_adversary: x_scale values must be finite and > 0");
  adv_scale_.assign(x_scale.begin(), x_scale.end());
  adv_withhold_.assign(withhold.begin(), withhold.end());
}

void VectorGossip::initialize(const trust::SparseMatrix& s, std::span<const double> v) {
  if (s.size() != n_ || v.size() != n_)
    throw std::invalid_argument("VectorGossip::initialize: size mismatch");
  std::fill(x_.begin(), x_.end(), 0.0);
  std::fill(w_.begin(), w_.end(), 0.0);
  std::fill(inbox_x_.begin(), inbox_x_.end(), 0.0);
  std::fill(inbox_w_.begin(), inbox_w_.end(), 0.0);
  std::fill(prev_ratio_.begin(), prev_ratio_.end(), kNaN);
  std::fill(stable_count_.begin(), stable_count_.end(), 0);
  std::fill(dense_.begin(), dense_.end(), 0);
  std::fill(next_dense_.begin(), next_dense_.end(), 0);
  for (NodeId i = 0; i < n_; ++i) {
    active_[i].clear();
    next_active_[i].clear();
  }
  streams_seeded_ = false;  // next step derives fresh per-node streams

  const double uniform = 1.0 / static_cast<double>(n_);
  for (NodeId i = 0; i < n_; ++i) {
    if (!is_alive(i)) continue;  // departed peers inject no reports
    double* xi = row_x(i);
    const auto entries = s.row(i);
    if (entries.empty()) {
      // Dangling rater: its reputation mass spreads uniformly, the same
      // rule SparseMatrix::transpose_multiply applies. The row starts (and
      // stays) structurally dense.
      const double share = v[i] * uniform;
      for (NodeId j = 0; j < n_; ++j) xi[j] = share;
      dense_[i] = 1;
    } else {
      bool has_diagonal = false;
      auto& act = active_[i];
      act.reserve(entries.size() + 1);
      for (const auto& e : entries) {
        xi[e.col] = e.value * v[i];
        act.push_back(e.col);
        has_diagonal |= (e.col == i);
      }
      if (!has_diagonal) act.push_back(i);
      if (act.size() == n_) {
        dense_[i] = 1;
        act.clear();
      }
    }
    row_w(i)[i] = 1.0;  // only node j holds the consensus factor for j
  }
}

void VectorGossip::seed_streams(std::uint64_t base) {
  if (node_rng_.size() != n_) node_rng_.resize(n_);
  for (NodeId i = 0; i < n_; ++i) node_rng_[i].reseed(mix64(base, i));
  streams_seeded_ = true;
}

void VectorGossip::route_phase(const graph::Graph* overlay) {
  const bool masked = !alive_.empty();
  const std::size_t chunks = std::min(lanes(), n_);
  for_chunks(n_, chunks, [&](std::size_t b, std::size_t e, std::size_t c) {
    CounterTotals ctr;  // chunk-local, folded into this lane's slots below
    for (NodeId i = b; i < e; ++i) {
      target_[i] = kNoTarget;
      delivered_[i] = 0;
      keep_[i] = 1.0;
      if (masked && !alive_[i]) continue;
      Rng& nr = node_rng_[i];

      NodeId target = i;
      bool have_target = true;
      if (config_.neighbors_only && overlay != nullptr) {
        const auto nbrs = overlay->neighbors(i);
        if (masked) {
          // Defensive: only push to live neighbors.
          NodeId pick = i;
          std::size_t seen = 0;
          for (const NodeId u : nbrs) {
            if (!alive_[u]) continue;
            ++seen;
            if (nr.next_below(seen) == 0) pick = u;  // reservoir-sample one
          }
          if (seen == 0) {
            have_target = false;
          } else {
            target = pick;
          }
        } else if (nbrs.empty()) {
          have_target = false;
        } else {
          target = nbrs[nr.next_below(nbrs.size())];
        }
      } else if (masked) {
        if (alive_list_.size() <= 1) {
          have_target = false;
        } else {
          do {
            target = alive_list_[nr.next_below(alive_list_.size())];
          } while (target == i);
        }
      } else if (n_ == 1) {
        // Single node: no other peer exists, keep both halves local (the
        // unguarded path would call next_below(0) and shift one past n).
        have_target = false;
      } else {
        target = nr.next_below(n_ - 1);
        if (target >= i) ++target;  // uniform over others
      }

      bool lost = false;
      if (have_target) {
        ++ctr.sent;
        if (config_.loss_probability > 0.0 &&
            nr.next_bool(config_.loss_probability)) {
          ++ctr.lost;
          lost = true;
        }
      }
      keep_[i] = have_target ? 0.5 : 1.0;
      if (have_target && !lost) {
        target_[i] = target;
        delivered_[i] = 1;
      }

      if (have_target) {
        // Payload accounting walks only the active support; a lost message
        // still carried its (un-halved) payload onto the wire. A
        // withholding adversary ships only its own component.
        const double* xi = row_x(i);
        const double* wi = row_w(i);
        const double h = lost ? 1.0 : 0.5;
        std::uint64_t payload = 0;
        if (adv_withholds(i)) {
          payload = (h * xi[i] != 0.0 || h * wi[i] != 0.0) ? 1 : 0;
          if (!dense_[i]) ctr.skipped += n_ - active_[i].size();
        } else if (dense_[i]) {
          payload = kn_->count_nonzero_pair(xi, wi, h, n_);
        } else {
          for (const NodeId j : active_[i])
            payload += (h * xi[j] != 0.0 || h * wi[j] != 0.0);
          ctr.skipped += n_ - active_[i].size();
        }
        ctr.triplets += payload;
      }
    }
    metrics_->add(c_sent_, ctr.sent, c);
    metrics_->add(c_lost_, ctr.lost, c);
    metrics_->add(c_triplets_, ctr.triplets, c);
    metrics_->add(c_skipped_, ctr.skipped, c);
  });
}

void VectorGossip::bucket_phase() {
  // Counting sort of delivered senders by target; iterating senders in
  // ascending order makes each receiver's bucket ascending too, which is
  // what pins the floating-point fold order in the gather phase.
  std::fill(in_off_.begin(), in_off_.end(), 0);
  for (NodeId i = 0; i < n_; ++i)
    if (delivered_[i]) ++in_off_[target_[i] + 1];
  for (std::size_t k = 1; k <= n_; ++k) in_off_[k] += in_off_[k - 1];
  for (NodeId i = 0; i < n_; ++i)
    if (delivered_[i]) in_senders_[in_off_[target_[i]]++] = i;
  // The insert pass advanced each start cursor to its end offset; shift
  // right to recover [start, end) ranges.
  for (std::size_t k = n_; k >= 1; --k) in_off_[k] = in_off_[k - 1];
  in_off_[0] = 0;
}

void VectorGossip::gather_phase() {
  const bool masked = !alive_.empty();
  const std::size_t chunks = std::min(lanes(), n_);
  for_chunks(n_, chunks, [&](std::size_t b, std::size_t e, std::size_t chunk) {
    UnionScratch& sc = scratch_[chunk];
    for (NodeId r = b; r < e; ++r) {
      if (masked && !alive_[r]) {
        next_dense_[r] = 0;
        next_active_[r].clear();
        continue;  // dead rows stay identically zero in both buffers
      }
      const double keep = keep_[r];
      const double* xr = row_x(r);
      const double* wr = row_w(r);
      double* nx = inbox_x_.data() + r * n_;
      double* nw = inbox_w_.data() + r * n_;
      const std::size_t sb = in_off_[r];
      const std::size_t se = in_off_[r + 1];

      // A withholding receiver that pushed this step (keep == 0.5) only
      // parted with its own component; the withheld halves stay whole.
      const bool self_wh = adv_withholds(r) && keep != 1.0;

      bool out_dense = dense_[r] != 0;
      for (std::size_t k = sb; k < se && !out_dense; ++k) {
        const NodeId s = in_senders_[k];
        // A withholding sender contributes one component, never density.
        out_dense = dense_[s] != 0 && !adv_withholds(s);
      }

      if (out_dense) {
        // Contiguous fast path once any contributing row has densified:
        // vector kernels sweep whole rows. The initial assignment also
        // overwrites whatever the stale inbox buffer held, so no separate
        // clearing sweep is needed.
        if (self_wh) {
          std::copy_n(xr, n_, nx);  // withheld halves stay whole
          std::copy_n(wr, n_, nw);
          nx[r] = keep * xr[r];
          nw[r] = keep * wr[r];
        } else {
          kn_->scale_assign(nx, xr, keep, n_);
          kn_->scale_assign(nw, wr, keep, n_);
        }
        for (std::size_t k = sb; k < se; ++k) {
          const NodeId s = in_senders_[k];
          const double* xs = row_x(s);
          const double* ws = row_w(s);
          if (adv_withholds(s)) {
            nx[s] += 0.5 * xs[s];
            nw[s] += 0.5 * ws[s];
          } else if (dense_[s]) {
            kn_->accumulate_scaled(nx, xs, 0.5, n_);
            kn_->accumulate_scaled(nw, ws, 0.5, n_);
          } else {
            for (const NodeId j : active_[s]) {
              nx[j] += 0.5 * xs[j];
              nw[j] += 0.5 * ws[j];
            }
          }
        }
        next_dense_[r] = 1;
        next_active_[r].clear();
      } else {
        // Sparse union gather: first touch of a component assigns (which
        // doubles as clearing the stale inbox slot), later touches add.
        // Senders fold in ascending id, so the accumulation order per
        // component is a pure function of the data — never of threads.
        auto& out = next_active_[r];
        out.clear();
        const std::uint64_t stamp = ++sc.stamp;
        if (self_wh) {
          for (const NodeId j : active_[r]) {
            sc.mark[j] = stamp;
            out.push_back(j);
            const double kj = j == r ? keep : 1.0;
            nx[j] = kj * xr[j];
            nw[j] = kj * wr[j];
          }
        } else {
          for (const NodeId j : active_[r]) {
            sc.mark[j] = stamp;
            out.push_back(j);
            nx[j] = keep * xr[j];
            nw[j] = keep * wr[j];
          }
        }
        for (std::size_t k = sb; k < se; ++k) {
          const NodeId s = in_senders_[k];
          const double* xs = row_x(s);
          const double* ws = row_w(s);
          if (adv_withholds(s)) {
            // Own component only (always in s's active set: the consensus
            // factor seeds the diagonal).
            if (sc.mark[s] != stamp) {
              sc.mark[s] = stamp;
              out.push_back(s);
              nx[s] = 0.5 * xs[s];
              nw[s] = 0.5 * ws[s];
            } else {
              nx[s] += 0.5 * xs[s];
              nw[s] += 0.5 * ws[s];
            }
            continue;
          }
          for (const NodeId j : active_[s]) {
            if (sc.mark[j] != stamp) {
              sc.mark[j] = stamp;
              out.push_back(j);
              nx[j] = 0.5 * xs[j];
              nw[j] = 0.5 * ws[j];
            } else {
              nx[j] += 0.5 * xs[j];
              nw[j] += 0.5 * ws[j];
            }
          }
        }
        if (out.size() == n_) {
          next_dense_[r] = 1;
          out.clear();
        } else {
          next_dense_[r] = 0;
        }
      }

      // Gossip-layer liars: scale the *received* own-component x share.
      // The sender's fold above already first-touched component s (the
      // diagonal is always active), so this is a pure adjustment — it
      // mints (c-1) * half-share of counterfeit x mass per delivery.
      if (!adv_scale_.empty()) {
        for (std::size_t k = sb; k < se; ++k) {
          const NodeId s = in_senders_[k];
          const double c = adv_scale_[s];
          if (c != 1.0) nx[s] += (c - 1.0) * 0.5 * row_x(s)[s];
        }
      }
    }
  });
}

void VectorGossip::bookkeeping_phase(VectorGossipResult& result) {
  // Local convergence bookkeeping (Algorithm 1 line 14, per component).
  // Only live nodes participate, and only components owned by live peers
  // can ever hold a defined ratio (the owner seeds the consensus factor);
  // a node is stable only once every owned component is defined and has
  // moved by at most epsilon — so any owned component still missing from
  // the active set keeps the node unstable without a dense sweep.
  const bool masked = !alive_.empty();
  const std::uint8_t* alive = masked ? alive_.data() : nullptr;
  const std::size_t owned_total = masked ? alive_list_.size() : n_;
  const std::size_t chunks = std::min(lanes(), n_);
  // Support size is a snapshot (not monotonic), so it accumulates into a
  // phase-local atomic: integer adds commute, so the total is independent
  // of chunk completion order.
  std::atomic<std::uint64_t> active_total{0};
  for_chunks(n_, chunks, [&](std::size_t b, std::size_t e, std::size_t) {
    std::uint64_t active = 0;
    for (NodeId i = b; i < e; ++i) {
      if (alive != nullptr && !alive[i]) continue;
      const double* xi = row_x(i);
      const double* wi = row_w(i);
      double* prev = prev_ratio_.data() + i * n_;
      bool stable = true;
      std::size_t owned_seen = 0;
      auto visit = [&](NodeId j) {
        if (alive != nullptr && !alive[j]) return;  // unowned component
        ++owned_seen;
        if (wi[j] <= kWeightFloor) {
          prev[j] = kNaN;
          stable = false;
          return;
        }
        const double ratio = xi[j] / wi[j];
        if (std::isnan(prev[j]) || std::abs(ratio - prev[j]) > config_.epsilon)
          stable = false;
        prev[j] = ratio;
      };
      if (dense_[i]) {
        active += n_;
        if (alive == nullptr) {
          // Unmasked dense rows take the vector kernel: identical branch
          // semantics per element (see simd::Kernels::residual_nan), and
          // every component is owned, so owned_seen is trivially n.
          owned_seen = n_;
          if (!kn_->residual_nan(xi, wi, prev, kWeightFloor, config_.epsilon,
                                 n_))
            stable = false;
        } else {
          for (NodeId j = 0; j < n_; ++j) visit(j);
        }
      } else {
        active += active_[i].size();
        for (const NodeId j : active_[i]) visit(j);
      }
      if (owned_seen < owned_total) stable = false;
      stable_count_[i] = stable ? stable_count_[i] + 1 : 0;
    }
    active_total.fetch_add(active, std::memory_order_relaxed);
  });
  // Snapshot of the current step's support, mirrored into the gauge.
  result.active_triplets = active_total.load(std::memory_order_relaxed);
  metrics_->set(g_active_, static_cast<double>(result.active_triplets));
}

void VectorGossip::step(Rng& rng, const graph::Graph* overlay,
                        VectorGossipResult& result) {
  if (!streams_seeded_) seed_streams(rng.next_u64());
  // Counter partials land in the registry lanes during the phases; the
  // caller's result struct receives this step's merged delta.
  const CounterTotals before = counter_totals();
  {
    telemetry::ScopedTimer timer(*metrics_, h_send_, 0,
                                 &result.send_phase_seconds);
    route_phase(overlay);
    bucket_phase();
    gather_phase();
    x_.swap(inbox_x_);
    w_.swap(inbox_w_);
    active_.swap(next_active_);
    dense_.swap(next_dense_);
  }
  {
    telemetry::ScopedTimer timer(*metrics_, h_book_, 0,
                                 &result.bookkeeping_phase_seconds);
    bookkeeping_phase(result);
  }
  const CounterTotals after = counter_totals();
  result.messages_sent += after.sent - before.sent;
  result.messages_lost += after.lost - before.lost;
  result.triplets_sent += after.triplets - before.triplets;
  result.zero_components_skipped += after.skipped - before.skipped;
}

VectorGossipResult VectorGossip::run(Rng& rng, const graph::Graph* overlay) {
  VectorGossipResult result;
  const bool masked = !alive_.empty();
  // Synchronous trace axis: step k of this run covers [base + k, base + k + 1).
  const bool traced = trace_ != nullptr;
  double trace_base = 0.0;
  std::uint64_t run_trace = 0;
  std::uint64_t prev_sent = 0, prev_lost = 0, prev_triplets = 0;
  if (traced) {
    trace_base =
        trace_base_time_ >= 0.0 ? trace_base_time_ : trace_->time_cursor();
    run_trace =
        trace_trace_id_ != 0 ? trace_trace_id_ : trace_->alloc_trace();
  }
  while (result.steps < config_.max_steps) {
    step(rng, overlay, result);
    ++result.steps;
    if (traced) {
      const double t0 = trace_base + static_cast<double>(result.steps - 1);
      const std::uint64_t step_span = trace_->alloc_span();
      // Phase sub-spans are synthetic equal quarters of the step interval
      // (wall timings would break byte-identical same-seed traces); their
      // values are this step's deterministic counter deltas. Emitted
      // before the step span so the mirrored JSONL sim_time stream stays
      // non-decreasing within the run's trace id.
      const double sent = static_cast<double>(result.messages_sent - prev_sent);
      const double lost = static_cast<double>(result.messages_lost - prev_lost);
      const double phase_value[4] = {
          sent, sent - lost,
          static_cast<double>(result.triplets_sent - prev_triplets),
          static_cast<double>(result.active_triplets)};
      prev_sent = result.messages_sent;
      prev_lost = result.messages_lost;
      prev_triplets = result.triplets_sent;
      for (std::uint32_t k = 0; k < 4; ++k) {
        trace::TraceRecord rec;
        rec.t_start = t0 + 0.25 * k;
        rec.t_end = t0 + 0.25 * (k + 1);
        rec.trace_id = run_trace;
        rec.span_id = trace_->alloc_span();
        rec.parent_id = step_span;
        rec.kind = static_cast<std::uint32_t>(trace::SpanKind::kPhase);
        rec.flags = k;
        rec.value = phase_value[k];
        trace_->emit(rec);
      }
      trace::TraceRecord rec;
      rec.t_start = t0;
      rec.t_end = t0 + 1.0;
      rec.trace_id = run_trace;
      rec.span_id = step_span;
      rec.parent_id = trace_parent_span_;
      rec.kind = static_cast<std::uint32_t>(trace::SpanKind::kGossipStep);
      rec.flags = static_cast<std::uint32_t>(result.steps - 1);
      rec.value = static_cast<double>(result.active_triplets);
      trace_->emit(rec);
    }
    if (events_ != nullptr && step_sample_every_ > 0 &&
        result.steps % step_sample_every_ == 0) {
      events_->record("gossip_step")
          .field("step", result.steps)
          .field("messages_sent", result.messages_sent)
          .field("messages_dropped", result.messages_lost)
          .field("triplets_sent", result.triplets_sent)
          .field("active_triplets", result.active_triplets);
    }
    bool all_stable = true;
    const std::size_t count = masked ? alive_list_.size() : n_;
    for (std::size_t si = 0; si < count; ++si) {
      const NodeId i = masked ? alive_list_[si] : si;
      if (stable_count_[i] < config_.stable_rounds) {
        all_stable = false;
        break;
      }
    }
    if (all_stable) {
      result.converged = true;
      break;
    }
  }
  if (traced)
    trace_->bump_time_cursor(trace_base + static_cast<double>(result.steps));
  if (events_ != nullptr) {
    events_->record("gossip_run")
        .field("n", n_)
        .field("gossip_steps", result.steps)
        .field("converged", result.converged)
        .field("messages_sent", result.messages_sent)
        .field("messages_dropped", result.messages_lost)
        .field("triplets_sent", result.triplets_sent)
        .field("active_triplets", result.active_triplets)
        .field("zero_components_skipped", result.zero_components_skipped)
        .field("send_phase_seconds", result.send_phase_seconds)
        .field("bookkeeping_phase_seconds", result.bookkeeping_phase_seconds);
  }
  return result;
}

double VectorGossip::estimate(NodeId i, NodeId j) const {
  const double w = row_w(i)[j];
  if (w <= kWeightFloor) return std::numeric_limits<double>::quiet_NaN();
  return row_x(i)[j] / w;
}

std::vector<double> VectorGossip::node_view(NodeId i) const {
  std::vector<double> view(n_, 0.0);
  for (NodeId j = 0; j < n_; ++j) {
    const double e = estimate(i, j);
    if (!std::isnan(e)) view[j] = e;
  }
  return view;
}

std::vector<double> VectorGossip::consensus_means() const {
  // Fixed chunk grid: the reduction's merge order depends on (n, kChunks)
  // only, so the read-out is bit-identical for any thread count.
  constexpr std::size_t kReduceChunks = 32;
  const std::size_t chunks = std::min(n_, kReduceChunks);
  std::vector<std::vector<double>> acc(chunks);
  std::vector<std::vector<std::uint32_t>> cnt(chunks);
  for_chunks(n_, chunks, [&](std::size_t b, std::size_t e, std::size_t c) {
    auto& a = acc[c];
    auto& k = cnt[c];
    a.assign(n_, 0.0);
    k.assign(n_, 0);
    for (NodeId i = b; i < e; ++i) {
      if (!is_alive(i)) continue;
      const double* xi = row_x(i);
      const double* wi = row_w(i);
      if (dense_[i]) {
        // Elementwise masked kernel: same per-element predicate and
        // division as the sparse visit below, no cross-element math.
        kn_->ratio_accumulate(a.data(), k.data(), xi, wi, kWeightFloor, n_);
      } else {
        for (const NodeId j : active_[i]) {
          if (wi[j] > kWeightFloor) {
            a[j] += xi[j] / wi[j];
            ++k[j];
          }
        }
      }
    }
  });
  std::vector<double> mean(n_, 0.0);
  std::vector<std::uint32_t> total(n_, 0);
  for (std::size_t c = 0; c < chunks; ++c) {
    if (acc[c].empty()) continue;  // chunk never ran (count < chunks)
    // Chunk merge order stays c-ascending; within a chunk the add is
    // elementwise, so the fixed (n, kChunks) grid still pins every sum.
    kn_->add(mean.data(), acc[c].data(), n_);
    for (NodeId j = 0; j < n_; ++j) total[j] += cnt[c][j];
  }
  for (NodeId j = 0; j < n_; ++j)
    mean[j] = total[j] ? mean[j] / static_cast<double>(total[j]) : 0.0;
  return mean;
}

double VectorGossip::column_x_mass(NodeId j) const {
  double s = 0.0;
  for (NodeId i = 0; i < n_; ++i) s += row_x(i)[j];
  return s;
}

double VectorGossip::column_w_mass(NodeId j) const {
  double s = 0.0;
  for (NodeId i = 0; i < n_; ++i) s += row_w(i)[j];
  return s;
}

double VectorGossip::max_view_disagreement(NodeId a, NodeId b) const {
  double worst = 0.0;
  for (NodeId j = 0; j < n_; ++j) {
    const double ea = estimate(a, j);
    const double eb = estimate(b, j);
    if (std::isnan(ea) || std::isnan(eb)) continue;
    worst = std::max(worst, std::abs(ea - eb));
  }
  return worst;
}

}  // namespace gt::gossip
