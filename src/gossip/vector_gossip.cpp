#include "gossip/vector_gossip.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gt::gossip {

VectorGossip::VectorGossip(std::size_t n, PushSumConfig config)
    : n_(n),
      config_(config),
      x_(n * n, 0.0),
      w_(n * n, 0.0),
      inbox_x_(n * n, 0.0),
      inbox_w_(n * n, 0.0),
      prev_ratio_(n * n, std::numeric_limits<double>::quiet_NaN()),
      stable_count_(n, 0) {
  if (n == 0) throw std::invalid_argument("VectorGossip: n must be positive");
}

void VectorGossip::set_participants(std::vector<std::uint8_t> alive) {
  if (!alive.empty() && alive.size() != n_)
    throw std::invalid_argument("VectorGossip::set_participants: size mismatch");
  alive_ = std::move(alive);
  alive_list_.clear();
  if (!alive_.empty()) {
    for (NodeId v = 0; v < n_; ++v)
      if (alive_[v]) alive_list_.push_back(v);
    if (alive_list_.empty())
      throw std::invalid_argument("VectorGossip::set_participants: nobody alive");
  }
}

void VectorGossip::initialize(const trust::SparseMatrix& s, std::span<const double> v) {
  if (s.size() != n_ || v.size() != n_)
    throw std::invalid_argument("VectorGossip::initialize: size mismatch");
  std::fill(x_.begin(), x_.end(), 0.0);
  std::fill(w_.begin(), w_.end(), 0.0);
  std::fill(inbox_x_.begin(), inbox_x_.end(), 0.0);
  std::fill(inbox_w_.begin(), inbox_w_.end(), 0.0);
  std::fill(prev_ratio_.begin(), prev_ratio_.end(),
            std::numeric_limits<double>::quiet_NaN());
  std::fill(stable_count_.begin(), stable_count_.end(), 0);

  const double uniform = 1.0 / static_cast<double>(n_);
  for (NodeId i = 0; i < n_; ++i) {
    if (!is_alive(i)) continue;  // departed peers inject no reports
    double* xi = row_x(i);
    const auto entries = s.row(i);
    if (entries.empty()) {
      // Dangling rater: its reputation mass spreads uniformly, the same
      // rule SparseMatrix::transpose_multiply applies.
      const double share = v[i] * uniform;
      for (NodeId j = 0; j < n_; ++j) xi[j] = share;
    } else {
      for (const auto& e : entries) xi[e.col] = e.value * v[i];
    }
    row_w(i)[i] = 1.0;  // only node j holds the consensus factor for j
  }
}

void VectorGossip::step(Rng& rng, const graph::Graph* overlay,
                        VectorGossipResult& result) {
  const bool masked = !alive_.empty();
  const std::size_t senders = masked ? alive_list_.size() : n_;

  // Send phase: each live node halves its entire triplet vector; the kept
  // half goes straight to its own inbox, the pushed half to one random
  // live target.
  for (std::size_t si = 0; si < senders; ++si) {
    const NodeId i = masked ? alive_list_[si] : si;
    NodeId target = i;
    bool have_target = true;
    if (config_.neighbors_only && overlay != nullptr) {
      const auto nbrs = overlay->neighbors(i);
      if (masked) {
        // Defensive: only push to live neighbors.
        NodeId pick = i;
        std::size_t seen = 0;
        for (const NodeId u : nbrs) {
          if (!alive_[u]) continue;
          ++seen;
          if (rng.next_below(seen) == 0) pick = u;  // reservoir-sample one
        }
        if (seen == 0) {
          have_target = false;
        } else {
          target = pick;
        }
      } else if (nbrs.empty()) {
        have_target = false;
      } else {
        target = nbrs[rng.next_below(nbrs.size())];
      }
    } else if (masked) {
      if (alive_list_.size() <= 1) {
        have_target = false;
      } else {
        do {
          target = alive_list_[rng.next_below(alive_list_.size())];
        } while (target == i);
      }
    } else {
      target = rng.next_below(n_ - 1);
      if (target >= i) ++target;
    }

    bool lost = false;
    if (have_target) {
      ++result.messages_sent;
      if (config_.loss_probability > 0.0 && rng.next_bool(config_.loss_probability)) {
        ++result.messages_lost;
        lost = true;
      }
    }

    double* xi = row_x(i);
    double* wi = row_w(i);
    double* self_x = inbox_x_.data() + i * n_;
    double* self_w = inbox_w_.data() + i * n_;
    std::uint64_t payload = 0;
    if (have_target && !lost) {
      double* tgt_x = inbox_x_.data() + target * n_;
      double* tgt_w = inbox_w_.data() + target * n_;
      for (NodeId j = 0; j < n_; ++j) {
        const double hx = 0.5 * xi[j];
        const double hw = 0.5 * wi[j];
        self_x[j] += hx;
        self_w[j] += hw;
        tgt_x[j] += hx;
        tgt_w[j] += hw;
        payload += (hx != 0.0 || hw != 0.0);
      }
    } else {
      // Push half is dropped (message lost) or has no recipient (isolated
      // node keeps everything).
      const double keep = (have_target && lost) ? 0.5 : 1.0;
      for (NodeId j = 0; j < n_; ++j) {
        self_x[j] += keep * xi[j];
        self_w[j] += keep * wi[j];
        if (have_target) payload += (xi[j] != 0.0 || wi[j] != 0.0);
      }
    }
    if (have_target) result.triplets_sent += payload;
  }

  x_.swap(inbox_x_);
  w_.swap(inbox_w_);
  std::fill(inbox_x_.begin(), inbox_x_.end(), 0.0);
  std::fill(inbox_w_.begin(), inbox_w_.end(), 0.0);

  // Local convergence bookkeeping (Algorithm 1 line 14, per component).
  // Only live nodes participate, and only components owned by live peers
  // can ever hold a defined ratio (the owner seeds the consensus factor).
  const std::uint8_t* alive = masked ? alive_.data() : nullptr;
  for (std::size_t si = 0; si < senders; ++si) {
    const NodeId i = masked ? alive_list_[si] : si;
    const double* xi = row_x(i);
    const double* wi = row_w(i);
    double* prev = prev_ratio_.data() + i * n_;
    bool stable = true;
    for (NodeId j = 0; j < n_; ++j) {
      if (alive != nullptr && !alive[j]) continue;  // unowned component
      if (wi[j] <= kWeightFloor) {
        prev[j] = std::numeric_limits<double>::quiet_NaN();
        stable = false;
        continue;
      }
      const double ratio = xi[j] / wi[j];
      if (std::isnan(prev[j]) || std::abs(ratio - prev[j]) > config_.epsilon)
        stable = false;
      prev[j] = ratio;
    }
    stable_count_[i] = stable ? stable_count_[i] + 1 : 0;
  }
}

VectorGossipResult VectorGossip::run(Rng& rng, const graph::Graph* overlay) {
  VectorGossipResult result;
  const bool masked = !alive_.empty();
  while (result.steps < config_.max_steps) {
    step(rng, overlay, result);
    ++result.steps;
    bool all_stable = true;
    const std::size_t count = masked ? alive_list_.size() : n_;
    for (std::size_t si = 0; si < count; ++si) {
      const NodeId i = masked ? alive_list_[si] : si;
      if (stable_count_[i] < config_.stable_rounds) {
        all_stable = false;
        break;
      }
    }
    if (all_stable) {
      result.converged = true;
      break;
    }
  }
  return result;
}

double VectorGossip::estimate(NodeId i, NodeId j) const {
  const double w = row_w(i)[j];
  if (w <= kWeightFloor) return std::numeric_limits<double>::quiet_NaN();
  return row_x(i)[j] / w;
}

std::vector<double> VectorGossip::node_view(NodeId i) const {
  std::vector<double> view(n_, 0.0);
  for (NodeId j = 0; j < n_; ++j) {
    const double e = estimate(i, j);
    if (!std::isnan(e)) view[j] = e;
  }
  return view;
}

double VectorGossip::column_x_mass(NodeId j) const {
  double s = 0.0;
  for (NodeId i = 0; i < n_; ++i) s += row_x(i)[j];
  return s;
}

double VectorGossip::column_w_mass(NodeId j) const {
  double s = 0.0;
  for (NodeId i = 0; i < n_; ++i) s += row_w(i)[j];
  return s;
}

double VectorGossip::max_view_disagreement(NodeId a, NodeId b) const {
  double worst = 0.0;
  for (NodeId j = 0; j < n_; ++j) {
    const double ea = estimate(a, j);
    const double eb = estimate(b, j);
    if (std::isnan(ea) || std::isnan(eb)) continue;
    worst = std::max(worst, std::abs(ea - eb));
  }
  return worst;
}

}  // namespace gt::gossip
