// Sharded parallel discrete-event push-sum for million-node overlays.
//
// The legacy AsyncGossip path tops out near n = 2000: one global event
// queue, dense n x n per-node state, and a single shared RNG whose draw
// order serializes every event. This engine is the scale path:
//
//   * The node space is partitioned into S contiguous shards, each owning
//     its own zero-allocation sim::Scheduler (the PR-5 event core) — no
//     global queue, no global lock.
//   * Shards advance in lock step through conservative windows of length
//     equal to the network's minimum link latency (base_latency): a
//     message sent inside window [W, W + L) arrives at or after W + L by
//     construction, so every shard can execute its whole window without
//     ever seeing a cross-shard message "from the past". Cross-shard
//     sends land in per-(source, destination) outboxes; each window is
//     two ThreadPool barriers — drain inbound outboxes, then execute.
//   * Per-node state is structure-of-arrays triplet storage: parallel
//     component-id / x / w arrays with a fixed K slots per node
//     (~20 bytes per tracked component), not an n x n matrix. Adjacency
//     is the read-only CsrView. The wire format is the accounted 24-byte
//     triplet of the async engine.
//   * All randomness is per-(node, push) stateless streams:
//     SplitMix64(mix64(mix64(seed, node), push_index)). No draw order is
//     shared between nodes, so thread count, shard count, and event
//     interleaving cannot perturb a single draw.
//
// Determinism contract: a node's state is touched only by its own events
// (its pushes and deliveries addressed to it), every shard pops events in
// (time, insertion) order, and the conservative window guarantees a
// shard's queue already holds every event of the window before executing
// it. Two same-node events can therefore only reorder when they carry the
// exact same 64-bit timestamp, which the random de-phasing offsets and
// jitter make a measure-zero coincidence; in consequence a run with S
// shards on T threads is bit-identical to the S = 1 run on the plain
// single-queue scheduler — the oracle the BitIdentityGate and the
// shard-determinism suite pin, faults included (faults are replayed
// through the side-effect-free FaultTimeline, never through mutable
// network state).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "fault/fault_timeline.hpp"
#include "graph/csr.hpp"
#include "sim/scheduler.hpp"
#include "simd/kernels.hpp"

namespace gt::gossip {

struct ShardedGossipConfig {
  std::size_t components = 4;   ///< K triplets tracked per node
  double period = 1.0;          ///< per-node push period (sim time)
  double base_latency = 1.0;    ///< min link latency == conservative lookahead
  double jitter = 0.0;          ///< uniform extra latency in [0, jitter)
  double epsilon = 1e-3;        ///< per-component stability threshold
  std::size_t stable_rounds = 3;///< consecutive stable pushes per node
  double horizon = 200.0;       ///< hard stop (sim time)
  std::uint64_t seed = 1;       ///< base of every per-node stream
  std::size_t shards = 0;       ///< event-queue shards (0 = one per thread)
  std::size_t threads = 1;      ///< ThreadPool lanes (0 = hardware)
  std::size_t sample_every = 0; ///< windows between error-curve samples
                                ///< (0 = no sampling)
  simd::SimdLevel simd_level = simd::SimdLevel::kAuto;
                                ///< kernel ISA for the SoA sweeps; resolved
                                ///< via simd::resolve_level (GT_SIMD env
                                ///< wins). Bit-identical at every level.
};

struct ShardedGossipResult {
  double sim_time = 0.0;          ///< window boundary the run stopped at
  bool converged = false;         ///< every node epsilon-stable
  std::uint64_t events = 0;       ///< scheduler events executed, all shards
  std::uint64_t windows = 0;      ///< conservative windows executed
  std::uint64_t pushes = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t sends = 0;            ///< wire messages handed to the network
  std::uint64_t triplets_sent = 0;    ///< K per send
  std::uint64_t wire_bytes = 0;       ///< 24 bytes per triplet
  std::uint64_t pushes_skipped_down = 0;  ///< push events of crashed nodes
  std::uint64_t drops_loss = 0;           ///< messages lost to a loss burst
  std::uint64_t drops_blocked = 0;        ///< partition / failed link, send time
  std::uint64_t drops_blocked_in_flight = 0;  ///< partitioned while in flight
  std::uint64_t drops_receiver_down = 0;  ///< receiver crashed before arrival
  std::uint64_t triplets_unmatched = 0;   ///< receiver tracks no such component
  /// (sim_time, mean |estimate - truth|) samples when sample_every > 0.
  std::vector<std::pair<double, double>> error_curve;
};

/// Per-component mass ledger over the whole system: every half pushed out
/// is either resident on some node, inside an undelivered message, or was
/// destroyed by a drop — resident + in_flight + destroyed == initial up to
/// FP reassociation noise.
struct ShardedMassSummary {
  std::vector<double> initial_x, resident_x, in_flight_x, destroyed_x;
  std::vector<double> initial_w, resident_w, in_flight_w, destroyed_w;
  double max_gap() const;
};

class ShardedGossip {
 public:
  /// `csr` must outlive the engine. Throws on components == 0, period or
  /// base_latency <= 0, or a CSR/Config node count over 2^32 - 1.
  ShardedGossip(const graph::CsrView& csr, ShardedGossipConfig config);
  ~ShardedGossip();
  ShardedGossip(const ShardedGossip&) = delete;
  ShardedGossip& operator=(const ShardedGossip&) = delete;

  std::size_t num_nodes() const noexcept { return n_; }
  std::size_t num_shards() const noexcept { return shards_count_; }
  std::size_t components() const noexcept { return k_; }

  /// Resolved kernel ISA (cfg.simd_level after GT_SIMD / CPU resolution).
  simd::SimdLevel simd_level() const noexcept { return simd_level_; }

  /// Seeds node state: slot (i, c) tracks component comp[i*K + c] with
  /// initial mass (x0[i*K + c], w0[i*K + c]). Component ids must be
  /// < 2^31. Spans must be exactly n * K long.
  void initialize(std::span<const std::uint32_t> comp,
                  std::span<const double> x0, std::span<const double> w0);

  /// Convenience fig3-shape workload: every node tracks components
  /// 0..K-1; node i's x for component c is a deterministic pseudo-random
  /// local trust share in (0, 1], w is 1 on every node, so component c
  /// converges to the network-wide mean share — the aggregation primitive
  /// under the paper's Figure 3 convergence curves.
  void initialize_fig3(std::uint64_t workload_seed);

  /// Replays `plan` deterministically during the run. Must be called
  /// before run(). Throws on kinds the FaultTimeline rejects.
  void set_fault_plan(const fault::FaultPlan& plan);

  /// Executes conservative windows until every node is stable or the
  /// horizon is reached. Restartable state is NOT kept: one run per
  /// engine instance.
  ShardedGossipResult run();

  /// Estimate held in slot (i, c): x / w, or NaN while w is (near) zero.
  double estimate(std::size_t i, std::size_t c) const;
  /// Exact mean per tracked component of the initial masses — the value
  /// push-sum converges to.
  double truth(std::uint32_t component) const;

  /// Scans resident state, every in-flight slab slot, and every outbox
  /// into the per-component ledger. Intended for post-run invariant
  /// checks, not the hot path.
  ShardedMassSummary mass_summary() const;

  /// Bytes of resident per-node SoA state (ids, x, w, stability
  /// bookkeeping) — the "bytes/node" numerator next to CSR and Bloom
  /// storage in bench_million.
  std::size_t state_bytes() const noexcept;

 private:
  struct Shard;

  std::size_t shard_of(std::size_t node) const noexcept;
  void schedule_initial_pushes();
  void push_event(std::uint32_t node, Shard& sh);
  void deliver_event(std::uint32_t shard, std::uint32_t slot);
  void apply_payload(Shard& sh, std::uint32_t to,
                     const std::uint32_t* comp, const double* x,
                     const double* w);
  void destroy_payload(Shard& sh, const std::uint32_t* comp,
                       const double* x, const double* w);
  void update_stability(std::uint32_t node, Shard& sh);
  void drain_inboxes(std::uint32_t shard);
  void sample_error(double now);
  std::uint32_t alloc_msg(Shard& sh);
  void free_msg(Shard& sh, std::uint32_t slot);

  const graph::CsrView& csr_;
  ShardedGossipConfig cfg_;
  std::size_t n_ = 0;
  std::size_t k_ = 0;
  std::size_t shards_count_ = 0;
  std::size_t threads_ = 0;

  // SoA triplet state: slot (i, c) lives at index i * K + c. Arrays are
  // 64-byte aligned with tails padded to simd::padded_size (padding slots
  // hold benign values and sit outside every logical index) so the
  // vector kernels in push/apply/stability sweeps stay in-bounds.
  simd::aligned_vector<std::uint32_t> comp_;
  simd::aligned_vector<double> x_, w_;
  simd::aligned_vector<double> prev_ratio_;

  simd::SimdLevel simd_level_ = simd::SimdLevel::kScalar;  // resolved
  const simd::Kernels* kn_ = nullptr;  // kernel set for simd_level_
  std::vector<std::uint16_t> stable_count_;
  std::vector<std::uint32_t> push_count_;

  std::vector<double> truth_;       // per component id
  std::vector<double> initial_x_, initial_w_;  // per component id

  fault::FaultTimeline timeline_;
  std::vector<std::pair<double, double>> error_curve_scratch_;
  bool initialized_ = false;
  bool ran_ = false;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gt::gossip
