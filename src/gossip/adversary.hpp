// Gossip-layer adversary hooks: a read-only view the push-sum kernels
// consult when a node hands its halved share batch to the network.
//
// Contract (what keeps BitIdentityGate green):
//
//   * No randomness. An adversary never draws from any RNG — liar and
//     withhold behavior are pure functions of (node, current shares) —
//     so honest nodes' RNG streams are untouched and a run with an
//     all-honest adversary (or none) is bit-identical to today.
//   * Mass-explicit. A liar that scales its own component *mints* x
//     mass; the kernels ledger every minted unit (AsyncGossip's
//     injected_x, the engine's measured-vs-expected column mass) so
//     conservation checks distinguish counterfeit mass from leaks.
//   * Withholding is local. A withholding node folds only its own
//     component into outgoing batches; the suppressed components stay
//     resident at the sender (async) or are kept un-halved (sync), so
//     honest mass is still conserved — the attack starves mixing, it
//     does not destroy mass.
#pragma once

#include <cstdint>

namespace gt::gossip {

/// Per-node adversary view consulted by the kernels at send time.
/// Implementations must be deterministic and side-effect free.
class ShareAdversary {
 public:
  virtual ~ShareAdversary() = default;

  /// Multiplier applied to node i's *own-component* x share in outgoing
  /// batches. 1.0 = honest. >1 self-promotes (mints x mass, ledgered by
  /// the kernel); (0,1) self-slanders. Must be finite and > 0.
  virtual double share_scale(std::uint32_t node) const = 0;

  /// True if node i withholds every component but its own from outgoing
  /// batches this instant (selective share suppression).
  virtual bool withholds(std::uint32_t node) const = 0;
};

}  // namespace gt::gossip
