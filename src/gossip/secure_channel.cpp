#include "gossip/secure_channel.hpp"

#include <cstring>

namespace gt::gossip {

namespace {
constexpr std::size_t kTripletBytes = 24;
}

std::vector<std::uint8_t> pack_triplets(std::span<const Triplet> triplets) {
  std::vector<std::uint8_t> out(triplets.size() * kTripletBytes);
  std::uint8_t* p = out.data();
  for (const auto& t : triplets) {
    std::memcpy(p, &t.x, 8);
    std::memcpy(p + 8, &t.id, 8);
    std::memcpy(p + 16, &t.w, 8);
    p += kTripletBytes;
  }
  return out;
}

std::optional<std::vector<Triplet>> unpack_triplets(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() % kTripletBytes != 0) return std::nullopt;
  std::vector<Triplet> out(bytes.size() / kTripletBytes);
  const std::uint8_t* p = bytes.data();
  for (auto& t : out) {
    std::memcpy(&t.x, p, 8);
    std::memcpy(&t.id, p + 8, 8);
    std::memcpy(&t.w, p + 16, 8);
    p += kTripletBytes;
  }
  return out;
}

SecureVectorMessage SecureGossipChannel::seal(const crypto::PrivateKey& key,
                                              std::span<const Triplet> triplets) const {
  SecureVectorMessage msg;
  msg.sender = key.identity;
  msg.payload = pack_triplets(triplets);
  msg.signature = authority_->sign(
      key, std::span<const std::uint8_t>(msg.payload.data(), msg.payload.size()));
  return msg;
}

std::optional<std::vector<Triplet>> SecureGossipChannel::open(
    const SecureVectorMessage& msg) {
  const bool authentic = authority_->verify(
      msg.sender,
      std::span<const std::uint8_t>(msg.payload.data(), msg.payload.size()),
      msg.signature);
  if (!authentic) {
    ++rejected_;
    return std::nullopt;
  }
  auto triplets = unpack_triplets(msg.payload);
  if (!triplets) {
    ++rejected_;
    return std::nullopt;
  }
  ++accepted_;
  return triplets;
}

bool tamper_in_transit(SecureVectorMessage& msg, std::uint64_t beneficiary,
                       double boost, double tamper_probability, Rng& rng) {
  if (msg.payload.size() < kTripletBytes) return false;
  if (!rng.next_bool(tamper_probability)) return false;
  // Rewrite one triplet in place: claim a boosted share for the
  // beneficiary. The tag is left untouched — the relay cannot re-sign.
  const std::size_t count = msg.payload.size() / kTripletBytes;
  const std::size_t slot = rng.next_below(count);
  std::uint8_t* p = msg.payload.data() + slot * kTripletBytes;
  std::memcpy(p, &boost, 8);
  std::memcpy(p + 8, &beneficiary, 8);
  return true;
}

}  // namespace gt::gossip
