// Secure gossip channel: identity-based message authentication applied to
// the gossip payloads (the paper's third named innovation, section 7).
//
// A gossip message carries a peer's halved triplet vector. Without
// authentication a malicious relay can tamper with the shares in transit —
// inflate an accomplice's x, zero a victim's — and the recipient cannot
// tell. The channel packs triplets into a canonical byte layout, signs
// them with the sender's identity-derived key, and rejects any message
// whose tag fails verification; rejected messages are treated exactly like
// lost ones (x and w vanish together), which push-sum already tolerates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "crypto/identity_auth.hpp"

namespace gt::gossip {

/// One <x, id, w> reputation share on the wire.
struct Triplet {
  double x = 0.0;
  std::uint64_t id = 0;
  double w = 0.0;
  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// A signed gossip message.
struct SecureVectorMessage {
  crypto::Identity sender = 0;
  std::vector<std::uint8_t> payload;  ///< packed triplets, 24 bytes each
  crypto::Signature signature;

  /// Bytes on the wire: payload + sender id + 128-bit tag.
  std::size_t wire_bytes() const noexcept { return payload.size() + 8 + 16; }
};

/// Packs triplets into the canonical byte layout (little-endian doubles /
/// ids as memcpy'd 8-byte words, matching crypto::encode_triplet).
std::vector<std::uint8_t> pack_triplets(std::span<const Triplet> triplets);

/// Unpacks; returns std::nullopt when the byte count is not a multiple of
/// the triplet size.
std::optional<std::vector<Triplet>> unpack_triplets(
    std::span<const std::uint8_t> bytes);

/// Stateless sealing/opening facade over the identity authority, with
/// accept/reject accounting.
class SecureGossipChannel {
 public:
  explicit SecureGossipChannel(const crypto::IdentityAuthority& authority)
      : authority_(&authority) {}

  /// Signs and packages a triplet batch from `key`'s owner.
  SecureVectorMessage seal(const crypto::PrivateKey& key,
                           std::span<const Triplet> triplets) const;

  /// Verifies sender identity + payload integrity; returns the triplets on
  /// success, std::nullopt on any tamper/forgery (and counts it).
  std::optional<std::vector<Triplet>> open(const SecureVectorMessage& msg);

  std::uint64_t accepted() const noexcept { return accepted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  const crypto::IdentityAuthority* authority_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

/// In-transit attacker model for tests/ablations: with probability
/// `tamper_probability` rewrites one triplet of the message (boosting the
/// x share of `beneficiary`), returning whether it tampered. The signature
/// is NOT recomputed — the attacker does not hold the sender's key — so an
/// authenticated receiver will reject exactly the tampered messages.
bool tamper_in_transit(SecureVectorMessage& msg, std::uint64_t beneficiary,
                       double boost, double tamper_probability, Rng& rng);

}  // namespace gt::gossip
