#include "gossip/pushsum.hpp"

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "telemetry/scoped_timer.hpp"

namespace gt::gossip {

ScalarPushSum::ScalarPushSum(std::vector<double> x0, std::vector<double> w0,
                             PushSumConfig config)
    : config_(config),
      x_(std::move(x0)),
      w_(std::move(w0)),
      prev_ratio_(x_.size(), std::numeric_limits<double>::quiet_NaN()),
      stable_count_(x_.size(), 0),
      inbox_x_(x_.size(), 0.0),
      inbox_w_(x_.size(), 0.0) {
  if (x_.empty() || x_.size() != w_.size())
    throw std::invalid_argument("ScalarPushSum: x0/w0 must be equal-sized, non-empty");
}

void ScalarPushSum::attach_telemetry(telemetry::MetricsRegistry* registry) {
  metrics_ = registry;
  if (metrics_ != nullptr) {
    m_sent_ = metrics_->counter("pushsum.messages_sent");
    m_lost_ = metrics_->counter("pushsum.messages_lost");
    m_step_seconds_ =
        metrics_->histogram("pushsum.step_seconds",
                            telemetry::HistogramOptions{3e-8, 2.0, 30});
  }
}

void ScalarPushSum::step(Rng& rng, const graph::Graph* overlay, PushSumResult& result) {
  const std::size_t n = x_.size();
  const std::uint64_t sent_before = result.messages_sent;
  const std::uint64_t lost_before = result.messages_lost;
  std::optional<telemetry::ScopedTimer> timer;
  if (metrics_ != nullptr) timer.emplace(*metrics_, m_step_seconds_);
  // Send phase: every node halves its pair; one half stays (the "send to
  // itself" of Algorithm 1 line 12), the other is pushed to a random target.
  for (NodeId i = 0; i < n; ++i) {
    const double hx = 0.5 * x_[i];
    const double hw = 0.5 * w_[i];
    inbox_x_[i] += hx;
    inbox_w_[i] += hw;

    NodeId target = i;
    if (config_.neighbors_only && overlay != nullptr) {
      const auto nbrs = overlay->neighbors(i);
      if (nbrs.empty()) {
        // Isolated node: its pushed half has nowhere to go but itself.
        inbox_x_[i] += hx;
        inbox_w_[i] += hw;
        continue;
      }
      target = nbrs[rng.next_below(nbrs.size())];
    } else if (n == 1) {
      // Single node: there is no "other" peer, so the pushed half stays
      // local like the isolated-node case above. (Previously this fell
      // through to next_below(0) and wrote inbox_[1], one past the end.)
      inbox_x_[i] += hx;
      inbox_w_[i] += hw;
      continue;
    } else {
      target = rng.next_below(n - 1);
      if (target >= i) ++target;  // uniform over others
    }

    ++result.messages_sent;
    if (config_.loss_probability > 0.0 && rng.next_bool(config_.loss_probability)) {
      ++result.messages_lost;  // mass evaporates with the lost message
      continue;
    }
    inbox_x_[target] += hx;
    inbox_w_[target] += hw;
  }

  // Receive phase (Eqs. 3-4): the inbox *is* the new state, because the
  // kept half was already deposited there.
  x_.swap(inbox_x_);
  w_.swap(inbox_w_);
  std::fill(inbox_x_.begin(), inbox_x_.end(), 0.0);
  std::fill(inbox_w_.begin(), inbox_w_.end(), 0.0);

  // Local convergence bookkeeping.
  for (NodeId i = 0; i < n; ++i) {
    if (w_[i] <= kWeightFloor) {
      stable_count_[i] = 0;
      prev_ratio_[i] = std::numeric_limits<double>::quiet_NaN();
      continue;
    }
    const double ratio = x_[i] / w_[i];
    if (std::isnan(prev_ratio_[i]) || std::abs(ratio - prev_ratio_[i]) > config_.epsilon) {
      stable_count_[i] = 0;
    } else {
      ++stable_count_[i];
    }
    prev_ratio_[i] = ratio;
  }

  if (metrics_ != nullptr) {
    metrics_->add(m_sent_, result.messages_sent - sent_before);
    metrics_->add(m_lost_, result.messages_lost - lost_before);
  }
}

PushSumResult ScalarPushSum::run(Rng& rng, const graph::Graph* overlay) {
  PushSumResult result;
  while (result.steps < config_.max_steps) {
    step(rng, overlay, result);
    ++result.steps;
    bool all_stable = true;
    for (NodeId i = 0; i < x_.size(); ++i) {
      if (stable_count_[i] < config_.stable_rounds) {
        all_stable = false;
        break;
      }
    }
    if (all_stable) {
      result.converged = true;
      break;
    }
  }
  return result;
}

double ScalarPushSum::estimate(NodeId i) const {
  if (w_[i] <= kWeightFloor) return std::numeric_limits<double>::quiet_NaN();
  return x_[i] / w_[i];
}

double ScalarPushSum::total_x() const {
  double s = 0.0;
  for (const double v : x_) s += v;
  return s;
}

double ScalarPushSum::total_w() const {
  double s = 0.0;
  for (const double v : w_) s += v;
  return s;
}

double ScalarPushSum::max_disagreement() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (NodeId i = 0; i < x_.size(); ++i) {
    const double e = estimate(i);
    if (std::isnan(e)) continue;
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  return (hi >= lo) ? hi - lo : 0.0;
}

}  // namespace gt::gossip
