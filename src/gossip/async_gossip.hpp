// Event-driven (asynchronous) vector push-sum, with optional self-healing.
//
// The synchronous-round VectorGossip matches the paper's lock-step
// description of Algorithm 2; real unstructured networks are asynchronous:
// peers push on their own clocks, messages arrive after variable latency,
// and some are lost. AsyncGossip runs the same protocol over the
// discrete-event Scheduler and the simulated Network — per-peer periodic
// send timers with jitter, latency-delayed delivery, loss and node-failure
// handling.
//
// The paper's "no error recovery needed" claim is only true for *message
// loss* (x and w are destroyed together, so ratios stay unbiased). Two
// regimes break it, and this class can repair both when a Reliability
// policy is enabled:
//
//   * Transient loss/partition/corruption: ack-based retransmission with
//     bounded exponential backoff keeps pushed mass in a sender-side
//     pending buffer until the receiver confirms it; exhausted retries
//     reclaim the mass into the sender's row (never destroying it) and
//     raise timeout-based suspicion against the unresponsive peer.
//   * Node crash: a crashed node destroys its resident mass, permanently
//     biasing every survivor's ratio. With repair_on_crash, the epoch is
//     restarted: survivors discard the tainted epoch and re-seed from the
//     stored (S, v) restricted to live membership, restoring the
//     mass-conservation invariant. A crash-rejoin re-initializes the
//     returning node and (with repair on) restarts the epoch to re-admit
//     its trust row.
//
// Full mass accounting is maintained per component: at any drain point
//   resident + in_flight + destroyed - repaired == initial
// which the chaos tests assert exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "gossip/adversary.hpp"
#include "gossip/pushsum.hpp"
#include "graph/topology.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"
#include "trust/matrix.hpp"

namespace gt::gossip {

/// Outcome of an asynchronous gossip run. After run() returns, delivery /
/// retry closures left in the scheduler keep updating the live counters;
/// read AsyncGossip::stats() again once the scheduler is drained for
/// totals that reconcile exactly with net::TrafficStats.
struct AsyncGossipResult {
  double sim_time = 0.0;          ///< simulated time at termination
  std::size_t send_events = 0;    ///< per-node push events executed
  bool converged = false;         ///< every live node epsilon-stable
  std::uint64_t messages_sent = 0;     ///< data copies handed to the network
  std::uint64_t messages_dropped = 0;  ///< data copies lost (send-time AND in-flight)
  std::uint64_t triplets_sent = 0;     ///< logical triplets across all data
                                       ///< copies (a batch of k counts k, and
                                       ///< a retransmitted copy counts again),
                                       ///< so data wire bytes == 24 * this
  std::uint64_t triplets_dropped = 0;  ///< fire-and-forget triplets destroyed
                                       ///< by message drops (ack-mode copy
                                       ///< losses retransmit instead)
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_dropped = 0;
  std::uint64_t retransmits = 0;       ///< data resends after ack timeout
  std::uint64_t duplicates_ignored = 0;///< receiver-side dedup hits
  std::uint64_t stale_discarded = 0;   ///< old-epoch copies discarded
  std::uint64_t mass_reclaims = 0;     ///< pending sends reclaimed by the sender
  std::uint64_t suspicions = 0;        ///< peer-suspicion events raised
  std::uint64_t crashes = 0;           ///< notify_crash() calls observed
  std::uint64_t repairs = 0;           ///< epoch restarts executed
};

/// Per-component mass ledger (see the invariant in the file header).
/// `injected_*` is counterfeit mass minted by a gossip-layer adversary
/// (ShareAdversary); the gap identities subtract it, so honest runs
/// (injected == 0) are unchanged and attacked runs still reconcile to 0 —
/// while x_gap() + injected_x exposes the raw inflation for detectors.
struct MassAccount {
  double initial_x = 0.0, initial_w = 0.0;
  double resident_x = 0.0, resident_w = 0.0;
  double in_flight_x = 0.0, in_flight_w = 0.0;
  double destroyed_x = 0.0, destroyed_w = 0.0;
  double repaired_x = 0.0, repaired_w = 0.0;
  double injected_x = 0.0, injected_w = 0.0;

  double x_gap() const noexcept {
    return resident_x + in_flight_x + destroyed_x - repaired_x - injected_x -
           initial_x;
  }
  double w_gap() const noexcept {
    return resident_w + in_flight_w + destroyed_w - repaired_w - injected_w -
           initial_w;
  }
};

/// Sparse wire triplet: <component id, x half, w half> — 24 bytes each,
/// matching the accounted wire format (one batch message carries k of
/// these, so its payload is k * 24 accounted bytes).
struct WireEntry {
  std::uint32_t id;
  double x;
  double w;
};
static_assert(sizeof(WireEntry) == 24, "wire triplets are 24 bytes");

/// In-memory framing header for pooled gossip messages. Not accounted as
/// wire bytes (it models negligible framing the paper's byte counts
/// ignore): a data batch is accounted as count * 24 bytes and an ack as
/// kAckBytes, exactly as before pooling.
struct WireHeader {
  std::uint64_t msg_id = 0;    ///< ack-mode message id; 0 = fire-and-forget
  std::uint64_t trace_id = 0;  ///< causal tree (0 = untraced)
  std::uint64_t hop_span = 0;  ///< span of the hop that carried this copy
  std::uint32_t epoch = 0;
  std::uint32_t count = 0;     ///< WireEntry triplets following the header
};

/// Asynchronous vector push-sum over a Scheduler + Network.
class AsyncGossip {
 public:
  /// Timing knobs: every node pushes once per `period` of simulated time,
  /// de-phased by a random offset in [0, period).
  struct Timing {
    double period = 1.0;
    double timeout = 10000.0;  ///< give up after this much simulated time
    double min_time = 0.0;     ///< never declare convergence before this
                               ///< absolute sim time (chaos harnesses set it
                               ///< past the last scheduled fault so a
                               ///< partition-stable plateau does not end the
                               ///< run early)
  };

  /// Self-healing policy. Defaults preserve the legacy fire-and-forget
  /// protocol exactly (no acks, no repair).
  struct Reliability {
    bool acks = false;          ///< ack + retransmit + reclaim machinery
    double ack_timeout = 4.0;   ///< initial retransmission timeout (sim time)
    double backoff = 2.0;       ///< RTO multiplier per retry
    double max_timeout = 32.0;  ///< RTO cap
    std::size_t max_retries = 4;         ///< then reclaim + count a failure
    std::size_t suspicion_threshold = 2; ///< consecutive failures -> suspected
    double suspicion_ttl = 30.0;         ///< suspicion expires after this long
    bool repair_on_crash = false;        ///< epoch restart on crash/rejoin
  };

  AsyncGossip(sim::Scheduler& scheduler, net::Network& network,
              PushSumConfig config, Timing timing);
  AsyncGossip(sim::Scheduler& scheduler, net::Network& network,
              PushSumConfig config, Timing timing, Reliability reliability);

  std::size_t num_nodes() const noexcept { return n_; }

  /// Algorithm 2 initialization: x_i^{(j)} = s_ij * v_i, w_i^{(j)} = [i==j].
  /// Stores (s, v) as the seed for crash-repair epoch restarts.
  void initialize(const trust::SparseMatrix& s, std::span<const double> v);

  /// Runs the event loop until every node that the Network reports up has
  /// been epsilon-stable for `stable_rounds` consecutive push events (and
  /// sim time passed timing.min_time), or the timeout elapses. An overlay
  /// restricts targets to neighbors when config.neighbors_only is set.
  AsyncGossipResult run(Rng& rng, const graph::Graph* overlay = nullptr);

  /// Live counters (same struct run() returns); meaningful to re-read
  /// after draining the scheduler.
  const AsyncGossipResult& stats() const noexcept { return stats_; }

  /// Node i's current estimate of component j (NaN while w == 0).
  double estimate(net::NodeId i, net::NodeId j) const;

  /// Node i's full reputation view (undefined components as 0).
  std::vector<double> node_view(net::NodeId i) const;

  /// Mass currently residing on nodes for component j. Note: with messages
  /// in flight this is <= the initial column mass; the remainder travels
  /// inside undelivered messages (or sender-side retry buffers), and only
  /// destruction events (crash, unrepaired loss) remove it for good.
  double resident_x_mass(net::NodeId j) const;
  double resident_w_mass(net::NodeId j) const;

  /// Full per-component ledger (see MassAccount).
  MassAccount mass_account(net::NodeId j) const;

  /// Largest |gap| of the accounting identity across all components and
  /// both x and w ledgers — 0 (up to FP noise) whenever the bookkeeping is
  /// complete, faults or not.
  double mass_invariant_gap() const;

  /// What the live membership *should* be aggregating: column masses of
  /// the seed product restricted to currently-live rows. With repair
  /// enabled, resident + in-flight mass returns to this after every crash;
  /// without repair, crashes leave a permanent deficit.
  std::vector<double> expected_live_x_mass() const;
  double available_x_mass(net::NodeId j) const {
    const auto a = mass_account(j);
    return a.resident_x + a.in_flight_x;
  }

  /// Crash notification (typically wired to FaultInjector::on_crash; the
  /// network must already report the node down). Destroys the node's
  /// resident mass and pending sends, clears its protocol state, and — with
  /// repair_on_crash — restarts the epoch among survivors.
  void notify_crash(net::NodeId v);

  /// Rejoin notification (network must already report the node up). The
  /// node returns blank; with repair_on_crash the epoch restarts so its
  /// trust row re-enters the aggregate.
  void notify_recover(net::NodeId v);

  std::uint32_t epoch() const noexcept { return epoch_; }
  bool is_suspected(net::NodeId by, net::NodeId peer) const {
    return !suspected_.empty() && suspected_[by * n_ + peer] != 0;
  }

  /// Enables causal tracing: every data message gets its own trace id with
  /// retransmitted copies and acks chained by parent span, and a
  /// flight-recorder probe sweep (available mass, ledger gap, |dV|) runs
  /// every `probe_every` push events (0 = once per n). Observational only:
  /// no event is scheduled and no RNG is drawn, so results are
  /// bit-identical with tracing on or off. Null disables.
  void set_trace(trace::TraceSink* sink, std::size_t probe_every = 0);

  /// Attaches a gossip-layer adversary consulted at each push (null
  /// detaches). Deterministic and RNG-free by the ShareAdversary contract:
  /// an all-honest adversary leaves runs bit-identical to no adversary.
  /// Minted own-component mass is ledgered in MassAccount::injected_x.
  void set_adversary(const ShareAdversary* adv) { adv_ = adv; }

 private:
  using Payload = std::vector<WireEntry>;

  struct PendingSend {
    net::NodeId from = 0;
    net::NodeId to = 0;
    std::uint32_t epoch = 0;
    std::size_t retries = 0;
    double rto = 0.0;
    sim::EventId timer = 0;
    bool delivered = false;  ///< receiver has processed some copy
    std::uint64_t trace_id = 0;  ///< causal tree for every copy + ack
    std::uint64_t last_span = 0; ///< most recent hop span (retransmit parent)
    Payload payload;
  };

  void node_push(net::NodeId i, Rng& rng, const graph::Graph* overlay);
  net::NodeId pick_target(net::NodeId i, Rng& rng, const graph::Graph* overlay,
                          bool& ok);
  void update_stability(net::NodeId i);
  bool all_stable() const;

  /// Fire-and-forget: ships `entries` as one pooled wire message.
  void send_ff(net::NodeId from, net::NodeId to,
               std::span<const WireEntry> entries);
  /// Ack mode: allocates a PendingSend owning `payload`, sends the first
  /// copy, and arms its retransmission timer.
  void queue_pending(net::NodeId from, net::NodeId to, Payload payload);
  void send_data_copy(std::uint64_t id);

  // Pooled-network callbacks (ctx is the AsyncGossip instance). Payload
  // spans are only valid for the duration of the call.
  static void on_ff_deliver(void* ctx, std::span<const std::byte> p,
                            net::NodeId from, net::NodeId to);
  static void on_ff_drop(void* ctx, std::span<const std::byte> p,
                         net::NodeId from, net::NodeId to, const char* reason);
  static void on_data_deliver(void* ctx, std::span<const std::byte> p,
                              net::NodeId from, net::NodeId to);
  static void on_data_drop(void* ctx, std::span<const std::byte> p,
                           net::NodeId from, net::NodeId to, const char* reason);
  static void on_ack_deliver(void* ctx, std::span<const std::byte> p,
                             net::NodeId from, net::NodeId to);
  static void on_ack_drop(void* ctx, std::span<const std::byte> p,
                          net::NodeId from, net::NodeId to, const char* reason);

  void on_data_arrival(net::NodeId from, net::NodeId to, std::uint64_t id,
                       std::uint32_t ep, std::uint64_t trace_id,
                       std::uint64_t hop_span);
  void send_ack(net::NodeId from, net::NodeId to, std::uint64_t id,
                std::uint64_t trace_id, std::uint64_t parent_span);
  void on_ack(std::uint64_t id);
  void on_ack_timeout(std::uint64_t id);
  void record_send_failure(net::NodeId from, net::NodeId to);
  void epoch_restart(const char* reason);
  void trace_instant(trace::SpanKind kind, std::uint64_t trace_id,
                     std::uint64_t parent_id, net::NodeId node,
                     net::NodeId peer, std::uint32_t flags, double value);
  void probe_sweep();
  void seed_row(net::NodeId i, bool count_repaired);
  void apply_adversary(net::NodeId i, double* xi, double* wi);
  void add_in_flight(std::span<const WireEntry> p, double sign);
  void add_destroyed(std::span<const WireEntry> p);
  void destroy_row(net::NodeId i);

  sim::Scheduler& scheduler_;
  net::Network& network_;
  PushSumConfig config_;
  Timing timing_;
  Reliability reliability_;
  std::size_t n_;

  std::vector<double> x_;  // n*n row-major
  std::vector<double> w_;
  std::vector<double> prev_ratio_;
  std::vector<std::size_t> stable_count_;
  Payload scratch_;  ///< per-push triplet staging; capacity is recycled
  AsyncGossipResult stats_;

  // Mass ledgers, one slot per component (column).
  std::vector<double> initial_x_, initial_w_;
  std::vector<double> in_flight_x_, in_flight_w_;
  std::vector<double> destroyed_x_, destroyed_w_;
  std::vector<double> repaired_x_, repaired_w_;
  std::vector<double> injected_x_, injected_w_;  ///< adversary-minted mass

  const ShareAdversary* adv_ = nullptr;

  // Reliability state (ack mode).
  std::uint32_t epoch_ = 0;
  std::uint64_t next_msg_id_ = 1;
  std::unordered_map<std::uint64_t, PendingSend> pending_;
  std::unordered_set<std::uint64_t> reclaimed_;  ///< poisoned message ids
  std::vector<std::unordered_set<std::uint64_t>> seen_;  ///< per-receiver dedup
  std::vector<std::uint8_t> suspected_;    // n*n: [by * n + peer]
  std::vector<std::size_t> fail_streak_;   // n*n consecutive send failures

  // Causal tracing + flight recorder (null = off; see set_trace).
  trace::TraceSink* trace_ = nullptr;
  std::size_t probe_every_ = 0;
  std::uint64_t probe_seq_ = 0;       ///< sweep series index
  std::vector<double> probe_prev_;    ///< last sweep's mass ratio, per column

  // Seed snapshot for epoch restarts (optional because SparseMatrix is
  // only constructible through its Builder; copy-assignment is public).
  std::optional<trust::SparseMatrix> seed_s_;
  std::vector<double> seed_v_;

  double* row_x(net::NodeId i) { return x_.data() + i * n_; }
  double* row_w(net::NodeId i) { return w_.data() + i * n_; }
  const double* row_x(net::NodeId i) const { return x_.data() + i * n_; }
  const double* row_w(net::NodeId i) const { return w_.data() + i * n_; }
};

}  // namespace gt::gossip
