// Event-driven (asynchronous) vector push-sum.
//
// The synchronous-round VectorGossip matches the paper's lock-step
// description of Algorithm 2; real unstructured networks are asynchronous:
// peers push on their own clocks, messages arrive after variable latency,
// and some are lost. AsyncGossip runs the same protocol over the
// discrete-event Scheduler and the simulated Network — per-peer periodic
// send timers with jitter, latency-delayed delivery, loss and node-failure
// handling — and demonstrates that push-sum's convergence and its
// mass-conservation invariant are untouched by asynchrony (in-flight
// messages simply hold mass until delivery).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "gossip/pushsum.hpp"
#include "graph/topology.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "trust/matrix.hpp"

namespace gt::gossip {

/// Outcome of an asynchronous gossip run.
struct AsyncGossipResult {
  double sim_time = 0.0;          ///< simulated time at termination
  std::size_t send_events = 0;    ///< per-node push events executed
  bool converged = false;         ///< every live node epsilon-stable
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
};

/// Asynchronous vector push-sum over a Scheduler + Network.
class AsyncGossip {
 public:
  /// Timing knobs: every node pushes once per `period` of simulated time,
  /// de-phased by a random offset in [0, period).
  struct Timing {
    double period = 1.0;
    double timeout = 10000.0;  ///< give up after this much simulated time
  };

  AsyncGossip(sim::Scheduler& scheduler, net::Network& network,
              PushSumConfig config, Timing timing);

  std::size_t num_nodes() const noexcept { return n_; }

  /// Algorithm 2 initialization: x_i^{(j)} = s_ij * v_i, w_i^{(j)} = [i==j].
  void initialize(const trust::SparseMatrix& s, std::span<const double> v);

  /// Runs the event loop until every node that the Network reports up has
  /// been epsilon-stable for `stable_rounds` consecutive push events, or
  /// the timeout elapses. An overlay restricts targets to neighbors when
  /// config.neighbors_only is set.
  AsyncGossipResult run(Rng& rng, const graph::Graph* overlay = nullptr);

  /// Node i's current estimate of component j (NaN while w == 0).
  double estimate(net::NodeId i, net::NodeId j) const;

  /// Node i's full reputation view (undefined components as 0).
  std::vector<double> node_view(net::NodeId i) const;

  /// Mass currently residing on nodes for component j. Note: with messages
  /// in flight this is <= the initial column mass; the remainder travels
  /// inside undelivered messages, and only loss destroys it.
  double resident_x_mass(net::NodeId j) const;
  double resident_w_mass(net::NodeId j) const;

 private:
  void node_push(net::NodeId i, Rng& rng, const graph::Graph* overlay);
  void update_stability(net::NodeId i);
  bool all_stable() const;

  sim::Scheduler& scheduler_;
  net::Network& network_;
  PushSumConfig config_;
  Timing timing_;
  std::size_t n_;

  std::vector<double> x_;  // n*n row-major
  std::vector<double> w_;
  std::vector<double> prev_ratio_;
  std::vector<std::size_t> stable_count_;
  AsyncGossipResult stats_;

  double* row_x(net::NodeId i) { return x_.data() + i * n_; }
  double* row_w(net::NodeId i) { return w_.data() + i * n_; }
  const double* row_x(net::NodeId i) const { return x_.data() + i * n_; }
  const double* row_w(net::NodeId i) const { return w_.data() + i * n_; }
};

}  // namespace gt::gossip
