#include "gossip/async_gossip.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>

namespace gt::gossip {
namespace {

/// Wire cost of an acknowledgement: message id + epoch.
constexpr std::size_t kAckBytes = 16;

// Pooled payloads travel as raw bytes (header, then `count` triplets);
// memcpy in and out keeps the access well-defined regardless of how the
// pool aligned the buffer, and compiles to plain loads/stores.

WireHeader read_header(std::span<const std::byte> p) {
  WireHeader h;
  std::memcpy(&h, p.data(), sizeof h);
  return h;
}

WireEntry read_entry(std::span<const std::byte> p, std::size_t k) {
  WireEntry e;
  std::memcpy(&e, p.data() + sizeof(WireHeader) + k * sizeof(WireEntry),
              sizeof e);
  return e;
}

void write_payload(std::span<std::byte> buf, const WireHeader& h,
                   std::span<const WireEntry> entries) {
  std::memcpy(buf.data(), &h, sizeof h);
  if (!entries.empty())
    std::memcpy(buf.data() + sizeof h, entries.data(),
                entries.size() * sizeof(WireEntry));
}

}  // namespace

AsyncGossip::AsyncGossip(sim::Scheduler& scheduler, net::Network& network,
                         PushSumConfig config, Timing timing)
    : AsyncGossip(scheduler, network, config, timing, Reliability{}) {}

AsyncGossip::AsyncGossip(sim::Scheduler& scheduler, net::Network& network,
                         PushSumConfig config, Timing timing,
                         Reliability reliability)
    : scheduler_(scheduler),
      network_(network),
      config_(config),
      timing_(timing),
      reliability_(reliability),
      n_(network.num_nodes()),
      x_(n_ * n_, 0.0),
      w_(n_ * n_, 0.0),
      prev_ratio_(n_ * n_, std::numeric_limits<double>::quiet_NaN()),
      stable_count_(n_, 0),
      initial_x_(n_, 0.0),
      initial_w_(n_, 0.0),
      in_flight_x_(n_, 0.0),
      in_flight_w_(n_, 0.0),
      destroyed_x_(n_, 0.0),
      destroyed_w_(n_, 0.0),
      repaired_x_(n_, 0.0),
      repaired_w_(n_, 0.0),
      injected_x_(n_, 0.0),
      injected_w_(n_, 0.0) {
  if (n_ == 0) throw std::invalid_argument("AsyncGossip: empty network");
  if (timing_.period <= 0.0) throw std::invalid_argument("AsyncGossip: bad period");
  if (reliability_.acks) {
    if (reliability_.ack_timeout <= 0.0 || reliability_.backoff < 1.0)
      throw std::invalid_argument("AsyncGossip: bad reliability timing");
    seen_.resize(n_);
    suspected_.assign(n_ * n_, 0);
    fail_streak_.assign(n_ * n_, 0);
  }
}

void AsyncGossip::seed_row(net::NodeId i, bool count_repaired) {
  // Algorithm 2 seeding for one node, shared by initialize() and epoch
  // restarts: x_i = s_i .* v_i (uniform share when the row is empty),
  // w_i = e_i.
  const auto& s = *seed_s_;
  double* xi = row_x(i);
  const auto entries = s.row(i);
  auto credit = [&](net::NodeId j, double amount) {
    xi[j] += amount;
    if (count_repaired)
      repaired_x_[j] += amount;
    else
      initial_x_[j] += amount;
  };
  if (entries.empty()) {
    const double share = seed_v_[i] / static_cast<double>(n_);
    for (net::NodeId j = 0; j < n_; ++j) credit(j, share);
  } else {
    for (const auto& e : entries) credit(e.col, e.value * seed_v_[i]);
  }
  row_w(i)[i] += 1.0;
  if (count_repaired)
    repaired_w_[i] += 1.0;
  else
    initial_w_[i] += 1.0;
}

void AsyncGossip::initialize(const trust::SparseMatrix& s, std::span<const double> v) {
  if (s.size() != n_ || v.size() != n_)
    throw std::invalid_argument("AsyncGossip::initialize: size mismatch");
  std::fill(x_.begin(), x_.end(), 0.0);
  std::fill(w_.begin(), w_.end(), 0.0);
  std::fill(prev_ratio_.begin(), prev_ratio_.end(),
            std::numeric_limits<double>::quiet_NaN());
  std::fill(stable_count_.begin(), stable_count_.end(), 0);
  stats_ = AsyncGossipResult{};
  std::fill(initial_x_.begin(), initial_x_.end(), 0.0);
  std::fill(initial_w_.begin(), initial_w_.end(), 0.0);
  std::fill(in_flight_x_.begin(), in_flight_x_.end(), 0.0);
  std::fill(in_flight_w_.begin(), in_flight_w_.end(), 0.0);
  std::fill(destroyed_x_.begin(), destroyed_x_.end(), 0.0);
  std::fill(destroyed_w_.begin(), destroyed_w_.end(), 0.0);
  std::fill(repaired_x_.begin(), repaired_x_.end(), 0.0);
  std::fill(repaired_w_.begin(), repaired_w_.end(), 0.0);
  std::fill(injected_x_.begin(), injected_x_.end(), 0.0);
  std::fill(injected_w_.begin(), injected_w_.end(), 0.0);
  epoch_ = 0;
  next_msg_id_ = 1;
  pending_.clear();
  reclaimed_.clear();
  for (auto& seen : seen_) seen.clear();
  std::fill(suspected_.begin(), suspected_.end(), 0);
  std::fill(fail_streak_.begin(), fail_streak_.end(), 0);

  seed_s_ = s;
  seed_v_.assign(v.begin(), v.end());
  for (net::NodeId i = 0; i < n_; ++i) seed_row(i, /*count_repaired=*/false);
}

void AsyncGossip::set_trace(trace::TraceSink* sink, std::size_t probe_every) {
  trace_ = sink;
  probe_every_ = probe_every != 0 ? probe_every : n_;
  probe_seq_ = 0;
  probe_prev_.assign(n_, std::numeric_limits<double>::quiet_NaN());
}

void AsyncGossip::trace_instant(trace::SpanKind kind, std::uint64_t trace_id,
                                std::uint64_t parent_id, net::NodeId node,
                                net::NodeId peer, std::uint32_t flags,
                                double value) {
  trace::TraceRecord rec;
  rec.t_start = rec.t_end = scheduler_.now();
  rec.trace_id = trace_id;
  rec.span_id = trace_->alloc_span();
  rec.parent_id = parent_id;
  rec.kind = static_cast<std::uint32_t>(kind);
  rec.flags = flags;
  rec.node = node == static_cast<net::NodeId>(trace::kGlobalNode)
                 ? trace::kGlobalNode
                 : static_cast<std::uint32_t>(node);
  rec.peer = peer == static_cast<net::NodeId>(trace::kNoPeer)
                 ? trace::kNoPeer
                 : static_cast<std::uint32_t>(peer);
  rec.value = value;
  trace_->emit(rec);
}

void AsyncGossip::probe_sweep() {
  // Flight-recorder sample: pure reads of the mass ledgers — nothing is
  // scheduled and no randomness is drawn, so traced and untraced runs
  // execute identical event streams.
  const std::uint64_t tid = trace_->alloc_trace();
  const std::uint64_t series = probe_seq_++;
  const double t = scheduler_.now();
  for (net::NodeId j = 0; j < n_; ++j) {
    if (!network_.is_node_up(j)) continue;
    const MassAccount a = mass_account(j);
    const double avail_x = a.resident_x + a.in_flight_x;
    const double avail_w = a.resident_w + a.in_flight_w;
    double ratio = std::numeric_limits<double>::quiet_NaN();
    if (avail_w > kWeightFloor) ratio = avail_x / avail_w;
    double delta = 0.0;
    if (!std::isnan(ratio) && !std::isnan(probe_prev_[j]))
      delta = std::abs(ratio - probe_prev_[j]);
    probe_prev_[j] = ratio;
    // x residual: raw inflation of the column's available x mass over its
    // legitimate books — x_gap() reconciles to ~0 under faults alone, so
    // gap + injected isolates the adversary-minted share.
    trace_->probe(tid, series, t, static_cast<std::uint32_t>(j), avail_w,
                  a.w_gap(), delta, std::isfinite(ratio) ? ratio : 0.0,
                  a.x_gap() + a.injected_x);
  }
}

void AsyncGossip::update_stability(net::NodeId i) {
  const double* xi = row_x(i);
  const double* wi = row_w(i);
  double* prev = prev_ratio_.data() + i * n_;
  bool stable = true;
  for (net::NodeId j = 0; j < n_; ++j) {
    if (!network_.is_node_up(j)) continue;  // unowned component under failure
    if (wi[j] <= kWeightFloor) {
      prev[j] = std::numeric_limits<double>::quiet_NaN();
      stable = false;
      continue;
    }
    const double ratio = xi[j] / wi[j];
    if (std::isnan(prev[j]) || std::abs(ratio - prev[j]) > config_.epsilon)
      stable = false;
    prev[j] = ratio;
  }
  stable_count_[i] = stable ? stable_count_[i] + 1 : 0;
}

void AsyncGossip::add_in_flight(std::span<const WireEntry> p, double sign) {
  for (const auto& e : p) {
    in_flight_x_[e.id] += sign * e.x;
    in_flight_w_[e.id] += sign * e.w;
  }
}

void AsyncGossip::add_destroyed(std::span<const WireEntry> p) {
  for (const auto& e : p) {
    destroyed_x_[e.id] += e.x;
    destroyed_w_[e.id] += e.w;
  }
}

net::NodeId AsyncGossip::pick_target(net::NodeId i, Rng& rng,
                                     const graph::Graph* overlay, bool& ok) {
  ok = true;
  if (!reliability_.acks) {
    // Legacy path: identical RNG consumption to earlier revisions.
    if (config_.neighbors_only && overlay != nullptr) {
      const auto nbrs = overlay->neighbors(i);
      if (nbrs.empty()) {
        ok = false;
        return i;
      }
      return nbrs[rng.next_below(nbrs.size())];
    }
    if (n_ <= 1) {
      ok = false;
      return i;
    }
    net::NodeId target = rng.next_below(n_ - 1);
    if (target >= i) ++target;
    return target;
  }

  // Reliable mode: suspected peers are skipped, so pushes stop draining
  // into black holes during an outage (suspicion expires on a TTL and is
  // cleared the moment the peer is heard from again).
  const std::uint8_t* row = suspected_.data() + i * n_;
  std::vector<net::NodeId> candidates;
  if (config_.neighbors_only && overlay != nullptr) {
    const auto nbrs = overlay->neighbors(i);
    candidates.reserve(nbrs.size());
    for (const auto t : nbrs)
      if (row[t] == 0) candidates.push_back(t);
  } else {
    candidates.reserve(n_ - 1);
    for (net::NodeId t = 0; t < n_; ++t)
      if (t != i && row[t] == 0) candidates.push_back(t);
  }
  if (candidates.empty()) {
    ok = false;
    return i;
  }
  return candidates[rng.next_below(candidates.size())];
}

void AsyncGossip::node_push(net::NodeId i, Rng& rng, const graph::Graph* overlay) {
  if (!network_.is_node_up(i)) return;
  ++stats_.send_events;
  if (trace_ != nullptr && probe_every_ != 0 &&
      stats_.send_events % probe_every_ == 0)
    probe_sweep();
  update_stability(i);

  bool ok = false;
  const net::NodeId target = pick_target(i, rng, overlay, ok);
  if (!ok) return;  // isolated or everyone suspected: keeps everything

  // Halve the vector; only live (x, w) components ride the wire, packed as
  // <component id, x, w> triplets, so the payload matches the
  // 24-bytes-per-triplet wire accounting instead of two dense length-n
  // vectors. The staging buffer is a member whose capacity is recycled
  // across pushes.
  double* xi = row_x(i);
  double* wi = row_w(i);
  scratch_.clear();
  for (net::NodeId j = 0; j < n_; ++j) {
    if (xi[j] == 0.0 && wi[j] == 0.0) continue;
    const double px = 0.5 * xi[j];
    const double pw = 0.5 * wi[j];
    scratch_.push_back({static_cast<std::uint32_t>(j), px, pw});
    xi[j] = px;
    wi[j] = pw;
  }

  if (adv_ != nullptr) apply_adversary(i, xi, wi);

  if (!reliability_.acks) {
    // Fire-and-forget: the pushed half rides inside a pooled wire buffer
    // until delivery; destruction events (loss, stale epoch) destroy x and
    // w together, which is why pure loss does not bias the ratios.
    if (config_.batch_wire || scratch_.empty()) {
      // One batch per destination per push: one event, one delivery, and
      // k * 24 payload bytes (an all-zero row still sends its empty push,
      // as it always did).
      send_ff(i, target, scratch_);
    } else {
      for (const auto& e : scratch_) send_ff(i, target, {&e, 1});
    }
    return;
  }

  // Reliable mode: the pending buffer is the canonical owner of the pushed
  // mass until the receiver confirms it (or the sender reclaims it).
  if (config_.batch_wire || scratch_.empty()) {
    queue_pending(i, target, Payload(scratch_.begin(), scratch_.end()));
  } else {
    for (const auto& e : scratch_) queue_pending(i, target, Payload{e});
  }
}

void AsyncGossip::apply_adversary(net::NodeId i, double* xi, double* wi) {
  // Rewrites the staged outgoing batch in place, after the honest halving
  // and before any wire accounting, so every downstream path (ff / ack /
  // per-triplet) sees the adversarial payload consistently. No RNG draws.
  const auto self = static_cast<std::uint32_t>(i);
  if (adv_->withholds(i) && !scratch_.empty()) {
    // Suppress every component but the sender's own: the withheld halves
    // return to the resident row (un-halving them), so no mass is lost —
    // the node simply refuses to relay others' shares.
    std::size_t out = 0;
    for (const WireEntry& e : scratch_) {
      if (e.id == self) {
        scratch_[out++] = e;
        continue;
      }
      xi[e.id] += e.x;
      wi[e.id] += e.w;
    }
    scratch_.resize(out);
  }
  const double c = adv_->share_scale(i);
  if (c != 1.0) {
    for (WireEntry& e : scratch_) {
      if (e.id != self) continue;
      const double extra = (c - 1.0) * e.x;
      e.x += extra;
      injected_x_[i] += extra;  // minted (or burnt, c<1) counterfeit mass
      break;
    }
  }
}

void AsyncGossip::send_ff(net::NodeId from, net::NodeId to,
                          std::span<const WireEntry> entries) {
  ++stats_.messages_sent;
  stats_.triplets_sent += entries.size();
  add_in_flight(entries, +1.0);
  trace::TraceCtx tctx;
  if (trace_ != nullptr) {
    tctx.trace_id = trace_->alloc_trace();
    tctx.span_id = trace_->alloc_span();
  }
  WireHeader hd;
  hd.epoch = epoch_;
  hd.count = static_cast<std::uint32_t>(entries.size());
  const net::MsgHandle h = network_.acquire_payload(
      sizeof(WireHeader) + entries.size() * sizeof(WireEntry));
  write_payload(network_.payload(h), hd, entries);
  net::Network::PooledSend sink;
  sink.on_deliver = &AsyncGossip::on_ff_deliver;
  sink.on_drop = &AsyncGossip::on_ff_drop;
  sink.ctx = this;
  const bool sent = network_.send_pooled(
      from, to, 24 * entries.size(),
      static_cast<std::uint32_t>(entries.size()), h, sink, tctx);
  if (!sent) {
    ++stats_.messages_dropped;
    stats_.triplets_dropped += entries.size();
    add_in_flight(entries, -1.0);
    add_destroyed(entries);
  }
}

void AsyncGossip::queue_pending(net::NodeId from, net::NodeId to,
                                Payload payload) {
  const std::uint64_t id = next_msg_id_++;
  PendingSend rec;
  rec.from = from;
  rec.to = to;
  rec.epoch = epoch_;
  rec.rto = reliability_.ack_timeout;
  if (trace_ != nullptr) rec.trace_id = trace_->alloc_trace();
  rec.payload = std::move(payload);
  add_in_flight(rec.payload, +1.0);
  pending_.emplace(id, std::move(rec));
  send_data_copy(id);
  PendingSend& stored = pending_.at(id);
  stored.timer =
      scheduler_.schedule_after(stored.rto, [this, id] { on_ack_timeout(id); });
}

void AsyncGossip::on_ff_deliver(void* ctx, std::span<const std::byte> p,
                                net::NodeId /*from*/, net::NodeId to) {
  auto* self = static_cast<AsyncGossip*>(ctx);
  const WireHeader hd = read_header(p);
  for (std::size_t k = 0; k < hd.count; ++k) {
    const WireEntry e = read_entry(p, k);
    self->in_flight_x_[e.id] -= e.x;
    self->in_flight_w_[e.id] -= e.w;
  }
  if (hd.epoch != self->epoch_) {
    // A copy from a pre-repair epoch: its mass was superseded by the
    // restart's re-seed, so it is destroyed, not applied.
    ++self->stats_.stale_discarded;
    for (std::size_t k = 0; k < hd.count; ++k) {
      const WireEntry e = read_entry(p, k);
      self->destroyed_x_[e.id] += e.x;
      self->destroyed_w_[e.id] += e.w;
    }
    return;
  }
  double* xt = self->row_x(to);
  double* wt = self->row_w(to);
  for (std::size_t k = 0; k < hd.count; ++k) {
    const WireEntry e = read_entry(p, k);
    xt[e.id] += e.x;
    wt[e.id] += e.w;
  }
}

void AsyncGossip::on_ff_drop(void* ctx, std::span<const std::byte> p,
                             net::NodeId /*from*/, net::NodeId /*to*/,
                             const char* /*reason*/) {
  auto* self = static_cast<AsyncGossip*>(ctx);
  const WireHeader hd = read_header(p);
  ++self->stats_.messages_dropped;
  self->stats_.triplets_dropped += hd.count;
  for (std::size_t k = 0; k < hd.count; ++k) {
    const WireEntry e = read_entry(p, k);
    self->in_flight_x_[e.id] -= e.x;
    self->in_flight_w_[e.id] -= e.w;
  }
  for (std::size_t k = 0; k < hd.count; ++k) {
    const WireEntry e = read_entry(p, k);
    self->destroyed_x_[e.id] += e.x;
    self->destroyed_w_[e.id] += e.w;
  }
}

void AsyncGossip::on_data_deliver(void* ctx, std::span<const std::byte> p,
                                  net::NodeId from, net::NodeId to) {
  auto* self = static_cast<AsyncGossip*>(ctx);
  const WireHeader hd = read_header(p);
  self->on_data_arrival(from, to, hd.msg_id, hd.epoch, hd.trace_id,
                        hd.hop_span);
}

void AsyncGossip::on_data_drop(void* ctx, std::span<const std::byte> /*p*/,
                               net::NodeId /*from*/, net::NodeId /*to*/,
                               const char* /*reason*/) {
  // A lost copy is retransmitted after the ack timeout; its mass stays in
  // the sender's pending buffer, so only the copy counter moves.
  ++static_cast<AsyncGossip*>(ctx)->stats_.messages_dropped;
}

void AsyncGossip::on_ack_deliver(void* ctx, std::span<const std::byte> p,
                                 net::NodeId /*from*/, net::NodeId /*to*/) {
  static_cast<AsyncGossip*>(ctx)->on_ack(read_header(p).msg_id);
}

void AsyncGossip::on_ack_drop(void* ctx, std::span<const std::byte> /*p*/,
                              net::NodeId /*from*/, net::NodeId /*to*/,
                              const char* /*reason*/) {
  ++static_cast<AsyncGossip*>(ctx)->stats_.acks_dropped;
}

void AsyncGossip::send_data_copy(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingSend& p = it->second;
  ++stats_.messages_sent;
  stats_.triplets_sent += p.payload.size();
  const std::size_t bytes = 24 * p.payload.size();
  const net::NodeId from = p.from;
  const net::NodeId to = p.to;
  trace::TraceCtx tctx;
  if (trace_ != nullptr && p.trace_id != 0) {
    // Each copy is one hop span; chaining parent_id to the previous hop
    // makes send -> drop -> retransmit -> ack one tree under p.trace_id.
    tctx.trace_id = p.trace_id;
    tctx.span_id = trace_->alloc_span();
    tctx.parent_id = p.last_span;
    tctx.attempt = static_cast<std::uint32_t>(p.retries);
    p.last_span = tctx.span_id;
  }
  // The wire copy carries the triplets too (the receiver applies from its
  // pending_ record for pointer-stable accounting, but the bytes must be
  // on the wire for the traffic model to mean anything).
  WireHeader hd;
  hd.msg_id = id;
  hd.trace_id = tctx.trace_id;
  hd.hop_span = tctx.span_id;
  hd.epoch = p.epoch;
  hd.count = static_cast<std::uint32_t>(p.payload.size());
  const net::MsgHandle h = network_.acquire_payload(
      sizeof(WireHeader) + p.payload.size() * sizeof(WireEntry));
  write_payload(network_.payload(h), hd, p.payload);
  net::Network::PooledSend sink;
  sink.on_deliver = &AsyncGossip::on_data_deliver;
  sink.on_drop = &AsyncGossip::on_data_drop;
  sink.ctx = this;
  const bool sent =
      network_.send_pooled(from, to, bytes, hd.count, h, sink, tctx);
  if (!sent) ++stats_.messages_dropped;
}

void AsyncGossip::on_data_arrival(net::NodeId from, net::NodeId to,
                                  std::uint64_t id, std::uint32_t ep,
                                  std::uint64_t trace_id,
                                  std::uint64_t hop_span) {
  if (ep != epoch_) {
    // Stale epoch: the restart already moved this message's mass to the
    // destroyed ledger; the copy itself is inert. No ack — the sender's
    // pending entry is gone.
    ++stats_.stale_discarded;
    return;
  }
  if (reclaimed_.count(id) != 0) {
    // The sender gave up and took the mass back; a late copy must not
    // double-deliver it.
    ++stats_.stale_discarded;
    return;
  }
  const bool fresh = seen_[to].insert(id).second;
  if (fresh) {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      // Unreachable by construction (erased records imply a seen id), but
      // never apply mass we cannot account.
      seen_[to].erase(id);
      return;
    }
    PendingSend& p = it->second;
    double* xt = row_x(to);
    double* wt = row_w(to);
    for (const auto& e : p.payload) {
      xt[e.id] += e.x;
      wt[e.id] += e.w;
    }
    add_in_flight(p.payload, -1.0);
    p.delivered = true;
    // Hearing from a peer refutes any suspicion of it.
    if (suspected_[to * n_ + from] != 0) suspected_[to * n_ + from] = 0;
    fail_streak_[to * n_ + from] = 0;
  } else {
    ++stats_.duplicates_ignored;
  }
  // Ack every copy, including duplicates: the previous ack may have been
  // lost, and re-acking is what stops the retransmission chain.
  send_ack(to, from, id, trace_id, hop_span);
}

void AsyncGossip::send_ack(net::NodeId from, net::NodeId to, std::uint64_t id,
                           std::uint64_t trace_id, std::uint64_t parent_span) {
  ++stats_.acks_sent;
  trace::TraceCtx tctx;
  if (trace_ != nullptr && trace_id != 0) {
    // The ack parents to the data hop it confirms.
    tctx.trace_id = trace_id;
    tctx.span_id = trace_->alloc_span();
    tctx.parent_id = parent_span;
    tctx.ack = true;
  }
  WireHeader hd;
  hd.msg_id = id;
  const net::MsgHandle h = network_.acquire_payload(sizeof(WireHeader));
  write_payload(network_.payload(h), hd, {});
  net::Network::PooledSend sink;
  sink.on_deliver = &AsyncGossip::on_ack_deliver;
  sink.on_drop = &AsyncGossip::on_ack_drop;
  sink.ctx = this;
  const bool sent = network_.send_pooled(from, to, kAckBytes, 1, h, sink, tctx);
  if (!sent) ++stats_.acks_dropped;
}

void AsyncGossip::on_ack(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // duplicate ack after completion
  scheduler_.cancel(it->second.timer);
  fail_streak_[it->second.from * n_ + it->second.to] = 0;
  pending_.erase(it);
}

void AsyncGossip::record_send_failure(net::NodeId from, net::NodeId to) {
  std::size_t& streak = ++fail_streak_[from * n_ + to];
  if (streak >= reliability_.suspicion_threshold &&
      suspected_[from * n_ + to] == 0) {
    suspected_[from * n_ + to] = 1;
    ++stats_.suspicions;
    if (trace_ != nullptr)
      trace_instant(trace::SpanKind::kSuspicion, 0, 0, from, to, 0,
                    static_cast<double>(streak));
    scheduler_.schedule_after(reliability_.suspicion_ttl, [this, from, to] {
      suspected_[from * n_ + to] = 0;
      fail_streak_[from * n_ + to] = 0;
    });
  }
}

void AsyncGossip::on_ack_timeout(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingSend& p = it->second;
  if (p.retries >= reliability_.max_retries) {
    if (!p.delivered) {
      // Exhausted and provably undelivered: reclaim the mass into the
      // sender's own row (conservation over availability) and poison the
      // id so a copy that is still crawling through a healed partition
      // cannot double-deliver it later.
      double* xs = row_x(p.from);
      double* ws = row_w(p.from);
      for (const auto& e : p.payload) {
        xs[e.id] += e.x;
        ws[e.id] += e.w;
      }
      add_in_flight(p.payload, -1.0);
      reclaimed_.insert(id);
      ++stats_.mass_reclaims;
      if (trace_ != nullptr && p.trace_id != 0)
        trace_instant(trace::SpanKind::kReclaim, p.trace_id, p.last_span,
                      p.from, p.to, static_cast<std::uint32_t>(p.retries),
                      static_cast<double>(p.payload.size()));
      record_send_failure(p.from, p.to);
    }
    pending_.erase(it);
    return;
  }
  ++p.retries;
  ++stats_.retransmits;
  p.rto = std::min(p.rto * reliability_.backoff, reliability_.max_timeout);
  const double rto = p.rto;
  if (trace_ != nullptr && p.trace_id != 0)
    trace_instant(trace::SpanKind::kRetransmit, p.trace_id, p.last_span, p.from,
                  p.to, static_cast<std::uint32_t>(p.retries), rto);
  send_data_copy(id);  // may invalidate `it`/`p` via unrelated erase? no: sync
  auto again = pending_.find(id);
  if (again != pending_.end())
    again->second.timer =
        scheduler_.schedule_after(rto, [this, id] { on_ack_timeout(id); });
}

void AsyncGossip::destroy_row(net::NodeId i) {
  double* xi = row_x(i);
  double* wi = row_w(i);
  for (net::NodeId j = 0; j < n_; ++j) {
    destroyed_x_[j] += xi[j];
    destroyed_w_[j] += wi[j];
    xi[j] = 0.0;
    wi[j] = 0.0;
  }
  double* prev = prev_ratio_.data() + i * n_;
  std::fill(prev, prev + n_, std::numeric_limits<double>::quiet_NaN());
  stable_count_[i] = 0;
}

void AsyncGossip::epoch_restart(const char* reason) {
  ++epoch_;
  ++stats_.repairs;
  if (trace_ != nullptr)
    trace_instant(trace::SpanKind::kEpochRestart, 0, 0,
                  static_cast<net::NodeId>(trace::kGlobalNode),
                  static_cast<net::NodeId>(trace::kNoPeer),
                  std::strcmp(reason, "rejoin") == 0 ? 1u : 0u,
                  static_cast<double>(epoch_));

  if (reliability_.acks) {
    // Every pending send belongs to the dead epoch: undelivered mass is
    // destroyed (the re-seed below replaces it) and the ids are poisoned
    // so in-flight copies cannot resurrect it.
    for (auto& [id, p] : pending_) {
      scheduler_.cancel(p.timer);
      if (!p.delivered) {
        add_in_flight(p.payload, -1.0);
        add_destroyed(p.payload);
        reclaimed_.insert(id);
      }
    }
    pending_.clear();
    for (auto& seen : seen_) seen.clear();
  }
  // Legacy-mode in-flight copies resolve lazily: their delivery closure
  // sees the epoch mismatch and moves their mass to the destroyed ledger.

  for (net::NodeId i = 0; i < n_; ++i) {
    if (!network_.is_node_up(i)) continue;
    destroy_row(i);
    seed_row(i, /*count_repaired=*/true);
  }
  std::fill(prev_ratio_.begin(), prev_ratio_.end(),
            std::numeric_limits<double>::quiet_NaN());
  std::fill(stable_count_.begin(), stable_count_.end(), 0);
}

void AsyncGossip::notify_crash(net::NodeId v) {
  if (v >= n_) throw std::invalid_argument("AsyncGossip::notify_crash: bad node");
  ++stats_.crashes;
  // The crashed node's resident mass dies with it — this is exactly the
  // regime where "no error recovery needed" stops being true.
  destroy_row(v);
  if (reliability_.acks) {
    // Its retry buffers die too: undelivered pending mass is destroyed and
    // poisoned (a copy already on the wire must not deliver mass that the
    // ledger just wrote off).
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.from == v) {
        scheduler_.cancel(it->second.timer);
        if (!it->second.delivered) {
          add_in_flight(it->second.payload, -1.0);
          add_destroyed(it->second.payload);
          reclaimed_.insert(it->first);
        }
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    seen_[v].clear();  // receiver-side dedup state is resident state
    for (net::NodeId t = 0; t < n_; ++t) {
      suspected_[v * n_ + t] = 0;
      fail_streak_[v * n_ + t] = 0;
    }
  }
  if (reliability_.repair_on_crash && seed_s_.has_value()) epoch_restart("crash");
}

void AsyncGossip::notify_recover(net::NodeId v) {
  if (v >= n_) throw std::invalid_argument("AsyncGossip::notify_recover: bad node");
  // The node returns blank (its row was destroyed at crash time); peers
  // drop their suspicion on its rejoin announcement.
  stable_count_[v] = 0;
  if (reliability_.acks) {
    seen_[v].clear();
    for (net::NodeId i = 0; i < n_; ++i) {
      suspected_[i * n_ + v] = 0;
      fail_streak_[i * n_ + v] = 0;
    }
  }
  if (reliability_.repair_on_crash && seed_s_.has_value())
    epoch_restart("rejoin");
}

bool AsyncGossip::all_stable() const {
  for (net::NodeId i = 0; i < n_; ++i) {
    if (!network_.is_node_up(i)) continue;
    if (stable_count_[i] < config_.stable_rounds) return false;
  }
  return true;
}

AsyncGossipResult AsyncGossip::run(Rng& rng, const graph::Graph* overlay) {
  // De-phased push timers, one per node: a one-shot event at a random
  // offset arms a periodic timer, so nodes never fire in lock-step.
  auto timers = std::make_shared<std::vector<sim::EventId>>(n_, 0);
  for (net::NodeId i = 0; i < n_; ++i) {
    const double offset = rng.next_double(0.0, timing_.period);
    (*timers)[i] = scheduler_.schedule_at(
        scheduler_.now() + offset, [this, i, &rng, overlay, timers] {
          node_push(i, rng, overlay);
          (*timers)[i] = scheduler_.schedule_periodic(
              timing_.period,
              [this, i, &rng, overlay] { node_push(i, rng, overlay); });
        });
  }

  const double deadline = scheduler_.now() + timing_.timeout;
  bool converged = false;
  while (scheduler_.now() < deadline) {
    if (!scheduler_.step()) break;
    if (scheduler_.now() >= timing_.min_time && all_stable()) {
      converged = true;
      break;
    }
  }
  // Disarm the timers (their lambdas reference the caller's rng). Delivery
  // and retry closures still in flight only touch this object's state; do
  // not step the scheduler past this AsyncGossip's lifetime.
  for (const auto id : *timers) scheduler_.cancel(id);

  stats_.converged = converged;
  stats_.sim_time = scheduler_.now();
  return stats_;
}

double AsyncGossip::estimate(net::NodeId i, net::NodeId j) const {
  const double w = row_w(i)[j];
  if (w <= kWeightFloor) return std::numeric_limits<double>::quiet_NaN();
  return row_x(i)[j] / w;
}

std::vector<double> AsyncGossip::node_view(net::NodeId i) const {
  std::vector<double> view(n_, 0.0);
  for (net::NodeId j = 0; j < n_; ++j) {
    const double e = estimate(i, j);
    if (!std::isnan(e)) view[j] = e;
  }
  return view;
}

double AsyncGossip::resident_x_mass(net::NodeId j) const {
  double s = 0.0;
  for (net::NodeId i = 0; i < n_; ++i) s += row_x(i)[j];
  return s;
}

double AsyncGossip::resident_w_mass(net::NodeId j) const {
  double s = 0.0;
  for (net::NodeId i = 0; i < n_; ++i) s += row_w(i)[j];
  return s;
}

MassAccount AsyncGossip::mass_account(net::NodeId j) const {
  MassAccount a;
  a.initial_x = initial_x_[j];
  a.initial_w = initial_w_[j];
  a.resident_x = resident_x_mass(j);
  a.resident_w = resident_w_mass(j);
  a.in_flight_x = in_flight_x_[j];
  a.in_flight_w = in_flight_w_[j];
  a.destroyed_x = destroyed_x_[j];
  a.destroyed_w = destroyed_w_[j];
  a.repaired_x = repaired_x_[j];
  a.repaired_w = repaired_w_[j];
  a.injected_x = injected_x_[j];
  a.injected_w = injected_w_[j];
  return a;
}

double AsyncGossip::mass_invariant_gap() const {
  double gap = 0.0;
  for (net::NodeId j = 0; j < n_; ++j) {
    const MassAccount a = mass_account(j);
    gap = std::max(gap, std::abs(a.x_gap()));
    gap = std::max(gap, std::abs(a.w_gap()));
  }
  return gap;
}

std::vector<double> AsyncGossip::expected_live_x_mass() const {
  std::vector<double> expected(n_, 0.0);
  if (!seed_s_.has_value()) return expected;
  const auto& s = *seed_s_;
  for (net::NodeId i = 0; i < n_; ++i) {
    if (!network_.is_node_up(i)) continue;
    const auto entries = s.row(i);
    if (entries.empty()) {
      const double share = seed_v_[i] / static_cast<double>(n_);
      for (net::NodeId j = 0; j < n_; ++j) expected[j] += share;
    } else {
      for (const auto& e : entries) expected[e.col] += e.value * seed_v_[i];
    }
  }
  return expected;
}

}  // namespace gt::gossip
