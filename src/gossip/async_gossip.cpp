#include "gossip/async_gossip.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

namespace gt::gossip {

AsyncGossip::AsyncGossip(sim::Scheduler& scheduler, net::Network& network,
                         PushSumConfig config, Timing timing)
    : scheduler_(scheduler),
      network_(network),
      config_(config),
      timing_(timing),
      n_(network.num_nodes()),
      x_(n_ * n_, 0.0),
      w_(n_ * n_, 0.0),
      prev_ratio_(n_ * n_, std::numeric_limits<double>::quiet_NaN()),
      stable_count_(n_, 0) {
  if (n_ == 0) throw std::invalid_argument("AsyncGossip: empty network");
  if (timing_.period <= 0.0) throw std::invalid_argument("AsyncGossip: bad period");
}

void AsyncGossip::initialize(const trust::SparseMatrix& s, std::span<const double> v) {
  if (s.size() != n_ || v.size() != n_)
    throw std::invalid_argument("AsyncGossip::initialize: size mismatch");
  std::fill(x_.begin(), x_.end(), 0.0);
  std::fill(w_.begin(), w_.end(), 0.0);
  std::fill(prev_ratio_.begin(), prev_ratio_.end(),
            std::numeric_limits<double>::quiet_NaN());
  std::fill(stable_count_.begin(), stable_count_.end(), 0);
  stats_ = AsyncGossipResult{};

  const double uniform = 1.0 / static_cast<double>(n_);
  for (net::NodeId i = 0; i < n_; ++i) {
    double* xi = row_x(i);
    const auto entries = s.row(i);
    if (entries.empty()) {
      const double share = v[i] * uniform;
      for (net::NodeId j = 0; j < n_; ++j) xi[j] = share;
    } else {
      for (const auto& e : entries) xi[e.col] = e.value * v[i];
    }
    row_w(i)[i] = 1.0;
  }
}

void AsyncGossip::update_stability(net::NodeId i) {
  const double* xi = row_x(i);
  const double* wi = row_w(i);
  double* prev = prev_ratio_.data() + i * n_;
  bool stable = true;
  for (net::NodeId j = 0; j < n_; ++j) {
    if (!network_.is_node_up(j)) continue;  // unowned component under failure
    if (wi[j] <= kWeightFloor) {
      prev[j] = std::numeric_limits<double>::quiet_NaN();
      stable = false;
      continue;
    }
    const double ratio = xi[j] / wi[j];
    if (std::isnan(prev[j]) || std::abs(ratio - prev[j]) > config_.epsilon)
      stable = false;
    prev[j] = ratio;
  }
  stable_count_[i] = stable ? stable_count_[i] + 1 : 0;
}

void AsyncGossip::node_push(net::NodeId i, Rng& rng, const graph::Graph* overlay) {
  if (!network_.is_node_up(i)) return;
  ++stats_.send_events;
  update_stability(i);

  net::NodeId target = i;
  if (config_.neighbors_only && overlay != nullptr) {
    const auto nbrs = overlay->neighbors(i);
    if (nbrs.empty()) return;  // isolated: keeps everything
    target = nbrs[rng.next_below(nbrs.size())];
  } else {
    if (n_ <= 1) return;
    target = rng.next_below(n_ - 1);
    if (target >= i) ++target;
  }

  // Halve the vector; the kept half stays in place, the pushed half rides
  // inside the message closure until delivery (or is destroyed on loss —
  // x and w together, which is why loss does not bias the ratios).
  auto payload_x = std::make_shared<std::vector<double>>(n_);
  auto payload_w = std::make_shared<std::vector<double>>(n_);
  double* xi = row_x(i);
  double* wi = row_w(i);
  std::size_t nonzero = 0;
  for (net::NodeId j = 0; j < n_; ++j) {
    (*payload_x)[j] = 0.5 * xi[j];
    (*payload_w)[j] = 0.5 * wi[j];
    xi[j] *= 0.5;
    wi[j] *= 0.5;
    nonzero += ((*payload_x)[j] != 0.0 || (*payload_w)[j] != 0.0);
  }

  ++stats_.messages_sent;
  const std::size_t bytes = 24 * nonzero;  // <x, id, w> triplets on the wire
  const bool sent = network_.send(i, target, bytes, [this, target, payload_x,
                                                     payload_w] {
    double* xt = row_x(target);
    double* wt = row_w(target);
    for (net::NodeId j = 0; j < n_; ++j) {
      xt[j] += (*payload_x)[j];
      wt[j] += (*payload_w)[j];
    }
  });
  if (!sent) ++stats_.messages_dropped;
}

bool AsyncGossip::all_stable() const {
  for (net::NodeId i = 0; i < n_; ++i) {
    if (!network_.is_node_up(i)) continue;
    if (stable_count_[i] < config_.stable_rounds) return false;
  }
  return true;
}

AsyncGossipResult AsyncGossip::run(Rng& rng, const graph::Graph* overlay) {
  // De-phased push timers, one per node: a one-shot event at a random
  // offset arms a periodic timer, so nodes never fire in lock-step.
  auto timers = std::make_shared<std::vector<sim::EventId>>(n_, 0);
  for (net::NodeId i = 0; i < n_; ++i) {
    const double offset = rng.next_double(0.0, timing_.period);
    (*timers)[i] = scheduler_.schedule_at(
        scheduler_.now() + offset, [this, i, &rng, overlay, timers] {
          node_push(i, rng, overlay);
          (*timers)[i] = scheduler_.schedule_periodic(
              timing_.period,
              [this, i, &rng, overlay] { node_push(i, rng, overlay); });
        });
  }

  const double deadline = scheduler_.now() + timing_.timeout;
  bool converged = false;
  while (scheduler_.now() < deadline) {
    if (!scheduler_.step()) break;
    if (all_stable()) {
      converged = true;
      break;
    }
  }
  // Disarm the timers (their lambdas reference the caller's rng). Delivery
  // closures still in flight only touch this object's state; do not step
  // the scheduler past this AsyncGossip's lifetime.
  for (const auto id : *timers) scheduler_.cancel(id);

  stats_.converged = converged;
  stats_.sim_time = scheduler_.now();
  return stats_;
}

double AsyncGossip::estimate(net::NodeId i, net::NodeId j) const {
  const double w = row_w(i)[j];
  if (w <= kWeightFloor) return std::numeric_limits<double>::quiet_NaN();
  return row_x(i)[j] / w;
}

std::vector<double> AsyncGossip::node_view(net::NodeId i) const {
  std::vector<double> view(n_, 0.0);
  for (net::NodeId j = 0; j < n_; ++j) {
    const double e = estimate(i, j);
    if (!std::isnan(e)) view[j] = e;
  }
  return view;
}

double AsyncGossip::resident_x_mass(net::NodeId j) const {
  double s = 0.0;
  for (net::NodeId i = 0; i < n_; ++i) s += row_x(i)[j];
  return s;
}

double AsyncGossip::resident_w_mass(net::NodeId j) const {
  double s = 0.0;
  for (net::NodeId i = 0; i < n_; ++i) s += row_w(i)[j];
  return s;
}

}  // namespace gt::gossip
