#include <gtest/gtest.h>

#include <numeric>

#include "filesharing/catalog.hpp"
#include "filesharing/workload.hpp"

namespace gt::filesharing {
namespace {

CatalogConfig small_catalog_config() {
  CatalogConfig cfg;
  cfg.num_peers = 100;
  cfg.num_files = 2000;
  cfg.max_copies = 30;
  return cfg;
}

TEST(FileCatalog, IndexesConsistent) {
  Rng rng(1);
  const FileCatalog catalog(small_catalog_config(), rng);
  EXPECT_EQ(catalog.num_files(), 2000u);
  EXPECT_EQ(catalog.num_peers(), 100u);
  std::size_t total_from_owners = 0;
  for (FileId f = 0; f < 2000; ++f) {
    for (const auto p : catalog.owners(f)) {
      ASSERT_LT(p, 100u);
      ASSERT_TRUE(catalog.has_file(p, f));
    }
    total_from_owners += catalog.owners(f).size();
  }
  std::size_t total_from_peers = 0;
  for (PeerId p = 0; p < 100; ++p) total_from_peers += catalog.files_on_peer(p);
  EXPECT_EQ(total_from_owners, total_from_peers);
  EXPECT_EQ(total_from_owners, catalog.total_replicas());
}

TEST(FileCatalog, EveryFileHasAtLeastOneCopy) {
  Rng rng(2);
  const FileCatalog catalog(small_catalog_config(), rng);
  for (FileId f = 0; f < 2000; ++f) EXPECT_GE(catalog.owners(f).size(), 1u) << f;
}

TEST(FileCatalog, PopularFilesHaveMoreCopies) {
  Rng rng(3);
  const FileCatalog catalog(small_catalog_config(), rng);
  double head = 0.0, tail = 0.0;
  for (FileId f = 0; f < 100; ++f) head += static_cast<double>(catalog.owners(f).size());
  for (FileId f = 1900; f < 2000; ++f)
    tail += static_cast<double>(catalog.owners(f).size());
  EXPECT_GT(head, tail * 1.5);
}

TEST(FileCatalog, NoDuplicateOwnersPerFile) {
  Rng rng(4);
  const FileCatalog catalog(small_catalog_config(), rng);
  for (FileId f = 0; f < 200; ++f) {
    auto owners = catalog.owners(f);
    std::sort(owners.begin(), owners.end());
    EXPECT_TRUE(std::adjacent_find(owners.begin(), owners.end()) == owners.end());
  }
}

TEST(FileCatalog, HeavySharersHoldMoreFiles) {
  // Saroiu-weighted placement: the busiest peer should hold far more files
  // than the median peer.
  Rng rng(5);
  CatalogConfig cfg = small_catalog_config();
  cfg.num_files = 5000;
  const FileCatalog catalog(cfg, rng);
  std::vector<std::size_t> counts;
  for (PeerId p = 0; p < 100; ++p) counts.push_back(catalog.files_on_peer(p));
  std::sort(counts.begin(), counts.end());
  EXPECT_GT(counts.back(), counts[50] * 3);
}

TEST(FileCatalog, RejectsEmptyConfig) {
  Rng rng(6);
  CatalogConfig cfg;
  cfg.num_peers = 0;
  EXPECT_THROW(FileCatalog(cfg, rng), std::invalid_argument);
}

TEST(QueryWorkload, SamplesWithinRange) {
  WorkloadConfig cfg;
  cfg.num_files = 1000;
  const QueryWorkload wl(cfg);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) ASSERT_LT(wl.sample(rng), 1000u);
}

TEST(QueryWorkload, HeadRanksDominateTraffic) {
  WorkloadConfig cfg;
  cfg.num_files = 10000;
  const QueryWorkload wl(cfg);
  Rng rng(8);
  std::size_t head_hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) head_hits += (wl.sample(rng) < 250);
  // Under the paper's two-segment law, the top 250 of 10k files draw a
  // large share of all queries.
  EXPECT_GT(static_cast<double>(head_hits) / trials, 0.3);
}

TEST(QueryWorkload, PmfMatchesPaperSlopes) {
  WorkloadConfig cfg;
  cfg.num_files = 100000;
  const QueryWorkload wl(cfg);
  EXPECT_GT(wl.pmf(0), wl.pmf(100));
  EXPECT_GT(wl.pmf(100), wl.pmf(10000));
}

}  // namespace
}  // namespace gt::filesharing
