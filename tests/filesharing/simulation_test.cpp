#include "filesharing/simulation.hpp"

#include <gtest/gtest.h>

#include "baseline/local_only.hpp"
#include "baseline/power_iteration.hpp"
#include "graph/topology.hpp"

namespace gt::filesharing {
namespace {

struct World {
  std::vector<threat::PeerProfile> peers;
  FileCatalog catalog;
  QueryWorkload workload;
  overlay::OverlayManager overlay;

  static World make(std::size_t n, double malicious_frac, std::uint64_t seed) {
    Rng rng(seed);
    threat::ThreatConfig tcfg;
    tcfg.n = n;
    tcfg.malicious_fraction = malicious_frac;
    auto peers = threat::make_population(tcfg, rng);
    CatalogConfig ccfg;
    ccfg.num_peers = n;
    ccfg.num_files = 1500;
    ccfg.max_copies = 25;
    WorkloadConfig wcfg;
    wcfg.num_files = 1500;
    return World{std::move(peers), FileCatalog(ccfg, rng), QueryWorkload(wcfg),
                 overlay::OverlayManager(graph::make_gnutella_like(n, rng))};
  }
};

ScoreProvider exact_provider(double alpha, double power_frac) {
  return [alpha, power_frac](const trust::SparseMatrix& s, Rng&) {
    return baseline::power_iteration(s, alpha, power_frac, 1e-10).scores;
  };
}

ScoreProvider uniform_provider() {
  return [](const trust::SparseMatrix& s, Rng&) {
    return baseline::notrust_scores(s.size());
  };
}

SimulationConfig quick_sim(SelectionPolicy policy) {
  SimulationConfig cfg;
  cfg.queries_per_refresh = 500;
  cfg.total_queries = 3000;
  cfg.policy = policy;
  return cfg;
}

TEST(SharingSimulation, CountsAreConsistent) {
  auto world = World::make(120, 0.2, 1);
  SharingSimulation sim(quick_sim(SelectionPolicy::kHighestReputation),
                        world.catalog, world.workload, world.overlay, world.peers,
                        exact_provider(0.15, 0.01));
  Rng rng(2);
  const auto stats = sim.run(rng);
  EXPECT_EQ(stats.queries, 3000u);
  EXPECT_EQ(stats.hits + stats.misses, stats.queries);
  EXPECT_EQ(stats.authentic + stats.inauthentic, stats.hits);
  EXPECT_EQ(stats.refreshes, 6u);
  EXPECT_EQ(stats.success_per_window.size(), 6u);
  EXPECT_GT(stats.flood_messages, stats.queries);
}

TEST(SharingSimulation, ReputationBeatsRandomUnderAttack) {
  const double malicious = 0.25;
  double rep_rate = 0.0, rnd_rate = 0.0;
  {
    auto world = World::make(150, malicious, 3);
    SharingSimulation sim(quick_sim(SelectionPolicy::kHighestReputation),
                          world.catalog, world.workload, world.overlay, world.peers,
                          exact_provider(0.15, 0.01));
    Rng rng(4);
    rep_rate = sim.run(rng).success_rate();
  }
  {
    auto world = World::make(150, malicious, 3);
    SharingSimulation sim(quick_sim(SelectionPolicy::kRandom), world.catalog,
                          world.workload, world.overlay, world.peers,
                          uniform_provider());
    Rng rng(4);
    rnd_rate = sim.run(rng).success_rate();
  }
  EXPECT_GT(rep_rate, rnd_rate + 0.05);
}

TEST(SharingSimulation, NoMaliciousHighSuccessEitherWay) {
  auto world = World::make(100, 0.0, 5);
  SharingSimulation sim(quick_sim(SelectionPolicy::kRandom), world.catalog,
                        world.workload, world.overlay, world.peers,
                        uniform_provider());
  Rng rng(6);
  const auto stats = sim.run(rng);
  // All peers have quality in [0.8, 1]: success only limited by that range.
  EXPECT_GT(stats.success_rate(), 0.75);
}

TEST(SharingSimulation, ScoresRefreshedFromLedger) {
  auto world = World::make(100, 0.2, 7);
  SharingSimulation sim(quick_sim(SelectionPolicy::kHighestReputation),
                        world.catalog, world.workload, world.overlay, world.peers,
                        exact_provider(0.15, 0.01));
  Rng rng(8);
  // Before running, scores are uniform.
  const double uniform = 1.0 / 100.0;
  for (const auto s : sim.scores()) EXPECT_DOUBLE_EQ(s, uniform);
  sim.run(rng);
  // After refreshes, scores must differentiate and the ledger must be
  // populated with one feedback per hit.
  bool differentiated = false;
  for (const auto s : sim.scores())
    if (std::abs(s - uniform) > 1e-6) differentiated = true;
  EXPECT_TRUE(differentiated);
  EXPECT_GT(sim.ledger().num_feedbacks(), 0u);
}

TEST(SharingSimulation, MalousProvidersLoseSelectionOverTime) {
  auto world = World::make(150, 0.3, 9);
  SharingSimulation sim(quick_sim(SelectionPolicy::kHighestReputation),
                        world.catalog, world.workload, world.overlay, world.peers,
                        exact_provider(0.15, 0.01));
  Rng rng(10);
  const auto stats = sim.run(rng);
  // Success rate in the last window should beat the first (reputation
  // bootstraps from uniform scores).
  ASSERT_GE(stats.success_per_window.size(), 2u);
  EXPECT_GE(stats.success_per_window.back(),
            stats.success_per_window.front() - 0.02);
}

TEST(SharingSimulation, RejectsMismatchedSizes) {
  auto world = World::make(80, 0.1, 11);
  Rng rng(12);
  overlay::OverlayManager wrong_overlay(graph::make_gnutella_like(40, rng));
  EXPECT_THROW(SharingSimulation(quick_sim(SelectionPolicy::kRandom), world.catalog,
                                 world.workload, wrong_overlay, world.peers,
                                 uniform_provider()),
               std::invalid_argument);
}

TEST(SharingSimulation, ZeroRefreshPeriodThrows) {
  auto world = World::make(80, 0.1, 13);
  auto cfg = quick_sim(SelectionPolicy::kRandom);
  cfg.queries_per_refresh = 0;
  EXPECT_THROW(SharingSimulation(cfg, world.catalog, world.workload, world.overlay,
                                 world.peers, uniform_provider()),
               std::invalid_argument);
}

}  // namespace
}  // namespace gt::filesharing
