#include "attack/attack_injector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace gt::attack {
namespace {

struct Fixture {
  sim::Scheduler scheduler;
  net::Network network;
  Fixture(std::size_t n = 8) : network(scheduler, n, {}, Rng(1)) {}
};

AttackPlan demo_plan() {
  AttackPlan plan;
  plan.ring(1.0, 9.0, {0, 1, 2})
      .liar(2.0, 8.0, 3, 2.5)
      .withhold(3.0, 7.0, 4)
      .sybil_whitewash(4.0, 6.0, 5)
      .oscillator(6, 5.0, 9.0, 2.0, 0.5);
  return plan;
}

TEST(AttackInjector, ReplaysPlanStateAndMembershipThroughScheduler) {
  Fixture f;
  AttackInjector injector(f.scheduler, f.network, demo_plan());
  std::vector<NodeId> left, rejoined, whitewashed;
  injector.on_leave([&](NodeId v) {
    left.push_back(v);
    EXPECT_FALSE(f.network.is_node_up(v));  // membership applied first
  });
  injector.on_rejoin([&](NodeId v) { rejoined.push_back(v); });
  injector.on_whitewash([&](NodeId v) { whitewashed.push_back(v); });
  injector.arm();

  // Mid-plan: every behavior window is open.
  f.scheduler.run_until(5.5);
  const AttackState& st = injector.state();
  EXPECT_TRUE(st.colluding(0));
  EXPECT_TRUE(st.same_ring(1, 2));
  EXPECT_FALSE(st.same_ring(2, 3));
  EXPECT_DOUBLE_EQ(st.share_scale(3), 2.5);
  EXPECT_TRUE(st.any_liar());
  EXPECT_TRUE(st.withholds(4));
  EXPECT_TRUE(st.departed(5));  // left at t=4, rejoins at t=6
  EXPECT_FALSE(f.network.is_node_up(5));
  EXPECT_TRUE(st.defecting(6));
  EXPECT_GT(injector.attacks_pending(), 0u);

  // Drained: every window closed again, membership restored.
  f.scheduler.run_until();
  EXPECT_EQ(injector.attacks_pending(), 0u);
  EXPECT_FALSE(st.colluding(0));
  EXPECT_FALSE(st.any_liar());
  EXPECT_FALSE(st.any_withholder());
  EXPECT_FALSE(st.defecting(6));
  EXPECT_TRUE(f.network.is_node_up(5));
  EXPECT_EQ(left, (std::vector<NodeId>{5}));
  EXPECT_EQ(rejoined, (std::vector<NodeId>{5}));
  EXPECT_EQ(whitewashed, (std::vector<NodeId>{5}));

  // Every attacker is remembered for the capture-rate metric.
  for (NodeId v : {NodeId{0}, NodeId{3}, NodeId{4}, NodeId{5}, NodeId{6}})
    EXPECT_TRUE(st.ever_adversarial(v)) << v;
  EXPECT_FALSE(st.ever_adversarial(7));
  EXPECT_EQ(st.num_ever_adversarial(), 7u);  // ring of 3 + 4 loners
}

TEST(AttackInjector, LogTextIsByteIdenticalAcrossRuns) {
  auto run = [] {
    Fixture f;
    AttackInjector injector(f.scheduler, f.network, demo_plan());
    injector.arm();
    f.scheduler.run_until();
    return injector.log_text();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("#0 t=1 ring_start ring=0 members=[0,1,2]"),
            std::string::npos);
  EXPECT_NE(a.find("liar_start node=3 factor=2.5"), std::string::npos);
}

TEST(AttackInjector, ThrowsActionablyOnMalformedPlans) {
  Fixture f;  // n = 8

  AttackPlan out_of_range;
  out_of_range.liar(1.0, 2.0, 99, 2.0);
  try {
    AttackInjector injector(f.scheduler, f.network, out_of_range);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invalid plan"), std::string::npos);
    EXPECT_NE(what.find("out of range"), std::string::npos);
  }

  AttackPlan overlapping;
  overlapping.ring(1.0, 5.0, {0, 1}).ring(2.0, 6.0, {1, 2});
  EXPECT_THROW(AttackInjector(f.scheduler, f.network, overlapping),
               std::invalid_argument);

  AttackPlan rejoin_only;
  rejoin_only.sybil_whitewash(1.0, 2.0, 0);
  rejoin_only.sybil_whitewash(3.0, 4.0, 0);  // fine: sequential churn
  EXPECT_NO_THROW(AttackInjector(f.scheduler, f.network, rejoin_only));
}

}  // namespace
}  // namespace gt::attack
