#include "attack/attack_plan.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <stdexcept>

namespace gt::attack {
namespace {

TEST(AttackPlan, BuildersChainAndSortByTime) {
  AttackPlan plan;
  plan.liar(7.0, 9.0, 3, 2.0)
      .withhold(1.0, 4.0, 5)
      .sybil_whitewash(2.0, 6.0, 4);
  const auto& es = plan.events();
  ASSERT_EQ(es.size(), 6u);
  EXPECT_DOUBLE_EQ(es[0].time, 1.0);
  EXPECT_EQ(es[0].kind, AttackKind::kWithholdStart);
  EXPECT_DOUBLE_EQ(es[1].time, 2.0);
  EXPECT_EQ(es[1].kind, AttackKind::kSybilLeave);
  EXPECT_EQ(es[2].kind, AttackKind::kWithholdEnd);
  EXPECT_EQ(es[3].kind, AttackKind::kSybilRejoin);
  EXPECT_NE(es[3].rate, 0.0);  // whitewash defaults on
  EXPECT_EQ(es[4].kind, AttackKind::kLiarStart);
  EXPECT_DOUBLE_EQ(es[4].rate, 2.0);
  EXPECT_DOUBLE_EQ(plan.end_time(), 9.0);
  EXPECT_TRUE(plan.validate(8).empty());
}

TEST(AttackPlan, OscillatorExpandsToClippedDutyWindows) {
  AttackPlan plan;
  plan.oscillator(2, 0.0, 10.0, 4.0, 0.5);
  std::size_t starts = 0, ends = 0;
  double last_end = -1.0;
  for (const auto& e : plan.events()) {
    EXPECT_EQ(e.a, 2u);
    EXPECT_GE(e.time, 0.0);
    EXPECT_LE(e.time, 10.0);  // final defect window clipped at t_end
    if (e.kind == AttackKind::kDefectStart) ++starts;
    if (e.kind == AttackKind::kDefectEnd) {
      ++ends;
      last_end = e.time;
    }
  }
  EXPECT_EQ(starts, 3u);  // periods at t = 0, 4, 8
  EXPECT_EQ(ends, 3u);
  EXPECT_DOUBLE_EQ(last_end, 10.0);
  EXPECT_TRUE(plan.validate(4).empty());
}

TEST(AttackPlan, BuildersThrowOnLocallyMalformedInput) {
  AttackPlan plan;
  EXPECT_THROW(plan.ring(0.0, 1.0, {}), std::invalid_argument);
  EXPECT_THROW(plan.ring(5.0, 5.0, {0, 1}), std::invalid_argument);
  EXPECT_THROW(plan.sybil_whitewash(3.0, 2.0, 0), std::invalid_argument);
  EXPECT_THROW(plan.oscillator(0, 0.0, 10.0, 0.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(plan.oscillator(0, 0.0, 10.0, 4.0, 1.5),
               std::invalid_argument);
  EXPECT_THROW(plan.liar(0.0, 1.0, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(
      plan.liar(0.0, 1.0, 0, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
  EXPECT_THROW(plan.withhold(2.0, 2.0, 0), std::invalid_argument);
  EXPECT_TRUE(plan.empty());  // nothing was half-appended
}

TEST(AttackPlan, ValidateCatchesEveryCrossEventProblemClass) {
  const std::size_t n = 8;
  EXPECT_TRUE(AttackPlan{}.validate(n).empty());

  AttackPlan out_of_range;
  out_of_range.liar(1.0, 2.0, 8, 2.0);
  EXPECT_NE(out_of_range.validate(n).find("out of range"), std::string::npos);

  AttackPlan bad_member;
  bad_member.ring(1.0, 2.0, {0, 9});
  EXPECT_NE(bad_member.validate(n).find("out of range"), std::string::npos);

  AttackPlan overlap;
  overlap.ring(1.0, 5.0, {0, 1, 2}).ring(3.0, 6.0, {2, 3});
  EXPECT_NE(overlap.validate(n).find("already colludes"), std::string::npos);
  // Sequential membership is fine: the first ring disbands first.
  AttackPlan sequential;
  sequential.ring(1.0, 3.0, {0, 1, 2}).ring(4.0, 6.0, {2, 3});
  EXPECT_TRUE(sequential.validate(n).empty());

  AttackPlan double_start;
  double_start.liar(1.0, 5.0, 0, 2.0).liar(2.0, 3.0, 0, 3.0);
  EXPECT_NE(double_start.validate(n).find("already lying"),
            std::string::npos);

  AttackPlan bad_time;
  bad_time.withhold(-1.0, 2.0, 0);
  EXPECT_NE(bad_time.validate(n).find("bad time"), std::string::npos);
}

TEST(AttackPlan, ToStringIsCanonicalAndDeterministic) {
  auto build = [] {
    AttackPlan plan;
    plan.ring(5.0, 50.0, {1, 4, 6})
        .liar(10.0, 20.0, 0, 2.5)
        .sybil_whitewash(15.0, 30.0, 7);
    return plan;
  };
  const std::string a = build().to_string();
  EXPECT_EQ(a, build().to_string());
  EXPECT_NE(a.find("ring_start ring=0 members=[1,4,6]"), std::string::npos);
  EXPECT_NE(a.find("liar_start node=0 factor=2.5"), std::string::npos);
  EXPECT_NE(a.find("sybil_rejoin node=7 whitewash=1"), std::string::npos);
}

TEST(AttackPlan, RandomRingsAreSeededDisjointAndValid) {
  RingSpec spec;
  spec.start = 5.0;
  spec.end = 40.0;
  spec.rings = 3;
  spec.ring_size = 5;
  const AttackPlan a = AttackPlan::random_rings(60, spec, 42);
  const AttackPlan b = AttackPlan::random_rings(60, spec, 42);
  const AttackPlan c = AttackPlan::random_rings(60, spec, 43);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_NE(a.to_string(), c.to_string());
  EXPECT_TRUE(a.validate(60).empty());
  EXPECT_EQ(a.num_rings(), 3u);

  std::set<NodeId> members;
  for (const auto& e : a.events()) {
    if (e.kind != AttackKind::kRingStart) continue;
    EXPECT_EQ(e.members.size(), 5u);
    for (const NodeId m : e.members) {
      EXPECT_LT(m, 60u);
      EXPECT_TRUE(members.insert(m).second) << "rings must be disjoint";
    }
  }
  EXPECT_EQ(members.size(), 15u);

  EXPECT_TRUE(AttackPlan::random_rings(0, spec, 1).empty());
}

}  // namespace
}  // namespace gt::attack
