// Bit-identity and mass-ledger contracts of the gossip-layer adversary
// hooks (src/gossip/adversary.hpp):
//   * an empty AttackPlan / all-honest adversary must leave every RNG
//     stream untouched — same seed, bit-identical results;
//   * a liar *mints* x mass, but only in its own column, and the ledgers
//     account for every counterfeit unit;
//   * withholding starves mixing without destroying mass;
//   * attacks compose with crash+partition FaultPlans and stay
//     deterministic at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "attack/attack_injector.hpp"
#include "attack/attack_plan.hpp"
#include "attack/attack_state.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "gossip/async_gossip.hpp"
#include "gossip/vector_gossip.hpp"
#include "trust/feedback.hpp"
#include "trust/generator.hpp"

namespace gt::attack {
namespace {

trust::SparseMatrix make_matrix(std::size_t n, std::uint64_t seed) {
  trust::FeedbackLedger ledger(n);
  trust::FeedbackGenConfig cfg;
  cfg.n = n;
  cfg.d_max = std::min<std::size_t>(40, n - 1);
  cfg.d_avg = std::min(10.0, static_cast<double>(n) / 3.0);
  Rng rng(seed);
  const std::vector<double> quality(n, 0.9);
  trust::generate_honest_feedback(ledger, quality, cfg, rng);
  return ledger.normalized_matrix();
}

TEST(AttackGossip, EmptyPlanIsBitIdenticalAsync) {
  const std::size_t n = 24;
  auto run = [&](bool with_adversary) {
    sim::Scheduler sched;
    net::NetworkConfig ncfg;
    ncfg.base_latency = 0.2;
    ncfg.jitter = 0.1;
    net::Network network(sched, n, ncfg, Rng(11));
    gossip::PushSumConfig cfg;
    cfg.epsilon = 1e-7;
    cfg.stable_rounds = 3;
    gossip::AsyncGossip gossip(sched, network, cfg,
                               gossip::AsyncGossip::Timing{});
    AttackInjector injector(sched, network, AttackPlan{});
    if (with_adversary) {
      gossip.set_adversary(&injector.state());
      injector.arm();
    }
    gossip.initialize(make_matrix(n, 12), std::vector<double>(n, 1.0 / n));
    Rng rng(13);
    gossip.run(rng);
    sched.run_until();
    return gossip.node_view(0);
  };
  const auto honest = run(false);
  const auto hooked = run(true);
  ASSERT_EQ(honest.size(), hooked.size());
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_EQ(honest[j], hooked[j]) << "component " << j;  // exact, not near
}

TEST(AttackGossip, AllHonestAdversaryIsBitIdenticalSync) {
  const std::size_t n = 32;
  const auto s = make_matrix(n, 21);
  const std::vector<double> v(n, 1.0 / n);
  auto run = [&](bool with_adversary) {
    gossip::PushSumConfig cfg;
    cfg.epsilon = 1e-8;
    gossip::VectorGossip gossip(n, cfg);
    std::vector<double> honest_scale(n, 1.0);
    std::vector<std::uint8_t> no_withhold(n, 0);
    if (with_adversary) gossip.set_adversary(honest_scale, no_withhold);
    gossip.initialize(s, v);
    Rng rng(22);
    gossip.run(rng);
    return gossip.node_view(n / 2);
  };
  const auto honest = run(false);
  const auto hooked = run(true);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_EQ(honest[j], hooked[j]) << "component " << j;
}

TEST(AttackGossip, LiarMintsMassOnlyInItsOwnColumn) {
  const std::size_t n = 24;
  const NodeId liar = 5;
  const auto s = make_matrix(n, 31);
  const std::vector<double> v(n, 1.0 / n);
  const auto exact = s.transpose_multiply(v);  // honest column x masses

  gossip::VectorGossip gossip(n, gossip::PushSumConfig{});
  std::vector<double> scale(n, 1.0);
  scale[liar] = 2.5;
  gossip.set_adversary(scale, {});
  gossip.initialize(s, v);
  Rng rng(32);
  gossip.run(rng);

  for (NodeId j = 0; j < n; ++j) {
    if (j == liar) {
      EXPECT_GT(gossip.column_x_mass(j), exact[j] + 1e-6)
          << "the liar's own column must carry minted mass";
    } else {
      EXPECT_NEAR(gossip.column_x_mass(j), exact[j], 1e-9)
          << "honest column " << j << " must be conserved";
    }
  }
}

TEST(AttackGossip, WithholderConservesEveryColumn) {
  const std::size_t n = 24;
  const auto s = make_matrix(n, 41);
  const std::vector<double> v(n, 1.0 / n);
  const auto exact = s.transpose_multiply(v);

  gossip::VectorGossip gossip(n, gossip::PushSumConfig{});
  std::vector<std::uint8_t> withhold(n, 0);
  withhold[3] = withhold[7] = 1;
  gossip.set_adversary({}, withhold);
  gossip.initialize(s, v);
  Rng rng(42);
  gossip.run(rng);

  for (NodeId j = 0; j < n; ++j)
    EXPECT_NEAR(gossip.column_x_mass(j), exact[j], 1e-9)
        << "withholding must starve mixing, not destroy mass (col " << j
        << ")";
}

// Satellite: an AttackPlan layered on a crash+partition FaultPlan. The
// async kernel's per-component ledger identity must still close to 1e-9
// (liar-minted mass is ledgered in injected_x, honest mass in the usual
// resident/in-flight/destroyed/repaired accounts), and the composed run
// must be deterministic: two executions produce byte-identical views and
// attack logs.
TEST(AttackGossip, ComposesWithCrashAndPartitionFaultPlan) {
  const std::size_t n = 30;
  struct Outcome {
    std::vector<double> view;
    std::string attack_log, fault_log;
    double invariant_gap = 0.0;
  };
  auto run = [&] {
    sim::Scheduler sched;
    net::NetworkConfig ncfg;
    ncfg.base_latency = 0.2;
    ncfg.jitter = 0.1;
    net::Network network(sched, n, ncfg, Rng(51));

    fault::FaultPlan faults;
    faults.crash_fraction(5.0, n, n / 10, 0xc0ffee);
    faults.bisect(10.0, 40.0, n, n / 2);

    AttackPlan attacks;
    attacks.liar(8.0, 30.0, 1, 3.0).withhold(12.0, 35.0, 2);

    gossip::PushSumConfig cfg;
    cfg.epsilon = 1e-7;
    cfg.stable_rounds = 3;
    gossip::AsyncGossip::Timing timing;
    timing.timeout = 600.0;
    timing.min_time = 60.0;  // outlive the partition window
    gossip::AsyncGossip::Reliability rel;
    rel.acks = true;
    rel.ack_timeout = 2.0;
    rel.backoff = 2.0;
    rel.max_timeout = 8.0;
    rel.max_retries = 3;
    rel.repair_on_crash = true;
    gossip::AsyncGossip gossip(sched, network, cfg, timing, rel);

    fault::FaultInjector fault_injector(sched, network, faults);
    fault_injector.on_crash([&](fault::NodeId v) { gossip.notify_crash(v); });
    fault_injector.on_recover(
        [&](fault::NodeId v) { gossip.notify_recover(v); });
    AttackInjector attack_injector(sched, network, attacks);
    gossip.set_adversary(&attack_injector.state());
    fault_injector.arm();
    attack_injector.arm();

    gossip.initialize(make_matrix(n, 52), std::vector<double>(n, 1.0 / n));
    Rng rng(53);
    gossip.run(rng);
    sched.run_until();

    Outcome out;
    out.invariant_gap = gossip.mass_invariant_gap();
    net::NodeId probe = 0;
    while (!network.is_node_up(probe)) ++probe;
    out.view = gossip.node_view(probe);
    out.attack_log = attack_injector.log_text();
    out.fault_log = fault_injector.log_text();
    return out;
  };

  const Outcome a = run();
  EXPECT_LT(a.invariant_gap, 1e-9);
  EXPECT_NE(a.attack_log.find("liar_start node=1 factor=3"),
            std::string::npos);

  const Outcome b = run();
  EXPECT_EQ(a.attack_log, b.attack_log);
  EXPECT_EQ(a.fault_log, b.fault_log);
  ASSERT_EQ(a.view.size(), b.view.size());
  for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(a.view[j], b.view[j]);
}

// Satellite: the same attacked cycle is bit-identical across engine
// thread counts (the sync kernel's determinism contract extends to the
// adversary paths).
TEST(AttackGossip, EngineCyclesThreadCountInvariantUnderAttack) {
  const std::size_t n = 48;
  const auto s = make_matrix(n, 61);
  std::vector<std::uint8_t> alive(n, 1);
  alive[9] = alive[17] = 0;  // crashed mid-campaign
  std::vector<double> scale(n, 1.0);
  scale[4] = 2.5;  // liar
  std::vector<std::uint8_t> withhold(n, 0);
  withhold[6] = 1;

  auto run = [&](std::size_t threads) {
    core::GossipTrustConfig cfg;
    cfg.alpha = 0.15;
    cfg.num_threads = threads;
    core::GossipTrustEngine engine(n, cfg);
    engine.set_gossip_adversary(scale, withhold);
    std::vector<double> v = engine.initial_scores();
    std::vector<core::NodeId> power;
    Rng rng(62);
    for (int cycle = 0; cycle < 3; ++cycle)
      engine.run_cycle(s, v, power, rng, nullptr, nullptr, &alive);
    return v;
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_EQ(serial[j], parallel[j]) << "component " << j;
}

}  // namespace
}  // namespace gt::attack
