// Manipulation-signature detection: the slander-bias statistic and the
// trace analyzer's three forensic detectors (mass inflation, rank
// anomaly, feedback ring). Every positive case here is mirrored by a
// clean control asserting zero false positives — the same contract the
// CI attack matrix gates end-to-end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "attack/detect.hpp"
#include "trace/analyzer.hpp"
#include "trace/trace.hpp"
#include "trust/feedback.hpp"

namespace gt::attack {
namespace {

using trace::Anomaly;

bool has_anomaly(const trace::TraceSummary& summary, Anomaly::Type type) {
  for (const auto& a : summary.anomalies)
    if (a.type == type) return true;
  return false;
}

std::size_t count_anomalies(const trace::TraceSummary& summary,
                            Anomaly::Type type) {
  std::size_t count = 0;
  for (const auto& a : summary.anomalies) count += a.type == type;
  return count;
}

std::string temp_trace(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("attack_detect_") + tag + ".trace.bin"))
      .string();
}

trace::TraceSummary analyze(trace::TraceSink& sink, std::uint32_t node_count,
                            const trace::AnalyzerConfig& cfg = {}) {
  trace::TraceFileHeader header;
  header.record_count = sink.records().size();
  header.records_emitted = sink.records_emitted();
  header.node_count = node_count;
  return trace::analyze_trace(header, sink.records(), cfg);
}

// A 12-node burst: ring {0,1,2,3} praises itself and slanders reputable
// outsiders {4,5,6}; honest nodes 7..11 rate those outsiders well; honest
// nodes 4..6 condemn a genuine defector (node 11).
trust::FeedbackLedger ring_burst() {
  trust::FeedbackLedger ledger(12);
  for (trust::NodeId i = 0; i < 4; ++i) {
    for (trust::NodeId j = 0; j < 4; ++j)
      if (i != j) ledger.record(i, j, 1.0);
    for (trust::NodeId j = 4; j < 7; ++j) ledger.record(i, j, 0.0);
  }
  for (trust::NodeId h = 7; h < 12; ++h)
    for (trust::NodeId j = 4; j < 7; ++j) ledger.record(h, j, 0.95);
  for (trust::NodeId h = 4; h < 7; ++h) ledger.record(h, 11, 0.1);
  return ledger;
}

TEST(SlanderBias, AuditsCondemnationsAgainstBurstConsensus) {
  const auto ledger = ring_burst();
  const auto bias = slander_bias(ledger, 2);
  ASSERT_EQ(bias.size(), 12u);
  // Every ring member's condemnations all target reputable outsiders.
  for (trust::NodeId i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(bias[i], 1.0) << i;
  // Honest raters either condemn nobody (no accusations to audit -> NaN)
  // or only the consensus-low defector (visible at min_ratings = 1).
  for (trust::NodeId i = 4; i < 12; ++i) EXPECT_TRUE(std::isnan(bias[i])) << i;
  const auto loose = slander_bias(ledger, 1);
  for (trust::NodeId i = 4; i < 7; ++i) EXPECT_DOUBLE_EQ(loose[i], 0.0) << i;
}

TEST(SlanderBias, EmptyLedgerAndNoCondemnationsAreUndefined) {
  trust::FeedbackLedger ledger(4);
  auto bias = slander_bias(ledger, 1);
  for (const double b : bias) EXPECT_TRUE(std::isnan(b));
  ledger.record(0, 1, 0.9);
  ledger.record(1, 0, 0.8);
  bias = slander_bias(ledger, 1);
  for (const double b : bias) EXPECT_TRUE(std::isnan(b));
}

TEST(FeedbackRingDetector, FlagsSustainedRingAndMergesSweeps) {
  const std::string path = temp_trace("ring");
  trace::TraceConfig tcfg;
  tcfg.path = path;
  trace::TraceSink sink(tcfg);
  const auto ledger = ring_burst();
  for (std::uint64_t sweep = 0; sweep < 5; ++sweep) {
    const auto bias = slander_bias(ledger, 2);
    emit_rating_bias(sink, sweep, static_cast<double>(sweep), bias);
  }
  const auto summary = analyze(sink, 12);
  EXPECT_TRUE(has_anomaly(summary, Anomaly::Type::kFeedbackRing));
  // Five consecutive flagged sweeps merge into one anomaly window.
  EXPECT_EQ(count_anomalies(summary, Anomaly::Type::kFeedbackRing), 1u);
  std::remove(path.c_str());
}

TEST(FeedbackRingDetector, StaysSilentOnHonestBias) {
  const std::string path = temp_trace("ring_clean");
  trace::TraceConfig tcfg;
  tcfg.path = path;
  trace::TraceSink sink(tcfg);
  const std::vector<double> honest(12, 0.0);
  for (std::uint64_t sweep = 0; sweep < 5; ++sweep)
    emit_rating_bias(sink, sweep, static_cast<double>(sweep), honest);
  const auto summary = analyze(sink, 12);
  EXPECT_TRUE(summary.anomalies.empty());
  std::remove(path.c_str());
}

TEST(MassInflationDetector, CatchesTransientMintingInAnySweep) {
  const std::string path = temp_trace("inflate");
  trace::TraceConfig tcfg;
  tcfg.path = path;
  trace::TraceSink sink(tcfg);
  const std::uint32_t n = 6;
  for (std::uint64_t sweep = 0; sweep < 4; ++sweep) {
    const std::uint64_t tid = sink.alloc_trace();
    for (std::uint32_t node = 0; node < n; ++node) {
      // The sync kernel's per-cycle restart folds counterfeit mass back
      // into v, so the residual is transient: visible in sweep 1 only.
      const double residual = (node == 2 && sweep == 1) ? 1e-3 : 0.0;
      sink.probe(tid, sweep, static_cast<double>(sweep), node, 1.0, 0.0,
                 1e-4, 1.0 / n, residual);
    }
  }
  const auto summary = analyze(sink, n);
  EXPECT_TRUE(has_anomaly(summary, Anomaly::Type::kMassInflation));
  EXPECT_EQ(count_anomalies(summary, Anomaly::Type::kMassInflation), 1u);
  for (const auto& a : summary.anomalies) {
    if (a.type == Anomaly::Type::kMassInflation) {
      EXPECT_EQ(a.node, 2u);
    }
  }
  EXPECT_FALSE(has_anomaly(summary, Anomaly::Type::kMassLeak));
  std::remove(path.c_str());
}

TEST(RankAnomalyDetector, FiresAfterWarmupOnly) {
  auto run = [](std::uint64_t jump_sweep) {
    const std::string path = temp_trace("rank");
    trace::TraceConfig tcfg;
    tcfg.path = path;
    trace::TraceSink sink(tcfg);
    const std::uint32_t n = 6;
    for (std::uint64_t sweep = 0; sweep < 14; ++sweep) {
      const std::uint64_t tid = sink.alloc_trace();
      for (std::uint32_t node = 0; node < n; ++node) {
        double score = 1.0 / n;
        if (node == 1 && sweep >= jump_sweep) score = 0.6;  // 3.6x jump
        sink.probe(tid, sweep, static_cast<double>(sweep), node, 1.0, 0.0,
                   1e-4, score, 0.0);
      }
    }
    const auto summary = analyze(sink, n);
    std::remove(path.c_str());
    return has_anomaly(summary, Anomaly::Type::kRankAnomaly);
  };
  EXPECT_TRUE(run(11));   // past the default 8-sweep warmup
  EXPECT_FALSE(run(3));   // convergence-transient territory: ignored
  // A flat series never trips the detector at all.
  EXPECT_FALSE(run(99));
}

}  // namespace
}  // namespace gt::attack
