#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gossip/vector_gossip.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/scoped_timer.hpp"
#include "trust/matrix.hpp"

namespace gt::telemetry {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, CountersAccumulateAcrossLanes) {
  MetricsRegistry reg(4);
  const Counter c = reg.counter("test.count");
  ASSERT_TRUE(c.valid());
  reg.add(c, 1, 0);
  reg.add(c, 2, 1);
  reg.add(c, 3, 2);
  reg.add(c, 4, 3);
  EXPECT_EQ(reg.counter_value(c), 10u);

  // Lane-partitioned totals must match a single-lane registry fed the same
  // deltas — the merge is a plain integer sum, order-insensitive.
  MetricsRegistry single(1);
  const Counter c1 = single.counter("test.count");
  for (std::uint64_t d : {1u, 2u, 3u, 4u}) single.add(c1, d);
  EXPECT_EQ(reg.counter_value(c), single.counter_value(c1));
}

TEST(MetricsRegistry, DuplicateRegistrationReturnsSameHandle) {
  MetricsRegistry reg;
  const Counter a = reg.counter("dup");
  const Counter b = reg.counter("dup");
  EXPECT_EQ(a.id, b.id);
  reg.add(a, 5);
  reg.add(b, 5);
  EXPECT_EQ(reg.counter_value(a), 10u);
}

TEST(MetricsRegistry, InvalidHandleAndOutOfRangeLaneAreNoOps) {
  MetricsRegistry reg(2);
  const Counter c = reg.counter("c");
  reg.add(Counter{}, 7);        // invalid handle
  reg.add(c, 7, 99);            // lane out of range
  EXPECT_EQ(reg.counter_value(c), 0u);
  EXPECT_EQ(reg.counter_value(Counter{}), 0u);
}

TEST(MetricsRegistry, GaugeHoldsLastValue) {
  MetricsRegistry reg;
  const Gauge g = reg.gauge("test.gauge");
  reg.set(g, 1.5);
  reg.set(g, -2.25);
  EXPECT_DOUBLE_EQ(reg.gauge_value(g), -2.25);
}

TEST(MetricsRegistry, SnapshotLookupsAndRegistrationOrder) {
  MetricsRegistry reg(2);
  const Counter c = reg.counter("a.count");
  reg.counter("b.count");
  const Gauge g = reg.gauge("a.gauge");
  reg.histogram("a.hist");
  reg.add(c, 3, 0);
  reg.add(c, 4, 1);
  reg.set(g, 9.0);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.count");  // registration order
  EXPECT_EQ(snap.counters[1].first, "b.count");
  ASSERT_NE(snap.counter("a.count"), nullptr);
  EXPECT_EQ(*snap.counter("a.count"), 7u);
  ASSERT_NE(snap.gauge("a.gauge"), nullptr);
  EXPECT_DOUBLE_EQ(*snap.gauge("a.gauge"), 9.0);
  ASSERT_NE(snap.histogram("a.hist"), nullptr);
  EXPECT_EQ(snap.counter("missing"), nullptr);
  EXPECT_EQ(snap.gauge("missing"), nullptr);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(MetricsRegistry, ResetZeroesKeepsRegistrations) {
  MetricsRegistry reg(2);
  const Counter c = reg.counter("c");
  const Gauge g = reg.gauge("g");
  const Histogram h = reg.histogram("h");
  reg.add(c, 5, 1);
  reg.set(g, 3.0);
  reg.observe(h, 1.0);
  reg.reset();
  EXPECT_EQ(reg.counter_value(c), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value(g), 0.0);
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, 0u);
  // Handles stay usable after reset.
  reg.add(c, 2);
  EXPECT_EQ(reg.counter_value(c), 2u);
}

// ---------------------------------------------------------------------------
// Histograms

TEST(Histogram, BucketEdgesUnderOverflow) {
  MetricsRegistry reg;
  // Buckets: [1, 2), [2, 4), [4, 8), underflow < 1, overflow >= 8.
  const Histogram h = reg.histogram("h", HistogramOptions{1.0, 2.0, 3});
  reg.observe(h, 0.5);    // underflow
  reg.observe(h, 1.0);    // bucket 0 lower edge
  reg.observe(h, 1.999);  // bucket 0
  reg.observe(h, 2.0);    // bucket 1 lower edge
  reg.observe(h, 7.999);  // bucket 2
  reg.observe(h, 8.0);    // overflow (>= top)
  reg.observe(h, 1e9);    // overflow
  reg.observe(h, std::numeric_limits<double>::quiet_NaN());  // underflow slot

  const MetricsSnapshot snap = reg.snapshot();
  const auto* hs = snap.histogram("h");
  ASSERT_NE(hs, nullptr);
  ASSERT_EQ(hs->counts.size(), 5u);  // buckets + 2
  EXPECT_EQ(hs->counts[0], 2u);      // underflow: 0.5 and NaN
  EXPECT_EQ(hs->counts[1], 2u);      // [1, 2)
  EXPECT_EQ(hs->counts[2], 1u);      // [2, 4)
  EXPECT_EQ(hs->counts[3], 1u);      // [4, 8)
  EXPECT_EQ(hs->counts[4], 2u);      // overflow
  EXPECT_EQ(hs->count, 8u);
  EXPECT_DOUBLE_EQ(hs->bucket_lower(0), 1.0);
  EXPECT_DOUBLE_EQ(hs->bucket_lower(2), 4.0);
  EXPECT_DOUBLE_EQ(hs->max, 1e9);
}

TEST(Histogram, SumMinMaxMeanExact) {
  MetricsRegistry reg(2);
  const Histogram h = reg.histogram("h", HistogramOptions{1e-3, 2.0, 16});
  reg.observe(h, 0.25, 0);
  reg.observe(h, 0.5, 1);
  reg.observe(h, 0.125, 1);
  const MetricsSnapshot snap = reg.snapshot();
  const auto* hs = snap.histogram("h");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 3u);
  EXPECT_DOUBLE_EQ(hs->sum, 0.875);  // powers of two: exact in FP
  EXPECT_DOUBLE_EQ(hs->min, 0.125);
  EXPECT_DOUBLE_EQ(hs->max, 0.5);
  EXPECT_DOUBLE_EQ(hs->mean(), 0.875 / 3.0);
}

TEST(Histogram, PercentileBucketResolution) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("h", HistogramOptions{1.0, 2.0, 4});
  for (int i = 0; i < 10; ++i) reg.observe(h, 1.5);   // bucket [1, 2)
  for (int i = 0; i < 10; ++i) reg.observe(h, 5.0);   // bucket [4, 8)
  const MetricsSnapshot snap = reg.snapshot();
  const auto* hs = snap.histogram("h");
  ASSERT_NE(hs, nullptr);
  EXPECT_DOUBLE_EQ(hs->percentile(0), 1.5);    // exact min
  EXPECT_DOUBLE_EQ(hs->percentile(100), 5.0);  // exact max
  EXPECT_DOUBLE_EQ(hs->percentile(50), 2.0);   // upper edge of [1, 2)
  EXPECT_DOUBLE_EQ(hs->percentile(90), 8.0);   // upper edge of [4, 8)
}

TEST(Histogram, PercentileEmptyAndSingle) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("h");
  const MetricsSnapshot empty = reg.snapshot();
  EXPECT_DOUBLE_EQ(empty.histogram("h")->percentile(50), 0.0);
  reg.observe(h, 3.5);
  const MetricsSnapshot one = reg.snapshot();
  EXPECT_DOUBLE_EQ(one.histogram("h")->percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(one.histogram("h")->percentile(100), 3.5);
}

TEST(Histogram, LaneMergeEqualsSingleLane) {
  const std::vector<double> values{1e-8, 3e-7, 2e-6, 5e-5, 0.1, 7.0, 1e3};
  MetricsRegistry multi(4), single(1);
  const Histogram hm = multi.histogram("h");
  const Histogram hs = single.histogram("h");
  for (std::size_t i = 0; i < values.size(); ++i) {
    multi.observe(hm, values[i], i % 4);
    single.observe(hs, values[i]);
  }
  const MetricsSnapshot snap_multi = multi.snapshot();
  const MetricsSnapshot snap_single = single.snapshot();
  const auto* a = snap_multi.histogram("h");
  const auto* b = snap_single.histogram("h");
  EXPECT_EQ(a->counts, b->counts);
  EXPECT_EQ(a->count, b->count);
  EXPECT_DOUBLE_EQ(a->min, b->min);
  EXPECT_DOUBLE_EQ(a->max, b->max);
  EXPECT_NEAR(a->sum, b->sum, 1e-12 * std::abs(b->sum));
}

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriter, FlatFieldsAndTypes) {
  JsonWriter w;
  w.field("s", "hi")
      .field("i", std::int64_t{-3})
      .field("u", std::uint64_t{7})
      .field("d", 0.5)
      .field("b", true)
      .field("sz", std::size_t{42});
  EXPECT_EQ(w.finish(),
            R"({"s":"hi","i":-3,"u":7,"d":0.5,"b":true,"sz":42})");
}

TEST(JsonWriter, EscapesControlAndSpecialCharacters) {
  JsonWriter w;
  w.field("k", "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(w.finish(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.field("nan", std::numeric_limits<double>::quiet_NaN())
      .field("inf", std::numeric_limits<double>::infinity());
  EXPECT_EQ(w.finish(), R"({"nan":null,"inf":null})");
}

TEST(JsonWriter, DoublesRoundTrip) {
  JsonWriter w;
  const double v = 0.1 + 0.2;  // needs 17 significant digits
  w.field("v", v);
  const std::string line = w.finish();
  double parsed = 0.0;
  ASSERT_EQ(std::sscanf(line.c_str(), "{\"v\":%lf}", &parsed), 1);
  EXPECT_EQ(parsed, v);  // bitwise round-trip
}

TEST(JsonWriter, NestedObjectsAndArrays) {
  JsonWriter w;
  w.field("a", std::uint64_t{1});
  w.begin_object("o").field("x", 2.0).end();
  w.begin_array("arr").element(std::uint64_t{1}).element(2.5).end();
  EXPECT_EQ(w.finish(), R"({"a":1,"o":{"x":2},"arr":[1,2.5]})");
}

TEST(JsonWriter, FinishIsIdempotent) {
  JsonWriter w;
  w.field("a", std::uint64_t{1});
  const std::string first = w.finish();
  EXPECT_EQ(w.finish(), first);
}

TEST(JsonWriter, RawFieldPassesThrough) {
  JsonWriter w;
  w.field_raw("ctx", R"({"k":1})");
  EXPECT_EQ(w.finish(), R"({"ctx":{"k":1}})");
}

// ---------------------------------------------------------------------------
// EventLog

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string temp_log_path(const char* tag) {
  return testing::TempDir() + "gt_eventlog_" + tag + ".jsonl";
}

TEST(EventLog, DisabledLogIsANoOp) {
  EventLog log;  // default: disabled
  EXPECT_FALSE(log.enabled());
  log.record("cycle").field("n", std::uint64_t{5});
  log.flush();
  EXPECT_EQ(log.records_logged(), 0u);
}

TEST(EventLog, WritesOneParseableLinePerRecord) {
  const std::string path = temp_log_path("basic");
  {
    EventLogConfig cfg;
    cfg.path = path;
    EventLog log(cfg);
    ASSERT_TRUE(log.enabled());
    log.set_context("bench", std::string("unit"));
    log.set_context("n", std::uint64_t{8});
    log.record("cycle").field("steps", std::uint64_t{21}).field("ok", true);
    log.record("gossip_step").field("step", std::uint64_t{16});
    EXPECT_EQ(log.records_logged(), 2u);
  }  // destructor flushes + closes (appending a final meta record)
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  // Schema: ts/seq/event stamped first, then context, then fields.
  EXPECT_EQ(lines[0].find("{\"ts\":"), 0u);
  EXPECT_NE(lines[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"event\":\"cycle\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"n\":8"), std::string::npos);
  EXPECT_NE(lines[0].find("\"steps\":21"), std::string::npos);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(lines[0].back(), '}');
  EXPECT_NE(lines[1].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"gossip_step\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"event\":\"meta\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(EventLog, RingFlushesWhenFull) {
  const std::string path = temp_log_path("ring");
  EventLogConfig cfg;
  cfg.path = path;
  cfg.ring_capacity = 4;
  EventLog log(cfg);
  ASSERT_TRUE(log.enabled());
  for (int i = 0; i < 10; ++i)
    log.record("tick").field("i", static_cast<std::uint64_t>(i));
  // 10 records through a 4-slot ring: at least two auto-flushes happened,
  // so the file already holds the flushed prefix before any explicit flush.
  EXPECT_LE(log.buffered(), 4u);
  EXPECT_GE(read_lines(path).size(), 8u);
  log.flush();
  EXPECT_EQ(log.buffered(), 0u);
  EXPECT_EQ(read_lines(path).size(), 10u);
  std::remove(path.c_str());
}

TEST(EventLog, MetricsSnapshotInlined) {
  const std::string path = temp_log_path("metrics");
  MetricsRegistry reg;
  reg.add(reg.counter("gossip.messages_sent"), 123);
  reg.set(reg.gauge("gossip.active_triplets"), 64.0);
  reg.observe(reg.histogram("gossip.send_phase_seconds"), 0.5);
  {
    EventLogConfig cfg;
    cfg.path = path;
    EventLog log(cfg);
    log.record("cycle").metrics(reg.snapshot());
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);  // cycle + final meta record
  EXPECT_NE(lines[0].find("\"gossip.messages_sent\":123"), std::string::npos);
  EXPECT_NE(lines[0].find("\"gossip.active_triplets\":64"), std::string::npos);
  EXPECT_NE(lines[0].find("\"gossip.send_phase_seconds\":{\"count\":1"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(EventLog, AppendModePreservesExistingLines) {
  const std::string path = temp_log_path("append");
  EventLogConfig cfg;
  cfg.path = path;
  { EventLog log(cfg); log.record("first"); }
  cfg.append = true;
  { EventLog log(cfg); log.record("second"); }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);  // each run: its record + final meta record
  EXPECT_NE(lines[0].find("\"event\":\"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"meta\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"event\":\"second\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(EventLog, FlightRecorderModeDropsOldestAndReportsLoss) {
  const std::string path = temp_log_path("overflow");
  {
    EventLogConfig cfg;
    cfg.path = path;
    cfg.ring_capacity = 4;
    cfg.drop_oldest_on_overflow = true;
    EventLog log(cfg);
    ASSERT_TRUE(log.enabled());
    for (int i = 0; i < 10; ++i)
      log.record("tick").field("i", static_cast<std::uint64_t>(i));
    // 10 records through a 4-slot flight-recorder ring: the oldest 6 are
    // overwritten rather than flushed, and the loss is accounted.
    EXPECT_EQ(log.lines_dropped(), 6u);
  }  // destructor: meta record, flush
  const auto lines = read_lines(path);
  // Retained window (newest 4) in order, plus the final meta record.
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines[0].find("\"i\":6"), std::string::npos);
  EXPECT_NE(lines[3].find("\"i\":9"), std::string::npos);
  EXPECT_NE(lines[4].find("\"event\":\"meta\""), std::string::npos);
  EXPECT_NE(lines[4].find("\"lines_dropped\":6"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EventLog, MetaRecordWrittenWithoutOverflow) {
  const std::string path = temp_log_path("meta");
  {
    EventLogConfig cfg;
    cfg.path = path;
    EventLog log(cfg);
    log.record("tick");
    EXPECT_EQ(log.lines_dropped(), 0u);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"event\":\"meta\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"records_logged\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"lines_dropped\":0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EventLog, UnopenablePathDisablesGracefully) {
  EventLogConfig cfg;
  cfg.path = "/nonexistent-dir-xyz/log.jsonl";
  EventLog log(cfg);
  EXPECT_FALSE(log.enabled());
  log.record("cycle").field("n", std::uint64_t{1});  // must not crash
  EXPECT_EQ(log.records_logged(), 0u);
}

// ---------------------------------------------------------------------------
// ScopedTimer

TEST(ScopedTimer, ObservesIntoHistogramAndAccumulator) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("t", HistogramOptions{1e-9, 2.0, 40});
  double acc = 0.0;
  { ScopedTimer t(reg, h, 0, &acc); }
  const MetricsSnapshot snap = reg.snapshot();
  const auto* hs = snap.histogram("t");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 1u);
  EXPECT_GT(hs->sum, 0.0);
  // The same stop() wrote both sinks, so the values are identical.
  EXPECT_DOUBLE_EQ(acc, hs->sum);
}

TEST(ScopedTimer, StopDisarms) {
  double acc = 0.0;
  ScopedTimer t(&acc);
  t.stop();
  const double once = acc;
  EXPECT_GT(once, 0.0);
  t.stop();  // no-op
  EXPECT_DOUBLE_EQ(acc, once);
}  // destructor: still a no-op

// ---------------------------------------------------------------------------
// Determinism: telemetry must be observational only.

trust::SparseMatrix ring_matrix(std::size_t n) {
  trust::SparseMatrix::Builder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, (i + 1) % n, 0.7);
    b.add(i, (i + 2) % n, 0.3);
  }
  return std::move(b).build().row_normalized();
}

TEST(TelemetryDeterminism, EventLogAttachedKeepsGossipBitIdentical) {
  const std::size_t n = 24;
  const auto s = ring_matrix(n);
  const std::vector<double> v(n, 1.0 / static_cast<double>(n));
  gossip::PushSumConfig cfg;
  cfg.epsilon = 1e-5;
  cfg.stable_rounds = 2;

  gossip::VectorGossip plain(n, cfg);
  plain.initialize(s, v);
  Rng r1(99);
  const auto res_plain = plain.run(r1);
  const auto means_plain = plain.consensus_means();

  const std::string path = temp_log_path("determinism");
  gossip::VectorGossip logged(n, cfg);
  {
    EventLogConfig lcfg;
    lcfg.path = path;
    EventLog log(lcfg);
    logged.set_event_log(&log, 2);  // dense step sampling
    logged.initialize(s, v);
    Rng r2(99);
    const auto res_logged = logged.run(r2);
    EXPECT_EQ(res_logged.steps, res_plain.steps);
    EXPECT_EQ(res_logged.messages_sent, res_plain.messages_sent);
    EXPECT_EQ(res_logged.triplets_sent, res_plain.triplets_sent);
  }
  const auto means_logged = logged.consensus_means();
  ASSERT_EQ(means_logged.size(), means_plain.size());
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_EQ(means_logged[j], means_plain[j]) << "component " << j;
  EXPECT_GT(read_lines(path).size(), 0u);
  std::remove(path.c_str());
}

TEST(TelemetryDeterminism, RegistryCountersMatchResultCounters) {
  const std::size_t n = 16;
  const auto s = ring_matrix(n);
  const std::vector<double> v(n, 1.0 / static_cast<double>(n));
  gossip::PushSumConfig cfg;
  cfg.epsilon = 1e-4;
  cfg.loss_probability = 0.1;

  gossip::VectorGossip vg(n, cfg);
  vg.initialize(s, v);
  Rng rng(7);
  const auto res = vg.run(rng);
  const auto snap = vg.metrics().snapshot();
  EXPECT_EQ(*snap.counter("gossip.messages_sent"), res.messages_sent);
  EXPECT_EQ(*snap.counter("gossip.messages_lost"), res.messages_lost);
  EXPECT_EQ(*snap.counter("gossip.triplets_sent"), res.triplets_sent);
  EXPECT_EQ(*snap.counter("gossip.zero_components_skipped"),
            res.zero_components_skipped);
  EXPECT_EQ(static_cast<std::uint64_t>(*snap.gauge("gossip.active_triplets")),
            res.active_triplets);
  EXPECT_EQ(snap.histogram("gossip.send_phase_seconds")->count, res.steps);
}

}  // namespace
}  // namespace gt::telemetry
