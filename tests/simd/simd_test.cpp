// SIMD layer unit tests: runtime dispatch under GT_SIMD, the pinned
// lane-reduction order, bitwise scalar-vs-vector kernel sweeps over edge
// sizes (short tails, unaligned heads, NaN/inf/denormal payloads), and
// the aligned allocator contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "simd/kernels.hpp"
#include "simd/simd.hpp"

namespace gt::simd {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kFloor = 1e-300;

/// RAII GT_SIMD override (tests must not leak env state into each other).
class ScopedSimdEnv {
 public:
  explicit ScopedSimdEnv(const char* value) {
    const char* old = std::getenv("GT_SIMD");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv("GT_SIMD", value, 1);
    } else {
      ::unsetenv("GT_SIMD");
    }
  }
  ~ScopedSimdEnv() {
    if (had_old_) {
      ::setenv("GT_SIMD", old_.c_str(), 1);
    } else {
      ::unsetenv("GT_SIMD");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

/// The levels actually executable on this machine (always includes
/// scalar; avx2/neon only where supported, so the suite is green on any
/// host).
std::vector<SimdLevel> supported_vector_levels() {
  std::vector<SimdLevel> levels;
  if (level_supported(SimdLevel::kAvx2)) levels.push_back(SimdLevel::kAvx2);
  if (level_supported(SimdLevel::kAvx512))
    levels.push_back(SimdLevel::kAvx512);
  if (level_supported(SimdLevel::kNeon)) levels.push_back(SimdLevel::kNeon);
  return levels;
}

/// Deterministic ugly test data: mixes signs, magnitudes, exact zeros,
/// -0.0, denormals, infinities and NaNs — everything the gossip state can
/// legally hold.
std::vector<double> ugly_data(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (std::size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    switch (s % 11) {
      case 0: v[i] = 0.0; break;
      case 1: v[i] = -0.0; break;
      case 2: v[i] = 5e-324; break;  // smallest denormal
      case 3: v[i] = -1e-310; break;
      case 4: v[i] = kInf; break;
      case 5: v[i] = -kInf; break;
      case 6: v[i] = kNaN; break;
      default:
        v[i] = (static_cast<double>(s >> 11) * 0x1.0p-53 - 0.5) * 8.0;
        break;
    }
  }
  return v;
}

/// Realistic weights: mostly positive, some exactly 0 (undefined), a few
/// NaN (the residual kernels' branch semantics differ on them on purpose).
std::vector<double> weight_data(std::size_t n, std::uint64_t seed) {
  auto v = ugly_data(n, seed);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(v[i]) || i % 7 == 3) continue;  // keep some NaN / specials
    v[i] = std::abs(v[i]);
    if (i % 5 == 0) v[i] = 0.0;
  }
  return v;
}

const std::size_t kEdgeSizes[] = {0, 1, 2, 3,  4,  5,  7,  8,  9, 15,
                                  16, 17, 31, 32, 33, 63, 64, 65, 100};

#define EXPECT_BITEQ_VEC(a, b)                                            \
  do {                                                                    \
    ASSERT_EQ((a).size(), (b).size());                                    \
    if (!(a).empty()) {                                                   \
      EXPECT_EQ(                                                          \
          std::memcmp((a).data(), (b).data(), (a).size() * sizeof(double)), 0); \
    }                                                                     \
  } while (0)

// --- runtime dispatch ------------------------------------------------------

TEST(SimdDispatch, LevelNamesAreStable) {
  EXPECT_STREQ(level_name(SimdLevel::kAuto), "auto");
  EXPECT_STREQ(level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(level_name(SimdLevel::kAvx512), "avx512");
  EXPECT_STREQ(level_name(SimdLevel::kNeon), "neon");
}

TEST(SimdDispatch, ParseAcceptsTheClosedSet) {
  EXPECT_EQ(parse_level("off"), SimdLevel::kScalar);
  EXPECT_EQ(parse_level("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(parse_level("auto"), SimdLevel::kAuto);
  EXPECT_EQ(parse_level("avx2"), SimdLevel::kAvx2);
  EXPECT_EQ(parse_level("avx512"), SimdLevel::kAvx512);
  EXPECT_EQ(parse_level("neon"), SimdLevel::kNeon);
  EXPECT_THROW(parse_level(""), std::invalid_argument);
  EXPECT_THROW(parse_level("sse2"), std::invalid_argument);
  EXPECT_THROW(parse_level("ON"), std::invalid_argument);
}

TEST(SimdDispatch, ScalarAlwaysSupportedAndAutoResolvesConcrete) {
  EXPECT_TRUE(level_supported(SimdLevel::kScalar));
  const SimdLevel best = detect_level();
  EXPECT_NE(best, SimdLevel::kAuto);
  EXPECT_TRUE(level_supported(best));
}

TEST(SimdDispatch, EnvOffForcesScalarOverConfig) {
  ScopedSimdEnv env("off");
  EXPECT_EQ(resolve_level(SimdLevel::kAuto), SimdLevel::kScalar);
  EXPECT_EQ(resolve_level(SimdLevel::kAvx2), SimdLevel::kScalar);
  EXPECT_EQ(resolve_level(SimdLevel::kNeon), SimdLevel::kScalar);
}

TEST(SimdDispatch, EnvAutoResolvesToDetectedLevel) {
  ScopedSimdEnv env("auto");
  EXPECT_EQ(resolve_level(SimdLevel::kScalar), detect_level());
}

TEST(SimdDispatch, EnvForcedLevelDegradesToScalarWhenUnsupported) {
  {
    ScopedSimdEnv env("avx2");
    const SimdLevel got = resolve_level(SimdLevel::kAuto);
    EXPECT_EQ(got, level_supported(SimdLevel::kAvx2) ? SimdLevel::kAvx2
                                                     : SimdLevel::kScalar);
  }
  {
    ScopedSimdEnv env("neon");
    const SimdLevel got = resolve_level(SimdLevel::kAuto);
    EXPECT_EQ(got, level_supported(SimdLevel::kNeon) ? SimdLevel::kNeon
                                                     : SimdLevel::kScalar);
  }
}

TEST(SimdDispatch, EnvGarbageThrowsLoudly) {
  ScopedSimdEnv env("fastest-please");
  EXPECT_THROW(resolve_level(SimdLevel::kAuto), std::invalid_argument);
}

TEST(SimdDispatch, NoEnvUsesConfiguredLevel) {
  ScopedSimdEnv env(nullptr);
  EXPECT_EQ(resolve_level(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(resolve_level(SimdLevel::kAuto), detect_level());
}

TEST(SimdDispatch, KernelsTableMatchesRequestedLevel) {
  ScopedSimdEnv env(nullptr);
  EXPECT_EQ(kernels(SimdLevel::kScalar).level, SimdLevel::kScalar);
  for (const SimdLevel l : supported_vector_levels())
    EXPECT_EQ(kernels(l).level, l);
  // kAuto resolves; an unsupported concrete level degrades to scalar.
  EXPECT_EQ(kernels(SimdLevel::kAuto).level, detect_level());
  if (!level_supported(SimdLevel::kNeon)) {
    EXPECT_EQ(kernels(SimdLevel::kNeon).level, SimdLevel::kScalar);
  }
  if (!level_supported(SimdLevel::kAvx2)) {
    EXPECT_EQ(kernels(SimdLevel::kAvx2).level, SimdLevel::kScalar);
  }
  if (!level_supported(SimdLevel::kAvx512)) {
    EXPECT_EQ(kernels(SimdLevel::kAvx512).level, SimdLevel::kScalar);
  }
}

// --- aligned allocator -----------------------------------------------------

TEST(SimdAlloc, VectorsAre64ByteAligned) {
  for (std::size_t n : {1, 3, 7, 100, 4096}) {
    aligned_vector<double> v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignment, 0u);
    aligned_vector<std::uint32_t> u(n, 1u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u.data()) % kAlignment, 0u);
  }
}

TEST(SimdAlloc, PaddedSizeRoundsUpToKernelGranularity) {
  EXPECT_EQ(padded_size(0), 0u);
  EXPECT_EQ(padded_size(1), kPadSlots);
  EXPECT_EQ(padded_size(kPadSlots), kPadSlots);
  EXPECT_EQ(padded_size(kPadSlots + 1), 2 * kPadSlots);
  EXPECT_EQ(padded_size(1000), 1000u);  // already a multiple of 8
  EXPECT_EQ(padded_size(1001), 1008u);
}

// --- pinned lane-reduction order ------------------------------------------

TEST(SimdLaneOrder, SumGoldenMatchesStridedDecomposition) {
  // The contract is (l0+l1)+(l2+l3) over strided lanes plus an in-order
  // tail — NOT a sequential left fold. Pin it against a hand-computed
  // reference on data chosen so the orders differ.
  const std::vector<double> v = {1e16, 1.0, -1e16, 1.0,  // cancels in l0/l2
                                 1e16, 1.0, -1e16, 1.0, 3.0};
  // lanes: l0 = 1e16 + 1e16 = 2e16; l1 = 2.0; l2 = -2e16; l3 = 2.0
  // sum = (2e16 + 2.0) + (-2e16 + 2.0) + tail(3.0)
  const double expect = (2e16 + 2.0) + (-2e16 + 2.0) + 3.0;
  const double naive = 1e16 + 1.0 + -1e16 + 1.0 + 1e16 + 1.0 + -1e16 + 1.0 + 3.0;
  ASSERT_NE(expect, naive);  // the orders genuinely disagree on this data
  for (SimdLevel l : {SimdLevel::kScalar, detect_level()})
    EXPECT_EQ(kernels(l).sum(v.data(), v.size()), expect) << level_name(l);
}

TEST(SimdLaneOrder, SumBitIdenticalAcrossLevelsOnUglyData) {
  const Kernels& scalar = kernels(SimdLevel::kScalar);
  for (const SimdLevel l : supported_vector_levels()) {
    const Kernels& vec = kernels(l);
    for (const std::size_t n : kEdgeSizes) {
      auto v = ugly_data(n, n + 17);
      for (auto& e : v)
        if (std::isnan(e) || std::isinf(e)) e = 1.25;  // finite sums only
      const double a = scalar.sum(v.data(), n);
      const double b = vec.sum(v.data(), n);
      EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
          << level_name(l) << " n=" << n;
    }
  }
}

// --- bitwise scalar-vs-vector sweeps --------------------------------------

class SimdKernelSweep : public ::testing::TestWithParam<SimdLevel> {};

TEST_P(SimdKernelSweep, ElementwiseKernelsBitIdentical) {
  const Kernels& scalar = kernels(SimdLevel::kScalar);
  const Kernels& vec = kernels(GetParam());
  for (const std::size_t n : kEdgeSizes) {
    auto x1 = ugly_data(n, 2 * n + 1);
    auto x2 = x1;
    scalar.halve(x1.data(), n);
    vec.halve(x2.data(), n);
    EXPECT_BITEQ_VEC(x1, x2);

    std::vector<double> d1(n, -0.0), d2(n, -0.0);
    scalar.scale_assign(d1.data(), x1.data(), 0.5, n);
    vec.scale_assign(d2.data(), x2.data(), 0.5, n);
    EXPECT_BITEQ_VEC(d1, d2);

    // In-place aliasing is part of the kernel contract.
    scalar.scale_assign(d1.data(), d1.data(), 2.0, n);
    vec.scale_assign(d2.data(), d2.data(), 2.0, n);
    EXPECT_BITEQ_VEC(d1, d2);

    auto s1 = ugly_data(n, 5 * n + 3);
    scalar.accumulate_scaled(d1.data(), s1.data(), 0.5, n);
    vec.accumulate_scaled(d2.data(), s1.data(), 0.5, n);
    EXPECT_BITEQ_VEC(d1, d2);

    scalar.add(d1.data(), x1.data(), n);
    vec.add(d2.data(), x2.data(), n);
    EXPECT_BITEQ_VEC(d1, d2);
  }
}

TEST_P(SimdKernelSweep, ResidualKernelsBitIdenticalIncludingNaNBranches) {
  const Kernels& scalar = kernels(SimdLevel::kScalar);
  const Kernels& vec = kernels(GetParam());
  for (const std::size_t n : kEdgeSizes) {
    const auto x = ugly_data(n, 3 * n + 7);
    const auto w = weight_data(n, 4 * n + 9);
    auto p1 = ugly_data(n, 6 * n + 11);
    auto p2 = p1;
    const bool r1 = scalar.residual_nan(x.data(), w.data(), p1.data(), kFloor,
                                        1e-4, n);
    const bool r2 =
        vec.residual_nan(x.data(), w.data(), p2.data(), kFloor, 1e-4, n);
    EXPECT_EQ(r1, r2) << "residual_nan n=" << n;
    EXPECT_BITEQ_VEC(p1, p2);

    auto q1 = ugly_data(n, 8 * n + 13);
    auto q2 = q1;
    const bool k1 = scalar.residual_keep(x.data(), w.data(), q1.data(), kFloor,
                                         1e-4, n);
    const bool k2 =
        vec.residual_keep(x.data(), w.data(), q2.data(), kFloor, 1e-4, n);
    EXPECT_EQ(k1, k2) << "residual_keep n=" << n;
    EXPECT_BITEQ_VEC(q1, q2);
  }
}

TEST_P(SimdKernelSweep, RatioAccumulateAndPayloadCountBitIdentical) {
  const Kernels& scalar = kernels(SimdLevel::kScalar);
  const Kernels& vec = kernels(GetParam());
  for (const std::size_t n : kEdgeSizes) {
    const auto x = ugly_data(n, 9 * n + 1);
    const auto w = weight_data(n, 10 * n + 5);
    // Start accumulators at -0.0: a kernel that blends a zero *addend*
    // instead of the sum would flip the sign bit here.
    std::vector<double> a1(n, -0.0), a2(n, -0.0);
    std::vector<std::uint32_t> c1(n, 7), c2(n, 7);
    scalar.ratio_accumulate(a1.data(), c1.data(), x.data(), w.data(), kFloor, n);
    vec.ratio_accumulate(a2.data(), c2.data(), x.data(), w.data(), kFloor, n);
    EXPECT_BITEQ_VEC(a1, a2);
    EXPECT_EQ(c1, c2);

    for (const double h : {0.5, 1.0}) {
      EXPECT_EQ(scalar.count_nonzero_pair(x.data(), w.data(), h, n),
                vec.count_nonzero_pair(x.data(), w.data(), h, n))
          << "h=" << h << " n=" << n;
    }
  }
}

TEST_P(SimdKernelSweep, UnalignedHeadsMatchScalar) {
  const Kernels& scalar = kernels(SimdLevel::kScalar);
  const Kernels& vec = kernels(GetParam());
  aligned_vector<double> buf1(64), buf2(64);
  for (std::size_t i = 0; i < buf1.size(); ++i) buf1[i] = buf2[i] = 0.25 * i;
  // Offset 1..7 doubles from the 64-byte line: kernels must not assume
  // alignment of their operands.
  for (std::size_t off = 1; off < 8; ++off) {
    const std::size_t n = buf1.size() - off;
    scalar.halve(buf1.data() + off, n);
    vec.halve(buf2.data() + off, n);
    ASSERT_EQ(std::memcmp(buf1.data(), buf2.data(),
                          buf1.size() * sizeof(double)), 0)
        << "offset " << off;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSupportedLevels, SimdKernelSweep,
    ::testing::ValuesIn([] {
      auto levels = supported_vector_levels();
      // Degenerate but valid on scalar-only hosts: scalar vs scalar.
      if (levels.empty()) levels.push_back(SimdLevel::kScalar);
      return levels;
    }()),
    [](const ::testing::TestParamInfo<SimdLevel>& param) {
      return std::string(level_name(param.param));
    });

}  // namespace
}  // namespace gt::simd
