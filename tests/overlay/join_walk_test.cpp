#include <gtest/gtest.h>

#include "graph/metrics.hpp"
#include "overlay/overlay.hpp"

namespace gt::overlay {
namespace {

OverlayManager make_overlay(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return OverlayManager(graph::make_gnutella_like(n, rng));
}

TEST(JoinViaWalk, AttachesThroughIntroducer) {
  auto om = make_overlay(100, 1);
  om.leave(7);
  Rng rng(2);
  om.join_via_walk(7, 4, /*introducer=*/3, /*walk_length=*/5, rng);
  EXPECT_TRUE(om.is_alive(7));
  EXPECT_GE(om.topology().degree(7), 1u);  // at least the introducer
  EXPECT_LE(om.topology().degree(7), 4u);
  EXPECT_TRUE(om.topology().has_edge(7, 3));
  for (const auto u : om.topology().neighbors(7)) EXPECT_TRUE(om.is_alive(u));
}

TEST(JoinViaWalk, ReachesRequestedDegreeOnHealthyOverlay) {
  auto om = make_overlay(200, 3);
  om.leave(50);
  Rng rng(4);
  om.join_via_walk(50, 5, 0, 6, rng);
  EXPECT_EQ(om.topology().degree(50), 5u);
}

TEST(JoinViaWalk, DiscoversBeyondIntroducerNeighborhood) {
  auto om = make_overlay(300, 5);
  om.leave(99);
  Rng rng(6);
  om.join_via_walk(99, 6, 0, 8, rng);
  // With 8-hop walks on a ~log-diameter overlay, at least one neighbor
  // should not be a direct neighbor of the introducer.
  bool beyond = false;
  for (const auto u : om.topology().neighbors(99)) {
    if (u != 0 && !om.topology().has_edge(0, u)) beyond = true;
  }
  EXPECT_TRUE(beyond);
}

TEST(JoinViaWalk, DeadIntroducerThrows) {
  auto om = make_overlay(50, 7);
  om.leave(10);
  om.leave(11);
  Rng rng(8);
  EXPECT_THROW(om.join_via_walk(10, 3, 11, 5, rng), std::invalid_argument);
}

TEST(JoinViaWalk, NoOpWhenAlreadyAlive) {
  auto om = make_overlay(50, 9);
  const auto deg = om.topology().degree(5);
  Rng rng(10);
  om.join_via_walk(5, 8, 0, 5, rng);
  EXPECT_EQ(om.topology().degree(5), deg);
}

TEST(JoinViaWalk, IsolatedIntroducerStillConnects) {
  Rng trng(11);
  OverlayManager om(graph::make_ring_with_shortcuts(6, 0, trng));
  // Leave everyone except node 0; then 1 rejoins via 0 (whose neighbors
  // are all gone, so walks go nowhere).
  for (NodeId v = 1; v < 6; ++v) om.leave(v);
  Rng rng(12);
  om.join_via_walk(1, 3, 0, 4, rng);
  EXPECT_TRUE(om.topology().has_edge(1, 0));
  EXPECT_EQ(om.topology().degree(1), 1u);
}

}  // namespace
}  // namespace gt::overlay
