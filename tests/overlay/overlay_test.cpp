#include "overlay/overlay.hpp"

#include <gtest/gtest.h>

#include "graph/metrics.hpp"
#include "graph/topology.hpp"

namespace gt::overlay {
namespace {

OverlayManager make_overlay(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return OverlayManager(graph::make_gnutella_like(n, rng));
}

TEST(OverlayManager, AllAliveInitially) {
  auto om = make_overlay(50, 1);
  EXPECT_EQ(om.alive_count(), 50u);
  EXPECT_EQ(om.alive_nodes().size(), 50u);
  for (NodeId v = 0; v < 50; ++v) EXPECT_TRUE(om.is_alive(v));
}

TEST(OverlayManager, LeaveIsolatesNode) {
  auto om = make_overlay(30, 2);
  const auto deg_before = om.topology().degree(5);
  EXPECT_GT(deg_before, 0u);
  om.leave(5);
  EXPECT_FALSE(om.is_alive(5));
  EXPECT_EQ(om.alive_count(), 29u);
  EXPECT_EQ(om.topology().degree(5), 0u);
  om.leave(5);  // idempotent
  EXPECT_EQ(om.alive_count(), 29u);
}

TEST(OverlayManager, JoinBootstrapsLinks) {
  auto om = make_overlay(30, 3);
  om.leave(7);
  Rng rng(4);
  om.join(7, 4, rng);
  EXPECT_TRUE(om.is_alive(7));
  EXPECT_EQ(om.alive_count(), 30u);
  EXPECT_EQ(om.topology().degree(7), 4u);
  for (const auto u : om.topology().neighbors(7)) EXPECT_TRUE(om.is_alive(u));
  om.join(7, 4, rng);  // idempotent on alive node
  EXPECT_EQ(om.alive_count(), 30u);
}

TEST(OverlayManager, JoinDegreeClampedToAvailablePeers) {
  Rng trng(5);
  OverlayManager om(graph::make_ring_with_shortcuts(4, 0, trng));
  om.leave(0);
  om.leave(1);
  om.leave(2);
  Rng rng(6);
  om.join(0, 10, rng);  // only node 3 is alive to connect to
  EXPECT_EQ(om.topology().degree(0), 1u);
}

TEST(OverlayManager, ChurnStepRespectsProbabilities) {
  auto om = make_overlay(500, 7);
  Rng rng(8);
  const auto stats = om.churn_step(0.1, 0.0, 3, rng);
  EXPECT_NEAR(static_cast<double>(stats.left), 50.0, 25.0);
  EXPECT_EQ(stats.joined, 0u);
  EXPECT_EQ(om.alive_count(), 500u - stats.left);

  // Everyone returns with p_join = 1.
  const auto stats2 = om.churn_step(0.0, 1.0, 3, rng);
  EXPECT_EQ(stats2.joined, stats.left);
  EXPECT_EQ(om.alive_count(), 500u);
}

TEST(OverlayManager, ChurnKeepsAliveComponentUsable) {
  auto om = make_overlay(300, 9);
  Rng rng(10);
  for (int epoch = 0; epoch < 10; ++epoch) om.churn_step(0.05, 0.5, 3, rng);
  // The alive subgraph should retain most nodes and stay well connected.
  EXPECT_GT(om.alive_count(), 200u);
  std::size_t isolated_alive = 0;
  for (const auto v : om.alive_nodes())
    if (om.topology().degree(v) == 0) ++isolated_alive;
  EXPECT_LT(isolated_alive, 5u);
}

}  // namespace
}  // namespace gt::overlay
