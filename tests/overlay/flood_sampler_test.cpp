#include <gtest/gtest.h>

#include <map>

#include "overlay/flood.hpp"
#include "overlay/overlay.hpp"
#include "overlay/sampler.hpp"

namespace gt::overlay {
namespace {

OverlayManager ring_overlay(std::size_t n) {
  Rng rng(1);
  return OverlayManager(graph::make_ring_with_shortcuts(n, 0, rng));
}

TEST(Flood, TtlLimitsReachOnRing) {
  auto om = ring_overlay(20);
  const auto res = flood(om, 0, 3);
  // Ring: TTL 3 reaches 3 hops in both directions + source = 7 nodes.
  EXPECT_EQ(res.reached.size(), 7u);
  EXPECT_EQ(res.max_depth, 3u);
}

TEST(Flood, FullTtlReachesEntireConnectedOverlay) {
  Rng rng(2);
  OverlayManager om(graph::make_gnutella_like(200, rng));
  const auto res = flood(om, 5, 10);
  EXPECT_EQ(res.reached.size(), 200u);
  EXPECT_GT(res.messages, 199u);  // duplicates make flooding expensive
}

TEST(Flood, DeadNodesBlockPropagation) {
  auto om = ring_overlay(10);  // pure ring: cutting both sides isolates
  om.leave(1);
  om.leave(9);
  const auto res = flood(om, 0, 10);
  EXPECT_EQ(res.reached.size(), 1u);  // only the source remains reachable
}

TEST(Flood, DeadSourceYieldsNothing) {
  auto om = ring_overlay(10);
  om.leave(0);
  const auto res = flood(om, 0, 5);
  EXPECT_TRUE(res.reached.empty());
  EXPECT_EQ(res.messages, 0u);
}

TEST(FloodQuery, FiltersResponders) {
  auto om = ring_overlay(20);
  FloodResult stats;
  const auto responders = flood_query(
      om, 0, 20, [](NodeId v) { return v % 5 == 0; }, &stats);
  EXPECT_EQ(responders.size(), 4u);  // 0, 5, 10, 15
  EXPECT_EQ(stats.reached.size(), 20u);
}

TEST(UniformSampler, NeverSelf) {
  Rng rng(3);
  OverlayManager om(graph::make_gnutella_like(50, rng));
  UniformSampler sampler(om);
  for (int i = 0; i < 500; ++i) {
    const auto s = sampler.sample(7, rng);
    ASSERT_NE(s, 7u);
    ASSERT_TRUE(om.is_alive(s));
  }
}

TEST(UniformSampler, SkipsDeadPeers) {
  auto om = ring_overlay(5);
  om.leave(1);
  om.leave(2);
  Rng rng(4);
  UniformSampler sampler(om);
  for (int i = 0; i < 100; ++i) {
    const auto s = sampler.sample(0, rng);
    ASSERT_TRUE(s == 3 || s == 4);
  }
}

TEST(UniformSampler, DegenerateSingleNode) {
  auto om = ring_overlay(3);
  om.leave(1);
  om.leave(2);
  Rng rng(5);
  UniformSampler sampler(om);
  EXPECT_EQ(sampler.sample(0, rng), 0u);
}

TEST(RandomWalkSampler, StaysInAliveComponent) {
  Rng rng(6);
  OverlayManager om(graph::make_gnutella_like(100, rng));
  RandomWalkSampler sampler(om, 20);
  for (int i = 0; i < 200; ++i) {
    const auto s = sampler.sample(0, rng);
    ASSERT_TRUE(om.is_alive(s));
  }
}

TEST(RandomWalkSampler, LongWalkApproachesUniform) {
  // On a well-connected overlay the MH walk's end point should not
  // concentrate on hubs: frequency spread stays within a small factor.
  Rng rng(7);
  OverlayManager om(graph::make_gnutella_like(30, rng));
  RandomWalkSampler sampler(om, 50);
  std::map<NodeId, int> freq;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) ++freq[sampler.sample(i % 30, rng)];
  int max_f = 0;
  for (const auto& [v, f] : freq) max_f = std::max(max_f, f);
  EXPECT_LT(max_f, trials / 30 * 3);  // within 3x of the uniform share
  EXPECT_EQ(freq.size(), 30u);        // every node reachable
}

TEST(RandomWalkSampler, IsolatedNodeReturnsSelf) {
  auto om = ring_overlay(5);
  om.leave(1);
  om.leave(4);  // node 0's both ring neighbors gone
  Rng rng(8);
  RandomWalkSampler sampler(om, 10);
  EXPECT_EQ(sampler.sample(0, rng), 0u);
}

}  // namespace
}  // namespace gt::overlay
