#include "trust/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gt::trust {
namespace {

SparseMatrix small_matrix() {
  SparseMatrix::Builder b(3);
  b.add(0, 1, 2.0);
  b.add(0, 2, 2.0);
  b.add(1, 0, 1.0);
  b.add(2, 0, 3.0);
  b.add(2, 1, 1.0);
  return std::move(b).build();
}

TEST(SparseMatrix, BuildAndAccess) {
  const auto m = small_matrix();
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.nonzeros(), 5u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.row_sum(2), 4.0);
}

TEST(SparseMatrix, BuilderAccumulatesDuplicates) {
  SparseMatrix::Builder b(2);
  b.add(0, 1, 1.0);
  b.add(0, 1, 2.5);
  const auto m = std::move(b).build();
  EXPECT_EQ(m.nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.5);
}

TEST(SparseMatrix, BuilderRejectsOutOfRange) {
  SparseMatrix::Builder b(2);
  EXPECT_THROW(b.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(b.add(0, 5, 1.0), std::out_of_range);
}

TEST(SparseMatrix, RowsSortedByColumn) {
  SparseMatrix::Builder b(3);
  b.add(0, 2, 1.0);
  b.add(0, 0, 1.0);
  const auto m = std::move(b).build();
  const auto row = m.row(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].col, 0u);
  EXPECT_EQ(row[1].col, 2u);
}

TEST(SparseMatrix, RowNormalizationEq1) {
  const auto s = small_matrix().row_normalized();
  EXPECT_TRUE(s.is_row_stochastic());
  EXPECT_DOUBLE_EQ(s.at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(s.at(2, 0), 0.75);
  EXPECT_DOUBLE_EQ(s.at(2, 1), 0.25);
}

TEST(SparseMatrix, EmptyRowStaysEmptyAfterNormalize) {
  SparseMatrix::Builder b(3);
  b.add(0, 1, 1.0);
  const auto s = std::move(b).build().row_normalized();
  EXPECT_TRUE(s.row(1).empty());
  EXPECT_TRUE(s.row(2).empty());
  const auto empty = s.empty_rows();
  EXPECT_EQ(empty, (std::vector<NodeId>{1, 2}));
}

TEST(SparseMatrix, IsRowStochasticDetectsViolation) {
  const auto raw = small_matrix();
  EXPECT_FALSE(raw.is_row_stochastic());
}

TEST(SparseMatrix, TransposeMultiplyMatchesDense) {
  const auto s = small_matrix().row_normalized();
  const std::vector<double> v{0.5, 0.3, 0.2};
  const auto out = s.transpose_multiply(v);
  const auto dense = s.to_dense();
  for (NodeId j = 0; j < 3; ++j) {
    double expected = 0.0;
    for (NodeId i = 0; i < 3; ++i) expected += v[i] * dense[i][j];
    EXPECT_NEAR(out[j], expected, 1e-15) << "column " << j;
  }
}

TEST(SparseMatrix, TransposeMultiplyPreservesMassWhenStochastic) {
  const auto s = small_matrix().row_normalized();
  const std::vector<double> v{0.2, 0.5, 0.3};
  const auto out = s.transpose_multiply(v);
  double total = 0.0;
  for (const auto x : out) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(SparseMatrix, DanglingRowSpreadsUniformly) {
  SparseMatrix::Builder b(4);
  b.add(0, 1, 1.0);  // rows 1-3 dangle
  const auto s = std::move(b).build().row_normalized();
  const std::vector<double> v{0.0, 1.0, 0.0, 0.0};
  const auto out = s.transpose_multiply(v);
  for (NodeId j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(out[j], 0.25);
}

TEST(SparseMatrix, TransposeMultiplySizeMismatchThrows) {
  const auto s = small_matrix();
  EXPECT_THROW(s.transpose_multiply(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(SparseMatrix, ToDenseRoundTrip) {
  const auto m = small_matrix();
  const auto dense = m.to_dense();
  for (NodeId i = 0; i < 3; ++i)
    for (NodeId j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(dense[i][j], m.at(i, j));
}

}  // namespace
}  // namespace gt::trust
