// Parameterized property sweeps over randomly generated trust matrices:
// normalization and the transpose product must satisfy their algebraic
// contracts for any workload shape.
#include <gtest/gtest.h>

#include <tuple>

#include "common/powerlaw.hpp"
#include "common/stats.hpp"
#include "trust/feedback.hpp"
#include "trust/generator.hpp"
#include "trust/matrix.hpp"

namespace gt::trust {
namespace {

using Param = std::tuple<std::size_t /*n*/, double /*d_avg*/, std::uint64_t /*seed*/>;

class MatrixProperty : public ::testing::TestWithParam<Param> {
 protected:
  SparseMatrix make() const {
    const auto [n, d_avg, seed] = GetParam();
    FeedbackLedger ledger(n);
    FeedbackGenConfig cfg;
    cfg.n = n;
    cfg.d_max = std::max<std::size_t>(4, n / 3);
    cfg.d_avg = std::min(d_avg, static_cast<double>(cfg.d_max) / 2.0);
    Rng rng(seed);
    const auto quality = draw_service_qualities(n, n / 4, rng);
    generate_honest_feedback(ledger, quality, cfg, rng);
    return ledger.normalized_matrix();
  }
};

TEST_P(MatrixProperty, NormalizationIsRowStochastic) {
  const auto s = make();
  EXPECT_TRUE(s.is_row_stochastic());
  // Idempotent: normalizing a normalized matrix changes nothing.
  const auto again = s.row_normalized();
  EXPECT_EQ(again.nonzeros(), s.nonzeros());
  for (NodeId r = 0; r < s.size(); ++r) {
    const auto ra = s.row(r);
    const auto rb = again.row(r);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t k = 0; k < ra.size(); ++k)
      EXPECT_NEAR(ra[k].value, rb[k].value, 1e-15);
  }
}

TEST_P(MatrixProperty, NoSelfTrustEntries) {
  const auto s = make();
  for (NodeId r = 0; r < s.size(); ++r) EXPECT_DOUBLE_EQ(s.at(r, r), 0.0);
}

TEST_P(MatrixProperty, TransposeProductConservesMass) {
  const auto s = make();
  const auto [n, d_avg, seed] = GetParam();
  Rng rng(seed ^ 0xbeef);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_double();
  normalize_l1(v);
  const auto out = s.transpose_multiply(v);
  // Row-stochastic + uniform dangling redistribution => mass preserved.
  EXPECT_NEAR(sum(out), 1.0, 1e-12);
  for (const auto x : out) EXPECT_GE(x, 0.0);
}

TEST_P(MatrixProperty, TransposeProductIsLinear) {
  const auto s = make();
  const auto [n, d_avg, seed] = GetParam();
  Rng rng(seed ^ 0xcafe);
  std::vector<double> a(n), b(n), combo(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.next_double();
    b[i] = rng.next_double();
    combo[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  const auto sa = s.transpose_multiply(a);
  const auto sb = s.transpose_multiply(b);
  const auto sc = s.transpose_multiply(combo);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_NEAR(sc[j], 2.0 * sa[j] + 3.0 * sb[j], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Workloads, MatrixProperty,
                         ::testing::Combine(::testing::Values(std::size_t{16},
                                                              std::size_t{60},
                                                              std::size_t{150}),
                                            ::testing::Values(4.0, 12.0),
                                            ::testing::Values(5ull, 77ull)));

}  // namespace
}  // namespace gt::trust
