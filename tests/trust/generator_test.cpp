#include "trust/generator.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace gt::trust {
namespace {

TEST(UniformPartnerSelector, NeverReturnsSelf) {
  const auto sel = uniform_partner_selector(10);
  Rng rng(1);
  for (NodeId i = 0; i < 10; ++i) {
    for (int k = 0; k < 200; ++k) {
      const auto p = sel(i, rng);
      ASSERT_NE(p, i);
      ASSERT_LT(p, 10u);
    }
  }
}

TEST(UniformPartnerSelector, CoversAllOthers) {
  const auto sel = uniform_partner_selector(5);
  Rng rng(2);
  std::vector<bool> hit(5, false);
  for (int k = 0; k < 500; ++k) hit[sel(0, rng)] = true;
  EXPECT_FALSE(hit[0]);
  for (NodeId j = 1; j < 5; ++j) EXPECT_TRUE(hit[j]) << j;
}

TEST(UniformPartnerSelector, RejectsTinyNetwork) {
  EXPECT_THROW(uniform_partner_selector(1), std::invalid_argument);
}

TEST(HonestRating, ReportsOutcomeVerbatim) {
  const auto rate = honest_rating();
  EXPECT_DOUBLE_EQ(rate(0, 1, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(rate(0, 1, 0.0), 0.0);
}

TEST(GenerateFeedback, RespectsCounts) {
  FeedbackLedger ledger(4);
  const std::vector<std::size_t> counts{3, 0, 2, 1};
  const std::vector<double> quality{1.0, 1.0, 1.0, 1.0};
  Rng rng(3);
  generate_feedback(ledger, counts, quality, uniform_partner_selector(4),
                    honest_rating(), rng);
  // All providers are perfect, so every transaction records rating 1.0 and
  // total raw mass equals total transactions.
  double total = 0.0;
  for (NodeId i = 0; i < 4; ++i)
    for (NodeId j = 0; j < 4; ++j) total += ledger.raw_score(i, j);
  EXPECT_DOUBLE_EQ(total, 6.0);
  EXPECT_EQ(ledger.out_degree(1), 0u);
}

TEST(GenerateFeedback, BadProvidersGetLowRatings) {
  FeedbackLedger ledger(2);
  const std::vector<std::size_t> counts{100, 0};
  const std::vector<double> quality{1.0, 0.0};  // node 1 always corrupt
  Rng rng(4);
  generate_feedback(ledger, counts, quality, uniform_partner_selector(2),
                    honest_rating(), rng);
  EXPECT_DOUBLE_EQ(ledger.raw_score(0, 1), 0.0);
}

TEST(GenerateFeedback, SizeMismatchThrows) {
  FeedbackLedger ledger(3);
  Rng rng(5);
  EXPECT_THROW(generate_feedback(ledger, {1, 2}, {1.0, 1.0, 1.0},
                                 uniform_partner_selector(3), honest_rating(), rng),
               std::invalid_argument);
}

TEST(GenerateHonestFeedback, PaperShapedWorkload) {
  FeedbackGenConfig cfg;
  cfg.n = 200;
  cfg.d_max = 50;
  cfg.d_avg = 10.0;
  FeedbackLedger ledger(200);
  Rng rng(6);
  const auto quality = draw_service_qualities(200, 20, rng);
  generate_honest_feedback(ledger, quality, cfg, rng);
  EXPECT_GT(ledger.num_feedbacks(), 200u);
  // Honest raters give malicious (low-quality) providers low average scores.
  double bad_mass = 0.0, good_mass = 0.0;
  for (NodeId i = 0; i < 200; ++i) {
    for (NodeId j = 0; j < 20; ++j) bad_mass += ledger.raw_score(i, j);
    for (NodeId j = 20; j < 200; ++j) good_mass += ledger.raw_score(i, j);
  }
  // Per-peer averages: malicious get far less trust mass per peer.
  EXPECT_LT(bad_mass / 20.0, good_mass / 180.0 * 0.5);
}

TEST(DrawServiceQualities, RangesMatchRoles) {
  Rng rng(7);
  const auto q = draw_service_qualities(100, 30, rng);
  ASSERT_EQ(q.size(), 100u);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_GE(q[i], 0.0);
    EXPECT_LE(q[i], 0.2);
  }
  for (std::size_t i = 30; i < 100; ++i) {
    EXPECT_GE(q[i], 0.8);
    EXPECT_LE(q[i], 1.0);
  }
}

TEST(DrawServiceQualities, TooManyMaliciousThrows) {
  Rng rng(8);
  EXPECT_THROW(draw_service_qualities(10, 11, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gt::trust
