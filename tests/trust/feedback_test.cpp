#include "trust/feedback.hpp"

#include <gtest/gtest.h>

namespace gt::trust {
namespace {

TEST(FeedbackLedger, RecordsAndAccumulates) {
  FeedbackLedger ledger(3);
  ledger.record(0, 1, 1.0);
  ledger.record(0, 1, 0.5);
  ledger.record(0, 2, 1.0);
  EXPECT_DOUBLE_EQ(ledger.raw_score(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(ledger.raw_score(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(ledger.raw_score(1, 0), 0.0);
  EXPECT_EQ(ledger.num_feedbacks(), 2u);
  EXPECT_EQ(ledger.out_degree(0), 2u);
}

TEST(FeedbackLedger, ClampsRatings) {
  FeedbackLedger ledger(2);
  ledger.record(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(ledger.raw_score(0, 1), 1.0);
  ledger.record(0, 1, -3.0);
  EXPECT_DOUBLE_EQ(ledger.raw_score(0, 1), 1.0);
}

TEST(FeedbackLedger, IgnoresSelfRatings) {
  FeedbackLedger ledger(2);
  ledger.record(1, 1, 1.0);
  EXPECT_DOUBLE_EQ(ledger.raw_score(1, 1), 0.0);
  EXPECT_EQ(ledger.num_feedbacks(), 0u);
}

TEST(FeedbackLedger, OutOfRangeThrows) {
  FeedbackLedger ledger(2);
  EXPECT_THROW(ledger.record(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(ledger.record(0, 2, 1.0), std::out_of_range);
}

TEST(FeedbackLedger, RawMatrixReflectsScores) {
  FeedbackLedger ledger(3);
  ledger.record(0, 1, 1.0);
  ledger.record(0, 2, 1.0);
  ledger.record(2, 0, 0.5);
  const auto r = ledger.raw_matrix();
  EXPECT_DOUBLE_EQ(r.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(r.at(2, 0), 0.5);
  EXPECT_EQ(r.nonzeros(), 3u);
}

TEST(FeedbackLedger, NormalizedMatrixIsStochastic) {
  FeedbackLedger ledger(3);
  ledger.record(0, 1, 1.0);
  for (int k = 0; k < 3; ++k) ledger.record(0, 2, 1.0);  // r_02 accumulates to 3
  const auto s = ledger.normalized_matrix();
  EXPECT_TRUE(s.is_row_stochastic());
  EXPECT_DOUBLE_EQ(s.at(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(s.at(0, 2), 0.75);
}

TEST(FeedbackLedger, ZeroValueRatingsDropFromMatrix) {
  FeedbackLedger ledger(2);
  ledger.record(0, 1, 0.0);  // a "rated 0" event: no positive trust
  const auto r = ledger.raw_matrix();
  EXPECT_EQ(r.nonzeros(), 0u);
}

TEST(FeedbackLedger, ForgetPeerDropsBothDirections) {
  FeedbackLedger ledger(3);
  ledger.record(0, 1, 1.0);
  ledger.record(1, 2, 1.0);
  ledger.record(2, 1, 1.0);
  ledger.forget_peer(1);
  EXPECT_DOUBLE_EQ(ledger.raw_score(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ledger.raw_score(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(ledger.raw_score(2, 1), 0.0);
  EXPECT_EQ(ledger.num_feedbacks(), 0u);
}

TEST(FeedbackLedger, ForgetOutOfRangeThrows) {
  FeedbackLedger ledger(2);
  EXPECT_THROW(ledger.forget_peer(5), std::out_of_range);
}

}  // namespace
}  // namespace gt::trust
