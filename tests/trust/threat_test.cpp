#include "threat/models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

namespace gt::threat {
namespace {

ThreatConfig base_config() {
  ThreatConfig cfg;
  cfg.n = 200;
  cfg.malicious_fraction = 0.2;
  return cfg;
}

TEST(MakePopulation, IndependentSettingCounts) {
  Rng rng(1);
  const auto peers = make_population(base_config(), rng);
  ASSERT_EQ(peers.size(), 200u);
  std::size_t bad = 0;
  for (const auto& p : peers) {
    if (p.type == PeerType::kIndependentMalicious) {
      ++bad;
      EXPECT_LE(p.service_quality, 0.2);
      EXPECT_EQ(p.collusion_group, -1);
    } else {
      EXPECT_EQ(p.type, PeerType::kHonest);
      EXPECT_GE(p.service_quality, 0.8);
    }
  }
  EXPECT_EQ(bad, 40u);
}

TEST(MakePopulation, CollusiveGroupsPartitioned) {
  Rng rng(2);
  auto cfg = base_config();
  cfg.collusive = true;
  cfg.collusion_group_size = 8;
  const auto peers = make_population(cfg, rng);
  std::set<int> groups;
  std::size_t bad = 0;
  for (const auto& p : peers) {
    if (p.type == PeerType::kCollusive) {
      ++bad;
      EXPECT_GE(p.collusion_group, 0);
      groups.insert(p.collusion_group);
    }
  }
  EXPECT_EQ(bad, 40u);
  EXPECT_EQ(groups.size(), 5u);  // 40 colluders / group size 8
}

TEST(MakePopulation, ZeroMaliciousAllHonest) {
  Rng rng(3);
  ThreatConfig cfg;
  cfg.n = 50;
  cfg.malicious_fraction = 0.0;
  const auto peers = make_population(cfg, rng);
  for (const auto& p : peers) EXPECT_EQ(p.type, PeerType::kHonest);
  EXPECT_TRUE(malicious_indices(peers).empty());
}

TEST(MakePopulation, BadFractionThrows) {
  Rng rng(4);
  ThreatConfig cfg;
  cfg.malicious_fraction = 1.5;
  EXPECT_THROW(make_population(cfg, rng), std::invalid_argument);
  cfg.malicious_fraction = -0.1;
  EXPECT_THROW(make_population(cfg, rng), std::invalid_argument);
  cfg.malicious_fraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(make_population(cfg, rng), std::invalid_argument);
}

TEST(MakePopulation, GammaBoundariesAreWellDefined) {
  Rng rng(41);
  ThreatConfig cfg;
  cfg.n = 64;

  // gamma = 1: every peer is malicious, none honest.
  cfg.malicious_fraction = 1.0;
  const auto all_bad = make_population(cfg, rng);
  EXPECT_EQ(malicious_indices(all_bad).size(), 64u);

  // A tiny gamma whose rounded count is 0 behaves exactly like gamma = 0.
  cfg.malicious_fraction = 1e-9;
  const auto none_bad = make_population(cfg, rng);
  EXPECT_TRUE(malicious_indices(none_bad).empty());

  // A gamma just under 1 whose rounded count is n behaves like gamma = 1,
  // in the collusive setting too (groups still partition cleanly).
  cfg.malicious_fraction = 1.0 - 1e-9;
  cfg.collusive = true;
  cfg.collusion_group_size = 8;
  const auto rounded_up = make_population(cfg, rng);
  EXPECT_EQ(malicious_indices(rounded_up).size(), 64u);
  for (const auto& p : rounded_up) EXPECT_GE(p.collusion_group, 0);
}

TEST(ThreatMetrics, GainEdgeCasesAreLoudOrWellDefined) {
  // No malicious peers: the attack gained nothing, by definition.
  std::vector<PeerProfile> honest_only(4);
  const std::vector<double> ref{0.25, 0.25, 0.25, 0.25};
  const std::vector<double> est{0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(malicious_reputation_gain(honest_only, ref, est), 1.0);

  // Zero reference mass but a positive attacked estimate: the attackers
  // manufactured reputation from nothing — report +inf, not a quiet 0/0.
  std::vector<PeerProfile> peers(4);
  peers[3].type = PeerType::kIndependentMalicious;
  const std::vector<double> zero_ref{0.4, 0.3, 0.3, 0.0};
  const std::vector<double> inflated{0.3, 0.3, 0.3, 0.1};
  EXPECT_TRUE(std::isinf(malicious_reputation_gain(peers, zero_ref, inflated)));

  // Both masses zero: nothing to gain, nothing gained.
  const std::vector<double> zero_est{0.5, 0.3, 0.2, 0.0};
  EXPECT_DOUBLE_EQ(malicious_reputation_gain(peers, zero_ref, zero_est), 1.0);
}

TEST(ThreatMetrics, HonestRmsErrorDegenerateInputs) {
  // An all-malicious population leaves no honest components: error 0, not
  // a 0/0 NaN.
  std::vector<PeerProfile> all_bad(3);
  for (auto& p : all_bad) p.type = PeerType::kIndependentMalicious;
  const std::vector<double> ref{0.5, 0.3, 0.2};
  const std::vector<double> est{0.2, 0.3, 0.5};
  EXPECT_DOUBLE_EQ(honest_rms_error(all_bad, ref, est), 0.0);

  // A perfect estimate reports exactly zero error.
  std::vector<PeerProfile> peers(3);
  EXPECT_DOUBLE_EQ(honest_rms_error(peers, ref, ref), 0.0);
}

TEST(MaliciousIndices, MatchesPopulation) {
  Rng rng(5);
  const auto peers = make_population(base_config(), rng);
  const auto bad = malicious_indices(peers);
  EXPECT_EQ(bad.size(), 40u);
  for (const auto i : bad) EXPECT_NE(peers[i].type, PeerType::kHonest);
}

TEST(ThreatRating, HonestReportsTruth) {
  std::vector<PeerProfile> peers(2);
  const auto rate = threat_rating(peers);
  EXPECT_DOUBLE_EQ(rate(0, 1, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(rate(0, 1, 0.0), 0.0);
}

TEST(ThreatRating, IndependentMaliciousInverts) {
  std::vector<PeerProfile> peers(2);
  peers[0].type = PeerType::kIndependentMalicious;
  const auto rate = threat_rating(peers);
  EXPECT_DOUBLE_EQ(rate(0, 1, 1.0), 0.0);  // good service rated very low
  EXPECT_DOUBLE_EQ(rate(0, 1, 0.0), 1.0);  // bad service rated very high
}

TEST(ThreatRating, CollusiveBoostsInGroupSlandersOutGroup) {
  std::vector<PeerProfile> peers(4);
  peers[0].type = PeerType::kCollusive;
  peers[0].collusion_group = 0;
  peers[1].type = PeerType::kCollusive;
  peers[1].collusion_group = 0;
  peers[2].type = PeerType::kCollusive;
  peers[2].collusion_group = 1;  // different gang
  const auto rate = threat_rating(peers);
  EXPECT_DOUBLE_EQ(rate(0, 1, 0.0), 1.0);  // in-group boosted despite bad service
  EXPECT_DOUBLE_EQ(rate(0, 2, 1.0), 0.0);  // rival gang slandered
  EXPECT_DOUBLE_EQ(rate(0, 3, 1.0), 0.0);  // honest outsider slandered
}

TEST(ThreatPartnerSelector, CollusionBiasDirectsInGroup) {
  ThreatConfig cfg;
  cfg.n = 100;
  cfg.collusive = true;
  cfg.collusion_partner_bias = 1.0;  // always pick in-group when possible
  std::vector<PeerProfile> peers(100);
  for (std::size_t i = 0; i < 10; ++i) {
    peers[i].type = PeerType::kCollusive;
    peers[i].collusion_group = static_cast<int>(i / 5);
  }
  const auto sel = threat_partner_selector(peers, cfg);
  Rng rng(6);
  for (int k = 0; k < 200; ++k) {
    const auto p = sel(0, rng);
    EXPECT_LT(p, 5u);  // group 0 = peers 0..4
    EXPECT_NE(p, 0u);
  }
}

TEST(ThreatPartnerSelector, HonestStaysUniform) {
  ThreatConfig cfg;
  cfg.n = 20;
  std::vector<PeerProfile> peers(20);
  const auto sel = threat_partner_selector(peers, cfg);
  Rng rng(7);
  std::set<trust::NodeId> seen;
  for (int k = 0; k < 600; ++k) seen.insert(sel(3, rng));
  EXPECT_GE(seen.size(), 18u);
  EXPECT_EQ(seen.count(3), 0u);
}

TEST(GenerateThreatFeedback, MaliciousSlanderGoodPeers) {
  Rng rng(8);
  ThreatConfig cfg;
  cfg.n = 150;
  cfg.malicious_fraction = 0.2;
  const auto peers = make_population(cfg, rng);
  trust::FeedbackGenConfig gen;
  gen.n = 150;
  gen.d_max = 50;
  gen.d_avg = 15.0;
  trust::FeedbackLedger ledger(150);
  generate_threat_feedback(ledger, peers, cfg, gen, Rng(99));

  // Malicious raters give honest (good) providers much lower ratings than
  // honest raters do.
  double bad_rater_mass = 0.0, honest_rater_mass = 0.0;
  std::size_t bad_raters = 0, honest_raters = 0;
  for (std::size_t i = 0; i < 150; ++i) {
    double mass = 0.0;
    for (std::size_t j = 0; j < 150; ++j) {
      if (peers[j].type == PeerType::kHonest) mass += ledger.raw_score(i, j);
    }
    if (peers[i].type == PeerType::kHonest) {
      honest_rater_mass += mass;
      ++honest_raters;
    } else {
      bad_rater_mass += mass;
      ++bad_raters;
    }
  }
  ASSERT_GT(bad_raters, 0u);
  EXPECT_LT(bad_rater_mass / static_cast<double>(bad_raters),
            honest_rater_mass / static_cast<double>(honest_raters) * 0.5);
}

TEST(HonestCounterfactual, SameTransactionsDifferentRatings) {
  Rng rng(9);
  ThreatConfig cfg;
  cfg.n = 100;
  cfg.malicious_fraction = 0.3;
  const auto peers = make_population(cfg, rng);
  trust::FeedbackGenConfig gen;
  gen.n = 100;
  gen.d_max = 40;
  gen.d_avg = 10.0;

  trust::FeedbackLedger attacked(100), honest(100);
  generate_threat_feedback(attacked, peers, cfg, gen, Rng(1234));
  generate_honest_counterfactual(honest, peers, cfg, gen, Rng(1234));

  // Identical transaction streams: same rated pairs...
  EXPECT_EQ(attacked.num_feedbacks(), honest.num_feedbacks());
  // ...but honest raters' rows agree while malicious raters' rows differ.
  bool any_diff = false;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < 100; ++j) {
      const double a = attacked.raw_score(i, j);
      const double h = honest.raw_score(i, j);
      if (peers[i].type == PeerType::kHonest) {
        EXPECT_DOUBLE_EQ(a, h);
      } else if (a != h) {
        any_diff = true;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace gt::threat
