#include "trust/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "trust/generator.hpp"

namespace gt::trust {
namespace {

FeedbackLedger sample_ledger(std::size_t n, std::uint64_t seed) {
  FeedbackLedger ledger(n);
  FeedbackGenConfig cfg;
  cfg.n = n;
  cfg.d_max = std::max<std::size_t>(4, n / 4);
  cfg.d_avg = std::max(2.0, static_cast<double>(n) / 10.0);
  Rng rng(seed);
  const std::vector<double> quality(n, 0.85);
  generate_honest_feedback(ledger, quality, cfg, rng);
  return ledger;
}

TEST(LedgerSerialization, RoundTripExact) {
  const auto original = sample_ledger(50, 1);
  std::stringstream ss;
  save_ledger(original, ss);
  const auto loaded = load_ledger(ss);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_peers(), 50u);
  EXPECT_EQ(loaded->num_feedbacks(), original.num_feedbacks());
  for (NodeId i = 0; i < 50; ++i)
    for (NodeId j = 0; j < 50; ++j)
      EXPECT_DOUBLE_EQ(loaded->raw_score(i, j), original.raw_score(i, j));
}

TEST(LedgerSerialization, PreservesAccumulatedValuesAboveOne) {
  FeedbackLedger ledger(3);
  for (int k = 0; k < 5; ++k) ledger.record(0, 1, 1.0);  // r_01 = 5.0
  std::stringstream ss;
  save_ledger(ledger, ss);
  const auto loaded = load_ledger(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->raw_score(0, 1), 5.0);
}

TEST(LedgerSerialization, RejectsBadMagicAndVersion) {
  std::stringstream a("wrong-magic v1\nn 2 entries 0\n");
  EXPECT_FALSE(load_ledger(a).has_value());
  std::stringstream b("gossiptrust-ledger v9\nn 2 entries 0\n");
  EXPECT_FALSE(load_ledger(b).has_value());
}

TEST(LedgerSerialization, RejectsTruncatedFile) {
  const auto ledger = sample_ledger(20, 2);
  std::stringstream ss;
  save_ledger(ledger, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);  // chop mid-entry
  std::stringstream truncated(text);
  EXPECT_FALSE(load_ledger(truncated).has_value());
}

TEST(LedgerSerialization, RejectsOutOfRangeIds) {
  std::stringstream ss("gossiptrust-ledger v1\nn 3 entries 1\n0 7 0.5\n");
  EXPECT_FALSE(load_ledger(ss).has_value());
}

TEST(LedgerSerialization, RejectsSelfPairAndNegative) {
  std::stringstream self("gossiptrust-ledger v1\nn 3 entries 1\n1 1 0.5\n");
  EXPECT_FALSE(load_ledger(self).has_value());
  std::stringstream negative("gossiptrust-ledger v1\nn 3 entries 1\n0 1 -2\n");
  EXPECT_FALSE(load_ledger(negative).has_value());
}

TEST(ScoresSerialization, RoundTripExact) {
  std::vector<double> scores{0.5, 0.25, 0.125, 0.125};
  std::stringstream ss;
  save_scores(scores, ss);
  const auto loaded = load_scores(ss);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ((*loaded)[i], scores[i]);
}

TEST(ScoresSerialization, RoundTripPreservesFullPrecision) {
  std::vector<double> scores{1.0 / 3.0, 2.0 / 7.0, 1e-17};
  std::stringstream ss;
  save_scores(scores, ss);
  const auto loaded = load_scores(ss);
  ASSERT_TRUE(loaded.has_value());
  for (std::size_t i = 0; i < scores.size(); ++i)
    EXPECT_DOUBLE_EQ((*loaded)[i], scores[i]);
}

TEST(ScoresSerialization, RejectsGarbage) {
  std::stringstream a("gossiptrust-scores v1\nn 2\n0.5 banana\n");
  EXPECT_FALSE(load_scores(a).has_value());
  std::stringstream b("gossiptrust-scores v1\nn 5\n0.5\n");  // too few values
  EXPECT_FALSE(load_scores(b).has_value());
  std::stringstream c("");
  EXPECT_FALSE(load_scores(c).has_value());
}

TEST(FileSerialization, RoundTripThroughDisk) {
  const auto ledger = sample_ledger(30, 3);
  const std::string ledger_path = ::testing::TempDir() + "/gt_ledger_test.txt";
  const std::string scores_path = ::testing::TempDir() + "/gt_scores_test.txt";
  ASSERT_TRUE(save_ledger_file(ledger, ledger_path));
  const auto loaded = load_ledger_file(ledger_path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_feedbacks(), ledger.num_feedbacks());

  std::vector<double> scores(30, 1.0 / 30.0);
  ASSERT_TRUE(save_scores_file(scores, scores_path));
  const auto loaded_scores = load_scores_file(scores_path);
  ASSERT_TRUE(loaded_scores.has_value());
  EXPECT_EQ(loaded_scores->size(), 30u);
}

TEST(FileSerialization, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_ledger_file("/nonexistent/path/ledger.txt").has_value());
  EXPECT_FALSE(load_scores_file("/nonexistent/path/scores.txt").has_value());
}

TEST(SetRaw, OverwritesAndValidates) {
  FeedbackLedger ledger(3);
  ledger.set_raw(0, 1, 7.0);
  EXPECT_DOUBLE_EQ(ledger.raw_score(0, 1), 7.0);
  ledger.set_raw(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(ledger.raw_score(0, 1), 2.0);
  EXPECT_EQ(ledger.num_feedbacks(), 1u);
  ledger.set_raw(1, 1, 5.0);  // self: ignored
  EXPECT_EQ(ledger.num_feedbacks(), 1u);
  EXPECT_THROW(ledger.set_raw(0, 9, 1.0), std::out_of_range);
  EXPECT_THROW(ledger.set_raw(0, 2, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace gt::trust
