#include <gtest/gtest.h>

#include "trust/feedback.hpp"

namespace gt::trust {
namespace {

TEST(FeedbackDecay, ScalesAllScores) {
  FeedbackLedger ledger(3);
  ledger.record(0, 1, 1.0);
  ledger.record(0, 1, 1.0);
  ledger.record(2, 1, 0.5);
  ledger.decay(0.5);
  EXPECT_DOUBLE_EQ(ledger.raw_score(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ledger.raw_score(2, 1), 0.25);
}

TEST(FeedbackDecay, DropsEntriesBelowFloor) {
  FeedbackLedger ledger(2);
  ledger.record(0, 1, 1.0);
  EXPECT_EQ(ledger.num_feedbacks(), 1u);
  ledger.decay(0.5, /*floor=*/0.6);
  EXPECT_EQ(ledger.num_feedbacks(), 0u);
  EXPECT_DOUBLE_EQ(ledger.raw_score(0, 1), 0.0);
}

TEST(FeedbackDecay, FactorOneIsNoOp) {
  FeedbackLedger ledger(2);
  ledger.record(0, 1, 0.7);
  ledger.decay(1.0);
  EXPECT_DOUBLE_EQ(ledger.raw_score(0, 1), 0.7);
  EXPECT_EQ(ledger.num_feedbacks(), 1u);
}

TEST(FeedbackDecay, RejectsBadFactor) {
  FeedbackLedger ledger(2);
  EXPECT_THROW(ledger.decay(0.0), std::invalid_argument);
  EXPECT_THROW(ledger.decay(1.5), std::invalid_argument);
}

TEST(FeedbackDecay, NormalizationUnchangedByUniformDecay) {
  // Decay scales every entry equally, so the *normalized* matrix — and
  // therefore the reputation fixed point — is unchanged until new feedback
  // arrives to outweigh the old.
  FeedbackLedger ledger(3);
  ledger.record(0, 1, 1.0);
  for (int k = 0; k < 3; ++k) ledger.record(0, 2, 1.0);
  const auto before = ledger.normalized_matrix();
  ledger.decay(0.5);
  const auto after = ledger.normalized_matrix();
  EXPECT_DOUBLE_EQ(after.at(0, 1), before.at(0, 1));
  EXPECT_DOUBLE_EQ(after.at(0, 2), before.at(0, 2));
}

TEST(FeedbackDecay, FreshFeedbackOutweighsDecayedHistory) {
  // A provider with a long good history turns bad: with decay, the new
  // bad ratings quickly dominate its trust share.
  FeedbackLedger ledger(3);
  for (int k = 0; k < 20; ++k) ledger.record(0, 1, 1.0);  // old: peer 1 good
  ledger.record(0, 2, 1.0);                               // baseline on peer 2
  // Epochs pass; peer 1 stops earning ratings, peer 2 keeps earning.
  for (int epoch = 0; epoch < 8; ++epoch) {
    ledger.decay(0.5);
    ledger.record(0, 2, 1.0);
  }
  const auto s = ledger.normalized_matrix();
  EXPECT_GT(s.at(0, 2), s.at(0, 1));
}

}  // namespace
}  // namespace gt::trust
