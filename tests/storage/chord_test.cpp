#include "dht/chord.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace gt::dht {
namespace {

TEST(ChordRing, DistinctPositions) {
  const ChordRing ring(256, 1);
  std::set<Key> positions;
  for (NodeId v = 0; v < 256; ++v) positions.insert(ring.position(v));
  EXPECT_EQ(positions.size(), 256u);
}

TEST(ChordRing, SuccessorIsClockwiseOwner) {
  const ChordRing ring(64, 2);
  // The successor of a node's own position is that node.
  for (NodeId v = 0; v < 64; ++v) EXPECT_EQ(ring.successor(ring.position(v)), v);
}

TEST(ChordRing, SuccessorWrapsAroundZero) {
  const ChordRing ring(16, 3);
  // A key beyond the largest position wraps to the smallest-position node.
  Key max_pos = 0;
  NodeId min_node = 0;
  Key min_pos = ~Key{0};
  for (NodeId v = 0; v < 16; ++v) {
    max_pos = std::max(max_pos, ring.position(v));
    if (ring.position(v) < min_pos) {
      min_pos = ring.position(v);
      min_node = v;
    }
  }
  if (max_pos != ~Key{0}) EXPECT_EQ(ring.successor(max_pos + 1), min_node);
}

TEST(ChordRing, LookupFindsTrueOwnerFromEveryStart) {
  const ChordRing ring(128, 4);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const Key key = rng.next_u64();
    const NodeId owner = ring.successor(key);
    const NodeId start = rng.next_below(128);
    const auto res = ring.lookup(start, key);
    ASSERT_EQ(res.owner, owner) << "trial " << trial;
  }
}

TEST(ChordRing, LookupHopsLogarithmic) {
  Rng rng(6);
  for (const std::size_t n : {64u, 256u, 1024u}) {
    const ChordRing ring(n, 7);
    double total_hops = 0.0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      const auto res = ring.lookup(rng.next_below(n), rng.next_u64());
      total_hops += static_cast<double>(res.hops);
    }
    const double mean_hops = total_hops / trials;
    // Chord theory: ~0.5 log2 n average; allow [0.2, 2] log2 n.
    const double log_n = std::log2(static_cast<double>(n));
    EXPECT_GT(mean_hops, 0.2 * log_n) << n;
    EXPECT_LT(mean_hops, 2.0 * log_n) << n;
  }
}

TEST(ChordRing, SelfLookupZeroHops) {
  const ChordRing ring(32, 8);
  for (NodeId v = 0; v < 32; ++v) {
    const auto res = ring.lookup(v, ring.position(v));
    EXPECT_EQ(res.owner, v);
    EXPECT_EQ(res.hops, 0u);
  }
}

TEST(ChordRing, FingerZeroIsImmediateSuccessor) {
  const ChordRing ring(64, 9);
  for (NodeId v = 0; v < 64; ++v) {
    const NodeId succ = ring.successor(ring.position(v) + 1);
    EXPECT_EQ(ring.finger(v, 0), succ);
  }
}

TEST(ChordRing, SingleNodeOwnsEverything) {
  const ChordRing ring(1, 10);
  Rng rng(11);
  for (int t = 0; t < 20; ++t) {
    const auto res = ring.lookup(0, rng.next_u64());
    EXPECT_EQ(res.owner, 0u);
    EXPECT_EQ(res.hops, 0u);
  }
}

TEST(ChordRing, RejectsEmpty) { EXPECT_THROW(ChordRing(0, 1), std::invalid_argument); }

TEST(HashKey, DeterministicSpread) {
  std::set<Key> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) keys.insert(hash_key(i));
  EXPECT_EQ(keys.size(), 1000u);
  EXPECT_EQ(hash_key(7), hash_key(7));
}

}  // namespace
}  // namespace gt::dht
