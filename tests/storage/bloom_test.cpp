#include "bloom/bloom_filter.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace gt::bloom {
namespace {

TEST(BloomFilter, ZeroHashesRejectedLoudly) {
  // A 0-probe filter reports every key as present; the old ctor silently
  // bumped it to 1, hiding broken derivations upstream.
  EXPECT_THROW(BloomFilter(1024, 0), std::invalid_argument);
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter f(4096, 4);
  for (std::uint64_t k = 0; k < 200; ++k) f.insert(k * 7919);
  for (std::uint64_t k = 0; k < 200; ++k) EXPECT_TRUE(f.contains(k * 7919));
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  const std::size_t items = 1000;
  auto f = BloomFilter::with_capacity(items, 0.01);
  for (std::uint64_t k = 0; k < items; ++k) f.insert(k);
  std::size_t fp = 0;
  const std::size_t probes = 20000;
  for (std::uint64_t k = 0; k < probes; ++k) fp += f.contains(1000000 + k);
  const double rate = static_cast<double>(fp) / static_cast<double>(probes);
  EXPECT_LT(rate, 0.03);
  EXPECT_NEAR(f.estimated_fpr(), rate, 0.02);
}

TEST(BloomFilter, WithCapacityChoosesSaneGeometry) {
  const auto f = BloomFilter::with_capacity(1000, 0.01);
  // Optimal: ~9.6 bits/item, ~7 hashes.
  EXPECT_NEAR(static_cast<double>(f.bit_count()) / 1000.0, 9.6, 1.0);
  EXPECT_NEAR(static_cast<double>(f.hash_count()), 7.0, 1.0);
}

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter f(1024, 3);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_FALSE(f.contains(k));
  EXPECT_EQ(f.popcount(), 0u);
  EXPECT_DOUBLE_EQ(f.estimated_fpr(), 0.0);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter f(1024, 3);
  f.insert(42);
  EXPECT_TRUE(f.contains(42));
  f.clear();
  EXPECT_FALSE(f.contains(42));
}

TEST(BloomFilter, MergeUnionsMembership) {
  BloomFilter a(2048, 4), b(2048, 4);
  a.insert(1);
  b.insert(2);
  a.merge(b);
  EXPECT_TRUE(a.contains(1));
  EXPECT_TRUE(a.contains(2));
}

TEST(BloomFilter, MergeRejectsIncompatible) {
  BloomFilter a(1024, 3), b(2048, 3), c(1024, 4);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(BloomFilter, BitsRoundedUpToWord) {
  BloomFilter f(65, 1);
  EXPECT_EQ(f.bit_count(), 128u);
  EXPECT_EQ(f.storage_bytes(), 16u);
  BloomFilter tiny(1, 1);
  EXPECT_EQ(tiny.bit_count(), 64u);
}

TEST(CountingBloom, InsertRemoveRoundTrip) {
  CountingBloomFilter f(4096, 4);
  f.insert(17);
  EXPECT_TRUE(f.contains(17));
  f.remove(17);
  EXPECT_FALSE(f.contains(17));
}

TEST(CountingBloom, RemoveAbsentKeyHarmless) {
  CountingBloomFilter f(4096, 4);
  f.insert(1);
  f.remove(999);  // never inserted; shares no guaranteed counters
  EXPECT_TRUE(f.contains(1));
}

TEST(CountingBloom, DoubleInsertNeedsDoubleRemove) {
  CountingBloomFilter f(4096, 4);
  f.insert(5);
  f.insert(5);
  f.remove(5);
  EXPECT_TRUE(f.contains(5));
  f.remove(5);
  EXPECT_FALSE(f.contains(5));
}

TEST(CountingBloom, ClearResets) {
  CountingBloomFilter f(512, 3);
  f.insert(9);
  f.clear();
  EXPECT_FALSE(f.contains(9));
}

TEST(CountingBloom, ManyKeysNoFalseNegatives) {
  CountingBloomFilter f(8192, 4);
  Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.next_u64());
  for (const auto k : keys) f.insert(k);
  for (const auto k : keys) EXPECT_TRUE(f.contains(k));
  for (const auto k : keys) f.remove(k);
  std::size_t still = 0;
  for (const auto k : keys) still += f.contains(k);
  // Removal may leave residue only via saturated counters; none expected here.
  EXPECT_EQ(still, 0u);
}

}  // namespace
}  // namespace gt::bloom
