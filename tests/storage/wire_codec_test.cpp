#include "bloom/wire_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace gt::bloom {
namespace {

TEST(Quantize16, ZeroAndNonFinite) {
  EXPECT_EQ(quantize16(0.0), 0u);
  EXPECT_EQ(quantize16(-1.0), 0u);
  EXPECT_DOUBLE_EQ(dequantize16(0), 0.0);
  EXPECT_EQ(quantize16(std::nan("")), 0u);
  EXPECT_EQ(quantize16(std::numeric_limits<double>::infinity()), 0u);
}

TEST(Quantize16, RelativeErrorBounded) {
  Rng rng(1);
  for (int k = 0; k < 20000; ++k) {
    // Reputation-share-like magnitudes: 1e-12 .. 1.
    const double v = std::pow(10.0, rng.next_double(-12.0, 0.0));
    const double back = dequantize16(quantize16(v));
    ASSERT_GT(back, 0.0);
    EXPECT_NEAR(back / v, 1.0, 6e-4) << v;
  }
}

TEST(Quantize16, MonotoneNonDecreasing) {
  double prev = dequantize16(quantize16(1e-12));
  for (double v = 1e-12; v < 1.0; v *= 1.37) {
    const double cur = dequantize16(quantize16(v));
    ASSERT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Quantize16, UnderflowAndSaturation) {
  EXPECT_EQ(quantize16(1e-20), 0u);  // below the representable floor
  const double top = dequantize16(quantize16(1e9));
  EXPECT_GT(top, 1e4);  // saturates at the top cell, not garbage
  EXPECT_DOUBLE_EQ(dequantize16(quantize16(1e9)),
                   dequantize16(quantize16(1e12)));
}

TEST(Quantize16, RatioPreserved) {
  // Push-sum consumes x/w: quantizing both with the same grid must keep
  // the ratio accurate.
  Rng rng(2);
  for (int k = 0; k < 5000; ++k) {
    const double w = std::pow(10.0, rng.next_double(-9.0, -1.0));
    const double ratio = rng.next_double(0.0, 1.0) + 1e-6;
    const double x = ratio * w;
    const double qx = dequantize16(quantize16(x));
    const double qw = dequantize16(quantize16(w));
    ASSERT_GT(qw, 0.0);
    EXPECT_NEAR(qx / qw / ratio, 1.0, 2e-3);
  }
}

TEST(WireCodec, RoundTripStructure) {
  std::vector<WireTriplet> triplets{
      {0.05, 1, 0.5}, {1e-7, 999, 1e-3}, {0.0, 5, 0.25}};
  const auto bytes = encode_wire(triplets);
  EXPECT_EQ(bytes.size(), wire_size(triplets));
  const auto back = decode_wire(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ((*back)[k].id, triplets[k].id);
    if (triplets[k].x > 0)
      EXPECT_NEAR((*back)[k].x / triplets[k].x, 1.0, 1e-3);
    else
      EXPECT_DOUBLE_EQ((*back)[k].x, 0.0);
    EXPECT_NEAR((*back)[k].w / triplets[k].w, 1.0, 1e-3);
  }
}

TEST(WireCodec, EmptyMessage) {
  const auto bytes = encode_wire({});
  EXPECT_EQ(bytes.size(), 1u);
  const auto back = decode_wire(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(WireCodec, CompressionVsRawTriplets) {
  // 1000 shares with small ids: the packed form must be well under a
  // third of the 24-byte raw triplet encoding.
  std::vector<WireTriplet> triplets;
  Rng rng(3);
  for (std::uint64_t id = 0; id < 1000; ++id)
    triplets.push_back({rng.next_double() * 1e-3, id, rng.next_double() * 1e-3});
  const auto bytes = encode_wire(triplets);
  EXPECT_LT(bytes.size(), 1000u * 24u / 3u);
  EXPECT_GE(bytes.size(), 1000u * 5u);
}

TEST(WireCodec, RejectsCorruptedInput) {
  std::vector<WireTriplet> triplets{{0.1, 3, 0.2}, {0.3, 4, 0.4}};
  auto bytes = encode_wire(triplets);
  // Truncation.
  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_FALSE(decode_wire(truncated).has_value());
  // Trailing garbage.
  auto extended = bytes;
  extended.push_back(0x12);
  EXPECT_FALSE(decode_wire(extended).has_value());
  // Absurd count.
  std::vector<std::uint8_t> bogus{0xff, 0xff, 0x7f};
  EXPECT_FALSE(decode_wire(bogus).has_value());
  // Empty buffer.
  EXPECT_FALSE(decode_wire(std::span<const std::uint8_t>{}).has_value());
}

TEST(WireCodec, FuzzNeverCrashes) {
  // Random byte soup must always either decode or cleanly return nullopt.
  Rng rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(64));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    (void)decode_wire(bytes);  // must not crash or overrun
  }
  // Mutated valid messages likewise.
  std::vector<WireTriplet> triplets{{0.1, 3, 0.2}, {0.3, 500, 0.4}};
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = encode_wire(triplets);
    bytes[rng.next_below(bytes.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    (void)decode_wire(bytes);
  }
}

}  // namespace
}  // namespace gt::bloom
