#include "crypto/identity_auth.hpp"

#include <gtest/gtest.h>

namespace gt::crypto {
namespace {

TEST(Fnv1a, DeterministicAndSeedSensitive) {
  const std::vector<std::uint8_t> data{1, 2, 3};
  const auto h1 = fnv1a(data);
  const auto h2 = fnv1a(data);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, fnv1a(data, 12345));
  const std::vector<std::uint8_t> other{1, 2, 4};
  EXPECT_NE(h1, fnv1a(other));
}

TEST(IdentityAuthority, ExtractionDeterministicPerIdentity) {
  IdentityAuthority pkg(0xdeadbeef);
  const auto k1 = pkg.extract(7);
  const auto k2 = pkg.extract(7);
  EXPECT_EQ(k1.secret, k2.secret);
  EXPECT_EQ(k1.identity, 7u);
  EXPECT_NE(pkg.extract(8).secret, k1.secret);
}

TEST(IdentityAuthority, DifferentMasterSecretsDifferentKeys) {
  IdentityAuthority a(1), b(2);
  EXPECT_NE(a.extract(7).secret, b.extract(7).secret);
}

TEST(IdentityAuthority, SignVerifyRoundTrip) {
  IdentityAuthority pkg(42);
  const auto key = pkg.extract(3);
  const auto sig = pkg.sign(key, "gossip payload");
  EXPECT_TRUE(pkg.verify(3, "gossip payload", sig));
}

TEST(IdentityAuthority, TamperedPayloadRejected) {
  IdentityAuthority pkg(42);
  const auto key = pkg.extract(3);
  const auto sig = pkg.sign(key, "x=0.5 w=0.25");
  EXPECT_FALSE(pkg.verify(3, "x=0.9 w=0.25", sig));
}

TEST(IdentityAuthority, WrongClaimedSenderRejected) {
  IdentityAuthority pkg(42);
  const auto key = pkg.extract(3);
  const auto sig = pkg.sign(key, "payload");
  EXPECT_FALSE(pkg.verify(4, "payload", sig));
}

TEST(IdentityAuthority, ForgedSignatureRejected) {
  IdentityAuthority pkg(42);
  Signature forged{123, 456};
  EXPECT_FALSE(pkg.verify(3, "payload", forged));
}

TEST(IdentityAuthority, CrossAuthorityRejected) {
  IdentityAuthority pkg1(1), pkg2(2);
  const auto key = pkg1.extract(5);
  const auto sig = pkg1.sign(key, "data");
  EXPECT_FALSE(pkg2.verify(5, "data", sig));
}

TEST(SignedMessage, SealOpenRoundTrip) {
  IdentityAuthority pkg(7);
  const auto key = pkg.extract(11);
  const auto payload = encode_triplet(0.5, 11, 0.25);
  const auto msg = seal(pkg, key, payload);
  EXPECT_EQ(msg.sender, 11u);
  EXPECT_TRUE(open(pkg, msg));
}

TEST(SignedMessage, TamperedTripletDetected) {
  IdentityAuthority pkg(7);
  const auto key = pkg.extract(11);
  auto msg = seal(pkg, key, encode_triplet(0.5, 11, 0.25));
  msg.payload[0] ^= 0xff;  // flip a bit of x
  EXPECT_FALSE(open(pkg, msg));
}

TEST(SignedMessage, ReplayedUnderDifferentSenderDetected) {
  IdentityAuthority pkg(7);
  const auto key = pkg.extract(11);
  auto msg = seal(pkg, key, encode_triplet(0.5, 11, 0.25));
  msg.sender = 12;  // malicious relay re-attributes the message
  EXPECT_FALSE(open(pkg, msg));
}

TEST(EncodeTriplet, StableLayout) {
  const auto a = encode_triplet(1.0, 2, 3.0);
  const auto b = encode_triplet(1.0, 2, 3.0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 24u);
  EXPECT_NE(a, encode_triplet(1.0, 2, 3.5));
}

}  // namespace
}  // namespace gt::crypto
