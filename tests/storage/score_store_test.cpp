#include "bloom/score_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace gt::bloom {
namespace {

std::vector<double> power_law_scores(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> scores(n);
  for (auto& s : scores) s = std::pow(rng.next_double(), 3.0) + 1e-6;
  gt::normalize_l1(scores);
  return scores;
}

TEST(BloomScoreStore, LookupRecoversQuantizedScore) {
  const auto scores = power_law_scores(500, 1);
  ScoreStoreConfig cfg;
  cfg.num_buckets = 12;
  cfg.bits_per_peer = 16.0;
  const BloomScoreStore store(scores, cfg);
  std::size_t close = 0;
  for (std::size_t id = 0; id < 500; ++id) {
    const double approx = store.lookup(id);
    // Within one log-bucket of the true value (no false positive hit).
    if (approx / scores[id] < 4.0 && scores[id] / approx < 4.0) ++close;
  }
  EXPECT_GT(close, 450u);
}

TEST(BloomScoreStore, RankingLargelyPreserved) {
  const auto scores = power_law_scores(300, 2);
  ScoreStoreConfig cfg;
  cfg.num_buckets = 16;
  cfg.bits_per_peer = 16.0;
  const BloomScoreStore store(scores, cfg);
  const auto approx = store.approximate_scores(300);
  EXPECT_GT(kendall_tau(scores, approx), 0.6);
}

TEST(BloomScoreStore, MoreBucketsLowerQuantizationError) {
  const auto scores = power_law_scores(400, 3);
  double err_few = 0.0, err_many = 0.0;
  for (const std::size_t buckets : {4u, 32u}) {
    ScoreStoreConfig cfg;
    cfg.num_buckets = buckets;
    cfg.bits_per_peer = 24.0;
    const BloomScoreStore store(scores, cfg);
    const auto approx = store.approximate_scores(400);
    double err = 0.0;
    for (std::size_t i = 0; i < 400; ++i)
      err += std::abs(std::log(approx[i] / scores[i]));
    (buckets == 4 ? err_few : err_many) = err;
  }
  EXPECT_LT(err_many, err_few);
}

TEST(BloomScoreStore, StorageScalesWithBudget) {
  const auto scores = power_law_scores(1000, 4);
  ScoreStoreConfig small_cfg;
  small_cfg.bits_per_peer = 4.0;
  ScoreStoreConfig big_cfg;
  big_cfg.bits_per_peer = 32.0;
  const BloomScoreStore small_store(scores, small_cfg);
  const BloomScoreStore big_store(scores, big_cfg);
  EXPECT_LT(small_store.storage_bytes(), big_store.storage_bytes());
  // And both far below the explicit representation (~16 bytes/peer).
  EXPECT_LT(small_store.storage_bytes(), 1000u * 16u);
}

TEST(BloomScoreStore, BucketOfRespectsBoundaries) {
  const std::vector<double> scores{0.001, 0.01, 0.1, 0.889};
  ScoreStoreConfig cfg;
  cfg.num_buckets = 4;
  const BloomScoreStore store(scores, cfg);
  EXPECT_EQ(store.num_buckets(), 4u);
  EXPECT_LE(store.bucket_of(0.0011), store.bucket_of(0.011));
  EXPECT_LE(store.bucket_of(0.011), store.bucket_of(0.5));
  // Representatives are monotone across buckets.
  for (std::size_t b = 1; b < 4; ++b)
    EXPECT_GT(store.representative(b), store.representative(b - 1));
}

// Regression: the all-zero fallback used to hand zero-score peers a
// synthetic log range [1e-12, 1], so full distrust read back as a nonzero
// geometric-mean representative. Exact zeros must read back exactly 0.
TEST(BloomScoreStore, AllZeroScoresReadBackExactlyZero) {
  const std::vector<double> scores(10, 0.0);
  ScoreStoreConfig cfg;
  const BloomScoreStore store(scores, cfg);
  for (std::size_t id = 0; id < 10; ++id) EXPECT_EQ(store.lookup(id), 0.0);
}

TEST(BloomScoreStore, ZeroScorePeersNeverOutrankPositivePeers) {
  // A realistic post-eviction vector: most peers hold positive mass, a
  // blacklisted minority sits at exactly 0.
  auto scores = power_law_scores(200, 6);
  for (std::size_t id = 0; id < 200; id += 10) scores[id] = 0.0;
  ScoreStoreConfig cfg;
  cfg.num_buckets = 12;
  cfg.bits_per_peer = 16.0;
  const BloomScoreStore store(scores, cfg);
  double min_positive = std::numeric_limits<double>::infinity();
  for (std::size_t id = 0; id < 200; ++id) {
    const double approx = store.lookup(id);
    if (scores[id] == 0.0)
      EXPECT_EQ(approx, 0.0) << "peer " << id << " inflated from zero";
    else
      min_positive = std::min(min_positive, approx);
  }
  // Ranking fidelity at the bottom: every zero peer strictly below every
  // (recovered) positive peer.
  EXPECT_GT(min_positive, 0.0);
}

// Regression: the derived probe count is bits/items * ln2 — a near-empty
// bucket on the 64-bit floor used to derive 64 * ln2 ~ 44 and clamp at 16
// probes. The clamp must keep every bucket's geometry in the sane band.
TEST(BloomScoreStore, DerivedHashCountStaysSane) {
  // One dominant peer and many dust scores: most buckets end up (nearly)
  // empty at the minimum filter size.
  std::vector<double> scores(64, 1e-9);
  scores[0] = 1.0;
  ScoreStoreConfig cfg;
  cfg.num_buckets = 16;
  cfg.bits_per_peer = 8.0;
  cfg.hashes = 0;  // derive from the budget
  const BloomScoreStore store(scores, cfg);
  for (std::size_t b = 0; b < store.num_buckets(); ++b) {
    EXPECT_GE(store.filter(b).hash_count(), 1u);
    EXPECT_LE(store.filter(b).hash_count(), 8u) << "bucket " << b;
  }
}

TEST(BloomScoreStore, SingleBucketDegenerates) {
  const auto scores = power_law_scores(50, 5);
  ScoreStoreConfig cfg;
  cfg.num_buckets = 1;
  const BloomScoreStore store(scores, cfg);
  const double rep = store.representative(0);
  for (std::size_t id = 0; id < 50; ++id) EXPECT_DOUBLE_EQ(store.lookup(id), rep);
}

TEST(BloomScoreStore, EmptyScoresThrow) {
  EXPECT_THROW(BloomScoreStore(std::vector<double>{}, ScoreStoreConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gt::bloom
