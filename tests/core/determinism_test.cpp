// Reproducibility guarantees: the whole simulator is seed-deterministic,
// which is what makes every figure in EXPERIMENTS.md exactly re-runnable.
#include <gtest/gtest.h>

#include "baseline/power_iteration.hpp"
#include "common/stats.hpp"
#include "core/engine.hpp"
#include "graph/topology.hpp"
#include "threat/models.hpp"
#include "trust/feedback.hpp"

namespace gt {
namespace {

trust::SparseMatrix build_matrix(std::uint64_t seed) {
  Rng rng(seed);
  threat::ThreatConfig tcfg;
  tcfg.n = 80;
  tcfg.malicious_fraction = 0.2;
  const auto peers = threat::make_population(tcfg, rng);
  trust::FeedbackGenConfig gen;
  gen.n = 80;
  gen.d_max = 30;
  gen.d_avg = 10.0;
  trust::FeedbackLedger ledger(80);
  threat::generate_threat_feedback(ledger, peers, tcfg, gen, Rng(seed + 1));
  return ledger.normalized_matrix();
}

TEST(Determinism, WorkloadGenerationBitIdentical) {
  const auto a = build_matrix(7);
  const auto b = build_matrix(7);
  ASSERT_EQ(a.nonzeros(), b.nonzeros());
  for (trust::NodeId r = 0; r < a.size(); ++r) {
    const auto ra = a.row(r);
    const auto rb = b.row(r);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k].col, rb[k].col);
      EXPECT_DOUBLE_EQ(ra[k].value, rb[k].value);
    }
  }
}

TEST(Determinism, EngineRunBitIdenticalForSameSeed) {
  const auto s = build_matrix(9);
  core::GossipTrustConfig cfg;
  core::GossipTrustEngine engine(80, cfg);
  Rng rng_a(11), rng_b(11);
  const auto run_a = engine.run(s, rng_a);
  const auto run_b = engine.run(s, rng_b);
  ASSERT_EQ(run_a.num_cycles(), run_b.num_cycles());
  ASSERT_EQ(run_a.total_gossip_steps(), run_b.total_gossip_steps());
  ASSERT_EQ(run_a.scores.size(), run_b.scores.size());
  for (std::size_t i = 0; i < run_a.scores.size(); ++i)
    EXPECT_DOUBLE_EQ(run_a.scores[i], run_b.scores[i]);
  EXPECT_EQ(run_a.power_nodes, run_b.power_nodes);
}

TEST(Determinism, DifferentSeedsDifferentTrajectorySameFixedPoint) {
  const auto s = build_matrix(13);
  core::GossipTrustConfig cfg;
  cfg.epsilon = 1e-7;
  cfg.delta = 1e-5;
  core::GossipTrustEngine engine(80, cfg);
  Rng rng_a(1), rng_b(2);
  const auto run_a = engine.run(s, rng_a);
  const auto run_b = engine.run(s, rng_b);
  // Gossip randomness differs...
  bool identical = true;
  for (std::size_t i = 0; i < run_a.scores.size(); ++i)
    if (run_a.scores[i] != run_b.scores[i]) identical = false;
  EXPECT_FALSE(identical);
  // ...but both converge to the same fixed point up to gossip error.
  EXPECT_LT(rms_relative_error(run_a.scores, run_b.scores), 0.05);
  EXPECT_GT(kendall_tau(run_a.scores, run_b.scores), 0.95);
}

TEST(Determinism, TopologyGenerationReproducible) {
  Rng a(21), b(21);
  const auto ga = graph::make_gnutella_like(200, a);
  const auto gb = graph::make_gnutella_like(200, b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (graph::NodeId v = 0; v < 200; ++v) {
    const auto na = ga.neighbors(v);
    const auto nb = gb.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << v;
    for (std::size_t k = 0; k < na.size(); ++k) EXPECT_EQ(na[k], nb[k]);
  }
}

TEST(Determinism, PowerIterationIsRngFree) {
  const auto s = build_matrix(31);
  const auto a = baseline::power_iteration(s, 0.15, 0.05);
  const auto b = baseline::power_iteration(s, 0.15, 0.05);
  for (std::size_t i = 0; i < a.scores.size(); ++i)
    EXPECT_DOUBLE_EQ(a.scores[i], b.scores[i]);
}

}  // namespace
}  // namespace gt
