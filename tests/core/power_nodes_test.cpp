#include "core/power_nodes.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace gt::core {
namespace {

TEST(SelectPowerNodes, PicksTopFraction) {
  const std::vector<double> scores{0.1, 0.4, 0.05, 0.3, 0.15};
  const auto power = select_power_nodes(scores, 0.4);  // 40% of 5 = 2
  ASSERT_EQ(power.size(), 2u);
  EXPECT_EQ(power[0], 1u);
  EXPECT_EQ(power[1], 3u);
}

TEST(SelectPowerNodes, AtLeastOneWhenFractionPositive) {
  const std::vector<double> scores{0.5, 0.5};
  const auto power = select_power_nodes(scores, 0.01);
  EXPECT_EQ(power.size(), 1u);
}

TEST(SelectPowerNodes, PaperDefaultOnePercent) {
  std::vector<double> scores(1000, 1.0 / 1000.0);
  scores[42] = 0.5;
  const auto power = select_power_nodes(scores, 0.01);
  EXPECT_EQ(power.size(), 10u);
  EXPECT_EQ(power[0], 42u);
}

TEST(SelectPowerNodes, ZeroFractionEmpty) {
  const std::vector<double> scores{1.0, 2.0};
  EXPECT_TRUE(select_power_nodes(scores, 0.0).empty());
  EXPECT_TRUE(select_power_nodes({}, 0.5).empty());
}

TEST(ApplyPowerNodeMix, PreservesNormalization) {
  std::vector<double> v{0.25, 0.25, 0.25, 0.25};
  apply_power_node_mix(v, std::vector<NodeId>{0, 2}, 0.2);
  EXPECT_NEAR(sum(v), 1.0, 1e-15);
  EXPECT_NEAR(v[0], 0.8 * 0.25 + 0.1, 1e-15);
  EXPECT_NEAR(v[1], 0.8 * 0.25, 1e-15);
}

TEST(ApplyPowerNodeMix, NoOpWithoutPowerOrAlpha) {
  std::vector<double> v{0.5, 0.5};
  apply_power_node_mix(v, {}, 0.15);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  apply_power_node_mix(v, std::vector<NodeId>{0}, 0.0);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
}

TEST(ApplyPowerNodeMix, AlphaOneConcentratesOnPower) {
  std::vector<double> v{0.7, 0.2, 0.1};
  apply_power_node_mix(v, std::vector<NodeId>{1}, 1.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
}

TEST(ApplyPowerNodeMix, RejectsBadInputs) {
  std::vector<double> v{1.0};
  EXPECT_THROW(apply_power_node_mix(v, std::vector<NodeId>{0}, 1.5),
               std::invalid_argument);
  EXPECT_THROW(apply_power_node_mix(v, std::vector<NodeId>{7}, 0.5),
               std::out_of_range);
}

}  // namespace
}  // namespace gt::core
