#include "baseline/spectral.hpp"

#include <gtest/gtest.h>

#include "baseline/power_iteration.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "trust/feedback.hpp"
#include "trust/generator.hpp"

namespace gt::baseline {
namespace {

trust::SparseMatrix workload_matrix(std::size_t n, std::uint64_t seed) {
  trust::FeedbackLedger ledger(n);
  trust::FeedbackGenConfig cfg;
  cfg.n = n;
  cfg.d_max = std::min<std::size_t>(60, n / 2);
  cfg.d_avg = 15.0;
  Rng rng(seed);
  const std::vector<double> quality(n, 0.9);
  trust::generate_honest_feedback(ledger, quality, cfg, rng);
  return ledger.normalized_matrix();
}

TEST(Spectral, StochasticMatrixHasUnitDominantEigenvalue) {
  const auto s = workload_matrix(100, 1);
  const auto est = estimate_spectral_gap(s);
  // Row-stochastic with dangling redistribution: column sums of the
  // effective operator are 1, so lambda1 = 1. Orthogonal iteration uses
  // the 2-norm, allow modest tolerance.
  EXPECT_NEAR(est.lambda1, 1.0, 0.15);
  EXPECT_LT(est.lambda2, est.lambda1);
  EXPECT_GT(est.ratio(), 0.0);
  EXPECT_LT(est.ratio(), 1.0);
}

TEST(Spectral, RankOneMatrixHasZeroGap) {
  // Every row identical -> S^T has rank 1 -> lambda2 = 0.
  const std::size_t n = 8;
  trust::SparseMatrix::Builder b(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) b.add(i, j, 1.0);
  const auto s = std::move(b).build().row_normalized();
  const auto est = estimate_spectral_gap(s);
  // Not exactly rank one (diagonal holes), but close: tiny lambda2.
  EXPECT_LT(est.ratio(), 0.35);
}

TEST(Spectral, PeriodicChainHasNoGap) {
  // S = [[0,1],[1,0]]: eigenvalues {1, -1} -> |lambda2| = 1, no contraction.
  trust::SparseMatrix::Builder b(2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  const auto s = std::move(b).build();
  const auto est = estimate_spectral_gap(s, 50);
  EXPECT_NEAR(est.lambda2, 1.0, 0.05);
  EXPECT_EQ(est.predicted_cycles(1e-3), static_cast<std::size_t>(-1));
}

TEST(Spectral, PredictedCyclesFormula) {
  SpectralEstimate est;
  est.lambda1 = 1.0;
  est.lambda2 = 0.1;  // b = 0.1: each cycle gains one decimal digit
  EXPECT_EQ(est.predicted_cycles(1e-3), 3u);
  EXPECT_EQ(est.predicted_cycles(1e-6), 6u);
  EXPECT_THROW(est.predicted_cycles(0.0), std::invalid_argument);
  EXPECT_THROW(est.predicted_cycles(2.0), std::invalid_argument);
}

TEST(Spectral, BoundTracksMeasuredEngineCycles) {
  // The paper: d <= ceil(log_b delta). The engine stops on the mean
  // relative CHANGE of V rather than the true error, and the alpha mix
  // perturbs the operator, so we check the bound as an order-of-magnitude
  // predictor (within 3x + constant slack), on the undamped iteration.
  const auto s = workload_matrix(120, 3);
  const auto est = estimate_spectral_gap(s);
  const double delta = 1e-4;
  const auto predicted = est.predicted_cycles(delta);
  ASSERT_GT(predicted, 0u);
  ASSERT_LT(predicted, 200u);

  core::GossipTrustConfig cfg;
  cfg.alpha = 0.0;
  cfg.power_node_fraction = 0.0;
  cfg.delta = delta;
  cfg.epsilon = 1e-7;
  core::GossipTrustEngine engine(120, cfg);
  Rng rng(4);
  const auto run = engine.run(s, rng);
  ASSERT_TRUE(run.converged);
  EXPECT_LE(run.num_cycles(), 3 * predicted + 5);
  EXPECT_GE(run.num_cycles() + 3, predicted / 3);
}

TEST(Spectral, TighterGapConvergesFaster) {
  // A near-uniform matrix (small lambda2) needs fewer cycles than a
  // sparse clustered one (large lambda2).
  const auto sparse = workload_matrix(100, 5);
  // Dense uniform-ish matrix: everyone rates everyone equally.
  trust::SparseMatrix::Builder b(100);
  for (std::size_t i = 0; i < 100; ++i)
    for (std::size_t j = 0; j < 100; ++j)
      if (i != j) b.add(i, j, 1.0);
  const auto dense = std::move(b).build().row_normalized();
  EXPECT_LT(estimate_spectral_gap(dense).ratio(),
            estimate_spectral_gap(sparse).ratio());
}

TEST(Spectral, RejectsEmpty) {
  trust::SparseMatrix::Builder b(0);
  EXPECT_THROW(estimate_spectral_gap(std::move(b).build()), std::invalid_argument);
}

}  // namespace
}  // namespace gt::baseline
