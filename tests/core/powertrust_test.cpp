#include "baseline/powertrust.hpp"

#include <gtest/gtest.h>

#include "baseline/spectral.hpp"
#include "common/stats.hpp"
#include "trust/feedback.hpp"
#include "trust/generator.hpp"

namespace gt::baseline {
namespace {

trust::SparseMatrix workload_matrix(std::size_t n, std::uint64_t seed) {
  trust::FeedbackLedger ledger(n);
  trust::FeedbackGenConfig cfg;
  cfg.n = n;
  cfg.d_max = std::min<std::size_t>(40, n / 2);
  cfg.d_avg = 10.0;
  Rng rng(seed);
  const auto quality = trust::draw_service_qualities(n, n / 5, rng);
  trust::generate_honest_feedback(ledger, quality, cfg, rng);
  return ledger.normalized_matrix();
}

TEST(LookAheadMatrix, RowStochasticNoSelfTrust) {
  const auto s = workload_matrix(60, 1);
  const auto w = look_ahead_matrix(s);
  EXPECT_EQ(w.size(), 60u);
  EXPECT_TRUE(w.is_row_stochastic());
  for (trust::NodeId i = 0; i < 60; ++i) EXPECT_DOUBLE_EQ(w.at(i, i), 0.0);
}

TEST(LookAheadMatrix, DenserThanOriginal) {
  const auto s = workload_matrix(60, 2);
  const auto w = look_ahead_matrix(s);
  EXPECT_GT(w.nonzeros(), s.nonzeros());
}

TEST(LookAheadMatrix, TwoHopOpinionsAppear) {
  // 0 trusts 1, 1 trusts 2: the LRW row of 0 must reach 2.
  trust::SparseMatrix::Builder b(3);
  b.add(0, 1, 1.0);
  b.add(1, 2, 1.0);
  b.add(2, 0, 1.0);
  const auto s = std::move(b).build();
  const auto w = look_ahead_matrix(s);
  EXPECT_GT(w.at(0, 2), 0.0);
  EXPECT_GT(w.at(0, 1), 0.0);
}

TEST(LookAheadMatrix, ShrinksSpectralRatio) {
  // PowerTrust's convergence claim: looking ahead thickens mixing.
  const auto s = workload_matrix(100, 3);
  const auto w = look_ahead_matrix(s);
  EXPECT_LT(estimate_spectral_gap(w).ratio(), estimate_spectral_gap(s).ratio());
}

TEST(PowerTrust, ConvergesFasterThanPlainIteration) {
  const auto s = workload_matrix(100, 4);
  const auto plain = power_iteration(s, 0.15, 0.01, 1e-8);
  const auto pt = powertrust(s, 0.15, 0.01, 1e-8);
  EXPECT_TRUE(pt.converged);
  EXPECT_LE(pt.iterations, plain.iterations);
}

TEST(PowerTrust, RankingAgreesWithDirectAggregation) {
  const auto s = workload_matrix(120, 5);
  const auto direct = power_iteration(s, 0.15, 0.01);
  const auto pt = powertrust(s, 0.15, 0.01);
  // LRW genuinely changes the operator (two-hop opinions enter), so the
  // rankings correlate strongly but are not identical.
  EXPECT_GT(kendall_tau(direct.scores, pt.scores), 0.7);
  EXPECT_NEAR(sum(pt.scores), 1.0, 1e-10);
}

TEST(PowerTrust, GoodPeersStillOutrankBadOnes) {
  const std::size_t n = 100, n_bad = 20;
  trust::FeedbackLedger ledger(n);
  trust::FeedbackGenConfig cfg;
  cfg.n = n;
  cfg.d_max = 40;
  cfg.d_avg = 15.0;
  Rng rng(6);
  const auto quality = trust::draw_service_qualities(n, n_bad, rng);
  trust::generate_honest_feedback(ledger, quality, cfg, rng);
  const auto pt = powertrust(ledger.normalized_matrix());
  double bad = 0.0, good = 0.0;
  for (std::size_t i = 0; i < n_bad; ++i) bad += pt.scores[i];
  for (std::size_t i = n_bad; i < n; ++i) good += pt.scores[i];
  EXPECT_LT(bad / n_bad, good / (n - n_bad));
}

}  // namespace
}  // namespace gt::baseline
