#include <gtest/gtest.h>

#include <cmath>

#include "baseline/eigentrust.hpp"
#include "baseline/local_only.hpp"
#include "baseline/power_iteration.hpp"
#include "common/stats.hpp"
#include "graph/topology.hpp"
#include "trust/feedback.hpp"
#include "trust/generator.hpp"

namespace gt::baseline {
namespace {

trust::SparseMatrix workload_matrix(std::size_t n, std::uint64_t seed) {
  trust::FeedbackLedger ledger(n);
  trust::FeedbackGenConfig cfg;
  cfg.n = n;
  cfg.d_max = std::min<std::size_t>(40, n - 1);
  cfg.d_avg = std::min(10.0, static_cast<double>(n) / 3.0);
  Rng rng(seed);
  const std::vector<double> quality(n, 0.9);
  trust::generate_honest_feedback(ledger, quality, cfg, rng);
  return ledger.normalized_matrix();
}

TEST(PowerIteration, FindsFixedPoint) {
  const auto s = workload_matrix(60, 1);
  const auto res = power_iteration(s, 0.15, 0.05);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(sum(res.scores), 1.0, 1e-10);
  // Fixed point: one more exact cycle changes (almost) nothing.
  const auto next = exact_cycle(s, res.scores, res.power_nodes, 0.15);
  EXPECT_LT(mean_relative_error(res.scores, next), 1e-8);
}

TEST(PowerIteration, PlainVersionIsEigenvector) {
  const auto s = workload_matrix(40, 2);
  const auto res = plain_power_iteration(s);
  EXPECT_TRUE(res.converged);
  const auto applied = s.transpose_multiply(res.scores);
  auto normalized = applied;
  normalize_l1(normalized);
  EXPECT_LT(l1_distance(res.scores, normalized), 1e-8);
  EXPECT_TRUE(res.power_nodes.empty());
}

TEST(PowerIteration, TwoNodeAnalyticCase) {
  // s = [[0,1],[1,0]] -> eigenvector (1/2, 1/2).
  trust::SparseMatrix::Builder b(2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  const auto res = plain_power_iteration(std::move(b).build());
  EXPECT_NEAR(res.scores[0], 0.5, 1e-10);
  EXPECT_NEAR(res.scores[1], 0.5, 1e-10);
}

TEST(PowerIteration, EmptyMatrixThrows) {
  trust::SparseMatrix::Builder b(0);
  EXPECT_THROW(power_iteration(std::move(b).build(), 0.15, 0.01),
               std::invalid_argument);
}

TEST(EigenTrust, ConvergesWithPretrustedSet) {
  const auto s = workload_matrix(50, 3);
  const auto res = eigentrust(s, {0, 1, 2}, 0.15);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(sum(res.scores), 1.0, 1e-10);
  // Pre-trusted peers receive teleported mass.
  EXPECT_GT(res.scores[0], 0.15 / 3.0 * 0.9);
}

TEST(EigenTrust, ZeroDampingMatchesPlainIteration) {
  const auto s = workload_matrix(40, 4);
  const auto et = eigentrust(s, {}, 0.0);
  const auto pi = plain_power_iteration(s);
  EXPECT_LT(l1_distance(et.scores, pi.scores), 1e-8);
}

TEST(EigenTrust, RejectsBadArguments) {
  const auto s = workload_matrix(10, 5);
  EXPECT_THROW(eigentrust(s, {}, 0.15), std::invalid_argument);
  EXPECT_THROW(eigentrust(s, {0}, 1.5), std::invalid_argument);
  EXPECT_THROW(eigentrust(s, {99}, 0.15), std::out_of_range);
}

TEST(EigenTrustDht, MessageCountScalesWithRoundsAndEntries) {
  const auto s = workload_matrix(64, 6);
  const dht::ChordRing ring(64, 7);
  const auto one = eigentrust_dht_messages(s, ring, 1);
  const auto five = eigentrust_dht_messages(s, ring, 5);
  EXPECT_EQ(five, one * 5);
  EXPECT_GT(one, s.nonzeros());  // multi-hop lookups cost > 1 message each
  // O(log n) hops per lookup keeps the total well under n per entry.
  EXPECT_LT(one, s.nonzeros() * 64);
}

TEST(EigenTrustDht, RingSizeMismatchThrows) {
  const auto s = workload_matrix(16, 8);
  const dht::ChordRing ring(8, 9);
  EXPECT_THROW(eigentrust_dht_messages(s, ring, 1), std::invalid_argument);
}

TEST(NoTrust, UniformScores) {
  const auto v = notrust_scores(4);
  for (const auto x : v) EXPECT_DOUBLE_EQ(x, 0.25);
  EXPECT_TRUE(notrust_scores(0).empty());
}

TEST(LocalScores, OnlyOwnExperience) {
  trust::FeedbackLedger ledger(3);
  ledger.record(0, 1, 1.0);
  for (int k = 0; k < 3; ++k) ledger.record(0, 2, 1.0);
  ledger.record(1, 2, 1.0);  // invisible to observer 0
  const auto v = local_scores(ledger, 0);
  EXPECT_DOUBLE_EQ(v[1], 0.25);
  EXPECT_DOUBLE_EQ(v[2], 0.75);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_THROW(local_scores(ledger, 9), std::out_of_range);
}

TEST(NeighborhoodScores, BlendsNeighborOpinions) {
  trust::FeedbackLedger ledger(4);
  ledger.record(0, 2, 1.0);  // observer trusts 2 fully
  ledger.record(1, 3, 1.0);  // neighbor trusts 3 fully
  graph::Graph g(4);
  g.add_edge(0, 1);
  const auto v = neighborhood_scores(ledger, g, 0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v[3], 0.5);
}

TEST(NeighborhoodScores, SizeMismatchThrows) {
  trust::FeedbackLedger ledger(4);
  graph::Graph g(3);
  EXPECT_THROW(neighborhood_scores(ledger, g, 0), std::invalid_argument);
}

}  // namespace
}  // namespace gt::baseline
