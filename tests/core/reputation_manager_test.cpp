#include "core/reputation_manager.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "threat/models.hpp"

namespace gt::core {
namespace {

ReputationManagerConfig small_config() {
  ReputationManagerConfig cfg;
  cfg.engine.epsilon = 1e-5;
  cfg.engine.delta = 1e-3;
  cfg.engine.power_node_fraction = 0.05;
  cfg.reaggregate_every = 50;
  return cfg;
}

/// Feeds `count` transactions between random peers; providers in the top
/// fifth of ids always serve well, the bottom fifth always badly.
void feed(ReputationManager& manager, std::size_t n, std::size_t count, Rng& rng) {
  for (std::size_t t = 0; t < count; ++t) {
    const auto rater = static_cast<trust::NodeId>(rng.next_below(n));
    auto ratee = static_cast<trust::NodeId>(rng.next_below(n - 1));
    if (ratee >= rater) ++ratee;
    const bool good_provider = ratee >= n - n / 5;
    const bool bad_provider = ratee < n / 5;
    double outcome = rng.next_bool(0.85) ? 1.0 : 0.0;
    if (good_provider) outcome = 1.0;
    if (bad_provider) outcome = 0.0;
    manager.record_transaction(rater, ratee, outcome);
  }
}

TEST(ReputationManager, UniformPriorBeforeFirstRefresh) {
  ReputationManager manager(20, small_config(), 1);
  for (trust::NodeId i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(manager.score(i), 0.05);
  EXPECT_EQ(manager.refresh_count(), 0u);
  EXPECT_TRUE(manager.power_nodes().empty());
}

TEST(ReputationManager, AutoRefreshEveryPeriod) {
  const std::size_t n = 40;
  ReputationManager manager(n, small_config(), 2);
  Rng rng(3);
  feed(manager, n, 125, rng);
  // 125 transactions with period 50 -> refreshes at 50 and 100.
  EXPECT_EQ(manager.refresh_count(), 2u);
  EXPECT_EQ(manager.transactions_recorded(), 125u);
  EXPECT_TRUE(manager.last_aggregation().has_value());
  EXPECT_NEAR(sum(manager.scores()), 1.0, 1e-9);
}

TEST(ReputationManager, GoodProvidersRiseBadOnesSink) {
  const std::size_t n = 50;
  ReputationManager manager(n, small_config(), 4);
  Rng rng(5);
  feed(manager, n, 600, rng);
  double good = 0.0, bad = 0.0;
  for (std::size_t i = 0; i < n / 5; ++i) bad += manager.score(i);
  for (std::size_t i = n - n / 5; i < n; ++i) good += manager.score(i);
  EXPECT_GT(good, bad * 2.0);
  // top() surfaces good providers.
  const auto leaders = manager.top(5);
  for (const auto id : leaders) EXPECT_GE(id, n / 5);
}

TEST(ReputationManager, PowerNodesTrackTopScores) {
  const std::size_t n = 60;
  ReputationManager manager(n, small_config(), 6);
  Rng rng(7);
  feed(manager, n, 300, rng);
  ASSERT_FALSE(manager.power_nodes().empty());
  const auto expected = manager.top(manager.power_nodes().size());
  EXPECT_EQ(manager.power_nodes(), expected);
}

TEST(ReputationManager, WarmStartReducesCycles) {
  const std::size_t n = 60;
  auto warm_cfg = small_config();
  warm_cfg.reaggregate_every = 100;
  auto cold_cfg = warm_cfg;
  cold_cfg.warm_start = false;
  ReputationManager warm(n, warm_cfg, 8);
  ReputationManager cold(n, cold_cfg, 8);
  Rng rng_a(9), rng_b(9);
  feed(warm, n, 400, rng_a);
  feed(cold, n, 400, rng_b);
  ASSERT_TRUE(warm.last_aggregation().has_value());
  ASSERT_TRUE(cold.last_aggregation().has_value());
  EXPECT_LE(warm.last_aggregation()->num_cycles(),
            cold.last_aggregation()->num_cycles());
}

TEST(ReputationManager, BloomPublicationServesCompressedScores) {
  const std::size_t n = 80;
  auto cfg = small_config();
  cfg.publish_bloom = true;
  cfg.bloom.bits_per_peer = 16.0;
  cfg.bloom.num_buckets = 12;
  ReputationManager manager(n, cfg, 10);
  Rng rng(11);
  feed(manager, n, 200, rng);
  ASSERT_NE(manager.published_store(), nullptr);
  // Compressed scores approximate the exact ones within bucket resolution.
  std::size_t close = 0;
  for (trust::NodeId i = 0; i < n; ++i) {
    const double exact = manager.score(i);
    const double approx = manager.compressed_score(i);
    if (exact > 0 && approx / exact < 6.0 && exact / approx < 6.0) ++close;
  }
  EXPECT_GT(close, n * 3 / 4);
}

TEST(ReputationManager, CompressedScoreFallsBackWithoutStore) {
  ReputationManager manager(10, small_config(), 12);
  EXPECT_DOUBLE_EQ(manager.compressed_score(3), manager.score(3));
}

TEST(ReputationManager, QofWeightingExposesLiars) {
  const std::size_t n = 60;
  auto cfg = small_config();
  cfg.qof_weighting = true;
  cfg.reaggregate_every = 1000000;  // manual refresh only
  ReputationManager manager(n, cfg, 13);
  Rng rng(14);
  // Honest raters: truthful about bad providers (ids < 12). Liars
  // (ids 48..59) invert every rating.
  for (std::size_t t = 0; t < 800; ++t) {
    const auto rater = static_cast<trust::NodeId>(rng.next_below(n));
    auto ratee = static_cast<trust::NodeId>(rng.next_below(n - 1));
    if (ratee >= rater) ++ratee;
    const double outcome = ratee < 12 ? 0.0 : 1.0;
    const bool liar = rater >= 48;
    manager.record_transaction(rater, ratee, liar ? 1.0 - outcome : outcome);
  }
  manager.refresh();
  ASSERT_EQ(manager.qof_scores().size(), n);
  double liar_qof = 0.0, honest_qof = 0.0;
  for (std::size_t i = 0; i < 48; ++i) honest_qof += manager.qof_scores()[i];
  for (std::size_t i = 48; i < n; ++i) liar_qof += manager.qof_scores()[i];
  EXPECT_LT(liar_qof / 12.0, honest_qof / 48.0);
}

TEST(ReputationManager, RejectsBadConfig) {
  EXPECT_THROW(ReputationManager(0, small_config(), 1), std::invalid_argument);
  auto cfg = small_config();
  cfg.reaggregate_every = 0;
  EXPECT_THROW(ReputationManager(10, cfg, 1), std::invalid_argument);
  cfg = small_config();
  cfg.ledger_decay = 0.0;
  EXPECT_THROW(ReputationManager(10, cfg, 1), std::invalid_argument);
  cfg.ledger_decay = 1.5;
  EXPECT_THROW(ReputationManager(10, cfg, 1), std::invalid_argument);
}

TEST(ReputationManager, DecayLetsReformedPeersRecover) {
  // A provider serves badly for an epoch, then reforms. With aggressive
  // decay its score recovers much further than without.
  const std::size_t n = 30;
  auto run_scenario = [&](double decay) {
    auto cfg = small_config();
    cfg.ledger_decay = decay;
    cfg.reaggregate_every = 1000000;  // manual refreshes
    ReputationManager manager(n, cfg, 42);
    Rng rng(7);
    // Epoch 1: peer 0 serves badly; everyone else well.
    for (int t = 0; t < 400; ++t) {
      const auto rater = static_cast<trust::NodeId>(rng.next_below(n));
      auto ratee = static_cast<trust::NodeId>(rng.next_below(n - 1));
      if (ratee >= rater) ++ratee;
      manager.record_transaction(rater, ratee, ratee == 0 ? 0.0 : 1.0);
    }
    manager.refresh();
    // Epochs 2-5: peer 0 reformed, serves perfectly.
    for (int epoch = 0; epoch < 4; ++epoch) {
      for (int t = 0; t < 400; ++t) {
        const auto rater = static_cast<trust::NodeId>(rng.next_below(n));
        auto ratee = static_cast<trust::NodeId>(rng.next_below(n - 1));
        if (ratee >= rater) ++ratee;
        manager.record_transaction(rater, ratee, 1.0);
      }
      manager.refresh();
    }
    return manager.score(0);
  };
  const double with_decay = run_scenario(0.3);
  const double without_decay = run_scenario(1.0);
  EXPECT_GT(with_decay, without_decay);
}

TEST(ReputationManager, ScoreBoundsChecked) {
  ReputationManager manager(5, small_config(), 15);
  EXPECT_THROW(manager.score(5), std::out_of_range);
  EXPECT_THROW(manager.compressed_score(7), std::out_of_range);
}

}  // namespace
}  // namespace gt::core
