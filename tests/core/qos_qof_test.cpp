#include "core/qos_qof.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "threat/models.hpp"
#include "trust/feedback.hpp"

namespace gt::core {
namespace {

TEST(ComputeQof, PerfectAgreementScoresOne) {
  trust::FeedbackLedger ledger(4);
  // Rater 0 ranks 1 > 2 > 3, matching the consensus ordering.
  ledger.record(0, 1, 1.0);
  ledger.record(0, 2, 0.6);
  ledger.record(0, 3, 0.1);
  const std::vector<double> global{0.1, 0.5, 0.3, 0.1};
  const auto qof = compute_qof(ledger, global);
  EXPECT_DOUBLE_EQ(qof[0], 1.0);
  EXPECT_DOUBLE_EQ(qof[1], 0.5);  // no ratings: neutral
}

TEST(ComputeQof, InvertedPreferencesScoreZero) {
  trust::FeedbackLedger ledger(3);
  ledger.record(0, 1, 1.0);  // claims 1 > 2
  ledger.record(0, 2, 0.0);
  const std::vector<double> global{0.2, 0.1, 0.7};  // consensus: 2 > 1
  const auto qof = compute_qof(ledger, global);
  EXPECT_DOUBLE_EQ(qof[0], 0.0);
}

TEST(ComputeQof, ConsensusTiesGetHalfCredit) {
  trust::FeedbackLedger ledger(3);
  ledger.record(0, 1, 1.0);
  ledger.record(0, 2, 0.0);
  const std::vector<double> global{0.4, 0.3, 0.3};  // consensus indifferent
  const auto qof = compute_qof(ledger, global);
  EXPECT_DOUBLE_EQ(qof[0], 0.5);
}

TEST(ComputeQof, UniformRatingsNeutral) {
  trust::FeedbackLedger ledger(4);
  ledger.record(0, 1, 1.0);
  ledger.record(0, 2, 1.0);  // no expressed preference anywhere
  const std::vector<double> global{0.25, 0.5, 0.25, 0.0};
  const auto qof = compute_qof(ledger, global);
  EXPECT_DOUBLE_EQ(qof[0], 0.5);
}

TEST(ComputeQof, ZeroRatingsAreEvidence) {
  // A colluder rates its mate 1.0 and an honest peer 0.0; the consensus
  // ranks the honest peer far above the colluder's mate.
  trust::FeedbackLedger ledger(3);
  ledger.record(0, 1, 1.0);  // mate
  ledger.record(0, 2, 0.0);  // slandered honest peer
  const std::vector<double> global{0.05, 0.05, 0.9};
  const auto qof = compute_qof(ledger, global);
  EXPECT_DOUBLE_EQ(qof[0], 0.0);
}

TEST(ComputeQof, SizeAndArgumentValidation) {
  trust::FeedbackLedger ledger(2);
  EXPECT_THROW(compute_qof(ledger, std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(compute_qof(ledger, std::vector<double>{0.5, 0.5}, 1),
               std::invalid_argument);
}

TEST(CombineScores, ThetaBlends) {
  const std::vector<double> qos{0.04, 0.25};
  const std::vector<double> qof{1.0, 0.25};
  const auto pure_qos = combine_scores(qos, qof, 1.0);
  EXPECT_DOUBLE_EQ(pure_qos[0], 0.04);
  const auto pure_qof = combine_scores(qos, qof, 0.0);
  EXPECT_DOUBLE_EQ(pure_qof[1], 0.25);
  const auto geo = combine_scores(qos, qof, 0.5);
  EXPECT_NEAR(geo[0], 0.2, 1e-12);  // sqrt(0.04 * 1.0)
}

TEST(CombineScores, RejectsBadTheta) {
  EXPECT_THROW(combine_scores(std::vector<double>{1.0}, std::vector<double>{1.0}, 2.0),
               std::invalid_argument);
}

trust::FeedbackLedger threat_ledger(std::size_t n, double malicious_frac,
                                    bool collusive,
                                    std::vector<threat::PeerProfile>& peers_out,
                                    std::uint64_t seed) {
  Rng rng(seed);
  threat::ThreatConfig tcfg;
  tcfg.n = n;
  tcfg.malicious_fraction = malicious_frac;
  tcfg.collusive = collusive;
  peers_out = threat::make_population(tcfg, rng);
  trust::FeedbackGenConfig gen;
  gen.n = n;
  gen.d_max = 40;
  gen.d_avg = 12.0;
  trust::FeedbackLedger ledger(n);
  threat::generate_threat_feedback(ledger, peers_out, tcfg, gen, Rng(seed + 1));
  return ledger;
}

TEST(QofWeightedAggregation, ConvergesOnHonestWorkload) {
  std::vector<threat::PeerProfile> peers;
  const auto ledger = threat_ledger(80, 0.0, false, peers, 1);
  const auto res = qof_weighted_aggregation(ledger, 0.15, 0.05);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(sum(res.qos), 1.0, 1e-9);
  // Honest raters lean concordant with consensus. Accumulated (not
  // averaged) raw scores blur comparisons between two good providers, so
  // the margin over the 0.5 coin-flip level is modest on a clean workload;
  // the discrimination tests below check the gap to liars.
  double mean_qof = 0.0;
  for (const auto q : res.qof) mean_qof += q;
  EXPECT_GT(mean_qof / 80.0, 0.5);
}

TEST(QofWeightedAggregation, LiarsGetLowQof) {
  std::vector<threat::PeerProfile> peers;
  const auto ledger = threat_ledger(120, 0.2, false, peers, 3);
  const auto res = qof_weighted_aggregation(ledger, 0.15, 0.05);
  double bad_qof = 0.0, good_qof = 0.0;
  std::size_t bad_n = 0, good_n = 0;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (peers[i].type == threat::PeerType::kHonest) {
      good_qof += res.qof[i];
      ++good_n;
    } else {
      bad_qof += res.qof[i];
      ++bad_n;
    }
  }
  ASSERT_GT(bad_n, 0u);
  EXPECT_LT(bad_qof / static_cast<double>(bad_n),
            good_qof / static_cast<double>(good_n) * 0.6);
}

TEST(QofWeightedAggregation, CollidersGetLowQof) {
  std::vector<threat::PeerProfile> peers;
  const auto ledger = threat_ledger(150, 0.1, true, peers, 5);
  const auto res = qof_weighted_aggregation(ledger, 0.15, 0.05);
  double bad_qof = 0.0, good_qof = 0.0;
  std::size_t bad_n = 0, good_n = 0;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (peers[i].type == threat::PeerType::kHonest) {
      good_qof += res.qof[i];
      ++good_n;
    } else {
      bad_qof += res.qof[i];
      ++bad_n;
    }
  }
  ASSERT_GT(bad_n, 0u);
  EXPECT_LT(bad_qof / static_cast<double>(bad_n),
            good_qof / static_cast<double>(good_n) * 0.8);
}

TEST(QofWeightedAggregation, RejectsBadArguments) {
  trust::FeedbackLedger empty(0);
  EXPECT_THROW(qof_weighted_aggregation(empty, 0.15, 0.01), std::invalid_argument);
  trust::FeedbackLedger ledger(2);
  ledger.record(0, 1, 1.0);
  EXPECT_THROW(qof_weighted_aggregation(ledger, 0.15, 0.01, 1e-6, 100, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace gt::core
