#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "baseline/power_iteration.hpp"
#include "common/stats.hpp"
#include "trust/feedback.hpp"
#include "trust/generator.hpp"

namespace gt::core {
namespace {

trust::SparseMatrix workload_matrix(std::size_t n, std::uint64_t seed,
                                    std::size_t n_bad = 0) {
  trust::FeedbackLedger ledger(n);
  trust::FeedbackGenConfig cfg;
  cfg.n = n;
  cfg.d_max = std::min<std::size_t>(40, n - 1);
  cfg.d_avg = 10.0;
  Rng rng(seed);
  const auto quality = trust::draw_service_qualities(n, n_bad, rng);
  trust::generate_honest_feedback(ledger, quality, cfg, rng);
  return ledger.normalized_matrix();
}

GossipTrustConfig test_config() {
  GossipTrustConfig cfg;
  cfg.delta = 1e-3;
  cfg.epsilon = 1e-5;
  cfg.alpha = 0.15;
  cfg.power_node_fraction = 0.05;
  return cfg;
}

TEST(GossipTrustEngine, ConvergesAndNormalized) {
  const std::size_t n = 64;
  const auto s = workload_matrix(n, 1);
  GossipTrustEngine engine(n, test_config());
  Rng rng(2);
  const auto res = engine.run(s, rng);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.num_cycles(), 1u);
  EXPECT_NEAR(sum(res.scores), 1.0, 1e-9);
  for (const auto v : res.scores) EXPECT_GE(v, 0.0);
}

TEST(GossipTrustEngine, MatchesExactPowerIteration) {
  const std::size_t n = 48;
  const auto s = workload_matrix(n, 3);
  auto cfg = test_config();
  cfg.delta = 1e-6;    // run cycles deep so residual cycle error is small
  cfg.epsilon = 1e-8;  // and gossip error is negligible
  GossipTrustEngine engine(n, cfg);
  Rng rng(4);
  const auto gossiped = engine.run(s, rng);
  const auto exact =
      baseline::power_iteration(s, cfg.alpha, cfg.power_node_fraction, 1e-12);
  EXPECT_TRUE(gossiped.converged);
  EXPECT_LT(rms_relative_error(exact.scores, gossiped.scores), 0.05);
  // Ranking agreement is what selection policies consume.
  EXPECT_GT(kendall_tau(exact.scores, gossiped.scores), 0.9);
}

TEST(GossipTrustEngine, GoodPeersOutscoreBadPeers) {
  // Rich feedback (few dangling raters) so reputation separates cleanly.
  const std::size_t n = 150;
  const std::size_t n_bad = 15;
  trust::FeedbackLedger ledger(n);
  trust::FeedbackGenConfig fcfg;
  fcfg.n = n;
  fcfg.d_max = 60;
  fcfg.d_avg = 25.0;
  Rng wrng(5);
  const auto quality = trust::draw_service_qualities(n, n_bad, wrng);
  trust::generate_honest_feedback(ledger, quality, fcfg, wrng);
  const auto s = ledger.normalized_matrix();

  GossipTrustEngine engine(n, test_config());
  Rng rng(6);
  const auto res = engine.run(s, rng);
  double bad_mean = 0.0, good_mean = 0.0;
  for (std::size_t i = 0; i < n_bad; ++i) bad_mean += res.scores[i];
  for (std::size_t i = n_bad; i < n; ++i) good_mean += res.scores[i];
  bad_mean /= static_cast<double>(n_bad);
  good_mean /= static_cast<double>(n - n_bad);
  EXPECT_LT(bad_mean, good_mean * 0.6);
}

TEST(GossipTrustEngine, PowerNodesAreTopScorers) {
  const std::size_t n = 50;
  const auto s = workload_matrix(n, 7);
  GossipTrustEngine engine(n, test_config());
  Rng rng(8);
  const auto res = engine.run(s, rng);
  ASSERT_FALSE(res.power_nodes.empty());
  const auto expected = top_k_indices(res.scores, res.power_nodes.size());
  EXPECT_EQ(res.power_nodes, expected);
}

TEST(GossipTrustEngine, TighterDeltaMoreCycles) {
  const std::size_t n = 40;
  const auto s = workload_matrix(n, 9);
  std::size_t cycles_loose = 0, cycles_tight = 0;
  for (const double delta : {1e-2, 1e-5}) {
    auto cfg = test_config();
    cfg.delta = delta;
    GossipTrustEngine engine(n, cfg);
    Rng rng(10);
    const auto res = engine.run(s, rng);
    (delta == 1e-2 ? cycles_loose : cycles_tight) = res.num_cycles();
  }
  EXPECT_GT(cycles_tight, cycles_loose);
}

TEST(GossipTrustEngine, CycleStatsAccumulate) {
  const std::size_t n = 32;
  const auto s = workload_matrix(n, 11);
  GossipTrustEngine engine(n, test_config());
  Rng rng(12);
  const auto res = engine.run(s, rng);
  EXPECT_EQ(res.total_gossip_steps(),
            static_cast<std::size_t>(res.mean_gossip_steps_per_cycle() *
                                         static_cast<double>(res.num_cycles()) +
                                     0.5));
  EXPECT_GT(res.total_messages(), 0u);
  EXPECT_GT(res.total_triplets(), 0u);
  for (const auto& c : res.cycles) {
    EXPECT_TRUE(c.gossip_converged);
    EXPECT_EQ(c.messages_sent, c.gossip_steps * n);
  }
}

TEST(GossipTrustEngine, WarmStartConvergesFaster) {
  const std::size_t n = 40;
  const auto s = workload_matrix(n, 13);
  auto cfg = test_config();
  cfg.delta = 1e-4;
  GossipTrustEngine engine(n, cfg);
  Rng rng1(14);
  const auto cold = engine.run(s, rng1);
  Rng rng2(15);
  const auto warm = engine.run(s, rng2, nullptr, cold.scores);
  EXPECT_LE(warm.num_cycles(), cold.num_cycles());
}

TEST(GossipTrustEngine, KeepFinalViewsPopulates) {
  const std::size_t n = 24;
  const auto s = workload_matrix(n, 16);
  auto cfg = test_config();
  cfg.keep_final_views = true;
  GossipTrustEngine engine(n, cfg);
  Rng rng(17);
  const auto res = engine.run(s, rng);
  ASSERT_EQ(res.final_views.size(), n);
  for (const auto& view : res.final_views) EXPECT_EQ(view.size(), n);
}

TEST(GossipTrustEngine, RunCycleDrivableExternally) {
  const std::size_t n = 30;
  const auto s = workload_matrix(n, 18);
  GossipTrustEngine engine(n, test_config());
  auto v = engine.initial_scores();
  std::vector<NodeId> power;
  Rng rng(19);
  const auto stats1 = engine.run_cycle(s, v, power, rng);
  EXPECT_GT(stats1.gossip_steps, 0u);
  EXPECT_FALSE(power.empty());
  const auto stats2 = engine.run_cycle(s, v, power, rng);
  EXPECT_LT(stats2.change_from_previous, stats1.change_from_previous);
}

TEST(GossipTrustEngine, RejectsBadConfig) {
  GossipTrustConfig cfg;
  cfg.alpha = 2.0;
  EXPECT_THROW(GossipTrustEngine(10, cfg), std::invalid_argument);
  cfg = GossipTrustConfig{};
  cfg.delta = 0.0;
  EXPECT_THROW(GossipTrustEngine(10, cfg), std::invalid_argument);
  EXPECT_THROW(GossipTrustEngine(0, GossipTrustConfig{}), std::invalid_argument);
}

TEST(GossipTrustEngine, DegradedCycleRetainsPreviousVector) {
  // One gossip step can never reach epsilon-stability, so every cycle is
  // degraded: the engine must keep the previous vector, flag the cycle,
  // and refuse to call the (zero-change) run converged.
  const std::size_t n = 24;
  const auto s = workload_matrix(n, 20);
  auto cfg = test_config();
  cfg.max_gossip_steps = 1;
  cfg.max_cycles = 3;
  GossipTrustEngine engine(n, cfg);

  auto v = engine.initial_scores();
  const auto v_before = v;
  std::vector<NodeId> power;
  Rng rng(21);
  const auto stats = engine.run_cycle(s, v, power, rng);
  EXPECT_FALSE(stats.gossip_converged);
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(v, v_before);       // previous cycle's vector retained
  EXPECT_TRUE(power.empty());   // no power nodes selected from a bad cycle

  Rng rng2(22);
  const auto res = engine.run(s, rng2);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.num_cycles(), cfg.max_cycles);
  EXPECT_EQ(res.degraded_cycles(), cfg.max_cycles);
}

TEST(GossipTrustEngine, FallbackDisabledRestoresLegacyBehavior) {
  const std::size_t n = 24;
  const auto s = workload_matrix(n, 23);
  auto cfg = test_config();
  cfg.max_gossip_steps = 1;
  cfg.fallback_on_nonconverged = false;
  GossipTrustEngine engine(n, cfg);

  auto v = engine.initial_scores();
  const auto v_before = v;
  std::vector<NodeId> power;
  Rng rng(24);
  const auto stats = engine.run_cycle(s, v, power, rng);
  EXPECT_FALSE(stats.gossip_converged);
  EXPECT_FALSE(stats.degraded);
  EXPECT_NE(v, v_before);  // legacy: the partial aggregate is adopted
  EXPECT_FALSE(power.empty());
}

TEST(GossipTrustEngine, HealthyCyclesAreNotDegraded) {
  const std::size_t n = 32;
  const auto s = workload_matrix(n, 25);
  GossipTrustEngine engine(n, test_config());
  Rng rng(26);
  const auto res = engine.run(s, rng);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.degraded_cycles(), 0u);
  for (const auto& c : res.cycles) EXPECT_FALSE(c.degraded);
}

TEST(GossipTrustEngine, InitialScoresUniform) {
  GossipTrustEngine engine(8, test_config());
  const auto v = engine.initial_scores();
  for (const auto x : v) EXPECT_DOUBLE_EQ(x, 0.125);
}

}  // namespace
}  // namespace gt::core
