#include "sim/inline_callback.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

namespace gt::sim {
namespace {

TEST(InlineCallback, DefaultIsEmpty) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, InvokesCapturedLambda) {
  int hits = 0;
  InlineCallback cb([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, MoveTransfersOwnership) {
  int hits = 0;
  InlineCallback a([&hits] { ++hits; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineCallback c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, MoveAssignDestroysPreviousTarget) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  InlineCallback holder([t = std::move(token)] { (void)*t; });
  EXPECT_FALSE(watch.expired());
  holder = InlineCallback([] {});
  EXPECT_TRUE(watch.expired()) << "old capture must be destroyed on assign";
}

TEST(InlineCallback, ResetDestroysCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineCallback cb([t = std::move(token)] { (void)*t; });
  EXPECT_FALSE(watch.expired());
  cb.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, DestructorReleasesCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineCallback cb([t = std::move(token)] { (void)*t; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallback, FullBudgetCaptureFits) {
  // Exactly 48 bytes of capture — the documented ceiling, used by the
  // largest event closure in the simulator. Compiling at all is most of
  // the test; the rest checks the payload survives the round trip.
  struct Fat {
    std::uint64_t a, b, c, d, e;
    std::uint64_t* out;
  };
  static_assert(sizeof(Fat) == kInlineCallbackCapacity);
  std::uint64_t sum = 0;
  Fat fat{1, 2, 3, 4, 5, &sum};
  InlineCallback cb([fat] { *fat.out = fat.a + fat.b + fat.c + fat.d + fat.e; });
  InlineCallback moved(std::move(cb));  // relocation must carry all 48 bytes
  moved();
  EXPECT_EQ(sum, 15u);
}

// An oversized capture (> 48 bytes) is rejected at compile time by a
// static_assert in InlineCallback's converting constructor; that cannot be
// expressed as a runtime test, but the scheduler build itself exercises it:
// every scheduled closure in the tree compiles against the budget.

}  // namespace
}  // namespace gt::sim
