#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "telemetry/metrics.hpp"

namespace gt::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(3.0, [&] { order.push_back(3); });
  sched.schedule_at(1.0, [&] { order.push_back(1); });
  sched.schedule_at(2.0, [&] { order.push_back(2); });
  sched.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);
}

TEST(Scheduler, TiesExecuteInSchedulingOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sched.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sched.run_until();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterUsesRelativeDelay) {
  Scheduler sched;
  double fired_at = -1.0;
  sched.schedule_at(5.0, [&] {
    sched.schedule_after(2.5, [&] { fired_at = sched.now(); });
  });
  sched.run_until();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Scheduler, PastSchedulingThrows) {
  Scheduler sched;
  sched.schedule_at(1.0, [] {});
  sched.run_until();
  EXPECT_THROW(sched.schedule_at(0.5, [] {}), std::invalid_argument);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  const auto id = sched.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));  // double-cancel reports failure
  sched.run_until();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelUnknownIdSafe) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(9999));
}

TEST(Scheduler, RunUntilHorizonStopsAndAdvancesClock) {
  Scheduler sched;
  int count = 0;
  for (int i = 1; i <= 10; ++i) sched.schedule_at(i, [&] { ++count; });
  const auto ran = sched.run_until(5.0);
  EXPECT_EQ(ran, 5u);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sched.now(), 5.0);
  sched.run_until();
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, PeriodicFiresRepeatedlyUntilCancelled) {
  Scheduler sched;
  int fires = 0;
  EventId id = sched.schedule_periodic(1.0, [&] {
    if (++fires == 4) sched.cancel(id);
  });
  sched.run_until(100.0);
  EXPECT_EQ(fires, 4);
}

TEST(Scheduler, PeriodicRejectsNonPositivePeriod) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule_periodic(0.0, [] {}), std::invalid_argument);
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler sched;
  int count = 0;
  sched.schedule_at(1.0, [&] { ++count; });
  sched.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, EventsScheduledDuringExecutionRun) {
  Scheduler sched;
  std::vector<double> times;
  sched.schedule_at(1.0, [&] {
    times.push_back(sched.now());
    sched.schedule_after(1.0, [&] { times.push_back(sched.now()); });
  });
  sched.run_until();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Scheduler, ResetClearsEverything) {
  Scheduler sched;
  sched.schedule_at(1.0, [] {});
  sched.run_until();
  sched.reset();
  EXPECT_DOUBLE_EQ(sched.now(), 0.0);
  EXPECT_EQ(sched.pending(), 0u);
  bool fired = false;
  sched.schedule_at(0.5, [&] { fired = true; });
  sched.run_until();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler sched;
  for (int i = 0; i < 7; ++i) sched.schedule_at(i + 1.0, [] {});
  sched.run_until();
  EXPECT_EQ(sched.executed(), 7u);
}

TEST(Scheduler, ResetClearsExecutedCounter) {
  // Regression: reset() used to zero the clock and the queue but leak the
  // executed-event counter, so a reused scheduler reported phantom events
  // from the previous run.
  Scheduler sched;
  for (int i = 0; i < 5; ++i) sched.schedule_at(i + 1.0, [] {});
  sched.run_until();
  ASSERT_EQ(sched.executed(), 5u);
  sched.reset();
  EXPECT_EQ(sched.executed(), 0u);
  for (int i = 0; i < 3; ++i) sched.schedule_at(i + 1.0, [] {});
  sched.run_until();
  EXPECT_EQ(sched.executed(), 3u);  // fresh count, not 8
}

TEST(Scheduler, NowIsMonotoneWithinRunAndAcrossReset) {
  // The causal trace stamps every record with now(); the flight recorder
  // relies on the clock never moving backwards within a run, and reset()
  // returning it to exactly zero so a reused scheduler starts a fresh,
  // again-monotone timeline.
  Scheduler sched;
  std::vector<double> stamps;
  for (int i = 0; i < 6; ++i)
    sched.schedule_at(0.5 * (i + 1), [&] { stamps.push_back(sched.now()); });
  sched.run_until();
  for (std::size_t k = 1; k < stamps.size(); ++k)
    EXPECT_LE(stamps[k - 1], stamps[k]);
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);

  sched.reset();
  EXPECT_DOUBLE_EQ(sched.now(), 0.0);
  stamps.clear();
  for (int i = 0; i < 4; ++i)
    sched.schedule_at(1.0 * (i + 1), [&] { stamps.push_back(sched.now()); });
  sched.run_until();
  for (std::size_t k = 1; k < stamps.size(); ++k)
    EXPECT_LE(stamps[k - 1], stamps[k]);
  EXPECT_DOUBLE_EQ(sched.now(), 4.0);
}

TEST(Scheduler, PendingExcludesCancelled) {
  Scheduler sched;
  const auto a = sched.schedule_at(1.0, [] {});
  sched.schedule_at(2.0, [] {});
  EXPECT_EQ(sched.pending(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(Scheduler, StaleCancelIsLoudNoOp) {
  // Regression for slot recycling: ids carry a generation, so an id kept
  // past its event's completion must never cancel the event that later
  // reused the slot. The stale cancel is refused (false), counted, and the
  // newer event still fires.
  Scheduler sched;
  bool first_fired = false;
  const auto stale = sched.schedule_at(1.0, [&] { first_fired = true; });
  sched.run_until();
  ASSERT_TRUE(first_fired);

  // Completed events answer false without touching the stale counter: the
  // slot is simply free, no newer occupant was endangered.
  EXPECT_FALSE(sched.cancel(stale));

  // The freelist hands the completed event's slot straight back, so the
  // very next schedule reuses it; then fire the stale id at the occupant.
  bool recycled_fired = false;
  const EventId recycled =
      sched.schedule_after(1.0, [&] { recycled_fired = true; });
  ASSERT_EQ(recycled & 0xffffffffu, stale & 0xffffffffu)
      << "freelist should hand the slot back immediately";
  ASSERT_NE(recycled, stale) << "generation must differ on reuse";

  const auto stale_before = sched.stale_cancels();
  EXPECT_FALSE(sched.cancel(stale));
  EXPECT_EQ(sched.stale_cancels(), stale_before + 1);
  sched.run_until();
  EXPECT_TRUE(recycled_fired) << "stale cancel must not kill the new event";
  EXPECT_TRUE(sched.cancel(recycled) == false);  // it already ran
}

TEST(Scheduler, StaleCancelTelemetry) {
  Scheduler sched;
  telemetry::MetricsRegistry reg;
  sched.attach_telemetry(&reg);
  const auto a = sched.schedule_at(1.0, [] {});
  sched.run_until();
  const auto b = sched.schedule_after(1.0, [] {});  // reuses a's slot
  ASSERT_EQ(a & 0xffffffffu, b & 0xffffffffu);
  EXPECT_FALSE(sched.cancel(a));
  sched.run_until();
  const auto snap = reg.snapshot();
  EXPECT_EQ(*snap.counter("sim.stale_cancels"), 1u);
}

TEST(Scheduler, ZeroIdNeverValid) {
  // A default-initialized EventId (0) must always be a safe no-op, even
  // though slot 0 exists: generations start at 1.
  Scheduler sched;
  bool fired = false;
  sched.schedule_at(1.0, [&] { fired = true; });
  EXPECT_FALSE(sched.cancel(0));
  sched.run_until();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, ResetInvalidatesOldIds) {
  Scheduler sched;
  const auto id = sched.schedule_at(1.0, [] {});
  sched.reset();
  bool fired = false;
  const auto fresh = sched.schedule_at(1.0, [&] { fired = true; });
  // The pre-reset id aliases the fresh event's slot but not its generation.
  EXPECT_EQ(id & 0xffffffffu, fresh & 0xffffffffu);
  EXPECT_FALSE(sched.cancel(id));
  sched.run_until();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, SlabAndHeapReachSteadyState) {
  // The event core's zero-allocation claim, observed through the public
  // interface: a sustained schedule-one-run-one workload keeps recycling
  // the same slot, so stale-cancel generations keep climbing while
  // pending() stays bounded.
  Scheduler sched;
  EventId last = 0;
  for (int i = 0; i < 1000; ++i) {
    last = sched.schedule_after(1.0, [] {});
    sched.run_until(sched.now() + 1.0);
  }
  EXPECT_EQ(last & 0xffffffffu, 0u) << "one-at-a-time load needs one slot";
  EXPECT_GE(last >> 32, 1000u);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, TelemetryCountersMirrorEventLifecycle) {
  Scheduler sched;
  telemetry::MetricsRegistry reg;
  sched.attach_telemetry(&reg);
  const auto a = sched.schedule_at(1.0, [] {});
  sched.schedule_at(2.0, [] {});
  sched.schedule_at(3.0, [] {});
  sched.cancel(a);
  sched.run_until();
  const auto snap = reg.snapshot();
  EXPECT_EQ(*snap.counter("sim.events_scheduled"), 3u);
  EXPECT_EQ(*snap.counter("sim.events_executed"), 2u);
  EXPECT_EQ(*snap.counter("sim.events_cancelled"), 1u);
}

TEST(Scheduler, RunBeforeIsStrictAtTheHorizon) {
  Scheduler sched;
  std::vector<int> fired;
  sched.schedule_at(1.0, [&] { fired.push_back(1); });
  sched.schedule_at(2.0, [&] { fired.push_back(2); });
  sched.schedule_at(3.0, [&] { fired.push_back(3); });
  // Events at exactly the horizon belong to the NEXT window.
  EXPECT_EQ(sched.run_before(2.0), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(sched.run_before(3.0 + 1e-9), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, RunBeforeAllowsSchedulingIntoTheNextWindow) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(0.5, [&] {
    ++fired;
    sched.schedule_at(1.5, [&] { ++fired; });
  });
  EXPECT_EQ(sched.run_before(1.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.run_before(2.0), 1u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.pending(), 0u);
}

// Regression: a cancelled tombstone sitting at the heap top used to make
// the horizon check look at the tombstone's time, so run_until could
// execute a live event strictly beyond its horizon (and run_before would
// inherit the same off-by-a-tombstone). The queue must prune dead entries
// before comparing against the horizon.
TEST(Scheduler, CancelledTombstoneAtTopDoesNotBreachHorizon) {
  Scheduler sched;
  std::vector<int> fired;
  const EventId dead = sched.schedule_at(1.0, [&] { fired.push_back(1); });
  sched.schedule_at(5.0, [&] { fired.push_back(5); });
  EXPECT_TRUE(sched.cancel(dead));
  EXPECT_EQ(sched.run_until(2.0), 0u);
  EXPECT_TRUE(fired.empty()) << "event at t=5 executed past horizon 2";
  EXPECT_EQ(sched.run_before(5.0), 0u);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(sched.run_before(6.0), 1u);
  EXPECT_EQ(fired, (std::vector<int>{5}));
}

}  // namespace
}  // namespace gt::sim
