#include "graph/topology.hpp"

#include <gtest/gtest.h>

#include "graph/metrics.hpp"

namespace gt::graph {
namespace {

TEST(Graph, AddRemoveEdgeBasics) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));  // duplicate
  EXPECT_FALSE(g.add_edge(1, 0));  // same edge, reversed
  EXPECT_FALSE(g.add_edge(2, 2));  // self loop
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.remove_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, NeighborsSortedAndSymmetric) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 3u);
  EXPECT_EQ(nbrs[2], 4u);
  EXPECT_EQ(g.degree(4), 1u);
}

TEST(Graph, AddNodeGrows) {
  Graph g(2);
  const auto id = g.add_node();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.add_edge(0, id));
}

TEST(Graph, IsolateRemovesAllIncidentEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.isolate(0);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(ErdosRenyi, ConnectedWithRequestedEdges) {
  Rng rng(1);
  const auto g = make_erdos_renyi(200, 400, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  EXPECT_GE(g.num_edges(), 400u);  // connectivity patch may add a few
  EXPECT_TRUE(is_connected(g));
}

TEST(ErdosRenyi, EdgeCountClampedToComplete) {
  Rng rng(2);
  const auto g = make_erdos_renyi(5, 1000, rng);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(BarabasiAlbert, DegreesAndConnectivity) {
  Rng rng(3);
  const auto g = make_barabasi_albert(500, 3, rng);
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_TRUE(is_connected(g));
  // Each non-seed node attaches with 3 links: mean degree ~ 6.
  EXPECT_NEAR(mean_degree(g), 6.0, 1.0);
}

TEST(BarabasiAlbert, ProducesHubs) {
  Rng rng(4);
  const auto g = make_barabasi_albert(1000, 3, rng);
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) max_deg = std::max(max_deg, g.degree(v));
  // Preferential attachment must grow hubs far above the mean degree.
  EXPECT_GT(max_deg, 30u);
}

TEST(BarabasiAlbert, PowerLawExponentNearThree) {
  Rng rng(5);
  const auto g = make_barabasi_albert(3000, 3, rng);
  const double gamma = degree_powerlaw_exponent(g, 6);
  EXPECT_GT(gamma, 2.0);
  EXPECT_LT(gamma, 4.5);
}

TEST(BarabasiAlbert, RejectsBadArguments) {
  Rng rng(6);
  EXPECT_THROW(make_barabasi_albert(2, 3, rng), std::invalid_argument);
  EXPECT_THROW(make_barabasi_albert(100, 0, rng), std::invalid_argument);
}

TEST(GnutellaLike, ConnectedHeavyTailed) {
  Rng rng(7);
  const auto g = make_gnutella_like(1000, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GT(mean_degree(g), 5.0);
  Rng rng2(8);
  EXPECT_LT(estimate_diameter(g, 20, rng2), 12u);
}

TEST(SuperPeer, LeavesAttachToHubs) {
  Rng rng(9);
  const auto g = make_super_peer(300, 20, 2, rng);
  EXPECT_TRUE(is_connected(g));
  // Leaves have exactly their bootstrap degree (2) unless patched.
  std::size_t leaf_total = 0;
  for (NodeId v = 20; v < 300; ++v) {
    leaf_total += g.degree(v);
    for (const auto u : g.neighbors(v)) EXPECT_LT(u, 20u) << "leaf linked to leaf";
  }
  EXPECT_NEAR(static_cast<double>(leaf_total) / 280.0, 2.0, 0.2);
}

TEST(SuperPeer, RejectsBadHubCount) {
  Rng rng(10);
  EXPECT_THROW(make_super_peer(10, 0, 2, rng), std::invalid_argument);
  EXPECT_THROW(make_super_peer(10, 11, 2, rng), std::invalid_argument);
}

TEST(RingWithShortcuts, RingBackboneIntact) {
  Rng rng(11);
  const auto g = make_ring_with_shortcuts(50, 10, rng);
  EXPECT_TRUE(is_connected(g));
  for (NodeId v = 0; v < 50; ++v) EXPECT_TRUE(g.has_edge(v, (v + 1) % 50));
  EXPECT_GE(g.num_edges(), 50u);
}

TEST(MakeConnected, PatchesDisconnectedGraph) {
  Rng rng(12);
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  EXPECT_EQ(count_components(g), 3u);
  const auto added = make_connected(g, rng);
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(MakeConnected, NoOpOnConnected) {
  Rng rng(13);
  auto g = make_ring_with_shortcuts(10, 0, rng);
  EXPECT_EQ(make_connected(g, rng), 0u);
}

// Churn regression for the edge-accounting audit behind the CSR rebuild
// path: after an arbitrary interleaving of adds, removes, and isolates,
// num_edges() must reconcile with a full O(n^2) has_edge scan and every
// adjacency list must stay strictly sorted and symmetric.
TEST(Graph, ChurnKeepsEdgeAccountingReconciled) {
  Rng rng(2024);
  Graph g = make_erdos_renyi(60, 150, rng);
  for (int round = 0; round < 400; ++round) {
    const auto a = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto b = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    switch (rng.next_below(4)) {
      case 0: g.add_edge(a, b); break;
      case 1: g.remove_edge(a, b); break;
      case 2: g.isolate(a); break;
      default: g.add_edge(a, b); g.add_edge(b, a); break;
    }
  }
  std::size_t scanned = 0;
  for (NodeId a = 0; a < g.num_nodes(); ++a)
    for (NodeId b = a + 1; b < g.num_nodes(); ++b)
      if (g.has_edge(a, b)) ++scanned;
  EXPECT_EQ(g.num_edges(), scanned);
  std::size_t degree_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    degree_sum += nbrs.size();
    for (std::size_t i = 0; i + 1 < nbrs.size(); ++i)
      EXPECT_LT(nbrs[i], nbrs[i + 1]) << "unsorted adjacency at node " << v;
    for (const NodeId u : nbrs) EXPECT_TRUE(g.has_edge(u, v));
  }
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

TEST(Graph, IsolateTwiceIsIdempotent) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  g.isolate(0);
  g.isolate(0);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(3, 4));
}

}  // namespace
}  // namespace gt::graph
