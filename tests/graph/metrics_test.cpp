#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "graph/topology.hpp"

namespace gt::graph {
namespace {

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(DegreeHistogram, CountsCorrectly) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 4u);  // max degree 3
  EXPECT_EQ(hist[1], 3u);
  EXPECT_EQ(hist[3], 1u);
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), std::size_t{0}), 4u);
}

TEST(MeanDegree, TwoEdgesFourNodes) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(mean_degree(g), 1.0);
  EXPECT_DOUBLE_EQ(mean_degree(Graph(0)), 0.0);
}

TEST(Components, CountsAndConnectivity) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(count_components(g), 3u);  // {0,1,2}, {3}, {4}
  EXPECT_FALSE(is_connected(g));
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(BfsDistances, PathGraphDistances) {
  const auto g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsDistances, UnreachableMarked) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], std::numeric_limits<std::size_t>::max());
}

TEST(Diameter, ExactOnPath) {
  const auto g = path_graph(10);
  Rng rng(1);
  EXPECT_EQ(estimate_diameter(g, 10, rng), 9u);
}

TEST(Diameter, SampledLowerBound) {
  const auto g = path_graph(20);
  Rng rng(2);
  const auto est = estimate_diameter(g, 3, rng);
  EXPECT_LE(est, 19u);
  EXPECT_GE(est, 10u);  // any sampled BFS on a path sees >= half the length
}

TEST(Clustering, TriangleIsOne) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 1.0);
}

TEST(Clustering, StarIsZero) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 0.0);
}

TEST(PowerLawExponent, ZeroWhenNoTail) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(degree_powerlaw_exponent(g, 10), 0.0);
}

}  // namespace
}  // namespace gt::graph
