// Parameterized property sweeps over every topology generator: whatever
// the generator and size, the resulting overlay must be a simple,
// connected, undirected graph obeying the handshake lemma.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "graph/metrics.hpp"
#include "graph/topology.hpp"

namespace gt::graph {
namespace {

enum class Generator { kErdosRenyi, kBarabasiAlbert, kGnutella, kSuperPeer, kRing };

const char* generator_name(Generator g) {
  switch (g) {
    case Generator::kErdosRenyi: return "ErdosRenyi";
    case Generator::kBarabasiAlbert: return "BarabasiAlbert";
    case Generator::kGnutella: return "Gnutella";
    case Generator::kSuperPeer: return "SuperPeer";
    case Generator::kRing: return "Ring";
  }
  return "?";
}

Graph build(Generator g, std::size_t n, Rng& rng) {
  switch (g) {
    case Generator::kErdosRenyi: return make_erdos_renyi(n, 3 * n, rng);
    case Generator::kBarabasiAlbert: return make_barabasi_albert(n, 3, rng);
    case Generator::kGnutella: return make_gnutella_like(n, rng);
    case Generator::kSuperPeer: return make_super_peer(n, std::max<std::size_t>(4, n / 20), 2, rng);
    case Generator::kRing: return make_ring_with_shortcuts(n, n / 5, rng);
  }
  return Graph(0);
}

using Param = std::tuple<Generator, std::size_t, std::uint64_t>;

class TopologyProperty : public ::testing::TestWithParam<Param> {};

TEST_P(TopologyProperty, SimpleConnectedUndirected) {
  const auto [gen, n, seed] = GetParam();
  SCOPED_TRACE(generator_name(gen));
  Rng rng(seed);
  const auto g = build(gen, n, rng);
  ASSERT_EQ(g.num_nodes(), n);
  EXPECT_TRUE(is_connected(g));

  // Handshake lemma + symmetry + no self-loops + sorted unique neighbors.
  std::size_t degree_sum = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    degree_sum += nbrs.size();
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      ASSERT_NE(nbrs[k], v) << "self loop at " << v;
      ASSERT_TRUE(g.has_edge(nbrs[k], v)) << "asymmetric edge";
      if (k > 0) {
        ASSERT_LT(nbrs[k - 1], nbrs[k]) << "unsorted/duplicate neighbor";
      }
    }
  }
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

TEST_P(TopologyProperty, DiameterSmall) {
  const auto [gen, n, seed] = GetParam();
  if (gen == Generator::kRing) GTEST_SKIP() << "ring diameter is Theta(n/shortcuts)";
  Rng rng(seed);
  const auto g = build(gen, n, rng);
  Rng drng(seed + 1);
  // Unstructured overlays used by the paper have logarithmic diameter.
  EXPECT_LE(estimate_diameter(g, 8, drng), 16u);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, TopologyProperty,
    ::testing::Combine(::testing::Values(Generator::kErdosRenyi,
                                         Generator::kBarabasiAlbert,
                                         Generator::kGnutella,
                                         Generator::kSuperPeer, Generator::kRing),
                       ::testing::Values(std::size_t{64}, std::size_t{500}),
                       ::testing::Values(1ull, 99ull)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return std::string(generator_name(std::get<0>(param_info.param))) + "_n" +
             std::to_string(std::get<1>(param_info.param)) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace gt::graph
