#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "graph/topology.hpp"

namespace gt::graph {
namespace {

TEST(CsrView, MirrorsGraphExactly) {
  Rng rng(7);
  Graph g = make_erdos_renyi(100, 300, rng);
  make_connected(g, rng);
  const CsrView csr(g);
  ASSERT_EQ(csr.num_nodes(), g.num_nodes());
  ASSERT_EQ(csr.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto want = g.neighbors(v);
    const auto got = csr.neighbors(static_cast<std::uint32_t>(v));
    ASSERT_EQ(got.size(), want.size()) << "node " << v;
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(got[i], want[i]);
    EXPECT_EQ(csr.degree(static_cast<std::uint32_t>(v)), g.degree(v));
  }
  for (NodeId a = 0; a < g.num_nodes(); ++a)
    for (NodeId b = 0; b < g.num_nodes(); ++b)
      EXPECT_EQ(csr.has_edge(static_cast<std::uint32_t>(a),
                             static_cast<std::uint32_t>(b)),
                g.has_edge(a, b));
}

TEST(CsrView, EmptyAndEdgelessGraphs) {
  const CsrView empty;
  EXPECT_EQ(empty.num_nodes(), 0u);
  EXPECT_EQ(empty.num_edges(), 0u);

  const Graph g(5);
  const CsrView csr(g);
  EXPECT_EQ(csr.num_nodes(), 5u);
  EXPECT_EQ(csr.num_edges(), 0u);
  EXPECT_TRUE(csr.neighbors(3).empty());
}

TEST(CsrView, SurvivesChurnRebuild) {
  Rng rng(13);
  Graph g = make_erdos_renyi(50, 120, rng);
  for (int round = 0; round < 200; ++round) {
    const auto a = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto b = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    switch (rng.next_below(3)) {
      case 0: g.add_edge(a, b); break;
      case 1: g.remove_edge(a, b); break;
      default: g.isolate(a); break;
    }
    if (round % 50 == 49) {
      const CsrView csr(g);  // would throw on broken accounting
      EXPECT_EQ(csr.num_edges(), g.num_edges());
    }
  }
}

TEST(CsrView, StorageIsCompact) {
  Rng rng(3);
  Graph g = make_erdos_renyi(1000, 3000, rng);
  const CsrView csr(g);
  EXPECT_EQ(csr.storage_bytes(), (1000 + 1) * sizeof(std::uint64_t) +
                                     2 * g.num_edges() * sizeof(std::uint32_t));
}

}  // namespace
}  // namespace gt::graph
